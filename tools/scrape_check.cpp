// scrape_check — golden-schema validator for `opendesc simulate
// --metrics-out` scrapes and live `--listen` endpoints.
//
// Deliberately standalone (no opendesc libraries, raw POSIX sockets for the
// live mode): it checks the exposition the way an external scraper would,
// from the text alone.
//
//   scrape_check <scrape.prom>                     # file mode
//   scrape_check http://127.0.0.1:9464/metrics     # live scrape mode
//   scrape_check ... --probe http://HOST:PORT/healthz   # extra endpoints
//                                                       # that must be 200
//
// Validates, in order:
//   1. grammar   — every line is a HELP/TYPE comment or a sample
//                  `name{k="v",...} value`, names and label keys are legal,
//                  label values are correctly escaped, label keys are sorted
//                  (the histogram `le` key may come last), no duplicate
//                  series;
//   2. typing    — every sample belongs to a family declared by # TYPE
//                  earlier in the scrape, histogram families expose
//                  cumulative non-decreasing buckets whose +Inf bucket
//                  equals the _count series;
//   3. schema    — the instrument families the simulator contracts to emit
//                  are all present with the right kind;
//   4. invariant — per semantic, opendesc_semantic_reads_total summed over
//                  {nic_path, softnic_shim, unavailable} equals
//                  opendesc_rx_packets_total summed over queues: every
//                  delivered packet's metadata came from exactly one path
//                  (the runtime image of the paper's Eq. 1 split).
//
// Exit 0 and "scrape OK" on success; exit 1 with one line per violation.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

struct Sample {
  std::string name;                                   ///< full sample name
  std::vector<std::pair<std::string, std::string>> labels;  ///< decoded
  double value = 0.0;
  std::size_t line = 0;
};

struct Checker {
  std::vector<std::string> errors;
  std::map<std::string, std::string> types;  ///< family → counter|gauge|histogram
  std::set<std::string> helps;
  std::set<std::string> seen_series;
  std::vector<Sample> samples;
  std::set<std::string> exemplar_trace_ids;  ///< from `# {trace_id="..."}`

  void fail(std::size_t line, const std::string& message) {
    errors.push_back("line " + std::to_string(line) + ": " + message);
  }
};

bool valid_metric_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) {
      return false;
    }
  }
  return true;
}

bool valid_label_key(const std::string& key) {
  if (key.empty()) {
    return false;
  }
  for (std::size_t i = 0; i < key.size(); ++i) {
    const char c = key[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) {
      return false;
    }
  }
  return true;
}

/// Parses `{k="v",...}` starting at text[pos] == '{'.  Returns the position
/// one past the closing brace, or nullopt on malformed input.
std::optional<std::size_t> parse_labels(
    const std::string& text, std::size_t pos,
    std::vector<std::pair<std::string, std::string>>& out,
    std::string& error) {
  ++pos;  // consume '{'
  while (pos < text.size() && text[pos] != '}') {
    const std::size_t eq = text.find('=', pos);
    if (eq == std::string::npos || eq + 1 >= text.size() ||
        text[eq + 1] != '"') {
      error = "malformed label pair (expected key=\"value\")";
      return std::nullopt;
    }
    const std::string key = text.substr(pos, eq - pos);
    if (!valid_label_key(key)) {
      error = "illegal label key '" + key + "'";
      return std::nullopt;
    }
    std::string value;
    std::size_t cursor = eq + 2;
    bool closed = false;
    while (cursor < text.size()) {
      const char c = text[cursor];
      if (c == '\\') {
        if (cursor + 1 >= text.size()) {
          error = "dangling escape in label value";
          return std::nullopt;
        }
        const char esc = text[cursor + 1];
        if (esc == '\\') {
          value += '\\';
        } else if (esc == '"') {
          value += '"';
        } else if (esc == 'n') {
          value += '\n';
        } else {
          error = std::string("illegal escape '\\") + esc + "' in label value";
          return std::nullopt;
        }
        cursor += 2;
        continue;
      }
      if (c == '"') {
        closed = true;
        ++cursor;
        break;
      }
      if (c == '\n') {
        error = "unescaped newline in label value";
        return std::nullopt;
      }
      value += c;
      ++cursor;
    }
    if (!closed) {
      error = "unterminated label value";
      return std::nullopt;
    }
    out.emplace_back(key, value);
    pos = cursor;
    if (pos < text.size() && text[pos] == ',') {
      ++pos;
    } else if (pos < text.size() && text[pos] != '}') {
      error = "expected ',' or '}' after label value";
      return std::nullopt;
    }
  }
  if (pos >= text.size()) {
    error = "unterminated label block";
    return std::nullopt;
  }
  return pos + 1;  // past '}'
}

std::optional<double> parse_value(const std::string& text) {
  if (text == "+Inf") {
    return std::numeric_limits<double>::infinity();
  }
  if (text == "-Inf") {
    return -std::numeric_limits<double>::infinity();
  }
  if (text == "NaN") {
    return std::numeric_limits<double>::quiet_NaN();
  }
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) {
      return std::nullopt;
    }
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// The family a sample belongs to: histogram samples report under
/// <family>_bucket/_sum/_count.
std::string family_of(const Checker& chk, const std::string& sample_name) {
  if (chk.types.count(sample_name) != 0) {
    return sample_name;
  }
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (sample_name.size() > s.size() &&
        sample_name.compare(sample_name.size() - s.size(), s.size(), s) == 0) {
      const std::string base = sample_name.substr(0, sample_name.size() - s.size());
      const auto it = chk.types.find(base);
      if (it != chk.types.end() && it->second == "histogram") {
        return base;
      }
    }
  }
  return sample_name;  // unknown; typing check reports it
}

std::string series_key(const Sample& sample) {
  std::string key = sample.name;
  for (const auto& [k, v] : sample.labels) {
    key += '\x1f' + k + '\x1e' + v;
  }
  return key;
}

void check_line(Checker& chk, const std::string& line, std::size_t lineno) {
  if (line.empty()) {
    return;
  }
  if (line[0] == '#') {
    std::istringstream in(line);
    std::string hash, keyword, name;
    in >> hash >> keyword >> name;
    if (keyword == "HELP") {
      if (!valid_metric_name(name)) {
        chk.fail(lineno, "HELP for illegal metric name '" + name + "'");
      }
      if (!chk.helps.insert(name).second) {
        chk.fail(lineno, "duplicate HELP for '" + name + "'");
      }
      // Escaping: a raw backslash must start \\ or \n.
      const std::size_t text_at = line.find(name) + name.size();
      const std::string help = line.substr(std::min(text_at, line.size()));
      for (std::size_t i = 0; i < help.size(); ++i) {
        if (help[i] == '\\' &&
            (i + 1 >= help.size() ||
             (help[i + 1] != '\\' && help[i + 1] != 'n'))) {
          chk.fail(lineno, "unescaped backslash in HELP text for '" + name + "'");
        } else if (help[i] == '\\') {
          ++i;
        }
      }
      return;
    }
    if (keyword == "TYPE") {
      std::string kind;
      in >> kind;
      if (!valid_metric_name(name)) {
        chk.fail(lineno, "TYPE for illegal metric name '" + name + "'");
      }
      if (kind != "counter" && kind != "gauge" && kind != "histogram") {
        chk.fail(lineno, "unknown TYPE kind '" + kind + "' for '" + name + "'");
      }
      if (!chk.types.emplace(name, kind).second) {
        chk.fail(lineno, "duplicate TYPE for '" + name + "'");
      }
      return;
    }
    return;  // other comments are legal
  }

  // Sample line.
  Sample sample;
  sample.line = lineno;
  std::size_t pos = 0;
  while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') {
    ++pos;
  }
  sample.name = line.substr(0, pos);
  if (!valid_metric_name(sample.name)) {
    chk.fail(lineno, "illegal sample name '" + sample.name + "'");
    return;
  }
  if (pos < line.size() && line[pos] == '{') {
    std::string error;
    const auto after = parse_labels(line, pos, sample.labels, error);
    if (!after) {
      chk.fail(lineno, error);
      return;
    }
    pos = *after;
  }
  if (pos >= line.size() || line[pos] != ' ') {
    chk.fail(lineno, "expected space before sample value");
    return;
  }
  // An OpenMetrics exemplar may trail the value: `value # {labels} exvalue`.
  std::string value_text = line.substr(pos + 1);
  std::string exemplar_text;
  if (const std::size_t ex_at = value_text.find(" # "); ex_at != std::string::npos) {
    exemplar_text = value_text.substr(ex_at + 3);
    value_text.resize(ex_at);
  }
  const auto value = parse_value(value_text);
  if (!value) {
    chk.fail(lineno, "unparseable sample value '" + value_text + "'");
    return;
  }
  sample.value = *value;

  if (!exemplar_text.empty()) {
    // Only bucket series carry our exemplars; the label set must hold a
    // 16-hex trace_id and the exemplar's own value must parse.
    if (sample.name.size() < 7 ||
        sample.name.compare(sample.name.size() - 7, 7, "_bucket") != 0) {
      chk.fail(lineno, "exemplar on non-bucket sample '" + sample.name + "'");
    } else if (exemplar_text.empty() || exemplar_text[0] != '{') {
      chk.fail(lineno, "malformed exemplar (expected '{' after '# ')");
    } else {
      std::vector<std::pair<std::string, std::string>> ex_labels;
      std::string error;
      const auto after = parse_labels(exemplar_text, 0, ex_labels, error);
      if (!after) {
        chk.fail(lineno, "malformed exemplar labels: " + error);
      } else if (*after >= exemplar_text.size() ||
                 exemplar_text[*after] != ' ' ||
                 !parse_value(exemplar_text.substr(*after + 1))) {
        chk.fail(lineno, "unparseable exemplar value after labels");
      } else {
        std::string trace_id;
        for (const auto& [k, v] : ex_labels) {
          if (k == "trace_id") {
            trace_id = v;
          }
        }
        if (trace_id.size() != 16 ||
            trace_id.find_first_not_of("0123456789abcdef") !=
                std::string::npos) {
          chk.fail(lineno,
                   "exemplar trace_id '" + trace_id + "' is not 16 hex chars");
        } else {
          chk.exemplar_trace_ids.insert(trace_id);
        }
      }
    }
  }

  // Label keys sorted; the histogram `le` key is appended last by
  // convention and exempt from the ordering check.
  for (std::size_t i = 1; i < sample.labels.size(); ++i) {
    if (sample.labels[i].first == "le" && i + 1 == sample.labels.size()) {
      continue;
    }
    if (sample.labels[i - 1].first >= sample.labels[i].first) {
      chk.fail(lineno, "label keys not sorted ('" + sample.labels[i - 1].first +
                           "' before '" + sample.labels[i].first + "')");
    }
  }

  if (!chk.seen_series.insert(series_key(sample)).second) {
    chk.fail(lineno, "duplicate series for '" + sample.name + "'");
  }
  const std::string family = family_of(chk, sample.name);
  if (chk.types.count(family) == 0) {
    chk.fail(lineno, "sample '" + sample.name + "' has no preceding # TYPE");
  }
  chk.samples.push_back(std::move(sample));
}

/// Labels minus `le`, as a key — groups one histogram's bucket series.
std::string histogram_series_key(const Sample& sample) {
  std::string key;
  for (const auto& [k, v] : sample.labels) {
    if (k != "le") {
      key += '\x1f' + k + '\x1e' + v;
    }
  }
  return key;
}

void check_histograms(Checker& chk) {
  for (const auto& [family, kind] : chk.types) {
    if (kind != "histogram") {
      continue;
    }
    struct SeriesAgg {
      std::vector<std::pair<double, double>> buckets;  ///< (le, cumulative)
      std::optional<double> count;
      bool has_sum = false;
    };
    std::map<std::string, SeriesAgg> series;
    for (const Sample& sample : chk.samples) {
      if (sample.name == family + "_bucket") {
        double le = std::numeric_limits<double>::quiet_NaN();
        for (const auto& [k, v] : sample.labels) {
          if (k == "le") {
            le = *parse_value(v);
          }
        }
        series[histogram_series_key(sample)].buckets.emplace_back(le,
                                                                  sample.value);
      } else if (sample.name == family + "_count") {
        series[histogram_series_key(sample)].count = sample.value;
      } else if (sample.name == family + "_sum") {
        series[histogram_series_key(sample)].has_sum = true;
      }
    }
    if (series.empty()) {
      chk.errors.push_back("histogram '" + family + "' has no samples");
      continue;
    }
    for (const auto& [key, agg] : series) {
      if (agg.buckets.empty() || !agg.count || !agg.has_sum) {
        chk.errors.push_back("histogram '" + family +
                             "' series missing _bucket/_sum/_count");
        continue;
      }
      double prev_le = -std::numeric_limits<double>::infinity();
      double prev_cum = 0.0;
      for (const auto& [le, cum] : agg.buckets) {
        if (!(le > prev_le)) {
          chk.errors.push_back("histogram '" + family +
                               "' bucket le values not increasing");
        }
        if (cum + 1e-9 < prev_cum) {
          chk.errors.push_back("histogram '" + family +
                               "' bucket counts not cumulative");
        }
        prev_le = le;
        prev_cum = cum;
      }
      const auto& [last_le, last_cum] = agg.buckets.back();
      if (!std::isinf(last_le)) {
        chk.errors.push_back("histogram '" + family + "' missing +Inf bucket");
      } else if (std::fabs(last_cum - *agg.count) > 1e-9) {
        chk.errors.push_back("histogram '" + family +
                             "' +Inf bucket disagrees with _count");
      }
    }
  }
}

void check_schema(Checker& chk, bool live) {
  static const std::pair<const char*, const char*> kRequired[] = {
      {"opendesc_rx_packets_total", "counter"},
      {"opendesc_rx_hw_consumed_total", "counter"},
      {"opendesc_rx_softnic_recovered_total", "counter"},
      {"opendesc_rx_quarantined_total", "counter"},
      {"opendesc_offered_packets_total", "counter"},
      {"opendesc_semantic_reads_total", "counter"},
      {"opendesc_batch_latency_ns", "histogram"},
      {"opendesc_stage_latency_ns", "histogram"},
      {"opendesc_trace_events_total", "counter"},
      {"opendesc_trace_recorded_total", "counter"},
      {"opendesc_trace_dropped_total", "counter"},
      {"opendesc_trace_spans_recorded_total", "counter"},
      {"opendesc_trace_spans_dropped_total", "counter"},
      {"opendesc_engine_queues", "gauge"},
      {"opendesc_profile_stage_ns_total", "counter"},
      {"opendesc_profile_stage_ns_per_packet", "gauge"},
      {"opendesc_profile_work_ns_total", "counter"},
      {"opendesc_profile_wait_ns_total", "counter"},
      {"opendesc_profile_batches_total", "counter"},
      {"opendesc_profile_sampled_batches_total", "counter"},
      {"opendesc_profile_sampled_packets_total", "counter"},
      {"opendesc_profile_stride", "gauge"},
      {"opendesc_layout_swaps_total", "counter"},
      {"opendesc_layout_epoch", "gauge"},
      {"opendesc_flow_active", "gauge"},
      {"opendesc_flow_lookups_total", "counter"},
      {"opendesc_flow_inserts_total", "counter"},
      {"opendesc_flow_evictions_total", "counter"},
      {"opendesc_flow_tracked_packets_total", "counter"},
      {"opendesc_flow_tracked_bytes_total", "counter"},
      {"opendesc_flow_memory_bytes", "gauge"},
      {"opendesc_tenant_goodput_packets_total", "counter"},
      {"opendesc_tenant_offered_packets_total", "counter"},
      {"opendesc_tenant_drops_total", "counter"},
      {"opendesc_compile_runs_total", "counter"},
      {"opendesc_compile_paths_explored", "gauge"},
      {"opendesc_compile_chosen_size_bytes", "gauge"},
  };
  // The server's self-instrumentation only exists when a server does, so
  // these are golden schema for live scrapes, not --metrics-out files.
  static const std::pair<const char*, const char*> kLiveRequired[] = {
      {"opendesc_http_requests_total", "counter"},
      {"opendesc_http_connections", "gauge"},
      {"opendesc_http_request_duration_ns", "histogram"},
  };
  const auto require = [&chk](const char* name, const char* kind) {
    const auto it = chk.types.find(name);
    if (it == chk.types.end()) {
      chk.errors.push_back(std::string("schema: required family '") + name +
                           "' missing");
    } else if (it->second != kind) {
      chk.errors.push_back(std::string("schema: '") + name + "' is " +
                           it->second + ", expected " + kind);
    }
  };
  for (const auto& [name, kind] : kRequired) {
    require(name, kind);
  }
  if (live) {
    for (const auto& [name, kind] : kLiveRequired) {
      require(name, kind);
    }
  }
}

void check_path_invariant(Checker& chk) {
  double delivered = 0.0;
  bool have_delivered = false;
  std::map<std::string, double> per_semantic;
  for (const Sample& sample : chk.samples) {
    if (sample.name == "opendesc_rx_packets_total") {
      delivered += sample.value;
      have_delivered = true;
    } else if (sample.name == "opendesc_semantic_reads_total") {
      std::string semantic, path;
      for (const auto& [k, v] : sample.labels) {
        if (k == "semantic") {
          semantic = v;
        } else if (k == "path") {
          path = v;
        }
      }
      if (path != "nic_path" && path != "softnic_shim" && path != "unavailable") {
        chk.errors.push_back("invariant: unknown path label '" + path + "'");
        continue;
      }
      per_semantic[semantic] += sample.value;
    }
  }
  if (!have_delivered) {
    return;  // schema check already reported the missing family
  }
  if (per_semantic.empty()) {
    chk.errors.push_back(
        "invariant: no opendesc_semantic_reads_total series found");
    return;
  }
  for (const auto& [semantic, total] : per_semantic) {
    if (std::fabs(total - delivered) > 1e-9) {
      std::ostringstream message;
      message << "invariant: semantic '" << semantic
              << "' path counts sum to " << total << ", expected " << delivered
              << " delivered packets";
      chk.errors.push_back(message.str());
    }
  }
}

// --- live mode: a minimal standalone HTTP/1.1 client ------------------------
//
// The event-loop server speaks HTTP/1.1 with keep-alive and chunked
// transfer-encoding (streamed routes like /metrics carry no Content-Length),
// so the checker frames responses properly: Content-Length, chunked decode,
// or read-to-EOF.  Probes against one host:port all ride a single reused
// connection — exercising the server's keep-alive path from a plain
// external client's point of view.

struct FetchResult {
  int status = 0;
  std::string body;
};

struct UrlParts {
  std::string hostport;  ///< "host:port" as written
  std::string host;
  int port = 0;
  std::string path;
};

std::optional<UrlParts> split_url(const std::string& url, std::string& error) {
  const std::string scheme = "http://";
  if (url.compare(0, scheme.size(), scheme) != 0) {
    error = "only http:// URLs are supported";
    return std::nullopt;
  }
  UrlParts parts;
  const std::size_t host_at = scheme.size();
  const std::size_t path_at = url.find('/', host_at);
  parts.hostport = url.substr(
      host_at, (path_at == std::string::npos ? url.size() : path_at) - host_at);
  parts.path = path_at == std::string::npos ? "/" : url.substr(path_at);
  const std::size_t colon = parts.hostport.rfind(':');
  if (colon == std::string::npos) {
    error = "URL must carry an explicit port (http://host:port/path)";
    return std::nullopt;
  }
  parts.host = parts.hostport.substr(0, colon);
  try {
    parts.port = std::stoi(parts.hostport.substr(colon + 1));
  } catch (const std::exception&) {
    parts.port = 0;
  }
  if (parts.port <= 0 || parts.port > 65535) {
    error = "bad port in URL '" + url + "'";
    return std::nullopt;
  }
  return parts;
}

/// IPv4 dotted-quad hosts only (the observability server binds loopback).
int connect_to(const std::string& host, int port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    error = "unparseable IPv4 host '" + host + "'";
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    error = "connect " + host + ":" + std::to_string(port) + ": " +
            std::strerror(errno);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data, std::string& error) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One recv() appended to `pending`; false on error or EOF (sets `eof`).
bool recv_append(int fd, std::string& pending, bool& eof, std::string& error) {
  char buffer[4096];
  const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
  if (n < 0) {
    error = std::string("recv: ") + std::strerror(errno);
    return false;
  }
  if (n == 0) {
    eof = true;
    return false;
  }
  pending.append(buffer, static_cast<std::size_t>(n));
  return true;
}

/// Reads one complete response off `fd`, consuming it from `pending` (extra
/// bytes of a pipelined next response stay buffered).  `reusable` reports
/// whether the connection can carry another request afterwards.
std::optional<FetchResult> read_response(int fd, std::string& pending,
                                         bool& reusable, std::string& error) {
  reusable = false;
  bool eof = false;
  std::size_t header_end = std::string::npos;
  while ((header_end = pending.find("\r\n\r\n")) == std::string::npos) {
    if (!recv_append(fd, pending, eof, error)) {
      if (eof) {
        error = "connection closed before response headers";
      }
      return std::nullopt;
    }
  }
  const std::string head = pending.substr(0, header_end);
  pending.erase(0, header_end + 4);

  FetchResult result;
  const std::size_t sp = head.find(' ');
  if (sp == std::string::npos || sp + 4 > head.size()) {
    error = "malformed HTTP status line";
    return std::nullopt;
  }
  try {
    result.status = std::stoi(head.substr(sp + 1, 3));
  } catch (const std::exception&) {
    error = "malformed HTTP status code";
    return std::nullopt;
  }

  // Scan headers (case-insensitive) for the three framing-relevant ones.
  auto header_value = [&head](const char* name) -> std::optional<std::string> {
    std::istringstream lines(head);
    std::string line;
    std::getline(lines, line);  // status line
    while (std::getline(lines, line)) {
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) {
        continue;
      }
      std::string key = line.substr(0, colon);
      for (char& c : key) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      if (key == name) {
        std::size_t at = colon + 1;
        while (at < line.size() && line[at] == ' ') {
          ++at;
        }
        return line.substr(at);
      }
    }
    return std::nullopt;
  };

  const auto connection = header_value("connection");
  const auto transfer = header_value("transfer-encoding");
  const auto length = header_value("content-length");

  if (transfer && transfer->find("chunked") != std::string::npos) {
    // Chunked: decode size-line/data pairs until the zero chunk.
    for (;;) {
      std::size_t line_end = std::string::npos;
      while ((line_end = pending.find("\r\n")) == std::string::npos) {
        if (!recv_append(fd, pending, eof, error)) {
          if (eof) {
            error = "connection closed inside chunked body";
          }
          return std::nullopt;
        }
      }
      std::size_t size = 0;
      try {
        size = std::stoul(pending.substr(0, line_end), nullptr, 16);
      } catch (const std::exception&) {
        error = "malformed chunk size '" + pending.substr(0, line_end) + "'";
        return std::nullopt;
      }
      pending.erase(0, line_end + 2);
      while (pending.size() < size + 2) {
        if (!recv_append(fd, pending, eof, error)) {
          if (eof) {
            error = "connection closed inside chunk data";
          }
          return std::nullopt;
        }
      }
      if (size == 0) {
        pending.erase(0, 2);  // trailing CRLF after the last chunk
        break;
      }
      result.body.append(pending, 0, size);
      pending.erase(0, size + 2);
    }
    reusable = !(connection && connection->find("close") != std::string::npos);
    return result;
  }

  if (length) {
    std::size_t want = 0;
    try {
      want = std::stoul(*length);
    } catch (const std::exception&) {
      error = "malformed Content-Length '" + *length + "'";
      return std::nullopt;
    }
    while (pending.size() < want) {
      if (!recv_append(fd, pending, eof, error)) {
        if (eof) {
          error = "connection closed inside body";
        }
        return std::nullopt;
      }
    }
    result.body = pending.substr(0, want);
    pending.erase(0, want);
    reusable = !(connection && connection->find("close") != std::string::npos);
    return result;
  }

  // No framing header: the body runs to EOF and the connection is spent.
  while (recv_append(fd, pending, eof, error)) {
  }
  if (!eof) {
    return std::nullopt;  // recv error, message already set
  }
  result.body = std::move(pending);
  pending.clear();
  return result;
}

/// One-shot GET of an `http://host:port/path` URL on its own connection.
std::optional<FetchResult> http_fetch(const std::string& url,
                                      std::string& error) {
  const auto parts = split_url(url, error);
  if (!parts) {
    return std::nullopt;
  }
  const int fd = connect_to(parts->host, parts->port, error);
  if (fd < 0) {
    return std::nullopt;
  }
  if (!send_all(fd,
                "GET " + parts->path + " HTTP/1.1\r\nHost: " + parts->hostport +
                    "\r\nConnection: close\r\n\r\n",
                error)) {
    ::close(fd);
    return std::nullopt;
  }
  std::string pending;
  bool reusable = false;
  const auto result = read_response(fd, pending, reusable, error);
  ::close(fd);
  return result;
}

/// A keep-alive probe session: requests against the same host:port reuse one
/// connection, reconnecting only if the server recycled it in between.
struct ProbeSession {
  int fd = -1;
  std::string hostport;
  std::string pending;
  std::size_t on_this_conn = 0;
  std::size_t connections = 0;

  ~ProbeSession() {
    if (fd >= 0) {
      ::close(fd);
    }
  }

  std::optional<FetchResult> get(const UrlParts& parts, std::string& error) {
    if (fd >= 0 && parts.hostport != hostport) {
      ::close(fd);
      fd = -1;
    }
    if (fd < 0) {
      fd = connect_to(parts.host, parts.port, error);
      if (fd < 0) {
        return std::nullopt;
      }
      hostport = parts.hostport;
      pending.clear();
      on_this_conn = 0;
      ++connections;
    }
    const std::string request = "GET " + parts.path + " HTTP/1.1\r\nHost: " +
                                parts.hostport + "\r\n\r\n";
    if (!send_all(fd, request, error)) {
      ::close(fd);
      fd = -1;
      return std::nullopt;
    }
    bool reusable = false;
    const auto result = read_response(fd, pending, reusable, error);
    if (!result || !reusable) {
      ::close(fd);
      fd = -1;
    }
    if (result) {
      ++on_this_conn;
    }
    return result;
  }
};

bool is_url(const std::string& arg) {
  return arg.compare(0, 7, "http://") == 0;
}

/// First `"key":<number>` at or after `from` — shallow JSON field reads for
/// the /profile probe (stod stops at the first non-numeric character).
std::optional<double> json_number_after(const std::string& body,
                                        std::size_t from,
                                        const std::string& key) {
  const std::size_t at = body.find("\"" + key + "\":", from);
  if (at == std::string::npos) {
    return std::nullopt;
  }
  try {
    return std::stod(body.substr(at + key.size() + 3));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Shallow consistency check of a /profile?format=json body: the aggregate
/// must exist, its work/wait partition must reproduce loop_ns, its per-stage
/// ns must sum to loop_ns, and it cannot have sampled more packets than it
/// processed.  Returns an error description, empty on success.
std::string check_profile_body(const std::string& body) {
  const std::size_t total_at = body.find("\"total\":{");
  if (body.find("\"lanes\":") == std::string::npos ||
      total_at == std::string::npos) {
    return "body lacks \"lanes\"/\"total\" keys";
  }
  const auto work = json_number_after(body, total_at, "work_ns");
  const auto wait = json_number_after(body, total_at, "wait_ns");
  const auto loop = json_number_after(body, total_at, "loop_ns");
  const auto packets = json_number_after(body, total_at, "packets");
  const auto sampled = json_number_after(body, total_at, "sampled_packets");
  if (!work || !wait || !loop || !packets || !sampled) {
    return "total object lacks work_ns/wait_ns/loop_ns/packets keys";
  }
  // Rendered values carry one decimal, so the identities hold to rounding.
  const double tol = std::max(1.0, 1e-3 * std::fabs(*loop));
  if (std::fabs(*work + *wait - *loop) > tol) {
    std::ostringstream message;
    message << "work/wait partition broken: " << *work << " + " << *wait
            << " != " << *loop;
    return message.str();
  }
  if (*sampled > *packets + 1e-9) {
    std::ostringstream message;
    message << "sampled_packets " << *sampled << " exceeds packets "
            << *packets;
    return message.str();
  }
  // Per-stage ns of the aggregate (its "stages" object, bounded by the
  // "epochs" array that follows) must sum back to loop_ns.
  const std::size_t stages_at = body.find("\"stages\":{", total_at);
  const std::size_t epochs_at = body.find("\"epochs\":", total_at);
  if (stages_at == std::string::npos) {
    return "total object lacks a \"stages\" map";
  }
  double stage_sum = 0.0;
  std::size_t cursor = stages_at;
  for (;;) {
    const std::size_t ns_at = body.find("\"ns\":", cursor + 1);
    if (ns_at == std::string::npos ||
        (epochs_at != std::string::npos && ns_at > epochs_at)) {
      break;
    }
    if (const auto ns = json_number_after(body, ns_at, "ns")) {
      stage_sum += *ns;
    }
    cursor = ns_at + 4;
  }
  if (std::fabs(stage_sum - *loop) > tol) {
    std::ostringstream message;
    message << "per-stage ns sum " << stage_sum << " disagrees with loop_ns "
            << *loop;
    return message.str();
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  std::string spans_url;
  std::vector<std::string> probes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--probe") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "scrape_check: --probe needs a URL\n");
        return 2;
      }
      probes.emplace_back(argv[++i]);
    } else if (arg == "--spans") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "scrape_check: --spans needs a URL\n");
        return 2;
      }
      spans_url = argv[++i];
    } else if (source.empty()) {
      source = arg;
    } else {
      std::fprintf(stderr, "scrape_check: unexpected argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (source.empty()) {
    std::fprintf(stderr,
                 "usage: scrape_check <scrape.prom | http://host:port/metrics> "
                 "[--probe http://host:port/path]... "
                 "[--spans http://host:port/spans]\n");
    return 2;
  }

  // Liveness/readiness probes: each must answer 200.  Health-plane routes
  // additionally get a shallow schema check — the body must carry the JSON
  // keys an external consumer keys off of.  All probes against one
  // host:port share a single keep-alive connection, so a multi-probe run
  // doubles as a conformance check of the server's connection reuse.
  bool probe_failed = false;
  ProbeSession session;
  for (const std::string& probe : probes) {
    std::string error;
    UrlParts parts;
    if (const auto split = split_url(probe, error)) {
      parts = *split;
    } else {
      std::fprintf(stderr, "scrape_check: probe %s: %s\n", probe.c_str(),
                   error.c_str());
      probe_failed = true;
      continue;
    }
    const auto got = session.get(parts, error);
    if (!got) {
      std::fprintf(stderr, "scrape_check: probe %s: %s\n", probe.c_str(),
                   error.c_str());
      probe_failed = true;
      continue;
    }
    if (got->status != 200) {
      std::fprintf(stderr, "scrape_check: probe %s: HTTP %d, expected 200\n",
                   probe.c_str(), got->status);
      probe_failed = true;
      continue;
    }
    const std::size_t path_at = probe.find('/', 7);
    const std::string path =
        path_at == std::string::npos ? "/" : probe.substr(path_at);
    if (path.compare(0, 7, "/alerts") == 0 &&
        path.find("format=tsv") == std::string::npos) {
      if (got->body.find("\"rules\":") == std::string::npos ||
          got->body.find("\"firing\":") == std::string::npos) {
        std::fprintf(stderr,
                     "scrape_check: probe %s: /alerts body lacks "
                     "\"rules\"/\"firing\" keys\n",
                     probe.c_str());
        probe_failed = true;
        continue;
      }
    } else if (path.compare(0, 7, "/layout") == 0 &&
               path.find("format=tsv") == std::string::npos) {
      if (got->body.find("\"epoch\":") == std::string::npos ||
          got->body.find("\"swaps\":") == std::string::npos) {
        std::fprintf(stderr,
                     "scrape_check: probe %s: /layout body lacks "
                     "\"epoch\"/\"swaps\" keys\n",
                     probe.c_str());
        probe_failed = true;
        continue;
      }
    } else if (path.compare(0, 8, "/profile") == 0 &&
               (path.find("format=") == std::string::npos ||
                path.find("format=json") != std::string::npos)) {
      const std::string profile_error = check_profile_body(got->body);
      if (!profile_error.empty()) {
        std::fprintf(stderr, "scrape_check: probe %s: /profile %s\n",
                     probe.c_str(), profile_error.c_str());
        probe_failed = true;
        continue;
      }
    } else if (path.compare(0, 11, "/timeseries") == 0 &&
               path.find("format=tsv") == std::string::npos) {
      // Catalog form exposes "metrics": [...], single-metric form "metric":.
      if (got->body.find("\"metrics\":") == std::string::npos &&
          got->body.find("\"metric\":") == std::string::npos) {
        std::fprintf(stderr,
                     "scrape_check: probe %s: /timeseries body lacks a "
                     "\"metric(s)\" key\n",
                     probe.c_str());
        probe_failed = true;
        continue;
      }
    }
    std::printf("probe OK: %s%s\n", probe.c_str(),
                session.on_this_conn > 1 ? "  (reused keep-alive connection)"
                                         : "");
  }
  if (probes.size() > 1 && !probe_failed && session.connections > 0) {
    std::printf("keep-alive: %zu probe(s) over %zu connection(s)\n",
                probes.size(), session.connections);
  }

  std::string text;
  if (is_url(source)) {
    std::string error;
    const auto got = http_fetch(source, error);
    if (!got) {
      std::fprintf(stderr, "scrape_check: %s: %s\n", source.c_str(),
                   error.c_str());
      return 2;
    }
    if (got->status != 200) {
      std::fprintf(stderr, "scrape_check: %s: HTTP %d\n", source.c_str(),
                   got->status);
      return 2;
    }
    text = got->body;
  } else {
    std::ifstream in(source);
    if (!in) {
      std::fprintf(stderr, "scrape_check: cannot open '%s'\n", source.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }

  Checker chk;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    check_line(chk, line, ++lineno);
  }
  if (lineno == 0) {
    chk.errors.push_back("scrape is empty");
  }
  check_histograms(chk);
  check_schema(chk, is_url(source));
  check_path_invariant(chk);

  // Exemplar resolution: every trace_id a bucket line advertises must name
  // a trace the /spans endpoint can actually serve — the whole point of an
  // exemplar is that the operator can follow it.
  if (!spans_url.empty()) {
    std::string error;
    const auto got = http_fetch(spans_url, error);
    if (!got) {
      chk.errors.push_back("spans: " + spans_url + ": " + error);
    } else if (got->status != 200) {
      chk.errors.push_back("spans: " + spans_url + ": HTTP " +
                           std::to_string(got->status));
    } else if (got->body.find("\"traces\":") == std::string::npos) {
      chk.errors.push_back("spans: body lacks a \"traces\" key");
    } else if (!chk.exemplar_trace_ids.empty()) {
      // A cold bucket's exemplar can outlive the span rings' retention
      // window, so a stale id is a warning; resolution as a mechanism must
      // still demonstrably work — zero resolved ids is an error.
      std::size_t resolved = 0;
      for (const std::string& id : chk.exemplar_trace_ids) {
        if (got->body.find("\"trace_id\":\"" + id + "\"") !=
            std::string::npos) {
          ++resolved;
        } else {
          std::fprintf(stderr,
                       "scrape_check: warning: exemplar trace_id '%s' no "
                       "longer retained by %s\n",
                       id.c_str(), spans_url.c_str());
        }
      }
      if (resolved == 0) {
        chk.errors.push_back("spans: none of " +
                             std::to_string(chk.exemplar_trace_ids.size()) +
                             " exemplar trace ids resolve in " + spans_url);
      } else {
        std::printf("spans OK: %zu/%zu exemplar trace id(s) resolved\n",
                    resolved, chk.exemplar_trace_ids.size());
      }
    }
  }

  if (!chk.errors.empty() || probe_failed) {
    for (const std::string& error : chk.errors) {
      std::fprintf(stderr, "scrape_check: %s\n", error.c_str());
    }
    return 1;
  }
  std::printf("scrape OK: %zu families, %zu series\n", chk.types.size(),
              chk.samples.size());
  return 0;
}
