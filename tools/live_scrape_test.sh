#!/bin/sh
# Live observability pipeline test: boot `opendesc serve` on an ephemeral
# port, validate the /metrics exposition with scrape_check (grammar, golden
# schema, per-semantic path invariant) and probe every other endpoint for
# 200, then tear the server down.
#
#   live_scrape_test.sh <opendesc-binary> <scrape_check-binary> <workdir>
set -u

OPENDESC=$1
SCRAPE_CHECK=$2
DIR=$3
PORT_FILE="$DIR/live_scrape.port"
LOG="$DIR/live_scrape.log"

mkdir -p "$DIR"
rm -f "$PORT_FILE"
"$OPENDESC" serve --nic ice --packets 2000 --queues 4 --fault-rate 0.01 \
    --fault-seed 7 --guard --flows 1024 --churn 0.01 --trace-sample 64 \
    --listen 127.0.0.1:0 --port-file "$PORT_FILE" \
    --runs 0 >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; wait "$SERVER_PID" 2>/dev/null' EXIT

# Wait for the server to publish its kernel-chosen port.
tries=0
while [ ! -s "$PORT_FILE" ]; do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "live_scrape_test: server exited before publishing its port" >&2
        cat "$LOG" >&2
        exit 1
    fi
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "live_scrape_test: server never wrote $PORT_FILE" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
PORT=$(cat "$PORT_FILE")
BASE="http://127.0.0.1:$PORT"

# Readiness gate with bounded backoff: /readyz legitimately answers 503 in
# the instants before every queue lands its first batch, and under scheduler
# pressure that warm-up can take a while.  Waiting here (0.1s doubling to a
# 1.6s cap) keeps the full probe set below from burning its retries against
# a known-cold server.
delay=0.1
tries=0
while ! "$SCRAPE_CHECK" "$BASE/metrics" --probe "$BASE/readyz" \
        >/dev/null 2>&1; do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "live_scrape_test: server died before turning ready" >&2
        cat "$LOG" >&2
        exit 1
    fi
    tries=$((tries + 1))
    if [ "$tries" -ge 15 ]; then
        echo "live_scrape_test: $BASE/readyz never turned ready" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep "$delay"
    case "$delay" in
        0.1) delay=0.2 ;;
        0.2) delay=0.4 ;;
        0.4) delay=0.8 ;;
        *)   delay=1.6 ;;
    esac
done

# The golden-schema families only exist once the first run has published,
# so the whole probe set still retries until the engine is warm.
tries=0
while :; do
    if "$SCRAPE_CHECK" "$BASE/metrics" \
        --probe "$BASE/healthz" --probe "$BASE/readyz" \
        --probe "$BASE/metrics.json" --probe "$BASE/traces" \
        --probe "$BASE/traces?queue=0" --probe "$BASE/flight" \
        --probe "$BASE/alerts" --probe "$BASE/timeseries" \
        --probe "$BASE/layout" --probe "$BASE/flows" \
        --probe "$BASE/flows?format=tsv" \
        --probe "$BASE/profile?seconds=0&format=json" \
        --probe "$BASE/spans" --probe "$BASE/spans?format=perfetto" \
        --probe "$BASE/buildinfo" \
        --spans "$BASE/spans"; then
        exit 0
    fi
    tries=$((tries + 1))
    if [ "$tries" -ge 30 ]; then
        echo "live_scrape_test: scrape_check never passed against $BASE" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done
