#!/bin/sh
# Profiler pipeline test: boot `opendesc serve` under 1% composite faults,
# let the engine warm, then capture a 1-second /profile window through the
# `opendesc profile` subcommand in all three export formats and assert every
# active queue shows up with non-empty stage rows.
#
#   cli_profile_scrape_test.sh <opendesc-binary> <scrape_check-binary> <workdir>
set -u

OPENDESC=$1
SCRAPE_CHECK=$2
DIR=$3
PORT_FILE="$DIR/profile_scrape.port"
LOG="$DIR/profile_scrape.log"

mkdir -p "$DIR"
rm -f "$PORT_FILE"
"$OPENDESC" serve --nic ice --packets 2000 --queues 4 --fault-rate 0.01 \
    --fault-seed 11 --guard --listen 127.0.0.1:0 --port-file "$PORT_FILE" \
    --runs 0 >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; wait "$SERVER_PID" 2>/dev/null' EXIT

tries=0
while [ ! -s "$PORT_FILE" ]; do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "cli_profile_scrape: server exited before publishing its port" >&2
        cat "$LOG" >&2
        exit 1
    fi
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "cli_profile_scrape: server never wrote $PORT_FILE" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
PORT=$(cat "$PORT_FILE")
BASE="http://127.0.0.1:$PORT"

# Warm-up gate: wait until the cumulative profile validates (the probe checks
# the work/wait partition and the stage sum), which implies the engine has
# run at least one batch through every lane.
tries=0
while ! "$SCRAPE_CHECK" "$BASE/metrics" \
        --probe "$BASE/profile?seconds=0&format=json" >/dev/null 2>&1; do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "cli_profile_scrape: server died during warm-up" >&2
        cat "$LOG" >&2
        exit 1
    fi
    tries=$((tries + 1))
    if [ "$tries" -ge 50 ]; then
        echo "cli_profile_scrape: /profile never validated against $BASE" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done

# A 1-second window in each export format.  Traffic is continuous (--runs 0),
# but a window can straddle a run boundary, so each capture gets a few tries.
capture() {
    fmt=$1
    want=$2
    tries=0
    while :; do
        body=$("$OPENDESC" profile --url "$BASE" --seconds 1 --format "$fmt")
        if [ -n "$body" ]; then
            missing=0
            for needle in $want; do
                case "$body" in
                    *"$needle"*) ;;
                    *) missing=1 ;;
                esac
            done
            if [ "$missing" -eq 0 ]; then
                return 0
            fi
        fi
        tries=$((tries + 1))
        if [ "$tries" -ge 5 ]; then
            echo "cli_profile_scrape: $fmt window missing expected rows" >&2
            echo "$body" >&2
            cat "$LOG" >&2
            exit 1
        fi
    done
}

# Collapsed stacks: every active queue contributes work frames, and the
# dispatch lane is present too.
capture collapsed "opendesc;queue0; opendesc;queue1; opendesc;queue2; opendesc;queue3; opendesc;dispatch;"
# speedscope: schema header plus one evented profile per queue lane.
capture speedscope "speedscope.app/file-format-schema.json \"name\":\"queue0\" \"name\":\"queue3\" \"unit\":\"nanoseconds\""
# JSON: lanes array with per-stage breakdowns for the worker lanes.
capture json "\"lanes\":[ \"lane\":\"queue0\" \"lane\":\"queue3\" \"lane\":\"dispatch\" \"stages\":{ \"work_ns_per_packet\":"

echo "profile pipeline OK"
exit 0
