#!/bin/sh
# End-to-end health-plane pipeline: boot `opendesc serve` with an SLO rules
# file under 1-2% composite faults, watch the drop-share rule walk
# pending -> firing (with an attached flight capture) through /alerts and
# `opendesc top`, validate the /alerts and /timeseries schemas with
# scrape_check, then let the traffic stop (finite --runs plus --idle-ms
# linger) so the windowed rates decay and the rule resolves before the final
# --alerts-out snapshot is written.
#
#   health_pipeline_test.sh <opendesc-binary> <scrape_check-binary> <workdir>
set -u

OPENDESC=$1
SCRAPE_CHECK=$2
DIR=$3
PORT_FILE="$DIR/health_pipeline.port"
LOG="$DIR/health_pipeline.log"
RULES="$DIR/health_pipeline.rules"
ALERTS="$DIR/health_pipeline.alerts.json"
FLIGHT="$DIR/health_pipeline.flight.json"

mkdir -p "$DIR"
rm -f "$PORT_FILE" "$ALERTS" "$FLIGHT"

# Short windows so the rates both rise and decay within the test's horizon.
cat > "$RULES" <<'EOF'
# Quarantined share of delivered packets over a 2s window; at a 2% composite
# fault rate the true ratio sits around 1e-2, far above the threshold.
drop_share: rate(opendesc_rx_quarantined_total[2s]) / rate(opendesc_rx_packets_total[2s]) > 0.0001 for 3
EOF

"$OPENDESC" serve --nic ice --packets 20000 --queues 2 --fault-rate 0.02 \
    --fault-seed 7 --guard --listen 127.0.0.1:0 --port-file "$PORT_FILE" \
    --runs 150 --rules "$RULES" --idle-ms 8000 --alerts-out "$ALERTS" \
    --flight-out "$FLIGHT" >"$LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null; wait "$SERVER_PID" 2>/dev/null' EXIT

# Wait for the kernel-chosen port.
tries=0
while [ ! -s "$PORT_FILE" ]; do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "health_pipeline_test: server exited before publishing its port" >&2
        cat "$LOG" >&2
        exit 1
    fi
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "health_pipeline_test: server never wrote $PORT_FILE" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
PORT=$(cat "$PORT_FILE")
BASE="http://127.0.0.1:$PORT"

# Phase 1: the rule must reach firing while traffic flows.  `opendesc top`
# doubles as the poller — its alert pane renders the /alerts TSV.
tries=0
while :; do
    TOP_OUT=$("$OPENDESC" top --url "$BASE" --iterations 1 --plain 2>/dev/null || true)
    if echo "$TOP_OUT" | grep -q "drop_share.*firing"; then
        break
    fi
    tries=$((tries + 1))
    if [ "$tries" -ge 80 ]; then
        echo "health_pipeline_test: drop_share never reached firing" >&2
        echo "$TOP_OUT" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
echo "alert firing observed via top"

# Phase 2: schema checks while the server is live.  The full /metrics
# grammar+invariant pass retries because a scrape can land mid-run, when the
# live-published rx counters are legitimately ahead of the per-run
# semantic-read totals.
tries=0
while :; do
    if "$SCRAPE_CHECK" "$BASE/metrics" \
        --probe "$BASE/alerts" --probe "$BASE/timeseries" \
        --probe "$BASE/timeseries?metric=opendesc_rx_packets_total&window=10s"; then
        break
    fi
    tries=$((tries + 1))
    if [ "$tries" -ge 30 ]; then
        echo "health_pipeline_test: scrape_check never passed against $BASE" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done

# Phase 3: the runs are finite, so traffic stops and --idle-ms keeps the
# sampler alive while the 2s-window rates decay to zero; the rule must
# resolve before the final snapshot.  Wait for the natural exit.
wait "$SERVER_PID"
STATUS=$?
trap - EXIT
if [ "$STATUS" -ne 0 ]; then
    echo "health_pipeline_test: server exited with status $STATUS" >&2
    cat "$LOG" >&2
    exit 1
fi

# The incident *body* can be evicted from the bounded recorder by the flood
# of later quarantine incidents, but the by-cause total survives eviction —
# assert on that.
if ! grep -Eq '"alert_fired": *[1-9]' "$FLIGHT"; then
    echo "health_pipeline_test: flight by_cause shows no alert_fired capture" >&2
    cat "$FLIGHT" >&2
    exit 1
fi
if ! grep -Eq '"flight_capture_id":[1-9]' "$ALERTS"; then
    echo "health_pipeline_test: alert snapshot lacks a flight capture id" >&2
    cat "$ALERTS" >&2
    exit 1
fi
if ! grep -q '"state":"resolved"' "$ALERTS"; then
    echo "health_pipeline_test: drop_share never resolved after traffic stopped" >&2
    cat "$ALERTS" >&2
    exit 1
fi
echo "health pipeline OK"
