// The `opendesc` command-line compiler.
//
//   opendesc list-nics
//       Catalog of built-in NIC interface descriptions.
//   opendesc semantics
//       The semantic alphabet Σ with widths and software costs.
//   opendesc paths --nic <name|file.p4>
//       Completion paths (and TX descriptor formats) of a NIC description.
//   opendesc compile --nic <name|file.p4> --intent <file.p4>
//                    [--tx] [--alpha <float>] [--out <dir>] [--quiet]
//       Full compilation: prints the report; with --out, writes the
//       generated artifacts (user header, XDP header, manifest, CFG dot).
//
// NIC arguments name either a catalog entry (e.g. "mlx5") or a path to a
// standalone P4 interface description.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "core/planner.hpp"
#include "core/txdesc.hpp"
#include "p4/parser.hpp"
#include "nic/model.hpp"

namespace {

using namespace opendesc;
namespace fs = std::filesystem;

int usage() {
  std::cerr <<
      "usage:\n"
      "  opendesc list-nics\n"
      "  opendesc semantics\n"
      "  opendesc paths --nic <name|file.p4>\n"
      "  opendesc compile --nic <name|file.p4> --intent <file.p4>\n"
      "                   [--tx] [--alpha <float>] [--out <dir>] [--quiet]\n"
      "                   [--plan <pipeline-stage-budget>]\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error(ErrorKind::io, "cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Catalog name → its P4 source; otherwise treat as a file path.
std::string resolve_nic_source(const std::string& nic_arg) {
  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    if (model.name() == nic_arg) {
      return model.p4_source();
    }
  }
  return read_file(nic_arg);
}

struct Args {
  std::string command;
  std::string nic;
  std::string intent;
  std::string out_dir;
  double alpha = 1.0;
  bool tx = false;
  bool quiet = false;
  int plan_stages = -1;  ///< >= 0: print an offload placement plan
};

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) {
    return false;
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--nic") {
      const char* v = next();
      if (!v) return false;
      args.nic = v;
    } else if (arg == "--intent") {
      const char* v = next();
      if (!v) return false;
      args.intent = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      args.out_dir = v;
    } else if (arg == "--alpha") {
      const char* v = next();
      if (!v) return false;
      args.alpha = std::stod(v);
    } else if (arg == "--plan") {
      const char* v = next();
      if (!v) return false;
      args.plan_stages = std::stoi(v);
    } else if (arg == "--tx") {
      args.tx = true;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

int cmd_list_nics() {
  std::printf("%-10s %-24s %s\n", "name", "class", "description");
  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    std::printf("%-10s %-24s %s\n", model.name().c_str(),
                to_string(model.nic_class()).c_str(),
                model.description().c_str());
  }
  return 0;
}

int cmd_semantics() {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  std::printf("%-16s %6s %12s  %s\n", "name", "bits", "w(s) ns", "description");
  for (const softnic::SemanticInfo& info : registry.all()) {
    const double cost = costs.cost(info.id);
    std::printf("%-16s %6zu %12s  %s\n", info.name.c_str(), info.bit_width,
                cost >= softnic::kInfiniteCost ? "inf"
                                               : std::to_string(cost).c_str(),
                info.description.c_str());
  }
  return 0;
}

int cmd_paths(const Args& args) {
  if (args.nic.empty()) {
    return usage();
  }
  const std::string source = resolve_nic_source(args.nic);
  const p4::Program program = p4::parse_program(source);
  const p4::TypeInfo types = p4::check_program(program);
  softnic::SemanticRegistry registry;

  const p4::ControlDecl& deparser = core::select_deparser(program, "");
  const core::Cfg cfg = core::build_cfg(program, types, deparser, registry);
  core::PathEnumOptions options;
  options.consts = types.constants();
  options.variable_bounds = core::context_bounds(program, types, deparser);
  const auto paths = core::enumerate_paths(cfg, options);

  std::cout << "Completion deparser " << deparser.name() << ": "
            << cfg.emit_count() << " emits, " << cfg.branch_count()
            << " branches, " << paths.size() << " feasible path(s)\n";
  for (const auto& path : paths) {
    std::cout << "  " << path.describe(registry) << "\n";
  }

  // TX formats when described.
  for (const p4::ParserDecl* parser : program.parsers()) {
    const bool has_desc_in = std::any_of(
        parser->params().begin(), parser->params().end(), [](const p4::Param& p) {
          return p.type.kind == p4::TypeRef::Kind::named &&
                 p.type.name == "desc_in";
        });
    if (!has_desc_in) {
      continue;
    }
    core::TxDescOptions tx_options;
    tx_options.consts = types.constants();
    const auto formats =
        core::enumerate_tx_formats(program, types, *parser, registry, tx_options);
    std::cout << "Descriptor parser " << parser->name() << ": "
              << formats.size() << " format(s)\n";
    for (const auto& fmt : formats) {
      std::cout << "  " << fmt.describe(registry) << "\n";
    }
  }
  return 0;
}

int cmd_compile(const Args& args) {
  if (args.nic.empty() || args.intent.empty()) {
    return usage();
  }
  const std::string nic_source = resolve_nic_source(args.nic);
  const std::string intent_source = read_file(args.intent);

  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  core::CompileOptions options;
  options.dma_weight_per_byte = args.alpha;

  const core::CompileResult result =
      args.tx ? compiler.compile_tx(nic_source, intent_source, options)
              : compiler.compile(nic_source, intent_source, options);

  if (!args.quiet) {
    std::cout << result.report << "\n";
  }
  if (args.plan_stages >= 0) {
    // Placement plan: which shims a programmable pipeline could absorb.
    nic::NicClass nic_class = nic::NicClass::programmable;
    for (const nic::NicModel& model : nic::NicCatalog::all()) {
      if (model.name() == args.nic) {
        nic_class = model.nic_class();
      }
    }
    core::PlannerOptions planner_options;
    planner_options.pipeline_stage_budget =
        static_cast<std::uint32_t>(args.plan_stages);
    const core::FeatureLibrary library;
    std::cout << core::plan_offloads(result.shims, nic_class, library,
                                     planner_options)
                     .describe()
              << "\n";
  }
  if (!args.out_dir.empty()) {
    fs::create_directories(args.out_dir);
    const fs::path dir = args.out_dir;
    const std::string base = result.nic_name + (args.tx ? "_tx" : "");
    std::ofstream(dir / (base + ".h")) << result.c_header;
    if (!result.xdp_header.empty()) {
      std::ofstream(dir / (base + "_xdp.h")) << result.xdp_header;
    }
    std::ofstream(dir / (base + ".manifest")) << result.manifest;
    if (!result.cfg_dot.empty()) {
      std::ofstream(dir / (base + ".dot")) << result.cfg_dot;
    }
    std::cout << "wrote " << dir / (base + ".h") << ", "
              << dir / (base + ".manifest")
              << (args.tx ? "" : ", XDP header, CFG dot") << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    return usage();
  }
  try {
    if (args.command == "list-nics") {
      return cmd_list_nics();
    }
    if (args.command == "semantics") {
      return cmd_semantics();
    }
    if (args.command == "paths") {
      return cmd_paths(args);
    }
    if (args.command == "compile") {
      return cmd_compile(args);
    }
    return usage();
  } catch (const Error& e) {
    std::cerr << "opendesc: " << e.what() << "\n";
    return 1;
  }
}
