// The `opendesc` command-line compiler.
//
//   opendesc list-nics
//       Catalog of built-in NIC interface descriptions.
//   opendesc semantics
//       The semantic alphabet Σ with widths and software costs.
//   opendesc paths --nic <name|file.p4>
//       Completion paths (and TX descriptor formats) of a NIC description.
//   opendesc compile --nic <name|file.p4> --intent <file.p4>
//                    [--tx] [--alpha <float>] [--out <dir>] [--quiet]
//       Full compilation: prints the report; with --out, writes the
//       generated artifacts (user header, XDP header, manifest, CFG dot).
//   opendesc simulate --nic <name|file.p4> [--intent <file.p4>]
//                     [--packets <n>] [--fault-rate <p>] [--fault-seed <n>]
//                     [--guard] [--queues <n>] [--batch <n>]
//                     [--swap-every <n>] [--flows <n>] [--flow-idle-ms <n>]
//                     [--churn <p>] [--tenants <n>] [--metrics-out <file>]
//       Compiles the intent, drives a synthetic workload through the
//       simulated NIC with the hardened (validating) receive loop, and
//       prints datapath + fault-recovery statistics.  --fault-rate injects
//       every fault class at the given per-packet probability; --guard
//       seals each completion record with the 16-bit integrity tag.
//       --queues > 1 runs the multi-queue engine instead: RSS steering
//       across N simulated hardware queues, one hardened worker each, with
//       per-queue and aggregate statistics.  --swap-every N hot-swaps the
//       live layout every N offered packets (alternating between the
//       intent compiled at the default alpha and a DMA-austere recompile),
//       exercising the epoch cutover path and printing the swap history
//       with per-epoch accounting.  --flows N tracks per-flow state in a
//       sharded flow table (N slots per queue; --flow-idle-ms expires idle
//       flows, --churn sets the workload's flow-turnover probability).
//       --tenants N runs the multi-tenant plane instead: N tenants with
//       their own intents compiled against the one NIC description, each
//       on an isolated engine (faults hit tenant0 only, so isolation is
//       visible in the per-tenant table).  --metrics-out writes the run's
//       telemetry registry as a Prometheus text scrape (or JSON when the
//       file ends in .json).
//   opendesc stats --nic <name|file.p4> [simulate options]
//                  [--format prometheus|json]
//       Same simulation, but prints the telemetry exposition to stdout
//       instead of the human-readable summary.
//   opendesc serve --nic <name|file.p4> [simulate options]
//                  [--listen <host:port>] [--port-file <file>] [--runs <n>]
//                  [--rules <file>] [--idle-ms <n>]
//       Live observability: embeds the HTTP scrape server (/metrics,
//       /metrics.json, /healthz, /readyz, /traces, /flight, /alerts,
//       /timeseries) and drives engine runs while it serves — `--runs 0`
//       loops until killed.  --rules loads SLO rules (see
//       docs/observability.md) evaluated each sampler tick; --idle-ms
//       keeps the server and sampler alive that long after finite runs
//       finish, so windowed rates decay and firing alerts can resolve.
//   opendesc top --url <http://host:port> [--interval <ms>]
//                [--iterations <n>] [--plain]
//       Live ANSI dashboard against a serving instance: per-queue goodput
//       sparklines (1s window), stage-latency p99, layout-epoch status
//       (current epoch, swap tallies), per-tenant flow-table panes
//       (/flows), and firing SLO alerts, refreshed every --interval ms.
//       Frames are truncated to the terminal height (LINES overrides the
//       probed size).  --iterations bounds the redraw count (0 = until
//       killed); --plain skips the ANSI screen clearing for logs and
//       tests, and never truncates.
//   opendesc profile --url <http://host:port> [--seconds <n>]
//                    [--format collapsed|speedscope|json|tsv]
//       One-shot hot-path profile capture against a serving instance:
//       waits out an N-second window (default 1; 0 = cumulative since
//       start) server-side and prints the rendering verbatim, so
//       `--format collapsed` pipes straight into flamegraph.pl and
//       `--format speedscope` into a speedscope.app import.
//
// `simulate` also accepts --listen (serve this one run live), --rules /
// --alerts-out (health-plane evaluation with a final JSON alert export),
// and --flight-out writes the fault flight recorder's postmortem JSON.
//
// Every value flag accepts both "--flag value" and "--flag=value".
// NIC arguments name either a catalog entry (e.g. "mlx5") or a path to a
// standalone P4 interface description.
#include <sys/ioctl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <type_traits>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "flow/metrics.hpp"
#include "flow/tenant.hpp"
#include "http/server.hpp"
#include "engine/engine.hpp"
#include "engine/publish.hpp"
#include "core/planner.hpp"
#include "core/txdesc.hpp"
#include "p4/parser.hpp"
#include "nic/model.hpp"
#include "runtime/epoch.hpp"
#include "runtime/guard.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/server.hpp"
#include "telemetry/sink.hpp"

namespace {

using namespace opendesc;
namespace fs = std::filesystem;

int usage() {
  std::cerr <<
      "usage:\n"
      "  opendesc list-nics\n"
      "  opendesc semantics\n"
      "  opendesc paths --nic <name|file.p4>\n"
      "  opendesc compile --nic <name|file.p4> --intent <file.p4>\n"
      "                   [--tx] [--alpha <float>] [--out <dir>] [--quiet]\n"
      "                   [--plan <pipeline-stage-budget>]\n"
      "  opendesc simulate --nic <name|file.p4> [--intent <file.p4>]\n"
      "                    [--packets <n>] [--fault-rate <p>]\n"
      "                    [--fault-seed <n>] [--guard]\n"
      "                    [--queues <n>] [--batch <n>] [--swap-every <n>]\n"
      "                    [--flows <n>] [--flow-idle-ms <n>] [--churn <p>]\n"
      "                    [--tenants <n>] [--trace-sample <n>]\n"
      "                    [--metrics-out <file>] [--flight-out <file>]\n"
      "                    [--listen <host:port>] [--rules <file>]\n"
      "                    [--alerts-out <file>] [--swap-token <secret>]\n"
      "  opendesc stats --nic <name|file.p4> [simulate options]\n"
      "                 [--format prometheus|json]\n"
      "  opendesc serve --nic <name|file.p4> [simulate options]\n"
      "                 [--listen <host:port>] [--port-file <file>]\n"
      "                 [--runs <n>]   (0 = loop until killed)\n"
      "                 [--rules <file>] [--idle-ms <n>]\n"
      "                 [--swap-token <secret>]   (enables POST /layout)\n"
      "  opendesc top --url <http://host:port> [--interval <ms>]\n"
      "               [--iterations <n>] [--plain]\n"
      "  opendesc profile --url <http://host:port> [--seconds <n>]\n"
      "                   [--format collapsed|speedscope|json|tsv]\n"
      "  opendesc spans --url <http://host:port> [--limit <n>]\n"
      "                 [--format json|otlp|perfetto] [--follow]\n"
      "                 [--iterations <n>]   (--follow: events before exit)\n"
      "(value flags also accept --flag=value)\n";
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error(ErrorKind::io, "cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Catalog name → its P4 source; otherwise treat as a file path.
std::string resolve_nic_source(const std::string& nic_arg) {
  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    if (model.name() == nic_arg) {
      return model.p4_source();
    }
  }
  return read_file(nic_arg);
}

struct Args {
  std::string command;
  std::string nic;
  std::string intent;
  std::string out_dir;
  double alpha = 1.0;
  bool tx = false;
  bool quiet = false;
  int plan_stages = -1;  ///< >= 0: print an offload placement plan

  // simulate options
  std::size_t packets = 10000;
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 1;
  bool guard = false;
  std::size_t queues = 1;  ///< > 1 selects the multi-queue engine
  std::size_t batch = 32;
  std::size_t swap_every = 0;  ///< > 0: live layout hot-swap cadence
  std::string swap_token;      ///< non-empty: authenticated POST /layout

  // flow-table / multi-tenant options
  std::size_t flows = 0;        ///< > 0: track flow state (total slots)
  std::size_t flow_idle_ms = 0; ///< > 0: expire flows idle this long
  double churn = 0.0;           ///< workload flow-turnover probability
  std::size_t tenants = 0;      ///< > 0: multi-tenant plane with n tenants

  // telemetry options
  std::string metrics_out;  ///< write the run's scrape here (simulate/stats)
  std::string format;       ///< stats stdout format: prometheus (default)|json

  // observability-plane options
  std::string listen;      ///< host:port to serve scrapes on while running
  std::string flight_out;  ///< write the flight recorder JSON here
  std::string port_file;   ///< write the bound port here (for scripts)
  std::size_t runs = 1;    ///< serve: engine runs to drive (0 = forever)

  // health-plane options
  std::string rules;       ///< SLO rules file evaluated each sampler tick
  std::string alerts_out;  ///< write the final alert snapshot JSON here
  std::size_t idle_ms = 0; ///< serve: linger after finite runs (rates decay)

  // `top` dashboard options
  std::string url;                 ///< server base URL, e.g. http://host:port
  std::size_t interval_ms = 1000;  ///< redraw period
  std::size_t iterations = 0;      ///< redraws before exiting (0 = forever)
  bool plain = false;              ///< no ANSI clear — log/test friendly

  // `profile` options (also reuses --url and --format)
  std::size_t seconds = 1;  ///< capture window (0 = cumulative since start)

  // causal-tracing options
  std::size_t trace_sample = 0;  ///< head-sample 1-in-N packets (0 = off)
  bool follow = false;           ///< spans: stream ?follow SSE events
  std::size_t limit = 0;         ///< spans: newest-N trace cap (0 = all)
};

// std::sto* throw on malformed input; reject with a message instead of
// letting the exception abort the process past main's Error handler.
template <typename T, typename Fn>
bool parse_num(const char* flag, const char* v, Fn convert, T& out) {
  try {
    // std::stoull happily wraps "-5" to 2^64-5; reject signs for unsigned flags.
    if (std::is_unsigned_v<T> && v[0] == '-') {
      throw std::invalid_argument(v);
    }
    out = static_cast<T>(convert(v));
    return true;
  } catch (const std::exception&) {
    std::cerr << "invalid numeric value for " << flag << ": " << v << "\n";
    return false;
  }
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) {
    return false;
  }
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept "--flag=value" by splitting it into the flag and an inline
    // value that next() hands back instead of consuming argv.
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    const auto next = [&]() -> const char* {
      if (inline_value) {
        return inline_value->c_str();
      }
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--nic") {
      const char* v = next();
      if (!v) return false;
      args.nic = v;
    } else if (arg == "--intent") {
      const char* v = next();
      if (!v) return false;
      args.intent = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      args.out_dir = v;
    } else if (arg == "--alpha") {
      const char* v = next();
      if (!v || !parse_num("--alpha", v, [](const char* s) { return std::stod(s); }, args.alpha))
        return false;
    } else if (arg == "--plan") {
      const char* v = next();
      if (!v || !parse_num("--plan", v, [](const char* s) { return std::stoi(s); }, args.plan_stages))
        return false;
    } else if (arg == "--packets") {
      const char* v = next();
      if (!v || !parse_num("--packets", v, [](const char* s) { return std::stoull(s); }, args.packets))
        return false;
    } else if (arg == "--fault-rate") {
      const char* v = next();
      if (!v || !parse_num("--fault-rate", v, [](const char* s) { return std::stod(s); }, args.fault_rate))
        return false;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (!v || !parse_num("--fault-seed", v, [](const char* s) { return std::stoull(s); }, args.fault_seed))
        return false;
    } else if (arg == "--queues") {
      const char* v = next();
      if (!v || !parse_num("--queues", v, [](const char* s) { return std::stoull(s); }, args.queues))
        return false;
    } else if (arg == "--batch") {
      const char* v = next();
      if (!v || !parse_num("--batch", v, [](const char* s) { return std::stoull(s); }, args.batch))
        return false;
    } else if (arg == "--swap-every") {
      const char* v = next();
      if (!v || !parse_num("--swap-every", v, [](const char* s) { return std::stoull(s); }, args.swap_every))
        return false;
    } else if (arg == "--swap-token") {
      const char* v = next();
      if (!v) return false;
      args.swap_token = v;
    } else if (arg == "--flows") {
      const char* v = next();
      if (!v || !parse_num("--flows", v, [](const char* s) { return std::stoull(s); }, args.flows))
        return false;
    } else if (arg == "--flow-idle-ms") {
      const char* v = next();
      if (!v || !parse_num("--flow-idle-ms", v, [](const char* s) { return std::stoull(s); }, args.flow_idle_ms))
        return false;
    } else if (arg == "--churn") {
      const char* v = next();
      if (!v || !parse_num("--churn", v, [](const char* s) { return std::stod(s); }, args.churn))
        return false;
    } else if (arg == "--tenants") {
      const char* v = next();
      if (!v || !parse_num("--tenants", v, [](const char* s) { return std::stoull(s); }, args.tenants))
        return false;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      args.metrics_out = v;
    } else if (arg == "--listen") {
      const char* v = next();
      if (!v) return false;
      args.listen = v;
    } else if (arg == "--flight-out") {
      const char* v = next();
      if (!v) return false;
      args.flight_out = v;
    } else if (arg == "--port-file") {
      const char* v = next();
      if (!v) return false;
      args.port_file = v;
    } else if (arg == "--runs") {
      const char* v = next();
      if (!v || !parse_num("--runs", v, [](const char* s) { return std::stoull(s); }, args.runs))
        return false;
    } else if (arg == "--format") {
      const char* v = next();
      if (!v) return false;
      args.format = v;
    } else if (arg == "--rules") {
      const char* v = next();
      if (!v) return false;
      args.rules = v;
    } else if (arg == "--alerts-out") {
      const char* v = next();
      if (!v) return false;
      args.alerts_out = v;
    } else if (arg == "--idle-ms") {
      const char* v = next();
      if (!v || !parse_num("--idle-ms", v, [](const char* s) { return std::stoull(s); }, args.idle_ms))
        return false;
    } else if (arg == "--url") {
      const char* v = next();
      if (!v) return false;
      args.url = v;
    } else if (arg == "--seconds") {
      const char* v = next();
      if (!v || !parse_num("--seconds", v, [](const char* s) { return std::stoull(s); }, args.seconds))
        return false;
    } else if (arg == "--interval") {
      const char* v = next();
      if (!v || !parse_num("--interval", v, [](const char* s) { return std::stoull(s); }, args.interval_ms))
        return false;
    } else if (arg == "--iterations") {
      const char* v = next();
      if (!v || !parse_num("--iterations", v, [](const char* s) { return std::stoull(s); }, args.iterations))
        return false;
    } else if (arg == "--trace-sample") {
      const char* v = next();
      if (!v || !parse_num("--trace-sample", v, [](const char* s) { return std::stoull(s); }, args.trace_sample))
        return false;
    } else if (arg == "--limit") {
      const char* v = next();
      if (!v || !parse_num("--limit", v, [](const char* s) { return std::stoull(s); }, args.limit))
        return false;
    } else if (arg == "--follow") {
      args.follow = true;
    } else if (arg == "--plain") {
      args.plain = true;
    } else if (arg == "--guard") {
      args.guard = true;
    } else if (arg == "--tx") {
      args.tx = true;
    } else if (arg == "--quiet") {
      args.quiet = true;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

int cmd_list_nics() {
  std::printf("%-10s %-24s %s\n", "name", "class", "description");
  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    std::printf("%-10s %-24s %s\n", model.name().c_str(),
                to_string(model.nic_class()).c_str(),
                model.description().c_str());
  }
  return 0;
}

int cmd_semantics() {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  std::printf("%-16s %6s %12s  %s\n", "name", "bits", "w(s) ns", "description");
  for (const softnic::SemanticInfo& info : registry.all()) {
    const double cost = costs.cost(info.id);
    std::printf("%-16s %6zu %12s  %s\n", info.name.c_str(), info.bit_width,
                cost >= softnic::kInfiniteCost ? "inf"
                                               : std::to_string(cost).c_str(),
                info.description.c_str());
  }
  return 0;
}

int cmd_paths(const Args& args) {
  if (args.nic.empty()) {
    return usage();
  }
  const std::string source = resolve_nic_source(args.nic);
  const p4::Program program = p4::parse_program(source);
  const p4::TypeInfo types = p4::check_program(program);
  softnic::SemanticRegistry registry;

  const p4::ControlDecl& deparser = core::select_deparser(program, "");
  const core::Cfg cfg = core::build_cfg(program, types, deparser, registry);
  core::PathEnumOptions options;
  options.consts = types.constants();
  options.variable_bounds = core::context_bounds(program, types, deparser);
  const auto paths = core::enumerate_paths(cfg, options);

  std::cout << "Completion deparser " << deparser.name() << ": "
            << cfg.emit_count() << " emits, " << cfg.branch_count()
            << " branches, " << paths.size() << " feasible path(s)\n";
  for (const auto& path : paths) {
    std::cout << "  " << path.describe(registry) << "\n";
  }

  // TX formats when described.
  for (const p4::ParserDecl* parser : program.parsers()) {
    const bool has_desc_in = std::any_of(
        parser->params().begin(), parser->params().end(), [](const p4::Param& p) {
          return p.type.kind == p4::TypeRef::Kind::named &&
                 p.type.name == "desc_in";
        });
    if (!has_desc_in) {
      continue;
    }
    core::TxDescOptions tx_options;
    tx_options.consts = types.constants();
    const auto formats =
        core::enumerate_tx_formats(program, types, *parser, registry, tx_options);
    std::cout << "Descriptor parser " << parser->name() << ": "
              << formats.size() << " format(s)\n";
    for (const auto& fmt : formats) {
      std::cout << "  " << fmt.describe(registry) << "\n";
    }
  }
  return 0;
}

int cmd_compile(const Args& args) {
  if (args.nic.empty() || args.intent.empty()) {
    return usage();
  }
  const std::string nic_source = resolve_nic_source(args.nic);
  const std::string intent_source = read_file(args.intent);

  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  core::CompileOptions options;
  options.dma_weight_per_byte = args.alpha;

  const core::CompileResult result =
      args.tx ? compiler.compile_tx(nic_source, intent_source, options)
              : compiler.compile(nic_source, intent_source, options);

  if (!args.quiet) {
    std::cout << result.report << "\n";
  }
  if (args.plan_stages >= 0) {
    // Placement plan: which shims a programmable pipeline could absorb.
    nic::NicClass nic_class = nic::NicClass::programmable;
    for (const nic::NicModel& model : nic::NicCatalog::all()) {
      if (model.name() == args.nic) {
        nic_class = model.nic_class();
      }
    }
    core::PlannerOptions planner_options;
    planner_options.pipeline_stage_budget =
        static_cast<std::uint32_t>(args.plan_stages);
    const core::FeatureLibrary library;
    std::cout << core::plan_offloads(result.shims, nic_class, library,
                                     planner_options)
                     .describe()
              << "\n";
  }
  if (!args.out_dir.empty()) {
    fs::create_directories(args.out_dir);
    const fs::path dir = args.out_dir;
    const std::string base = result.nic_name + (args.tx ? "_tx" : "");
    std::ofstream(dir / (base + ".h")) << result.c_header;
    if (!result.xdp_header.empty()) {
      std::ofstream(dir / (base + "_xdp.h")) << result.xdp_header;
    }
    std::ofstream(dir / (base + ".manifest")) << result.manifest;
    if (!result.cfg_dot.empty()) {
      std::ofstream(dir / (base + ".dot")) << result.cfg_dot;
    }
    std::cout << "wrote " << dir / (base + ".h") << ", "
              << dir / (base + ".manifest")
              << (args.tx ? "" : ", XDP header, CFG dot") << "\n";
  }
  return 0;
}

/// Per-stage batch-latency table from an engine report (empty without a
/// telemetry sink), with the profiler's sampled ns/pkt alongside.
void print_stage_table(const rt::EngineReport& report) {
  if (report.stage_latency.empty()) {
    return;
  }
  const telemetry::ProfileCapture& prof = report.profile;
  std::uint64_t worker_sampled = 0;
  for (std::size_t q = 0; q < prof.queues && q < prof.shards.size(); ++q) {
    worker_sampled += prof.shards[q].sampled_packets;
  }
  const telemetry::ProfileData* dispatch = prof.dispatch();
  const std::uint64_t dispatch_sampled =
      dispatch != nullptr ? dispatch->sampled_packets : 0;
  const std::uint64_t any_sampled = worker_sampled + dispatch_sampled;
  // A stage whose owning side sampled no packets has no per-packet figure;
  // printing 0.0 would read as "free", so print '-' (the empty-histogram
  // convention).
  const auto profile_cell = [&](telemetry::ProfileStage stage) -> std::string {
    const std::uint64_t sampled =
        telemetry::is_dispatch_stage(stage) ? dispatch_sampled
        : stage == telemetry::ProfileStage::wait ||
                stage == telemetry::ProfileStage::swap_barrier
            ? any_sampled
            : worker_sampled;
    if (sampled == 0) {
      return "-";
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", prof.stage_ns_per_packet(stage));
    return buf;
  };
  std::printf("  per-stage batch latency (ns) and profiled ns/pkt:\n");
  std::printf("    %-14s %10s %10s %10s %10s %10s %10s\n", "stage", "batches",
              "mean", "p50", "p99", "p999", "ns/pkt");
  for (std::size_t s = 0; s < telemetry::kStageCount; ++s) {
    const telemetry::HistogramData& data = report.stage_latency[s];
    const auto stage = static_cast<telemetry::Stage>(s);
    const std::string name = std::string(telemetry::to_string(stage));
    const std::string ns_pkt = profile_cell(telemetry::to_profile_stage(stage));
    if (data.count == 0) {
      // A stage that recorded no batches has no latency distribution;
      // printing zeros would read as "instantaneous", so print '-'.
      std::printf("    %-14s %10s %10s %10s %10s %10s %10s\n", name.c_str(),
                  "-", "-", "-", "-", "-", ns_pkt.c_str());
      continue;
    }
    std::printf(
        "    %-14s %10llu %10.0f %10llu %10llu %10llu %10s\n", name.c_str(),
        static_cast<unsigned long long>(data.count), data.mean(),
        static_cast<unsigned long long>(data.quantile_upper_bound(0.5)),
        static_cast<unsigned long long>(data.quantile_upper_bound(0.99)),
        static_cast<unsigned long long>(data.quantile_upper_bound(0.999)),
        ns_pkt.c_str());
  }
  if (any_sampled != 0) {
    // Profiler-only stages: no batch-latency histogram backs them, so the
    // distribution columns stay '-'.
    for (const telemetry::ProfileStage stage :
         {telemetry::ProfileStage::flow_classify,
          telemetry::ProfileStage::swap_barrier,
          telemetry::ProfileStage::wait}) {
      std::printf("    %-14s %10s %10s %10s %10s %10s %10s\n",
                  std::string(telemetry::to_string(stage)).c_str(), "-", "-",
                  "-", "-", "-", profile_cell(stage).c_str());
    }
  }
}

/// The simulate workload, shared by every datapath branch.  --flows scales
/// the trace's distinct-flow population toward the table capacity (capped so
/// construction stays cheap) and --churn turns over tuples mid-run.
net::WorkloadConfig make_workload(const Args& args) {
  net::WorkloadConfig workload;
  workload.seed = args.fault_seed;
  workload.vlan_probability = 0.5;
  workload.flow_churn = args.churn;
  if (args.flows > 0) {
    workload.flow_count = std::clamp<std::size_t>(args.flows, 64, 1 << 16);
    workload.zipf_skew = 0.9;
  }
  return workload;
}

/// --tenants n: one NIC description, n intents, n isolated engines behind a
/// single plane sink/server.  Tenant 0 takes the --fault-rate storm so the
/// output demonstrates isolation: its neighbours' goodput stays clean.
int run_tenants(const Args& args, telemetry::Sink* sink, bool print_human) {
  static constexpr const char* kTenantIntents[] = {
      // Rotated per tenant: distinct intents against the shared description
      // compile to distinct layouts, which is the point of the exercise.
      R"(header tenant_rss_t {
           @semantic("rss")     bit<32> hash;
           @semantic("pkt_len") bit<16> len;
         })",
      R"(header tenant_ts_t {
           @semantic("rss")       bit<32> hash;
           @semantic("timestamp") bit<64> ts;
           @semantic("pkt_len")   bit<16> len;
         })",
      R"(header tenant_vlan_t {
           @semantic("rss")     bit<32> hash;
           @semantic("vlan")    bit<16> tci;
           @semantic("pkt_len") bit<16> len;
         })",
  };
  const std::string nic_source = resolve_nic_source(args.nic);
  const std::string intent_override =
      args.intent.empty() ? std::string() : read_file(args.intent);

  std::vector<rt::TenantSpec> specs;
  specs.reserve(args.tenants);
  for (std::size_t i = 0; i < args.tenants; ++i) {
    rt::TenantSpec spec;
    spec.name = "tenant" + std::to_string(i);
    spec.intent = intent_override.empty() ? kTenantIntents[i % 3]
                                          : intent_override;
    spec.engine = rt::EngineConfig{}
                      .with_queues(std::max<std::size_t>(1, args.queues))
                      .with_batch(args.batch)
                      .with_guard(args.guard)
                      .with_flows(args.flows)
                      .with_flow_idle(args.flow_idle_ms * 1'000'000ull)
                      .with_trace_sample(args.trace_sample);
    if (i == 0 && args.fault_rate > 0.0) {
      spec.engine.with_fault_rate(args.fault_rate, args.fault_seed);
    }
    if (!args.rules.empty()) {
      spec.engine.with_health_rules(read_file(args.rules));
    }
    specs.push_back(std::move(spec));
  }

  flow::TenantPlaneConfig plane_config;
  plane_config.listen = args.listen;
  plane_config.dma_weight_per_byte = args.alpha;
  plane_config.sink = sink;
  flow::TenantPlane plane(nic_source, std::move(specs), plane_config);

  if (plane.server() != nullptr) {
    if (!args.port_file.empty()) {
      std::ofstream port_out(args.port_file);
      if (!port_out) {
        throw Error(ErrorKind::io,
                    "cannot write port file '" + args.port_file + "'");
      }
      port_out << plane.server()->port() << "\n";
    }
    if (print_human) {
      std::printf("observability server listening on %s\n",
                  plane.server()->url().c_str());
    }
  }

  const net::WorkloadConfig workload = make_workload(args);
  std::vector<flow::TenantResult> results;
  for (std::size_t run = 0; args.runs == 0 || run < args.runs; ++run) {
    results = plane.run(args.packets, workload);
    if (args.runs != 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  if (args.idle_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(args.idle_ms));
  }
  if (!print_human) {
    return 0;
  }

  std::printf("simulated %zu tenants x %zu packets on shared NIC description "
              "(%zu queue(s) each)\n",
              plane.tenants(), args.packets,
              std::max<std::size_t>(1, args.queues));
  std::printf("  %-10s %10s %9s %-22s %7s %10s %9s %9s\n", "tenant",
              "delivered", "goodput", "path", "record", "flows", "evicted",
              "expired");
  for (const flow::TenantResult& r : results) {
    std::printf("  %-10s %10llu %8.1f%% %-22s %6zuB %10llu %9llu %9llu%s\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.report.total.packets),
                100.0 * r.report.total.delivery_ratio(r.report.offered_total),
                r.chosen_path.c_str(), r.record_bytes,
                static_cast<unsigned long long>(r.flows.active),
                static_cast<unsigned long long>(r.flows.evicted_lru),
                static_cast<unsigned long long>(r.flows.expired_idle),
                &r == &results.front() && args.fault_rate > 0.0
                    ? "  (fault storm)"
                    : "");
  }
  return 0;
}

/// One simulation run, optionally instrumented.  When `sink` is non-null the
/// compiler publishes its search gauges and the datapath (either engine
/// branch) fills the registry; callers then expose it however they like
/// (--metrics-out file, stats stdout).  `print_human` suppresses the
/// summary tables for the stats subcommand.
int run_simulation(const Args& args, telemetry::Sink* sink, bool print_human) {
  if (args.nic.empty()) {
    return usage();
  }
  if (args.tenants > 0) {
    return run_tenants(args, sink, print_human);
  }
  const std::string nic_source = resolve_nic_source(args.nic);
  const std::string intent_source =
      args.intent.empty()
          ? R"(header sim_intent_t {
                @semantic("rss")     bit<32> hash;
                @semantic("pkt_len") bit<16> len;
              })"
          : read_file(args.intent);

  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  core::CompileOptions compile_options;
  compile_options.telemetry = sink;
  const core::CompileResult result =
      compiler.compile(nic_source, intent_source, compile_options);
  softnic::ComputeEngine engine(registry);

  // The engine branch also serves any run that wants the live observability
  // plane: --listen embeds the HTTP server, --rules / --alerts-out activate
  // the health monitor — each regardless of queue count.  --swap-every
  // needs the dispatch thread, so it lands here too.
  if (args.queues > 1 || args.swap_every > 0 || args.flows > 0 ||
      !args.listen.empty() || !args.rules.empty() || !args.alerts_out.empty() ||
      !args.swap_token.empty()) {
    // Swapping with no explicit rules file still gets the stock cutover
    // watchdog: sustained SoftNIC fallback after a swap fires an alert
    // (with flight capture) instead of degrading silently.
    std::string health_rules =
        args.rules.empty() ? std::string() : read_file(args.rules);
    if (args.swap_every > 0 && health_rules.empty()) {
      health_rules = std::string(telemetry::kSwapFallbackRule);
    }
    const rt::EngineConfig engine_config =
        rt::EngineConfig{}
            .with_queues(args.queues)
            .with_batch(args.batch)
            .with_guard(args.guard)
            .with_fault_rate(args.fault_rate, args.fault_seed)
            .with_swap_every(args.swap_every)
            .with_flows(args.flows)
            .with_flow_idle(args.flow_idle_ms * 1'000'000ull)
            .with_telemetry(sink)
            .with_server(args.listen)
            .with_health_rules(health_rules)
            .with_monitor(!args.alerts_out.empty())
            .with_swap_token(args.swap_token)
            .with_trace_sample(args.trace_sample);
    rt::MultiQueueEngine mq(result, engine, engine_config);

    // --swap-every drives the auto-swap cadence; --swap-token opens the
    // operator-driven POST /layout path.  Either one needs a cycle of
    // compilations to swap between.
    if (args.swap_every > 0 || !args.swap_token.empty()) {
      // Alternate between this compilation and a DMA-austere recompile of
      // the same intent (alpha high enough to flip path selection on NICs
      // with a narrower path) — every cadence tick cuts the live engine
      // over to the other epoch.
      core::CompileOptions austere = compile_options;
      austere.telemetry = nullptr;  // keep search gauges on the main compile
      austere.dma_weight_per_byte = 16.0;
      mq.set_swap_cycle(
          {std::make_shared<const core::CompileResult>(
               compiler.compile(nic_source, intent_source, austere)),
           std::make_shared<const core::CompileResult>(result)});
    }

    if (mq.server() != nullptr) {
      if (!args.port_file.empty()) {
        std::ofstream port_out(args.port_file);
        if (!port_out) {
          throw Error(ErrorKind::io,
                      "cannot write port file '" + args.port_file + "'");
        }
        port_out << mq.server()->port() << "\n";
      }
      if (print_human) {
        std::printf("observability server listening on %s\n",
                    mq.server()->url().c_str());
      }
    }

    const net::WorkloadConfig workload = make_workload(args);
    rt::EngineReport report;
    for (std::size_t run = 0; args.runs == 0 || run < args.runs; ++run) {
      net::WorkloadGenerator gen(workload);
      report = mq.run(gen, args.packets);
      if (args.runs != 1) {
        if (print_human) {
          std::printf("run %zu: %llu packets, %llu quarantined, %llu "
                      "softnic-recovered, checksum %#llx\n",
                      run + 1,
                      static_cast<unsigned long long>(report.total.packets),
                      static_cast<unsigned long long>(report.total.quarantined),
                      static_cast<unsigned long long>(
                          report.total.softnic_recovered),
                      static_cast<unsigned long long>(
                          report.total.value_checksum));
        }
        // Breathe between runs so a long-lived serve loop doesn't peg the
        // machine: the server stays responsive throughout.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }

    if (args.idle_ms > 0) {
      // Linger with the server and sampler alive but no traffic: windowed
      // rates decay toward zero, giving firing alerts a chance to resolve
      // before the final snapshot and shutdown.
      std::this_thread::sleep_for(std::chrono::milliseconds(args.idle_ms));
    }
    if (!args.alerts_out.empty()) {
      std::ofstream alerts(args.alerts_out);
      if (!alerts) {
        throw Error(ErrorKind::io,
                    "cannot write alerts file '" + args.alerts_out + "'");
      }
      alerts << (mq.health() != nullptr
                     ? mq.health()->to_json()
                     : std::string("{\"enabled\":false,\"evaluations\":0,"
                                   "\"firing\":0,\"rules\":[]}"))
             << "\n";
      if (print_human) {
        std::printf("wrote alert snapshot to %s\n", args.alerts_out.c_str());
      }
    }

    if (!print_human) {
      return 0;
    }
    std::printf("simulated %s: %zu packets across %zu queues, intent path "
                "'%s' (%zu-byte records%s)\n",
                result.nic_name.c_str(), args.packets, args.queues,
                result.chosen_path().id.c_str(),
                mq.wire_layout().total_bytes(), args.guard ? ", guarded" : "");
    std::printf("  %-5s %10s %10s %10s %12s %12s\n", "queue", "offered",
                "hw", "softnic", "quarantined", "ns/packet");
    for (std::size_t q = 0; q < args.queues; ++q) {
      const rt::RxLoopStats& shard = report.per_queue[q];
      std::printf("  %-5zu %10llu %10llu %10llu %12llu %11.1f\n", q,
                  static_cast<unsigned long long>(report.offered[q]),
                  static_cast<unsigned long long>(shard.hw_consumed),
                  static_cast<unsigned long long>(shard.softnic_recovered),
                  static_cast<unsigned long long>(shard.quarantined),
                  shard.ns_per_packet());
    }
    std::printf("  %-26s %11.1f%%\n", "goodput",
                100.0 * report.total.delivery_ratio(report.offered_total));
    std::printf("  %-26s %12.0f  (critical path: slowest queue's host ns)\n",
                "packets/sec", report.packets_per_second());
    std::printf("  %-26s %12.1f\n", "host ns/packet (aggregate)",
                report.total.ns_per_packet());
    std::printf("  %-26s %#12llx\n", "value checksum",
                static_cast<unsigned long long>(report.total.value_checksum));
    print_stage_table(report);
    if (mq.flow_table() != nullptr) {
      const flow::FlowStats fstats = mq.flow_table()->stats();
      std::printf("  flow table: %llu active of %zu slots (%zu shards), "
                  "%llu inserts, %llu LRU-evicted, %llu idle-expired, "
                  "hit rate %.1f%%, %.1f bytes/flow\n",
                  static_cast<unsigned long long>(fstats.active),
                  fstats.slots, fstats.shards,
                  static_cast<unsigned long long>(fstats.inserts),
                  static_cast<unsigned long long>(fstats.evicted_lru),
                  static_cast<unsigned long long>(fstats.expired_idle),
                  100.0 * fstats.hit_rate(), fstats.bytes_per_flow());
    }
    if (args.swap_every > 0 || mq.epochs().history().size() != 0) {
      std::printf("  layout epochs: current %llu, swaps committed %llu, "
                  "rolled back %llu\n",
                  static_cast<unsigned long long>(mq.epochs().current_epoch()),
                  static_cast<unsigned long long>(
                      mq.epochs().swaps(rt::SwapOutcome::committed)),
                  static_cast<unsigned long long>(
                      mq.epochs().swaps(rt::SwapOutcome::rolled_back)));
      std::printf("    %-6s %-28s %10s %10s %12s\n", "epoch", "path",
                  "packets", "softnic", "quarantined");
      for (const rt::EpochAccounting& acct : mq.epochs().accounting()) {
        std::printf("    %-6llu %-28s %10llu %10llu %12llu%s\n",
                    static_cast<unsigned long long>(acct.epoch),
                    acct.path_id.c_str(),
                    static_cast<unsigned long long>(acct.stats.packets),
                    static_cast<unsigned long long>(
                        acct.stats.softnic_recovered),
                    static_cast<unsigned long long>(acct.stats.quarantined),
                    acct.retired ? "  (retired)" : "");
      }
    }
    if (args.fault_rate > 0.0) {
      std::printf("  injected faults: composite rate %g, per-queue seeds "
                  "derived from %llu; quarantined %llu, softnic-recovered "
                  "%llu, lost completions %llu\n",
                  args.fault_rate,
                  static_cast<unsigned long long>(args.fault_seed),
                  static_cast<unsigned long long>(report.total.quarantined),
                  static_cast<unsigned long long>(report.total.softnic_recovered),
                  static_cast<unsigned long long>(report.total.lost_completions));
    }
    return 0;
  }

  const core::CompiledLayout wire_layout =
      args.guard ? result.layout.with_guard() : result.layout;
  sim::NicSimulator nic(wire_layout, engine, {});
  std::unique_ptr<sim::FaultInjector> injector;
  if (args.fault_rate > 0.0) {
    injector = std::make_unique<sim::FaultInjector>(
        sim::FaultConfig::composite(args.fault_rate, args.fault_seed));
    nic.set_fault_injector(injector.get());
  }

  net::WorkloadGenerator gen(make_workload(args));
  rt::OpenDescStrategy strategy(result, engine);
  rt::ValidatingRxLoop loop(wire_layout, engine);
  if (sink) {
    loop.set_telemetry(sink, 0);
  }
  const std::set<softnic::SemanticId> requested = result.intent.requested();
  const std::vector<softnic::SemanticId> wanted(requested.begin(),
                                                requested.end());
  rt::RxLoopConfig config;
  config.packet_count = args.packets;
  const rt::RxLoopStats stats = loop.run(nic, gen, strategy, wanted, config);

  if (sink) {
    // Assemble a single-queue report so the same publication path serves
    // both engine branches (and both exposition invariants hold).
    rt::EngineReport report;
    report.total = stats;
    report.per_queue = {stats};
    report.offered = {args.packets};
    report.offered_total = args.packets;
    report.semantic_paths += strategy.facade().path_counters();
    report.semantic_paths += loop.recovery_path_counters();
    // Fully qualified: the local ComputeEngine is also named `engine`.
    opendesc::engine::publish_report(*sink, report, registry);
    // The single-queue loop has no epoch manager, but scrapes should still
    // expose the layout families at their zero state (epoch 1, no swaps) so
    // dashboards and scrape_check see one catalog either way.  Same deal for
    // the flow-table and tenant families: no table and a single implicit
    // tenant, registered at zero.
    rt::register_layout_metrics(*sink);
    flow::publish_flow_metrics(sink->registry(), nullptr);
    opendesc::engine::publish_tenant_report(*sink, report, "default");
  }
  if (!print_human) {
    return 0;
  }
  std::printf("simulated %s: %zu packets, intent path '%s' (%zu-byte records"
              "%s)\n",
              result.nic_name.c_str(), args.packets,
              result.chosen_path().id.c_str(), wire_layout.total_bytes(),
              args.guard ? ", guarded" : "");
  std::printf("  %-26s %12llu\n", "delivered (hw path)",
              static_cast<unsigned long long>(stats.hw_consumed));
  std::printf("  %-26s %12llu\n", "delivered (softnic path)",
              static_cast<unsigned long long>(stats.softnic_recovered));
  std::printf("  %-26s %12llu\n", "quarantined records",
              static_cast<unsigned long long>(stats.quarantined));
  std::printf("  %-26s %12llu\n", "lost completions",
              static_cast<unsigned long long>(stats.lost_completions));
  std::printf("  %-26s %12llu\n", "rx rejected",
              static_cast<unsigned long long>(stats.rx_rejected));
  std::printf("  %-26s %12llu  (ring %llu, pool %llu, oversize %llu)\n",
              "device drops",
              static_cast<unsigned long long>(stats.drops),
              static_cast<unsigned long long>(stats.drops_ring_full),
              static_cast<unsigned long long>(stats.drops_pool_exhausted),
              static_cast<unsigned long long>(stats.drops_oversize));
  std::printf("  %-26s %11.1f%%\n", "goodput",
              100.0 * stats.delivery_ratio(args.packets));
  std::printf("  %-26s %12.1f\n", "host ns/packet", stats.ns_per_packet());
  std::printf("  %-26s %#12llx\n", "value checksum",
              static_cast<unsigned long long>(stats.value_checksum));
  if (injector) {
    std::printf("  injected faults (seed %llu, rate %g):\n",
                static_cast<unsigned long long>(args.fault_seed),
                args.fault_rate);
    for (std::size_t i = 0; i < sim::kFaultClassCount; ++i) {
      const auto fault = static_cast<sim::FaultClass>(i);
      if (injector->stats().count(fault) != 0) {
        std::printf("    %-22s %12llu\n",
                    std::string(sim::to_string(fault)).c_str(),
                    static_cast<unsigned long long>(
                        injector->stats().count(fault)));
      }
    }
  }
  if (loop.dead_letters().total() != 0) {
    std::printf("  dead letters kept for inspection: %zu of %llu "
                "(newest first reasons:",
                loop.dead_letters().entries().size(),
                static_cast<unsigned long long>(loop.dead_letters().total()));
    std::size_t shown = 0;
    for (auto it = loop.dead_letters().entries().rbegin();
         it != loop.dead_letters().entries().rend() && shown < 4;
         ++it, ++shown) {
      std::printf(" %s", std::string(rt::to_string(it->reason)).c_str());
    }
    std::printf(")\n");
  }
  return 0;
}

std::unique_ptr<telemetry::Sink> make_sink(const Args& args) {
  telemetry::SinkConfig config;
  config.queues = std::max<std::size_t>(1, args.queues);
  return std::make_unique<telemetry::Sink>(config);
}

int cmd_simulate(const Args& args) {
  std::unique_ptr<telemetry::Sink> sink;
  if (!args.metrics_out.empty() || !args.flight_out.empty() ||
      !args.listen.empty()) {
    sink = make_sink(args);
  }
  const int rc = run_simulation(args, sink.get(), /*print_human=*/!args.quiet);
  if (rc == 0 && sink && !args.metrics_out.empty()) {
    telemetry::write_metrics_file(sink->registry(), args.metrics_out);
    if (!args.quiet) {
      std::printf("wrote metrics scrape to %s\n", args.metrics_out.c_str());
    }
  }
  if (rc == 0 && sink && !args.flight_out.empty()) {
    std::ofstream out(args.flight_out);
    if (!out) {
      throw Error(ErrorKind::io,
                  "cannot write flight dump '" + args.flight_out + "'");
    }
    out << sink->flight().to_json() << "\n";
    if (!args.quiet) {
      std::printf("wrote flight recorder dump to %s\n",
                  args.flight_out.c_str());
    }
  }
  return rc;
}

int cmd_serve(Args args) {
  if (args.listen.empty()) {
    args.listen = "127.0.0.1:9464";
  }
  return cmd_simulate(args);
}

int cmd_stats(const Args& args) {
  const std::string format = args.format.empty() ? "prometheus" : args.format;
  if (format != "prometheus" && format != "json") {
    std::cerr << "unknown --format '" << format
              << "' (expected prometheus or json)\n";
    return 2;
  }
  const std::unique_ptr<telemetry::Sink> sink = make_sink(args);
  const int rc = run_simulation(args, sink.get(), /*print_human=*/false);
  if (rc != 0) {
    return rc;
  }
  if (!args.metrics_out.empty()) {
    telemetry::write_metrics_file(sink->registry(), args.metrics_out);
  }
  std::cout << (format == "json" ? telemetry::to_json(sink->registry())
                                 : telemetry::to_prometheus(sink->registry()));
  return 0;
}

// ---- opendesc top ----------------------------------------------------------

/// "--url http://host:port" (scheme and any trailing path optional) → the
/// host/port pair the HTTP client needs.
std::pair<std::string, std::uint16_t> parse_top_url(const std::string& url) {
  std::string rest = url;
  if (rest.rfind("http://", 0) == 0) {
    rest = rest.substr(7);
  }
  if (const auto slash = rest.find('/'); slash != std::string::npos) {
    rest.resize(slash);
  }
  const auto colon = rest.rfind(':');
  if (colon == std::string::npos || colon + 1 >= rest.size()) {
    throw Error(ErrorKind::semantic,
                "--url must look like http://host:port, got '" + url + "'");
  }
  std::string host = rest.substr(0, colon);
  if (host.empty()) {
    host = "127.0.0.1";
  }
  unsigned long port = 0;
  try {
    port = std::stoul(rest.substr(colon + 1));
  } catch (const std::exception&) {
    port = 0;
  }
  if (port == 0 || port > 65535) {
    throw Error(ErrorKind::semantic, "bad port in --url '" + url + "'");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const auto tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

double tsv_num(const std::vector<std::string>& fields, std::size_t index) {
  if (index >= fields.size()) {
    return 0.0;
  }
  try {
    return std::stod(fields[index]);
  } catch (const std::exception&) {
    return 0.0;
  }
}

/// Unicode block sparkline scaled to the window's own maximum.
std::string sparkline(const std::deque<double>& history) {
  static const char* const kBlocks[] = {"▁", "▂", "▃", "▄",
                                        "▅", "▆", "▇", "█"};
  double hi = 0.0;
  for (const double v : history) {
    hi = std::max(hi, v);
  }
  std::string out;
  for (const double v : history) {
    if (!(hi > 0.0) || v <= 0.0) {
      out += " ";
      continue;
    }
    const int idx = std::clamp(static_cast<int>(v / hi * 7.0 + 0.5), 0, 7);
    out += kBlocks[idx];
  }
  return out;
}

/// Rows the output terminal can display.  LINES (set by test harnesses and
/// some shells) wins over the tty ioctl so the limit is scriptable; a
/// non-tty with neither gets the classic 24.  --plain output is a log, not
/// a screen, so it is never truncated (returns 0 = unlimited).
std::size_t terminal_rows(bool plain) {
  if (plain) {
    return 0;
  }
  if (const char* env = std::getenv("LINES")) {
    try {
      const unsigned long v = std::stoul(env);
      if (v > 0) {
        return static_cast<std::size_t>(v);
      }
    } catch (const std::exception&) {
    }
  }
  winsize ws{};
  if (ioctl(STDOUT_FILENO, TIOCGWINSZ, &ws) == 0 && ws.ws_row > 0) {
    return ws.ws_row;
  }
  return 24;
}

/// Caps a rendered frame to the terminal height so a redraw never overdraws
/// (scrolling the previous frame's remnants into view).  The cut is
/// announced, not silent: the last visible row says how much is hidden.
std::string fit_to_rows(std::string frame, std::size_t rows) {
  if (rows <= 2) {
    return frame;
  }
  std::size_t lines = 0;
  std::size_t pos = 0;
  std::size_t cut = std::string::npos;
  while ((pos = frame.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
    if (lines == rows - 1) {
      cut = pos;
    }
  }
  if (cut == std::string::npos || lines < rows) {
    return frame;
  }
  const std::size_t hidden = lines - (rows - 1);
  frame.resize(cut);
  frame += "… (+" + std::to_string(hidden) + " more rows)\n";
  return frame;
}

/// Live dashboard: poll /timeseries and /alerts in their TSV renderings and
/// redraw.  Everything it shows comes over HTTP, so it runs against any
/// serving instance — local or remote — with zero shared state.
int cmd_top(const Args& args) {
  const auto [host, port] =
      parse_top_url(args.url.empty() ? "http://127.0.0.1:9464" : args.url);
  // One keep-alive connection for the whole dashboard session: all six
  // panes of every frame ride the same socket (the client transparently
  // reconnects if the server recycles it between frames).
  http::HttpClient client(host, port);
  std::map<std::string, std::deque<double>> history;
  constexpr std::size_t kHistory = 32;
  char buf[256];

  for (std::size_t iter = 0; args.iterations == 0 || iter < args.iterations;
       ++iter) {
    if (iter != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::max<std::size_t>(1, args.interval_ms)));
    }
    http::Response goodput;
    http::Response stages;
    http::Response alerts;
    http::Response layout;
    http::Response flows;
    http::Response profile;
    try {
      goodput = client.get(
          "/timeseries?metric=opendesc_rx_packets_total&window=1s&format=tsv");
      stages = client.get(
          "/timeseries?metric=opendesc_stage_latency_ns&window=10s&format=tsv");
      alerts = client.get("/alerts?format=tsv");
      layout = client.get("/layout?format=tsv");
      flows = client.get("/flows?format=tsv");
      profile = client.get("/profile?seconds=0&format=tsv");
    } catch (const Error& e) {
      if (iter == 0) {
        throw;  // dead target: fail fast instead of redrawing errors forever
      }
      std::printf("opendesc top: fetch failed (%s) — retrying\n", e.what());
      std::fflush(stdout);
      continue;
    }

    std::ostringstream frame;
    frame << "opendesc top — http://" << host << ':' << port << "  (frame "
          << iter + 1 << ")\n\n";

    frame << "per-queue goodput (pkts/s, 1s window):\n";
    bool any_goodput = false;
    if (goodput.status == 200) {
      std::istringstream lines(goodput.body);
      for (std::string line; std::getline(lines, line);) {
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_tabs(line);
        const double rate = tsv_num(fields, 1);
        std::deque<double>& h = history[fields[0]];
        h.push_back(rate);
        while (h.size() > kHistory) h.pop_front();
        std::snprintf(buf, sizeof buf, "  %-24s %12.0f  ", fields[0].c_str(),
                      rate);
        frame << buf << sparkline(h) << '\n';
        any_goodput = true;
      }
    }
    if (!any_goodput) {
      frame << "  (no sampled data yet)\n";
    }

    frame << "\nstage latency (ns, 10s window):\n";
    bool any_stage = false;
    if (stages.status == 200) {
      std::snprintf(buf, sizeof buf, "  %-24s %10s %10s %10s %10s %10s\n",
                    "stage", "batches", "mean", "p50", "p99", "p999");
      frame << buf;
      std::istringstream lines(stages.body);
      for (std::string line; std::getline(lines, line);) {
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_tabs(line);
        std::snprintf(buf, sizeof buf,
                      "  %-24s %10.0f %10.0f %10.0f %10.0f %10.0f\n",
                      fields[0].c_str(), tsv_num(fields, 1), tsv_num(fields, 2),
                      tsv_num(fields, 3), tsv_num(fields, 4),
                      tsv_num(fields, 5));
        frame << buf;
        any_stage = true;
      }
    }
    if (!any_stage) {
      frame << "  (no sampled data yet)\n";
    }

    frame << "\nhot-path profile (ns/pkt, cumulative):\n";
    bool any_profile = false;
    if (profile.status == 200) {
      // TSV matrix: header `stage <lane>... total`, one row per stage, then
      // work_ns_per_packet and stride footer rows.  Lanes that sampled
      // nothing arrive pre-rendered as '-'.
      std::istringstream profile_lines(profile.body);
      bool header = true;
      for (std::string line; std::getline(profile_lines, line);) {
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_tabs(line);
        std::snprintf(buf, sizeof buf, "  %-20s", fields[0].c_str());
        frame << buf;
        for (std::size_t i = 1; i < fields.size(); ++i) {
          std::snprintf(buf, sizeof buf, " %10s", fields[i].c_str());
          frame << buf;
        }
        frame << '\n';
        if (!header) {
          any_profile = true;
        }
        header = false;
      }
    }
    if (!any_profile) {
      frame << "  (no profiler data)\n";
    }

    frame << "\nlayout epochs:\n";
    bool any_layout = false;
    if (layout.status == 200) {
      // TSV lines: epoch N / swaps C R / gen ... / swap ... — a serving
      // instance without an epoch manager answers JSON instead, which
      // matches none of these tags and falls through to the placeholder.
      std::istringstream lines(layout.body);
      for (std::string line; std::getline(lines, line);) {
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_tabs(line);
        const auto field = [&](std::size_t i) {
          return i < fields.size() ? fields[i].c_str() : "?";
        };
        if (fields[0] == "epoch") {
          std::snprintf(buf, sizeof buf, "  current epoch %s", field(1));
          frame << buf;
          any_layout = true;
        } else if (fields[0] == "swaps") {
          std::snprintf(buf, sizeof buf,
                        "  (swaps: %s committed, %s rolled back)\n", field(1),
                        field(2));
          frame << buf;
        } else if (fields[0] == "gen") {
          std::snprintf(buf, sizeof buf,
                        "  epoch %-4s %-24s pkts %-10s softnic %-8s "
                        "quarantined %s%s\n",
                        field(1), field(2), field(3), field(4), field(5),
                        fields.size() > 6 && fields[6] == "1" ? "  retired"
                                                              : "");
          frame << buf;
        } else if (fields[0] == "swap") {
          std::snprintf(buf, sizeof buf, "  swap %s->%-4s %-12s attempts %s %s\n",
                        field(1), field(2), field(3), field(4),
                        fields.size() > 5 ? field(5) : "");
          frame << buf;
        }
      }
    }
    if (!any_layout) {
      frame << "  (no layout epochs)\n";
    }

    frame << "\ntenant flow tables:\n";
    bool any_flows = false;
    if (flows.status == 200) {
      // TSV lines: tenant <name> <active> <slots> <ins> <evict> <expire>
      // <hit%> <load%> <B/flow>, then shard <tenant> <q> <active> <lookups>
      // <evictions>.  A server without a flows provider answers JSON, which
      // matches neither tag and falls through to the placeholder.
      std::istringstream flow_lines(flows.body);
      for (std::string line; std::getline(flow_lines, line);) {
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_tabs(line);
        const auto field = [&](std::size_t i) {
          return i < fields.size() ? fields[i].c_str() : "?";
        };
        if (fields[0] == "tenant") {
          std::snprintf(buf, sizeof buf,
                        "  %-12s flows %-9s/%-8s hit %5s%%  load %5s%%  "
                        "%s B/flow  evict %s  expire %s\n",
                        field(1), field(2), field(3), field(7), field(8),
                        field(9), field(5), field(6));
          frame << buf;
          any_flows = true;
        } else if (fields[0] == "shard") {
          std::snprintf(buf, sizeof buf,
                        "    %s q%-3s active %-9s lookups %-11s evictions %s\n",
                        field(1), field(2), field(3), field(4), field(5));
          frame << buf;
        }
      }
    }
    if (!any_flows) {
      frame << "  (no flow tracking)\n";
    }

    frame << "\nSLO alerts:\n";
    bool any_alert = false;
    std::istringstream lines(alerts.body);
    for (std::string line; std::getline(lines, line);) {
      if (line.empty()) continue;
      // name, state, value, cmp, threshold, consecutive, fired, capture
      const std::vector<std::string> fields = split_tabs(line);
      const auto field = [&](std::size_t i) {
        return i < fields.size() ? fields[i].c_str() : "?";
      };
      std::snprintf(buf, sizeof buf,
                    "  %-28s %-9s value %-12s (%s %s)  fired %s  capture %s\n",
                    field(0), field(1), field(2), field(3), field(4), field(6),
                    field(7));
      frame << buf;
      any_alert = true;
    }
    if (!any_alert) {
      frame << "  (no rules loaded)\n";
    }

    if (!args.plain) {
      std::fputs("\x1b[H\x1b[2J", stdout);  // cursor home + clear screen
    }
    // Clamp the frame to the terminal height: with many tenants (or many
    // shards per tenant) an oversized frame would scroll the screen and the
    // next clear-and-redraw would stutter between partial frames.
    std::fputs(fit_to_rows(frame.str(), terminal_rows(args.plain)).c_str(),
               stdout);
    std::fflush(stdout);
  }
  return 0;
}

// ---- opendesc profile ------------------------------------------------------

/// One-shot /profile capture against a serving instance.  The server holds
/// the response until the window closes, so the client timeout must outlast
/// --seconds; the body is printed verbatim so collapsed output pipes
/// straight into flamegraph.pl and speedscope output into an import.
int cmd_profile(const Args& args) {
  const std::string format = args.format.empty() ? "collapsed" : args.format;
  if (format != "collapsed" && format != "speedscope" && format != "json" &&
      format != "tsv") {
    std::cerr << "unknown --format '" << format
              << "' (expected collapsed, speedscope, json or tsv)\n";
    return 2;
  }
  const auto [host, port] =
      parse_top_url(args.url.empty() ? "http://127.0.0.1:9464" : args.url);
  http::HttpClient client(
      host, port, static_cast<int>(std::min<std::size_t>(args.seconds, 300)) * 1000 + 5000);
  const http::Response response =
      client.get("/profile?seconds=" + std::to_string(args.seconds) +
                 "&format=" + format);
  if (response.status != 200) {
    std::cerr << "opendesc profile: GET /profile answered HTTP "
              << response.status << "\n";
    return 1;
  }
  std::fputs(response.body.c_str(), stdout);
  if (!response.body.empty() && response.body.back() != '\n') {
    std::fputs("\n", stdout);
  }
  return 0;
}

// ---- opendesc spans --------------------------------------------------------

/// Causal-trace export against a serving instance.  The default one-shot
/// form prints /spans verbatim (json | otlp | perfetto); --follow opens the
/// SSE stream instead and prints each "spans" event's JSON payload as one
/// line (--iterations bounds how many before exiting).
int cmd_spans(const Args& args) {
  const std::string format = args.format.empty() ? "json" : args.format;
  if (format != "json" && format != "otlp" && format != "perfetto") {
    std::cerr << "unknown --format '" << format
              << "' (expected json, otlp or perfetto)\n";
    return 2;
  }
  const auto [host, port] =
      parse_top_url(args.url.empty() ? "http://127.0.0.1:9464" : args.url);
  if (args.follow) {
    if (format != "json") {
      std::cerr << "--follow only streams the json format\n";
      return 2;
    }
    std::string target = "/spans?follow";
    if (args.iterations != 0) {
      target += "&count=" + std::to_string(args.iterations);
    }
    http::SseClient stream(host, port, target, 5000);
    std::uint64_t seen = 0;
    while (true) {
      const std::optional<http::SseEvent> event = stream.next(1000);
      if (!event) {
        if (stream.ended()) {
          return 0;  // server closed (e.g. after ?count events)
        }
        continue;  // idle tick; keep following until killed
      }
      if (event->event != "spans") {
        continue;  // hello and keep-alive chatter
      }
      std::fputs(event->data.c_str(), stdout);
      std::fputs("\n", stdout);
      std::fflush(stdout);
      if (args.iterations != 0 && ++seen >= args.iterations) {
        return 0;
      }
    }
  }
  std::string target = "/spans?format=" + format;
  if (args.limit != 0) {
    target += "&limit=" + std::to_string(args.limit);
  }
  http::HttpClient client(host, port, 5000);
  const http::Response response = client.get(target);
  if (response.status != 200) {
    std::cerr << "opendesc spans: GET /spans answered HTTP " << response.status
              << "\n";
    return 1;
  }
  std::fputs(response.body.c_str(), stdout);
  if (!response.body.empty() && response.body.back() != '\n') {
    std::fputs("\n", stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    return usage();
  }
  try {
    if (args.command == "list-nics") {
      return cmd_list_nics();
    }
    if (args.command == "semantics") {
      return cmd_semantics();
    }
    if (args.command == "paths") {
      return cmd_paths(args);
    }
    if (args.command == "compile") {
      return cmd_compile(args);
    }
    if (args.command == "simulate") {
      return cmd_simulate(args);
    }
    if (args.command == "stats") {
      return cmd_stats(args);
    }
    if (args.command == "serve") {
      return cmd_serve(args);
    }
    if (args.command == "top") {
      return cmd_top(args);
    }
    if (args.command == "profile") {
      return cmd_profile(args);
    }
    if (args.command == "spans") {
      return cmd_spans(args);
    }
    return usage();
  } catch (const Error& e) {
    std::cerr << "opendesc: " << e.what() << "\n";
    return 1;
  }
}
