// Generated rx_burst datapath: compiled with the system C compiler and
// driven against a ring serialized by the layout — records before the
// descriptor-done marker are extracted, the first unwritten record stops
// the burst.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/compiler.hpp"
#include "nic/model.hpp"

namespace opendesc::core {
namespace {

using softnic::SemanticId;

TEST(RxBurst, HeaderShape) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("e1000").p4_source(),
      R"(header i_t { @semantic("pkt_len") bit<16> l; @semantic("ip_checksum") bit<16> c; })",
      {});
  CodegenOptions options;
  options.prefix = "odx_e1000";
  const std::string header = generate_rx_burst_header(
      result.layout, {SemanticId::pkt_len, SemanticId::ip_checksum}, registry,
      options);
  EXPECT_NE(header.find("typedef struct"), std::string::npos);
  EXPECT_NE(header.find("uint16_t pkt_len;"), std::string::npos);
  EXPECT_NE(header.find("uint16_t ip_checksum;"), std::string::npos);
  EXPECT_NE(header.find("odx_e1000_rx_burst"), std::string::npos);
  EXPECT_NE(header.find("not yet written back"), std::string::npos);
}

TEST(RxBurst, CompiledBurstExtractsUntilDoneMarkerStops) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("e1000").p4_source(),
      R"(header i_t { @semantic("pkt_len") bit<16> l; @semantic("ip_checksum") bit<16> c; })",
      {});
  const std::vector<SemanticId> wanted = {SemanticId::pkt_len,
                                          SemanticId::ip_checksum};
  CodegenOptions options;
  options.prefix = "odx_e1000";

  // Build an 8-entry ring; complete entries 0..4, leave 5..7 unwritten
  // (all zeroes → the @fixed(1) status marker reads 0).
  const std::size_t entries = 8;
  const std::size_t size = result.layout.total_bytes();
  std::vector<std::uint8_t> ring(entries * size, 0);
  std::vector<std::array<std::uint64_t, 2>> truth;
  for (std::size_t i = 0; i < 5; ++i) {
    std::vector<std::uint64_t> values(result.layout.slices().size(), 0);
    for (std::size_t sidx = 0; sidx < result.layout.slices().size(); ++sidx) {
      const auto& slice = result.layout.slices()[sidx];
      if (slice.semantic == SemanticId::pkt_len) values[sidx] = 100 + i;
      if (slice.semantic == SemanticId::ip_checksum) values[sidx] = 0xA000 + i;
    }
    result.layout.serialize(
        std::span<std::uint8_t>(ring).subspan(i * size, size), values);
    truth.push_back({100 + i, 0xA000 + i});
  }

  const std::string dir = ::testing::TempDir();
  std::ofstream(dir + "/odx_burst.h")
      << generate_rx_burst_header(result.layout, wanted, registry, options);

  std::ostringstream main_src;
  main_src << "#include <stdio.h>\n#include \"odx_burst.h\"\n"
           << "static const uint8_t ring[] = {";
  for (std::size_t i = 0; i < ring.size(); ++i) {
    main_src << (i ? "," : "") << static_cast<unsigned>(ring[i]);
  }
  main_src << "};\nint main(void) {\n"
           << "  odx_e1000_meta_t out[8];\n"
           << "  size_t n = odx_e1000_rx_burst(ring, 8, 0, 8, out);\n"
           << "  printf(\"%zu\\n\", n);\n"
           << "  for (size_t i = 0; i < n; ++i)\n"
           << "    printf(\"%u %u\\n\", (unsigned)out[i].pkt_len,"
           << " (unsigned)out[i].ip_checksum);\n"
           << "  return 0;\n}\n";
  std::ofstream(dir + "/odx_burst_main.c") << main_src.str();

  const std::string bin = dir + "/odx_burst_test";
  const std::string compile = "cc -std=c11 -Wall -Werror -O2 -o " + bin + " " +
                              dir + "/odx_burst_main.c 2>/dev/null";
  if (std::system(compile.c_str()) != 0) {
    GTEST_SKIP() << "no working C compiler available";
  }
  FILE* out = popen(bin.c_str(), "r");
  ASSERT_NE(out, nullptr);
  std::size_t n = 0;
  ASSERT_EQ(fscanf(out, "%zu", &n), 1);
  EXPECT_EQ(n, 5u);  // stopped at the first unwritten record
  for (std::size_t i = 0; i < n; ++i) {
    unsigned len = 0, csum = 0;
    ASSERT_EQ(fscanf(out, "%u %u", &len, &csum), 2);
    EXPECT_EQ(len, truth[i][0]);
    EXPECT_EQ(csum, truth[i][1]);
  }
  pclose(out);
}

TEST(RxBurst, WrapAroundIndexing) {
  // The burst indexes (tail + i) & mask — verify via the in-process layout
  // reads rather than another C compile: serialize entries 6,7,0,1 as
  // completed and check the generated source uses masked indexing.
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("dumbnic").p4_source(),
      R"(header i_t { @semantic("pkt_len") bit<16> l; })", {});
  const std::string header = generate_rx_burst_header(
      result.layout, {SemanticId::pkt_len}, registry, {});
  EXPECT_NE(header.find("& mask"), std::string::npos);
  EXPECT_NE(header.find("entries - 1"), std::string::npos);
}

}  // namespace
}  // namespace opendesc::core
