// Offload placement planner tests (§5 "performance and programmable
// constraint").
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "core/planner.hpp"
#include "nic/model.hpp"

namespace opendesc::core {
namespace {

using softnic::SemanticId;

std::vector<SoftNicShim> shims_for(const std::string& nic_name,
                                   const char* intent,
                                   softnic::SemanticRegistry& registry) {
  softnic::CostTable costs(registry);
  Compiler compiler(registry, costs);
  const auto result =
      compiler.compile(nic::NicCatalog::by_name(nic_name).p4_source(), intent, {});
  return result.shims;
}

constexpr const char* kFig1Intent = R"(header i_t {
    @semantic("ip_checksum") bit<16> csum;
    @semantic("vlan")        bit<16> vlan_tci;
    @semantic("rss")         bit<32> rss_hash;
    @semantic("kv_key_hash") bit<32> kv_key;
})";

TEST(Planner, FixedFunctionNicKeepsEverythingInSoftware) {
  softnic::SemanticRegistry registry;
  const auto shims = shims_for("e1000", kFig1Intent, registry);
  ASSERT_FALSE(shims.empty());
  const FeatureLibrary library;
  const OffloadPlan plan =
      plan_offloads(shims, nic::NicClass::fixed, library, {});
  EXPECT_EQ(plan.stages_budget, 0u);
  EXPECT_EQ(plan.stages_used, 0u);
  for (const PlannedOffload& o : plan.offloads) {
    EXPECT_EQ(o.placement, Placement::software) << o.semantic_name;
  }
  EXPECT_DOUBLE_EQ(plan.software_cost_after_ns, plan.software_cost_before_ns);
}

TEST(Planner, ProgrammableNicAbsorbsFeaturesUnderBudget) {
  softnic::SemanticRegistry registry;
  // mlx5 mini-CQE leaves csum/vlan/kv in software for the Fig. 1 intent;
  // plan as if this deparser ran on a programmable device.
  const auto shims = shims_for("mlx5", kFig1Intent, registry);
  ASSERT_EQ(shims.size(), 3u);
  const FeatureLibrary library;

  PlannerOptions options;
  options.pipeline_stage_budget = 16;  // plenty: everything fits
  const OffloadPlan generous = plan_offloads(
      shims, nic::NicClass::programmable, library, options);
  for (const PlannedOffload& o : generous.offloads) {
    EXPECT_EQ(o.placement, Placement::pipeline) << o.semantic_name;
  }
  EXPECT_DOUBLE_EQ(generous.software_cost_after_ns, 0.0);
  EXPECT_LE(generous.stages_used, generous.stages_budget);
}

TEST(Planner, TightBudgetPrefersHighestCostPerStage) {
  softnic::SemanticRegistry registry;
  const auto shims = shims_for("mlx5", kFig1Intent, registry);
  const FeatureLibrary library;
  // Shims: ip_checksum (w=25, 1 stage), vlan (w=5, 1 stage),
  // kv_key_hash (w=60, 4 stages).  Budget 4: kv density 15/stage wins
  // over... csum density 25, vlan 5.  Greedy order: csum(25) → kv(15) →
  // vlan(5).  csum takes 1 stage; kv needs 4 > 3 left; vlan takes 1.
  PlannerOptions options;
  options.pipeline_stage_budget = 4;
  const OffloadPlan plan = plan_offloads(
      shims, nic::NicClass::programmable, library, options);
  std::map<std::string, Placement> placement;
  for (const PlannedOffload& o : plan.offloads) {
    placement[o.semantic_name] = o.placement;
  }
  EXPECT_EQ(placement.at("ip_checksum"), Placement::pipeline);
  EXPECT_EQ(placement.at("vlan"), Placement::pipeline);
  EXPECT_EQ(placement.at("kv_key_hash"), Placement::software);
  EXPECT_EQ(plan.stages_used, 2u);
  EXPECT_DOUBLE_EQ(plan.software_cost_after_ns, 60.0);
}

TEST(Planner, PartialNicGetsHalfBudget) {
  softnic::SemanticRegistry registry;
  const auto shims = shims_for("mlx5", kFig1Intent, registry);
  const FeatureLibrary library;
  PlannerOptions options;
  options.pipeline_stage_budget = 8;
  const OffloadPlan plan =
      plan_offloads(shims, nic::NicClass::partial, library, options);
  EXPECT_EQ(plan.stages_budget, 4u);
}

TEST(Planner, FeaturesWithoutReferenceImplStayInSoftware) {
  softnic::SemanticRegistry registry;
  const SemanticId custom =
      registry.register_extension("crypto_tag", 32, "AES-GCM tag");
  std::vector<SoftNicShim> shims = {{custom, "crypto_tag", 90.0}};
  const FeatureLibrary library;  // knows nothing about crypto_tag
  const OffloadPlan plan = plan_offloads(
      shims, nic::NicClass::programmable, library, {});
  EXPECT_EQ(plan.offloads[0].placement, Placement::software);

  // Registering a reference implementation makes it placeable — the
  // paper's extensibility story.
  FeatureLibrary extended;
  extended.register_feature(custom, {true, 2});
  const OffloadPlan plan2 = plan_offloads(
      shims, nic::NicClass::programmable, extended, {});
  EXPECT_EQ(plan2.offloads[0].placement, Placement::pipeline);
  EXPECT_EQ(plan2.stages_used, 2u);
}

TEST(Planner, InfiniteCostShimsAreRejected) {
  softnic::SemanticRegistry registry;
  std::vector<SoftNicShim> shims = {
      {SemanticId::mark, "mark", softnic::kInfiniteCost}};
  const FeatureLibrary library;
  const OffloadPlan plan =
      plan_offloads(shims, nic::NicClass::fixed, library, {});
  EXPECT_EQ(plan.offloads[0].placement, Placement::rejected);
}

TEST(Planner, DescribeMentionsPlacements) {
  softnic::SemanticRegistry registry;
  const auto shims = shims_for("mlx5", kFig1Intent, registry);
  const FeatureLibrary library;
  const OffloadPlan plan = plan_offloads(
      shims, nic::NicClass::programmable, library, {});
  const std::string text = plan.describe();
  EXPECT_NE(text.find("pipeline stage(s) used"), std::string::npos);
  EXPECT_NE(text.find("kv_key_hash"), std::string::npos);
}

}  // namespace
}  // namespace opendesc::core
