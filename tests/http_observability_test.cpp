// Observability-plane suite: the embedded HTTP server (bind/serve/timeout
// behaviour over real sockets), the ObservabilityServer route table
// (exercised socket-free through handle()), and the full integration —
// a 4-queue faulted engine run scraped live through `--listen`-style
// configuration, including the fault flight recorder's postmortem dump.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "http/server.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/server.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/timeseries.hpp"

namespace opendesc {
namespace {

using http::http_get;
using http::HttpServer;
using http::Request;
using http::Response;
using http::ServerConfig;
using telemetry::ObservabilityServer;
using telemetry::Sink;

// --- listen-address parsing -------------------------------------------------

TEST(HttpConfig, ParseListenAddressForms) {
  EXPECT_EQ(http::parse_listen_address("127.0.0.1:9464").port, 9464);
  EXPECT_EQ(http::parse_listen_address("127.0.0.1:9464").address, "127.0.0.1");
  EXPECT_EQ(http::parse_listen_address(":8080").address, "127.0.0.1");
  EXPECT_EQ(http::parse_listen_address(":8080").port, 8080);
  EXPECT_EQ(http::parse_listen_address("0").port, 0);
  EXPECT_EQ(http::parse_listen_address("0.0.0.0:0").address, "0.0.0.0");
  EXPECT_THROW((void)http::parse_listen_address(""), Error);
  EXPECT_THROW((void)http::parse_listen_address("host:notaport"), Error);
  EXPECT_THROW((void)http::parse_listen_address("host:70000"), Error);
}

// --- raw HTTP server --------------------------------------------------------

TEST(HttpServerTest, ServesRequestsOnEphemeralPort) {
  HttpServer server({}, [](const Request& req) {
    Response out;
    out.body = req.method + " " + req.path;
    return out;
  });
  ASSERT_NE(server.port(), 0);  // port 0 resolved at bind time
  server.start();
  const Response got = http_get("127.0.0.1", server.port(), "/hello");
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, "GET /hello");
  EXPECT_GE(server.requests_served(), 1u);
  server.stop();
}

TEST(HttpServerTest, QueryParametersAreDecodedAndPassedThrough) {
  HttpServer server({}, [](const Request& req) {
    Response out;
    const auto it = req.query.find("queue");
    out.body = it == req.query.end() ? "none" : it->second;
    return out;
  });
  server.start();
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/t?queue=3").body, "3");
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/t").body, "none");
}

TEST(HttpServerTest, HandlerExceptionBecomesInternalError) {
  HttpServer server({}, [](const Request&) -> Response {
    throw Error(ErrorKind::semantic, "boom");
  });
  server.start();
  const Response got = http_get("127.0.0.1", server.port(), "/");
  EXPECT_EQ(got.status, 500);
  EXPECT_NE(got.body.find("boom"), std::string::npos);
}

TEST(HttpServerTest, HeadIsAnsweredHeadersOnly) {
  HttpServer server({}, [](const Request&) {
    Response out;
    out.body = "some body text";
    return out;
  });
  server.start();
  const Response head =
      http::http_request("HEAD", "127.0.0.1", server.port(), "/");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty()) << "HEAD must not carry a body";
  // The same target via GET does carry the body.
  EXPECT_EQ(http_get("127.0.0.1", server.port(), "/").body, "some body text");
}

TEST(HttpServerTest, StartStopAreIdempotentAndRestartable) {
  std::atomic<int> calls{0};
  HttpServer server({}, [&](const Request&) {
    ++calls;
    return Response{};
  });
  server.start();
  server.start();  // no-op
  (void)http_get("127.0.0.1", server.port(), "/");
  server.stop();
  server.stop();  // no-op
  EXPECT_EQ(calls.load(), 1);
  // After stop, connects must fail rather than hang.
  EXPECT_THROW((void)http_get("127.0.0.1", server.port(), "/", 500), Error);
}

// --- ObservabilityServer route table (socket-free) --------------------------

Request get(std::string path_and_query) {
  Request req;
  req.method = "GET";
  req.target = path_and_query;
  const auto q = path_and_query.find('?');
  req.path = path_and_query.substr(0, q);
  if (q != std::string::npos) {
    const std::string query = path_and_query.substr(q + 1);
    const auto eq = query.find('=');
    if (eq != std::string::npos) {
      req.query.emplace(query.substr(0, eq), query.substr(eq + 1));
    }
  }
  return req;
}

struct Routes : ::testing::Test {
  Sink sink{{.queues = 2, .trace_capacity = 32}};
  ObservabilityServer server{sink};
};

TEST_F(Routes, MetricsServesPrometheusText) {
  sink.registry()
      .counter("opendesc_packets_total", "packets consumed", {})
      .add(5);
  const Response got = server.handle(get("/metrics"));
  EXPECT_EQ(got.status, 200);
  EXPECT_NE(got.content_type.find("version=0.0.4"), std::string::npos);
  // /metrics streams family by family; materialize it to assert on text.
  const std::string body = got.full_body();
  EXPECT_NE(body.find("# TYPE opendesc_packets_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("opendesc_stage_latency_ns"), std::string::npos);
}

TEST_F(Routes, MetricsJsonServesJson) {
  const Response got = server.handle(get("/metrics.json"));
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.content_type, "application/json");
  EXPECT_EQ(got.full_body().front(), '{');
}

TEST_F(Routes, HealthzAlwaysOkReadyzFollowsProbe) {
  EXPECT_EQ(server.handle(get("/healthz")).status, 200);
  // No probe installed: ready by definition.
  EXPECT_EQ(server.handle(get("/readyz")).status, 200);

  bool ready = false;
  server.set_ready_probe([&] { return ready; });
  EXPECT_EQ(server.handle(get("/readyz")).status, 503);
  ready = true;
  EXPECT_EQ(server.handle(get("/readyz")).status, 200);
}

TEST_F(Routes, TracesServesAllRingsAndSelectsByQueue) {
  sink.ring(0).record({telemetry::TraceEventType::record_validated, 0, 0, 7, 1});
  sink.ctrl_ring().record({telemetry::TraceEventType::ctrl_retry, 0, 0, 0, 2});

  const Response all = server.handle(get("/traces"));
  EXPECT_EQ(all.status, 200);
  // 2 workers + dispatch + ctrl.
  EXPECT_NE(all.body.find("\"ring\":\"queue0\""), std::string::npos);
  EXPECT_NE(all.body.find("\"ring\":\"queue1\""), std::string::npos);
  EXPECT_NE(all.body.find("\"ring\":\"dispatch\""), std::string::npos);
  EXPECT_NE(all.body.find("\"ring\":\"ctrl\""), std::string::npos);

  const Response one = server.handle(get("/traces?queue=0"));
  EXPECT_EQ(one.status, 200);
  EXPECT_NE(one.body.find("record_validated"), std::string::npos);
  EXPECT_EQ(one.body.find("\"ring\":\"queue1\""), std::string::npos);

  EXPECT_EQ(server.handle(get("/traces?queue=ctrl")).status, 200);
  EXPECT_EQ(server.handle(get("/traces?queue=dispatch")).status, 200);
  EXPECT_EQ(server.handle(get("/traces?queue=9")).status, 404);
  EXPECT_EQ(server.handle(get("/traces?queue=banana")).status, 400);
}

TEST_F(Routes, FlightServesRecorderDump) {
  telemetry::FlightIncident incident;
  incident.cause = telemetry::FlightCause::record_quarantined;
  incident.queue = 1;
  incident.layout_id = "ice/p0";
  incident.record = {0xDE, 0xAD, 0xBE, 0xEF};
  sink.flight().record(std::move(incident));

  const Response got = server.handle(get("/flight"));
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.content_type, "application/json");
  EXPECT_NE(got.body.find("record_quarantined"), std::string::npos);
  EXPECT_NE(got.body.find("deadbeef"), std::string::npos);
  EXPECT_NE(got.body.find("ice/p0"), std::string::npos);
}

TEST_F(Routes, UnknownPathIsStructuredJson404) {
  const Response got = server.handle(get("/nope"));
  EXPECT_EQ(got.status, 404);
  EXPECT_EQ(got.content_type, "application/json");
  EXPECT_NE(got.body.find("\"error\":\"not found\""), std::string::npos);
  EXPECT_NE(got.body.find("\"path\":\"/nope\""), std::string::npos);
  // The route table is part of the contract: a scraper hitting a typo'd
  // path learns what does exist.
  EXPECT_NE(got.body.find("\"/metrics\""), std::string::npos);
  EXPECT_NE(got.body.find("\"/alerts\""), std::string::npos);
  EXPECT_NE(got.body.find("\"/timeseries\""), std::string::npos);
  EXPECT_EQ(server.handle(get("/")).status, 404);
}

TEST_F(Routes, AlertsWithoutHealthEngineReportsDisabled) {
  const Response got = server.handle(get("/alerts"));
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.content_type, "application/json");
  EXPECT_NE(got.body.find("\"enabled\":false"), std::string::npos);
  EXPECT_NE(got.body.find("\"rules\":[]"), std::string::npos);
}

TEST_F(Routes, TimeseriesWithoutStoreIs404Json) {
  const Response got = server.handle(get("/timeseries"));
  EXPECT_EQ(got.status, 404);
  EXPECT_EQ(got.content_type, "application/json");
  EXPECT_NE(got.body.find("not enabled"), std::string::npos);
}

TEST_F(Routes, TimeseriesServesCatalogAndWindows) {
  telemetry::TimeSeriesStore store({.tick_seconds = 0.1, .capacity = 16});
  telemetry::Registry reg;
  reg.counter("demo_total", "demo", {{"queue", "0"}}).add(10);
  store.sample(reg);
  reg.counter("demo_total", "demo", {{"queue", "0"}}).add(10);
  store.sample(reg);
  server.set_timeseries(&store);

  const Response catalog = server.handle(get("/timeseries"));
  EXPECT_EQ(catalog.status, 200);
  EXPECT_NE(catalog.body.find("\"metrics\":[\"demo_total\"]"),
            std::string::npos);

  const Response family = server.handle(get("/timeseries?metric=demo_total"));
  EXPECT_EQ(family.status, 200);
  EXPECT_NE(family.body.find("\"metric\":\"demo_total\""), std::string::npos);
  EXPECT_NE(family.body.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(family.body.find("\"rate\":"), std::string::npos);

  EXPECT_EQ(server.handle(get("/timeseries?metric=missing")).status, 404);
  // Malformed window → 400 with the parse error.
  Request bad = get("/timeseries?metric=demo_total");
  bad.query.emplace("window", "banana");
  EXPECT_EQ(server.handle(bad).status, 400);
}

// --- flight recorder unit behaviour -----------------------------------------

TEST(FlightRecorder, BoundedEvictionKeepsCountersExact) {
  telemetry::FlightRecorder recorder(/*capacity=*/2, /*context_events=*/4);
  for (std::uint64_t i = 0; i < 5; ++i) {
    telemetry::FlightIncident incident;
    incident.cause = i < 4 ? telemetry::FlightCause::record_quarantined
                           : telemetry::FlightCause::completion_lost;
    incident.sequence = i;
    recorder.record(std::move(incident));
  }
  EXPECT_EQ(recorder.total(), 5u);
  EXPECT_EQ(recorder.count(telemetry::FlightCause::record_quarantined), 4u);
  EXPECT_EQ(recorder.count(telemetry::FlightCause::completion_lost), 1u);
  const auto kept = recorder.snapshot();
  ASSERT_EQ(kept.size(), 2u);  // bounded: only the newest two retained
  EXPECT_EQ(kept[0].sequence, 3u);
  EXPECT_EQ(kept[1].sequence, 4u);
  recorder.clear();
  EXPECT_EQ(recorder.total(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRecorder, ToJsonEscapesAndHexDumps) {
  telemetry::FlightRecorder recorder(4, 4);
  telemetry::FlightIncident incident;
  incident.cause = telemetry::FlightCause::ctrl_retry_exhausted;
  incident.layout_id = "weird\"name";
  incident.record = {0x00, 0xFF};
  recorder.record(std::move(incident));
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("ctrl_retry_exhausted"), std::string::npos);
  EXPECT_NE(json.find("weird\\\"name"), std::string::npos);
  EXPECT_NE(json.find("00ff"), std::string::npos);
  EXPECT_EQ(telemetry::to_hex(std::vector<std::uint8_t>{0xAB, 0x01}), "ab01");
}

// --- full integration: faulted 4-queue engine scraped live ------------------

struct LiveEngine : ::testing::Test {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs{registry};
  core::Compiler compiler{registry, costs};
  softnic::ComputeEngine compute{registry};
  core::CompileResult result{compiler.compile(
      nic::NicCatalog::by_name("ice").p4_source(),
      R"(header i_t {
          @semantic("rss")     bit<32> h;
          @semantic("vlan")    bit<16> v;
          @semantic("pkt_len") bit<16> l;
      })",
      {})};

  [[nodiscard]] std::vector<net::Packet> trace(std::size_t n) const {
    net::WorkloadConfig config;
    config.seed = 42;
    config.vlan_probability = 0.4;
    config.udp_fraction = 0.5;
    config.min_frame = 96;
    net::WorkloadGenerator gen(config);
    return gen.batch(n);
  }
};

TEST_F(LiveEngine, ServesEveryEndpointDuringAndAfterAFaultedRun) {
  Sink sink({.queues = 4, .trace_capacity = 256});
  rt::EngineConfig config = rt::EngineConfig{}
                                .with_queues(4)
                                .with_guard(true)
                                .with_fault_rate(0.01, 2026)
                                .with_telemetry(&sink)
                                .with_server("127.0.0.1:0");
  engine::MultiQueueEngine engine(result, compute, config);
  ASSERT_NE(engine.server(), nullptr);
  const std::uint16_t port = engine.server()->port();
  ASSERT_NE(port, 0);

  // Before the first run: alive but not ready.
  EXPECT_EQ(http_get("127.0.0.1", port, "/healthz").status, 200);
  EXPECT_EQ(http_get("127.0.0.1", port, "/readyz").status, 503);

  const engine::EngineReport report = engine.run(trace(6000));
  EXPECT_GT(report.total.quarantined + report.total.lost_completions, 0u)
      << "fault run produced no faults; flight assertions would be vacuous";

  // After a completed run the probe reports ready.
  EXPECT_EQ(http_get("127.0.0.1", port, "/readyz").status, 200);

  const Response metrics = http_get("127.0.0.1", port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("opendesc_rx_packets_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("opendesc_stage_latency_ns_bucket"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("opendesc_flight_incidents_total"),
            std::string::npos);

  EXPECT_EQ(http_get("127.0.0.1", port, "/metrics.json").status, 200);
  const Response traces = http_get("127.0.0.1", port, "/traces?queue=0");
  EXPECT_EQ(traces.status, 200);

  // Unknown routes answer the structured JSON 404 over the wire too, and
  // HEAD is headers-only end to end.
  const Response missing = http_get("127.0.0.1", port, "/definitely-not");
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(missing.content_type, "application/json");
  EXPECT_NE(missing.body.find("\"routes\":"), std::string::npos);
  const Response head =
      http::http_request("HEAD", "127.0.0.1", port, "/metrics");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());

  // --listen implies the health monitor: the sampler feeds /timeseries even
  // with no rules loaded, and /alerts reports the (disabled) rule engine.
  const Response alerts = http_get("127.0.0.1", port, "/alerts");
  EXPECT_EQ(alerts.status, 200);
  EXPECT_NE(alerts.body.find("\"rules\":"), std::string::npos);
  EXPECT_EQ(http_get("127.0.0.1", port, "/timeseries").status, 200);

  // The flight dump must carry the actual quarantined record bytes.
  const Response flight = http_get("127.0.0.1", port, "/flight");
  EXPECT_EQ(flight.status, 200);
  if (report.total.quarantined > 0) {
    EXPECT_NE(flight.body.find("record_quarantined"), std::string::npos);
    EXPECT_NE(flight.body.find("\"record\":\""), std::string::npos);
  }
  const auto incidents = sink.flight().snapshot();
  ASSERT_FALSE(incidents.empty());
  bool found_record_bytes = false;
  for (const auto& incident : incidents) {
    if (incident.cause == telemetry::FlightCause::record_quarantined &&
        !incident.record.empty()) {
      found_record_bytes = true;
      EXPECT_NE(flight.body.find(telemetry::to_hex(incident.record)),
                std::string::npos);
    }
  }
  if (report.total.quarantined > 0) {
    EXPECT_TRUE(found_record_bytes);
  }

  // Stage-latency accounting made it into the report: every stage saw
  // batches, and the validate stage saw at least one batch per queue.
  ASSERT_EQ(report.stage_latency.size(), telemetry::kStageCount);
  for (std::size_t s = 0; s < telemetry::kStageCount; ++s) {
    EXPECT_GT(report.stage_latency[s].count, 0u)
        << telemetry::to_string(static_cast<telemetry::Stage>(s));
  }
}

TEST_F(LiveEngine, EngineWithoutListenHasNoServer) {
  engine::MultiQueueEngine engine(result, compute,
                                  rt::EngineConfig{}.with_queues(2));
  EXPECT_EQ(engine.server(), nullptr);
  const engine::EngineReport report = engine.run(trace(500));
  EXPECT_EQ(report.total.packets, 500u);
  EXPECT_TRUE(report.stage_latency.empty());  // no sink, no spans
}

}  // namespace
}  // namespace opendesc
