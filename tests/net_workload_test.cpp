// Workload generator determinism and distribution properties.
#include <gtest/gtest.h>

#include <map>

#include "net/checksum.hpp"
#include "net/workload.hpp"

namespace opendesc::net {
namespace {

TEST(Workload, DeterministicForSameSeed) {
  WorkloadConfig config;
  config.seed = 99;
  config.flow_count = 8;
  WorkloadGenerator a(config), b(config);
  for (int i = 0; i < 200; ++i) {
    const Packet pa = a.next();
    const Packet pb = b.next();
    EXPECT_EQ(pa.data, pb.data);
    EXPECT_EQ(pa.rx_timestamp_ns, pb.rx_timestamp_ns);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadConfig a_cfg, b_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  WorkloadGenerator a(a_cfg), b(b_cfg);
  bool any_difference = false;
  for (int i = 0; i < 32 && !any_difference; ++i) {
    any_difference = a.next().data != b.next().data;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Workload, FrameSizesWithinBounds) {
  WorkloadConfig config;
  config.min_frame = 64;
  config.max_frame = 128;
  WorkloadGenerator gen(config);
  for (int i = 0; i < 500; ++i) {
    const std::size_t size = gen.next().size();
    EXPECT_GE(size, 64u);
    EXPECT_LE(size, 128u);
  }
}

TEST(Workload, AllPacketsParseAndBelongToFlowTable) {
  WorkloadConfig config;
  config.flow_count = 16;
  config.vlan_probability = 0.5;
  config.udp_fraction = 0.5;
  WorkloadGenerator gen(config);
  for (int i = 0; i < 300; ++i) {
    const Packet pkt = gen.next();
    const PacketView view = PacketView::parse(pkt.bytes());
    const FlowSpec& flow = gen.flows()[gen.last_flow_index()];
    EXPECT_EQ(view.ipv4().src, flow.src_ip);
    EXPECT_EQ(view.ipv4().dst, flow.dst_ip);
    EXPECT_EQ(view.src_port(), flow.src_port);
    EXPECT_EQ(view.dst_port(), flow.dst_port);
    EXPECT_EQ(view.has_vlan(), flow.tagged);
    EXPECT_EQ(view.l4_kind() == L4Kind::udp, flow.is_udp);
  }
}

TEST(Workload, ZipfSkewConcentratesOnHeadFlows) {
  WorkloadConfig config;
  config.flow_count = 100;
  config.zipf_skew = 1.0;
  WorkloadGenerator gen(config);
  std::map<std::size_t, int> hits;
  const int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    (void)gen.next();
    ++hits[gen.last_flow_index()];
  }
  // Flow 0 should be far hotter than flow 99 and hold roughly 1/H(100)
  // ≈ 19% of traffic.
  EXPECT_GT(hits[0], kDraws / 10);
  EXPECT_LT(hits[99], hits[0] / 4);
}

TEST(Workload, UniformWhenSkewZero) {
  WorkloadConfig config;
  config.flow_count = 10;
  config.zipf_skew = 0.0;
  WorkloadGenerator gen(config);
  std::map<std::size_t, int> hits;
  for (int i = 0; i < 5000; ++i) {
    (void)gen.next();
    ++hits[gen.last_flow_index()];
  }
  for (const auto& [flow, count] : hits) {
    EXPECT_NEAR(count, 500, 150) << "flow " << flow;
  }
}

TEST(Workload, KvRequestsCarryExtractableKeys) {
  WorkloadConfig config;
  config.kv_requests = true;
  config.kv_key_space = 4;
  config.min_frame = 80;
  WorkloadGenerator gen(config);
  for (int i = 0; i < 100; ++i) {
    const Packet pkt = gen.next();
    const PacketView view = PacketView::parse(pkt.bytes());
    const std::string key = kv_extract_key(view.payload());
    ASSERT_FALSE(key.empty());
    EXPECT_EQ(key.substr(0, 4), "key-");
  }
}

TEST(Workload, KvExtractKeyFormats) {
  const auto key_of = [](std::string_view text) {
    return kv_extract_key(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  };
  EXPECT_EQ(key_of("GET foo\n"), "foo");
  EXPECT_EQ(key_of("SET bar 12345"), "bar");
  EXPECT_EQ(key_of("GET noterminator"), "noterminator");
  EXPECT_EQ(key_of("DEL foo\n"), "");
  EXPECT_EQ(key_of(""), "");
}

TEST(Workload, BadChecksumInjectionRate) {
  WorkloadConfig config;
  config.bad_l4_csum_fraction = 1.0;  // every packet corrupted
  WorkloadGenerator gen(config);
  const Packet pkt = gen.next();
  const PacketView view = PacketView::parse(pkt.bytes());
  // Corrupted checksum: recomputing over the stored segment must not fold
  // to zero.
  const std::uint8_t proto =
      view.l4_kind() == L4Kind::tcp ? kIpProtoTcp : kIpProtoUdp;
  EXPECT_NE(
      l4_checksum_ipv4(view.ipv4().src, view.ipv4().dst, proto, view.l4_bytes()),
      0);
}

TEST(Workload, RejectsInvalidConfig) {
  WorkloadConfig config;
  config.flow_count = 0;
  EXPECT_THROW(WorkloadGenerator{config}, std::invalid_argument);
  config.flow_count = 1;
  config.min_frame = 2000;
  config.max_frame = 100;
  EXPECT_THROW(WorkloadGenerator{config}, std::invalid_argument);
}

TEST(Workload, Ipv6FlowsGenerateValidDualStackTraffic) {
  WorkloadConfig config;
  config.ipv6_fraction = 0.5;
  config.vlan_probability = 0.3;
  config.flow_count = 32;
  WorkloadGenerator gen(config);
  int v6_count = 0;
  for (int i = 0; i < 300; ++i) {
    const Packet pkt = gen.next();
    const PacketView view = PacketView::parse(pkt.bytes());
    const FlowSpec& flow = gen.flows()[gen.last_flow_index()];
    if (flow.is_ipv6) {
      ++v6_count;
      ASSERT_EQ(view.l3_kind(), L3Kind::ipv6);
      EXPECT_TRUE(std::equal(flow.src_ip6.begin(), flow.src_ip6.end(),
                             view.ipv6().src.begin()));
      // L4 checksum over the v6 pseudo-header must validate.
      const std::uint8_t proto =
          view.l4_kind() == L4Kind::tcp ? kIpProtoTcp : kIpProtoUdp;
      EXPECT_EQ(l4_checksum_ipv6(view.ipv6().src, view.ipv6().dst, proto,
                                 view.l4_bytes()),
                0);
    } else {
      ASSERT_EQ(view.l3_kind(), L3Kind::ipv4);
    }
  }
  EXPECT_GT(v6_count, 50);
  EXPECT_LT(v6_count, 250);
}

TEST(Workload, TimestampsAdvanceMonotonically) {
  WorkloadConfig config;
  config.inter_arrival_ns = 50;
  WorkloadGenerator gen(config);
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const Packet pkt = gen.next();
    EXPECT_GT(pkt.rx_timestamp_ns, last);
    last = pkt.rx_timestamp_ns;
  }
}

}  // namespace
}  // namespace opendesc::net
