// Full-pipeline integration tests: for every NIC model × a matrix of
// intents, compile, simulate reception, and verify that every requested
// semantic — whether NIC-provided or SoftNIC-fallback — matches ground
// truth computed directly from the packet.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "nic/model.hpp"
#include "runtime/rxloop.hpp"

namespace opendesc {
namespace {

using softnic::SemanticId;

struct Scenario {
  const char* name;
  const char* intent;
  std::vector<SemanticId> wanted;
};

const Scenario kScenarios[] = {
    {"len_only",
     R"(header i_t { @semantic("pkt_len") bit<16> l; })",
     {SemanticId::pkt_len}},
    {"rss_csum",
     R"(header i_t {
          @semantic("rss")         bit<32> h;
          @semantic("ip_checksum") bit<16> c;
        })",
     {SemanticId::rss_hash, SemanticId::ip_checksum}},
    {"fig1_appset",
     R"(header i_t {
          @semantic("ip_checksum") bit<16> csum;
          @semantic("vlan")        bit<16> vlan_tci;
          @semantic("rss")         bit<32> rss_val;
          @semantic("kv_key_hash") bit<32> kv_key;
        })",
     {SemanticId::ip_checksum, SemanticId::vlan_tci, SemanticId::rss_hash,
      SemanticId::kv_key_hash}},
    {"telemetry",
     R"(header i_t {
          @semantic("timestamp")   bit<64> ts;
          @semantic("flow_id")     bit<32> fid;
          @semantic("packet_type") bit<16> pt;
        })",
     {SemanticId::timestamp, SemanticId::flow_id, SemanticId::packet_type}},
};

class Integration
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(Integration, RequestedSemanticsMatchGroundTruthEndToEnd) {
  const auto& [nic_name, scenario_index] = GetParam();
  const Scenario& scenario = kScenarios[scenario_index];
  const nic::NicModel& model = nic::NicCatalog::by_name(nic_name);

  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(model.p4_source(), scenario.intent, {});
  softnic::ComputeEngine engine(registry);

  sim::NicSimulator nic(result.layout, engine, {});
  rt::MetadataFacade facade(result, engine);

  net::WorkloadConfig config;
  config.seed = 42;
  config.flow_count = 16;
  config.vlan_probability = 0.4;
  config.ipv6_fraction = 0.25;  // dual-stack traffic
  config.kv_requests = true;
  config.min_frame = 80;
  net::WorkloadGenerator gen(config);

  for (int i = 0; i < 100; ++i) {
    const net::Packet pkt = gen.next();
    ASSERT_TRUE(nic.rx(pkt));
    std::vector<sim::RxEvent> events(1);
    ASSERT_EQ(nic.poll(events), 1u);
    const rt::PacketContext ctx(events[0]);
    const net::PacketView view = net::PacketView::parse(pkt.bytes());

    softnic::RxContext hw_ctx;
    hw_ctx.rx_timestamp_ns = pkt.rx_timestamp_ns;
    for (const SemanticId id : scenario.wanted) {
      const std::uint64_t expected =
          id == SemanticId::timestamp && !facade.hardware_provided(id)
              ? 0  // software timestamp fallback has no hardware stamp
              : engine.compute(id, pkt.bytes(), view, hw_ctx);
      EXPECT_EQ(facade.fetch(ctx, id).value(), expected)
          << nic_name << "/" << scenario.name << " semantic "
          << registry.name(id) << " packet " << i;
    }
    nic.advance(1);
  }
}

std::vector<std::tuple<std::string, std::size_t>> all_combinations() {
  std::vector<std::tuple<std::string, std::size_t>> out;
  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    for (std::size_t i = 0; i < std::size(kScenarios); ++i) {
      out.emplace_back(model.name(), i);
    }
  }
  return out;
}

std::string combo_name(
    const ::testing::TestParamInfo<std::tuple<std::string, std::size_t>>& info) {
  return std::get<0>(info.param) + "_" +
         kScenarios[std::get<1>(info.param)].name;
}

INSTANTIATE_TEST_SUITE_P(CatalogMatrix, Integration,
                         ::testing::ValuesIn(all_combinations()), combo_name);

// ---------------------------------------------------------------------------
// Cross-NIC portability: one application, every NIC, identical results.
// ---------------------------------------------------------------------------

TEST(IntegrationPortability, SameAppObservesSameValuesOnEveryNic) {
  constexpr const char* kIntent = R"(
      header i_t {
          @semantic("rss")     bit<32> h;
          @semantic("pkt_len") bit<16> l;
          @semantic("vlan")    bit<16> v;
      })";
  const std::vector<SemanticId> wanted = {
      SemanticId::rss_hash, SemanticId::pkt_len, SemanticId::vlan_tci};

  std::optional<std::uint64_t> reference;
  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    const auto result = compiler.compile(model.p4_source(), kIntent, {});
    softnic::ComputeEngine engine(registry);
    sim::NicSimulator nic(result.layout, engine, {});
    rt::OpenDescStrategy strategy(result, engine);

    net::WorkloadConfig config;
    config.seed = 7;
    config.vlan_probability = 0.5;
    net::WorkloadGenerator gen(config);
    rt::RxLoopConfig loop;
    loop.packet_count = 300;
    const rt::RxLoopStats stats =
        rt::run_rx_loop(nic, gen, strategy, wanted, loop);

    ASSERT_EQ(stats.packets, 300u) << model.name();
    if (!reference) {
      reference = stats.value_checksum;
    } else {
      EXPECT_EQ(stats.value_checksum, *reference)
          << "NIC " << model.name() << " disagrees with the reference values";
    }
  }
}

// ---------------------------------------------------------------------------
// DMA footprint: the compiler's chosen completion sizes translate into the
// simulator's byte accounting (smaller intents → fewer completion bytes on
// programmable NICs).
// ---------------------------------------------------------------------------

TEST(IntegrationFootprint, IntentSizeDrivesCompletionBytesOnQdma) {
  const nic::NicModel& model = nic::NicCatalog::by_name("qdma");
  const auto run = [&](const char* intent) {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    const auto result = compiler.compile(model.p4_source(), intent, {});
    softnic::ComputeEngine engine(registry);
    sim::NicSimulator nic(result.layout, engine, {});
    net::WorkloadConfig config;
    net::WorkloadGenerator gen(config);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(nic.rx(gen.next()));
    }
    return nic.dma().completion_bytes;
  };

  const auto small = run(R"(header i_t { @semantic("pkt_len") bit<16> l; })");
  const auto medium = run(R"(header i_t {
      @semantic("pkt_len") bit<16> l;
      @semantic("rss") bit<32> h; })");
  const auto large = run(R"(header i_t {
      @semantic("pkt_len") bit<16> l;
      @semantic("mark") bit<32> m; })");
  EXPECT_EQ(small, 50u * 8u);
  EXPECT_EQ(medium, 50u * 16u);
  EXPECT_EQ(large, 50u * 64u);
}

// ---------------------------------------------------------------------------
// Failure injection: corrupted packets must surface through csum-ok
// semantics identically on hardware-provided and software paths.
// ---------------------------------------------------------------------------

TEST(IntegrationFailure, CorruptChecksumsVisibleThroughAnyPath) {
  constexpr const char* kIntent = R"(
      header i_t { @semantic("l4_csum_ok") bit<1> ok; })";
  for (const char* nic_name : {"mlx5", "dumbnic"}) {  // provided vs fallback
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    const nic::NicModel& model = nic::NicCatalog::by_name(nic_name);
    const auto result = compiler.compile(model.p4_source(), kIntent, {});
    softnic::ComputeEngine engine(registry);
    sim::NicSimulator nic(result.layout, engine, {});
    rt::MetadataFacade facade(result, engine);

    net::WorkloadConfig config;
    config.bad_l4_csum_fraction = 1.0;
    net::WorkloadGenerator gen(config);
    ASSERT_TRUE(nic.rx(gen.next()));
    std::vector<sim::RxEvent> events(1);
    ASSERT_EQ(nic.poll(events), 1u);
    EXPECT_EQ(facade.fetch(rt::PacketContext(events[0]), SemanticId::l4_csum_ok)
                  .value(),
              0u)
        << nic_name;
    nic.advance(1);
  }
}

}  // namespace
}  // namespace opendesc
