// P4 subset lexer tests.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "p4/lexer.hpp"

namespace opendesc::p4 {
namespace {

std::vector<TokenKind> kinds(std::string_view source) {
  std::vector<TokenKind> out;
  for (const Token& t : tokenize(source)) {
    out.push_back(t.kind);
  }
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::end_of_file);
}

TEST(Lexer, KeywordsAndIdentifiers) {
  const auto tokens = tokenize("header foo_t parser control bit bool apply x1");
  EXPECT_EQ(tokens[0].kind, TokenKind::kw_header);
  EXPECT_EQ(tokens[1].kind, TokenKind::identifier);
  EXPECT_EQ(tokens[1].text, "foo_t");
  EXPECT_EQ(tokens[2].kind, TokenKind::kw_parser);
  EXPECT_EQ(tokens[3].kind, TokenKind::kw_control);
  EXPECT_EQ(tokens[4].kind, TokenKind::kw_bit);
  EXPECT_EQ(tokens[5].kind, TokenKind::kw_bool);
  EXPECT_EQ(tokens[6].kind, TokenKind::kw_apply);
  EXPECT_EQ(tokens[7].kind, TokenKind::identifier);
}

TEST(Lexer, IntegerLiterals) {
  const auto tokens = tokenize("42 0x2A 0b101010 0o52 1_000");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tokens[i].kind, TokenKind::int_literal);
    EXPECT_EQ(tokens[i].int_value, 42u) << i;
    EXPECT_FALSE(tokens[i].int_width.has_value());
  }
  EXPECT_EQ(tokens[4].int_value, 1000u);
}

TEST(Lexer, WidthLiterals) {
  const auto tokens = tokenize("8w0xFF 4w0b1010 16w42");
  EXPECT_EQ(tokens[0].int_value, 255u);
  EXPECT_EQ(tokens[0].int_width, 8u);
  EXPECT_EQ(tokens[1].int_value, 10u);
  EXPECT_EQ(tokens[1].int_width, 4u);
  EXPECT_EQ(tokens[2].int_value, 42u);
  EXPECT_EQ(tokens[2].int_width, 16u);
}

TEST(Lexer, WidthLiteralOverflowRejected) {
  EXPECT_THROW((void)tokenize("4w16"), Error);     // 16 needs 5 bits
  EXPECT_THROW((void)tokenize("0w1"), Error);      // zero width
  EXPECT_THROW((void)tokenize("65w0"), Error);     // too wide
  EXPECT_THROW((void)tokenize("8s5"), Error);      // signed unsupported
}

TEST(Lexer, OperatorsIncludingDigraphs) {
  const auto k = kinds("== != <= >= << >> && || < > = ! & | ^ ~ + - * / %");
  const std::vector<TokenKind> expected = {
      TokenKind::eq, TokenKind::ne, TokenKind::le, TokenKind::ge,
      TokenKind::shl, TokenKind::shr, TokenKind::and_and, TokenKind::or_or,
      TokenKind::l_angle, TokenKind::r_angle, TokenKind::assign, TokenKind::bang,
      TokenKind::amp, TokenKind::pipe, TokenKind::caret, TokenKind::tilde,
      TokenKind::plus, TokenKind::minus, TokenKind::star, TokenKind::slash,
      TokenKind::percent, TokenKind::end_of_file,
  };
  EXPECT_EQ(k, expected);
}

TEST(Lexer, CommentsSkipped) {
  const auto tokens = tokenize(R"(
      // line comment
      header /* block
                comment */ x
  )");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kw_header);
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(Lexer, UnterminatedBlockCommentRejected) {
  EXPECT_THROW((void)tokenize("/* never closed"), Error);
}

TEST(Lexer, StringLiteralsWithEscapes) {
  const auto tokens = tokenize(R"( "rss" "a\nb" "q\"q" )");
  EXPECT_EQ(tokens[0].kind, TokenKind::string_literal);
  EXPECT_EQ(tokens[0].text, "rss");
  EXPECT_EQ(tokens[1].text, "a\nb");
  EXPECT_EQ(tokens[2].text, "q\"q");
}

TEST(Lexer, UnterminatedStringRejected) {
  EXPECT_THROW((void)tokenize("\"oops"), Error);
  EXPECT_THROW((void)tokenize("\"bad\\x\""), Error);
}

TEST(Lexer, UnderscoreIsWildcardToken) {
  const auto tokens = tokenize("_ _name");
  EXPECT_EQ(tokens[0].kind, TokenKind::underscore);
  EXPECT_EQ(tokens[1].kind, TokenKind::identifier);
  EXPECT_EQ(tokens[1].text, "_name");
}

TEST(Lexer, LocationsTrackLinesAndColumns) {
  const auto tokens = tokenize("a\n  b\n\nc");
  EXPECT_EQ(tokens[0].location.line, 1u);
  EXPECT_EQ(tokens[0].location.column, 1u);
  EXPECT_EQ(tokens[1].location.line, 2u);
  EXPECT_EQ(tokens[1].location.column, 3u);
  EXPECT_EQ(tokens[2].location.line, 4u);
}

TEST(Lexer, UnexpectedCharacterDiagnosed) {
  try {
    (void)tokenize("header $");
    FAIL() << "expected lex error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::lex);
    EXPECT_NE(std::string(e.what()).find("1:8"), std::string::npos);
  }
}

TEST(Lexer, AnnotationTokens) {
  const auto k = kinds("@semantic(\"rss\")");
  const std::vector<TokenKind> expected = {
      TokenKind::at, TokenKind::identifier, TokenKind::l_paren,
      TokenKind::string_literal, TokenKind::r_paren, TokenKind::end_of_file,
  };
  EXPECT_EQ(k, expected);
}

}  // namespace
}  // namespace opendesc::p4
