// NIC simulator tests: completion serialization fidelity, ring/pool
// exhaustion, DMA accounting, and the link model.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "sim/nicsim.hpp"

namespace opendesc::sim {
namespace {

using softnic::SemanticId;

class NicSimTest : public ::testing::Test {
 protected:
  core::CompileResult compile(const std::string& nic,
                              const std::string& intent) {
    const nic::NicModel& model = nic::NicCatalog::by_name(nic);
    return compiler_.compile(model.p4_source(), intent, {});
  }

  softnic::SemanticRegistry registry_;
  softnic::CostTable costs_{registry_};
  core::Compiler compiler_{registry_, costs_};
  softnic::ComputeEngine engine_{registry_};
};

constexpr const char* kIntent = R"P4(
header i_t {
    @semantic("rss")     bit<32> h;
    @semantic("pkt_len") bit<16> l;
}
)P4";

TEST_F(NicSimTest, CompletionRecordsCarryGroundTruth) {
  const auto result = compile("qdma", kIntent);
  ASSERT_EQ(result.layout.total_bytes(), 16u);

  NicSimulator nic(result.layout, engine_, {});
  net::WorkloadConfig config;
  config.flow_count = 8;
  net::WorkloadGenerator gen(config);

  std::vector<net::Packet> sent;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(gen.next());
    ASSERT_TRUE(nic.rx(sent.back()));
  }
  std::vector<RxEvent> events(32);
  const std::size_t n = nic.poll(events);
  ASSERT_EQ(n, 20u);

  for (std::size_t i = 0; i < n; ++i) {
    const net::PacketView view = net::PacketView::parse(events[i].frame);
    // Frame delivered byte-identical.
    ASSERT_EQ(events[i].frame.size(), sent[i].size());
    EXPECT_TRUE(std::equal(sent[i].data.begin(), sent[i].data.end(),
                           events[i].frame.begin()));
    // Completion fields equal ground-truth recomputation.
    softnic::RxContext ctx;
    ctx.rx_timestamp_ns = sent[i].rx_timestamp_ns;
    EXPECT_EQ(result.layout.read(events[i].record, SemanticId::rss_hash),
              engine_.compute(SemanticId::rss_hash, events[i].frame, view, ctx));
    EXPECT_EQ(result.layout.read(events[i].record, SemanticId::pkt_len),
              sent[i].size());
  }
  nic.advance(n);
  EXPECT_EQ(nic.pending(), 0u);
}

TEST_F(NicSimTest, FixedFieldsSerializedIntoRecords) {
  const auto result = compile("e1000", "header i_t { @semantic(\"pkt_len\") bit<16> l; }");
  NicSimulator nic(result.layout, engine_, {});
  net::WorkloadConfig config;
  net::WorkloadGenerator gen(config);
  ASSERT_TRUE(nic.rx(gen.next()));
  std::vector<RxEvent> events(1);
  ASSERT_EQ(nic.poll(events), 1u);
  // e1000 status byte is @fixed(1) (descriptor-done).
  EXPECT_EQ(events[0].record[4], 1u);
}

TEST_F(NicSimTest, RingExhaustionDropsAndCounts) {
  const auto result = compile("dumbnic", "header i_t { @semantic(\"pkt_len\") bit<16> l; }");
  SimConfig config;
  config.cmpt_ring_entries = 4;
  NicSimulator nic(result.layout, engine_, {}, config);
  net::WorkloadConfig wl;
  net::WorkloadGenerator gen(wl);
  int accepted = 0, dropped = 0;
  for (int i = 0; i < 10; ++i) {
    if (nic.rx(gen.next())) {
      ++accepted;
    } else {
      ++dropped;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(dropped, 6);
  EXPECT_EQ(nic.dma().drops, 6u);

  // Draining frees capacity again.
  std::vector<RxEvent> events(4);
  nic.advance(nic.poll(events));
  EXPECT_TRUE(nic.rx(gen.next()));
}

TEST_F(NicSimTest, OversizedFrameDropped) {
  const auto result = compile("dumbnic", "header i_t { @semantic(\"pkt_len\") bit<16> l; }");
  SimConfig config;
  config.rx_buffer_size = 128;
  NicSimulator nic(result.layout, engine_, {}, config);
  net::Packet jumbo;
  jumbo.data.resize(2000, 0xEE);
  EXPECT_FALSE(nic.rx(jumbo));
  EXPECT_EQ(nic.dma().drops, 1u);
}

TEST_F(NicSimTest, DmaAccountingSumsBytes) {
  const auto result = compile("qdma", kIntent);
  NicSimulator nic(result.layout, engine_, {});
  net::WorkloadConfig wl;
  wl.min_frame = 100;
  wl.max_frame = 100;
  net::WorkloadGenerator gen(wl);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(nic.rx(gen.next()));
  }
  EXPECT_EQ(nic.dma().completions, 10u);
  EXPECT_EQ(nic.dma().completion_bytes, 10u * 16u);
  EXPECT_EQ(nic.dma().rx_frame_bytes, 10u * 100u);
  EXPECT_EQ(nic.dma().total_to_host(), 10u * 116u);
}

TEST_F(NicSimTest, SeqNoIncrementsPerCompletion) {
  // qdma 64B path provides seq_no and mark; mark (w = ∞) forces the 64B
  // format since no smaller path carries it.
  const auto result = compile("qdma", R"P4(
header i_t {
    @semantic("seq_no") bit<32> s;
    @semantic("mark")   bit<32> m;
}
)P4");
  ASSERT_EQ(result.layout.total_bytes(), 64u);
  NicSimulator nic(result.layout, engine_, {});
  net::WorkloadConfig wl;
  net::WorkloadGenerator gen(wl);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(nic.rx(gen.next()));
  }
  std::vector<RxEvent> events(5);
  ASSERT_EQ(nic.poll(events), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result.layout.read(events[i].record, SemanticId::seq_no), i + 1);
  }
}

TEST_F(NicSimTest, AdvanceBeyondPendingRejected) {
  const auto result = compile("dumbnic", "header i_t { @semantic(\"pkt_len\") bit<16> l; }");
  NicSimulator nic(result.layout, engine_, {});
  EXPECT_THROW(nic.advance(1), opendesc::Error);
}

TEST(DmaLinkModel, TransferTimesScale) {
  DmaLinkModel model;
  EXPECT_DOUBLE_EQ(model.transfer_ns(0), 0.0);
  // One TLP: bytes * ns_per_byte + 1 transaction.
  EXPECT_DOUBLE_EQ(model.transfer_ns(64), 64 * model.ns_per_byte + model.ns_per_transaction);
  // 300 bytes needs 2 TLPs at max_payload 256.
  EXPECT_DOUBLE_EQ(model.transfer_ns(300),
                   300 * model.ns_per_byte + 2 * model.ns_per_transaction);
  // Smaller completions → strictly higher achievable packet rate.
  const double rate_8 = model.packets_per_second(64, 8);
  const double rate_64 = model.packets_per_second(64, 64);
  EXPECT_GT(rate_8, rate_64);
}

}  // namespace
}  // namespace opendesc::sim
