// NIC catalog tests: every model parses and type-checks, and the layouts
// derived from the P4 descriptions match hand-written "datasheet" golden
// tables (offset/width/semantic per field).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "nic/model.hpp"

namespace opendesc::nic {
namespace {

using core::CompletionPath;
using softnic::SemanticId;

TEST(Catalog, AllModelsParseAndExposeDeparsers) {
  for (const NicModel& model : NicCatalog::all()) {
    EXPECT_NO_THROW({
      const p4::Program& program = model.program();
      (void)program;
      const p4::ControlDecl& deparser = model.deparser();
      EXPECT_FALSE(deparser.params().empty()) << model.name();
    }) << model.name();
  }
}

TEST(Catalog, LookupByName) {
  EXPECT_EQ(NicCatalog::by_name("e1000").nic_class(), NicClass::fixed);
  EXPECT_EQ(NicCatalog::by_name("bf3").nic_class(), NicClass::partial);
  EXPECT_EQ(NicCatalog::by_name("qdma").nic_class(), NicClass::programmable);
  EXPECT_THROW((void)NicCatalog::by_name("rtl8139"), Error);
  EXPECT_EQ(NicCatalog::all().size(), 8u);
}

TEST(Catalog, ParseIsCachedAcrossCalls) {
  const NicModel& model = NicCatalog::by_name("mlx5");
  const p4::Program* first = &model.program();
  const p4::Program* second = &model.program();
  EXPECT_EQ(first, second);
}

/// Enumerates all paths of a model with a maximal intent (so nothing
/// filters) and returns them.
std::vector<CompletionPath> paths_of(const NicModel& model) {
  softnic::SemanticRegistry registry;
  const core::Cfg cfg =
      core::build_cfg(model.program(), model.types(), model.deparser(), registry);
  core::PathEnumOptions options;
  options.consts = model.types().constants();
  options.variable_bounds =
      core::context_bounds(model.program(), model.types(), model.deparser());
  return core::enumerate_paths(cfg, options);
}

struct GoldenField {
  const char* name;
  std::size_t byte_offset;
  std::size_t bit_offset;
  std::size_t bit_width;
};

/// Checks that the single path `path` packs exactly like the golden table.
void expect_layout(const CompletionPath& path, const std::string& nic,
                   Endian endian, std::span<const GoldenField> golden,
                   std::size_t total_bytes) {
  std::vector<core::FieldSlice> slices;
  for (const core::EmitPiece& piece : path.pieces) {
    core::FieldSlice s;
    s.name = piece.field_name;
    s.semantic = piece.semantic;
    s.bit_width = piece.bit_width;
    s.fixed_value = piece.fixed_value;
    slices.push_back(std::move(s));
  }
  const core::CompiledLayout layout =
      core::pack_layout(nic, path.id, endian, std::move(slices));
  EXPECT_EQ(layout.total_bytes(), total_bytes) << nic << " " << path.id;
  ASSERT_EQ(layout.slices().size(), golden.size()) << nic << " " << path.id;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    const core::FieldSlice& s = layout.slices()[i];
    EXPECT_EQ(s.name, golden[i].name) << nic << " slice " << i;
    EXPECT_EQ(s.byte_offset(), golden[i].byte_offset) << nic << " " << s.name;
    EXPECT_EQ(s.bit_offset(), golden[i].bit_offset) << nic << " " << s.name;
    EXPECT_EQ(s.bit_width, golden[i].bit_width) << nic << " " << s.name;
  }
}

TEST(Golden, E1000LegacyWriteback) {
  // Datasheet-style layout: length@0 (16), csum@2 (16), status@4 (8),
  // errors@5 (8), special@6 (16) — 8 bytes.
  const auto paths = paths_of(NicCatalog::by_name("e1000"));
  ASSERT_EQ(paths.size(), 1u);
  const GoldenField golden[] = {
      {"length", 0, 0, 16}, {"csum", 2, 0, 16},   {"status", 4, 0, 8},
      {"errors", 5, 0, 8},  {"special", 6, 0, 16},
  };
  expect_layout(paths[0], "e1000", Endian::little, golden, 8);
}

TEST(Golden, E1000eBothWritebackFormats) {
  const auto paths = paths_of(NicCatalog::by_name("e1000e"));
  ASSERT_EQ(paths.size(), 2u);
  // RSS format: rss@0 (32) then the common tail.
  const GoldenField rss_golden[] = {
      {"rss_hash", 0, 0, 32}, {"length", 4, 0, 16}, {"status", 6, 0, 8},
      {"errors", 7, 0, 8},    {"vlan", 8, 0, 16},
  };
  expect_layout(paths[0], "e1000e", Endian::little, rss_golden, 10);
  // csum format: ip_id@0 (16), csum@2 (16), same tail.
  const GoldenField csum_golden[] = {
      {"ip_id", 0, 0, 16},  {"csum", 2, 0, 16},  {"length", 4, 0, 16},
      {"status", 6, 0, 8},  {"errors", 7, 0, 8}, {"vlan", 8, 0, 16},
  };
  expect_layout(paths[1], "e1000e", Endian::little, csum_golden, 10);
}

TEST(Golden, QdmaFourSizes) {
  const auto paths = paths_of(NicCatalog::by_name("qdma"));
  ASSERT_EQ(paths.size(), 4u);
  // Paths in true-first DFS order: 64B, 32B, 16B, 8B.
  EXPECT_EQ(paths[0].size_bytes(), 64u);
  EXPECT_EQ(paths[1].size_bytes(), 32u);
  EXPECT_EQ(paths[2].size_bytes(), 16u);
  EXPECT_EQ(paths[3].size_bytes(), 8u);

  // The 8B base format golden table.
  const GoldenField base_golden[] = {
      {"valid", 0, 0, 1},  {"err", 0, 1, 1},    {"rsvd_flags", 0, 2, 6},
      {"length", 1, 0, 16}, {"flow_id", 3, 0, 32}, {"rsvd", 7, 0, 8},
  };
  expect_layout(paths[3], "qdma", Endian::little, base_golden, 8);

  // Each larger format is a strict superset of the previous one's pieces.
  for (std::size_t i = 0; i + 1 < paths.size(); ++i) {
    for (const SemanticId s : paths[i + 1].provided) {
      EXPECT_TRUE(paths[i].provides(s))
          << "size " << paths[i].size_bytes() << " lost semantic";
    }
  }

  // The programmable sizes carry the Fig. 1 accelerator result.
  EXPECT_TRUE(paths[0].provides(SemanticId::kv_key_hash));
  EXPECT_TRUE(paths[1].provides(SemanticId::kv_key_hash));
  EXPECT_FALSE(paths[2].provides(SemanticId::kv_key_hash));
}

TEST(Golden, Mlx5FormatsAndFieldCount) {
  const auto paths = paths_of(NicCatalog::by_name("mlx5"));
  ASSERT_EQ(paths.size(), 4u);
  // full+ts, full-no-ts (both 64B); mini-hash, mini-csum (both 8B).
  EXPECT_EQ(paths[0].size_bytes(), 64u);
  EXPECT_EQ(paths[1].size_bytes(), 64u);
  EXPECT_EQ(paths[2].size_bytes(), 8u);
  EXPECT_EQ(paths[3].size_bytes(), 8u);

  EXPECT_EQ(paths[0].provided.size(), 12u);  // the "12 metadata information"
  EXPECT_TRUE(paths[0].provides(SemanticId::timestamp));
  EXPECT_FALSE(paths[1].provides(SemanticId::timestamp));
  EXPECT_TRUE(paths[2].provides(SemanticId::rss_hash));
  EXPECT_FALSE(paths[2].provides(SemanticId::l4_checksum));
  EXPECT_TRUE(paths[3].provides(SemanticId::l4_checksum));
  EXPECT_FALSE(paths[3].provides(SemanticId::rss_hash));

  // Context steering of the mini-hash path.
  EXPECT_EQ(paths[2].constraints.value_of("ctx.cqe_comp"), 1u);
  EXPECT_EQ(paths[2].constraints.value_of("ctx.mini_format"), 0u);
}

TEST(Golden, Bf3MarkSupport) {
  const auto paths = paths_of(NicCatalog::by_name("bf3"));
  ASSERT_EQ(paths.size(), 3u);
  // flex (16B) provides mark; full CQE paths provide mark too.
  std::size_t with_mark = 0;
  for (const auto& p : paths) {
    if (p.provides(SemanticId::mark)) {
      ++with_mark;
    }
  }
  EXPECT_EQ(with_mark, 3u);
  EXPECT_EQ(paths[0].size_bytes(), 16u);  // flex first (true branch)
}

TEST(Golden, IceFlexProfilesAllShare32ByteShell) {
  const auto paths = paths_of(NicCatalog::by_name("ice"));
  ASSERT_EQ(paths.size(), 3u);
  for (const auto& p : paths) {
    EXPECT_EQ(p.size_bytes(), 32u) << p.id;  // fixed shell, variable slots
    // The common prefix semantics appear in every profile.
    EXPECT_TRUE(p.provides(SemanticId::packet_type));
    EXPECT_TRUE(p.provides(SemanticId::pkt_len));
    EXPECT_TRUE(p.provides(SemanticId::vlan_tci));
  }
  // Profile-specific slots.
  EXPECT_TRUE(paths[0].provides(SemanticId::rss_hash));
  EXPECT_TRUE(paths[0].provides(SemanticId::l4_checksum));
  EXPECT_TRUE(paths[1].provides(SemanticId::timestamp));
  EXPECT_TRUE(paths[1].provides(SemanticId::mark));
  EXPECT_TRUE(paths[2].provides(SemanticId::lro_seg_count));
  EXPECT_FALSE(paths[2].provides(SemanticId::rss_hash));
  // Context steering per profile.
  EXPECT_EQ(paths[0].constraints.value_of("ctx.flex_profile"), 0u);
  EXPECT_EQ(paths[1].constraints.value_of("ctx.flex_profile"), 1u);
}

TEST(Golden, DumbnicMinimal) {
  const auto paths = paths_of(NicCatalog::by_name("dumbnic"));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size_bytes(), 4u);
  EXPECT_EQ(paths[0].provided, std::set<SemanticId>{SemanticId::pkt_len});
}

TEST(Catalog, EndiannessDeclarations) {
  using core::deparser_endian;
  EXPECT_EQ(deparser_endian(NicCatalog::by_name("e1000").deparser()),
            Endian::little);
  EXPECT_EQ(deparser_endian(NicCatalog::by_name("mlx5").deparser()), Endian::big);
  EXPECT_EQ(deparser_endian(NicCatalog::by_name("bf3").deparser()), Endian::big);
  EXPECT_EQ(deparser_endian(NicCatalog::by_name("qdma").deparser()),
            Endian::little);
}

}  // namespace
}  // namespace opendesc::nic
