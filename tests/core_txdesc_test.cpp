// TX-descriptor side tests: format enumeration from DescParser state
// machines, Eq. 1 selection over formats, writer codegen, and the
// end-to-end offload execution in the simulator.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "core/txdesc.hpp"
#include "net/checksum.hpp"
#include "net/offload.hpp"
#include "nic/model.hpp"
#include "sim/nicsim.hpp"

namespace opendesc::core {
namespace {

using softnic::SemanticId;

struct TxSetup {
  softnic::SemanticRegistry registry;
  std::vector<CompletionPath> formats;
  const nic::NicModel* model = nullptr;
};

TxSetup formats_of(const std::string& nic_name) {
  TxSetup setup;
  setup.model = &nic::NicCatalog::by_name(nic_name);
  const p4::ParserDecl* parser = setup.model->desc_parser();
  if (parser == nullptr) {
    throw std::logic_error("model has no desc parser");
  }
  TxDescOptions options;
  options.consts = setup.model->types().constants();
  setup.formats = enumerate_tx_formats(setup.model->program(),
                                       setup.model->types(), *parser,
                                       setup.registry, options);
  return setup;
}

TEST(TxDesc, E1000SingleLegacyFormat) {
  const TxSetup setup = formats_of("e1000");
  ASSERT_EQ(setup.formats.size(), 1u);
  const CompletionPath& fmt = setup.formats[0];
  EXPECT_EQ(fmt.size_bytes(), 16u);
  EXPECT_TRUE(fmt.provides(SemanticId::tx_buf_addr));
  EXPECT_TRUE(fmt.provides(SemanticId::tx_csum_en));
  EXPECT_TRUE(fmt.provides(SemanticId::tx_vlan_insert));
  EXPECT_FALSE(fmt.provides(SemanticId::tx_tso_en));  // no TSO on legacy
}

TEST(TxDesc, IxgbeDataAndContextFormats) {
  const TxSetup setup = formats_of("ixgbe");
  ASSERT_EQ(setup.formats.size(), 2u);
  // Case order: dtyp==3 (data) then dtyp==2 (context).
  const CompletionPath& data = setup.formats[0];
  const CompletionPath& context = setup.formats[1];
  EXPECT_EQ(data.size_bytes(), 16u);
  EXPECT_EQ(context.size_bytes(), 16u);
  EXPECT_TRUE(data.provides(SemanticId::tx_buf_addr));
  EXPECT_TRUE(data.provides(SemanticId::tx_csum_en));
  EXPECT_FALSE(data.provides(SemanticId::tx_tso_en));
  EXPECT_TRUE(context.provides(SemanticId::tx_tso_en));
  EXPECT_TRUE(context.provides(SemanticId::tx_tso_mss));
  EXPECT_FALSE(context.provides(SemanticId::tx_buf_addr));
  // The select keyset is recorded as a constraint on the extracted field.
  EXPECT_EQ(data.constraints.value_of("base.dtyp"), 3u);
  EXPECT_EQ(context.constraints.value_of("base.dtyp"), 2u);
}

TEST(TxDesc, QdmaContextSelectedFormats) {
  const TxSetup setup = formats_of("qdma");
  ASSERT_EQ(setup.formats.size(), 2u);
  EXPECT_EQ(setup.formats[0].size_bytes(), 16u);  // h2c_fmt == 0
  EXPECT_EQ(setup.formats[1].size_bytes(), 32u);  // h2c_fmt == 1
  EXPECT_FALSE(setup.formats[0].provides(SemanticId::tx_tso_en));
  EXPECT_TRUE(setup.formats[1].provides(SemanticId::tx_tso_en));
  EXPECT_EQ(setup.formats[0].constraints.value_of("ctx.h2c_fmt"), 0u);
  EXPECT_EQ(setup.formats[1].constraints.value_of("ctx.h2c_fmt"), 1u);
}

TEST(TxDesc, Eq1SelectionOverFormats) {
  // TX intent: send with checksum insertion.  On qdma the 16B base format
  // lacks tx_csum_en (software checksum w=150 + 16B) vs the 32B format
  // (0 + 32B): the extended format must win under α=1.
  TxSetup setup = formats_of("qdma");
  softnic::CostTable costs(setup.registry);
  Intent intent;
  intent.header_name = "tx_intent";
  for (const SemanticId id :
       {SemanticId::tx_buf_addr, SemanticId::tx_buf_len, SemanticId::tx_csum_en}) {
    IntentField f;
    f.semantic = id;
    f.field_name = setup.registry.name(id);
    f.bit_width = setup.registry.bit_width(id);
    intent.fields.push_back(std::move(f));
  }
  const PathScore best =
      choose_path(setup.formats, intent, costs, setup.registry, {});
  EXPECT_EQ(best.path_index, 1u);
  EXPECT_TRUE(best.missing.empty());

  // With a huge α the 16B format + software checksum wins instead.
  OptimizerOptions options;
  options.dma_weight_per_byte = 100.0;
  const PathScore frugal =
      choose_path(setup.formats, intent, costs, setup.registry, options);
  EXPECT_EQ(frugal.path_index, 0u);
  EXPECT_EQ(frugal.missing, std::set<SemanticId>{SemanticId::tx_csum_en});
}

TEST(TxDesc, FundamentalTxSemanticsUnsatisfiableWhenAbsent) {
  // tx_buf_addr has w = ∞; a format set lacking it everywhere must reject.
  TxSetup setup = formats_of("ixgbe");
  softnic::CostTable costs(setup.registry);
  Intent intent;
  intent.header_name = "i";
  IntentField f;
  f.semantic = SemanticId::tx_buf_addr;
  f.field_name = "tx_buf_addr";
  f.bit_width = 64;
  intent.fields.push_back(std::move(f));
  // Only keep the context format (which lacks the address).
  std::vector<CompletionPath> only_context;
  only_context.push_back(std::move(setup.formats[1]));
  EXPECT_THROW(
      (void)choose_path(only_context, intent, costs, setup.registry, {}),
      Error);
}

TEST(TxDesc, WriterHeaderGeneratesSettersAndInit) {
  TxSetup setup = formats_of("e1000");
  std::vector<FieldSlice> slices;
  for (const EmitPiece& piece : setup.formats[0].pieces) {
    FieldSlice s;
    s.name = piece.field_name;
    s.semantic = piece.semantic;
    s.bit_width = piece.bit_width;
    s.fixed_value = piece.fixed_value;
    slices.push_back(std::move(s));
  }
  const CompiledLayout layout =
      pack_layout("e1000", "fmt0", Endian::little, std::move(slices));
  const std::string header =
      generate_tx_writer_header(layout, setup.registry, "odx_e1000_tx");
  EXPECT_NE(header.find("#define ODX_E1000_TX_DESC_SIZE 16u"), std::string::npos);
  EXPECT_NE(header.find("odx_e1000_tx_desc_init"), std::string::npos);
  EXPECT_NE(header.find("odx_e1000_tx_set_tx_buf_addr"), std::string::npos);
  EXPECT_NE(header.find("odx_e1000_tx_set_tx_csum_en"), std::string::npos);
  EXPECT_NE(header.find("odx_e1000_tx_set_tx_vlan_insert"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end TX offload execution in the simulator.
// ---------------------------------------------------------------------------

class TxSimTest : public ::testing::Test {
 protected:
  /// Builds a layout for the named NIC's format `index`.
  CompiledLayout tx_layout(const std::string& nic_name, std::size_t index) {
    TxSetup setup = formats_of(nic_name);
    std::vector<FieldSlice> slices;
    for (const EmitPiece& piece : setup.formats.at(index).pieces) {
      FieldSlice s;
      s.name = piece.field_name;
      s.semantic = piece.semantic;
      s.bit_width = piece.bit_width;
      s.fixed_value = piece.fixed_value;
      slices.push_back(std::move(s));
    }
    return pack_layout(nic_name, "fmt" + std::to_string(index), Endian::little,
                       std::move(slices));
  }

  /// Serializes a TX descriptor with the given semantic values.
  std::vector<std::uint8_t> make_desc(
      const CompiledLayout& layout,
      const std::map<SemanticId, std::uint64_t>& fields) {
    std::vector<std::uint64_t> values(layout.slices().size(), 0);
    for (std::size_t i = 0; i < layout.slices().size(); ++i) {
      const auto& slice = layout.slices()[i];
      if (slice.semantic && fields.contains(*slice.semantic)) {
        values[i] = fields.at(*slice.semantic);
      }
    }
    std::vector<std::uint8_t> desc(layout.total_bytes());
    layout.serialize(desc, values);
    return desc;
  }

  softnic::SemanticRegistry registry_;
  softnic::ComputeEngine engine_{registry_};
};

TEST_F(TxSimTest, ChecksumInsertionProducesValidFrames) {
  const CompiledLayout layout = tx_layout("e1000", 0);
  // RX side unused; reuse a dumb completion layout.
  sim::NicSimulator nic(layout, engine_, {});
  nic.configure_tx(layout);

  // A frame with a deliberately broken checksum.
  net::Packet pkt = net::PacketBuilder()
                        .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                             net::make_mac(2, 0, 0, 0, 0, 2))
                        .ipv4(net::ipv4_from_string("10.0.0.1"),
                              net::ipv4_from_string("10.0.0.2"))
                        .tcp(1234, 80)
                        .payload_text("hello world")
                        .corrupt_l4_checksum()
                        .build();

  const auto desc = make_desc(
      layout, {{SemanticId::tx_buf_len, pkt.size()},
               {SemanticId::tx_eop, 1},
               {SemanticId::tx_csum_en, 1}});
  nic.tx_post(desc, pkt.bytes());

  ASSERT_EQ(nic.transmitted().size(), 1u);
  const auto& wire = nic.transmitted()[0];
  const net::PacketView view = net::PacketView::parse(wire);
  EXPECT_EQ(net::l4_checksum_ipv4(view.ipv4().src, view.ipv4().dst,
                                  net::kIpProtoTcp, view.l4_bytes()),
            0);  // offload fixed the checksum
}

TEST_F(TxSimTest, VlanInsertionTagsFrame) {
  const CompiledLayout layout = tx_layout("e1000", 0);
  sim::NicSimulator nic(layout, engine_, {});
  nic.configure_tx(layout);

  const net::Packet pkt = net::PacketBuilder()
                              .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                                   net::make_mac(2, 0, 0, 0, 0, 2))
                              .ipv4(1, 2)
                              .udp(5, 6)
                              .build();
  const auto desc =
      make_desc(layout, {{SemanticId::tx_buf_len, pkt.size()},
                         {SemanticId::tx_vlan_insert, 1234}});
  nic.tx_post(desc, pkt.bytes());
  ASSERT_EQ(nic.transmitted().size(), 1u);
  const net::PacketView view = net::PacketView::parse(nic.transmitted()[0]);
  ASSERT_TRUE(view.has_vlan());
  EXPECT_EQ(view.vlan().tci, 1234);
  EXPECT_EQ(nic.transmitted()[0].size(), pkt.size() + 4);
}

TEST_F(TxSimTest, TsoSegmentsLargeFrames) {
  // qdma extended format carries TSO controls.
  const CompiledLayout layout = tx_layout("qdma", 1);
  sim::NicSimulator nic(layout, engine_, {});
  nic.configure_tx(layout);

  const std::string payload(1000, 'x');
  const net::Packet pkt = net::PacketBuilder()
                              .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                                   net::make_mac(2, 0, 0, 0, 0, 2))
                              .ipv4(net::ipv4_from_string("10.0.0.1"),
                                    net::ipv4_from_string("10.0.0.2"))
                              .tcp(1000, 80)
                              .payload_text(payload)
                              .build();
  const auto desc = make_desc(layout, {{SemanticId::tx_buf_len, pkt.size()},
                                       {SemanticId::tx_tso_en, 1},
                                       {SemanticId::tx_tso_mss, 300},
                                       {SemanticId::tx_csum_en, 1}});
  nic.tx_post(desc, pkt.bytes());

  // 1000 bytes at MSS 300 → 4 segments (300+300+300+100).
  ASSERT_EQ(nic.transmitted().size(), 4u);
  std::uint32_t expected_seq = 0;
  std::string reassembled;
  for (std::size_t i = 0; i < 4; ++i) {
    const net::PacketView view = net::PacketView::parse(nic.transmitted()[i]);
    const net::TcpHeader tcp = net::TcpHeader::parse(
        std::span<const std::uint8_t>(nic.transmitted()[i]).subspan(view.l4_offset()));
    if (i == 0) {
      expected_seq = tcp.seq;
    }
    EXPECT_EQ(tcp.seq, expected_seq);
    expected_seq += static_cast<std::uint32_t>(view.payload().size());
    // Every segment has valid IP and TCP checksums.
    EXPECT_TRUE(net::verify_checksum(view.l3_bytes()));
    EXPECT_EQ(net::l4_checksum_ipv4(view.ipv4().src, view.ipv4().dst,
                                    net::kIpProtoTcp, view.l4_bytes()),
              0);
    // FIN/PSH only on the last segment.
    if (i < 3) {
      EXPECT_EQ(tcp.flags & 0x09, 0);
    }
    reassembled.append(view.payload().begin(), view.payload().end());
  }
  EXPECT_EQ(reassembled, payload);
}

TEST_F(TxSimTest, TxPostWithoutConfigureRejected) {
  const CompiledLayout layout = tx_layout("e1000", 0);
  sim::NicSimulator nic(layout, engine_, {});
  std::vector<std::uint8_t> desc(16, 0);
  std::vector<std::uint8_t> frame(64, 0);
  EXPECT_THROW(nic.tx_post(desc, frame), opendesc::Error);
  nic.configure_tx(layout);
  std::vector<std::uint8_t> short_desc(4, 0);
  EXPECT_THROW(nic.tx_post(short_desc, frame), opendesc::Error);
}

TEST(TxDescFacade, CompileTxErrorsOnDevicesWithoutDescParser) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  Compiler compiler(registry, costs);
  // mlx5's catalog entry describes only the completion side.
  EXPECT_THROW((void)compiler.compile_tx(
                   nic::NicCatalog::by_name("mlx5").p4_source(),
                   R"(header i_t { @semantic("tx_buf_len") bit<16> l; })", {}),
               Error);
}

TEST(TxDescFacade, CompileTxProducesWritersAndReport) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  Compiler compiler(registry, costs);
  const auto tx = compiler.compile_tx(
      nic::NicCatalog::by_name("qdma").p4_source(),
      R"(header i_t {
          @semantic("tx_buf_addr") bit<64> a;
          @semantic("tx_buf_len")  bit<16> l;
          @semantic("tx_csum_en")  bit<1>  c;
      })",
      {});
  EXPECT_EQ(tx.layout.total_bytes(), 32u);
  EXPECT_NE(tx.c_header.find("_set_tx_csum_en"), std::string::npos);
  EXPECT_NE(tx.c_header.find("_desc_init"), std::string::npos);
  EXPECT_NE(tx.report.find("Chosen layout"), std::string::npos);
  EXPECT_EQ(tx.context_assignment.at("ctx.h2c_fmt"), 1u);
}

// ---------------------------------------------------------------------------
// net/offload unit tests
// ---------------------------------------------------------------------------

TEST(Offload, InsertVlanRejectsDoubleTagging) {
  const net::Packet pkt = net::PacketBuilder()
                              .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                                   net::make_mac(2, 0, 0, 0, 0, 2))
                              .vlan(5)
                              .ipv4(1, 2)
                              .udp(1, 2)
                              .build();
  EXPECT_THROW((void)net::insert_vlan(pkt.bytes(), 7), std::invalid_argument);
}

TEST(Offload, TsoPassthroughForSmallOrNonTcp) {
  const net::Packet udp = net::PacketBuilder()
                              .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                                   net::make_mac(2, 0, 0, 0, 0, 2))
                              .ipv4(1, 2)
                              .udp(1, 2)
                              .payload_text(std::string(500, 'y'))
                              .build();
  EXPECT_EQ(net::tso_segment(udp.bytes(), 100).size(), 1u);

  const net::Packet small = net::PacketBuilder()
                                .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                                     net::make_mac(2, 0, 0, 0, 0, 2))
                                .ipv4(1, 2)
                                .tcp(1, 2)
                                .payload_text("tiny")
                                .build();
  EXPECT_EQ(net::tso_segment(small.bytes(), 1000).size(), 1u);
}

TEST(Offload, PatchIpv4ChecksumFixesCorruption) {
  net::Packet pkt = net::PacketBuilder()
                        .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                             net::make_mac(2, 0, 0, 0, 0, 2))
                        .ipv4(1, 2)
                        .udp(1, 2)
                        .corrupt_ip_checksum()
                        .build();
  EXPECT_FALSE(
      net::verify_checksum(net::PacketView::parse(pkt.bytes()).l3_bytes()));
  net::patch_ipv4_checksum(pkt.bytes());
  EXPECT_TRUE(
      net::verify_checksum(net::PacketView::parse(pkt.bytes()).l3_bytes()));
}

}  // namespace
}  // namespace opendesc::core
