// Pretty-printer fixpoint over every shipped NIC description, plus
// error-taxonomy checks.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nic/model.hpp"
#include "p4/parser.hpp"
#include "p4/pretty.hpp"
#include "p4/typecheck.hpp"

namespace opendesc {
namespace {

class CatalogPretty : public ::testing::TestWithParam<std::string> {};

TEST_P(CatalogPretty, PrintParseFixpointOnRealDescriptions) {
  const nic::NicModel& model = nic::NicCatalog::by_name(GetParam());
  const p4::Program original = p4::parse_program(model.p4_source());
  const std::string once = p4::to_source(original);
  const p4::Program reparsed = p4::parse_program(once);
  const std::string twice = p4::to_source(reparsed);
  EXPECT_EQ(once, twice);
  // The reprinted program must still type-check and keep its declarations.
  EXPECT_NO_THROW((void)p4::check_program(reparsed));
  EXPECT_EQ(reparsed.decls().size(), original.decls().size());
}

std::vector<std::string> catalog_names() {
  std::vector<std::string> names;
  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    names.push_back(model.name());
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllModels, CatalogPretty,
                         ::testing::ValuesIn(catalog_names()),
                         [](const auto& info) { return info.param; });

TEST(PrettyExpr, OperatorsRoundTrip) {
  for (const char* source :
       {"a + b * c", "(a + b) * c", "a == 1 && b != 2", "!(x < 3)",
        "a | b & c ^ d", "x << 2 >> 1", "ctx.flags & 8w0x0F", "-y + ~z"}) {
    const p4::ExprPtr once = p4::parse_expression(source);
    const std::string printed = p4::to_source(*once);
    const p4::ExprPtr again = p4::parse_expression(printed);
    EXPECT_EQ(printed, p4::to_source(*again)) << source;
  }
}

TEST(ErrorTaxonomy, KindsRoundTripThroughMessages) {
  for (const ErrorKind kind :
       {ErrorKind::lex, ErrorKind::parse, ErrorKind::type, ErrorKind::semantic,
        ErrorKind::layout, ErrorKind::unsatisfiable, ErrorKind::verification,
        ErrorKind::simulation, ErrorKind::io, ErrorKind::internal}) {
    const Error error(kind, "details");
    EXPECT_EQ(error.kind(), kind);
    const std::string what = error.what();
    EXPECT_NE(what.find(to_string(kind)), std::string::npos);
    EXPECT_NE(what.find("details"), std::string::npos);
  }
}

TEST(ErrorTaxonomy, PipelineStagesThrowDistinctKinds) {
  EXPECT_THROW(
      try { (void)p4::parse_program("header $"); } catch (const Error& e) {
        EXPECT_EQ(e.kind(), ErrorKind::lex);
        throw;
      },
      Error);
  EXPECT_THROW(
      try { (void)p4::parse_program("header x {"); } catch (const Error& e) {
        EXPECT_EQ(e.kind(), ErrorKind::parse);
        throw;
      },
      Error);
  EXPECT_THROW(
      try {
        (void)p4::check_program(p4::parse_program("header h { ghost_t g; }"));
      } catch (const Error& e) {
        EXPECT_EQ(e.kind(), ErrorKind::type);
        throw;
      },
      Error);
}

}  // namespace
}  // namespace opendesc
