// Multi-queue engine suite: SPSC handoff, RSS steering determinism and
// device agreement, engine-vs-single-loop checksum equivalence at every
// queue count, and the 4-queue fault-injection goodput bar.  The TSan twin
// (engine_tsan_test) recompiles everything with -fsanitize=thread, so the
// threaded tests here are also the race detector's workload.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <thread>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "engine/spsc.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "runtime/guard.hpp"

namespace opendesc::engine {
namespace {

using softnic::SemanticId;

// --- SPSC handoff ring ------------------------------------------------------

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
  SpscQueue<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscQueueTest, FillDrainPreservesOrderAndBounds) {
  SpscQueue<int> ring(4);  // capacity 4
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(int(i)));
  }
  EXPECT_FALSE(ring.try_push(99));  // full: bounded, no overwrite
  EXPECT_EQ(ring.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto item = ring.try_pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscQueueTest, MoveOnlyPayloads) {
  SpscQueue<std::unique_ptr<int>> ring(8);
  ring.push(std::make_unique<int>(42));
  const auto item = ring.try_pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(**item, 42);
}

TEST(SpscQueueTest, CloseDrainsThenSignalsEndOfStream) {
  SpscQueue<int> ring(8);
  ring.push(1);
  ring.push(2);
  ring.close();
  EXPECT_EQ(ring.pop_wait(), std::optional<int>(1));
  EXPECT_EQ(ring.pop_wait(), std::optional<int>(2));
  EXPECT_FALSE(ring.pop_wait().has_value());  // drained + closed
  EXPECT_FALSE(ring.pop_wait().has_value());  // stays terminal
}

TEST(SpscQueueTest, ProducerConsumerTransfersEverythingInOrder) {
  // Small ring forces wraparound and producer backpressure; under the TSan
  // twin this is the handoff protocol's race test.
  constexpr std::uint64_t kItems = 50000;
  SpscQueue<std::uint64_t> ring(16);
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  std::uint64_t last = 0;
  std::thread consumer([&] {
    while (const auto item = ring.pop_wait()) {
      EXPECT_EQ(*item, last + 1);  // strict FIFO, nothing lost or duplicated
      last = *item;
      sum += *item;
      ++count;
    }
  });
  for (std::uint64_t i = 1; i <= kItems; ++i) {
    ring.push(std::uint64_t(i));
  }
  ring.close();
  consumer.join();
  EXPECT_EQ(count, kItems);
  EXPECT_EQ(sum, kItems * (kItems + 1) / 2);
}

// --- Shared fixture ---------------------------------------------------------

struct Fixture {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs{registry};
  core::Compiler compiler{registry, costs};
  softnic::ComputeEngine compute{registry};
  core::CompileResult result;

  // The wanted set is the intent's: rss/vlan/pkt_len — all derived from the
  // packet bytes alone, so their values (and the xor-fold over them) are
  // identical no matter which queue a packet lands on.  That property is
  // what the equivalence tests below rely on; queue-context semantics
  // (queue_id, seq_no) would legitimately differ across shardings.
  Fixture()
      : result(compiler.compile(
            nic::NicCatalog::by_name("ice").p4_source(),
            R"(header i_t {
                @semantic("rss")     bit<32> h;
                @semantic("vlan")    bit<16> v;
                @semantic("pkt_len") bit<16> l;
            })",
            {})) {}

  [[nodiscard]] std::vector<net::Packet> trace(std::size_t n,
                                               std::uint64_t seed = 42) const {
    net::WorkloadConfig config;
    config.seed = seed;
    config.vlan_probability = 0.4;
    config.udp_fraction = 0.5;
    config.ipv6_fraction = 0.25;
    config.min_frame = 96;  // IPv6 + VLAN headers don't fit in 64B runts
    net::WorkloadGenerator gen(config);
    return gen.batch(n);
  }
};

// --- RSS steering -----------------------------------------------------------

TEST(RssSteeringTest, DeterministicAcrossInstances) {
  Fixture fx;
  const std::vector<net::Packet> packets = fx.trace(2000);
  RssSteering a(SteeringConfig{4, 128, softnic::kDefaultRssKey});
  RssSteering b(SteeringConfig{4, 128, softnic::kDefaultRssKey});
  for (const net::Packet& pkt : packets) {
    EXPECT_EQ(a.queue_for(pkt.bytes()), b.queue_for(pkt.bytes()));
    EXPECT_EQ(a.hash(pkt.bytes()), b.hash(pkt.bytes()));
  }
}

TEST(RssSteeringTest, HashAgreesWithNicSideRssSemantic) {
  // The steering thread plays the device's classifier; its minimal header
  // walk must reproduce the rss_hash the completion deparser writes, bit
  // for bit, for every traffic mix the workload produces (v4/v6, tcp/udp,
  // tagged/untagged).
  Fixture fx;
  const std::vector<net::Packet> packets = fx.trace(2000);
  RssSteering steering(SteeringConfig{4, 128, softnic::kDefaultRssKey});
  for (const net::Packet& pkt : packets) {
    const net::PacketView view = net::PacketView::parse(pkt.bytes());
    const std::uint64_t nic_hash = fx.compute.compute(
        SemanticId::rss_hash, pkt.bytes(), view, softnic::RxContext{});
    EXPECT_EQ(steering.hash(pkt.bytes()), nic_hash);
  }
}

TEST(RssSteeringTest, FlowAffinityAndSpread) {
  // Same 5-tuple -> same queue, always; and 64 flows spread over all 4
  // queues (fixed seed, deterministic table).
  net::WorkloadConfig config;
  config.seed = 42;
  config.vlan_probability = 0.4;
  config.udp_fraction = 0.5;
  net::WorkloadGenerator gen(config);
  RssSteering steering(SteeringConfig{4, 128, softnic::kDefaultRssKey});

  std::map<std::size_t, std::uint16_t> flow_queue;
  std::array<std::uint64_t, 4> per_queue_packets{};
  for (std::size_t i = 0; i < 4000; ++i) {
    const net::Packet pkt = gen.next();
    const std::uint16_t queue = steering.queue_for(pkt.bytes());
    ASSERT_LT(queue, 4u);
    ++per_queue_packets[queue];
    const auto [it, inserted] = flow_queue.emplace(gen.last_flow_index(), queue);
    EXPECT_EQ(it->second, queue) << "flow " << gen.last_flow_index()
                                 << " split across queues";
  }
  EXPECT_EQ(flow_queue.size(), gen.flows().size());
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_GT(per_queue_packets[q], 0u) << "queue " << q << " starved";
  }
}

TEST(RssSteeringTest, NonIpAndTruncatedFramesGoToQueueZero) {
  RssSteering steering(SteeringConfig{4, 128, softnic::kDefaultRssKey});
  const std::vector<std::uint8_t> arp(64, 0);  // ethertype 0x0000
  EXPECT_EQ(steering.hash(arp), 0u);
  EXPECT_EQ(steering.queue_for(arp), steering.queue_for_hash(0));
  const std::vector<std::uint8_t> runt(10, 0xFF);
  EXPECT_EQ(steering.hash(runt), 0u);
}

// --- Engine equivalence (satellite 3) ---------------------------------------

TEST(EngineTest, ChecksumEquivalentToSingleLoopAtEveryQueueCount) {
  Fixture fx;
  const std::vector<net::Packet> packets = fx.trace(4000);

  // Ground truth: the PR-1 hardened loop, single queue, no engine.
  sim::NicSimulator nic(fx.result.layout, fx.compute, {});
  rt::OpenDescStrategy strategy(fx.result, fx.compute);
  rt::ValidatingRxLoop loop(fx.result.layout, fx.compute);
  std::size_t index = 0;
  // requested() returns the set by value: materialize before iterating.
  const std::set<SemanticId> requested = fx.result.intent.requested();
  const std::vector<SemanticId> wanted(requested.begin(), requested.end());
  const rt::RxLoopStats single = loop.run_stream(
      nic,
      [&]() -> std::optional<net::Packet> {
        if (index == packets.size()) {
          return std::nullopt;
        }
        return packets[index++];
      },
      strategy, wanted);
  ASSERT_EQ(single.packets, packets.size());

  for (const std::size_t queues : {1u, 2u, 4u}) {
    SCOPED_TRACE("queues=" + std::to_string(queues));
    EngineConfig config;
    config.queues = queues;
    MultiQueueEngine engine(fx.result, fx.compute, config);
    const EngineReport report = engine.run(packets);

    // Same trace, any sharding: exact same packet count and the exact same
    // xor-fold of delivered semantic values.
    EXPECT_EQ(report.total.packets, packets.size());
    EXPECT_EQ(report.offered_total, packets.size());
    EXPECT_EQ(report.total.value_checksum, single.value_checksum);
    EXPECT_EQ(report.total.hw_consumed, packets.size());
    EXPECT_EQ(report.total.quarantined, 0u);

    // Bookkeeping is consistent: per-queue rows sum to the totals, every
    // steered packet was consumed by its queue's worker, and the live
    // registry agrees with the final report.
    ASSERT_EQ(report.per_queue.size(), queues);
    std::uint64_t delivered = 0;
    for (std::size_t q = 0; q < queues; ++q) {
      EXPECT_EQ(report.per_queue[q].packets, report.offered[q]);
      delivered += report.per_queue[q].packets;
    }
    EXPECT_EQ(delivered, report.total.packets);
    EXPECT_EQ(std::accumulate(report.offered.begin(), report.offered.end(),
                              std::uint64_t{0}),
              report.offered_total);
    EXPECT_EQ(engine.stats().aggregate().value_checksum,
              report.total.value_checksum);
  }
}

TEST(EngineTest, RunsAreReproducible) {
  Fixture fx;
  const std::vector<net::Packet> packets = fx.trace(2000, 7);
  EngineConfig config;
  config.queues = 4;
  MultiQueueEngine engine(fx.result, fx.compute, config);
  const EngineReport a = engine.run(packets);
  const EngineReport b = engine.run(packets);  // fresh per-run device state
  EXPECT_EQ(a.total.packets, b.total.packets);
  EXPECT_EQ(a.total.value_checksum, b.total.value_checksum);
  EXPECT_EQ(a.offered, b.offered);
}

TEST(EngineTest, WorkloadOverloadMatchesMaterializedTrace) {
  Fixture fx;
  net::WorkloadConfig wconfig;
  wconfig.seed = 42;
  wconfig.vlan_probability = 0.4;
  wconfig.udp_fraction = 0.5;
  wconfig.ipv6_fraction = 0.25;
  wconfig.min_frame = 96;
  net::WorkloadGenerator gen(wconfig);

  EngineConfig config;
  config.queues = 2;
  MultiQueueEngine engine(fx.result, fx.compute, config);
  const EngineReport streamed = engine.run(gen, 2000);
  const EngineReport materialized = engine.run(fx.trace(2000));
  EXPECT_EQ(streamed.total.value_checksum, materialized.total.value_checksum);
  EXPECT_EQ(streamed.offered, materialized.offered);
}

TEST(EngineTest, QueueCountClampsToAtLeastOne) {
  Fixture fx;
  EngineConfig config;
  config.queues = 0;
  MultiQueueEngine engine(fx.result, fx.compute, config);
  EXPECT_EQ(engine.config().queues, 1u);
  const EngineReport report = engine.run(fx.trace(100));
  EXPECT_EQ(report.total.packets, 100u);
}

// The facade re-exports are the supported spelling for runtime users.
static_assert(std::is_same_v<rt::MultiQueueEngine, MultiQueueEngine>);
static_assert(std::is_same_v<rt::EngineConfig, EngineConfig>);
static_assert(std::is_same_v<rt::EngineReport, EngineReport>);

// --- Fault injection across queues (satellite 3) ----------------------------

TEST(EngineTest, CompositeFaultsAcrossFourQueuesPreserveGoodput) {
  Fixture fx;
  const std::vector<net::Packet> packets = fx.trace(6000);

  EngineConfig clean;
  clean.queues = 4;
  clean.guard = true;  // same wire layout as the faulted run
  MultiQueueEngine golden_engine(fx.result, fx.compute, clean);
  const EngineReport golden = golden_engine.run(packets);
  ASSERT_EQ(golden.total.packets, packets.size());
  ASSERT_EQ(golden.total.quarantined, 0u);

  EngineConfig faulty = clean;
  faulty.fault_rate = 0.01;
  faulty.fault_seed = 2026;
  MultiQueueEngine engine(fx.result, fx.compute, faulty);
  const EngineReport report = engine.run(packets);

  // 100% goodput: every offered packet's wanted semantics were delivered —
  // through the hardware path or the SoftNIC recovery path — on every queue.
  EXPECT_EQ(report.total.packets, report.offered_total);
  EXPECT_DOUBLE_EQ(report.total.delivery_ratio(report.offered_total), 1.0);
  EXPECT_EQ(report.total.hw_consumed + report.total.softnic_recovered,
            report.total.packets);
  EXPECT_EQ(report.total.value_checksum, golden.total.value_checksum);
  EXPECT_EQ(report.total.unrecoverable_values, 0u);
  EXPECT_GT(report.total.quarantined, 0u);
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_EQ(report.per_queue[q].packets, report.offered[q])
        << "queue " << q << " lost packets";
  }
  // Per-queue fault streams are decorrelated but each queue saw *some*
  // injected trouble at 1% over its share of the trace.
  EXPECT_GT(std::accumulate(report.quarantine_total.begin(),
                            report.quarantine_total.end(), std::uint64_t{0}),
            0u);

  // Determinism: (workload seed, fault seed, queue count) reproduces the
  // exact recovery counters.
  MultiQueueEngine repeat(fx.result, fx.compute, faulty);
  const EngineReport again = repeat.run(packets);
  EXPECT_EQ(again.total.value_checksum, report.total.value_checksum);
  EXPECT_EQ(again.total.quarantined, report.total.quarantined);
  EXPECT_EQ(again.total.softnic_recovered, report.total.softnic_recovered);
  EXPECT_EQ(again.total.lost_completions, report.total.lost_completions);
}

// --- Per-epoch accounting across a live layout swap -------------------------

TEST(EngineTest, EpochAccountingPartitionsStatsAcrossSwap) {
  Fixture fx;
  const std::vector<net::Packet> packets = fx.trace(6000);

  // Faults on: the partition must hold for the quarantine / dead-letter /
  // SoftNIC-recovery paths too, not just clean hardware consumption.
  EngineConfig config;
  config.queues = 2;
  config.guard = true;
  config.fault_rate = 0.01;
  config.fault_seed = 2026;
  MultiQueueEngine engine(fx.result, fx.compute, config);

  rt::SwapRequest request;
  request.result = std::make_shared<const core::CompileResult>(fx.result);
  request.at_offered = 3000;
  engine.request_swap(request);

  const EngineReport report = engine.run(packets);
  ASSERT_EQ(engine.epochs().swaps(rt::SwapOutcome::committed), 1u);
  ASSERT_EQ(engine.epochs().current_epoch(), 2u);
  EXPECT_EQ(report.total.packets, report.offered_total);  // zero-loss cutover
  EXPECT_GT(report.total.quarantined, 0u);

  // RxLoopStats partition exactly by epoch: sums (and the xor-fold
  // checksum) over the two generations reproduce the run totals, and both
  // epochs actually processed traffic.
  rt::RxLoopStats summed;
  for (const rt::EpochAccounting& acct : engine.epochs().accounting()) {
    EXPECT_GT(acct.stats.packets, 0u) << "epoch " << acct.epoch << " idle";
    summed += acct.stats;
  }
  EXPECT_EQ(summed.packets, report.total.packets);
  EXPECT_EQ(summed.hw_consumed, report.total.hw_consumed);
  EXPECT_EQ(summed.softnic_recovered, report.total.softnic_recovered);
  EXPECT_EQ(summed.quarantined, report.total.quarantined);
  EXPECT_EQ(summed.lost_completions, report.total.lost_completions);
  EXPECT_EQ(summed.value_checksum, report.total.value_checksum);

  // The live StatsRegistry agrees with the partitioned totals.
  EXPECT_EQ(engine.stats().aggregate().packets, summed.packets);
  EXPECT_EQ(engine.stats().aggregate().value_checksum, summed.value_checksum);

  // SemanticPathCounters partition the same way: per semantic, the
  // nic_path/softnic_shim/unavailable splits summed over epochs equal the
  // run's split — every read attributed to exactly one epoch.
  rt::SemanticPathCounters epoch_paths;
  for (const rt::EpochAccounting& acct : engine.epochs().accounting()) {
    epoch_paths += acct.semantic_paths;
  }
  const auto expected = report.semantic_paths.snapshot();
  const auto partitioned = epoch_paths.snapshot();
  ASSERT_EQ(expected.size(), partitioned.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, partitioned[i].first);
    EXPECT_EQ(expected[i].second.nic_path, partitioned[i].second.nic_path);
    EXPECT_EQ(expected[i].second.softnic_shim,
              partitioned[i].second.softnic_shim);
    EXPECT_EQ(expected[i].second.unavailable,
              partitioned[i].second.unavailable);
  }
  // And per semantic the split still reconciles with delivered packets.
  for (const auto& [raw, counts] : partitioned) {
    EXPECT_EQ(counts.total(), report.total.packets)
        << "semantic " << raw << " over- or under-attributed";
  }
}

TEST(EngineTest, SwappedRunMatchesUnswappedChecksum) {
  // The swap machinery must be value-invisible: same trace, same wanted
  // semantics, so the delivered value fold is identical whether the run cut
  // over mid-stream or never swapped at all.
  Fixture fx;
  const std::vector<net::Packet> packets = fx.trace(3000);

  EngineConfig config;
  config.queues = 4;
  MultiQueueEngine golden(fx.result, fx.compute, config);
  const EngineReport unswapped = golden.run(packets);

  MultiQueueEngine engine(fx.result, fx.compute, config);
  rt::SwapRequest request;
  request.result = std::make_shared<const core::CompileResult>(fx.result);
  request.at_offered = 1500;
  engine.request_swap(request);
  const EngineReport swapped = engine.run(packets);

  EXPECT_EQ(engine.epochs().swaps(rt::SwapOutcome::committed), 1u);
  EXPECT_EQ(swapped.total.packets, unswapped.total.packets);
  EXPECT_EQ(swapped.total.value_checksum, unswapped.total.value_checksum);
}

}  // namespace
}  // namespace opendesc::engine
