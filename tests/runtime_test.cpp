// Host runtime tests: offset accessors, the metadata facade, the baseline
// strategies, and the rx loop — all strategies must agree on the metadata
// values they deliver.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "nic/model.hpp"
#include "runtime/rxloop.hpp"

namespace opendesc::rt {
namespace {

using softnic::SemanticId;

class RuntimeTest : public ::testing::Test {
 protected:
  core::CompileResult compile(const std::string& nic, const std::string& intent) {
    const nic::NicModel& model = nic::NicCatalog::by_name(nic);
    return compiler_.compile(model.p4_source(), intent, {});
  }

  softnic::SemanticRegistry registry_;
  softnic::CostTable costs_{registry_};
  core::Compiler compiler_{registry_, costs_};
  softnic::ComputeEngine engine_{registry_};
};

constexpr const char* kIntent = R"P4(
header i_t {
    @semantic("rss")     bit<32> h;
    @semantic("pkt_len") bit<16> l;
    @semantic("vlan")    bit<16> v;
}
)P4";

TEST_F(RuntimeTest, AccessorReadsMatchLayoutReads) {
  const auto result = compile("mlx5", kIntent);
  const OffsetAccessor accessor(result.layout, registry_);
  EXPECT_EQ(accessor.record_size(), result.layout.total_bytes());

  std::vector<std::uint64_t> values(result.layout.slices().size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0x0101010101010101ULL * (i + 1);
  }
  std::vector<std::uint8_t> record(result.layout.total_bytes());
  result.layout.serialize(record, values);

  for (const core::FieldSlice& slice : result.layout.slices()) {
    if (!slice.semantic) {
      continue;
    }
    EXPECT_TRUE(accessor.provides(*slice.semantic));
    EXPECT_EQ(accessor.read(record.data(), *slice.semantic),
              result.layout.read(record, *slice.semantic));
  }
  EXPECT_FALSE(accessor.provides(SemanticId::kv_key_hash));
  EXPECT_THROW((void)accessor.read(record.data(), SemanticId::kv_key_hash), Error);
}

TEST_F(RuntimeTest, CheckedReadRefusesTruncatedRecords) {
  const auto result = compile("e1000e", kIntent);
  const OffsetAccessor accessor(result.layout, registry_);
  std::vector<std::uint8_t> record(result.layout.total_bytes(), 0);
  EXPECT_TRUE(accessor
                  .read_provided(std::span<const std::uint8_t>(record),
                                 SemanticId::pkt_len)
                  .from_hardware());
  // Truncate below the pkt_len slice end: checked read must refuse, and
  // the provenance says exactly why.
  const std::span<const std::uint8_t> truncated(record.data(), 2);
  const auto short_read = accessor.read_provided(truncated, SemanticId::pkt_len);
  EXPECT_FALSE(short_read.has_value());
  EXPECT_EQ(short_read.miss_reason(), MissReason::record_truncated);
  EXPECT_EQ(accessor.read_provided(truncated, SemanticId::kv_key_hash)
                .miss_reason(),
            MissReason::not_in_layout);
}

TEST_F(RuntimeTest, FacadeServesHardwareAndSoftwarePaths) {
  // e1000e with rss+pkt_len+vlan: chosen path provides pkt_len+vlan and one
  // of rss/csum; rss comes from hardware on the rss path.
  const auto result = compile("e1000e", kIntent);
  MetadataFacade facade(result, engine_);

  net::WorkloadConfig config;
  config.vlan_probability = 1.0;
  net::WorkloadGenerator gen(config);
  sim::NicSimulator nic(result.layout, engine_, {});
  const net::Packet pkt = gen.next();
  ASSERT_TRUE(nic.rx(pkt));
  std::vector<sim::RxEvent> events(1);
  ASSERT_EQ(nic.poll(events), 1u);
  const PacketContext ctx(events[0]);

  const net::PacketView view = net::PacketView::parse(pkt.bytes());
  softnic::RxContext hw_ctx;
  hw_ctx.rx_timestamp_ns = pkt.rx_timestamp_ns;

  const auto pkt_len = facade.fetch(ctx, SemanticId::pkt_len);
  EXPECT_EQ(pkt_len.value(), pkt.size());
  EXPECT_TRUE(pkt_len.from_hardware());
  EXPECT_EQ(facade.fetch(ctx, SemanticId::vlan_tci).value(),
            engine_.compute(SemanticId::vlan_tci, pkt.bytes(), view, hw_ctx));
  EXPECT_EQ(facade.fetch(ctx, SemanticId::rss_hash).value(),
            engine_.compute(SemanticId::rss_hash, pkt.bytes(), view, hw_ctx));

  // ip_checksum is not provided on the rss path → software fallback, and
  // the provenance says so.
  const auto csum = facade.fetch(ctx, SemanticId::ip_checksum);
  EXPECT_EQ(csum.value(),
            engine_.compute(SemanticId::ip_checksum, pkt.bytes(), view, hw_ctx));
  EXPECT_EQ(csum.provenance(), Provenance::softnic_shim);
  EXPECT_EQ(csum.miss_reason(), MissReason::not_in_layout);
  const PathCounts paths = facade.path_counters().total();
  EXPECT_EQ(paths.nic_path, 3u);
  EXPECT_EQ(paths.softnic_shim, 1u);
}

TEST_F(RuntimeTest, AllStrategiesAgreeOnValues) {
  // The crucial equivalence: whichever datapath style is used, the
  // application observes identical metadata for identical packets.
  const auto result = compile("mlx5", kIntent);
  const std::vector<SemanticId> wanted = {
      SemanticId::rss_hash, SemanticId::pkt_len, SemanticId::vlan_tci};

  net::WorkloadConfig config;
  config.seed = 5;
  config.vlan_probability = 0.5;

  const auto run = [&](RxStrategy& strategy) {
    net::WorkloadGenerator gen(config);  // same trace every time
    sim::NicSimulator nic(result.layout, engine_, {});
    RxLoopConfig loop;
    loop.packet_count = 500;
    net::WorkloadGenerator fresh(config);
    return run_rx_loop(nic, fresh, strategy, wanted, loop);
  };

  SkbuffStrategy skbuff(result.layout, engine_);
  MbufStrategy mbuf(result.layout, engine_);
  RawStrategy raw(engine_);
  OpenDescStrategy opendesc(result, engine_);

  const RxLoopStats s1 = run(skbuff);
  const RxLoopStats s2 = run(mbuf);
  const RxLoopStats s3 = run(raw);
  const RxLoopStats s4 = run(opendesc);

  EXPECT_EQ(s1.packets, 500u);
  EXPECT_EQ(s1.value_checksum, s2.value_checksum);
  EXPECT_EQ(s1.value_checksum, s3.value_checksum);
  EXPECT_EQ(s1.value_checksum, s4.value_checksum);
  EXPECT_EQ(s1.drops, 0u);
}

TEST_F(RuntimeTest, OpenDescDoesNoFallbacksWhenPathCoversIntent) {
  const auto result = compile("qdma", kIntent);  // 16B path provides all 3
  OpenDescStrategy strategy(result, engine_);
  net::WorkloadConfig config;
  net::WorkloadGenerator gen(config);
  sim::NicSimulator nic(result.layout, engine_, {});
  const std::vector<SemanticId> wanted = {
      SemanticId::rss_hash, SemanticId::pkt_len, SemanticId::vlan_tci};
  RxLoopConfig loop;
  loop.packet_count = 100;
  const RxLoopStats stats = run_rx_loop(nic, gen, strategy, wanted, loop);
  EXPECT_EQ(stats.packets, 100u);
  EXPECT_EQ(strategy.facade().path_counters().total().softnic_shim, 0u);
}

TEST_F(RuntimeTest, RawStrategyComputesEverythingInSoftware) {
  const auto result = compile("dumbnic", "header i_t { @semantic(\"pkt_len\") bit<16> l; }");
  RawStrategy strategy(engine_);
  net::WorkloadConfig config;
  net::WorkloadGenerator gen(config);
  sim::NicSimulator nic(result.layout, engine_, {});
  const std::vector<SemanticId> wanted = {SemanticId::rss_hash,
                                          SemanticId::pkt_len};
  RxLoopConfig loop;
  loop.packet_count = 50;
  const RxLoopStats stats = run_rx_loop(nic, gen, strategy, wanted, loop);
  EXPECT_EQ(stats.packets, 50u);
  EXPECT_NE(stats.value_checksum, 0u);
}

TEST_F(RuntimeTest, MbufFillSetsFlagsOnlyForProvidedFields) {
  const auto result = compile("e1000e", kIntent);  // rss path
  MbufStrategy strategy(result.layout, engine_);
  net::WorkloadConfig config;
  net::WorkloadGenerator gen(config);
  sim::NicSimulator nic(result.layout, engine_, {});
  ASSERT_TRUE(nic.rx(gen.next()));
  std::vector<sim::RxEvent> events(1);
  ASSERT_EQ(nic.poll(events), 1u);
  const MbufStrategy::Mbuf mbuf = strategy.fill(PacketContext(events[0]));
  EXPECT_TRUE(mbuf.ol_flags & (1u << 0));   // rss provided
  EXPECT_TRUE(mbuf.ol_flags & (1u << 1));   // vlan provided
  EXPECT_FALSE(mbuf.ol_flags & (1u << 3));  // mark not provided
  EXPECT_EQ(mbuf.pkt_len, events[0].frame.size());
}

TEST_F(RuntimeTest, SkbuffFillPopulatesEverything) {
  const auto result = compile("mlx5", kIntent);
  SkbuffStrategy strategy(result.layout, engine_);
  net::WorkloadConfig config;
  config.vlan_probability = 1.0;
  net::WorkloadGenerator gen(config);
  sim::NicSimulator nic(result.layout, engine_, {});
  const net::Packet pkt = gen.next();
  ASSERT_TRUE(nic.rx(pkt));
  std::vector<sim::RxEvent> events(1);
  ASSERT_EQ(nic.poll(events), 1u);
  const SkbuffStrategy::Meta meta = strategy.fill(PacketContext(events[0]));
  EXPECT_EQ(meta.len, pkt.size());
  EXPECT_TRUE(meta.vlan_present);
  EXPECT_NE(meta.hash, 0u);
  EXPECT_TRUE(meta.ip_csum_ok);
  EXPECT_TRUE(meta.l4_csum_ok);
  EXPECT_NE(meta.packet_type, 0u);
}

}  // namespace
}  // namespace opendesc::rt
