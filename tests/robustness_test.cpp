// Robustness: the frontend must never crash on malformed input (only throw
// typed errors), and the simulator must not leak ring/buffer resources
// under arbitrary schedules.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "p4/parser.hpp"
#include "p4/typecheck.hpp"
#include "sim/nicsim.hpp"

namespace opendesc {
namespace {

// ---------------------------------------------------------------------------
// Frontend crash-safety: random byte soup and random mutations of valid
// sources must either parse or raise Error — never crash or hang.
// ---------------------------------------------------------------------------

class FrontendFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FrontendFuzz, RandomBytesNeverCrashTheFrontend) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 1);
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789_{}()<>;:=+-*/%&|^~!@\"., \n\t";
  for (int round = 0; round < 200; ++round) {
    std::string source;
    const std::size_t length = rng.bounded(200);
    for (std::size_t i = 0; i < length; ++i) {
      source.push_back(alphabet[rng.bounded(sizeof(alphabet) - 1)]);
    }
    try {
      const p4::Program program = p4::parse_program(source);
      (void)p4::check_program(program);
    } catch (const Error&) {
      // expected for almost every input
    }
  }
}

TEST_P(FrontendFuzz, MutatedCatalogSourcesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7331 + 5);
  const std::string base = nic::NicCatalog::by_name("mlx5").p4_source();
  for (int round = 0; round < 100; ++round) {
    std::string source = base;
    // Apply 1-5 random single-character mutations.
    const std::size_t mutations = 1 + rng.bounded(5);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.bounded(source.size());
      switch (rng.bounded(3)) {
        case 0: source[pos] = static_cast<char>(32 + rng.bounded(95)); break;
        case 1: source.erase(pos, 1); break;
        default: source.insert(pos, 1, static_cast<char>(32 + rng.bounded(95)));
      }
    }
    try {
      softnic::SemanticRegistry registry;
      softnic::CostTable costs(registry);
      core::Compiler compiler(registry, costs);
      (void)compiler.compile(
          source, R"(header i_t { @semantic("pkt_len") bit<16> l; })", {});
    } catch (const Error&) {
      // fine: typed rejection
    } catch (const std::exception&) {
      // also acceptable (e.g. std::invalid_argument from helpers)
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontendFuzz, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// Simulator soak: arbitrary rx/poll/advance interleavings never leak
// buffers, never corrupt counts, and fully drain.
// ---------------------------------------------------------------------------

TEST(SimSoak, RandomScheduleConservesResources) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("e1000e").p4_source(),
      R"(header i_t { @semantic("rss") bit<32> h; })", {});
  softnic::ComputeEngine engine(registry);

  sim::SimConfig config;
  config.cmpt_ring_entries = 32;
  config.rx_buffer_count = 48;
  sim::NicSimulator nic(result.layout, engine, {}, config);

  net::WorkloadConfig wl;
  wl.seed = 77;
  net::WorkloadGenerator gen(wl);
  Rng rng(4242);

  std::uint64_t accepted = 0, consumed = 0;
  std::vector<sim::RxEvent> events(32);
  for (int op = 0; op < 20000; ++op) {
    if (rng.chance(0.6)) {
      if (nic.rx(gen.next())) {
        ++accepted;
      }
    } else {
      const std::size_t polled = nic.poll(events);
      const std::size_t take = polled == 0 ? 0 : rng.bounded(polled + 1);
      // Touch the records before advancing (use-after-advance would show
      // up as wrong values in ASAN-less builds too via the checksum).
      for (std::size_t i = 0; i < take; ++i) {
        ASSERT_EQ(events[i].record.size(), result.layout.total_bytes());
        ASSERT_GE(events[i].frame.size(), 60u);
      }
      nic.advance(take);
      consumed += take;
    }
    ASSERT_EQ(nic.pending(), accepted - consumed);
    ASSERT_LE(nic.pending(), config.cmpt_ring_entries);
  }

  // Drain completely: everything accepted is eventually consumable.
  while (nic.pending() > 0) {
    const std::size_t n = nic.poll(events);
    ASSERT_GT(n, 0u);
    nic.advance(n);
    consumed += n;
  }
  EXPECT_EQ(consumed, accepted);
  // After draining, the device accepts traffic again (buffers recycled).
  EXPECT_TRUE(nic.rx(gen.next()));
}

// ---------------------------------------------------------------------------
// TX descriptor fuzz: truncated and bit-mutated descriptors posted to the
// device must either execute or raise a typed Error — never crash, hang, or
// corrupt later posts.
// ---------------------------------------------------------------------------

class TxDescFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TxDescFuzz, TruncatedAndMutatedDescriptorsOnlyRaiseTypedErrors) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto rx = compiler.compile(
      nic::NicCatalog::by_name("qdma").p4_source(),
      R"(header i_t { @semantic("pkt_len") bit<16> l; })", {});
  const auto tx = compiler.compile_tx(
      nic::NicCatalog::by_name("qdma").p4_source(),
      R"(header t_t {
          @semantic("tx_buf_len")     bit<16> l;
          @semantic("tx_csum_en")     bit<1>  c;
          @semantic("tx_tso_en")      bit<1>  t;
          @semantic("tx_vlan_insert") bit<16> v;
      })",
      {});
  softnic::ComputeEngine engine(registry);
  sim::NicSimulator nic(rx.layout, engine, {});
  nic.configure_tx(tx.layout);

  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6007 + 13);
  net::WorkloadConfig wl;
  wl.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  net::WorkloadGenerator gen(wl);

  // A well-formed reference descriptor to mutate.
  std::vector<std::uint64_t> values(tx.layout.slices().size(), 0);
  for (std::size_t i = 0; i < tx.layout.slices().size(); ++i) {
    if (tx.layout.slices()[i].semantic == softnic::SemanticId::tx_buf_len) {
      values[i] = 128;
    }
  }
  std::vector<std::uint8_t> reference(tx.layout.total_bytes());
  tx.layout.serialize(reference, values);

  for (int round = 0; round < 2000; ++round) {
    const net::Packet pkt = gen.next();
    std::vector<std::uint8_t> desc = reference;
    switch (rng.bounded(3)) {
      case 0:  // truncate to a random (possibly zero) length
        desc.resize(rng.bounded(desc.size() + 1));
        break;
      case 1: {  // flip 1-16 random bits anywhere in the descriptor
        const std::size_t flips = 1 + rng.bounded(16);
        for (std::size_t f = 0; f < flips; ++f) {
          const std::size_t bit = rng.bounded(desc.size() * 8);
          desc[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
        break;
      }
      default:  // replace with random byte soup of the right length
        for (std::uint8_t& byte : desc) {
          byte = static_cast<std::uint8_t>(rng.bounded(256));
        }
    }
    try {
      nic.tx_post(desc, pkt.bytes());
    } catch (const Error&) {
      // the only acceptable escape
    }
  }

  // The device is still healthy after the fuzz barrage: a well-formed
  // descriptor executes.
  const net::Packet pkt = gen.next();
  nic.clear_transmitted();
  nic.tx_post(reference, pkt.bytes());
  EXPECT_EQ(nic.transmitted().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxDescFuzz, ::testing::Range(0, 4));

TEST(SimSoak, PerCauseDropCountersSumToTotal) {
  // Tiny ring + tiny pool: force both ring-full and pool-exhausted drops
  // plus an oversize drop, and check the per-cause split covers the total.
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("dumbnic").p4_source(),
      R"(header i_t { @semantic("pkt_len") bit<16> l; })", {});
  softnic::ComputeEngine engine(registry);

  sim::SimConfig config;
  config.cmpt_ring_entries = 8;
  config.rx_buffer_count = 4;  // pool exhausts before the ring fills
  sim::NicSimulator nic(result.layout, engine, {}, config);

  net::WorkloadConfig wl;
  wl.seed = 11;
  net::WorkloadGenerator gen(wl);
  for (int i = 0; i < 16; ++i) {
    (void)nic.rx(gen.next());
  }
  net::Packet oversize;
  oversize.data.assign(config.rx_buffer_size + 1, 0xab);
  EXPECT_FALSE(nic.rx(oversize));

  const sim::DmaAccounting& dma = nic.dma();
  EXPECT_EQ(dma.drops_pool_exhausted, 12u);
  EXPECT_EQ(dma.drops_oversize, 1u);
  EXPECT_EQ(dma.drops,
            dma.drops_ring_full + dma.drops_pool_exhausted + dma.drops_oversize);
}

TEST(SimSoak, DropsAreDeterministicForSameSchedule) {
  const auto run = [] {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    const auto result = compiler.compile(
        nic::NicCatalog::by_name("dumbnic").p4_source(),
        R"(header i_t { @semantic("pkt_len") bit<16> l; })", {});
    softnic::ComputeEngine engine(registry);
    sim::SimConfig config;
    config.cmpt_ring_entries = 8;
    sim::NicSimulator nic(result.layout, engine, {}, config);
    net::WorkloadConfig wl;
    wl.seed = 5;
    net::WorkloadGenerator gen(wl);
    Rng rng(99);
    std::vector<sim::RxEvent> events(8);
    for (int op = 0; op < 2000; ++op) {
      if (rng.chance(0.7)) {
        (void)nic.rx(gen.next());
      } else {
        nic.advance(nic.poll(events));
      }
    }
    return nic.dma().drops;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace opendesc
