// Batched accessor codegen: the generated _x4/_x4s readers must behave
// identically to four scalar reads — verified both textually and by
// compiling the generated header with the system C compiler.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/codegen.hpp"
#include "core/layout.hpp"

namespace opendesc::core {
namespace {

using softnic::SemanticId;

CompiledLayout sample_layout(Endian endian) {
  FieldSlice len, ok, pad, hash;
  len.name = "len";
  len.semantic = SemanticId::pkt_len;
  len.bit_width = 16;
  ok.name = "ok";
  ok.semantic = SemanticId::ip_csum_ok;
  ok.bit_width = 1;
  pad.name = "pad";
  pad.bit_width = 7;
  hash.name = "hash";
  hash.semantic = SemanticId::rss_hash;
  hash.bit_width = 32;
  return pack_layout("batchnic", "p0", endian, {len, ok, pad, hash});
}

TEST(BatchCodegen, HeaderShape) {
  softnic::SemanticRegistry registry;
  CodegenOptions options;
  options.prefix = "odx_b";
  const std::string header =
      generate_c_batch_header(sample_layout(Endian::little), registry, options);
  EXPECT_NE(header.find("odx_b_pkt_len_x4("), std::string::npos);
  EXPECT_NE(header.find("odx_b_pkt_len_x4s("), std::string::npos);
  EXPECT_NE(header.find("odx_b_rss_x4("), std::string::npos);
  EXPECT_NE(header.find("uint64_t out[4]"), std::string::npos);
  EXPECT_NE(header.find("#define ODX_B_CMPT_SIZE 7u"), std::string::npos);
}

class BatchCompiled : public ::testing::TestWithParam<Endian> {};

TEST_P(BatchCompiled, BatchedReadsEqualScalarReads) {
  const Endian endian = GetParam();
  softnic::SemanticRegistry registry;
  const CompiledLayout layout = sample_layout(endian);

  // Four records with distinct values, contiguous (for the strided call).
  const std::size_t stride = layout.total_bytes();
  std::vector<std::uint8_t> records(4 * stride);
  std::vector<std::array<std::uint64_t, 4>> expected(layout.slices().size());
  for (std::size_t r = 0; r < 4; ++r) {
    std::vector<std::uint64_t> values(layout.slices().size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] =
          (0x1111111111111111ULL * (r + 1) + i) & low_mask(layout.slices()[i].bit_width);
      expected[i][r] = values[i];
    }
    layout.serialize(
        std::span<std::uint8_t>(records).subspan(r * stride, stride), values);
  }

  const std::string dir = ::testing::TempDir();
  const std::string tag = endian == Endian::little ? "le" : "be";
  CodegenOptions options;
  options.prefix = "odx_b";
  std::ofstream(dir + "/odx_batch_" + tag + ".h")
      << generate_c_batch_header(layout, registry, options);

  std::ostringstream main_src;
  main_src << "#include <stdio.h>\n#include \"odx_batch_" << tag << ".h\"\n"
           << "static const uint8_t recs[] = {";
  for (std::size_t i = 0; i < records.size(); ++i) {
    main_src << (i ? "," : "") << static_cast<unsigned>(records[i]);
  }
  main_src << "};\nint main(void) {\n  uint64_t out[4];\n";
  const char* symbols[] = {"pkt_len", "ip_csum_ok", "pad", "rss"};
  for (const char* symbol : symbols) {
    main_src << "  odx_b_" << symbol << "_x4s(recs, " << stride << ", out);\n"
             << "  printf(\"%llu %llu %llu %llu\\n\", (unsigned long long)out[0],"
             << " (unsigned long long)out[1], (unsigned long long)out[2],"
             << " (unsigned long long)out[3]);\n";
  }
  main_src << "  return 0;\n}\n";
  std::ofstream(dir + "/odx_batch_main_" + tag + ".c") << main_src.str();

  const std::string bin = dir + "/odx_batch_test_" + tag;
  const std::string compile = "cc -std=c11 -Wall -Werror -O2 -o " + bin + " " +
                              dir + "/odx_batch_main_" + tag + ".c 2>/dev/null";
  if (std::system(compile.c_str()) != 0) {
    GTEST_SKIP() << "no working C compiler available";
  }
  FILE* out = popen(bin.c_str(), "r");
  ASSERT_NE(out, nullptr);
  for (std::size_t slice = 0; slice < layout.slices().size(); ++slice) {
    unsigned long long got[4];
    ASSERT_EQ(fscanf(out, "%llu %llu %llu %llu", &got[0], &got[1], &got[2],
                     &got[3]),
              4);
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(got[r], expected[slice][r]) << "slice " << slice << " rec " << r;
    }
  }
  pclose(out);
}

INSTANTIATE_TEST_SUITE_P(BothEndians, BatchCompiled,
                         ::testing::Values(Endian::little, Endian::big));

}  // namespace
}  // namespace opendesc::core
