// CompiledLayout packing, serialization round-trips, verifier, and intent
// parsing tests.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/intent.hpp"
#include "core/layout.hpp"
#include "core/verifier.hpp"

namespace opendesc::core {
namespace {

using softnic::SemanticId;

FieldSlice slice(std::string name, std::optional<SemanticId> semantic,
                 std::size_t width,
                 std::optional<std::uint64_t> fixed = std::nullopt) {
  FieldSlice s;
  s.name = std::move(name);
  s.semantic = semantic;
  s.bit_width = width;
  s.fixed_value = fixed;
  return s;
}

TEST(Layout, PackAssignsSequentialOffsets) {
  const CompiledLayout layout = pack_layout(
      "test", "p0", Endian::little,
      {slice("len", SemanticId::pkt_len, 16), slice("flags", std::nullopt, 3),
       slice("ok", SemanticId::ip_csum_ok, 1), slice("pad", std::nullopt, 4),
       slice("hash", SemanticId::rss_hash, 32)});
  ASSERT_EQ(layout.slices().size(), 5u);
  EXPECT_EQ(layout.slices()[0].bit_start, 0u);
  EXPECT_EQ(layout.slices()[1].bit_start, 16u);
  EXPECT_EQ(layout.slices()[2].bit_start, 19u);
  EXPECT_EQ(layout.slices()[3].bit_start, 20u);
  EXPECT_EQ(layout.slices()[4].bit_start, 24u);
  EXPECT_EQ(layout.total_bits(), 56u);
  EXPECT_EQ(layout.total_bytes(), 7u);
  EXPECT_NE(layout.find(SemanticId::rss_hash), nullptr);
  EXPECT_EQ(layout.find(SemanticId::timestamp), nullptr);
}

TEST(Layout, SerializeReadRoundTripBothEndians) {
  for (const Endian endian : {Endian::little, Endian::big}) {
    const CompiledLayout layout = pack_layout(
        "test", "p0", endian,
        {slice("a", SemanticId::pkt_len, 16), slice("b", SemanticId::rss_hash, 32),
         slice("c", SemanticId::ip_csum_ok, 1), slice("pad", std::nullopt, 7),
         slice("t", SemanticId::timestamp, 64)});
    std::vector<std::uint8_t> record(layout.total_bytes());
    const std::vector<std::uint64_t> values = {1500, 0xdeadbeef, 1, 0,
                                               0x0123456789abcdefULL};
    layout.serialize(record, values);
    EXPECT_EQ(layout.read(record, SemanticId::pkt_len), 1500u);
    EXPECT_EQ(layout.read(record, SemanticId::rss_hash), 0xdeadbeefu);
    EXPECT_EQ(layout.read(record, SemanticId::ip_csum_ok), 1u);
    EXPECT_EQ(layout.read(record, SemanticId::timestamp), 0x0123456789abcdefULL);
  }
}

TEST(Layout, FixedValuesWinOverSuppliedValues) {
  const CompiledLayout layout = pack_layout(
      "test", "p0", Endian::little,
      {slice("status", std::nullopt, 8, 0x81), slice("len", SemanticId::pkt_len, 16)});
  std::vector<std::uint8_t> record(layout.total_bytes());
  layout.serialize(record, std::vector<std::uint64_t>{0, 64});
  EXPECT_EQ(record[0], 0x81);
  EXPECT_EQ(layout.read_slice(record, 0), 0x81u);
}

TEST(Layout, SerializeValidatesArguments) {
  const CompiledLayout layout = pack_layout(
      "test", "p0", Endian::little, {slice("len", SemanticId::pkt_len, 16)});
  std::vector<std::uint8_t> small(1);
  const std::vector<std::uint64_t> values = {1};
  EXPECT_THROW(layout.serialize(small, values), Error);
  std::vector<std::uint8_t> record(2);
  EXPECT_THROW(layout.serialize(record, std::vector<std::uint64_t>{}), Error);
  EXPECT_THROW((void)layout.read(record, SemanticId::rss_hash), Error);
}

TEST(Layout, UnalignedWideFieldRejected) {
  EXPECT_THROW((void)pack_layout("t", "p", Endian::little,
                                 {slice("misalign", std::nullopt, 4),
                                  slice("wide", SemanticId::timestamp, 64)}),
               Error);
  // Byte-aligning it (4 + 4 pad) fixes the problem.
  EXPECT_NO_THROW((void)pack_layout("t", "p", Endian::little,
                                    {slice("misalign", std::nullopt, 4),
                                     slice("pad", std::nullopt, 4),
                                     slice("wide", SemanticId::timestamp, 64)}));
}

TEST(Layout, RandomLayoutsRoundTripAllSlices) {
  Rng rng(2024);
  softnic::SemanticRegistry registry;
  for (int round = 0; round < 100; ++round) {
    std::vector<FieldSlice> pieces;
    const std::size_t n = 1 + rng.bounded(12);
    std::size_t bit_pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t width = 1 + rng.bounded(32);
      if ((bit_pos % 8) + width > 64) {
        width = 8 - (bit_pos % 8);  // keep within the window
      }
      pieces.push_back(slice("f" + std::to_string(i), std::nullopt, width));
      bit_pos += width;
    }
    const Endian endian = rng.chance(0.5) ? Endian::little : Endian::big;
    const CompiledLayout layout = pack_layout("rand", "p", endian, pieces);

    std::vector<std::uint64_t> values(layout.slices().size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = rng.next() & low_mask(layout.slices()[i].bit_width);
    }
    std::vector<std::uint8_t> record(layout.total_bytes());
    layout.serialize(record, values);
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(layout.read_slice(record, i), values[i]) << "round " << round;
    }
  }
}

// ---------------------------------------------------------------------------
// Verifier
// ---------------------------------------------------------------------------

TEST(Verifier, AcceptsWellFormedLayout) {
  softnic::SemanticRegistry registry;
  const CompiledLayout layout = pack_layout(
      "t", "p", Endian::little,
      {slice("len", SemanticId::pkt_len, 16), slice("hash", SemanticId::rss_hash, 32)});
  EXPECT_TRUE(verify_layout(layout, registry).empty());
  EXPECT_NO_THROW(verify_layout_or_throw(layout, registry));
}

TEST(Verifier, FlagsSemanticWidthMismatch) {
  softnic::SemanticRegistry registry;
  // rss is declared 32-bit in the registry; a 16-bit slice is a contract
  // violation.
  const CompiledLayout layout = pack_layout(
      "t", "p", Endian::little, {slice("hash", SemanticId::rss_hash, 16)});
  const auto issues = verify_layout(layout, registry);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("does not match semantic"), std::string::npos);
  EXPECT_THROW(verify_layout_or_throw(layout, registry), Error);
}

TEST(Verifier, FlagsOverlapAndOutOfBounds) {
  softnic::SemanticRegistry registry;
  // Hand-build a broken layout (bypassing pack_layout's sequential packing).
  std::vector<FieldSlice> pieces = {slice("a", std::nullopt, 16),
                                    slice("b", std::nullopt, 16)};
  pieces[0].bit_start = 0;
  pieces[1].bit_start = 8;  // overlaps a
  const CompiledLayout overlapping("t", "p", Endian::little, pieces);
  bool found_overlap = false;
  for (const auto& issue : verify_layout(overlapping, registry)) {
    found_overlap |= issue.message.find("overlap") != std::string::npos;
  }
  EXPECT_TRUE(found_overlap);
}

TEST(Verifier, FlagsOversizedFixedValue) {
  softnic::SemanticRegistry registry;
  const CompiledLayout layout = pack_layout(
      "t", "p", Endian::little, {slice("s", std::nullopt, 4, 0x1F)});
  const auto issues = verify_layout(layout, registry);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("@fixed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Intent parsing
// ---------------------------------------------------------------------------

TEST(Intent, ParsesFig5StyleHeader) {
  softnic::SemanticRegistry registry;
  const Intent intent = parse_intent(R"(
      header intent_t {
          @semantic("rss")         bit<32> rss_val;
          @semantic("vlan")        bit<16> vlan_tag;
          @semantic("ip_checksum") bit<16> csum;
      }
  )", registry);
  EXPECT_EQ(intent.header_name, "intent_t");
  ASSERT_EQ(intent.fields.size(), 3u);
  EXPECT_EQ(intent.requested(),
            (std::set<SemanticId>{SemanticId::rss_hash, SemanticId::vlan_tci,
                                  SemanticId::ip_checksum}));
}

TEST(Intent, RejectsUnannotatedAndWidthMismatchedFields) {
  softnic::SemanticRegistry registry;
  EXPECT_THROW((void)parse_intent("header i_t { bit<32> naked; }", registry), Error);
  // rss is 32-bit; a 16-bit field contradicts the registry.
  EXPECT_THROW((void)parse_intent(R"(
      header i_t { @semantic("rss") bit<16> h; }
  )", registry), Error);
  EXPECT_THROW((void)parse_intent("header i_t { }", registry), Error);
}

TEST(Intent, AutoRegistrationControllable) {
  softnic::SemanticRegistry registry;
  EXPECT_THROW((void)parse_intent(R"(
      header i_t { @semantic("novel") bit<8> x; }
  )", registry, /*auto_register=*/false), Error);
  EXPECT_FALSE(registry.find("novel").has_value());
  const Intent intent = parse_intent(R"(
      header i_t { @semantic("novel") bit<8> x; }
  )", registry, /*auto_register=*/true);
  EXPECT_TRUE(registry.find("novel").has_value());
  EXPECT_EQ(registry.bit_width(intent.fields[0].semantic), 8u);
}

TEST(Intent, CostOverridesParsed) {
  softnic::SemanticRegistry registry;
  const Intent intent = parse_intent(R"(
      header i_t { @semantic("rss") @cost(777) bit<32> h; }
  )", registry);
  ASSERT_TRUE(intent.fields[0].cost_override.has_value());
  EXPECT_DOUBLE_EQ(*intent.fields[0].cost_override, 777.0);
}

TEST(Intent, MultipleHeadersRejectedInConvenienceParser) {
  softnic::SemanticRegistry registry;
  EXPECT_THROW((void)parse_intent(R"(
      header a_t { @semantic("rss") bit<32> h; }
      header b_t { @semantic("vlan") bit<16> v; }
  )", registry), Error);
}

}  // namespace
}  // namespace opendesc::core
