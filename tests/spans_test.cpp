// Causal-tracing suite: the SpanRing single-writer protocol (wrap, drop
// accounting, incremental windows, torn-read safety under a concurrent
// writer), trace-id minting and sampling clamps, trace grouping and the
// three renderers, then the system end to end — a sampled engine run must
// reconstruct a packet's full lifecycle as one causally ordered trace,
// histogram exemplars must resolve to retained spans, and the /spans +
// /buildinfo routes (with the server's self-instrumentation) must serve it
// all over a real socket.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/buildinfo.hpp"
#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "http/server.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/server.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/spans.hpp"

namespace opendesc {
namespace {

using telemetry::clamp_trace_sample;
using telemetry::group_traces;
using telemetry::mint_trace_id;
using telemetry::Sink;
using telemetry::SpanRecord;
using telemetry::SpanRing;
using telemetry::SpanStage;
using telemetry::trace_id_hex;
using telemetry::TraceView;

// --- sampling + identity ----------------------------------------------------

TEST(SpanSampling, ClampKeepsZeroRoundsToPowerOfTwoAndCaps) {
  EXPECT_EQ(clamp_trace_sample(0), 0u);  // 0 = tracing off, stays off
  EXPECT_EQ(clamp_trace_sample(1), 1u);
  EXPECT_EQ(clamp_trace_sample(3), 4u);
  EXPECT_EQ(clamp_trace_sample(64), 64u);
  EXPECT_EQ(clamp_trace_sample(65), 128u);
  EXPECT_EQ(clamp_trace_sample(1ULL << 40), 1ULL << 20);
}

TEST(SpanSampling, MintIsDeterministicDistinctAndNeverZero) {
  EXPECT_EQ(mint_trace_id(7, 2, 100), mint_trace_id(7, 2, 100));
  EXPECT_NE(mint_trace_id(7, 2, 100), mint_trace_id(7, 3, 100));
  EXPECT_NE(mint_trace_id(7, 2, 100), mint_trace_id(7, 2, 101));
  EXPECT_NE(mint_trace_id(8, 2, 100), mint_trace_id(7, 2, 100));
  for (std::uint64_t seq = 0; seq < 4096; ++seq) {
    ASSERT_NE(mint_trace_id(0, 0, seq), 0u);
  }
}

TEST(SpanSampling, TraceIdHexIsSixteenLowercaseDigits) {
  EXPECT_EQ(trace_id_hex(0), "0000000000000000");
  EXPECT_EQ(trace_id_hex(0xDEADBEEFULL), "00000000deadbeef");
  EXPECT_EQ(trace_id_hex(0xFFFFFFFFFFFFFFFFULL), "ffffffffffffffff");
  const std::string hex = trace_id_hex(mint_trace_id(1, 0, 0));
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

// --- SpanRing protocol ------------------------------------------------------

TEST(SpanRingTest, RecordsStampLaneEpochAndSequence) {
  SpanRing ring(8);
  ring.set_queue(3);
  ring.set_epoch(5);
  ring.record(SpanStage::ring, 0xAB, 100.0, 10.0);
  ring.set_epoch(6);  // cutover: later spans carry the new epoch
  ring.record(SpanStage::validate, 0xAB, 120.0, 5.0, /*detail=*/2);

  const std::vector<SpanRecord> spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].stage, SpanStage::ring);
  EXPECT_EQ(spans[0].queue, 3u);
  EXPECT_EQ(spans[0].epoch, 5u);
  EXPECT_EQ(spans[0].sequence, 0u);
  EXPECT_DOUBLE_EQ(spans[0].start_ns, 100.0);
  EXPECT_DOUBLE_EQ(spans[0].duration_ns, 10.0);
  EXPECT_EQ(spans[1].stage, SpanStage::validate);
  EXPECT_EQ(spans[1].epoch, 6u);
  EXPECT_EQ(spans[1].detail, 2u);
  EXPECT_EQ(spans[1].sequence, 1u);
  EXPECT_EQ(ring.last_trace_id(), 0xABu);
  EXPECT_EQ(ring.count(SpanStage::ring), 1u);
  EXPECT_EQ(ring.count(SpanStage::validate), 1u);
}

TEST(SpanRingTest, WrapKeepsNewestAndCountsDropped) {
  SpanRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(SpanStage::consume, i + 1, static_cast<double>(i), 1.0);
  }
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.count(SpanStage::consume), 10u);  // survives overwrites
  const std::vector<SpanRecord> spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].trace_id, 7 + i);  // newest four, oldest first
    EXPECT_EQ(spans[i].sequence, 6 + i);
  }
}

TEST(SpanRingTest, SinceReturnsTheIncrementalWindow) {
  SpanRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ring.record(SpanStage::steer, i + 1, static_cast<double>(i), 0.0);
  }
  const std::vector<SpanRecord> tail = ring.since(3);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].sequence, 3u);
  EXPECT_EQ(tail[1].sequence, 4u);
  EXPECT_TRUE(ring.since(5).empty());
  EXPECT_EQ(ring.since(0).size(), ring.snapshot().size());

  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.count(SpanStage::steer), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(SpanRingTest, ConcurrentSnapshotNeverReturnsTornSpans) {
  // Writer publishes spans whose fields are all derived from the sequence;
  // a torn read mixes fields from two slots and breaks the relation.
  SpanRing ring(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ring.record(SpanStage::nic_parse, i + 1, static_cast<double>(i) * 2.0,
                  static_cast<double>(i) + 0.5);
      ++i;
    }
  });
  for (int round = 0; round < 2000; ++round) {
    for (const SpanRecord& span : ring.snapshot()) {
      const std::uint64_t i = span.trace_id - 1;
      ASSERT_EQ(span.stage, SpanStage::nic_parse);
      ASSERT_DOUBLE_EQ(span.start_ns, static_cast<double>(i) * 2.0);
      ASSERT_DOUBLE_EQ(span.duration_ns, static_cast<double>(i) + 0.5);
    }
  }
  stop.store(true);
  writer.join();
}

// --- grouping + renderers ---------------------------------------------------

std::vector<SpanRecord> make_trace(std::uint64_t id, double base_ns) {
  std::vector<SpanRecord> spans;
  const SpanStage stages[] = {SpanStage::tx_post, SpanStage::steer,
                              SpanStage::validate, SpanStage::consume};
  for (std::size_t i = 0; i < 4; ++i) {
    SpanRecord span;
    span.trace_id = id;
    span.stage = stages[i];
    span.start_ns = base_ns + static_cast<double>(i) * 10.0;
    span.duration_ns = 5.0;
    span.queue = i < 2 ? 2 : 0;  // dispatch lane for queues()==2 sinks
    spans.push_back(span);
  }
  return spans;
}

TEST(SpanGrouping, GroupsByTraceOrdersByStartAndSkipsUnsampled) {
  std::vector<SpanRecord> mixed;
  for (const auto& [id, base] : {std::pair<std::uint64_t, double>{11, 100.0},
                                 {22, 50.0},
                                 {0, 10.0}}) {  // id 0 = unsampled, dropped
    for (SpanRecord span : make_trace(id, base)) {
      mixed.push_back(span);
    }
  }
  std::reverse(mixed.begin(), mixed.end());  // arrival order is no order

  const std::vector<TraceView> traces = group_traces(mixed);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].trace_id, 22u);  // earliest first span first
  EXPECT_EQ(traces[1].trace_id, 11u);
  for (const TraceView& trace : traces) {
    ASSERT_EQ(trace.spans.size(), 4u);
    for (std::size_t i = 1; i < trace.spans.size(); ++i) {
      EXPECT_LE(trace.spans[i - 1].start_ns, trace.spans[i].start_ns);
    }
  }

  // max_traces keeps the *newest* N.
  const std::vector<TraceView> capped = group_traces(mixed, 1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0].trace_id, 11u);
}

TEST(SpanRenderers, JsonShapeCarriesLanesAndStages) {
  const std::vector<TraceView> traces = group_traces(make_trace(0xBEEF, 10.0));
  const std::string json =
      telemetry::render_spans_json(traces, "tenant-a", /*dispatch_queue=*/2);
  EXPECT_NE(json.find("\"tenant\":\"tenant-a\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"000000000000beef\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"tx_post\""), std::string::npos);
  EXPECT_NE(json.find("\"lane\":\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"lane\":\"queue0\""), std::string::npos);
  EXPECT_NE(json.find("\"duration_ns\":5"), std::string::npos);
}

TEST(SpanRenderers, OtlpShapeIsAnExportTraceServiceRequest) {
  const std::vector<TraceView> traces = group_traces(make_trace(0xBEEF, 10.0));
  const std::string otlp =
      telemetry::render_spans_otlp(traces, "tenant-a", 2);
  EXPECT_NE(otlp.find("\"resourceSpans\""), std::string::npos);
  EXPECT_NE(otlp.find("\"scopeSpans\""), std::string::npos);
  EXPECT_NE(otlp.find("\"service.name\""), std::string::npos);
  // 128-bit traceId: 16 zero digits then the 64-bit id.
  EXPECT_NE(otlp.find("\"traceId\":\"0000000000000000000000000000beef\""),
            std::string::npos);
  // The linear pipeline parents each span on its predecessor.
  EXPECT_NE(otlp.find("\"parentSpanId\":\"\""), std::string::npos);
  std::size_t parented = 0;
  for (std::size_t at = otlp.find("\"parentSpanId\":\"");
       at != std::string::npos;
       at = otlp.find("\"parentSpanId\":\"", at + 1)) {
    if (otlp[at + 16] != '"') {  // value begins after the 16-char key prefix
      ++parented;  // non-empty parent
    }
  }
  EXPECT_EQ(parented, 3u);  // 4-span chain: all but the root have parents
}

TEST(SpanRenderers, PerfettoShapeIsTraceEventJson) {
  const std::vector<TraceView> traces = group_traces(make_trace(0xBEEF, 10.0));
  const std::string perfetto =
      telemetry::render_spans_perfetto(traces, "tenant-a", 2);
  EXPECT_NE(perfetto.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(perfetto.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(perfetto.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(perfetto.find("\"dispatch\""), std::string::npos);
}

// --- flight integration -----------------------------------------------------

TEST(SpanFlight, IncidentJsonCarriesTheTraceId) {
  telemetry::FlightRecorder recorder(4, 4);
  telemetry::FlightIncident incident;
  incident.cause = telemetry::FlightCause::record_quarantined;
  incident.trace_id = 0xFACE;
  recorder.record(std::move(incident));
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"trace_id\":\"000000000000face\""), std::string::npos);
}

// --- end to end through the engine ------------------------------------------

constexpr const char* kIntent = R"P4(
header spans_intent_t {
    @semantic("rss")        bit<32> hash;
    @semantic("l4_csum_ok") bit<1>  ok;
    @semantic("pkt_len")    bit<16> len;
}
)P4";

struct EngineFixture {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs{registry};
  softnic::ComputeEngine compute{registry};
  core::CompileResult result;
  std::vector<net::Packet> trace;

  EngineFixture() {
    core::Compiler compiler(registry, costs);
    result = compiler.compile(nic::NicCatalog::by_name("mlx5").p4_source(),
                              kIntent, {});
    net::WorkloadConfig config;
    config.seed = 3;
    config.flow_count = 64;
    config.udp_fraction = 0.5;
    net::WorkloadGenerator gen(config);
    trace = gen.batch(4000);
  }

  engine::EngineReport run(Sink& sink, std::size_t sample) const {
    const engine::EngineConfig config = rt::EngineConfig{}
                                            .with_queues(2)
                                            .with_telemetry(&sink)
                                            .with_trace_sample(sample);
    engine::MultiQueueEngine eng(result, compute, config);
    return eng.run(trace);
  }
};

std::vector<SpanRecord> collect_spans(Sink& sink) {
  std::vector<SpanRecord> all;
  for (const SpanRing& ring : sink.span_rings()) {
    const std::vector<SpanRecord> part = ring.snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

bool has_causal_chain(const TraceView& trace) {
  const SpanStage core[] = {SpanStage::tx_post,  SpanStage::steer,
                            SpanStage::handoff,  SpanStage::ring,
                            SpanStage::validate, SpanStage::consume};
  double last = 0.0;
  for (const SpanStage stage : core) {
    const auto it = std::find_if(
        trace.spans.begin(), trace.spans.end(),
        [stage](const SpanRecord& s) { return s.stage == stage; });
    if (it == trace.spans.end() || it->start_ns + 1e-9 < last) {
      return false;
    }
    last = it->start_ns;
  }
  return true;
}

TEST(SpanEndToEnd, SampledRunReconstructsCausalLifecycles) {
  const EngineFixture fx;
  Sink sink({.queues = 2});
  const engine::EngineReport report = fx.run(sink, 16);
  ASSERT_EQ(report.total.packets, fx.trace.size());

  const std::vector<TraceView> traces = group_traces(collect_spans(sink));
  ASSERT_FALSE(traces.empty());
  // 1-in-16 over 4000 packets: every sampled packet must reconstruct.
  EXPECT_GE(traces.size(), 200u);
  std::size_t complete = 0;
  for (const TraceView& trace : traces) {
    EXPECT_GE(trace.spans.size(), 6u);
    if (has_causal_chain(trace)) {
      ++complete;
    }
  }
  EXPECT_EQ(complete, traces.size());
}

TEST(SpanEndToEnd, TraceIdsAreDeterministicAcrossRuns) {
  const EngineFixture fx;
  std::set<std::uint64_t> first, second;
  {
    Sink sink({.queues = 2});
    (void)fx.run(sink, 16);
    for (const SpanRecord& span : collect_spans(sink)) {
      first.insert(span.trace_id);
    }
  }
  {
    Sink sink({.queues = 2});
    (void)fx.run(sink, 16);
    for (const SpanRecord& span : collect_spans(sink)) {
      second.insert(span.trace_id);
    }
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // same seed, same workload → same ids
}

TEST(SpanEndToEnd, UntracedRunRecordsNothing) {
  const EngineFixture fx;
  Sink sink({.queues = 2});
  (void)fx.run(sink, 0);
  EXPECT_TRUE(collect_spans(sink).empty());
  for (const SpanRing& ring : sink.span_rings()) {
    EXPECT_EQ(ring.recorded(), 0u);
  }
}

TEST(SpanEndToEnd, HistogramExemplarsResolveToRetainedSpans) {
  const EngineFixture fx;
  Sink sink({.queues = 2});
  (void)fx.run(sink, 16);

  std::set<std::uint64_t> span_ids;
  for (const SpanRecord& span : collect_spans(sink)) {
    span_ids.insert(span.trace_id);
  }
  ASSERT_FALSE(span_ids.empty());

  const std::string scrape = telemetry::to_prometheus(sink.registry());
  std::size_t exemplars = 0;
  const std::string marker = "# {trace_id=\"";
  for (std::size_t at = scrape.find(marker); at != std::string::npos;
       at = scrape.find(marker, at + 1)) {
    const std::string hex = scrape.substr(at + marker.size(), 16);
    std::uint64_t id = 0;
    for (const char c : hex) {
      id = id * 16 + (c <= '9' ? c - '0' : c - 'a' + 10);
    }
    EXPECT_TRUE(span_ids.count(id)) << "exemplar " << hex
                                    << " does not resolve to a span";
    ++exemplars;
  }
  EXPECT_GT(exemplars, 0u);
}

// --- /spans, /buildinfo and server self-instrumentation ---------------------

TEST(SpanHttp, SpansRouteServesAllFormatsAndValidates) {
  const EngineFixture fx;
  Sink sink({.queues = 2});
  (void)fx.run(sink, 16);
  telemetry::ObservabilityServer server(sink);
  server.set_tenant("tenant-b");
  server.start();
  const auto get = [&](const std::string& path) {
    return http::http_get("127.0.0.1", server.port(), path);
  };

  const http::Response json = get("/spans");
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.body.find("\"tenant\":\"tenant-b\""), std::string::npos);
  EXPECT_NE(json.body.find("\"traces\":["), std::string::npos);
  EXPECT_NE(json.body.find("\"stage\":\"consume\""), std::string::npos);

  EXPECT_NE(get("/spans?format=otlp").body.find("\"resourceSpans\""),
            std::string::npos);
  EXPECT_NE(get("/spans?format=perfetto").body.find("\"traceEvents\""),
            std::string::npos);
  EXPECT_EQ(get("/spans?format=xml").status, 400);
  EXPECT_EQ(get("/spans?follow&format=otlp").status, 400);
  EXPECT_EQ(get("/spans?limit=bogus").status, 400);

  // ?limit=1 keeps exactly the newest trace.
  const http::Response limited = get("/spans?limit=1");
  std::size_t trace_count = 0;
  for (std::size_t at = limited.body.find("\"trace_id\"");
       at != std::string::npos;
       at = limited.body.find("\"trace_id\"", at + 1)) {
    ++trace_count;
  }
  EXPECT_EQ(trace_count, 1u);
  server.stop();
}

TEST(SpanHttp, BuildinfoRouteReportsTheBakedConfiguration) {
  Sink sink({.queues = 1});
  telemetry::ObservabilityServer server(sink);
  server.start();
  const http::Response got =
      http::http_get("127.0.0.1", server.port(), "/buildinfo");
  EXPECT_EQ(got.status, 200);
  for (const char* key : {"\"version\"", "\"git_sha\"", "\"git_dirty\"",
                          "\"compiler\"", "\"build_type\"", "\"sanitizer\"",
                          "\"cxx_standard\""}) {
    EXPECT_NE(got.body.find(key), std::string::npos) << key;
  }
  // The in-process view matches what the route serves.
  EXPECT_EQ(got.body, build_info_json());
  EXPECT_NE(build_info().compiler[0], '\0');
  server.stop();
}

TEST(SpanHttp, ServerSelfInstrumentationCountsRequests) {
  Sink sink({.queues = 1});
  telemetry::ObservabilityServer server(sink);
  server.start();
  const auto get = [&](const std::string& path) {
    return http::http_get("127.0.0.1", server.port(), path);
  };
  (void)get("/healthz");
  (void)get("/no-such-route");  // high-cardinality scan folds to "other"
  const http::Response scrape = get("/metrics");
  ASSERT_EQ(scrape.status, 200);
  EXPECT_NE(scrape.body.find("# TYPE opendesc_http_requests_total counter"),
            std::string::npos);
  EXPECT_NE(scrape.body.find("route=\"/healthz\""), std::string::npos);
  EXPECT_NE(scrape.body.find("route=\"other\""), std::string::npos);
  EXPECT_EQ(scrape.body.find("no-such-route"), std::string::npos);
  EXPECT_NE(scrape.body.find("opendesc_http_connections"), std::string::npos);
  EXPECT_NE(
      scrape.body.find("# TYPE opendesc_http_request_duration_ns histogram"),
      std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace opendesc
