// Continuous hot-path profiler: cycle-accounting correctness and the
// seqlock snapshot protocol.  Covers the ProfileData codec and arithmetic,
// writer-side batch accounting with stride control, torn-snapshot stress
// (a reader hammering snapshot() against a hot writer — also the TSan
// twin's workload), the work-vs-wait partition invariant under a live
// 4-queue engine run, per-epoch attribution across layout hot-swaps, and
// the collapsed-stack / renderer goldens including the empty-lane
// convention.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "runtime/epoch.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/sink.hpp"

namespace opendesc {
namespace {

using telemetry::ProfileCapture;
using telemetry::ProfileData;
using telemetry::Profiler;
using telemetry::ProfileShard;
using telemetry::ProfileStage;

/// Relative-epsilon check of the partition identity on one coherent
/// snapshot: every recorded nanosecond is in exactly one stage, and
/// loop_ns accumulated alongside, so the sums must agree up to float
/// rounding.
void expect_partition(const ProfileData& data) {
  double stage_sum = 0.0;
  for (const double ns : data.stage_ns) {
    stage_sum += ns;
  }
  const double tol = 1e-6 * std::max(1.0, std::fabs(data.loop_ns));
  EXPECT_NEAR(stage_sum, data.loop_ns, tol);
  EXPECT_NEAR(data.work_ns() + data.wait_ns(), data.loop_ns, tol);
}

TEST(ProfileData, CodecRoundTripsEveryWord) {
  ProfileData data;
  for (std::size_t s = 0; s < telemetry::kProfileStageCount; ++s) {
    data.stage_ns[s] = 1000.25 * static_cast<double>(s + 1);
    data.loop_ns += data.stage_ns[s];
  }
  data.batches = 17;
  data.sampled_batches = 5;
  data.packets = 544;
  data.sampled_packets = 160;
  data.stride = 8;
  const ProfileData back =
      telemetry::decode_profile(telemetry::encode_profile(data));
  for (std::size_t s = 0; s < telemetry::kProfileStageCount; ++s) {
    EXPECT_DOUBLE_EQ(back.stage_ns[s], data.stage_ns[s]);
  }
  EXPECT_DOUBLE_EQ(back.loop_ns, data.loop_ns);
  EXPECT_EQ(back.batches, data.batches);
  EXPECT_EQ(back.sampled_batches, data.sampled_batches);
  EXPECT_EQ(back.packets, data.packets);
  EXPECT_EQ(back.sampled_packets, data.sampled_packets);
  EXPECT_EQ(back.stride, data.stride);
}

TEST(ProfileData, DeltaSubtractionSaturatesAndAdditionAccumulates) {
  ProfileData a;
  a.stage_ns[0] = 100.0;
  a.loop_ns = 100.0;
  a.batches = 10;
  a.packets = 320;
  a.sampled_packets = 32;
  a.stride = 4;
  ProfileData b = a;
  b.stage_ns[0] = 150.0;
  b.loop_ns = 150.0;
  b.batches = 14;
  b.packets = 448;
  b.sampled_packets = 64;
  b.stride = 8;

  ProfileData delta = b;
  delta -= a;
  EXPECT_DOUBLE_EQ(delta.stage_ns[0], 50.0);
  EXPECT_EQ(delta.batches, 4u);
  EXPECT_EQ(delta.packets, 128u);
  EXPECT_EQ(delta.sampled_packets, 32u);
  EXPECT_EQ(delta.stride, 8u);  // strides don't subtract

  ProfileData sum = a;
  sum += delta;
  EXPECT_DOUBLE_EQ(sum.loop_ns, b.loop_ns);
  EXPECT_EQ(sum.batches, b.batches);
  EXPECT_EQ(sum.stride, 8u);  // max, not sum

  // Subtracting a larger base saturates at zero instead of wrapping.
  ProfileData under = a;
  under -= b;
  EXPECT_DOUBLE_EQ(under.stage_ns[0], 0.0);
  EXPECT_EQ(under.batches, 0u);
  EXPECT_TRUE(under.empty());
}

TEST(ProfileShard, BatchAccountingAndPartition) {
  Profiler profiler({.shards = 1, .stride = 1});
  ProfileShard& shard = profiler.shard(0);

  ASSERT_TRUE(shard.batch_begin());
  shard.record(ProfileStage::ring, 120.0);
  shard.record(ProfileStage::validate, 40.0);
  shard.record(ProfileStage::consume, 80.0);
  shard.record(ProfileStage::wait, 60.0);
  shard.batch_end(32);

  const ProfileData data = shard.snapshot();
  EXPECT_EQ(data.batches, 1u);
  EXPECT_EQ(data.sampled_batches, 1u);
  EXPECT_EQ(data.packets, 32u);
  EXPECT_EQ(data.sampled_packets, 32u);
  EXPECT_DOUBLE_EQ(data.loop_ns, 300.0);
  EXPECT_DOUBLE_EQ(data.work_ns(), 240.0);
  EXPECT_DOUBLE_EQ(data.wait_ns(), 60.0);
  EXPECT_DOUBLE_EQ(data.ns_per_packet(ProfileStage::ring), 120.0 / 32.0);
  EXPECT_DOUBLE_EQ(data.work_ns_per_packet(), 240.0 / 32.0);
  expect_partition(data);
}

TEST(ProfileShard, SkippedBatchesCountPacketsButNoSpans) {
  Profiler profiler({.shards = 1, .stride = 4});
  ProfileShard& shard = profiler.shard(0);
  std::uint64_t sampled = 0;
  for (int i = 0; i < 8; ++i) {
    if (shard.batch_begin()) {
      shard.record(ProfileStage::consume, 10.0);
      shard.batch_end(16);
      ++sampled;
    } else {
      shard.batch_skip(16);
    }
  }
  const ProfileData data = shard.snapshot();
  EXPECT_EQ(data.batches, 8u);
  EXPECT_EQ(data.sampled_batches, sampled);
  EXPECT_EQ(data.packets, 128u);
  EXPECT_EQ(data.sampled_packets, sampled * 16);
  // Stride 4 over 8 batches: every 4th sampled.
  EXPECT_EQ(sampled, 2u);
  EXPECT_DOUBLE_EQ(data.loop_ns, 10.0 * static_cast<double>(sampled));
}

TEST(ProfileShard, StrideOverrideIsClampedToBounds) {
  Profiler profiler({.shards = 1});
  ProfileShard& shard = profiler.shard(0);
  profiler.set_stride(1u << 20);  // absurd override clamps to 1024
  if (shard.batch_begin()) {
    shard.batch_end(1);
  } else {
    shard.batch_skip(1);
  }
  EXPECT_EQ(shard.snapshot().stride, 1024u);
  profiler.set_stride(0);  // back to auto: stays within [1, 1024]
  for (int i = 0; i < 32; ++i) {
    if (shard.batch_begin()) {
      shard.record(ProfileStage::consume, 5.0);
      shard.batch_end(8);
    } else {
      shard.batch_skip(8);
    }
  }
  const std::uint64_t stride = shard.snapshot().stride;
  EXPECT_GE(stride, 1u);
  EXPECT_LE(stride, 1024u);
}

// A reader hammering snapshot() against a hot writer must only ever see
// coherent payloads: the partition identity holds on every snapshot and the
// counters are monotone.  A torn read (payload words from two publishes)
// breaks both; the seqlock must retry instead.  This is also the dedicated
// TSan workload for the profiler's publish/snapshot pair.
TEST(ProfileShard, SnapshotsAreNeverTorn) {
  Profiler profiler({.shards = 1, .stride = 1});
  ProfileShard& shard = profiler.shard(0);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    double ns = 1.0;
    while (!stop.load(std::memory_order_acquire)) {
      if (shard.batch_begin()) {
        shard.record(ProfileStage::ring, ns);
        shard.record(ProfileStage::validate, ns * 0.5);
        shard.record(ProfileStage::consume, ns * 2.0);
        shard.record(ProfileStage::wait, ns * 0.25);
        shard.batch_end(32);
      } else {
        shard.batch_skip(32);
      }
      ns += 1.0;
    }
  });

  std::uint64_t last_batches = 0;
  std::uint64_t last_packets = 0;
  double last_loop = 0.0;
  std::uint64_t coherent = 0;
  for (int i = 0; i < 20000; ++i) {
    const ProfileData data = shard.snapshot();
    expect_partition(data);
    EXPECT_GE(data.batches, last_batches);
    EXPECT_GE(data.packets, last_packets);
    EXPECT_GE(data.loop_ns, last_loop);
    last_batches = data.batches;
    last_packets = data.packets;
    last_loop = data.loop_ns;
    ++coherent;
  }
  // Don't stop until the writer demonstrably ran — a fast reader can burn
  // its iterations before the writer thread is even scheduled.
  while (shard.snapshot().batches < 100) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(coherent, 20000u);
  EXPECT_GT(shard.snapshot().batches, 0u);
}

// --- Live-engine coverage ---------------------------------------------------

struct EngineFixture {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs{registry};
  core::Compiler compiler{registry, costs};
  softnic::ComputeEngine compute{registry};
  core::CompileResult result;

  explicit EngineFixture(double alpha = 1.0)
      : result(compile(alpha)) {}

  [[nodiscard]] core::CompileResult compile(double alpha) {
    core::CompileOptions options;
    options.dma_weight_per_byte = alpha;
    return compiler.compile(nic::NicCatalog::by_name("ice").p4_source(),
                            R"(header prof_t {
                                 @semantic("rss")     bit<32> h;
                                 @semantic("pkt_len") bit<16> l;
                               })",
                            options);
  }

  [[nodiscard]] std::vector<net::Packet> trace(std::size_t n) const {
    net::WorkloadConfig config;
    config.seed = 11;
    config.udp_fraction = 0.5;
    config.vlan_probability = 0.3;
    net::WorkloadGenerator gen(config);
    return gen.batch(n);
  }
};

TEST(ProfilerEngine, LiveFourQueueRunHoldsPartitionUnderConcurrentReaders) {
  EngineFixture fx;
  const std::vector<net::Packet> packets = fx.trace(6000);

  telemetry::SinkConfig sink_config;
  sink_config.queues = 4;
  telemetry::Sink sink(sink_config);

  rt::EngineConfig config;
  config.queues = 4;
  config.telemetry = &sink;
  engine::MultiQueueEngine eng(fx.result, fx.compute, config);

  // Reader thread: captures the whole profiler mid-run; every snapshot it
  // takes must be coherent even while four workers and the dispatcher
  // publish concurrently.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const ProfileCapture capture = sink.profiler().capture();
      for (const ProfileData& shard : capture.shards) {
        expect_partition(shard);
      }
      expect_partition(capture.aggregate());
    }
  });
  const engine::EngineReport report = eng.run(packets);
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(report.total.packets, report.offered_total);

  // Post-run: every worker lane saw traffic, every shard holds the
  // partition, sampling never exceeds reality, strides stay bounded.
  const ProfileCapture capture = sink.profiler().capture();
  ASSERT_EQ(capture.queues, 4u);
  ASSERT_EQ(capture.shards.size(), 5u);
  std::uint64_t shard_packets = 0;
  for (std::size_t q = 0; q < capture.queues; ++q) {
    const ProfileData& shard = capture.shards[q];
    EXPECT_GT(shard.batches, 0u) << "queue " << q;
    EXPECT_GT(shard.packets, 0u) << "queue " << q;
    EXPECT_LE(shard.sampled_packets, shard.packets);
    EXPECT_LE(shard.sampled_batches, shard.batches);
    EXPECT_GE(shard.stride, 1u);
    EXPECT_LE(shard.stride, 1024u);
    expect_partition(shard);
    shard_packets += shard.packets;
  }
  EXPECT_EQ(shard_packets, report.offered_total);

  // The dispatch lane steered every packet and accounted dispatch-side
  // stages only.
  const ProfileData* dispatch = capture.dispatch();
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatch->packets, report.offered_total);
  EXPECT_GT(dispatch->sampled_packets, 0u);
  EXPECT_DOUBLE_EQ(
      dispatch->stage_ns[static_cast<std::size_t>(ProfileStage::ring)], 0.0);
  EXPECT_GT(capture.stage_ns_per_packet(ProfileStage::steer), 0.0);

  // Worker lanes did real per-record work.
  EXPECT_GT(capture.stage_ns_per_packet(ProfileStage::consume), 0.0);
  EXPECT_GT(capture.aggregate().work_ns_per_packet(), 0.0);

  // An EngineReport carries the run's own profile delta.
  EXPECT_GT(report.profile.aggregate().packets, 0u);
  EXPECT_LE(report.profile.aggregate().packets,
            capture.aggregate().packets);
}

TEST(ProfilerEngine, EpochAttributionSplitsAcrossHotSwap) {
  EngineFixture fx;
  const auto alt =
      std::make_shared<const core::CompileResult>(fx.compile(16.0));
  const std::vector<net::Packet> packets = fx.trace(6000);

  telemetry::SinkConfig sink_config;
  sink_config.queues = 4;
  telemetry::Sink sink(sink_config);

  rt::EngineConfig config;
  config.queues = 4;
  config.swap_every = 2000;
  config.telemetry = &sink;
  engine::MultiQueueEngine eng(fx.result, fx.compute, config);
  eng.set_swap_cycle(
      {alt, std::make_shared<const core::CompileResult>(fx.result)});

  const engine::EngineReport report = eng.run(packets);
  EXPECT_EQ(report.total.packets, report.offered_total);
  EXPECT_GE(eng.epochs().swaps(rt::SwapOutcome::committed), 1u);

  // The committed per-epoch deltas must partition the run: at least the
  // pre-swap and post-swap epochs carry packets, and between them they
  // account for every packet both sides processed (workers + dispatch).
  const ProfileCapture capture = sink.profiler().capture();
  ASSERT_GE(capture.epochs.size(), 2u);
  std::uint64_t epoch_packets = 0;
  std::uint64_t epochs_with_traffic = 0;
  for (const auto& [epoch, delta] : capture.epochs) {
    expect_partition(delta);
    epoch_packets += delta.packets;
    if (delta.packets > 0) {
      ++epochs_with_traffic;
    }
  }
  EXPECT_GE(epochs_with_traffic, 2u);
  EXPECT_EQ(epoch_packets, capture.aggregate().packets);

  // The swap itself was accounted: someone paid the barrier.
  double swap_ns = 0.0;
  for (const auto& [epoch, delta] : capture.epochs) {
    swap_ns +=
        delta.stage_ns[static_cast<std::size_t>(ProfileStage::swap_barrier)];
  }
  EXPECT_GT(swap_ns, 0.0);
}

// --- Renderers --------------------------------------------------------------

/// A hand-driven two-lane profiler: queue0 with known spans, the dispatch
/// lane deliberately left empty to exercise the omission convention.
Profiler& golden_profiler() {
  static Profiler profiler({.shards = 2, .stride = 1});
  static bool driven = false;
  if (!driven) {
    driven = true;
    ProfileShard& shard = profiler.shard(0);
    EXPECT_TRUE(shard.batch_begin());
    shard.record(ProfileStage::ring, 100.0);
    shard.record(ProfileStage::validate, 40.0);
    shard.record(ProfileStage::consume, 60.0);
    shard.record(ProfileStage::wait, 50.0);
    shard.batch_end(10);
    shard.flush();
  }
  return profiler;
}

TEST(ProfileRender, CollapsedStacksMatchGoldenAndOmitEmptyLanes) {
  const ProfileCapture capture = golden_profiler().capture();
  const std::string collapsed = telemetry::render_profile_collapsed(capture);
  // Stage order is the enumeration order; wait collapses to a two-frame
  // stack; the empty dispatch lane and zero stages are omitted entirely.
  EXPECT_EQ(collapsed,
            "opendesc;queue0;work;ring 100\n"
            "opendesc;queue0;work;validate 40\n"
            "opendesc;queue0;work;consume 60\n"
            "opendesc;queue0;wait 50\n");
  EXPECT_EQ(collapsed.find("dispatch"), std::string::npos);
  EXPECT_EQ(collapsed.find("steer"), std::string::npos);
}

TEST(ProfileRender, JsonCarriesLanesTotalsAndStages) {
  const ProfileCapture capture = golden_profiler().capture();
  const std::string json = telemetry::render_profile_json(capture);
  EXPECT_NE(json.find("\"lanes\":["), std::string::npos);
  EXPECT_NE(json.find("\"lane\":\"queue0\""), std::string::npos);
  EXPECT_NE(json.find("\"lane\":\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":{"), std::string::npos);
  EXPECT_NE(json.find("\"work_ns\":200.0"), std::string::npos);
  EXPECT_NE(json.find("\"wait_ns\":50.0"), std::string::npos);
  EXPECT_NE(json.find("\"ring\":{\"ns\":100.0"), std::string::npos);
  EXPECT_NE(json.find("\"epochs\":["), std::string::npos);
}

TEST(ProfileRender, SpeedscopeEmitsSchemaFramesAndOneProfilePerActiveLane) {
  const ProfileCapture capture = golden_profiler().capture();
  const std::string out = telemetry::render_profile_speedscope(capture);
  EXPECT_NE(out.find("speedscope.app/file-format-schema.json"),
            std::string::npos);
  EXPECT_NE(out.find("\"name\":\"queue0\""), std::string::npos);
  EXPECT_EQ(out.find("\"name\":\"dispatch\""), std::string::npos);
  EXPECT_NE(out.find("\"unit\":\"nanoseconds\""), std::string::npos);
  // Balanced open/close events.
  std::size_t opens = 0;
  std::size_t closes = 0;
  for (std::size_t at = out.find("\"type\":\"O\""); at != std::string::npos;
       at = out.find("\"type\":\"O\"", at + 1)) {
    ++opens;
  }
  for (std::size_t at = out.find("\"type\":\"C\""); at != std::string::npos;
       at = out.find("\"type\":\"C\"", at + 1)) {
    ++closes;
  }
  EXPECT_GT(opens, 0u);
  EXPECT_EQ(opens, closes);
}

TEST(ProfileRender, TsvRendersEmptyLanesAsDashes) {
  const ProfileCapture capture = golden_profiler().capture();
  const std::string tsv = telemetry::render_profile_tsv(capture);
  EXPECT_EQ(tsv.rfind("stage\tqueue0\tdispatch\ttotal\n", 0), 0u);
  // queue0 sampled 10 packets; the dispatch lane sampled none and renders
  // '-' in every stage row (the empty-histogram convention).
  EXPECT_NE(tsv.find("ring\t10.0\t-\t10.0"), std::string::npos);
  EXPECT_NE(tsv.find("consume\t6.0\t-\t6.0"), std::string::npos);
  EXPECT_NE(tsv.find("work_ns_per_packet\t20.0\t-\t20.0"), std::string::npos);
  EXPECT_NE(tsv.find("stride\t"), std::string::npos);
}

TEST(ProfileCaptureDelta, SinceKeepsOnlyTheWindow) {
  Profiler profiler({.shards = 1, .stride = 1});
  ProfileShard& shard = profiler.shard(0);
  ASSERT_TRUE(shard.batch_begin());
  shard.record(ProfileStage::consume, 100.0);
  shard.batch_end(10);

  const ProfileCapture base = profiler.capture();
  ASSERT_TRUE(shard.batch_begin());
  shard.record(ProfileStage::consume, 40.0);
  shard.batch_end(4);

  const ProfileCapture delta = profiler.capture().since(base);
  ASSERT_EQ(delta.shards.size(), 1u);
  EXPECT_EQ(delta.shards[0].batches, 1u);
  EXPECT_EQ(delta.shards[0].packets, 4u);
  EXPECT_DOUBLE_EQ(delta.shards[0].loop_ns, 40.0);
  expect_partition(delta.shards[0]);
}

}  // namespace
}  // namespace opendesc
