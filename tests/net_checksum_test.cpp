// RFC 1071 checksum tests, including the canonical RFC 1071 example and
// algebraic properties the SoftNIC fallbacks rely on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"

namespace opendesc::net {
namespace {

TEST(Checksum, Rfc1071WorkedExample) {
  // RFC 1071 §3: bytes 00 01 f2 03 f4 f5 f6 f7 sum to ddf2 (before
  // complement), so the checksum is ~0xddf2 = 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, ZeroBufferChecksumsToAllOnes) {
  const std::vector<std::uint8_t> zeros(20, 0);
  EXPECT_EQ(internet_checksum(zeros), 0xFFFF);
}

TEST(Checksum, VerifyAcceptsBufferContainingItsOwnChecksum) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> buf(2 + 2 * rng.bounded(40));
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.next());
    }
    buf[4 % buf.size()] = 0;  // keep geometry simple: checksum at offset 4
    // Compute with the checksum field zeroed, then insert it.
    const std::size_t off = buf.size() >= 6 ? 4 : 0;
    buf[off] = 0;
    buf[off + 1] = 0;
    const std::uint16_t csum = internet_checksum(buf);
    buf[off] = static_cast<std::uint8_t>(csum >> 8);
    buf[off + 1] = static_cast<std::uint8_t>(csum);
    EXPECT_TRUE(verify_checksum(buf)) << "iteration " << i;
  }
}

TEST(Checksum, OddLengthHandled) {
  const std::uint8_t data[] = {0xAB, 0xCD, 0xEF};
  // Manual: 0xABCD + 0xEF00 = 0x19ACD -> fold 0x9ACE -> ~ = 0x6531.
  EXPECT_EQ(internet_checksum(data), 0x6531);
}

TEST(Checksum, AccumulatorMatchesSingleShot) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> buf(4 + rng.bounded(200));
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.next());
    }
    // Split into even-sized prefix + rest; accumulate in two adds.
    const std::size_t cut = (rng.bounded(buf.size()) / 2) * 2;
    ChecksumAccumulator acc;
    acc.add(std::span<const std::uint8_t>(buf).first(cut));
    acc.add(std::span<const std::uint8_t>(buf).subspan(cut));
    EXPECT_EQ(acc.finish(), internet_checksum(buf));
  }
}

TEST(Checksum, PseudoHeaderKnownVector) {
  // UDP packet: src 10.0.0.1 dst 10.0.0.2, sport 1 dport 2, len 9,
  // payload "x".  Cross-check a hand-computed checksum.
  std::vector<std::uint8_t> udp = {0x00, 0x01, 0x00, 0x02, 0x00,
                                   0x09, 0x00, 0x00, 'x'};
  const std::uint32_t src = 0x0A000001, dst = 0x0A000002;
  const std::uint16_t csum = l4_checksum_ipv4(src, dst, kIpProtoUdp, udp);
  // Inserting the checksum must make the verification sum fold to zero.
  udp[6] = static_cast<std::uint8_t>(csum >> 8);
  udp[7] = static_cast<std::uint8_t>(csum);
  EXPECT_EQ(l4_checksum_ipv4(src, dst, kIpProtoUdp, udp), 0);
}

TEST(Checksum, Ipv6PseudoHeaderSelfVerifies) {
  std::array<std::uint8_t, 16> src{}, dst{};
  src[15] = 1;
  dst[15] = 2;
  std::vector<std::uint8_t> tcp(20, 0);  // TCP header, no options
  tcp[13] = 0x10;  // ACK
  const std::uint16_t csum = l4_checksum_ipv6(src, dst, kIpProtoTcp, tcp);
  tcp[16] = static_cast<std::uint8_t>(csum >> 8);
  tcp[17] = static_cast<std::uint8_t>(csum);
  EXPECT_EQ(l4_checksum_ipv6(src, dst, kIpProtoTcp, tcp), 0);
}

}  // namespace
}  // namespace opendesc::net
