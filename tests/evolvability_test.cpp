// The title story: "from static NIC descriptors to EVOLVABLE metadata
// interfaces".  A firmware update changes what the NIC can provide; the
// application never changes — it recompiles its unchanged intent against
// the new description and the hardware/software split shifts underneath a
// stable facade.
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "net/workload.hpp"
#include "runtime/facade.hpp"
#include "sim/nicsim.hpp"

namespace opendesc {
namespace {

using softnic::SemanticId;

// Firmware v1: length + checksum only.
constexpr const char* kFirmwareV1 = R"(
struct fw_ctx_t { bit<1> unused; }
header fw_meta_t {
    @semantic("pkt_len")     bit<16> len;
    @semantic("ip_checksum") bit<16> csum;
    @fixed(1) bit<8> status;
    bit<8> rsvd;
}
@nic("fwnic")
@endian("little")
control FwDeparser(cmpt_out o, in fw_ctx_t ctx, in fw_meta_t m) {
    apply { o.emit(m); }
}
)";

// Firmware v2: the update adds an RSS engine and a second, richer layout —
// new fields appended, old layout still available (vendors keep formats).
constexpr const char* kFirmwareV2 = R"(
struct fw_ctx_t { bit<1> rss_en; }
header fw_meta_t {
    @semantic("pkt_len")     bit<16> len;
    @semantic("ip_checksum") bit<16> csum;
    @fixed(1) bit<8> status;
    bit<8> rsvd;
    @semantic("rss")         bit<32> hash;
}
@nic("fwnic")
@endian("little")
control FwDeparser(cmpt_out o, in fw_ctx_t ctx, in fw_meta_t m) {
    apply {
        o.emit(m.len);
        o.emit(m.csum);
        o.emit(m.status);
        o.emit(m.rsvd);
        if (ctx.rss_en == 1) {
            o.emit(m.hash);
        }
    }
}
)";

// The application's intent — never changes across firmware versions.
constexpr const char* kAppIntent = R"(
header app_t {
    @semantic("pkt_len")     bit<16> len;
    @semantic("ip_checksum") bit<16> csum;
    @semantic("rss")         bit<32> hash;
}
)";

/// The application, written once against the facade.
struct AppRun {
  std::uint64_t checksum = 0;
  std::uint64_t fallbacks = 0;
  std::size_t cmpt_bytes = 0;
};

AppRun run_app(const char* firmware) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(firmware, kAppIntent, {});
  softnic::ComputeEngine engine(registry);
  sim::NicSimulator nic(result.layout, engine, {});
  rt::MetadataFacade facade(result, engine);

  net::WorkloadConfig config;
  config.seed = 1234;  // identical trace for both firmware versions
  net::WorkloadGenerator gen(config);

  AppRun out;
  out.cmpt_bytes = result.layout.total_bytes();
  std::vector<sim::RxEvent> events(1);
  for (int i = 0; i < 200; ++i) {
    const net::Packet pkt = gen.next();
    EXPECT_TRUE(nic.rx(pkt));
    EXPECT_EQ(nic.poll(events), 1u);
    const rt::PacketContext ctx(events[0]);
    // Application logic — byte-for-byte identical for v1 and v2.
    out.checksum ^= facade.fetch(ctx, SemanticId::pkt_len).value();
    out.checksum ^= facade.fetch(ctx, SemanticId::ip_checksum).value() << 16;
    out.checksum ^= facade.fetch(ctx, SemanticId::rss_hash).value() << 32;
    nic.advance(1);
  }
  out.fallbacks = facade.path_counters().total().softnic_shim;
  return out;
}

TEST(Evolvability, FirmwareUpdateShiftsWorkWithoutAppChanges) {
  const AppRun v1 = run_app(kFirmwareV1);
  const AppRun v2 = run_app(kFirmwareV2);

  // Identical observable behaviour...
  EXPECT_EQ(v1.checksum, v2.checksum);

  // ...but on v1 every RSS value was a software fallback, while v2 serves
  // it from the new hardware field (zero fallbacks).
  EXPECT_EQ(v1.fallbacks, 200u);
  EXPECT_EQ(v2.fallbacks, 0u);

  // And the completion grew by exactly the new 32-bit field.
  EXPECT_EQ(v1.cmpt_bytes, 6u);
  EXPECT_EQ(v2.cmpt_bytes, 10u);
}

TEST(Evolvability, DowngradedFirmwareStillSatisfiesViaSoftware) {
  // The reverse direction: an app developed against v2 keeps working when
  // deployed on a v1 device — OpenDesc degrades to SoftNIC shims instead of
  // breaking, the "reduction to the lowest common denominator" the paper's
  // abstract complains about is avoided without per-device code.
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(kFirmwareV1, kAppIntent, {});
  ASSERT_EQ(result.shims.size(), 1u);
  EXPECT_EQ(result.shims[0].semantic, SemanticId::rss_hash);
}

}  // namespace
}  // namespace opendesc
