// Bidirectional integration: a forwarding network function built entirely
// on the OpenDesc contract — receive packets with RX metadata through one
// compiled contract, make a forwarding decision, and retransmit through a
// TX contract with hardware offloads.  Exercises RX completion parsing, the
// facade, descriptor writers, and TX offload execution in one flow.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "net/checksum.hpp"
#include "net/offload.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "runtime/facade.hpp"
#include "sim/nicsim.hpp"

namespace opendesc {
namespace {

using softnic::SemanticId;

constexpr const char* kRxIntent = R"(header fwd_rx_t {
    @semantic("rss")        bit<32> hash;
    @semantic("l4_csum_ok") bit<1>  ok;
    @semantic("pkt_len")    bit<16> len;
})";

constexpr const char* kTxIntent = R"(header fwd_tx_t {
    @semantic("tx_buf_addr") bit<64> addr;
    @semantic("tx_buf_len")  bit<16> len;
    @semantic("tx_csum_en")  bit<1>  csum;
})";

TEST(ForwardingNf, RxMetadataDrivesTxWithOffloads) {
  // Compile both directions against the programmable NIC.
  const nic::NicModel& model = nic::NicCatalog::by_name("qdma");
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto rx = compiler.compile(model.p4_source(), kRxIntent, {});
  const auto tx = compiler.compile_tx(model.p4_source(), kTxIntent, {});
  ASSERT_TRUE(tx.shims.empty());  // extended H2C covers the TX intent

  softnic::ComputeEngine engine(registry);
  sim::NicSimulator nic(rx.layout, engine, {});
  nic.configure_tx(tx.layout);
  rt::MetadataFacade facade(rx, engine);

  // Traffic: half the packets have broken L4 checksums.
  net::WorkloadConfig config;
  config.seed = 21;
  config.bad_l4_csum_fraction = 0.5;
  config.min_frame = 80;
  config.max_frame = 200;
  net::WorkloadGenerator gen(config);

  std::size_t forwarded = 0, dropped_bad = 0;
  std::map<std::uint32_t, std::size_t> per_bucket;  // RSS-steered "workers"
  for (int i = 0; i < 400; ++i) {
    const net::Packet pkt = gen.next();
    ASSERT_TRUE(nic.rx(pkt));
    std::vector<sim::RxEvent> events(1);
    ASSERT_EQ(nic.poll(events), 1u);
    const rt::PacketContext ctx(events[0]);

    // NF logic: drop checksum-bad packets, steer the rest by hash, and
    // forward with hardware checksum insertion (we rewrite the TTL, so the
    // checksum must be regenerated anyway).
    if (facade.fetch(ctx, SemanticId::l4_csum_ok).value() == 0) {
      ++dropped_bad;
      nic.advance(1);
      continue;
    }
    const std::uint32_t bucket = static_cast<std::uint32_t>(
        facade.fetch(ctx, SemanticId::rss_hash).value()) % 4;
    ++per_bucket[bucket];

    // Rewrite: decrement TTL (invalidates the IP checksum, fix it in
    // software as a router would; L4 is untouched but we ask the NIC to
    // regenerate it anyway to exercise the offload).
    std::vector<std::uint8_t> frame(events[0].frame.begin(),
                                    events[0].frame.end());
    const net::PacketView view = net::PacketView::parse(frame);
    frame[view.l3_offset() + 8] =
        static_cast<std::uint8_t>(frame[view.l3_offset() + 8] - 1);
    net::patch_ipv4_checksum(frame);

    // Post through the TX contract.
    std::vector<std::uint64_t> values(tx.layout.slices().size(), 0);
    for (std::size_t s = 0; s < tx.layout.slices().size(); ++s) {
      const auto& slice = tx.layout.slices()[s];
      if (!slice.semantic) continue;
      if (*slice.semantic == SemanticId::tx_buf_len) values[s] = frame.size();
      if (*slice.semantic == SemanticId::tx_eop) values[s] = 1;
      if (*slice.semantic == SemanticId::tx_csum_en) values[s] = 1;
    }
    std::vector<std::uint8_t> desc(tx.layout.total_bytes());
    tx.layout.serialize(desc, values);
    nic.tx_post(desc, frame);
    ++forwarded;
    nic.advance(1);
  }

  // The split matches the injected corruption rate (~50%).
  EXPECT_EQ(forwarded + dropped_bad, 400u);
  EXPECT_NEAR(static_cast<double>(dropped_bad), 200.0, 60.0);
  EXPECT_EQ(nic.transmitted().size(), forwarded);
  // RSS steering used all buckets.
  EXPECT_EQ(per_bucket.size(), 4u);

  // Every forwarded frame left with a valid L4 checksum and decremented TTL.
  for (const auto& wire : nic.transmitted()) {
    const net::PacketView view = net::PacketView::parse(wire);
    EXPECT_TRUE(net::verify_checksum(view.l3_bytes()));
    const std::uint8_t proto = view.l4_kind() == net::L4Kind::tcp
                                   ? net::kIpProtoTcp
                                   : net::kIpProtoUdp;
    EXPECT_EQ(net::l4_checksum_ipv4(view.ipv4().src, view.ipv4().dst, proto,
                                    view.l4_bytes()),
              0);
    EXPECT_EQ(view.ipv4().ttl, 63);  // 64 - 1
  }
}

TEST(ForwardingNf, SameNfPortableAcrossRxNics) {
  // The identical NF compiled against a fixed NIC (e1000e): checksum status
  // now comes from a SoftNIC shim, but the observable behaviour (drop
  // counts, buckets) is the same for the same trace.
  const auto run = [&](const std::string& nic_name) {
    const nic::NicModel& model = nic::NicCatalog::by_name(nic_name);
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    const auto rx = compiler.compile(model.p4_source(), kRxIntent, {});
    softnic::ComputeEngine engine(registry);
    sim::NicSimulator nic(rx.layout, engine, {});
    rt::MetadataFacade facade(rx, engine);

    net::WorkloadConfig config;
    config.seed = 33;
    config.bad_l4_csum_fraction = 0.3;
    net::WorkloadGenerator gen(config);

    std::uint64_t decisions = 0;
    for (int i = 0; i < 200; ++i) {
      const net::Packet pkt = gen.next();
      EXPECT_TRUE(nic.rx(pkt));
      std::vector<sim::RxEvent> events(1);
      EXPECT_EQ(nic.poll(events), 1u);
      const rt::PacketContext ctx(events[0]);
      const bool drop = facade.fetch(ctx, SemanticId::l4_csum_ok).value() == 0;
      const std::uint32_t bucket = static_cast<std::uint32_t>(
          facade.fetch(ctx, SemanticId::rss_hash).value()) % 4;
      decisions = decisions * 31 + (drop ? 99 : bucket);
      nic.advance(1);
    }
    return decisions;
  };

  const std::uint64_t on_qdma = run("qdma");
  const std::uint64_t on_e1000e = run("e1000e");
  const std::uint64_t on_mlx5 = run("mlx5");
  EXPECT_EQ(on_qdma, on_e1000e);
  EXPECT_EQ(on_qdma, on_mlx5);
}

}  // namespace
}  // namespace opendesc
