// Type/annotation checker tests.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "p4/parser.hpp"
#include "p4/typecheck.hpp"

namespace opendesc::p4 {
namespace {

TypeInfo check(std::string_view source) {
  return check_program(parse_program(source));
}

TEST(Typecheck, ResolvesWidthsThroughTypedefChains) {
  const Program program = parse_program(R"(
      typedef bit<48> mac_t;
      typedef mac_t hw_addr_t;
      header eth_t { hw_addr_t dst; hw_addr_t src; bit<16> type; }
  )");
  const TypeInfo info = check_program(program);
  EXPECT_EQ(info.width_of(TypeRef::named("mac_t")), 48u);
  EXPECT_EQ(info.width_of(TypeRef::named("hw_addr_t")), 48u);
  EXPECT_EQ(info.width_of(*program.find_header("eth_t")), 112u);
  EXPECT_EQ(info.field_width(program.find_header("eth_t")->fields()[2]), 16u);
}

TEST(Typecheck, ForwardReferencesResolve) {
  // typedef appears before the header it aliases.
  const TypeInfo info = check(R"(
      typedef inner_t outer_t;
      header inner_t { bit<8> x; }
  )");
  EXPECT_EQ(info.width_of(TypeRef::named("outer_t")), 8u);
}

TEST(Typecheck, ConstantsEvaluated) {
  const TypeInfo info = check(R"(
      const bit<16> A = 10;
      const bit<16> B = A * 2 + 5;
  )");
  EXPECT_EQ(info.constants().at("A"), 10u);
  EXPECT_EQ(info.constants().at("B"), 25u);
}

TEST(Typecheck, RejectsDuplicates) {
  EXPECT_THROW((void)check("header h { bit<8> a; } header h { bit<8> b; }"), Error);
  EXPECT_THROW((void)check("header h { bit<8> a; bit<4> a; }"), Error);
  EXPECT_THROW((void)check(R"(
      control C(cmpt_out o, cmpt_out o) { apply { } }
  )"), Error);
}

TEST(Typecheck, RejectsUnknownTypes) {
  EXPECT_THROW((void)check("header h { unknown_t a; }"), Error);
  EXPECT_THROW((void)check("typedef missing_t x;"), Error);
  EXPECT_THROW((void)check(R"(
      control C(cmpt_out o, in nowhere_t ctx) { apply { } }
  )"), Error);
}

TEST(Typecheck, RejectsCircularTypedefs) {
  EXPECT_THROW((void)check("typedef a_t b_t; typedef b_t a_t;"), Error);
}

TEST(Typecheck, ParserStateValidation) {
  // Missing start state.
  EXPECT_THROW((void)check(R"(
      header h_t { bit<8> x; }
      parser P(desc_in d, out h_t h) {
          state other { transition accept; }
      }
  )"), Error);
  // Dangling transition target.
  EXPECT_THROW((void)check(R"(
      header h_t { bit<8> x; }
      parser P(desc_in d, out h_t h) {
          state start { transition nowhere; }
      }
  )"), Error);
  // Dangling select case target.
  EXPECT_THROW((void)check(R"(
      header h_t { bit<8> x; }
      parser P(desc_in d, out h_t h) {
          state start {
              transition select(h.x) { 1: gone; };
          }
      }
  )"), Error);
  // accept/reject always valid.
  EXPECT_NO_THROW((void)check(R"(
      header h_t { bit<8> x; }
      parser P(desc_in d, out h_t h) {
          state start { transition accept; }
      }
  )"));
}

TEST(Typecheck, SemanticAnnotationShapeEnforced) {
  EXPECT_THROW((void)check("header h { @semantic bit<8> a; }"), Error);
  EXPECT_THROW((void)check("header h { @semantic(42) bit<8> a; }"), Error);
  EXPECT_THROW((void)check(R"(header h { @semantic("a", "b") bit<8> a; })"), Error);
  EXPECT_NO_THROW((void)check(R"(header h { @semantic("rss") bit<8> a; })"));
  // @cost must be an integer.
  EXPECT_THROW((void)check(R"(header h { @cost("x") bit<8> a; })"), Error);
  EXPECT_NO_THROW((void)check("header h { @cost(100) bit<8> a; }"));
  // Unknown annotations tolerated (forward compatibility).
  EXPECT_NO_THROW((void)check("header h { @vendor_thing(1, 2) bit<8> a; }"));
}

TEST(Typecheck, TypeParamsAreOpaqueButLegalInSignatures) {
  EXPECT_NO_THROW((void)check(R"(
      parser DescParser<H2C_CTX_T, DESC_T>(
          desc_in d,
          in H2C_CTX_T h2c_ctx,
          out DESC_T desc_hdr) {
          state start { transition accept; }
      }
  )"));
}

TEST(Typecheck, ChannelTypesAreBuiltin) {
  EXPECT_NO_THROW((void)check(R"(
      control C(cmpt_out a, desc_in b, packet_in c, packet_out d) { apply { } }
  )"));
}

TEST(Typecheck, WidthOfUnknownNamedTypeThrows) {
  const TypeInfo info = check("header h { bit<8> a; }");
  EXPECT_THROW((void)info.width_of(TypeRef::named("ghost")), Error);
  EXPECT_EQ(info.width_of(TypeRef::bits(12)), 12u);
  EXPECT_EQ(info.width_of(TypeRef::boolean()), 1u);
}

TEST(Typecheck, DivisionByZeroInConstRejected) {
  EXPECT_THROW((void)check("const bit<8> BAD = 1 / 0;"), Error);
  EXPECT_THROW((void)check("const bit<8> BAD = 1 % 0;"), Error);
}

}  // namespace
}  // namespace opendesc::p4
