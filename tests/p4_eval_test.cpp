// Constant evaluation and symbolic constraint (path feasibility) tests.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "p4/eval.hpp"
#include "p4/parser.hpp"

namespace opendesc::p4 {
namespace {

std::uint64_t eval(std::string_view source, const ConstEnv& env = {}) {
  return evaluate(*parse_expression(source), env);
}

TEST(Eval, ArithmeticAndBitwise) {
  EXPECT_EQ(eval("1 + 2 * 3"), 7u);
  EXPECT_EQ(eval("(1 + 2) * 3"), 9u);
  EXPECT_EQ(eval("10 / 3"), 3u);
  EXPECT_EQ(eval("10 % 3"), 1u);
  EXPECT_EQ(eval("1 << 4"), 16u);
  EXPECT_EQ(eval("255 >> 4"), 15u);
  EXPECT_EQ(eval("0xF0 & 0x3C"), 0x30u);
  EXPECT_EQ(eval("0xF0 | 0x0F"), 0xFFu);
  EXPECT_EQ(eval("0xFF ^ 0x0F"), 0xF0u);
  EXPECT_EQ(eval("~0 & 0xFF"), 0xFFu);
  EXPECT_EQ(eval("8w0xFF"), 255u);
}

TEST(Eval, ComparisonsAndLogic) {
  EXPECT_EQ(eval("3 < 4"), 1u);
  EXPECT_EQ(eval("4 <= 4"), 1u);
  EXPECT_EQ(eval("5 > 6"), 0u);
  EXPECT_EQ(eval("1 == 1 && 2 != 3"), 1u);
  EXPECT_EQ(eval("0 || 0"), 0u);
  EXPECT_EQ(eval("!0"), 1u);
  EXPECT_EQ(eval("true"), 1u);
  EXPECT_EQ(eval("false"), 0u);
}

TEST(Eval, VariablesFromEnvironment) {
  const ConstEnv env = {{"ctx.mode", 2}, {"x", 5}};
  EXPECT_EQ(eval("ctx.mode + x", env), 7u);
  EXPECT_EQ(try_evaluate(*parse_expression("unknown_var"), env), std::nullopt);
}

TEST(Eval, ShortCircuitDecidesWithUnknowns) {
  // 0 && unknown is decidable; unknown && 0 likewise.
  EXPECT_EQ(try_evaluate(*parse_expression("0 && mystery"), {}), 0u);
  EXPECT_EQ(try_evaluate(*parse_expression("mystery && 0"), {}), 0u);
  EXPECT_EQ(try_evaluate(*parse_expression("1 || mystery"), {}), 1u);
  EXPECT_EQ(try_evaluate(*parse_expression("mystery || 1"), {}), 1u);
  EXPECT_EQ(try_evaluate(*parse_expression("1 && mystery"), {}), std::nullopt);
}

TEST(Eval, DivisionByZeroThrows) {
  EXPECT_THROW((void)eval("1 / 0"), Error);
}

TEST(Eval, EvaluateThrowsOnNonConstant) {
  EXPECT_THROW((void)eval("ctx.use_rss"), Error);
}

// ---------------------------------------------------------------------------
// ConstraintSet
// ---------------------------------------------------------------------------

class ConstraintTest : public ::testing::Test {
 protected:
  [[nodiscard]] static bool feasible(
      std::initializer_list<std::pair<const char*, bool>> assumptions,
      const ConstEnv& consts = {}) {
    ConstraintSet set(consts);
    for (const auto& [source, taken] : assumptions) {
      if (!set.assume(*parse_expression(source), taken)) {
        return false;
      }
    }
    return set.feasible();
  }
};

TEST_F(ConstraintTest, BooleanFlagContradiction) {
  EXPECT_TRUE(feasible({{"ctx.use_rss", true}}));
  EXPECT_FALSE(feasible({{"ctx.use_rss", true}, {"ctx.use_rss", false}}));
  EXPECT_FALSE(feasible({{"ctx.use_rss == 1", true}, {"ctx.use_rss == 0", true}}));
}

TEST_F(ConstraintTest, EqualityAndInequality) {
  EXPECT_TRUE(feasible({{"ctx.mode == 2", true}, {"ctx.mode != 3", true}}));
  EXPECT_FALSE(feasible({{"ctx.mode == 2", true}, {"ctx.mode == 3", true}}));
  EXPECT_FALSE(feasible({{"ctx.mode == 2", true}, {"ctx.mode != 2", true}}));
  EXPECT_FALSE(feasible({{"ctx.mode == 2", true}, {"ctx.mode == 2", false}}));
}

TEST_F(ConstraintTest, IntervalReasoning) {
  EXPECT_TRUE(feasible({{"ctx.size >= 2", true}, {"ctx.size <= 3", true}}));
  EXPECT_FALSE(feasible({{"ctx.size >= 3", true}, {"ctx.size < 3", true}}));
  EXPECT_FALSE(feasible({{"ctx.size >= 1", false}, {"ctx.size >= 2", true}}));
  // Negation flips the operator: !(x <= 1) == x > 1.
  EXPECT_TRUE(feasible({{"ctx.size <= 1", false}, {"ctx.size == 2", true}}));
  EXPECT_FALSE(feasible({{"ctx.size <= 1", false}, {"ctx.size == 1", true}}));
}

TEST_F(ConstraintTest, MirroredComparisons) {
  // constant OP variable forms.
  EXPECT_FALSE(feasible({{"3 <= ctx.size", true}, {"ctx.size == 1", true}}));
  EXPECT_TRUE(feasible({{"3 <= ctx.size", true}, {"ctx.size == 5", true}}));
}

TEST_F(ConstraintTest, WidthBoundsInteract) {
  ConstraintSet set;
  ASSERT_TRUE(set.bound("ctx.flag", 1));  // bit<1>
  EXPECT_TRUE(set.assume(*parse_expression("ctx.flag == 1"), false));
  // flag != 1 with domain [0,1] pins it to 0.
  EXPECT_EQ(set.value_of("ctx.flag"), 0u);
  // Further demanding flag >= 2 contradicts the width bound.
  EXPECT_FALSE(set.assume(*parse_expression("ctx.flag >= 2"), true));
}

TEST_F(ConstraintTest, NegatedEqualityWithWidthBoundPinsValue) {
  ConstraintSet set;
  ASSERT_TRUE(set.bound("ctx.mode", 1));
  ASSERT_TRUE(set.assume(*parse_expression("ctx.mode == 0"), false));
  // Domain [0,1] minus forbidden {0} collapses to {1}.
  EXPECT_EQ(set.value_of("ctx.mode"), 1u);
  // But == 1 is still allowed and == 0 is not.
  ConstraintSet copy = set;
  EXPECT_TRUE(copy.assume(*parse_expression("ctx.mode == 1"), true));
  EXPECT_FALSE(set.assume(*parse_expression("ctx.mode == 0"), true));
}

TEST_F(ConstraintTest, ConjunctionsSplit) {
  EXPECT_FALSE(feasible({{"ctx.a == 1 && ctx.b == 2", true}, {"ctx.b == 3", true}}));
  // De Morgan on a false disjunction constrains both sides.
  EXPECT_FALSE(feasible({{"ctx.a == 1 || ctx.b == 2", false}, {"ctx.a == 1", true}}));
}

TEST_F(ConstraintTest, ConstantsDecideImmediately) {
  const ConstEnv consts = {{"MODE_RSS", 1}};
  EXPECT_TRUE(feasible({{"MODE_RSS == 1", true}}, consts));
  EXPECT_FALSE(feasible({{"MODE_RSS == 1", false}}, consts));
  EXPECT_FALSE(feasible({{"MODE_RSS == 2", true}}, consts));
}

TEST_F(ConstraintTest, UninterpretableConditionsAreConservative) {
  // variable-vs-variable comparisons don't prune.
  EXPECT_TRUE(feasible({{"ctx.a == ctx.b", true}, {"ctx.a != ctx.b", true}}));
}

TEST_F(ConstraintTest, SampleAssignmentSatisfiesConstraints) {
  ConstraintSet set;
  ASSERT_TRUE(set.assume(*parse_expression("ctx.mode >= 2"), true));
  ASSERT_TRUE(set.assume(*parse_expression("ctx.mode != 2"), true));
  ASSERT_TRUE(set.assume(*parse_expression("ctx.flag"), true));
  const ConstEnv assignment = set.sample_assignment();
  EXPECT_EQ(assignment.at("ctx.mode"), 3u);  // lowest allowed, skipping forbidden
  EXPECT_EQ(assignment.at("ctx.flag"), 1u);
  EXPECT_EQ(set.variables(), (std::set<std::string>{"ctx.flag", "ctx.mode"}));
}

TEST_F(ConstraintTest, BoolLiteralBranches) {
  EXPECT_TRUE(feasible({{"true", true}}));
  EXPECT_FALSE(feasible({{"true", false}}));
  EXPECT_FALSE(feasible({{"false", true}}));
}

TEST_F(ConstraintTest, NotOperatorFlipsPolarity) {
  EXPECT_FALSE(feasible({{"!(ctx.a == 1)", true}, {"ctx.a == 1", true}}));
  EXPECT_TRUE(feasible({{"!(ctx.a == 1)", false}, {"ctx.a == 1", true}}));
}

}  // namespace
}  // namespace opendesc::p4
