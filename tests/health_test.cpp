// Continuous-health-plane suite: the windowed time-series store (manual
// ticks, so aggregates are exact), the SLO rule grammar and its expression
// evaluation, the HealthEngine alert lifecycle with flight capture, the
// background sampler, and the sampler-vs-datapath race check — a 4-queue
// faulted engine run snapshotted concurrently through the store and HTTP.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "http/server.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/health.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/timeseries.hpp"

namespace opendesc {
namespace {

using telemetry::AlertState;
using telemetry::HealthEngine;
using telemetry::HealthRule;
using telemetry::MetricKind;
using telemetry::parse_health_rules;
using telemetry::parse_window_seconds;
using telemetry::Registry;
using telemetry::Sink;
using telemetry::TimeSeriesStore;

// --- window spec parsing ----------------------------------------------------

TEST(WindowSpec, ParsesUnitsAndRejectsGarbage) {
  EXPECT_DOUBLE_EQ(parse_window_seconds("500ms"), 0.5);
  EXPECT_DOUBLE_EQ(parse_window_seconds("1s"), 1.0);
  EXPECT_DOUBLE_EQ(parse_window_seconds("10s"), 10.0);
  EXPECT_DOUBLE_EQ(parse_window_seconds("2m"), 120.0);
  EXPECT_DOUBLE_EQ(parse_window_seconds("1.5s"), 1.5);
  EXPECT_THROW((void)parse_window_seconds("10"), Error);     // no unit
  EXPECT_THROW((void)parse_window_seconds("s"), Error);      // no digits
  EXPECT_THROW((void)parse_window_seconds("10h"), Error);    // unknown unit
  EXPECT_THROW((void)parse_window_seconds("0s"), Error);     // non-positive
  EXPECT_THROW((void)parse_window_seconds("banana"), Error);
}

// --- time-series store (manual ticks) ---------------------------------------

struct StoreTest : ::testing::Test {
  Registry reg;
  // 1s ticks make window math exact: a 3s window is 4 samples spanning 3s.
  TimeSeriesStore store{{.tick_seconds = 1.0, .capacity = 8}};
};

TEST_F(StoreTest, CounterRateOverWindow) {
  auto& c = reg.counter("pkts_total", "t", {{"queue", "0"}});
  for (int i = 0; i < 4; ++i) {
    c.add(100);  // +100 per tick → rate 100/s
    store.sample(reg);
  }
  const auto w = store.aggregate("pkts_total", {}, 3.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->kind, MetricKind::counter);
  EXPECT_DOUBLE_EQ(w->rate, 100.0);
  EXPECT_DOUBLE_EQ(w->last, 400.0);
  // A 1s window covers 2 samples (one interval).
  const auto narrow = store.aggregate("pkts_total", {}, 1.0);
  ASSERT_TRUE(narrow.has_value());
  EXPECT_DOUBLE_EQ(narrow->rate, 100.0);
}

TEST_F(StoreTest, CounterRateSumsAcrossSeriesAndFiltersLabels) {
  auto& q0 = reg.counter("pkts_total", "t", {{"queue", "0"}});
  auto& q1 = reg.counter("pkts_total", "t", {{"queue", "1"}});
  for (int i = 0; i < 3; ++i) {
    q0.add(10);
    q1.add(30);
    store.sample(reg);
  }
  const auto all = store.aggregate("pkts_total", {}, 2.0);
  ASSERT_TRUE(all.has_value());
  EXPECT_DOUBLE_EQ(all->rate, 40.0);  // summed across both queues
  const auto one = store.aggregate("pkts_total", {{"queue", "1"}}, 2.0);
  ASSERT_TRUE(one.has_value());
  EXPECT_DOUBLE_EQ(one->rate, 30.0);
  EXPECT_FALSE(
      store.aggregate("pkts_total", {{"queue", "9"}}, 2.0).has_value());
}

TEST_F(StoreTest, GaugeWindowExtremaAndMean) {
  auto& g = reg.gauge("depth", "t", {});
  for (const double v : {4.0, 8.0, 6.0}) {
    g.set(v);
    store.sample(reg);
  }
  const auto w = store.aggregate("depth", {}, 10.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(w->min, 4.0);
  EXPECT_DOUBLE_EQ(w->max, 8.0);
  EXPECT_DOUBLE_EQ(w->mean, 6.0);
  EXPECT_DOUBLE_EQ(w->last, 6.0);
}

TEST_F(StoreTest, HistogramWindowDeltaQuantiles) {
  auto& h = reg.histogram("lat_ns", "t", {});
  h.shard(0).observe(100);
  store.sample(reg);
  // Newer ticks observe much larger values; the windowed delta must only
  // see what happened inside the window, not the first observation.
  for (int i = 0; i < 3; ++i) {
    h.shard(0).observe(100000);
    store.sample(reg);
  }
  const auto w = store.aggregate("lat_ns", {}, 2.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->delta.count, 2u);
  EXPECT_GE(w->delta.quantile_upper_bound(0.5), 100000u);
  // Full history still contains all four.
  const auto all = store.aggregate("lat_ns", {}, 100.0);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->delta.count, 3u);  // delta of 4 samples = 3 intervals
}

TEST_F(StoreTest, RingEvictsPastCapacityButTicksKeepCounting) {
  auto& c = reg.counter("pkts_total", "t", {});
  for (int i = 0; i < 20; ++i) {
    c.add(1);
    store.sample(reg);
  }
  EXPECT_EQ(store.ticks(), 20u);
  const auto w = store.aggregate("pkts_total", {}, 1000.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->samples, 8u);  // bounded by capacity
  EXPECT_DOUBLE_EQ(w->last, 20.0);
}

TEST_F(StoreTest, UnknownMetricIsNullopt) {
  EXPECT_FALSE(store.aggregate("nope_total", {}, 1.0).has_value());
  EXPECT_FALSE(store.family_window("nope_total", 1.0).has_value());
  EXPECT_TRUE(store.metric_names().empty());
}

// Satellite: an empty histogram's quantiles are 0, not garbage.
TEST(HistogramQuantiles, EmptyHistogramQuantilesAreZero) {
  const telemetry::HistogramData empty;
  EXPECT_EQ(empty.quantile_upper_bound(0.50), 0u);
  EXPECT_EQ(empty.quantile_upper_bound(0.99), 0u);
  EXPECT_EQ(empty.quantile_upper_bound(0.999), 0u);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

// --- rules grammar ----------------------------------------------------------

TEST(RuleGrammar, ParsesRatioRuleWithForClause) {
  const auto rules = parse_health_rules(
      "# comment\n"
      "\n"
      "drop_share: rate(x_total[10s]) / rate(y_total[10s]) > 0.001 for 3 "
      "ticks\n");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].name, "drop_share");
  EXPECT_EQ(rules[0].cmp, telemetry::HealthCmp::gt);
  EXPECT_DOUBLE_EQ(rules[0].threshold, 0.001);
  EXPECT_EQ(rules[0].for_ticks, 3u);
  EXPECT_EQ(rules[0].expr.to_text(),
            "(rate(x_total[10s]) / rate(y_total[10s]))");
}

TEST(RuleGrammar, ParsesEveryFunctionLabelsAndComparisons) {
  const auto rules = parse_health_rules(
      "a: value(up) >= 1\n"
      "b: min(depth{queue=\"0\"}[5s]) < 2\n"
      "c: p99(lat_ns[1m]) <= 50000\n"
      "d: mean(depth[2s]) * 2 + 1 > 3\n"
      "e: max(depth[2s]) - p50(lat_ns[2s]) > 0\n");
  ASSERT_EQ(rules.size(), 5u);
  EXPECT_EQ(rules[0].for_ticks, 1u);  // default
  EXPECT_EQ(rules[1].expr.filter,
            (telemetry::Labels{{"queue", "0"}}));
  EXPECT_DOUBLE_EQ(rules[2].expr.window_seconds, 60.0);
  // Precedence: * binds tighter than +.
  EXPECT_EQ(rules[3].expr.to_text(), "((mean(depth[2s]) * 2) + 1)");
}

TEST(RuleGrammar, RejectsMalformedRules) {
  EXPECT_THROW((void)parse_health_rules("no_colon rate(x[1s]) > 1\n"), Error);
  EXPECT_THROW((void)parse_health_rules("r: rate(x[1s]) >\n"), Error);
  EXPECT_THROW((void)parse_health_rules("r: bogus(x[1s]) > 1\n"), Error);
  EXPECT_THROW((void)parse_health_rules("r: rate(x[1h]) > 1\n"), Error);
  EXPECT_THROW((void)parse_health_rules("r: rate(x[1s]) > 1 trailing\n"),
               Error);
  EXPECT_THROW((void)parse_health_rules("r: rate(x[1s]) > 1\n"
                                        "r: rate(y[1s]) > 2\n"),
               Error);  // duplicate name
  EXPECT_TRUE(parse_health_rules("# only comments\n\n").empty());
}

TEST(RuleGrammar, UnsampledSelectorsAndDivisionByZeroEvaluateToZero) {
  TimeSeriesStore store({.tick_seconds = 1.0, .capacity = 4});
  const auto rules =
      parse_health_rules("r: rate(absent_total[2s]) / rate(ghost[2s]) > 1\n");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_DOUBLE_EQ(rules[0].expr.evaluate(store), 0.0);
}

// --- alert lifecycle --------------------------------------------------------

struct Lifecycle : ::testing::Test {
  Registry reg;
  TimeSeriesStore store{{.tick_seconds = 1.0, .capacity = 16}};
  Sink sink{{.queues = 1, .trace_capacity = 32}};

  /// One tick of `delta` on the watched counter, then sample + evaluate.
  void tick(telemetry::Counter& c, HealthEngine& engine, std::uint64_t delta) {
    c.add(delta);
    store.sample(reg);
    engine.evaluate();
  }
};

TEST_F(Lifecycle, PendingFiringResolvedWithFlightCapture) {
  auto& c = reg.counter("pkts_total", "t", {});
  auto rules = parse_health_rules("hot: rate(pkts_total[2s]) > 50 for 2\n");
  HealthEngine engine(std::move(rules), store, &sink);
  ASSERT_EQ(engine.rules(), 1u);

  tick(c, engine, 10);  // rate 0 on the very first sample (no interval yet)
  EXPECT_EQ(engine.snapshot()[0].state, AlertState::inactive);

  tick(c, engine, 100);  // rate 90+/s → condition true, 1 consecutive
  EXPECT_EQ(engine.snapshot()[0].state, AlertState::pending);
  EXPECT_EQ(engine.firing(), 0u);

  tick(c, engine, 100);  // 2 consecutive → firing, capture taken
  auto status = engine.snapshot()[0];
  EXPECT_EQ(status.state, AlertState::firing);
  EXPECT_EQ(status.fired_total, 1u);
  EXPECT_GT(status.capture_id, 0u);
  EXPECT_EQ(engine.firing(), 1u);

  // The firing transition captured a forensic incident tagged to the rule.
  EXPECT_EQ(sink.flight().count(telemetry::FlightCause::alert_fired), 1u);
  const auto incidents = sink.flight().snapshot();
  ASSERT_FALSE(incidents.empty());
  EXPECT_EQ(incidents.back().cause, telemetry::FlightCause::alert_fired);
  EXPECT_EQ(incidents.back().layout_id, "alert/hot");

  // The firing gauge is up while firing.
  EXPECT_DOUBLE_EQ(sink.registry()
                       .gauge("opendesc_alerts_firing",
                              "1 while the named SLO rule is in the firing "
                              "state.",
                              {{"rule", "hot"}})
                       .value(),
                   1.0);

  // Traffic stops: the 2s-window rate decays to zero and the rule resolves.
  tick(c, engine, 0);
  tick(c, engine, 0);
  status = engine.snapshot()[0];
  EXPECT_EQ(status.state, AlertState::resolved);
  EXPECT_EQ(engine.firing(), 0u);
  EXPECT_DOUBLE_EQ(sink.registry()
                       .gauge("opendesc_alerts_firing",
                              "1 while the named SLO rule is in the firing "
                              "state.",
                              {{"rule", "hot"}})
                       .value(),
                   0.0);

  // And it can fire again from resolved — fired_total keeps counting.
  tick(c, engine, 200);
  tick(c, engine, 200);
  status = engine.snapshot()[0];
  EXPECT_EQ(status.state, AlertState::firing);
  EXPECT_EQ(status.fired_total, 2u);
  EXPECT_EQ(sink.flight().count(telemetry::FlightCause::alert_fired), 2u);
}

TEST_F(Lifecycle, PendingFallsBackToInactiveWhenConditionClears) {
  auto& c = reg.counter("pkts_total", "t", {});
  auto rules = parse_health_rules("hot: rate(pkts_total[2s]) > 50 for 3\n");
  HealthEngine engine(std::move(rules), store, &sink);
  tick(c, engine, 10);
  tick(c, engine, 100);
  EXPECT_EQ(engine.snapshot()[0].state, AlertState::pending);
  tick(c, engine, 0);
  tick(c, engine, 0);
  EXPECT_EQ(engine.snapshot()[0].state, AlertState::inactive);
  EXPECT_EQ(engine.snapshot()[0].fired_total, 0u);
  EXPECT_EQ(sink.flight().count(telemetry::FlightCause::alert_fired), 0u);
}

TEST_F(Lifecycle, ToJsonCarriesTheFullRuleStatus) {
  auto& c = reg.counter("pkts_total", "t", {});
  auto rules = parse_health_rules("hot: rate(pkts_total[2s]) > 50\n");
  HealthEngine engine(std::move(rules), store, &sink);
  tick(c, engine, 10);
  tick(c, engine, 100);
  const std::string json = engine.to_json();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"hot\""), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"firing\""), std::string::npos);
  EXPECT_NE(json.find("\"flight_capture_id\":"), std::string::npos);
  EXPECT_NE(json.find("rate(pkts_total[2s])"), std::string::npos);
}

// --- sampler ----------------------------------------------------------------

TEST(SamplerTest, TicksOnItsIntervalAndStopsIdempotently) {
  std::atomic<int> ticks{0};
  telemetry::Sampler sampler([&] { ++ticks; },
                             std::chrono::milliseconds(2));
  sampler.start();
  sampler.start();  // no-op
  while (ticks.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  const int at_stop = ticks.load();
  EXPECT_EQ(sampler.ticks(), static_cast<std::uint64_t>(at_stop));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(ticks.load(), at_stop);  // really stopped
  sampler.stop();  // no-op
  // Restartable.
  sampler.start();
  while (ticks.load() == at_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
}

// --- sampler vs datapath race suite -----------------------------------------

struct MonitoredEngine : ::testing::Test {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs{registry};
  core::Compiler compiler{registry, costs};
  softnic::ComputeEngine compute{registry};
  core::CompileResult result{compiler.compile(
      nic::NicCatalog::by_name("ice").p4_source(),
      R"(header i_t {
          @semantic("rss")     bit<32> h;
          @semantic("pkt_len") bit<16> l;
      })",
      {})};

  [[nodiscard]] std::vector<net::Packet> trace(std::size_t n) const {
    net::WorkloadConfig config;
    config.seed = 7;
    config.vlan_probability = 0.4;
    net::WorkloadGenerator gen(config);
    return gen.batch(n);
  }
};

// Four faulted queues run while the sampler snapshots the registry on a
// 2ms tick and this thread hammers the store's aggregates: counter `last`
// values must be monotone across polls (no torn reads of the seqlocked
// shards) and rates must never go negative.
TEST_F(MonitoredEngine, SamplerSnapshotsAreMonotoneUnderLoad) {
  Sink sink({.queues = 4, .trace_capacity = 64});
  rt::EngineConfig config =
      rt::EngineConfig{}
          .with_queues(4)
          .with_guard(true)
          .with_fault_rate(0.01, 99)
          .with_telemetry(&sink)
          .with_monitor(true)
          .with_sample_interval(2);
  engine::MultiQueueEngine engine(result, compute, config);
  ASSERT_NE(engine.timeseries(), nullptr);
  ASSERT_EQ(engine.server(), nullptr);  // monitor alone needs no listener

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> polls{0};
  std::thread poller([&] {
    double last_packets = 0.0;
    while (!done.load(std::memory_order_acquire)) {
      const auto w = engine.timeseries()->aggregate(
          "opendesc_rx_packets_total", {}, 0.01);
      if (w.has_value()) {
        EXPECT_GE(w->rate, 0.0);
        EXPECT_GE(w->last, last_packets) << "counter snapshot went backwards";
        last_packets = w->last;
        polls.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  engine::EngineReport report;
  for (int run = 0; run < 3; ++run) {
    report = engine.run(trace(20000));
  }
  // Let the sampler land a few post-run ticks, then stop polling.
  while (engine.monitor_ticks() < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  poller.join();

  EXPECT_GT(polls.load(), 0u);
  EXPECT_GT(engine.monitor_ticks(), 0u);
  // After the runs, the sampled `last` equals the true cumulative total.
  const auto final_window = engine.timeseries()->aggregate(
      "opendesc_rx_packets_total", {}, 3600.0);
  ASSERT_TRUE(final_window.has_value());
  EXPECT_DOUBLE_EQ(final_window->last,
                   static_cast<double>(3 * report.total.packets));
}

// The full live plane under faults: rules file semantics end to end inside
// the process, with /alerts and /timeseries polled over real HTTP while
// the engine runs.
TEST_F(MonitoredEngine, HealthRulesEvaluateAndServeWhileEngineRuns) {
  Sink sink({.queues = 4, .trace_capacity = 64});
  rt::EngineConfig config =
      rt::EngineConfig{}
          .with_queues(4)
          .with_guard(true)
          .with_fault_rate(0.02, 42)
          .with_telemetry(&sink)
          .with_server("127.0.0.1:0")
          .with_sample_interval(5)
          .with_health_rules(
              "drops: rate(opendesc_rx_quarantined_total[500ms]) / "
              "rate(opendesc_rx_packets_total[500ms]) > 0.0001 for 2\n"
              "idle_gauge: value(opendesc_engine_queues) < 1\n");
  engine::MultiQueueEngine engine(result, compute, config);
  ASSERT_NE(engine.health(), nullptr);
  ASSERT_NE(engine.server(), nullptr);
  EXPECT_EQ(engine.health()->rules(), 2u);
  const std::uint16_t port = engine.server()->port();

  // Drive traffic until the drop-share rule fires (bounded by run count).
  bool fired = false;
  for (int run = 0; run < 40 && !fired; ++run) {
    (void)engine.run(trace(20000));
    fired = engine.health()->firing() > 0;
  }
  ASSERT_TRUE(fired) << "drop-share rule never fired under 2% faults";

  const http::Response alerts = http::http_get("127.0.0.1", port, "/alerts");
  EXPECT_EQ(alerts.status, 200);
  EXPECT_NE(alerts.body.find("\"name\":\"drops\""), std::string::npos);
  EXPECT_NE(alerts.body.find("\"state\":\"firing\""), std::string::npos);

  const http::Response tsv =
      http::http_get("127.0.0.1", port,
                     "/timeseries?metric=opendesc_rx_packets_total&window=1s&"
                     "format=tsv");
  EXPECT_EQ(tsv.status, 200);
  EXPECT_NE(tsv.body.find("queue=\"0\""), std::string::npos);

  // The firing alert carries a flight capture, visible on /flight.
  const auto status = engine.health()->snapshot();
  const auto drops = status[0].rule == "drops" ? status[0] : status[1];
  EXPECT_GT(drops.capture_id, 0u);
  const http::Response flight = http::http_get("127.0.0.1", port, "/flight");
  EXPECT_NE(flight.body.find("alert_fired"), std::string::npos);
  // The incident body itself may have been evicted by later quarantine
  // captures (the recorder is bounded); when it survived, it names the rule.
  bool alert_incident_retained = false;
  for (const auto& incident : sink.flight().snapshot()) {
    if (incident.cause == telemetry::FlightCause::alert_fired) {
      alert_incident_retained = true;
      EXPECT_EQ(incident.layout_id, "alert/drops");
    }
  }
  if (alert_incident_retained) {
    EXPECT_NE(flight.body.find("alert/drops"), std::string::npos);
  }

  // The alerts gauge family is exported on /metrics.
  const http::Response metrics = http::http_get("127.0.0.1", port, "/metrics");
  EXPECT_NE(metrics.body.find("opendesc_alerts_firing{rule=\"drops\"} 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("opendesc_alerts_fired_total"),
            std::string::npos);
}

}  // namespace
}  // namespace opendesc
