// Path enumeration and characterization tests (§4 step 2): Prov(p),
// Size(p), feasibility pruning, and combinatorial behaviour.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/paths.hpp"
#include "p4/parser.hpp"

namespace opendesc::core {
namespace {

using softnic::SemanticId;

struct Built {
  p4::Program program;
  p4::TypeInfo types;
  softnic::SemanticRegistry registry;
  Cfg cfg;
  std::vector<CompletionPath> paths;
};

Built enumerate(std::string_view source, const std::string& control_name,
                std::size_t max_paths = 1 << 20) {
  Built b{p4::parse_program(source), {}, {}, {}, {}};
  b.types = p4::check_program(b.program);
  const p4::ControlDecl& control = *b.program.find_control(control_name);
  b.cfg = build_cfg(b.program, b.types, control, b.registry);
  PathEnumOptions options;
  options.consts = b.types.constants();
  options.variable_bounds = context_bounds(b.program, b.types, control);
  options.max_paths = max_paths;
  b.paths = enumerate_paths(b.cfg, options);
  return b;
}

constexpr const char* kFig6 = R"(
    struct ctx_t { bit<1> use_rss; }
    header meta_t {
        @semantic("rss")         bit<32> rss;
        @semantic("ip_id")       bit<16> ip_id;
        @semantic("ip_checksum") bit<16> csum;
    }
    control E1000e(cmpt_out o, in ctx_t ctx, in meta_t m) {
        apply {
            if (ctx.use_rss == 1) {
                o.emit(m.rss);
            } else {
                o.emit(m.ip_id);
                o.emit(m.csum);
            }
        }
    }
)";

TEST(Paths, Fig6TwoPathsWithExpectedProvAndSize) {
  const Built b = enumerate(kFig6, "E1000e");
  ASSERT_EQ(b.paths.size(), 2u);

  // True branch first (deterministic order): {rss}, 4 bytes.
  const CompletionPath& rss_path = b.paths[0];
  EXPECT_EQ(rss_path.provided, std::set<SemanticId>{SemanticId::rss_hash});
  EXPECT_EQ(rss_path.size_bits, 32u);
  EXPECT_EQ(rss_path.size_bytes(), 4u);
  EXPECT_EQ(rss_path.constraints.value_of("ctx.use_rss"), 1u);

  const CompletionPath& csum_path = b.paths[1];
  EXPECT_EQ(csum_path.provided,
            (std::set<SemanticId>{SemanticId::ip_id, SemanticId::ip_checksum}));
  EXPECT_EQ(csum_path.size_bits, 32u);
  EXPECT_EQ(csum_path.constraints.value_of("ctx.use_rss"), 0u);
  EXPECT_TRUE(csum_path.provides(SemanticId::ip_checksum));
  EXPECT_FALSE(csum_path.provides(SemanticId::rss_hash));
}

TEST(Paths, DescribeIsHumanReadable) {
  const Built b = enumerate(kFig6, "E1000e");
  const std::string description = b.paths[0].describe(b.registry);
  EXPECT_NE(description.find("rss"), std::string::npos);
  EXPECT_NE(description.find("4B"), std::string::npos);
  EXPECT_NE(description.find("ctx.use_rss"), std::string::npos);
}

TEST(Paths, InfeasibleCombinationsPruned) {
  // Independent >= conditions on one 2-bit variable: of the 8 syntactic
  // walks only 4 are feasible (monotone prefixes), like the QDMA model.
  const Built b = enumerate(R"(
      struct ctx_t { bit<2> size; }
      header m_t {
          @semantic("pkt_len") bit<16> a;
          @semantic("rss") bit<32> b;
          @semantic("timestamp") bit<64> c;
      }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              o.emit(m.a);
              if (ctx.size >= 1) { o.emit(m.b); }
              if (ctx.size >= 2) { o.emit(m.c); }
          }
      }
  )", "C");
  ASSERT_EQ(b.paths.size(), 3u);  // size=0 | size=1 | size>=2
  EXPECT_EQ(b.paths[0].size_bits, 16u + 32u + 64u);
  EXPECT_EQ(b.paths[1].size_bits, 16u + 32u);
  EXPECT_EQ(b.paths[2].size_bits, 16u);
}

TEST(Paths, WidthBoundsPruneImpossibleBranches) {
  // ctx.flag is bit<1>; the == 2 branch can never be taken.
  const Built b = enumerate(R"(
      struct ctx_t { bit<1> flag; }
      header m_t { @semantic("rss") bit<32> h; @semantic("pkt_len") bit<16> l; }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              if (ctx.flag == 2) {
                  o.emit(m.h);
              } else {
                  o.emit(m.l);
              }
          }
      }
  )", "C");
  ASSERT_EQ(b.paths.size(), 1u);
  EXPECT_TRUE(b.paths[0].provides(SemanticId::pkt_len));
}

TEST(Paths, ConstantsDecideBranchesStatically) {
  const Built b = enumerate(R"(
      const bit<8> FEATURE_ON = 1;
      struct ctx_t { bit<1> u; }
      header m_t { @semantic("rss") bit<32> h; @semantic("pkt_len") bit<16> l; }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              if (FEATURE_ON == 1) {
                  o.emit(m.h);
              } else {
                  o.emit(m.l);
              }
          }
      }
  )", "C");
  ASSERT_EQ(b.paths.size(), 1u);
  EXPECT_TRUE(b.paths[0].provides(SemanticId::rss_hash));
}

TEST(Paths, LeafCountEqualsPathCountOnIndependentBranches) {
  // k independent boolean context bits over distinct emits → 2^k paths.
  const Built b = enumerate(R"(
      struct ctx_t { bit<1> a; bit<1> b; bit<1> c; }
      header m_t {
          @semantic("rss") bit<32> f0;
          @semantic("vlan") bit<16> f1;
          @semantic("ip_id") bit<16> f2;
      }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              if (ctx.a == 1) { o.emit(m.f0); }
              if (ctx.b == 1) { o.emit(m.f1); }
              if (ctx.c == 1) { o.emit(m.f2); }
          }
      }
  )", "C");
  EXPECT_EQ(b.paths.size(), 8u);
  // All Prov sets must be distinct subsets.
  std::set<std::set<SemanticId>> provs;
  for (const CompletionPath& p : b.paths) {
    provs.insert(p.provided);
  }
  EXPECT_EQ(provs.size(), 8u);
}

TEST(Paths, PathExplosionGuard) {
  EXPECT_THROW((void)enumerate(R"(
      struct ctx_t { bit<1> a; bit<1> b; bit<1> c; }
      header m_t { @semantic("rss") bit<32> f; @semantic("vlan") bit<16> g;
                   @semantic("ip_id") bit<16> h; }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              if (ctx.a == 1) { o.emit(m.f); }
              if (ctx.b == 1) { o.emit(m.g); }
              if (ctx.c == 1) { o.emit(m.h); }
          }
      }
  )", "C", /*max_paths=*/4), Error);
}

TEST(Paths, StraightLineDeparserHasOnePath) {
  const Built b = enumerate(R"(
      struct ctx_t { bit<1> u; }
      header m_t { @semantic("pkt_len") bit<16> l; @fixed(1) bit<8> s; bit<8> e; }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { o.emit(m); }
      }
  )", "C");
  ASSERT_EQ(b.paths.size(), 1u);
  EXPECT_EQ(b.paths[0].size_bytes(), 4u);
  EXPECT_TRUE(b.paths[0].branch_trace.empty());
  EXPECT_TRUE(b.paths[0].constraints.variables().empty());
}

TEST(Paths, SampleAssignmentSteersEachPath) {
  const Built b = enumerate(kFig6, "E1000e");
  const p4::ConstEnv on = b.paths[0].constraints.sample_assignment();
  const p4::ConstEnv off = b.paths[1].constraints.sample_assignment();
  EXPECT_EQ(on.at("ctx.use_rss"), 1u);
  EXPECT_EQ(off.at("ctx.use_rss"), 0u);
}

}  // namespace
}  // namespace opendesc::core
