// Eq. 1 optimizer tests: scoring, ranking, brute-force optimality, and
// unsatisfiability detection.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/optimizer.hpp"

namespace opendesc::core {
namespace {

using softnic::SemanticId;

/// Builds a synthetic path providing the given semantics with the given
/// total size (bits split arbitrarily).
CompletionPath make_path(std::string id, std::set<SemanticId> provided,
                         std::size_t size_bits) {
  CompletionPath p;
  p.id = std::move(id);
  p.provided = std::move(provided);
  p.size_bits = size_bits;
  return p;
}

Intent make_intent(std::initializer_list<SemanticId> semantics) {
  softnic::SemanticRegistry registry;
  Intent intent;
  intent.header_name = "intent_t";
  for (const SemanticId id : semantics) {
    IntentField f;
    f.field_name = registry.name(id);
    f.semantic = id;
    f.bit_width = registry.bit_width(id);
    intent.fields.push_back(std::move(f));
  }
  return intent;
}

class OptimizerTest : public ::testing::Test {
 protected:
  softnic::SemanticRegistry registry_;
  softnic::CostTable costs_{registry_};
};

TEST_F(OptimizerTest, ScoreSumsMissingCostsAndDmaFootprint) {
  const CompletionPath p = make_path("p", {SemanticId::rss_hash}, 64);
  const Intent intent =
      make_intent({SemanticId::rss_hash, SemanticId::ip_checksum});
  OptimizerOptions options;
  options.dma_weight_per_byte = 2.0;
  const PathScore score = score_path(p, 0, intent, costs_, options);
  EXPECT_EQ(score.missing, std::set<SemanticId>{SemanticId::ip_checksum});
  EXPECT_DOUBLE_EQ(score.softnic_cost, costs_.cost(SemanticId::ip_checksum));
  EXPECT_DOUBLE_EQ(score.dma_cost, 2.0 * 8);
  EXPECT_TRUE(score.satisfiable());
}

TEST_F(OptimizerTest, Fig6CostRelationDecides) {
  // Two equal-size paths; requesting both semantics must pick the path
  // missing the *cheaper* software fallback.
  const std::vector<CompletionPath> paths = {
      make_path("rss_path", {SemanticId::rss_hash}, 32),
      make_path("csum_path", {SemanticId::ip_id, SemanticId::ip_checksum}, 32),
  };
  const Intent intent =
      make_intent({SemanticId::rss_hash, SemanticId::ip_checksum});
  const PathScore best = choose_path(paths, intent, costs_, registry_, {});
  // w(rss) < w(ip_checksum) so missing-rss (csum_path) wins.
  EXPECT_EQ(best.path_index, 1u);
}

TEST_F(OptimizerTest, RankingIsTotalAndDeterministic) {
  const std::vector<CompletionPath> paths = {
      make_path("a", {SemanticId::rss_hash}, 128),
      make_path("b", {SemanticId::rss_hash}, 32),
      make_path("c", {SemanticId::rss_hash}, 32),
  };
  const Intent intent = make_intent({SemanticId::rss_hash});
  const auto ranking = rank_paths(paths, intent, costs_, {});
  ASSERT_EQ(ranking.size(), 3u);
  // Equal cost & size for b and c: index tiebreak; a (bigger) last.
  EXPECT_EQ(ranking[0].path_index, 1u);
  EXPECT_EQ(ranking[1].path_index, 2u);
  EXPECT_EQ(ranking[2].path_index, 0u);
}

TEST_F(OptimizerTest, UnsatisfiableWhenInfiniteSemanticUnprovidedEverywhere) {
  const std::vector<CompletionPath> paths = {
      make_path("a", {SemanticId::rss_hash}, 32),
  };
  const Intent intent = make_intent({SemanticId::mark});
  try {
    (void)choose_path(paths, intent, costs_, registry_, {});
    FAIL() << "expected unsatisfiable";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::unsatisfiable);
    EXPECT_NE(std::string(e.what()).find("mark"), std::string::npos);
  }
}

TEST_F(OptimizerTest, SatisfiableWhenSomePathProvidesInfiniteSemantic) {
  const std::vector<CompletionPath> paths = {
      make_path("small", {SemanticId::rss_hash}, 32),
      make_path("with_mark", {SemanticId::mark}, 512),
  };
  const Intent intent = make_intent({SemanticId::mark});
  const PathScore best = choose_path(paths, intent, costs_, registry_, {});
  EXPECT_EQ(best.path_index, 1u);
  EXPECT_TRUE(best.satisfiable());
}

TEST_F(OptimizerTest, EmptyPathListRejected) {
  const Intent intent = make_intent({SemanticId::rss_hash});
  EXPECT_THROW((void)choose_path({}, intent, costs_, registry_, {}), Error);
}

TEST_F(OptimizerTest, CostOverrideChangesChoice) {
  const std::vector<CompletionPath> paths = {
      make_path("rss_path", {SemanticId::rss_hash}, 32),
      make_path("csum_path", {SemanticId::ip_checksum}, 32),
  };
  Intent intent = make_intent({SemanticId::rss_hash, SemanticId::ip_checksum});
  // Default: csum_path wins (software rss cheap).  Override makes software
  // rss catastrophically expensive → rss_path must win.
  intent.fields[0].cost_override = 10000.0;
  const PathScore best = choose_path(paths, intent, costs_, registry_, {});
  EXPECT_EQ(best.path_index, 0u);
  EXPECT_DOUBLE_EQ(effective_cost(intent, costs_, SemanticId::rss_hash), 10000.0);
}

TEST_F(OptimizerTest, AlphaZeroIgnoresFootprint) {
  const std::vector<CompletionPath> paths = {
      make_path("huge", {SemanticId::rss_hash, SemanticId::ip_checksum}, 4096),
      make_path("tiny", {}, 8),
  };
  const Intent intent =
      make_intent({SemanticId::rss_hash, SemanticId::ip_checksum});
  OptimizerOptions options;
  options.dma_weight_per_byte = 0.0;
  const PathScore best = choose_path(paths, intent, costs_, registry_, options);
  EXPECT_EQ(best.path_index, 0u);  // full coverage, footprint free
}

// Property: choose_path is optimal against brute force over random inputs.
class OptimizerProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerProperty, MatchesBruteForceMinimum) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 7);

  const std::vector<SemanticId> universe = {
      SemanticId::rss_hash, SemanticId::ip_checksum, SemanticId::vlan_tci,
      SemanticId::timestamp, SemanticId::flow_id, SemanticId::packet_type,
      SemanticId::pkt_len, SemanticId::mark,
  };

  for (int round = 0; round < 50; ++round) {
    // Random paths.
    std::vector<CompletionPath> paths;
    const std::size_t path_count = 1 + rng.bounded(6);
    for (std::size_t i = 0; i < path_count; ++i) {
      std::set<SemanticId> provided;
      for (const SemanticId s : universe) {
        if (rng.chance(0.4)) {
          provided.insert(s);
        }
      }
      paths.push_back(make_path("p" + std::to_string(i), std::move(provided),
                                8 * (1 + rng.bounded(64))));
    }
    // Random intent (nonempty).
    Intent intent;
    intent.header_name = "i";
    for (const SemanticId s : universe) {
      if (rng.chance(0.35)) {
        IntentField f;
        f.semantic = s;
        f.field_name = registry.name(s);
        f.bit_width = registry.bit_width(s);
        intent.fields.push_back(std::move(f));
      }
    }
    if (intent.fields.empty()) {
      continue;
    }
    OptimizerOptions options;
    options.dma_weight_per_byte = rng.uniform01() * 10.0;

    // Brute force Eq. 1.
    double best_total = softnic::kInfiniteCost;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const PathScore s = score_path(paths[i], i, intent, costs, options);
      if (s.total() < best_total) {
        best_total = s.total();
      }
    }

    if (best_total >= softnic::kInfiniteCost) {
      EXPECT_THROW((void)choose_path(paths, intent, costs, registry, options),
                   Error);
      continue;
    }
    const PathScore chosen = choose_path(paths, intent, costs, registry, options);
    EXPECT_DOUBLE_EQ(chosen.total(), best_total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace opendesc::core
