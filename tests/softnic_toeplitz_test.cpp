// Toeplitz RSS hash validated against Microsoft's published verification
// suite (the vectors every RSS-capable NIC must reproduce).
#include <gtest/gtest.h>

#include "net/headers.hpp"
#include "softnic/toeplitz.hpp"

namespace opendesc::softnic {
namespace {

using net::ipv4_from_string;

struct V4Vector {
  const char* src;
  const char* dst;
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint32_t with_ports;
  std::uint32_t ip_only;
};

// Microsoft RSS verification suite (IPv4).  Columns of the published table:
// destination address:port, source address:port; the hash input order is
// src addr, dst addr, src port, dst port.
constexpr V4Vector kV4Vectors[] = {
    {"66.9.149.187", "161.142.100.80", 2794, 1766, 0x51ccc178, 0x323e8fc2},
    {"199.92.111.2", "65.69.140.83", 14230, 4739, 0xc626b0ea, 0xd718262a},
    {"24.19.198.95", "12.22.207.184", 12898, 38024, 0x5c2b394a, 0xd2d0a5de},
    {"38.27.205.30", "209.142.163.6", 48228, 2217, 0xafc7327f, 0x82989176},
    {"153.39.163.191", "202.188.127.2", 44251, 1303, 0x10e828a2, 0x5d1809c5},
};

class ToeplitzV4 : public ::testing::TestWithParam<V4Vector> {};

TEST_P(ToeplitzV4, MatchesMicrosoftVectorWithPorts) {
  const V4Vector& v = GetParam();
  EXPECT_EQ(rss_ipv4_l4(ipv4_from_string(v.src), ipv4_from_string(v.dst),
                        v.src_port, v.dst_port),
            v.with_ports);
}

TEST_P(ToeplitzV4, MatchesMicrosoftVectorIpOnly) {
  const V4Vector& v = GetParam();
  EXPECT_EQ(rss_ipv4(ipv4_from_string(v.src), ipv4_from_string(v.dst)),
            v.ip_only);
}

INSTANTIATE_TEST_SUITE_P(MicrosoftSuite, ToeplitzV4, ::testing::ValuesIn(kV4Vectors));

TEST(Toeplitz, EmptyInputHashesToZero) {
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, {}), 0u);
}

TEST(Toeplitz, SingleBitInputSelectsKeyWindow) {
  // Input 0x80 (MSB set): the hash is the first 32 bits of the key.
  const std::uint8_t input[] = {0x80};
  const std::uint32_t first_window = (std::uint32_t{kDefaultRssKey[0]} << 24) |
                                     (std::uint32_t{kDefaultRssKey[1]} << 16) |
                                     (std::uint32_t{kDefaultRssKey[2]} << 8) |
                                     kDefaultRssKey[3];
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, input), first_window);
}

TEST(Toeplitz, LinearityUnderXor) {
  // Toeplitz hashing is linear: H(a ^ b) == H(a) ^ H(b) for equal-length
  // inputs.  This is the algebraic property RSS indirection relies on.
  const std::uint8_t a[] = {0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc};
  const std::uint8_t b[] = {0xff, 0x00, 0xf0, 0x0f, 0x55, 0xaa};
  std::uint8_t x[6];
  for (int i = 0; i < 6; ++i) {
    x[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, x),
            toeplitz_hash(kDefaultRssKey, a) ^ toeplitz_hash(kDefaultRssKey, b));
}

TEST(Toeplitz, Ipv6VectorSelfConsistency) {
  // The IPv6 helpers must agree with a manual concatenation through the raw
  // hash (cross-implementation check).
  std::array<std::uint8_t, 16> src{}, dst{};
  src[0] = 0x3f;
  src[15] = 1;
  dst[0] = 0xfe;
  dst[15] = 2;
  std::uint8_t concat[36];
  std::copy(src.begin(), src.end(), concat);
  std::copy(dst.begin(), dst.end(), concat + 16);
  concat[32] = 0x12;
  concat[33] = 0x34;
  concat[34] = 0x56;
  concat[35] = 0x78;
  EXPECT_EQ(rss_ipv6_l4(src, dst, 0x1234, 0x5678),
            toeplitz_hash(kDefaultRssKey, concat));
}

TEST(Toeplitz, DifferentTuplesAlmostAlwaysDiffer) {
  // The property the paper says users actually want from RSS: "a mash-up of
  // bits that is consistent per-connection and as different as possible
  // between connections".
  int collisions = 0;
  const std::uint32_t base = rss_ipv4_l4(0x0a000001, 0x0a000002, 1000, 80);
  for (std::uint16_t port = 1001; port < 1101; ++port) {
    if (rss_ipv4_l4(0x0a000001, 0x0a000002, port, 80) == base) {
      ++collisions;
    }
  }
  EXPECT_EQ(collisions, 0);
}

}  // namespace
}  // namespace opendesc::softnic
