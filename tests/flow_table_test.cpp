// Flow-table edge cases: bounded probe chains under crafted collisions,
// clock-LRU eviction under adversarial single-bucket traffic, idle expiry
// racing churn, bounded memory under a flow storm, and the determinism of
// the Zipf key stream.  The multi-threaded cases double as the TSan twin's
// subject: one owner thread per shard hammering record() while another
// thread snapshots stats() mid-run.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "flow/flowtable.hpp"
#include "flow/metrics.hpp"
#include "flow/zipf.hpp"
#include "net/workload.hpp"

namespace {

using namespace opendesc;
using flow::FlowKey;
using flow::FlowStats;
using flow::FlowTable;
using flow::FlowTableConfig;

/// A key that lands in `bucket` of `shard`, with `salt` making it unique.
/// bucket_for() reads the high hash half masked to the slot count and
/// shard_for() the low bits, so the salt must live above the slot bits.
FlowKey craft_key(std::size_t shard, std::size_t bucket, std::size_t slots,
                  std::uint64_t salt) {
  const std::uint64_t high = static_cast<std::uint64_t>(bucket) +
                             (salt + 1) * static_cast<std::uint64_t>(slots);
  return (high << 32) | static_cast<std::uint64_t>(shard);
}

TEST(FlowTable, RoundTripCountersAndFind) {
  FlowTable table({.shards = 1, .slots_per_shard = 64});
  const FlowKey key = craft_key(0, 5, 64, 1);
  table.record(0, key, 100, 10);
  table.record(0, key, 150, 20);
  const auto record = table.find(0, key);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->packets, 2u);
  EXPECT_EQ(record->bytes, 250u);
  EXPECT_EQ(record->last_seen_ns, 20u);

  const FlowStats stats = table.stats();
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.active, 1u);
  EXPECT_EQ(stats.tracked_packets, 2u);
  EXPECT_EQ(stats.tracked_bytes, 250u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(FlowTable, KeyZeroIsCountedNotTracked) {
  FlowTable table({.shards = 1, .slots_per_shard = 64});
  table.record(0, 0, 60, 1);
  table.record(0, 0, 60, 2);
  const FlowStats stats = table.stats();
  EXPECT_EQ(stats.keyless, 2u);
  EXPECT_EQ(stats.lookups, 0u);
  EXPECT_EQ(stats.active, 0u);
  EXPECT_FALSE(table.find(0, 0).has_value());
}

TEST(FlowTable, GeometryRoundsUpToPowersOfTwo) {
  FlowTable table({.shards = 3, .slots_per_shard = 100});
  EXPECT_EQ(table.shards(), 4u);
  EXPECT_EQ(table.slots_per_shard(), 128u);
  EXPECT_EQ(table.capacity(), 512u);
  EXPECT_EQ(table.stats().slots, 512u);
}

// Collision chains at high load factor: distinct keys aimed at one home
// bucket must coexist up to the probe window, spill into eviction past it,
// and every survivor must stay findable — the chain never exceeds the
// window, so lookup cost stays bounded no matter the load.
TEST(FlowTable, CollisionChainsStayBoundedAtHighLoad) {
  constexpr std::size_t kSlots = 64;
  constexpr std::size_t kWindow = 8;
  FlowTable table(
      {.shards = 1, .slots_per_shard = kSlots, .probe_window = kWindow});

  // Fill one bucket's window exactly: no evictions yet, all findable.
  std::vector<FlowKey> chain;
  for (std::size_t i = 0; i < kWindow; ++i) {
    chain.push_back(craft_key(0, 7, kSlots, i));
    table.record(0, chain.back(), 60, i);
  }
  EXPECT_EQ(table.stats().evicted_lru, 0u);
  for (const FlowKey key : chain) {
    EXPECT_TRUE(table.find(0, key).has_value());
  }

  // Every further distinct key in the same bucket evicts exactly one flow:
  // occupancy is pinned at the window size, memory at the fixed footprint.
  for (std::size_t i = 0; i < 100; ++i) {
    table.record(0, craft_key(0, 7, kSlots, kWindow + i), 60, kWindow + i);
  }
  const FlowStats stats = table.stats();
  EXPECT_EQ(stats.evicted_lru, 100u);
  EXPECT_EQ(stats.active, kWindow);
  EXPECT_EQ(stats.inserts, kWindow + 100u);
}

// Adversarial single-bucket traffic: with every slot in the window recently
// referenced, the clock must strip reference bits rather than fail; with
// one flow kept hot between evictions, second-chance must spare it.
TEST(FlowTable, ClockEvictionSparesHotFlow) {
  constexpr std::size_t kSlots = 64;
  constexpr std::size_t kWindow = 8;
  FlowTable table(
      {.shards = 1, .slots_per_shard = kSlots, .probe_window = kWindow});

  // Fillers claim the window from the home slot forward; the hot flow takes
  // the last probe position.  The clock scans from home, so slots ahead of
  // the hot flow are always considered first.
  for (std::size_t i = 1; i < kWindow; ++i) {
    table.record(0, craft_key(0, 3, kSlots, i), 60, i);
  }
  const FlowKey hot = craft_key(0, 3, kSlots, 0);
  table.record(0, hot, 60, 100);

  // Alternate: touch the hot flow (sets its reference bit), then insert a
  // cold key (forces an eviction).  Second chance must always recycle one
  // of the untouched cold slots and spare the hot flow.
  for (std::size_t round = 0; round < 50; ++round) {
    table.record(0, hot, 60, 1000 + round);
    table.record(0, craft_key(0, 3, kSlots, 100 + round), 60, 2000 + round);
    ASSERT_TRUE(table.find(0, hot).has_value())
        << "hot flow evicted in round " << round;
  }
  EXPECT_EQ(table.stats().evicted_lru, 50u);
  EXPECT_EQ(table.find(0, hot)->packets, 51u);
}

// With every window slot hot (all reference bits set), the second clock
// pass must still find a victim instead of refusing the insert.
TEST(FlowTable, ClockSecondPassEvictsWhenAllSlotsHot) {
  constexpr std::size_t kSlots = 32;
  constexpr std::size_t kWindow = 4;
  FlowTable table(
      {.shards = 1, .slots_per_shard = kSlots, .probe_window = kWindow});
  for (std::size_t i = 0; i < kWindow; ++i) {
    table.record(0, craft_key(0, 0, kSlots, i), 60, i);
  }
  const FlowKey fresh = craft_key(0, 0, kSlots, 99);
  table.record(0, fresh, 60, 100);
  EXPECT_TRUE(table.find(0, fresh).has_value());
  EXPECT_EQ(table.stats().evicted_lru, 1u);
  EXPECT_EQ(table.stats().active, kWindow);
}

TEST(FlowTable, IdleExpiryReclaimsColdFlows) {
  FlowTable table({.shards = 1,
                   .slots_per_shard = 64,
                   .probe_window = 8,
                   .idle_timeout_ns = 1000});
  const FlowKey cold = craft_key(0, 1, 64, 0);
  const FlowKey warm = craft_key(0, 9, 64, 1);
  table.record(0, cold, 60, 0);
  table.record(0, warm, 60, 1500);
  table.expire_idle(0, 2000);  // cold idle 2000ns > 1000, warm only 500
  EXPECT_FALSE(table.find(0, cold).has_value());
  EXPECT_TRUE(table.find(0, warm).has_value());
  const FlowStats stats = table.stats();
  EXPECT_EQ(stats.expired_idle, 1u);
  EXPECT_EQ(stats.active, 1u);
}

// Idle expiry punches holes mid-chain; later probes must keep scanning the
// whole window past the hole instead of treating it as a miss terminator.
TEST(FlowTable, ProbeScansPastExpiryHoles) {
  constexpr std::size_t kSlots = 64;
  FlowTable table({.shards = 1,
                   .slots_per_shard = kSlots,
                   .probe_window = 8,
                   .idle_timeout_ns = 100});
  const FlowKey a = craft_key(0, 4, kSlots, 0);  // lands at bucket 4
  const FlowKey b = craft_key(0, 4, kSlots, 1);  // probes to bucket 5
  table.record(0, a, 60, 0);
  table.record(0, b, 60, 0);
  table.expire_idle(0, 200);  // both idle: both holes
  // Re-record b keeping a's old home empty: b must be found on the next
  // touch (a hit, not a duplicate insert in the earlier empty slot).
  table.record(0, b, 60, 300);
  table.record(0, b, 60, 310);
  EXPECT_EQ(table.find(0, b)->packets, 2u);
  EXPECT_EQ(table.stats().inserts, 3u);  // a, b, b-after-expiry — no dupes
}

// Idle expiry vs churn: turnover traffic (fresh keys displacing idle ones)
// with the incremental sweep active must keep occupancy bounded by what is
// genuinely live, with the reclaim split between expiry and eviction.
TEST(FlowTable, ChurnWithIdleExpiryKeepsOccupancyBounded) {
  constexpr std::size_t kSlots = 256;
  FlowTable table({.shards = 1,
                   .slots_per_shard = kSlots,
                   .probe_window = 8,
                   .idle_timeout_ns = 1000,
                   .expiry_stride = 4});
  flow::ZipfFlowStream stream(
      {.seed = 7, .flow_count = 512, .skew = 0.9, .churn = 0.05});
  std::uint64_t now = 0;
  for (std::size_t i = 0; i < 20000; ++i) {
    now += 10;  // 10ns apart: a 1000ns timeout covers 100 packets of idleness
    table.record(0, stream.next(), 60, now);
  }
  const FlowStats stats = table.stats();
  EXPECT_GT(stream.churn_events(), 0u);
  EXPECT_GT(stats.expired_idle, 0u);
  EXPECT_LE(stats.active, kSlots);
  EXPECT_EQ(stats.active,
            stats.inserts - stats.evicted_lru - stats.expired_idle);
}

// Bounded memory under a storm: offered flows 16x the capacity, memory and
// occupancy must stay at the fixed construction-time footprint.
TEST(FlowTable, MemoryStaysBoundedUnderFlowStorm) {
  FlowTableConfig config{.shards = 4, .slots_per_shard = 256};
  FlowTable table(config);
  const std::size_t memory_before = table.memory_bytes();
  std::uint64_t state = 42;
  for (std::size_t i = 0; i < 16 * 1024; ++i) {
    FlowKey key = flow::splitmix64(state);
    key = key == 0 ? 1 : key;
    table.record(key, 60, i);
  }
  const FlowStats stats = table.stats();
  EXPECT_EQ(table.memory_bytes(), memory_before);
  EXPECT_EQ(stats.memory_bytes, memory_before);
  EXPECT_LE(stats.active, table.capacity());
  EXPECT_GT(stats.evicted_lru, 0u);
  // The per-flow footprint bar the bench enforces at the million-flow
  // scale holds in miniature too: slot + ref byte, over the load factor.
  EXPECT_LT(stats.bytes_per_flow(), 128.0);
}

TEST(FlowTable, StandaloneRecordShardsByLowBits) {
  FlowTable table({.shards = 4, .slots_per_shard = 64});
  const FlowKey key = craft_key(2, 0, 64, 0);  // low bits pick shard 2
  table.record(key, 60, 1);
  EXPECT_EQ(table.shard_for(key), 2u);
  EXPECT_TRUE(table.find(2, key).has_value());
  EXPECT_EQ(table.shard_stats(2).active, 1u);
  EXPECT_EQ(table.shard_stats(0).active, 0u);
}

// Zipf stream determinism: same seed, same draws, same churn decisions —
// bit-identical key sequences; different seed, different population.
TEST(ZipfStream, DeterministicUnderFixedSeed) {
  const flow::ZipfConfig config{
      .seed = 99, .flow_count = 1024, .skew = 0.99, .churn = 0.01};
  flow::ZipfFlowStream a(config);
  flow::ZipfFlowStream b(config);
  for (std::size_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
    ASSERT_EQ(a.last_rank(), b.last_rank());
  }
  EXPECT_EQ(a.churn_events(), b.churn_events());
  EXPECT_EQ(a.keys_minted(), b.keys_minted());

  flow::ZipfFlowStream other({.seed = 100, .flow_count = 1024, .skew = 0.99});
  bool any_diff = false;
  flow::ZipfFlowStream fresh(config);
  for (std::size_t i = 0; i < 100 && !any_diff; ++i) {
    any_diff = fresh.next() != other.next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(ZipfStream, SkewConcentratesOnHeadRanks) {
  flow::ZipfFlowStream stream({.seed = 5, .flow_count = 4096, .skew = 0.99});
  std::size_t head_draws = 0;
  constexpr std::size_t kDraws = 20000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    (void)stream.next();
    head_draws += stream.last_rank() < 64 ? 1 : 0;
  }
  // Zipf(0.99) over 4096 ranks puts roughly half the mass on the top 64.
  EXPECT_GT(head_draws, kDraws / 3);
  // Never the 0 sentinel.
  flow::ZipfFlowStream probe({.seed = 5, .flow_count = 16, .skew = 0.0});
  for (std::size_t i = 0; i < 1000; ++i) {
    ASSERT_NE(probe.next(), 0u);
  }
}

// Workload-level churn: the packet generator's flow_churn knob must be
// deterministic under a fixed seed and actually retire tuples.
TEST(WorkloadChurn, DeterministicTupleTurnover) {
  net::WorkloadConfig config;
  config.seed = 11;
  config.flow_count = 64;
  config.zipf_skew = 0.9;
  config.flow_churn = 0.05;
  net::WorkloadGenerator a(config);
  net::WorkloadGenerator b(config);
  for (std::size_t i = 0; i < 2000; ++i) {
    ASSERT_EQ(a.next().bytes().size(), b.next().bytes().size());
  }
  EXPECT_EQ(a.churn_events(), b.churn_events());
  EXPECT_GT(a.churn_events(), 0u);

  net::WorkloadConfig still = config;
  still.flow_churn = 0.0;
  net::WorkloadGenerator c(still);
  (void)c.batch(2000);
  EXPECT_EQ(c.churn_events(), 0u);
}

// Owner-per-shard concurrency: 4 writer threads, each hammering its own
// shard with Zipf traffic plus churn, while a reader thread snapshots
// aggregate stats mid-run.  This is the TSan twin's main course: slots are
// plain fields (single writer), counters are the only cross-thread state.
TEST(FlowTableConcurrency, ShardOwnersAndStatsReaderAreRaceFree) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kDraws = 50000;
  FlowTable table({.shards = kShards,
                   .slots_per_shard = 1024,
                   .idle_timeout_ns = 10000});
  std::vector<std::thread> owners;
  owners.reserve(kShards);
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    owners.emplace_back([&table, shard] {
      flow::ZipfFlowStream stream({.seed = 100 + shard,
                                   .flow_count = 4096,
                                   .skew = 0.99,
                                   .churn = 0.01});
      std::uint64_t now = 0;
      for (std::size_t i = 0; i < kDraws; ++i) {
        now += 13;
        table.record(shard, stream.next(), 60 + (i & 0xff), now);
      }
      table.expire_idle(shard, now + 100000);
    });
  }
  std::atomic<bool> done{false};
  std::thread reader([&table, &done] {
    std::uint64_t last_lookups = 0;
    while (!done.load(std::memory_order_acquire)) {
      const FlowStats stats = table.stats();
      EXPECT_GE(stats.lookups, last_lookups);  // counters only move forward
      last_lookups = stats.lookups;
      std::this_thread::yield();
    }
  });
  for (std::thread& t : owners) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  const FlowStats stats = table.stats();
  EXPECT_EQ(stats.lookups, kShards * kDraws);
  EXPECT_EQ(stats.active,
            stats.inserts - stats.evicted_lru - stats.expired_idle);
}

TEST(FlowMetrics, StatusRendersTenantAndShardRows) {
  FlowTable table({.shards = 2, .slots_per_shard = 64});
  table.record(0, craft_key(0, 1, 64, 0), 100, 1);
  const flow::FlowStatusEntry entries[] = {{"alpha", &table},
                                           {"beta", nullptr}};
  const std::string tsv = flow::render_flows_status(entries, /*tsv=*/true);
  EXPECT_NE(tsv.find("tenant\talpha\t1\t128"), std::string::npos);
  EXPECT_NE(tsv.find("tenant\tbeta\t0\t0"), std::string::npos);
  EXPECT_NE(tsv.find("shard\talpha\t0\t1"), std::string::npos);
  EXPECT_EQ(tsv.find("shard\tbeta"), std::string::npos);

  const std::string json = flow::render_flows_status(entries, /*tsv=*/false);
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"alpha\",\"tracked\":true"),
            std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"beta\",\"tracked\":false"),
            std::string::npos);
}

}  // namespace
