// Randomized end-to-end property tests.
//
// A generator builds random-but-valid NIC interface descriptions (nested
// conditional deparsers over random field/semantic assignments) and random
// intents; for each pair the whole pipeline must uphold its invariants:
//
//   I1  the chosen path minimizes Eq. 1 over all enumerated paths;
//   I2  the packed layout passes the verifier and its size equals Size(p*);
//   I3  serializing hardware values and reading them back through the
//       accessor yields identical values for every provided semantic;
//   I4  the facade agrees with direct ground-truth computation for every
//       requested semantic on live packets through the simulator;
//   I5  the generated C header mentions an accessor for every provided
//       requested semantic and a shim for every missing one.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/compiler.hpp"
#include "net/workload.hpp"
#include "runtime/facade.hpp"
#include "sim/nicsim.hpp"

namespace opendesc {
namespace {

using softnic::SemanticId;

/// Semantics the generator draws from (computable ones only, so I4 can
/// always verify against ground truth).
struct GenField {
  SemanticId id;
  const char* name;
  std::size_t width;
};
constexpr GenField kPool[] = {
    {SemanticId::rss_hash, "rss", 32},
    {SemanticId::ip_checksum, "ip_checksum", 16},
    {SemanticId::l4_checksum, "l4_checksum", 16},
    {SemanticId::ip_id, "ip_id", 16},
    {SemanticId::vlan_tci, "vlan", 16},
    {SemanticId::vlan_stripped, "vlan_stripped", 1},
    {SemanticId::ip_csum_ok, "ip_csum_ok", 1},
    {SemanticId::l4_csum_ok, "l4_csum_ok", 1},
    {SemanticId::flow_id, "flow_id", 32},
    {SemanticId::packet_type, "packet_type", 16},
    {SemanticId::pkt_len, "pkt_len", 16},
    {SemanticId::rss_type, "rss_type", 8},
};

/// Recursive random deparser body: blocks of emits and if/else subtrees.
class NicGenerator {
 public:
  explicit NicGenerator(Rng& rng) : rng_(rng) {}

  std::string generate() {
    // Random subset of the pool becomes the metadata header.
    field_count_ = 3 + rng_.bounded(std::size(kPool) - 3);
    std::ostringstream header;
    header << "header gen_meta_t {\n";
    for (std::size_t i = 0; i < field_count_; ++i) {
      header << "  @semantic(\"" << kPool[i].name << "\") bit<"
             << kPool[i].width << "> f" << i << ";\n";
    }
    header << "  bit<8> pad0;\n}\n";

    const std::size_t ctx_bits = 1 + rng_.bounded(3);
    std::ostringstream ctx;
    ctx << "struct gen_ctx_t {\n";
    for (std::size_t i = 0; i < ctx_bits; ++i) {
      ctx << "  bit<1> b" << i << ";\n";
    }
    ctx << "}\n";

    std::ostringstream body;
    emit_block(body, 2, ctx_bits, 3);
    // Guarantee at least one emit on every path: a common trailer.
    body << "        o.emit(m.pad0);\n";

    std::ostringstream out;
    out << ctx.str() << header.str()
        << "@nic(\"fuzznic\")\n@endian(\""
        << (rng_.chance(0.5) ? "little" : "big") << "\")\n"
        << "control GenDeparser(cmpt_out o, in gen_ctx_t ctx, in gen_meta_t m) {\n"
        << "    apply {\n"
        << body.str() << "    }\n}\n";
    return out.str();
  }

  [[nodiscard]] std::size_t field_count() const noexcept { return field_count_; }

 private:
  void emit_block(std::ostringstream& out, int depth, std::size_t ctx_bits,
                  int max_stmts) {
    const int statements = 1 + static_cast<int>(rng_.bounded(max_stmts));
    for (int i = 0; i < statements; ++i) {
      if (depth > 0 && rng_.chance(0.4)) {
        const std::size_t bit = rng_.bounded(ctx_bits);
        out << "        if (ctx.b" << bit << " == 1) {\n";
        emit_block(out, depth - 1, ctx_bits, 2);
        out << "        }";
        if (rng_.chance(0.5)) {
          out << " else {\n";
          emit_block(out, depth - 1, ctx_bits, 2);
          out << "        }";
        }
        out << "\n";
      } else {
        out << "        o.emit(m.f" << rng_.bounded(field_count_) << ");\n";
      }
    }
  }

  Rng& rng_;
  std::size_t field_count_ = 0;
};

std::string random_intent(Rng& rng, std::size_t field_count) {
  std::ostringstream out;
  out << "header fuzz_intent_t {\n";
  bool any = false;
  for (std::size_t i = 0; i < field_count; ++i) {
    if (rng.chance(0.4)) {
      out << "  @semantic(\"" << kPool[i].name << "\") bit<" << kPool[i].width
          << "> g" << i << ";\n";
      any = true;
    }
  }
  if (!any) {
    out << "  @semantic(\"" << kPool[0].name << "\") bit<" << kPool[0].width
        << "> g0;\n";
  }
  out << "}\n";
  return out.str();
}

class FuzzPipeline : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipeline, InvariantsHoldOnRandomNicsAndIntents) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003 + 17);

  for (int round = 0; round < 8; ++round) {
    NicGenerator generator(rng);
    const std::string nic_source = generator.generate();
    const std::string intent_source =
        random_intent(rng, generator.field_count());

    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    core::CompileResult result;
    try {
      result = compiler.compile(nic_source, intent_source, {});
    } catch (const Error& e) {
      ADD_FAILURE() << "compile failed on generated input: " << e.what()
                    << "\n--- nic ---\n" << nic_source << "\n--- intent ---\n"
                    << intent_source;
      continue;
    }

    // I1: optimality against brute force.
    double best = softnic::kInfiniteCost;
    for (std::size_t i = 0; i < result.paths.size(); ++i) {
      const auto score =
          core::score_path(result.paths[i], i, result.intent, costs, {});
      best = std::min(best, score.total());
    }
    EXPECT_DOUBLE_EQ(result.chosen_score().total(), best);

    // I2: verified layout of the right size.
    EXPECT_EQ(result.layout.total_bytes(), result.chosen_path().size_bytes());

    // I3: serialize/read round trip on random values.
    std::vector<std::uint64_t> values(result.layout.slices().size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = rng.next() & low_mask(result.layout.slices()[i].bit_width);
    }
    std::vector<std::uint8_t> record(result.layout.total_bytes());
    result.layout.serialize(record, values);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const auto& slice = result.layout.slices()[i];
      const std::uint64_t expect =
          slice.fixed_value ? *slice.fixed_value : values[i];
      EXPECT_EQ(result.layout.read_slice(record, i), expect);
    }

    // I4: live packets through the simulator agree with ground truth.
    softnic::ComputeEngine engine(registry);
    sim::NicSimulator nic(result.layout, engine, {});
    rt::MetadataFacade facade(result, engine);
    net::WorkloadConfig config;
    config.seed = rng.next();
    config.vlan_probability = 0.5;
    net::WorkloadGenerator gen(config);
    for (int p = 0; p < 5; ++p) {
      const net::Packet pkt = gen.next();
      ASSERT_TRUE(nic.rx(pkt));
      std::vector<sim::RxEvent> events(1);
      ASSERT_EQ(nic.poll(events), 1u);
      const rt::PacketContext pkt_ctx(events[0]);
      const net::PacketView view = net::PacketView::parse(pkt.bytes());
      softnic::RxContext hw_ctx;
      hw_ctx.rx_timestamp_ns = pkt.rx_timestamp_ns;
      for (const core::IntentField& field : result.intent.fields) {
        EXPECT_EQ(facade.fetch(pkt_ctx, field.semantic).value(),
                  engine.compute(field.semantic, pkt.bytes(), view, hw_ctx))
            << registry.name(field.semantic);
      }
      nic.advance(1);
    }

    // I5: generated header covers the split.
    for (const core::IntentField& field : result.intent.fields) {
      const std::string name = registry.name(field.semantic);
      if (result.chosen_path().provides(field.semantic)) {
        EXPECT_NE(result.c_header.find("odx_fuzznic_" + name),
                  std::string::npos)
            << name;
      } else {
        EXPECT_NE(result.c_header.find("softnic_" + name), std::string::npos)
            << name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(0, 10));

}  // namespace
}  // namespace opendesc
