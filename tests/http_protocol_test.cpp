// Protocol suite for the epoll event-loop HTTP server: keep-alive and
// pipelining, request framing limits (413/400/501), slow-peer and idle
// deadlines (408 vs silent close), POST bodies, chunked streaming
// responses, SSE event framing (/events and /timeseries?follow), and the
// authenticated POST /layout swap path — socket-free through the Router
// and end-to-end over real sockets, including a live engine swap.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "http/client.hpp"
#include "http/server.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "telemetry/health.hpp"
#include "telemetry/server.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/timeseries.hpp"

namespace opendesc {
namespace {

using http::HttpClient;
using http::HttpError;
using http::Request;
using http::Response;
using http::Router;
using http::ServerConfig;
using http::SseClient;
using http::SseEvent;

Router echo_router() {
  Router router;
  router.get("/echo", [](const Request& req) {
    Response out;
    out.body = req.method + " " + req.path;
    return out;
  });
  router.post("/echo", [](const Request& req) {
    Response out;
    out.body = "POST:" + req.body;
    return out;
  });
  router.get("/typed", [](const Request& req) {
    Response out;
    out.body = std::to_string(req.query_u64("n").value_or(0));
    return out;
  });
  return router;
}

/// Raw connected socket for hand-crafted wire bytes.
struct RawConn {
  int fd = -1;

  explicit RawConn(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    timeval tv{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() {
    if (fd >= 0) {
      ::close(fd);
    }
  }

  void send_bytes(const std::string& data) const {
    EXPECT_EQ(::send(fd, data.data(), data.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(data.size()));
  }
  /// Reads until EOF or timeout; returns whatever arrived.
  [[nodiscard]] std::string drain() const {
    std::string out;
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }
  /// Reads until `count` responses (status lines) arrived or timeout.
  [[nodiscard]] std::string read_responses(std::size_t count) const {
    std::string out;
    char buf[4096];
    while (true) {
      std::size_t seen = 0;
      std::size_t pos = 0;
      while ((pos = out.find("HTTP/1.1 ", pos)) != std::string::npos) {
        ++seen;
        pos += 9;
      }
      if (seen >= count) {
        return out;
      }
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        return out;
      }
      out.append(buf, static_cast<std::size_t>(n));
    }
  }
};

// --- keep-alive & pipelining -------------------------------------------------

TEST(KeepAlive, ManyRequestsReuseOneConnection) {
  http::HttpServer server({}, echo_router());
  server.start();
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 32; ++i) {
    const Response got = client.get("/echo");
    EXPECT_EQ(got.status, 200);
    EXPECT_EQ(got.body, "GET /echo");
  }
  EXPECT_EQ(client.reconnects(), 0u) << "keep-alive must reuse the socket";
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.requests(), 32u);
  server.stop();
}

TEST(KeepAlive, PipelinedRequestsAnswerInOrder) {
  Router router;
  router.get("/a", [](const Request&) {
    Response out;
    out.body = "alpha";
    return out;
  });
  router.get("/b", [](const Request&) {
    Response out;
    out.body = "bravo";
    return out;
  });
  http::HttpServer server({}, std::move(router));
  server.start();

  RawConn conn(server.port());
  conn.send_bytes(
      "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /b HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /a HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  const std::string wire = conn.read_responses(3);
  const std::size_t a1 = wire.find("alpha");
  const std::size_t b = wire.find("bravo");
  const std::size_t a2 = wire.find("alpha", a1 + 1);
  ASSERT_NE(a1, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(a2, std::string::npos);
  EXPECT_LT(a1, b);
  EXPECT_LT(b, a2);
  EXPECT_NE(wire.find("Connection: close"), std::string::npos);
  server.stop();
}

TEST(KeepAlive, ConnectionCloseIsHonored) {
  http::HttpServer server({}, echo_router());
  server.start();
  RawConn conn(server.port());
  conn.send_bytes("GET /echo HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  const std::string wire = conn.drain();  // server must EOF after one response
  EXPECT_NE(wire.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close"), std::string::npos);
  server.stop();
}

TEST(KeepAlive, Http10DefaultsToClose) {
  http::HttpServer server({}, echo_router());
  server.start();
  RawConn conn(server.port());
  conn.send_bytes("GET /echo HTTP/1.0\r\n\r\n");
  const std::string wire = conn.drain();
  EXPECT_NE(wire.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close"), std::string::npos);
  server.stop();
}

TEST(KeepAlive, MaxKeepaliveRequestsClosesTheConnection) {
  ServerConfig config;
  config.max_keepalive_requests = 3;
  http::HttpServer server(config, echo_router());
  server.start();
  HttpClient client("127.0.0.1", server.port());
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(client.get("/echo").status, 200);
  }
  EXPECT_GE(client.reconnects(), 1u)
      << "the server must have closed after 3 requests";
  server.stop();
}

// --- request limits & malformed input ---------------------------------------

TEST(Limits, OversizedRequestHeadAnswers413) {
  http::HttpServer server({}, echo_router());
  server.start();
  RawConn conn(server.port());
  conn.send_bytes("GET /echo?pad=" + std::string(10000, 'x') +
                  " HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string wire = conn.drain();
  EXPECT_NE(wire.find("HTTP/1.1 413"), std::string::npos);
  EXPECT_NE(wire.find("request too large"), std::string::npos);
  server.stop();
}

TEST(Limits, OversizedBodyAnswers413) {
  ServerConfig config;
  config.max_body_bytes = 128;
  http::HttpServer server(config, echo_router());
  server.start();
  RawConn conn(server.port());
  conn.send_bytes(
      "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 4096\r\n\r\n");
  const std::string wire = conn.drain();
  EXPECT_NE(wire.find("HTTP/1.1 413"), std::string::npos);
  server.stop();
}

TEST(Limits, MalformedRequestLineAnswers400) {
  http::HttpServer server({}, echo_router());
  server.start();
  RawConn conn(server.port());
  conn.send_bytes("NONSENSE\r\n\r\n");
  EXPECT_NE(conn.drain().find("HTTP/1.1 400"), std::string::npos);
  server.stop();
}

TEST(Limits, ChunkedRequestBodyAnswers501) {
  http::HttpServer server({}, echo_router());
  server.start();
  RawConn conn(server.port());
  conn.send_bytes(
      "POST /echo HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_NE(conn.drain().find("HTTP/1.1 501"), std::string::npos);
  server.stop();
}

TEST(Limits, TornHeadersReassembleAcrossArbitrarySplits) {
  http::HttpServer server({}, echo_router());
  server.start();
  const std::string request =
      "GET /echo HTTP/1.1\r\nHost: torn.example\r\nX-Filler: abcdef\r\n"
      "Connection: close\r\n\r\n";
  std::mt19937 rng(7);
  for (int round = 0; round < 8; ++round) {
    RawConn conn(server.port());
    std::size_t sent = 0;
    while (sent < request.size()) {
      std::uniform_int_distribution<std::size_t> cut(
          1, request.size() - sent);
      const std::size_t piece = cut(rng);
      conn.send_bytes(request.substr(sent, piece));
      sent += piece;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_NE(conn.drain().find("HTTP/1.1 200"), std::string::npos)
        << "round " << round;
  }
  server.stop();
}

TEST(Limits, SlowlorisPartialHeadGets408) {
  ServerConfig config;
  config.timeout_ms = 150;
  config.tick_ms = 10;
  http::HttpServer server(config, echo_router());
  server.start();
  RawConn conn(server.port());
  conn.send_bytes("GET /echo HTTP/1.1\r\nHost: dribble");  // never finishes
  const std::string wire = conn.drain();
  EXPECT_NE(wire.find("HTTP/1.1 408"), std::string::npos);
  EXPECT_NE(wire.find("request timeout"), std::string::npos);
  server.stop();
}

TEST(Limits, IdleKeepAliveClosesSilentlyAfterServing) {
  ServerConfig config;
  config.timeout_ms = 150;
  config.tick_ms = 10;
  http::HttpServer server(config, echo_router());
  server.start();
  RawConn conn(server.port());
  conn.send_bytes("GET /echo HTTP/1.1\r\nHost: x\r\n\r\n");
  const std::string wire = conn.drain();  // response, then idle-timeout EOF
  EXPECT_NE(wire.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_EQ(wire.find("HTTP/1.1 408"), std::string::npos)
      << "idle close after a served request must not claim a timeout error";
  server.stop();
}

// --- POST bodies -------------------------------------------------------------

TEST(Post, BodyIsDeliveredToTheHandler) {
  http::HttpServer server({}, echo_router());
  server.start();
  HttpClient client("127.0.0.1", server.port());
  const Response got = client.post("/echo", "{\"k\":42}");
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, "POST:{\"k\":42}");
  server.stop();
}

TEST(Post, MethodWithoutRouteAnswers405WithAllow) {
  http::HttpServer server({}, echo_router());
  server.start();
  const Response got = http::http_request("POST", "127.0.0.1", server.port(),
                                          "/typed", 2000, "x");
  EXPECT_EQ(got.status, 405);
  const auto allow = got.headers.find("allow");
  ASSERT_NE(allow, got.headers.end());
  EXPECT_NE(allow->second.find("GET"), std::string::npos);
  EXPECT_NE(got.body.find("\"method\":\"POST\""), std::string::npos);
  server.stop();
}

// --- Router unit behaviour ---------------------------------------------------

TEST(RouterTable, TypedQueryAccessorsProduce400) {
  http::HttpServer server({}, echo_router());
  server.start();
  HttpClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/typed?n=12").body, "12");
  const Response bad = client.get("/typed?n=banana");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("not an unsigned integer"), std::string::npos);
  server.stop();
}

TEST(RouterTable, UnknownPathCarriesRouteList) {
  Router router = echo_router();
  Request req;
  req.method = "GET";
  req.target = "/nope";
  req.path = "/nope";
  const Response got = router.dispatch(req);
  EXPECT_EQ(got.status, 404);
  EXPECT_NE(got.body.find("\"routes\":[\"/echo\",\"/typed\"]"),
            std::string::npos);
}

TEST(RouterTable, HttpErrorBecomesStructuredJson) {
  Router router;
  router.get("/teapot", [](const Request&) -> Response {
    throw HttpError(409, "short and stout");
  });
  Request req;
  req.method = "GET";
  req.target = "/teapot";
  req.path = "/teapot";
  const Response got = router.dispatch(req);
  EXPECT_EQ(got.status, 409);
  EXPECT_EQ(got.content_type, "application/json");
  EXPECT_NE(got.body.find("short and stout"), std::string::npos);
}

// --- chunked streaming bodies ------------------------------------------------

TEST(Streaming, FiniteProducerIsChunkedAndReassembled) {
  Router router;
  router.get("/pages", [](const Request&) {
    Response out;
    auto page = std::make_shared<int>(0);
    out.stream = [page](http::ResponseWriter& writer) {
      if (*page >= 5) {
        writer.end();
        return;
      }
      writer.write("page-" + std::to_string((*page)++) + ";");
    };
    return out;
  });
  http::HttpServer server({}, std::move(router));
  server.start();

  // The decoding client sees the reassembled body...
  HttpClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/pages").body,
            "page-0;page-1;page-2;page-3;page-4;");
  // ...and the raw wire carries chunked framing, no Content-Length.
  RawConn conn(server.port());
  conn.send_bytes("GET /pages HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  const std::string wire = conn.drain();
  EXPECT_NE(wire.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);
  EXPECT_NE(wire.find("0\r\n\r\n"), std::string::npos);
  server.stop();
}

TEST(Streaming, FullBodyMaterializesStreams) {
  Response response;
  auto n = std::make_shared<int>(0);
  response.stream = [n](http::ResponseWriter& writer) {
    if (*n >= 3) {
      writer.end();
      return;
    }
    writer.write(std::to_string((*n)++));
  };
  EXPECT_EQ(response.full_body(), "012");
}

// --- SSE ---------------------------------------------------------------------

TEST(Sse, EventsStreamsAlertTransitions) {
  telemetry::Sink sink({.queues = 1, .trace_capacity = 16});
  telemetry::TimeSeriesStore store({.tick_seconds = 0.01, .capacity = 64});
  auto& gauge = sink.registry().gauge("demo_depth", "demo gauge", {});
  telemetry::HealthEngine health(
      telemetry::parse_health_rules("deep: value(demo_depth) > 10 for 1\n"),
      store, &sink);

  telemetry::ObservabilityServer server(sink);
  server.set_health(&health);
  server.start();

  SseClient client("127.0.0.1", server.port(), "/events?max=2");
  EXPECT_EQ(client.content_type().rfind("text/event-stream", 0), 0u);
  const std::optional<SseEvent> hello = client.next(2000);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->event, "hello");

  // Drive the rule over threshold → the stream must push a firing alert.
  gauge.set(50);
  store.sample(sink.registry());
  health.evaluate();
  const std::optional<SseEvent> fired = client.next(2000);
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(fired->event, "alert");
  EXPECT_NE(fired->data.find("\"rule\":\"deep\""), std::string::npos);
  EXPECT_NE(fired->data.find("\"state\":\"firing\""), std::string::npos);

  // Back under threshold → resolved, and ?max=2 ends the stream after it.
  gauge.set(0);
  store.sample(sink.registry());
  health.evaluate();
  const std::optional<SseEvent> resolved = client.next(2000);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->event, "alert");
  EXPECT_NE(resolved->data.find("\"state\":\"resolved\""), std::string::npos);
  EXPECT_FALSE(client.next(500).has_value()) << "stream must end at max=2";
  server.stop();
}

TEST(Sse, EventsWithoutHealthEngineSaysDisabledAndEnds) {
  telemetry::Sink sink({.queues = 1, .trace_capacity = 16});
  telemetry::ObservabilityServer server(sink);
  server.start();
  SseClient client("127.0.0.1", server.port(), "/events");
  const std::optional<SseEvent> hello = client.next(2000);
  ASSERT_TRUE(hello.has_value());
  EXPECT_NE(hello->data.find("\"enabled\":false"), std::string::npos);
  EXPECT_FALSE(client.next(500).has_value());
  server.stop();
}

TEST(Sse, TimeseriesFollowTailsSamplerTicks) {
  telemetry::Sink sink({.queues = 1, .trace_capacity = 16});
  telemetry::TimeSeriesStore store({.tick_seconds = 0.01, .capacity = 64});
  auto& counter = sink.registry().counter("demo_total", "demo", {});
  counter.add(5);
  store.sample(sink.registry());

  telemetry::ObservabilityServer server(sink);
  server.set_timeseries(&store);
  server.start();

  // Follow without a metric is a 400 at the route layer.
  const Response bad =
      http::http_get("127.0.0.1", server.port(), "/timeseries?follow");
  EXPECT_EQ(bad.status, 400);

  SseClient client("127.0.0.1", server.port(),
                   "/timeseries?metric=demo_total&follow&count=2");
  const std::optional<SseEvent> hello = client.next(2000);
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->event, "hello");
  const std::optional<SseEvent> first = client.next(2000);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->event, "tick");
  EXPECT_NE(first->data.find("\"metric\":\"demo_total\""), std::string::npos);

  // Advance the store → the follower must push a fresh tick event.
  counter.add(7);
  store.sample(sink.registry());
  const std::optional<SseEvent> second = client.next(2000);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->event, "tick");
  EXPECT_FALSE(client.next(500).has_value()) << "count=2 must end the stream";
  server.stop();
}

// --- HttpClient framing & reconnection ---------------------------------------

/// Minimal scripted origin: accepts connections, reads a request head, then
/// plays back pre-canned wire segments (with optional pauses between them)
/// and closes.  Lets the tests exercise client-side framing paths the real
/// server never produces — EOF-delimited bodies and torn chunk trailers.
class ScriptedOrigin {
 public:
  explicit ScriptedOrigin(std::vector<std::pair<std::string, int>> script)
      : script_(std::move(script)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 1), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serve(); });
  }
  ~ScriptedOrigin() {
    stop_.store(true);
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  void serve() {
    while (!stop_.load()) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) {
        return;  // listener closed by the destructor
      }
      // Read the request head; the scripts never need the bytes.
      std::string head;
      char buf[2048];
      while (head.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(conn, buf, sizeof(buf), 0);
        if (n <= 0) {
          break;
        }
        head.append(buf, static_cast<std::size_t>(n));
      }
      for (const auto& [bytes, pause_ms] : script_) {
        if (pause_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
        }
        (void)::send(conn, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      }
      ::close(conn);  // every scripted exchange ends in a server close
    }
  }

  std::vector<std::pair<std::string, int>> script_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(HttpClientFraming, ReconnectsOnceWhenTheServerClosesBetweenRequests) {
  ServerConfig config;
  config.max_keepalive_requests = 1;  // every response carries Connection: close
  http::HttpServer server(config, echo_router());
  server.start();
  HttpClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.get("/echo").status, 200);
  // The server closed after the first exchange; the second request must
  // transparently re-establish the connection exactly once and succeed.
  EXPECT_EQ(client.get("/echo").status, 200);
  EXPECT_EQ(client.reconnects(), 1u);
  EXPECT_EQ(client.requests(), 2u);
  server.stop();
}

TEST(HttpClientFraming, EofDelimitedBodyIsFramedByTheClose) {
  // No Content-Length, not chunked: the body runs to connection close.
  ScriptedOrigin origin({{"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
                          "Connection: close\r\n\r\nhello ",
                          0},
                         {"eof world", 20}});
  HttpClient client("127.0.0.1", origin.port());
  const Response got = client.get("/anything");
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, "hello eof world");
  EXPECT_FALSE(client.connected()) << "close-framed response ends the socket";
}

TEST(HttpClientFraming, TornChunkedTrailerReassembles) {
  // The terminal "0\r\n\r\n" arrives split across three writes with pauses;
  // the client must keep reading rather than surface a truncated body.
  ScriptedOrigin origin({{"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
                          "Transfer-Encoding: chunked\r\n\r\n",
                          0},
                         {"5\r\nhello\r\n", 10},
                         {"6\r\n world\r\n0", 20},
                         {"\r\n", 20},
                         {"\r\n", 20}});
  HttpClient client("127.0.0.1", origin.port());
  const Response got = client.get("/anything");
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, "hello world");
}

// --- /spans?follow over a live socket ----------------------------------------

TEST(Sse, SpansFollowStreamsRetainedSpansAndSurvivesClientTeardown) {
  telemetry::Sink sink({.queues = 1, .trace_capacity = 16});
  // Pre-populate the worker ring: the follower's watermark starts at zero,
  // so retained history is replayed into the first spans event.
  sink.span_ring(0).record(telemetry::SpanStage::ring, 0xABCD, 100.0, 10.0);
  sink.span_ring(0).record(telemetry::SpanStage::validate, 0xABCD, 120.0, 5.0);
  telemetry::ObservabilityServer server(sink);
  server.start();
  {
    SseClient client("127.0.0.1", server.port(), "/spans?follow");
    EXPECT_EQ(client.content_type().rfind("text/event-stream", 0), 0u);
    const std::optional<SseEvent> hello = client.next(2000);
    ASSERT_TRUE(hello.has_value());
    EXPECT_EQ(hello->event, "hello");
    EXPECT_NE(hello->data.find("\"stream\":\"spans\""), std::string::npos);
    const std::optional<SseEvent> spans = client.next(2000);
    ASSERT_TRUE(spans.has_value());
    EXPECT_EQ(spans->event, "spans");
    EXPECT_NE(spans->data.find("000000000000abcd"), std::string::npos);
    EXPECT_FALSE(client.ended());
    // Scope exit tears the client down mid-stream (abrupt close).
  }
  // The server must shrug off the dropped follower and keep serving.
  const Response after =
      http::http_get("127.0.0.1", server.port(), "/spans?limit=1");
  EXPECT_EQ(after.status, 200);
  server.stop();
}

TEST(Sse, EndedDistinguishesServerEndFromTimeout) {
  telemetry::Sink sink({.queues = 1, .trace_capacity = 16});
  sink.span_ring(0).record(telemetry::SpanStage::consume, 0x77, 10.0, 1.0);
  telemetry::ObservabilityServer server(sink);
  server.start();

  // count=1 ends the stream after one spans event: nullopt with ended().
  SseClient finite("127.0.0.1", server.port(), "/spans?follow&count=1");
  ASSERT_TRUE(finite.next(2000).has_value());  // hello
  ASSERT_TRUE(finite.next(2000).has_value());  // the replayed spans event
  EXPECT_FALSE(finite.next(2000).has_value());
  EXPECT_TRUE(finite.ended()) << "count=1 must end the stream server-side";

  // An open stream with nothing new is a timeout: nullopt without ended().
  SseClient open("127.0.0.1", server.port(), "/spans?follow");
  ASSERT_TRUE(open.next(2000).has_value());  // hello
  ASSERT_TRUE(open.next(2000).has_value());  // replayed history
  EXPECT_FALSE(open.next(200).has_value());
  EXPECT_FALSE(open.ended()) << "a quiet stream is a timeout, not an end";
  server.stop();
}

// --- POST /layout ------------------------------------------------------------

TEST(PostLayout, AuthMatrixSocketFree) {
  telemetry::Sink sink({.queues = 1, .trace_capacity = 16});
  telemetry::ObservabilityServer server(sink);

  Request post;
  post.method = "POST";
  post.target = "/layout";
  post.path = "/layout";

  // No swap handler installed: forbidden.
  EXPECT_EQ(server.handle(post).status, 403);

  server.set_swap(
      [](const Request&) {
        Response out;
        out.status = 202;
        out.body = "{\"queued\":true}";
        return out;
      },
      "sekrit");
  // Wrong/missing token: unauthorized, with the auth scheme advertised.
  const Response denied = server.handle(post);
  EXPECT_EQ(denied.status, 401);
  EXPECT_EQ(denied.headers.at("WWW-Authenticate"), "Bearer");
  post.headers["authorization"] = "Bearer wrong";
  EXPECT_EQ(server.handle(post).status, 401);
  // Right token: the handler runs.
  post.headers["authorization"] = "Bearer sekrit";
  EXPECT_EQ(server.handle(post).status, 202);
  // GET /layout is untouched by the guard.
  Request get_status;
  get_status.method = "GET";
  get_status.target = "/layout";
  get_status.path = "/layout";
  EXPECT_EQ(server.handle(get_status).status, 200);
}

struct SwapEngine : ::testing::Test {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs{registry};
  core::Compiler compiler{registry, costs};
  softnic::ComputeEngine compute{registry};
  core::CompileResult result{compiler.compile(
      nic::NicCatalog::by_name("ice").p4_source(),
      R"(header i_t {
          @semantic("rss")     bit<32> h;
          @semantic("pkt_len") bit<16> l;
      })",
      {})};

  [[nodiscard]] std::vector<net::Packet> trace(std::size_t n) const {
    net::WorkloadConfig config;
    config.seed = 11;
    net::WorkloadGenerator gen(config);
    return gen.batch(n);
  }
};

TEST_F(SwapEngine, PostLayoutQueuesALiveSwap) {
  rt::EngineConfig config = rt::EngineConfig{}
                                .with_queues(2)
                                .with_server("127.0.0.1:0")
                                .with_swap_token("hunter2");
  engine::MultiQueueEngine engine(result, compute, config);
  ASSERT_NE(engine.server(), nullptr);
  const std::uint16_t port = engine.server()->port();

  // No cycle installed yet: the authenticated request answers 409.
  const Response no_cycle = http::http_request(
      "POST", "127.0.0.1", port, "/layout", 2000, "{\"target\":\"next\"}",
      {{"Authorization", "Bearer hunter2"}});
  EXPECT_EQ(no_cycle.status, 409);

  auto alt = std::make_shared<core::CompileResult>(compiler.compile(
      nic::NicCatalog::by_name("ice").p4_source(),
      R"(header i_t { @semantic("pkt_len") bit<16> l; })", {}));
  engine.set_swap_cycle({alt});

  // Bad token stays locked out even with a cycle.
  EXPECT_EQ(http::http_request("POST", "127.0.0.1", port, "/layout", 2000,
                               "{}", {{"Authorization", "Bearer wrong"}})
                .status,
            401);
  // Out-of-range index is a 400.
  EXPECT_EQ(http::http_request("POST", "127.0.0.1", port, "/layout", 2000,
                               "{\"target\":7}",
                               {{"Authorization", "Bearer hunter2"}})
                .status,
            400);

  const Response queued = http::http_request(
      "POST", "127.0.0.1", port, "/layout", 2000,
      "{\"target\":\"next\",\"at_offered\":0}",
      {{"Authorization", "Bearer hunter2"}});
  EXPECT_EQ(queued.status, 202);
  EXPECT_NE(queued.body.find("\"queued\":true"), std::string::npos);

  // The queued order applies on the next run: the epoch advances.
  const engine::EngineReport report = engine.run(trace(2000));
  EXPECT_EQ(report.total.packets, 2000u);
  EXPECT_GE(engine.epochs().current_epoch(), 2u)
      << "POST /layout swap must have committed during the run";
}

// --- server lifecycle under the event loop -----------------------------------

TEST(EventLoop, ManyConcurrentKeepAliveClients) {
  http::HttpServer server({}, echo_router());
  server.start();
  constexpr int kThreads = 8;
  constexpr int kRequests = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      HttpClient client("127.0.0.1", server.port());
      for (int i = 0; i < kRequests; ++i) {
        if (client.get("/echo").status != 200) {
          failures.fetch_add(1);
        }
      }
      if (client.reconnects() != 0) {
        failures.fetch_add(1000);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.requests_served(), kThreads * kRequests);
  server.stop();
}

TEST(EventLoop, StopTerminatesLiveStreams) {
  telemetry::Sink sink({.queues = 1, .trace_capacity = 16});
  telemetry::TimeSeriesStore store({.tick_seconds = 0.01, .capacity = 16});
  telemetry::HealthEngine health(
      telemetry::parse_health_rules("r: value(demo) > 1 for 1\n"), store,
      &sink);
  auto server = std::make_unique<telemetry::ObservabilityServer>(sink);
  server->set_health(&health);
  server->start();
  SseClient client("127.0.0.1", server->port(), "/events");
  ASSERT_TRUE(client.next(2000).has_value());  // hello
  // stop() with a live SSE connection open must not hang or crash.
  server->stop();
  (void)client.next(500);
  server.reset();
}

}  // namespace
}  // namespace opendesc
