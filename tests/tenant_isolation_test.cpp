// Multi-tenant plane: N intents against one NIC description, one isolated
// engine per tenant, one shared observability surface — and the isolation
// guarantee pinned down numerically: a fault storm inside one tenant must
// not dent another tenant's goodput (< 1% delta; here exactly 0) or evict
// its flows.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "flow/tenant.hpp"
#include "nic/model.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/sink.hpp"

namespace {

using namespace opendesc;

constexpr const char* kIntentA = R"(header tenant_a_t {
  @semantic("rss")     bit<32> hash;
  @semantic("pkt_len") bit<16> len;
})";

constexpr const char* kIntentB = R"(header tenant_b_t {
  @semantic("rss")       bit<32> hash;
  @semantic("timestamp") bit<64> ts;
  @semantic("pkt_len")   bit<16> len;
})";

net::WorkloadConfig base_workload() {
  net::WorkloadConfig workload;
  workload.seed = 21;
  workload.flow_count = 256;
  workload.zipf_skew = 0.9;
  workload.vlan_probability = 0.5;
  return workload;
}

rt::TenantSpec make_spec(const std::string& name, const char* intent,
                         double fault_rate) {
  rt::TenantSpec spec;
  spec.name = name;
  spec.intent = intent;
  spec.engine = rt::EngineConfig{}
                    .with_queues(2)
                    .with_guard(true)
                    .with_flows(2048);
  if (fault_rate > 0.0) {
    spec.engine.with_fault_rate(fault_rate, 7);
  }
  return spec;
}

TEST(TenantCompile, DistinctIntentsShareOneFrontEnd) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  const core::Compiler compiler(registry, costs);
  const std::string intents[] = {kIntentA, kIntentB};
  const std::vector<core::CompileResult> results = compiler.compile_intents(
      nic::NicCatalog::by_name("mlx5").p4_source(), {intents, 2}, {});
  ASSERT_EQ(results.size(), 2u);
  // Same description, different intents: each tenant's compilation carries
  // its own requested-semantics set (B adds the timestamp).
  EXPECT_EQ(results[0].nic_name, results[1].nic_name);
  EXPECT_NE(results[0].intent.requested(), results[1].intent.requested());
  EXPECT_GT(results[0].layout.total_bytes(), 0u);
  EXPECT_GT(results[1].layout.total_bytes(), 0u);
}

TEST(TenantCompile, BadTenantIntentThrows) {
  const std::vector<rt::TenantSpec> specs = {
      make_spec("good", kIntentA, 0.0),
      make_spec("bad", "header broken_t {", 0.0)};
  EXPECT_THROW(flow::TenantPlane(nic::NicCatalog::by_name("mlx5").p4_source(),
                                 specs),
               Error);
}

TEST(TenantPlane, RunsTenantsAndPublishesLabelledFamilies) {
  std::vector<rt::TenantSpec> specs = {make_spec("alpha", kIntentA, 0.0),
                                       make_spec("beta", kIntentB, 0.0)};
  flow::TenantPlane plane(nic::NicCatalog::by_name("mlx5").p4_source(),
                          std::move(specs));
  const auto results = plane.run(4000, base_workload());
  ASSERT_EQ(results.size(), 2u);
  for (const flow::TenantResult& r : results) {
    EXPECT_EQ(r.report.total.packets, 4000u);
    EXPECT_GT(r.flows.active, 0u);
    EXPECT_EQ(r.flows.shards, 2u);
  }
  // Decorrelated workload seeds: the two tenants did not see one trace.
  EXPECT_NE(results[0].report.total.value_checksum,
            results[1].report.total.value_checksum);
  // Each tenant's own compilation rode through to its wire layout.
  EXPECT_EQ(results[0].chosen_path, plane.compilation(0).chosen_path().id);
  EXPECT_EQ(results[1].chosen_path, plane.compilation(1).chosen_path().id);
  EXPECT_GT(results[0].record_bytes, 0u);

  const std::string scrape = telemetry::to_prometheus(plane.sink().registry());
  EXPECT_NE(scrape.find("opendesc_tenant_goodput_packets_total{tenant=\"alpha\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("opendesc_tenant_goodput_packets_total{tenant=\"beta\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("opendesc_flow_active{tenant=\"alpha\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("opendesc_flow_inserts_total{tenant=\"beta\"}"),
            std::string::npos);

  const std::string tsv = plane.flows_status(/*tsv=*/true);
  EXPECT_NE(tsv.find("tenant\talpha"), std::string::npos);
  EXPECT_NE(tsv.find("tenant\tbeta"), std::string::npos);
  EXPECT_NE(tsv.find("shard\tbeta\t1"), std::string::npos);
}

// The isolation bar.  Tenant runs are fully deterministic (per-tenant seeds
// for workload and faults), so the cleanest form of "< 1% goodput delta" is
// exact: every datapath number tenant `clean` produces must be identical
// whether its neighbour is storming or not.
TEST(TenantPlane, FaultStormInOneTenantDoesNotTouchAnother) {
  const std::string nic = nic::NicCatalog::by_name("mlx5").p4_source();
  const auto run_pair = [&](double storm_rate) {
    std::vector<rt::TenantSpec> specs = {
        make_spec("storm", kIntentA, storm_rate),
        make_spec("clean", kIntentB, 0.0)};
    flow::TenantPlane plane(nic, std::move(specs));
    return plane.run(6000, base_workload());
  };

  const auto baseline = run_pair(0.0);
  const auto stormy = run_pair(0.05);

  // The storm really happened: tenant 0 took recoveries/quarantines.
  EXPECT_GT(stormy[0].report.total.quarantined +
                stormy[0].report.total.softnic_recovered +
                stormy[0].report.total.lost_completions,
            0u);
  EXPECT_EQ(baseline[0].report.total.quarantined, 0u);

  // And its neighbour never felt it.
  const engine::EngineReport& clean_base = baseline[1].report;
  const engine::EngineReport& clean_stormy = stormy[1].report;
  EXPECT_EQ(clean_stormy.total.packets, clean_base.total.packets);
  EXPECT_EQ(clean_stormy.total.quarantined, 0u);
  EXPECT_EQ(clean_stormy.total.value_checksum, clean_base.total.value_checksum);
  const double goodput_base =
      clean_base.total.delivery_ratio(clean_base.offered_total);
  const double goodput_stormy =
      clean_stormy.total.delivery_ratio(clean_stormy.offered_total);
  EXPECT_LT(std::abs(goodput_base - goodput_stormy), 0.01);
  EXPECT_GE(goodput_stormy, 0.99);

  // No cross-tenant flow eviction: the clean tenant's table is untouched by
  // the storm — identical occupancy, inserts and evictions either way.
  EXPECT_EQ(stormy[1].flows.active, baseline[1].flows.active);
  EXPECT_EQ(stormy[1].flows.inserts, baseline[1].flows.inserts);
  EXPECT_EQ(stormy[1].flows.evicted_lru, baseline[1].flows.evicted_lru);
  EXPECT_EQ(stormy[1].flows.expired_idle, baseline[1].flows.expired_idle);
}

// Per-tenant SLO rules: each tenant's engine carries its own health engine,
// so a rule armed for one tenant evaluates against that tenant's registry
// only.
TEST(TenantPlane, PerTenantHealthRulesAttach) {
  std::vector<rt::TenantSpec> specs = {make_spec("watched", kIntentA, 0.0),
                                       make_spec("plain", kIntentB, 0.0)};
  specs[0].engine
      .with_health_rules(
          "goodput_floor: rate(opendesc_rx_packets_total[1s]) < 1\n")
      .with_monitor(true);
  flow::TenantPlane plane(nic::NicCatalog::by_name("mlx5").p4_source(),
                          std::move(specs));
  (void)plane.run(2000, base_workload());
  ASSERT_NE(plane.tenant_engine(0).health(), nullptr);
  EXPECT_EQ(plane.tenant_engine(0).health()->rules(), 1u);
  EXPECT_EQ(plane.tenant_engine(1).health(), nullptr);
}

// An external sink supplied via the plane config is used as-is (the CLI's
// --metrics-out path), and zero-state registration happens at construction
// so a pre-run scrape already carries every tenant's families.
TEST(TenantPlane, ExternalSinkCarriesZeroStateFamilies) {
  telemetry::Sink sink({.queues = 1});
  flow::TenantPlaneConfig config;
  config.sink = &sink;
  std::vector<rt::TenantSpec> specs = {make_spec("early", kIntentA, 0.0)};
  flow::TenantPlane plane(nic::NicCatalog::by_name("mlx5").p4_source(),
                          std::move(specs), config);
  EXPECT_EQ(&plane.sink(), &sink);
  const std::string scrape = telemetry::to_prometheus(sink.registry());
  EXPECT_NE(scrape.find("opendesc_tenant_offered_packets_total{tenant=\"early\"} 0"),
            std::string::npos);
  EXPECT_NE(scrape.find("opendesc_flow_memory_bytes{tenant=\"early\"}"),
            std::string::npos);
}

}  // namespace
