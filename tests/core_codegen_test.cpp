// Code generation tests: the emitted C must (a) textually contain the right
// accessors and (b) *behave* identically to the runtime accessors — verified
// by compiling the generated header with the system C compiler and running
// it against records serialized by the layout.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/codegen.hpp"
#include "core/layout.hpp"

namespace opendesc::core {
namespace {

using softnic::SemanticId;

FieldSlice slice(std::string name, std::optional<SemanticId> semantic,
                 std::size_t width) {
  FieldSlice s;
  s.name = std::move(name);
  s.semantic = semantic;
  s.bit_width = width;
  return s;
}

CompiledLayout sample_layout(Endian endian) {
  return pack_layout("testnic", "path0", endian,
                     {slice("len", SemanticId::pkt_len, 16),
                      slice("flags", std::nullopt, 5),
                      slice("ok", SemanticId::ip_csum_ok, 1),
                      slice("pad", std::nullopt, 2),
                      slice("hash", SemanticId::rss_hash, 32),
                      slice("ts", SemanticId::timestamp, 64)});
}

TEST(Codegen, CHeaderStructure) {
  softnic::SemanticRegistry registry;
  CodegenOptions options;
  options.prefix = "odx_test";
  const std::vector<SoftNicShim> shims = {
      {SemanticId::vlan_tci, "vlan", 5.0}};
  const std::string header =
      generate_c_header(sample_layout(Endian::little), shims, registry, options);

  EXPECT_NE(header.find("#define ODX_TEST_CMPT_SIZE 15u"), std::string::npos);
  EXPECT_NE(header.find("static inline uint16_t odx_test_pkt_len"), std::string::npos);
  EXPECT_NE(header.find("static inline uint8_t odx_test_ip_csum_ok"), std::string::npos);
  EXPECT_NE(header.find("static inline uint32_t odx_test_rss"), std::string::npos);
  EXPECT_NE(header.find("static inline uint64_t odx_test_timestamp"), std::string::npos);
  // Raw (non-semantic) fields still get accessors by field name.
  EXPECT_NE(header.find("odx_test_flags"), std::string::npos);
  // Shim extern declared with its cost documented.
  EXPECT_NE(header.find("odx_test_softnic_vlan"), std::string::npos);
  EXPECT_NE(header.find("5 ns/pkt"), std::string::npos);
}

TEST(Codegen, XdpHeaderBoundsChecks) {
  softnic::SemanticRegistry registry;
  const std::string header =
      generate_xdp_header(sample_layout(Endian::big), {}, registry, {});
  EXPECT_NE(header.find("const void *data, const void *data_end"), std::string::npos);
  EXPECT_NE(header.find("return -1"), std::string::npos);
  EXPECT_NE(header.find("__always_inline"), std::string::npos);
  // Every accessor checks against data_end before reading.
  std::size_t accessors = 0, checks = 0, pos = 0;
  while ((pos = header.find("static __always_inline int ", pos)) != std::string::npos) {
    ++accessors;
    pos += 1;
  }
  pos = 0;
  while ((pos = header.find("> data_end", pos)) != std::string::npos) {
    ++checks;
    pos += 1;
  }
  EXPECT_EQ(accessors, 6u);
  EXPECT_EQ(checks, accessors);
}

TEST(Codegen, ManifestIsStable) {
  softnic::SemanticRegistry registry;
  const std::vector<SoftNicShim> shims = {{SemanticId::vlan_tci, "vlan", 5.0}};
  const std::string manifest =
      generate_manifest(sample_layout(Endian::little), shims, registry);
  EXPECT_NE(manifest.find("nic testnic"), std::string::npos);
  EXPECT_NE(manifest.find("size_bytes 15"), std::string::npos);
  EXPECT_NE(manifest.find("endian little"), std::string::npos);
  EXPECT_NE(manifest.find("field name=hash semantic=rss byte=3 bit=0 width=32"),
            std::string::npos);
  EXPECT_NE(manifest.find("shim semantic=vlan cost_ns=5"), std::string::npos);
}

/// Compiles the generated C header together with a main() that reads fields
/// from a serialized record and prints them; compares against the layout's
/// own read().  This closes the loop: generated code == runtime semantics.
class CompiledCodegenTest : public ::testing::TestWithParam<Endian> {};

TEST_P(CompiledCodegenTest, GeneratedAccessorsMatchRuntimeReads) {
  const Endian endian = GetParam();
  softnic::SemanticRegistry registry;
  const CompiledLayout layout = sample_layout(endian);

  // Serialize a record with distinctive values.
  const std::vector<std::uint64_t> values = {0x1234, 0x15, 1, 2, 0xcafebabe,
                                             0x1122334455667788ULL};
  std::vector<std::uint8_t> record(layout.total_bytes());
  layout.serialize(record, values);

  const std::string dir = ::testing::TempDir();
  const std::string tag = endian == Endian::little ? "le" : "be";
  const std::string header_path = dir + "/odx_gen_" + tag + ".h";
  const std::string main_path = dir + "/odx_main_" + tag + ".c";
  const std::string bin_path = dir + "/odx_gen_test_" + tag;

  CodegenOptions options;
  options.prefix = "odx_gen";
  std::ofstream(header_path) << generate_c_header(layout, {}, registry, options);

  std::ostringstream main_src;
  main_src << "#include <stdio.h>\n#include \"odx_gen_" << tag << ".h\"\n"
           << "static const uint8_t record[] = {";
  for (std::size_t i = 0; i < record.size(); ++i) {
    main_src << (i ? "," : "") << static_cast<unsigned>(record[i]);
  }
  main_src << "};\nint main(void) {\n"
           << "  printf(\"%llu %llu %llu %llu %llu %llu\\n\",\n"
           << "    (unsigned long long)odx_gen_pkt_len(record),\n"
           << "    (unsigned long long)odx_gen_flags(record),\n"
           << "    (unsigned long long)odx_gen_ip_csum_ok(record),\n"
           << "    (unsigned long long)odx_gen_pad(record),\n"
           << "    (unsigned long long)odx_gen_rss(record),\n"
           << "    (unsigned long long)odx_gen_timestamp(record));\n"
           << "  return 0;\n}\n";
  std::ofstream(main_path) << main_src.str();

  const std::string compile = "cc -std=c11 -Wall -Werror -O2 -o " + bin_path +
                              " " + main_path + " 2>/dev/null";
  if (std::system(compile.c_str()) != 0) {
    GTEST_SKIP() << "no working C compiler available";
  }
  FILE* out = popen((bin_path + " 2>/dev/null").c_str(), "r");
  ASSERT_NE(out, nullptr);
  unsigned long long got[6] = {};
  const int scanned = fscanf(out, "%llu %llu %llu %llu %llu %llu", &got[0],
                             &got[1], &got[2], &got[3], &got[4], &got[5]);
  pclose(out);
  ASSERT_EQ(scanned, 6);

  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(got[i], layout.read_slice(record, i)) << "slice " << i;
    EXPECT_EQ(got[i], values[i]) << "slice " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(BothEndians, CompiledCodegenTest,
                         ::testing::Values(Endian::little, Endian::big));

}  // namespace
}  // namespace opendesc::core
