// Header serialize/parse round trips and the packet builder/view pipeline.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/packet.hpp"

namespace opendesc::net {
namespace {

TEST(Headers, EthernetRoundTrip) {
  EthernetHeader h;
  h.src = make_mac(0x02, 0x11, 0x22, 0x33, 0x44, 0x55);
  h.dst = make_mac(0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee);
  h.ethertype = kEthertypeIpv6;

  std::uint8_t buf[EthernetHeader::kWireSize];
  h.serialize(buf);
  const EthernetHeader parsed = EthernetHeader::parse(buf);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_EQ(parsed.ethertype, kEthertypeIpv6);
  EXPECT_EQ(parsed.src.to_string(), "02:11:22:33:44:55");
}

TEST(Headers, VlanTagFields) {
  VlanTag tag;
  tag.tci = (5u << 13) | 123;  // PCP 5, VID 123
  std::uint8_t buf[VlanTag::kWireSize];
  tag.serialize(buf);
  const VlanTag parsed = VlanTag::parse(buf);
  EXPECT_EQ(parsed.vid(), 123);
  EXPECT_EQ(parsed.pcp(), 5);
}

TEST(Headers, Ipv4RoundTripAndVersionCheck) {
  Ipv4Header ip;
  ip.total_length = 1234;
  ip.identification = 42;
  ip.ttl = 17;
  ip.protocol = kIpProtoUdp;
  ip.src = ipv4_from_string("10.1.2.3");
  ip.dst = ipv4_from_string("192.168.0.1");

  std::uint8_t buf[Ipv4Header::kWireSize];
  ip.serialize(buf);
  const Ipv4Header parsed = Ipv4Header::parse(buf);
  EXPECT_EQ(parsed.total_length, 1234);
  EXPECT_EQ(parsed.identification, 42);
  EXPECT_EQ(parsed.ttl, 17);
  EXPECT_EQ(parsed.protocol, kIpProtoUdp);
  EXPECT_EQ(ipv4_to_string(parsed.src), "10.1.2.3");
  EXPECT_EQ(ipv4_to_string(parsed.dst), "192.168.0.1");

  buf[0] = 0x65;  // version 6 in an IPv4 parse
  EXPECT_THROW((void)Ipv4Header::parse(buf), std::invalid_argument);
}

TEST(Headers, Ipv6RoundTrip) {
  Ipv6Header ip;
  ip.flow_label = 0xABCDE;
  ip.payload_length = 99;
  ip.next_header = kIpProtoTcp;
  ip.src[15] = 1;
  ip.dst[0] = 0xfe;

  std::uint8_t buf[Ipv6Header::kWireSize];
  ip.serialize(buf);
  const Ipv6Header parsed = Ipv6Header::parse(buf);
  EXPECT_EQ(parsed.flow_label, 0xABCDEu);
  EXPECT_EQ(parsed.payload_length, 99);
  EXPECT_EQ(parsed.src[15], 1);
  EXPECT_EQ(parsed.dst[0], 0xfe);
}

TEST(Headers, TcpUdpRoundTrip) {
  TcpHeader tcp;
  tcp.src_port = 12345;
  tcp.dst_port = 80;
  tcp.seq = 0xdeadbeef;
  std::uint8_t tbuf[TcpHeader::kWireSize];
  tcp.serialize(tbuf);
  const TcpHeader tparsed = TcpHeader::parse(tbuf);
  EXPECT_EQ(tparsed.src_port, 12345);
  EXPECT_EQ(tparsed.dst_port, 80);
  EXPECT_EQ(tparsed.seq, 0xdeadbeefu);

  UdpHeader udp;
  udp.src_port = 53;
  udp.dst_port = 5353;
  udp.length = 20;
  std::uint8_t ubuf[UdpHeader::kWireSize];
  udp.serialize(ubuf);
  const UdpHeader uparsed = UdpHeader::parse(ubuf);
  EXPECT_EQ(uparsed.src_port, 53);
  EXPECT_EQ(uparsed.dst_port, 5353);
  EXPECT_EQ(uparsed.length, 20);
}

TEST(Headers, TruncatedBuffersRejected) {
  std::uint8_t small[4] = {};
  EXPECT_THROW((void)EthernetHeader::parse(small), std::out_of_range);
  EXPECT_THROW((void)Ipv4Header::parse(small), std::out_of_range);
  EXPECT_THROW((void)TcpHeader::parse(small), std::out_of_range);
}

TEST(Headers, BadDottedQuadRejected) {
  EXPECT_THROW((void)ipv4_from_string("300.0.0.1"), std::invalid_argument);
  EXPECT_THROW((void)ipv4_from_string("1.2.3"), std::invalid_argument);
  EXPECT_THROW((void)ipv4_from_string("a.b.c.d"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PacketBuilder + PacketView
// ---------------------------------------------------------------------------

TEST(Packet, BuildAndParseTcpIpv4) {
  const Packet pkt = PacketBuilder()
                         .eth(make_mac(2, 0, 0, 0, 0, 1), make_mac(2, 0, 0, 0, 0, 2))
                         .ipv4(ipv4_from_string("10.0.0.1"),
                               ipv4_from_string("10.0.0.2"))
                         .ip_id(777)
                         .tcp(1111, 80)
                         .payload_text("hello")
                         .rx_timestamp(123456)
                         .build();

  const PacketView view = PacketView::parse(pkt.bytes());
  EXPECT_EQ(view.l3_kind(), L3Kind::ipv4);
  EXPECT_EQ(view.l4_kind(), L4Kind::tcp);
  EXPECT_EQ(view.src_port(), 1111);
  EXPECT_EQ(view.dst_port(), 80);
  EXPECT_EQ(view.ipv4().identification, 777);
  EXPECT_FALSE(view.has_vlan());
  EXPECT_EQ(view.payload().size(), 5u);
  EXPECT_EQ(pkt.rx_timestamp_ns, 123456u);

  // The builder must emit valid checksums.
  EXPECT_TRUE(verify_checksum(view.l3_bytes()));
  const auto l4 = view.l4_bytes();
  EXPECT_EQ(l4_checksum_ipv4(view.ipv4().src, view.ipv4().dst, kIpProtoTcp, l4), 0);
}

TEST(Packet, BuildVlanTagged) {
  const Packet pkt = PacketBuilder()
                         .eth(make_mac(2, 0, 0, 0, 0, 1), make_mac(2, 0, 0, 0, 0, 2))
                         .vlan(100)
                         .ipv4(1, 2)
                         .udp(53, 53)
                         .frame_size(100)
                         .build();
  EXPECT_EQ(pkt.size(), 100u);
  const PacketView view = PacketView::parse(pkt.bytes());
  ASSERT_TRUE(view.has_vlan());
  EXPECT_EQ(view.vlan().vid(), 100);
  EXPECT_EQ(view.l4_kind(), L4Kind::udp);
}

TEST(Packet, BuildIpv6Udp) {
  std::array<std::uint8_t, 16> src{}, dst{};
  src[15] = 1;
  dst[15] = 2;
  const Packet pkt = PacketBuilder()
                         .eth(make_mac(2, 0, 0, 0, 0, 1), make_mac(2, 0, 0, 0, 0, 2))
                         .ipv6(src, dst)
                         .udp(1000, 2000)
                         .payload_text("x")
                         .build();
  const PacketView view = PacketView::parse(pkt.bytes());
  EXPECT_EQ(view.l3_kind(), L3Kind::ipv6);
  EXPECT_EQ(view.l4_kind(), L4Kind::udp);
  // UDP checksum over the IPv6 pseudo-header must validate.
  EXPECT_EQ(l4_checksum_ipv6(view.ipv6().src, view.ipv6().dst, kIpProtoUdp,
                             view.l4_bytes()),
            0);
}

TEST(Packet, CorruptedChecksumsAreDetectable) {
  const Packet good = PacketBuilder()
                          .eth(make_mac(2, 0, 0, 0, 0, 1), make_mac(2, 0, 0, 0, 0, 2))
                          .ipv4(1, 2)
                          .tcp(1, 2)
                          .build();
  const Packet bad_ip = PacketBuilder()
                            .eth(make_mac(2, 0, 0, 0, 0, 1), make_mac(2, 0, 0, 0, 0, 2))
                            .ipv4(1, 2)
                            .tcp(1, 2)
                            .corrupt_ip_checksum()
                            .build();
  EXPECT_TRUE(verify_checksum(PacketView::parse(good.bytes()).l3_bytes()));
  EXPECT_FALSE(verify_checksum(PacketView::parse(bad_ip.bytes()).l3_bytes()));
}

TEST(Packet, FrameSizePadsAndTruncates) {
  PacketBuilder b;
  b.eth(make_mac(2, 0, 0, 0, 0, 1), make_mac(2, 0, 0, 0, 0, 2))
      .ipv4(1, 2)
      .udp(1, 2)
      .payload_text("0123456789");
  EXPECT_EQ(b.frame_size(200).build().size(), 200u);
  // Headers are 14+20+8 = 42; payload truncated to fit 45.
  EXPECT_EQ(b.frame_size(45).build().size(), 45u);
  EXPECT_THROW((void)b.frame_size(10).build(), std::invalid_argument);
}

TEST(Packet, BuilderRequiresLayers) {
  PacketBuilder b;
  EXPECT_THROW((void)b.build(), std::logic_error);
}

TEST(Packet, NonIpFrameParsesAsOpaque) {
  // ARP ethertype: PacketView treats everything after Ethernet as payload.
  std::vector<std::uint8_t> frame(64, 0);
  EthernetHeader eth;
  eth.ethertype = 0x0806;
  eth.serialize(frame);
  const PacketView view = PacketView::parse(frame);
  EXPECT_EQ(view.l3_kind(), L3Kind::none);
  EXPECT_EQ(view.l4_kind(), L4Kind::none);
  EXPECT_EQ(view.payload().size(), 64u - EthernetHeader::kWireSize);
}

}  // namespace
}  // namespace opendesc::net
