// Reference semantics implementations: ground truth the whole system
// (simulated hardware AND software fallback) agrees on.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/workload.hpp"
#include "softnic/compute.hpp"
#include "softnic/cost.hpp"
#include "softnic/toeplitz.hpp"

namespace opendesc::softnic {
namespace {

using net::PacketBuilder;
using net::PacketView;

class ComputeTest : public ::testing::Test {
 protected:
  static net::Packet make_packet() {
    return PacketBuilder()
        .eth(net::make_mac(2, 0, 0, 0, 0, 1), net::make_mac(2, 0, 0, 0, 0, 2))
        .vlan(42)
        .ipv4(net::ipv4_from_string("10.0.0.1"), net::ipv4_from_string("10.0.0.2"))
        .ip_id(1234)
        .tcp(1000, 80)
        .payload_text("GET key-000007\n")
        .rx_timestamp(5555)
        .build();
  }

  SemanticRegistry registry_;
  ComputeEngine engine_{registry_};
  RxContext ctx_{.queue_id = 3, .seq_no = 17, .mark = 0xAB,
                 .lro_segments = 2, .rx_timestamp_ns = 5555};
};

TEST_F(ComputeTest, BuiltinSemanticsMatchDirectComputation) {
  const net::Packet pkt = make_packet();
  const PacketView view = PacketView::parse(pkt.bytes());
  const auto value = [&](SemanticId id) {
    return engine_.compute(id, pkt.bytes(), view, ctx_);
  };

  EXPECT_EQ(value(SemanticId::rss_hash),
            rss_ipv4_l4(view.ipv4().src, view.ipv4().dst, 1000, 80));
  EXPECT_EQ(value(SemanticId::rss_type), 2u);  // v4 + ports
  EXPECT_EQ(value(SemanticId::ip_csum_ok), 1u);
  EXPECT_EQ(value(SemanticId::l4_csum_ok), 1u);
  EXPECT_EQ(value(SemanticId::ip_id), 1234u);
  EXPECT_EQ(value(SemanticId::vlan_tci), 42u);
  EXPECT_EQ(value(SemanticId::vlan_stripped), 1u);
  EXPECT_EQ(value(SemanticId::timestamp), 5555u);
  EXPECT_EQ(value(SemanticId::packet_type), (1u << 8) | (1u << 4) | 1u);
  EXPECT_EQ(value(SemanticId::pkt_len), pkt.size());
  EXPECT_EQ(value(SemanticId::queue_id), 3u);
  EXPECT_EQ(value(SemanticId::seq_no), 17u);
  EXPECT_NE(value(SemanticId::flow_id), 0u);
  EXPECT_NE(value(SemanticId::kv_key_hash), 0u);
}

TEST_F(ComputeTest, IpChecksumValueIsTheCorrectOne) {
  // The ip_checksum semantic equals the checksum actually stored by the
  // builder (the correct one), so a NIC emitting it lets the host skip the
  // computation.
  const net::Packet pkt = make_packet();
  const PacketView view = PacketView::parse(pkt.bytes());
  const std::uint64_t computed =
      engine_.compute(SemanticId::ip_checksum, pkt.bytes(), view, ctx_);
  EXPECT_EQ(computed, view.ipv4().header_checksum);
}

TEST_F(ComputeTest, ChecksumStatusReflectsCorruption) {
  const net::Packet bad = PacketBuilder()
                              .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                                   net::make_mac(2, 0, 0, 0, 0, 2))
                              .ipv4(1, 2)
                              .udp(5, 6)
                              .corrupt_l4_checksum()
                              .build();
  const PacketView view = PacketView::parse(bad.bytes());
  EXPECT_EQ(engine_.compute(SemanticId::l4_csum_ok, bad.bytes(), view, ctx_), 0u);
  EXPECT_EQ(engine_.compute(SemanticId::ip_csum_ok, bad.bytes(), view, ctx_), 1u);
}

TEST_F(ComputeTest, KvKeyHashMatchesFnvOfKey) {
  const net::Packet pkt = make_packet();
  const PacketView view = PacketView::parse(pkt.bytes());
  const std::string key = "key-000007";
  const std::uint32_t expected = fnv1a32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
  EXPECT_EQ(engine_.compute(SemanticId::kv_key_hash, pkt.bytes(), view, ctx_),
            expected);
}

TEST_F(ComputeTest, NicStateSemanticsThrowInSoftwareButResolveInHardware) {
  const net::Packet pkt = make_packet();
  const PacketView view = PacketView::parse(pkt.bytes());
  EXPECT_FALSE(engine_.can_compute(SemanticId::mark));
  EXPECT_FALSE(engine_.can_compute(SemanticId::lro_seg_count));
  EXPECT_THROW((void)engine_.compute(SemanticId::mark, pkt.bytes(), view, ctx_),
               Error);
  EXPECT_EQ(engine_.hardware_value(SemanticId::mark, pkt.bytes(), view, ctx_),
            0xABu);
  EXPECT_EQ(
      engine_.hardware_value(SemanticId::lro_seg_count, pkt.bytes(), view, ctx_),
      2u);
}

TEST_F(ComputeTest, CustomSemanticInstallsAndComputes) {
  const SemanticId id =
      registry_.register_extension("payload_first_byte", 8, "test extension");
  EXPECT_FALSE(engine_.can_compute(id));
  engine_.set_custom(id, [](std::span<const std::uint8_t>,
                            const PacketView& view, const RxContext&) {
    return view.payload().empty() ? std::uint64_t{0}
                                  : std::uint64_t{view.payload()[0]};
  });
  EXPECT_TRUE(engine_.can_compute(id));
  const net::Packet pkt = make_packet();
  const PacketView view = PacketView::parse(pkt.bytes());
  EXPECT_EQ(engine_.compute(id, pkt.bytes(), view, ctx_), 'G');
}

TEST_F(ComputeTest, VlanSemanticsZeroOnUntaggedTraffic) {
  const net::Packet pkt = PacketBuilder()
                              .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                                   net::make_mac(2, 0, 0, 0, 0, 2))
                              .ipv4(1, 2)
                              .udp(5, 6)
                              .build();
  const PacketView view = PacketView::parse(pkt.bytes());
  EXPECT_EQ(engine_.compute(SemanticId::vlan_tci, pkt.bytes(), view, ctx_), 0u);
  EXPECT_EQ(engine_.compute(SemanticId::vlan_stripped, pkt.bytes(), view, ctx_), 0u);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, BuiltinsResolvableByName) {
  SemanticRegistry registry;
  EXPECT_EQ(registry.find("rss"), SemanticId::rss_hash);
  EXPECT_EQ(registry.find("vlan"), SemanticId::vlan_tci);
  EXPECT_EQ(registry.find("no_such_semantic"), std::nullopt);
  EXPECT_EQ(registry.bit_width(SemanticId::rss_hash), 32u);
  EXPECT_EQ(registry.bit_width(SemanticId::timestamp), 64u);
  EXPECT_EQ(registry.all().size(), kBuiltinSemanticCount);
}

TEST(Registry, ExtensionRegistration) {
  SemanticRegistry registry;
  const SemanticId id = registry.register_extension("crypto_ctx", 48, "AES tag");
  EXPECT_GE(raw(id), kFirstExtensionId);
  EXPECT_EQ(registry.find("crypto_ctx"), id);
  EXPECT_EQ(registry.bit_width(id), 48u);
  EXPECT_THROW((void)registry.register_extension("crypto_ctx", 48, "dup"), Error);
  EXPECT_THROW((void)registry.register_extension("too_wide", 65, ""), Error);
  EXPECT_THROW((void)registry.register_extension("zero", 0, ""), Error);
}

TEST(Registry, UnknownIdThrows) {
  SemanticRegistry registry;
  EXPECT_THROW((void)registry.info(static_cast<SemanticId>(555)), Error);
}

// ---------------------------------------------------------------------------
// Cost table
// ---------------------------------------------------------------------------

TEST(CostTable, DefaultsEncodeThePapersOrdering) {
  SemanticRegistry registry;
  CostTable costs(registry);
  // "software rss is cheaper than recomputing the csum" (§4) — the relation
  // the Fig. 6 selection depends on.
  EXPECT_LT(costs.cost(SemanticId::rss_hash), costs.cost(SemanticId::ip_checksum));
  EXPECT_LT(costs.cost(SemanticId::rss_hash), costs.cost(SemanticId::l4_checksum));
  EXPECT_FALSE(costs.is_finite(SemanticId::mark));
  EXPECT_FALSE(costs.is_finite(SemanticId::lro_seg_count));
}

TEST(CostTable, OverrideAndExtensionDefaults) {
  SemanticRegistry registry;
  const SemanticId ext = registry.register_extension("my_thing", 32, "");
  CostTable costs(registry);
  EXPECT_FALSE(costs.is_finite(ext));  // extensions default to infinity
  costs.set(ext, 12.5);
  EXPECT_DOUBLE_EQ(costs.cost(ext), 12.5);
}

TEST(CostTable, MeasureProducesFinitePositiveCosts) {
  SemanticRegistry registry;
  CostTable costs(registry);
  ComputeEngine engine(registry);
  net::WorkloadConfig config;
  config.flow_count = 4;
  net::WorkloadGenerator gen(config);
  const std::vector<net::Packet> samples = gen.batch(64);
  costs.measure(engine, samples);
  for (const SemanticInfo& info : registry.all()) {
    if (info.name.starts_with("tx_")) {
      continue;  // TX semantics: cost = host offload price, not RX compute
    }
    if (!engine.can_compute(info.id)) {
      EXPECT_FALSE(costs.is_finite(info.id)) << info.name;
      continue;
    }
    EXPECT_TRUE(costs.is_finite(info.id)) << info.name;
    EXPECT_GT(costs.cost(info.id), 0.0) << info.name;
  }
  // Relative ordering survives measurement: checksum over the payload is
  // costlier than a header-field read.
  EXPECT_GT(costs.cost(SemanticId::l4_checksum), costs.cost(SemanticId::ip_id));
}

}  // namespace
}  // namespace opendesc::softnic
