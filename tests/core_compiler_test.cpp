// End-to-end tests of the Compiler facade: the §4 pipeline from NIC
// description + intent to chosen layout and generated stubs, including the
// paper's Fig. 6 running example.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "nic/model.hpp"

namespace opendesc {
namespace {

using softnic::SemanticId;

/// Fixture providing a fresh registry/cost-table/compiler per test.
class CompilerTest : public ::testing::Test {
 protected:
  softnic::SemanticRegistry registry_;
  softnic::CostTable costs_{registry_};
  core::Compiler compiler_{registry_, costs_};
};

constexpr const char* kRssCsumIntent = R"P4(
header intent_t {
    @semantic("rss")         bit<32> rss_val;
    @semantic("ip_checksum") bit<16> csum;
}
)P4";

// --- Fig. 6: e1000e path selection ----------------------------------------

TEST_F(CompilerTest, Fig6_E1000e_PrefersCsumBranchWhenBothRequested) {
  // With Req = {rss, ip_checksum} and w(rss) < w(ip_checksum) (software RSS
  // over the 12-byte tuple is cheaper than recomputing the checksum), the
  // compiler must select the (ip_id, csum) branch and fall back to software
  // RSS — the paper's running example.
  const nic::NicModel& nic = nic::NicCatalog::by_name("e1000e");
  const auto result =
      compiler_.compile(nic.p4_source(), kRssCsumIntent, {});

  EXPECT_EQ(result.paths.size(), 2u);
  const auto& chosen = result.chosen_path();
  EXPECT_TRUE(chosen.provides(SemanticId::ip_checksum));
  EXPECT_FALSE(chosen.provides(SemanticId::rss_hash));

  ASSERT_EQ(result.shims.size(), 1u);
  EXPECT_EQ(result.shims[0].semantic, SemanticId::rss_hash);

  // The context steering: use_rss must be 0 on the chosen path.
  const auto it = result.context_assignment.find("ctx.use_rss");
  ASSERT_NE(it, result.context_assignment.end());
  EXPECT_EQ(it->second, 0u);
}

TEST_F(CompilerTest, Fig6_E1000e_PrefersRssBranchWhenCsumCheap) {
  // Flip the cost relation via @cost overrides: now software csum is cheap
  // and software rss expensive, so the rss branch must win.
  constexpr const char* kFlipped = R"P4(
header intent_t {
    @semantic("rss")   @cost(500) bit<32> rss_val;
    @semantic("ip_checksum") @cost(1) bit<16> csum;
}
)P4";
  const nic::NicModel& nic = nic::NicCatalog::by_name("e1000e");
  const auto result = compiler_.compile(nic.p4_source(), kFlipped, {});
  EXPECT_TRUE(result.chosen_path().provides(SemanticId::rss_hash));
  EXPECT_FALSE(result.chosen_path().provides(SemanticId::ip_checksum));
}

// --- Catalog sanity ---------------------------------------------------------

TEST_F(CompilerTest, CatalogPathCountsMatchDeviceClasses) {
  // e1000: 1 path; e1000e: 2 (Fig. 6); ixgbe: 3; mlx5: 4 formats;
  // qdma: 4 sizes (the paper: "two in e1000, many formats for MLX5, one per
  // installed queue in fully-programmable cards").
  const std::map<std::string, std::size_t> expected = {
      {"dumbnic", 1}, {"e1000", 1}, {"e1000e", 2}, {"ixgbe", 3},
      {"mlx5", 4},    {"bf3", 3},   {"ice", 3},   {"qdma", 4},
  };
  for (const auto& [name, count] : expected) {
    const nic::NicModel& nic = nic::NicCatalog::by_name(name);
    const auto result = compiler_.compile(
        nic.p4_source(), "header i_t { @semantic(\"pkt_len\") bit<16> l; }", {});
    EXPECT_EQ(result.paths.size(), count) << "NIC " << name;
  }
}

TEST_F(CompilerTest, Mlx5FullCqeIs64BytesAndProvides12Semantics) {
  const nic::NicModel& nic = nic::NicCatalog::by_name("mlx5");
  // lro_seg_count has no software fallback (w = ∞), so only the full CQE
  // satisfies this intent; requesting the timestamp picks the ts variant.
  constexpr const char* kIntent = R"P4(
header intent_t {
    @semantic("timestamp")     bit<64> ts;
    @semantic("rss")           bit<32> hash;
    @semantic("lro_seg_count") bit<8>  lro;
}
)P4";
  const auto result = compiler_.compile(nic.p4_source(), kIntent, {});
  EXPECT_EQ(result.layout.total_bytes(), 64u);
  EXPECT_EQ(result.chosen_path().provided.size(), 12u);
  EXPECT_EQ(result.layout.endian(), Endian::big);
}

TEST_F(CompilerTest, QdmaSelectsSmallestCompletionCoveringIntent) {
  const nic::NicModel& nic = nic::NicCatalog::by_name("qdma");
  // pkt_len only → 8B format.
  {
    const auto result = compiler_.compile(
        nic.p4_source(), "header i_t { @semantic(\"pkt_len\") bit<16> l; }", {});
    EXPECT_EQ(result.layout.total_bytes(), 8u);
  }
  // + rss → 16B format.
  {
    constexpr const char* kIntent = R"P4(
header i_t {
    @semantic("pkt_len") bit<16> l;
    @semantic("rss")     bit<32> h;
}
)P4";
    const auto result = compiler_.compile(nic.p4_source(), kIntent, {});
    EXPECT_EQ(result.layout.total_bytes(), 16u);
  }
  // + kv_key_hash (accelerator result) → 32B format.
  {
    constexpr const char* kIntent = R"P4(
header i_t {
    @semantic("pkt_len")     bit<16> l;
    @semantic("kv_key_hash") bit<32> k;
}
)P4";
    const auto result = compiler_.compile(nic.p4_source(), kIntent, {});
    EXPECT_EQ(result.layout.total_bytes(), 32u);
  }
}

TEST_F(CompilerTest, UnsatisfiableIntentIsRejected) {
  // `mark` has w = ∞ (NIC match-action state) and the e1000 cannot provide
  // it: Eq. 1 must reject the program as unsatisfiable.
  const nic::NicModel& nic = nic::NicCatalog::by_name("e1000");
  constexpr const char* kIntent = R"P4(
header i_t {
    @semantic("mark") bit<32> m;
}
)P4";
  try {
    (void)compiler_.compile(nic.p4_source(), kIntent, {});
    FAIL() << "expected Error(unsatisfiable)";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::unsatisfiable);
    EXPECT_NE(std::string(e.what()).find("mark"), std::string::npos);
  }
}

TEST_F(CompilerTest, MarkRequestSelectsBf3FlexOrQdma64) {
  // The same `mark` intent is satisfiable on bf3 (flex format provides it).
  const nic::NicModel& nic = nic::NicCatalog::by_name("bf3");
  constexpr const char* kIntent = R"P4(
header i_t {
    @semantic("mark") bit<32> m;
}
)P4";
  const auto result = compiler_.compile(nic.p4_source(), kIntent, {});
  EXPECT_TRUE(result.chosen_path().provides(SemanticId::mark));
  // The flex format (16B) beats the full CQE on DMA footprint.
  EXPECT_EQ(result.layout.total_bytes(), 16u);
  EXPECT_TRUE(result.shims.empty());
}

TEST_F(CompilerTest, GeneratedHeadersMentionEveryProvidedSemantic) {
  const nic::NicModel& nic = nic::NicCatalog::by_name("e1000e");
  const auto result = compiler_.compile(nic.p4_source(), kRssCsumIntent, {});
  EXPECT_NE(result.c_header.find("odx_e1000e_ip_checksum"), std::string::npos);
  EXPECT_NE(result.c_header.find("ODX_E1000E_CMPT_SIZE"), std::string::npos);
  EXPECT_NE(result.xdp_header.find("data_end"), std::string::npos);
  EXPECT_NE(result.manifest.find("semantic=ip_checksum"), std::string::npos);
  // The shim for software RSS must be declared.
  EXPECT_NE(result.c_header.find("softnic_rss"), std::string::npos);
}

TEST_F(CompilerTest, DmaWeightSteersSelectionTowardSmallerCompletions) {
  // On qdma with a pkt_len+rss intent, a huge α should still pick 16B (the
  // smallest covering format), but with rss dropped if software rss is
  // cheaper than 8 extra DMA bytes: α=1000 → 8B + software rss wins.
  const nic::NicModel& nic = nic::NicCatalog::by_name("qdma");
  constexpr const char* kIntent = R"P4(
header i_t {
    @semantic("pkt_len") bit<16> l;
    @semantic("rss")     bit<32> h;
}
)P4";
  core::CompileOptions options;
  options.dma_weight_per_byte = 1000.0;
  const auto result = compiler_.compile(nic.p4_source(), kIntent, options);
  EXPECT_EQ(result.layout.total_bytes(), 8u);
  ASSERT_EQ(result.shims.size(), 1u);
  EXPECT_EQ(result.shims[0].semantic, SemanticId::rss_hash);
}

TEST_F(CompilerTest, AutoRegistersUnknownSemanticsFromIntent) {
  const nic::NicModel& nic = nic::NicCatalog::by_name("qdma");
  constexpr const char* kIntent = R"P4(
header i_t {
    @semantic("pkt_len")    bit<16> l;
    @semantic("my_feature") bit<32> f;
}
)P4";
  // my_feature is unknown: auto-registered as an extension, but it has no
  // software fallback and no NIC path provides it → unsatisfiable.
  EXPECT_THROW((void)compiler_.compile(nic.p4_source(), kIntent, {}), Error);
  EXPECT_TRUE(registry_.find("my_feature").has_value());
}

}  // namespace
}  // namespace opendesc
