// Control-channel tests: the host programs a CompileResult's context
// assignment through MMIO-style registers and the NIC walks the matching
// deparser path — including runtime reconfiguration (the "evolvable" part
// of the paper's title).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "runtime/facade.hpp"
#include "sim/ctrlchan.hpp"

namespace opendesc::sim {
namespace {

using softnic::SemanticId;

struct Loaded {
  std::vector<core::CompletionPath> paths;
  Endian endian = Endian::little;
};

Loaded load_paths(const std::string& nic_name,
                  softnic::SemanticRegistry& registry) {
  const nic::NicModel& model = nic::NicCatalog::by_name(nic_name);
  const core::Cfg cfg =
      core::build_cfg(model.program(), model.types(), model.deparser(), registry);
  core::PathEnumOptions options;
  options.consts = model.types().constants();
  options.variable_bounds =
      core::context_bounds(model.program(), model.types(), model.deparser());
  Loaded loaded;
  loaded.paths = core::enumerate_paths(cfg, options);
  loaded.endian = core::deparser_endian(model.deparser());
  return loaded;
}

TEST(ControlChannel, ProgrammedRegistersSelectTheCompiledPath) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const nic::NicModel& model = nic::NicCatalog::by_name("e1000e");
  const auto result = compiler.compile(
      model.p4_source(),
      R"(header i_t { @semantic("rss") bit<32> h; @semantic("ip_checksum") bit<16> c; })",
      {});

  softnic::ComputeEngine engine(registry);
  const Loaded loaded = load_paths("e1000e", registry);
  ProgrammableNic nic("e1000e", loaded.paths, loaded.endian, engine);

  // Drive the control channel with what the compiler said.
  nic.program(result.context_assignment);
  EXPECT_EQ(nic.active_path_id(), result.chosen_path().id);
  EXPECT_EQ(nic.active_layout().total_bytes(), result.layout.total_bytes());

  // Live packets come back in exactly the compiled layout.
  net::WorkloadConfig config;
  net::WorkloadGenerator gen(config);
  const net::Packet pkt = gen.next();
  ASSERT_TRUE(nic.rx(pkt));
  std::vector<RxEvent> events(1);
  ASSERT_EQ(nic.poll(events), 1u);
  EXPECT_EQ(events[0].record.size(), result.layout.total_bytes());
  const net::PacketView view = net::PacketView::parse(pkt.bytes());
  softnic::RxContext hw_ctx;
  hw_ctx.rx_timestamp_ns = pkt.rx_timestamp_ns;
  EXPECT_EQ(result.layout.read(events[0].record, SemanticId::ip_checksum),
            engine.compute(SemanticId::ip_checksum, pkt.bytes(), view, hw_ctx));
  nic.advance(1);
}

TEST(ControlChannel, RuntimeReconfigurationSwitchesLayouts) {
  // The "evolvable" flow: the same device serves the rss format, is
  // quiesced, reprogrammed, and then serves the csum format — no driver
  // rebuild, just new registers + the other generated accessor set.
  softnic::SemanticRegistry registry;
  softnic::ComputeEngine engine(registry);
  const Loaded loaded = load_paths("e1000e", registry);
  ProgrammableNic nic("e1000e", loaded.paths, loaded.endian, engine);

  nic.write_register("ctx.use_rss", 1);
  EXPECT_EQ(nic.active_path_id(), "path0");
  const core::CompiledLayout rss_layout = nic.active_layout();
  EXPECT_NE(rss_layout.find(SemanticId::rss_hash), nullptr);
  EXPECT_EQ(rss_layout.find(SemanticId::ip_checksum), nullptr);

  net::WorkloadConfig config;
  net::WorkloadGenerator gen(config);
  ASSERT_TRUE(nic.rx(gen.next()));
  std::vector<RxEvent> events(1);

  // Reprogramming with pending completions is rejected (quiesce first).
  EXPECT_THROW(nic.write_register("ctx.use_rss", 0), Error);
  nic.advance(nic.poll(events));
  nic.write_register("ctx.use_rss", 0);
  EXPECT_EQ(nic.active_path_id(), "path1");
  EXPECT_NE(nic.active_layout().find(SemanticId::ip_checksum), nullptr);

  ASSERT_TRUE(nic.rx(gen.next()));
  ASSERT_EQ(nic.poll(events), 1u);
  // The record now carries the checksum at the csum layout's offsets.
  const net::Packet probe = gen.next();
  (void)probe;
  EXPECT_EQ(events[0].record.size(), nic.active_layout().total_bytes());
  nic.advance(1);
}

TEST(ControlChannel, QdmaSizeRegisterSelectsAmongFourFormats) {
  softnic::SemanticRegistry registry;
  softnic::ComputeEngine engine(registry);
  const Loaded loaded = load_paths("qdma", registry);
  ASSERT_EQ(loaded.paths.size(), 4u);
  ProgrammableNic nic("qdma", loaded.paths, loaded.endian, engine);

  const std::size_t expected_bytes[] = {8, 16, 32, 64};
  for (std::uint64_t size_reg = 0; size_reg < 4; ++size_reg) {
    nic.write_register("ctx.cmpt_size", size_reg);
    EXPECT_EQ(nic.active_layout().total_bytes(), expected_bytes[size_reg])
        << "cmpt_size=" << size_reg;
  }
}

TEST(ControlChannel, MisprogrammedRegistersRejected) {
  softnic::SemanticRegistry registry;
  softnic::ComputeEngine engine(registry);
  const Loaded loaded = load_paths("mlx5", registry);
  ProgrammableNic nic("mlx5", loaded.paths, loaded.endian, engine);

  // cqe_comp=1 selects a mini format only once mini_format disambiguates;
  // with mini_format defaulting to 0 the hash mini-CQE is unique, but an
  // out-of-range register value matches nothing.
  nic.write_register("ctx.cqe_comp", 1);
  nic.write_register("ctx.mini_format", 0);
  EXPECT_EQ(nic.active_layout().total_bytes(), 8u);

  nic.write_register("ctx.cqe_comp", 7);  // no path allows 7 (bit<1> domain)
  EXPECT_THROW((void)nic.active_layout(), Error);
  net::WorkloadConfig config;
  net::WorkloadGenerator gen(config);
  EXPECT_THROW((void)nic.rx(gen.next()), Error);
}

TEST(ControlChannel, SingleLayoutDeviceNeedsNoProgramming) {
  softnic::SemanticRegistry registry;
  softnic::ComputeEngine engine(registry);
  const Loaded loaded = load_paths("e1000", registry);
  ProgrammableNic nic("e1000", loaded.paths, loaded.endian, engine);
  // Zero registers already select the single path.
  EXPECT_EQ(nic.active_layout().total_bytes(), 8u);
}

}  // namespace
}  // namespace opendesc::sim
