// Stateful/extern descriptive constructs (§5): registers and externs parse,
// type-check, survive the print-parse fixpoint, and are visible to
// interface reports — but never influence layout selection ("used only as a
// descriptive mechanism and ... not mapped to hardware resources").
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "p4/parser.hpp"
#include "p4/pretty.hpp"
#include "p4/typecheck.hpp"

namespace opendesc::p4 {
namespace {

constexpr const char* kStatefulNic = R"(
// A NIC whose description declares stateful offload context and an extern
// accelerator — descriptive only.
register<bit<32>>(1024) flow_state;
register<bit<64>>(256) conn_timestamps;
extern AesGcmEngine;
extern RegexMatcher { bit<32> match(bit<32> rule_set); }

struct st_ctx_t { bit<1> rich; }
header st_meta_t {
    @semantic("pkt_len") bit<16> len;
    @semantic("rss")     bit<32> hash;
}
@nic("statefulnic")
control StCmptDeparser(cmpt_out o, in st_ctx_t ctx, in st_meta_t m) {
    apply {
        o.emit(m.len);
        if (ctx.rich == 1) {
            o.emit(m.hash);
        }
    }
}
)";

TEST(Stateful, RegistersAndExternsParse) {
  const Program program = parse_program(kStatefulNic);
  const RegisterDecl* flow = program.find_register("flow_state");
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->value_type().width, 32u);
  EXPECT_EQ(flow->size(), 1024u);
  EXPECT_EQ(program.registers().size(), 2u);

  const ExternDecl* aes = program.find_extern("AesGcmEngine");
  ASSERT_NE(aes, nullptr);
  EXPECT_TRUE(aes->opaque_body().empty());
  const ExternDecl* regex = program.find_extern("RegexMatcher");
  ASSERT_NE(regex, nullptr);
  EXPECT_NE(regex->opaque_body().find("match"), std::string::npos);
  EXPECT_EQ(program.externs().size(), 2u);
}

TEST(Stateful, TypecheckValidatesRegisters) {
  EXPECT_NO_THROW((void)check_program(parse_program(kStatefulNic)));
  // Zero-size register rejected.
  EXPECT_THROW((void)check_program(parse_program(
                   "register<bit<32>>(0) broken;")),
               Error);
  // Unknown value type rejected.
  EXPECT_THROW((void)check_program(parse_program(
                   "register<ghost_t>(4) broken;")),
               Error);
  // Typedef'd value types resolve.
  EXPECT_NO_THROW((void)check_program(parse_program(
      "typedef bit<48> mac_t; register<mac_t>(16) macs;")));
}

TEST(Stateful, NonLiteralRegisterSizeRejected) {
  EXPECT_THROW((void)parse_program("register<bit<32>>(x) r;"), Error);
  EXPECT_THROW((void)parse_program("extern Unfinished {"), Error);
}

TEST(Stateful, PrintParseFixpoint) {
  const std::string once = to_source(parse_program(kStatefulNic));
  const std::string twice = to_source(parse_program(once));
  EXPECT_EQ(once, twice);
  EXPECT_NE(once.find("register<bit<32>>(1024) flow_state;"), std::string::npos);
  EXPECT_NE(once.find("extern AesGcmEngine;"), std::string::npos);
}

TEST(Stateful, CompilationIgnoresDescriptiveState) {
  // The deparser analysis must be unaffected by registers/externs: same
  // paths and layouts as the equivalent stateless description.
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      kStatefulNic,
      R"(header i_t { @semantic("rss") bit<32> h; })", {});
  EXPECT_EQ(result.paths.size(), 2u);
  EXPECT_TRUE(result.chosen_path().provides(softnic::SemanticId::rss_hash));
  EXPECT_EQ(result.nic_name, "statefulnic");
}

}  // namespace
}  // namespace opendesc::p4
