// Telemetry subsystem: instruments, shard-merge algebra, trace-ring drop
// accounting, and the Prometheus/JSON expositions.
//
// The contract under test (src/telemetry):
//  * HistogramData merge is associative and commutative, so any shard merge
//    order reproduces the same totals;
//  * a Shard snapshot taken concurrently with its writer is always
//    internally consistent (epoch seqlock) — the TSan twin recompiles the
//    library with -fsanitize=thread on top of this;
//  * a TraceRing never grows, and recorded == retained + dropped exactly;
//  * the Prometheus text exposition follows format 0.0.4: HELP/TYPE
//    comments, escaped label values, sorted label keys (`le` last),
//    cumulative buckets with +Inf == _count.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/trace.hpp"

namespace {

using namespace opendesc;
using namespace opendesc::telemetry;

// --- instruments ----------------------------------------------------------

TEST(TelemetryCounter, AddAndStore) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.store(7);  // single-writer republication overwrites
  EXPECT_EQ(c.value(), 7u);
}

TEST(TelemetryGauge, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(2.5);
  g.set(-1.75);
  EXPECT_EQ(g.value(), -1.75);
}

TEST(TelemetryHistogram, BucketBoundaries) {
  EXPECT_EQ(histogram_bucket(0), 0u);
  EXPECT_EQ(histogram_bucket(1), 1u);
  EXPECT_EQ(histogram_bucket(2), 2u);
  EXPECT_EQ(histogram_bucket(3), 2u);
  EXPECT_EQ(histogram_bucket(4), 3u);
  // Bucket i holds values with bit width i: 2^(i-1) .. 2^i - 1.
  for (std::size_t i = 1; i + 1 < kHistogramBuckets; ++i) {
    const std::uint64_t lo = std::uint64_t{1} << (i - 1);
    const std::uint64_t hi = histogram_upper_bound(i);
    EXPECT_EQ(histogram_bucket(lo), i);
    EXPECT_EQ(histogram_bucket(hi), i);
    EXPECT_EQ(hi, (std::uint64_t{1} << i) - 1);
  }
  // Everything past the last boundary lands in the final (+Inf) bucket.
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), kHistogramBuckets - 1);
}

HistogramData random_data(std::mt19937_64& rng) {
  HistogramData d;
  std::uniform_int_distribution<std::uint64_t> values(0, 1u << 20);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v = values(rng);
    ++d.buckets[histogram_bucket(v)];
    ++d.count;
    d.sum += v;
  }
  return d;
}

TEST(TelemetryHistogram, MergeIsAssociativeAndCommutative) {
  std::mt19937_64 rng(11);
  const HistogramData a = random_data(rng);
  const HistogramData b = random_data(rng);
  const HistogramData c = random_data(rng);

  const HistogramData ab_c = (a + b) + c;
  const HistogramData a_bc = a + (b + c);
  const HistogramData cba = (c + b) + a;

  EXPECT_EQ(ab_c.count, a_bc.count);
  EXPECT_EQ(ab_c.sum, a_bc.sum);
  EXPECT_EQ(ab_c.buckets, a_bc.buckets);
  EXPECT_EQ(ab_c.count, cba.count);
  EXPECT_EQ(ab_c.sum, cba.sum);
  EXPECT_EQ(ab_c.buckets, cba.buckets);
}

TEST(TelemetryHistogram, ShardSnapshotMatchesObservations) {
  Histogram h(2);
  std::uint64_t sum = 0;
  for (std::uint64_t v : {0u, 1u, 5u, 1000u, 70000u}) {
    h.shard(0).observe(v);
    sum += v;
  }
  h.shard(1).observe(3);
  sum += 3;

  const HistogramData total = h.snapshot();
  EXPECT_EQ(total.count, 6u);
  EXPECT_EQ(total.sum, sum);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : total.buckets) {
    bucket_total += b;
  }
  EXPECT_EQ(bucket_total, total.count);
  EXPECT_EQ(total.buckets[0], 1u);  // the single zero observation
}

TEST(TelemetryHistogram, QuantileUpperBound) {
  HistogramData d;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    ++d.buckets[histogram_bucket(v)];
    ++d.count;
    d.sum += v;
  }
  EXPECT_EQ(d.quantile_upper_bound(0.0), 0u);  // target 0 met at bucket 0
  // The p50 of 1..1000 (500) lives in bucket 9 (256..511).
  EXPECT_EQ(d.quantile_upper_bound(0.5), histogram_upper_bound(9));
  EXPECT_EQ(d.quantile_upper_bound(1.0), histogram_upper_bound(10));
}

// The seqlock contract: a reader racing the single writer always gets an
// internally consistent snapshot — bucket sum equals count, and count never
// runs ahead of what the writer published last.
TEST(TelemetryHistogram, ConcurrentObserveAndSnapshotStayConsistent) {
  Histogram h(1);
  constexpr std::uint64_t kObservations = 200000;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kObservations; ++i) {
      h.shard(0).observe(i & 0xFFF);
    }
    done.store(true, std::memory_order_release);
  });

  std::uint64_t last_count = 0;
  while (!done.load(std::memory_order_acquire)) {
    const HistogramData snap = h.snapshot();
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t b : snap.buckets) {
      bucket_total += b;
    }
    ASSERT_EQ(bucket_total, snap.count);
    ASSERT_GE(snap.count, last_count);  // monotone: published totals only
    ASSERT_LE(snap.count, kObservations);
    last_count = snap.count;
  }
  writer.join();
  EXPECT_EQ(h.snapshot().count, kObservations);
}

// --- registry -------------------------------------------------------------

TEST(TelemetryRegistry, RegistrationIsIdempotent) {
  Registry reg;
  Counter& a = reg.counter("requests_total", "requests", {{"queue", "0"}});
  Counter& b = reg.counter("requests_total", "requests", {{"queue", "0"}});
  EXPECT_EQ(&a, &b);
  Counter& other = reg.counter("requests_total", "requests", {{"queue", "1"}});
  EXPECT_NE(&a, &other);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(TelemetryRegistry, KindMismatchAndBadNamesThrow) {
  Registry reg;
  reg.counter("x_total", "x");
  EXPECT_THROW(reg.gauge("x_total", "x"), Error);
  EXPECT_THROW(reg.counter("0bad", "leading digit"), Error);
  EXPECT_THROW(reg.counter("has space", "bad"), Error);
  EXPECT_THROW(reg.counter("x_total", "x", {{"0bad", "v"}}), Error);
  EXPECT_THROW(reg.counter("x_total", "x", {{"k", "v"}, {"k", "w"}}), Error);
}

TEST(TelemetryRegistry, LabelsNormalizeSorted) {
  const Labels sorted = normalize_labels({{"z", "1"}, {"a", "2"}});
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, "a");
  EXPECT_EQ(sorted[1].first, "z");
  EXPECT_EQ(canonical_labels(sorted), "a=\"2\",z=\"1\"");
}

TEST(TelemetryRegistry, HostileLabelValuesNeverCollideSeries) {
  // canonical_labels() is the Registry's series key, so an unescaped value
  // could forge another label set's key and alias two distinct series.
  // These two label sets render identically without escaping.
  const Labels forged = {{"tenant", "a\",x=\"b"}};
  const Labels plain = {{"tenant", "a"}, {"x", "b"}};
  EXPECT_NE(canonical_labels(normalize_labels(forged)),
            canonical_labels(normalize_labels(plain)));

  Registry reg;
  Counter& first = reg.counter("collide_total", "collision probe", forged);
  Counter& second = reg.counter("collide_total", "collision probe", plain);
  EXPECT_NE(&first, &second);
  first.add(1);
  second.add(41);
  EXPECT_EQ(first.value(), 1u);
  EXPECT_EQ(second.value(), 41u);
  // Both series survive as separate rows in the exposition.
  const std::string scrape = to_prometheus(reg);
  EXPECT_NE(scrape.find("tenant=\"a\\\",x=\\\"b\""), std::string::npos);
  EXPECT_NE(scrape.find("tenant=\"a\",x=\"b\""), std::string::npos);
}

// --- trace ring -----------------------------------------------------------

TEST(TelemetryTrace, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
  EXPECT_EQ(TraceRing(4096).capacity(), 4096u);
  EXPECT_EQ(TraceRing(0).capacity(), 1u);
}

TEST(TelemetryTrace, OverflowDropAccounting) {
  constexpr std::size_t kCapacity = 64;
  TraceRing ring(kCapacity);
  constexpr std::uint64_t kEvents = 1000;
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    ring.record({TraceEventType::record_validated, 0, 0,
                 static_cast<std::uint32_t>(i), i});
  }
  EXPECT_EQ(ring.recorded(), kEvents);
  EXPECT_EQ(ring.size(), kCapacity);
  EXPECT_EQ(ring.dropped(), kEvents - kCapacity);
  // Per-type totals survive overwrites.
  EXPECT_EQ(ring.count(TraceEventType::record_validated), kEvents);

  // The retained window is the newest kCapacity events, oldest first.
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  EXPECT_EQ(events.front().sequence, kEvents - kCapacity);
  EXPECT_EQ(events.back().sequence, kEvents - 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, events[i - 1].sequence + 1);
  }
}

TEST(TelemetryTrace, ClearResetsEverything) {
  TraceRing ring(8);
  ring.record({TraceEventType::ctrl_retry, 1, 0, 0, 0});
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.count(TraceEventType::ctrl_retry), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TelemetrySink, RingLayoutAndTraceCounters) {
  Sink sink({.queues = 3, .trace_capacity = 16});
  EXPECT_EQ(sink.queues(), 3u);
  EXPECT_EQ(sink.rings().size(), 5u);  // 3 workers + dispatch + ctrl
  sink.ring(0).record({TraceEventType::softnic_fallback, 0, 0, 7, 0});
  sink.dispatch_ring().record({TraceEventType::queue_handoff, 0, 1, 0, 0});
  sink.ctrl_ring().record({TraceEventType::ctrl_programmed, 1, 0, 0, 0});

  sink.publish_trace_counters();
  sink.publish_trace_counters();  // idempotent: store, not add

  bool found = false;
  for (const Registry::Family& family : sink.registry().families()) {
    if (family.name != "opendesc_trace_recorded_total") {
      continue;
    }
    ASSERT_EQ(family.series.size(), 1u);
    EXPECT_EQ(family.series[0].counter->value(), 3u);
    found = true;
  }
  EXPECT_TRUE(found);
}

// --- exposition -----------------------------------------------------------

TEST(TelemetryExporter, EscapesLabelValuesAndHelp) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("two\nlines"), "two\\nlines");
  EXPECT_EQ(escape_help("back\\slash\nnewline"), "back\\\\slash\\nnewline");
  // HELP text does not escape quotes.
  EXPECT_EQ(escape_help("say \"hi\""), "say \"hi\"");
}

TEST(TelemetryExporter, PrometheusGrammar) {
  Registry reg;
  reg.counter("odx_requests_total", "Total \"requests\"\nseen",
              {{"path", "a\\b"}, {"queue", "0"}})
      .add(5);
  reg.gauge("odx_depth", "queue depth").set(1.5);

  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# HELP odx_requests_total Total \"requests\"\\nseen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE odx_requests_total counter\n"),
            std::string::npos);
  // Label keys sorted, values escaped.
  EXPECT_NE(
      text.find("odx_requests_total{path=\"a\\\\b\",queue=\"0\"} 5\n"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE odx_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("odx_depth 1.5\n"), std::string::npos);

  // Every line is a comment or a sample ending in a numeric value.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

TEST(TelemetryExporter, PrometheusHistogramSeries) {
  Registry reg;
  Histogram& h = reg.histogram("odx_latency_ns", "latency", {{"queue", "0"}});
  for (std::uint64_t v : {3u, 3u, 200u, 70000u}) {
    h.shard(0).observe(v);
  }

  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE odx_latency_ns histogram"), std::string::npos);
  // `le` is appended after the series labels, as the last label.
  EXPECT_NE(text.find("odx_latency_ns_bucket{queue=\"0\",le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("odx_latency_ns_bucket{queue=\"0\",le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("odx_latency_ns_sum{queue=\"0\"} 70206\n"),
            std::string::npos);
  EXPECT_NE(text.find("odx_latency_ns_count{queue=\"0\"} 4\n"),
            std::string::npos);

  // Buckets are cumulative and non-decreasing up to +Inf == count.
  std::istringstream lines(text);
  std::string line;
  double prev = 0.0;
  while (std::getline(lines, line)) {
    if (line.rfind("odx_latency_ns_bucket", 0) != 0) {
      continue;
    }
    const double value = std::stod(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(value, prev) << line;
    prev = value;
  }
  EXPECT_EQ(prev, 4.0);
}

TEST(TelemetryExporter, SeriesOrderIsDeterministic) {
  Registry reg;
  reg.counter("odx_z_total", "z").add(1);
  reg.counter("odx_a_total", "a", {{"queue", "1"}}).add(1);
  reg.counter("odx_a_total", "a", {{"queue", "0"}}).add(1);

  const std::string text = to_prometheus(reg);
  // Families sorted by name; series sorted by canonical label set.
  const std::size_t a0 = text.find("odx_a_total{queue=\"0\"}");
  const std::size_t a1 = text.find("odx_a_total{queue=\"1\"}");
  const std::size_t z = text.find("odx_z_total");
  ASSERT_NE(a0, std::string::npos);
  ASSERT_NE(a1, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a0, a1);
  EXPECT_LT(a1, z);
}

TEST(TelemetryExporter, JsonExposition) {
  Registry reg;
  reg.counter("odx_total", "with \"quotes\" and \\slash").add(2);
  Histogram& h = reg.histogram("odx_ns", "hist");
  h.shard(0).observe(5);

  const std::string json = to_json(reg);
  EXPECT_NE(json.find("\"name\":\"odx_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("with \\\"quotes\\\" and \\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"value\":2"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity.
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++braces;
    } else if (c == '}') {
      --braces;
    } else if (c == '[') {
      ++brackets;
    } else if (c == ']') {
      --brackets;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TelemetryExporter, WriteMetricsFilePicksFormatByExtension) {
  namespace fs = std::filesystem;
  Registry reg;
  reg.counter("odx_total", "t").add(1);
  const fs::path dir = fs::temp_directory_path();
  const fs::path prom = dir / "odx_scrape_test.prom";
  const fs::path json = dir / "odx_scrape_test.json";

  write_metrics_file(reg, prom.string());
  write_metrics_file(reg, json.string());
  std::stringstream prom_text, json_text;
  prom_text << std::ifstream(prom).rdbuf();
  json_text << std::ifstream(json).rdbuf();
  EXPECT_NE(prom_text.str().find("# TYPE odx_total counter"),
            std::string::npos);
  EXPECT_NE(json_text.str().find("\"metrics\":["), std::string::npos);
  fs::remove(prom);
  fs::remove(json);

  EXPECT_THROW(write_metrics_file(reg, "/nonexistent-dir/x.prom"), Error);
}

// --- trace-ring concurrency and the clear() epoch fix ---------------------

// Regression: clear() used to reset the cursor but leave stale events in
// the buffer, so a *partial* refill could resurface pre-clear events
// through snapshot().  The epoch-base fix makes them unreachable.
TEST(TelemetryTrace, PartialRefillAfterClearNeverResurfacesOldEvents) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ring.record({TraceEventType::record_validated, 0, 0, 111, i});
  }
  ring.clear();
  // Refill only part of the ring with distinguishable events.
  for (std::uint64_t i = 0; i < 3; ++i) {
    ring.record({TraceEventType::ctrl_retry, 0, 0, 222, 100 + i});
  }
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (const TraceEvent& event : events) {
    EXPECT_EQ(event.type, TraceEventType::ctrl_retry);
    EXPECT_EQ(event.arg, 222u);
    EXPECT_GE(event.sequence, 100u);
  }
  EXPECT_EQ(ring.recorded(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TelemetryTrace, TailReturnsNewestWindow) {
  TraceRing ring(16);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record({TraceEventType::record_validated, 0, 0, 0, i});
  }
  const std::vector<TraceEvent> tail = ring.tail(4);
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail.front().sequence, 6u);
  EXPECT_EQ(tail.back().sequence, 9u);
  EXPECT_EQ(ring.tail(100).size(), 10u);
  EXPECT_TRUE(ring.tail(0).empty());
}

// Run under the TSan twin too: a writer hammering the ring while readers
// snapshot.  Every returned event must be well-formed (never torn) and in
// sequence order.
TEST(TelemetryTrace, ConcurrentSnapshotNeverReturnsTornEvents) {
  TraceRing ring(64);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // arg mirrors sequence so a torn slot (head from one event, sequence
      // from another) is detectable.
      ring.record({TraceEventType::record_validated, 7, 3,
                   static_cast<std::uint32_t>(seq & 0xFFFFFFFF), seq});
      ++seq;
    }
  });
  for (int round = 0; round < 200; ++round) {
    const std::vector<TraceEvent> events = ring.snapshot();
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(events[i].type, TraceEventType::record_validated);
      EXPECT_EQ(events[i].detail, 7);
      EXPECT_EQ(events[i].queue, 3);
      EXPECT_EQ(events[i].arg,
                static_cast<std::uint32_t>(events[i].sequence & 0xFFFFFFFF));
      if (i > 0) {
        EXPECT_EQ(events[i].sequence, events[i - 1].sequence + 1);
      }
    }
  }
  stop.store(true);
  writer.join();
}

// --- label-value escaping through the full exposition ---------------------

TEST(TelemetryExporter, PrometheusEscapesHostileLabelValuesInScrape) {
  Registry reg;
  reg.counter("odx_hostile_total", "hostile labels",
              {{"path", "back\\slash"}}).add(1);
  reg.counter("odx_hostile_total", "hostile labels",
              {{"path", "quote\"inside"}}).add(2);
  reg.counter("odx_hostile_total", "hostile labels",
              {{"path", "two\nlines"}}).add(3);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("path=\"back\\\\slash\""), std::string::npos);
  EXPECT_NE(text.find("path=\"quote\\\"inside\""), std::string::npos);
  EXPECT_NE(text.find("path=\"two\\nlines\""), std::string::npos);
  // The raw (unescaped) forms must not appear anywhere in the scrape.
  EXPECT_EQ(text.find("two\nlines"), std::string::npos);
  EXPECT_EQ(text.find("quote\"inside"), std::string::npos);
  // Exactly one line per series carries each value.
  EXPECT_NE(text.find("} 3"), std::string::npos);
}

TEST(TelemetryExporter, JsonEscapesHostileLabelValues) {
  Registry reg;
  reg.counter("odx_hostile_total", "hostile labels",
              {{"path", "a\"b\\c\nd"}}).add(1);
  const std::string text = to_json(reg);
  EXPECT_NE(text.find("a\\\"b\\\\c\\nd"), std::string::npos);
  EXPECT_EQ(text.find('\n'), std::string::npos);
}

// --- stage-latency histograms in the sink ---------------------------------

TEST(TelemetrySink, StageHistogramsHaveDispatchShard) {
  Sink sink({.queues = 2});
  // Workers own shards [0, queues); the dispatch thread owns one more.
  EXPECT_EQ(sink.dispatch_shard(), 2u);
  sink.stage_shard(Stage::validate, 0).observe(100);
  sink.stage_shard(Stage::validate, 1).observe(200);
  sink.stage_shard(Stage::steer, sink.dispatch_shard()).observe(50);
  EXPECT_EQ(sink.stage_latency(Stage::validate).snapshot().count, 2u);
  EXPECT_EQ(sink.stage_latency(Stage::steer).snapshot().count, 1u);
  EXPECT_EQ(sink.stage_latency(Stage::consume).snapshot().count, 0u);

  // All five stages expose one labelled series of the same family.
  std::size_t stage_series = 0;
  for (const Registry::Family& family : sink.registry().families()) {
    if (family.name == "opendesc_stage_latency_ns") {
      stage_series = family.series.size();
      EXPECT_EQ(family.kind, MetricKind::histogram);
    }
  }
  EXPECT_EQ(stage_series, kStageCount);
}

TEST(TelemetryHistogram, DataSubtractionInvertsAddition) {
  HistogramData base;
  Histogram h(1);
  h.shard(0).observe(10);
  h.shard(0).observe(1000);
  base = h.snapshot();
  h.shard(0).observe(77);
  HistogramData delta = h.snapshot();
  delta -= base;
  EXPECT_EQ(delta.count, 1u);
  EXPECT_EQ(delta.sum, 77u);
  EXPECT_EQ(delta.buckets[histogram_bucket(77)], 1u);
}

}  // namespace
