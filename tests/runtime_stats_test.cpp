// Runtime bookkeeping: RxLoopStats arithmetic, facade fallback accounting
// across mixed intents, DMA accounting reset, and strategy naming (the
// surface benches and operators rely on).
#include <gtest/gtest.h>

#include "core/compiler.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "runtime/rxloop.hpp"

namespace opendesc::rt {
namespace {

using softnic::SemanticId;

TEST(RxLoopStats, DerivedRatesHandleEdgeCases) {
  RxLoopStats stats;
  EXPECT_DOUBLE_EQ(stats.ns_per_packet(), 0.0);
  EXPECT_DOUBLE_EQ(stats.packets_per_second(), 0.0);
  stats.packets = 1000;
  stats.host_ns = 50000.0;  // 50 ns/pkt
  EXPECT_DOUBLE_EQ(stats.ns_per_packet(), 50.0);
  EXPECT_DOUBLE_EQ(stats.packets_per_second(), 2e7);
}

TEST(RxLoop, CountsAndChecksumAreScheduleIndependent) {
  // The same trace consumed with different batch sizes must yield the same
  // packet count and value checksum (batching is a schedule, not a
  // semantic).
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("ice").p4_source(),
      R"(header i_t { @semantic("rss") bit<32> h; @semantic("vlan") bit<16> v; })",
      {});
  softnic::ComputeEngine engine(registry);
  const std::vector<SemanticId> wanted = {SemanticId::rss_hash,
                                          SemanticId::vlan_tci};

  const auto run = [&](std::size_t batch) {
    sim::NicSimulator nic(result.layout, engine, {});
    net::WorkloadConfig config;
    config.seed = 3;
    config.vlan_probability = 0.5;
    net::WorkloadGenerator gen(config);
    OpenDescStrategy strategy(result, engine);
    RxLoopConfig loop;
    loop.packet_count = 777;
    loop.batch = batch;
    return run_rx_loop(nic, gen, strategy, wanted, loop);
  };

  const RxLoopStats a = run(1);
  const RxLoopStats b = run(32);
  const RxLoopStats c = run(256);
  EXPECT_EQ(a.packets, 777u);
  EXPECT_EQ(b.packets, 777u);
  EXPECT_EQ(c.packets, 777u);
  EXPECT_EQ(a.value_checksum, b.value_checksum);
  EXPECT_EQ(a.value_checksum, c.value_checksum);
  EXPECT_EQ(a.completion_bytes, b.completion_bytes);
}

TEST(Facade, FallbackCounterTracksOnlyMissingSemantics) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  // ice profile 0 provides rss+vlan+pkt_len; timestamp requires profile 1,
  // so with this intent the compiler picks profile 1 (timestamp has the
  // highest software cost)... pin behaviour by querying what was provided.
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("ice").p4_source(),
      R"(header i_t {
          @semantic("rss")       bit<32> h;
          @semantic("timestamp") bit<64> t;
      })",
      {});
  softnic::ComputeEngine engine(registry);
  sim::NicSimulator nic(result.layout, engine, {});
  MetadataFacade facade(result, engine);

  net::WorkloadConfig config;
  net::WorkloadGenerator gen(config);
  const int kPackets = 50;
  std::vector<sim::RxEvent> events(1);
  for (int i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(nic.rx(gen.next()));
    ASSERT_EQ(nic.poll(events), 1u);
    const PacketContext ctx(events[0]);
    (void)facade.fetch(ctx, SemanticId::rss_hash);
    (void)facade.fetch(ctx, SemanticId::timestamp);
    nic.advance(1);
  }
  std::uint64_t expected_fallbacks = 0;
  if (!facade.hardware_provided(SemanticId::rss_hash)) {
    expected_fallbacks += kPackets;
  }
  if (!facade.hardware_provided(SemanticId::timestamp)) {
    expected_fallbacks += kPackets;
  }
  EXPECT_EQ(facade.path_counters().total().softnic_shim, expected_fallbacks);
  // ice profile 1 provides both rss and timestamp: zero fallbacks expected.
  EXPECT_EQ(expected_fallbacks, 0u);
}

TEST(Strategies, NamesAreStable) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("dumbnic").p4_source(),
      R"(header i_t { @semantic("pkt_len") bit<16> l; })", {});
  softnic::ComputeEngine engine(registry);
  SkbuffStrategy skbuff(result.layout, engine);
  MbufStrategy mbuf(result.layout, engine);
  RawStrategy raw(engine);
  OpenDescStrategy opendesc(result, engine);
  EXPECT_EQ(skbuff.name(), "skbuff-full-extract");
  EXPECT_EQ(mbuf.name(), "dpdk-mbuf-indirection");
  EXPECT_EQ(raw.name(), "raw-software");
  EXPECT_EQ(opendesc.name(), "opendesc-generated");
}

TEST(DmaAccounting, ResetClearsAllCounters) {
  sim::DmaAccounting dma;
  dma.completion_bytes = 100;
  dma.rx_frame_bytes = 200;
  dma.descriptor_bytes = 300;
  dma.completions = 4;
  dma.frames = 5;
  dma.drops = 6;
  EXPECT_EQ(dma.total_to_host(), 300u);
  dma.reset();
  EXPECT_EQ(dma.completion_bytes, 0u);
  EXPECT_EQ(dma.drops, 0u);
  EXPECT_EQ(dma.total_to_host(), 0u);
}

}  // namespace
}  // namespace opendesc::rt
