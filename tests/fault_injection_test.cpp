// Seeded fault-matrix tests: every fault class, on both simulated devices,
// against the hardened host datapath.  The acceptance bar (ISSUE 1): under a
// fixed seed and a 1% composite fault rate over 100k packets — zero crashes,
// zero buffer-pool leaks, 100% of the wanted semantics delivered through the
// hardware or SoftNIC path, and exactly reproducible recovery counters.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "runtime/guard.hpp"
#include "sim/ctrlchan.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/sink.hpp"

namespace opendesc::rt {
namespace {

using sim::FaultClass;
using sim::FaultConfig;
using sim::FaultInjector;
using softnic::SemanticId;

constexpr std::array<SemanticId, 3> kWanted = {
    SemanticId::rss_hash, SemanticId::vlan_tci, SemanticId::pkt_len};

struct Fixture {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs{registry};
  core::Compiler compiler{registry, costs};
  softnic::ComputeEngine engine{registry};
  core::CompileResult result;
  core::CompiledLayout wire_layout;  ///< guarded layout the device serializes

  Fixture()
      : result(compiler.compile(
            nic::NicCatalog::by_name("ice").p4_source(),
            R"(header i_t {
                @semantic("rss")     bit<32> h;
                @semantic("vlan")    bit<16> v;
                @semantic("pkt_len") bit<16> l;
            })",
            {})),
        wire_layout(result.layout.with_guard()) {}

  [[nodiscard]] net::WorkloadGenerator workload() const {
    net::WorkloadConfig config;
    config.seed = 42;
    config.vlan_probability = 0.5;
    return net::WorkloadGenerator(config);
  }

  /// Runs the validating loop over a guarded NicSimulator with `faults`
  /// attached (nullptr = fault-free golden run).
  [[nodiscard]] RxLoopStats run_sim(FaultInjector* faults,
                                    std::size_t packets,
                                    ValidatingRxLoop* loop_out = nullptr) {
    sim::NicSimulator nic(wire_layout, engine, {});
    nic.set_fault_injector(faults);
    net::WorkloadGenerator gen = workload();
    OpenDescStrategy strategy(result, engine);
    ValidatingRxLoop loop(wire_layout, engine);
    RxLoopConfig config;
    config.packet_count = packets;
    const RxLoopStats stats = loop.run(nic, gen, strategy, kWanted, config);
    // No leak: every pool buffer is back after the loop drained the device.
    EXPECT_EQ(nic.free_buffers(), sim::SimConfig{}.rx_buffer_count);
    EXPECT_EQ(nic.pending(), 0u);
    if (loop_out != nullptr) {
      *loop_out = loop;
    }
    return stats;
  }
};

FaultConfig single_fault(FaultClass fault, double rate, std::uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.rate(fault) = rate;
  return config;
}

TEST(FaultMatrix, EachRecordFaultClassOnNicSimulator) {
  Fixture fx;
  constexpr std::size_t kPackets = 5000;
  const RxLoopStats golden = fx.run_sim(nullptr, kPackets);
  ASSERT_EQ(golden.packets, kPackets);
  ASSERT_EQ(golden.hw_consumed, kPackets);
  ASSERT_EQ(golden.quarantined, 0u);

  constexpr FaultClass kRecordFaults[] = {
      FaultClass::record_bitflip, FaultClass::record_truncate,
      FaultClass::record_stale, FaultClass::completion_drop,
      FaultClass::doorbell_delay};
  for (const FaultClass fault : kRecordFaults) {
    SCOPED_TRACE(std::string(sim::to_string(fault)));
    FaultInjector injector(single_fault(fault, 0.05, 7));
    const RxLoopStats stats = fx.run_sim(&injector, kPackets);

    // Nothing lost: every packet's wanted semantics were delivered, and the
    // recovered values match the fault-free run bit for bit.
    EXPECT_EQ(stats.packets, kPackets);
    EXPECT_EQ(stats.hw_consumed + stats.softnic_recovered, kPackets);
    EXPECT_EQ(stats.value_checksum, golden.value_checksum);
    EXPECT_DOUBLE_EQ(stats.delivery_ratio(kPackets), 1.0);

    const std::uint64_t injections = injector.stats().count(fault);
    EXPECT_GT(injections, 0u);
    switch (fault) {
      case FaultClass::record_bitflip:
      case FaultClass::record_truncate:
      case FaultClass::record_stale:
        // Corruption is caught by validation and quarantined.
        EXPECT_EQ(stats.quarantined, injections);
        EXPECT_EQ(stats.softnic_recovered, injections);
        break;
      case FaultClass::completion_drop:
        // Lost completions are detected by FIFO re-alignment.
        EXPECT_EQ(stats.lost_completions, injections);
        EXPECT_EQ(stats.quarantined, 0u);
        break;
      case FaultClass::doorbell_delay:
        // Late completions are still valid — just reordered in time.
        EXPECT_EQ(stats.hw_consumed, kPackets);
        EXPECT_EQ(stats.quarantined, 0u);
        break;
      default:
        break;
    }
  }
}

TEST(FaultMatrix, EachRecordFaultClassOnProgrammableNic) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  softnic::ComputeEngine engine(registry);
  const nic::NicModel& model = nic::NicCatalog::by_name("e1000e");
  const auto result = compiler.compile(
      model.p4_source(), R"(header i_t { @semantic("rss") bit<32> h; })", {});
  const core::Cfg cfg = core::build_cfg(model.program(), model.types(),
                                        model.deparser(), registry);
  core::PathEnumOptions options;
  options.consts = model.types().constants();
  options.variable_bounds =
      core::context_bounds(model.program(), model.types(), model.deparser());
  const std::vector<SemanticId> wanted = {SemanticId::rss_hash};

  constexpr FaultClass kRecordFaults[] = {
      FaultClass::record_bitflip, FaultClass::record_truncate,
      FaultClass::record_stale, FaultClass::completion_drop,
      FaultClass::doorbell_delay};

  const auto run = [&](FaultInjector* faults) {
    sim::ProgrammableNic nic("e1000e", core::enumerate_paths(cfg, options),
                             core::deparser_endian(model.deparser()), engine);
    nic.program(result.context_assignment);
    nic.enable_guard();
    nic.set_fault_injector(faults);
    const core::CompiledLayout& wire = nic.active_layout();
    EXPECT_TRUE(wire.has_guard());

    net::WorkloadConfig wconfig;
    wconfig.seed = 9;
    net::WorkloadGenerator gen(wconfig);
    OpenDescStrategy strategy(result, engine);
    ValidatingRxLoop loop(wire, engine);
    RxLoopConfig config;
    config.packet_count = 3000;
    const RxLoopStats stats = loop.run(nic, gen, strategy, wanted, config);
    EXPECT_EQ(nic.free_buffers(), sim::SimConfig{}.rx_buffer_count);
    return stats;
  };

  const RxLoopStats golden = run(nullptr);
  ASSERT_EQ(golden.packets, 3000u);
  for (const FaultClass fault : kRecordFaults) {
    SCOPED_TRACE(std::string(sim::to_string(fault)));
    FaultInjector injector(single_fault(fault, 0.05, 11));
    const RxLoopStats stats = run(&injector);
    EXPECT_EQ(stats.packets, 3000u);
    EXPECT_EQ(stats.value_checksum, golden.value_checksum);
    EXPECT_GT(injector.stats().count(fault), 0u);
  }
}

TEST(FaultMatrix, CompositeAcceptance100kPackets) {
  // The ISSUE's acceptance run: fixed seed, 1% composite rate, 100k packets.
  Fixture fx;
  constexpr std::size_t kPackets = 100000;
  const RxLoopStats golden = fx.run_sim(nullptr, kPackets);

  const auto faulted = [&](ValidatingRxLoop* loop_out) {
    FaultInjector injector(FaultConfig::composite(0.01, 2026));
    const RxLoopStats stats = fx.run_sim(&injector, kPackets, loop_out);
    return std::pair(stats, injector.stats());
  };

  ValidatingRxLoop loop_a(fx.wire_layout, fx.engine);
  const auto [stats_a, faults_a] = faulted(&loop_a);

  // Zero crashes (we got here), zero leaks (checked inside run_sim), and
  // 100% of the wanted semantics delivered through one path or the other.
  EXPECT_EQ(stats_a.packets, kPackets);
  EXPECT_EQ(stats_a.hw_consumed + stats_a.softnic_recovered, kPackets);
  EXPECT_DOUBLE_EQ(stats_a.delivery_ratio(kPackets), 1.0);
  EXPECT_EQ(stats_a.value_checksum, golden.value_checksum);
  EXPECT_EQ(stats_a.unrecoverable_values, 0u);
  EXPECT_GT(stats_a.quarantined, 0u);
  EXPECT_GT(stats_a.lost_completions, 0u);

  // Reproducibility: a second same-seed run yields identical counters.
  ValidatingRxLoop loop_b(fx.wire_layout, fx.engine);
  const auto [stats_b, faults_b] = faulted(&loop_b);
  EXPECT_EQ(stats_a.value_checksum, stats_b.value_checksum);
  EXPECT_EQ(stats_a.quarantined, stats_b.quarantined);
  EXPECT_EQ(stats_a.softnic_recovered, stats_b.softnic_recovered);
  EXPECT_EQ(stats_a.lost_completions, stats_b.lost_completions);
  EXPECT_EQ(stats_a.hw_consumed, stats_b.hw_consumed);
  EXPECT_EQ(faults_a.injected, faults_b.injected);
  EXPECT_EQ(loop_a.dead_letters().total(), loop_b.dead_letters().total());
}

TEST(FaultMatrix, GuardCatchesStaleRecordsPlainLengthCheckCannot) {
  // A stale record is internally consistent — only the frame-bound guard
  // tag exposes it.  Without the guard the loop consumes wrong values.
  Fixture fx;
  FaultInjector injector(single_fault(FaultClass::record_stale, 0.2, 3));
  ValidatingRxLoop loop(fx.wire_layout, fx.engine);
  const RxLoopStats stats = fx.run_sim(&injector, 2000, &loop);
  EXPECT_EQ(stats.quarantined, loop.dead_letters().total());
  EXPECT_EQ(loop.dead_letters().count(RecordVerdict::bad_guard_tag),
            loop.dead_letters().total());
}

TEST(DeadLetterBuffer, BoundedAndInspectable) {
  DeadLetterBuffer buffer(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    QuarantinedRecord letter;
    letter.record = {std::uint8_t(i)};
    letter.reason = i % 2 == 0 ? RecordVerdict::truncated
                               : RecordVerdict::bad_guard_tag;
    letter.sequence = i;
    buffer.push(std::move(letter));
  }
  EXPECT_EQ(buffer.total(), 10u);
  EXPECT_EQ(buffer.entries().size(), 4u);  // only the newest 4 retained
  EXPECT_EQ(buffer.entries().front().sequence, 6u);
  EXPECT_EQ(buffer.entries().back().sequence, 9u);
  EXPECT_EQ(buffer.count(RecordVerdict::truncated), 5u);
  EXPECT_EQ(buffer.count(RecordVerdict::bad_guard_tag), 5u);
  buffer.clear();
  EXPECT_EQ(buffer.total(), 0u);
  EXPECT_EQ(buffer.entries().size(), 0u);
}

TEST(FaultInjection, TxMisparseOnlyTypedErrorsEscape) {
  Fixture fx;
  sim::NicSimulator nic(fx.result.layout, fx.engine, {});
  const auto tx_result = fx.compiler.compile_tx(
      nic::NicCatalog::by_name("qdma").p4_source(),
      R"(header t_t {
          @semantic("tx_buf_len") bit<16> l;
          @semantic("tx_csum_en") bit<1>  c;
      })",
      {});
  nic.configure_tx(tx_result.layout);
  const core::CompiledLayout& tx_layout = tx_result.layout;

  FaultInjector injector(single_fault(FaultClass::tx_misparse, 1.0, 5));
  nic.set_fault_injector(&injector);
  net::WorkloadGenerator gen = fx.workload();
  std::size_t posted = 0;
  for (int i = 0; i < 500; ++i) {
    const net::Packet pkt = gen.next();
    std::vector<std::uint64_t> values(tx_layout.slices().size(), 0);
    for (std::size_t s = 0; s < tx_layout.slices().size(); ++s) {
      if (tx_layout.slices()[s].semantic == SemanticId::tx_buf_len) {
        values[s] = pkt.size();
      }
    }
    std::vector<std::uint8_t> desc(tx_layout.total_bytes());
    tx_layout.serialize(desc, values);
    try {
      nic.tx_post(desc, pkt.bytes());
      ++posted;
    } catch (const Error&) {
      // Typed errors are the only acceptable escape.
    }
  }
  EXPECT_EQ(injector.stats().count(FaultClass::tx_misparse), 500u);
  // Bit-flipped (not truncated) descriptors still parse: some succeed.
  EXPECT_GT(posted, 0u);
  EXPECT_LT(posted, 500u);
}

// --- Control-channel hardening ----------------------------------------------

struct CtrlFixture {
  softnic::SemanticRegistry registry;
  softnic::ComputeEngine engine{registry};
  std::vector<core::CompletionPath> paths;
  Endian endian = Endian::little;

  CtrlFixture() {
    const nic::NicModel& model = nic::NicCatalog::by_name("e1000e");
    const core::Cfg cfg = core::build_cfg(model.program(), model.types(),
                                          model.deparser(), registry);
    core::PathEnumOptions options;
    options.consts = model.types().constants();
    options.variable_bounds =
        core::context_bounds(model.program(), model.types(), model.deparser());
    paths = core::enumerate_paths(cfg, options);
    endian = core::deparser_endian(model.deparser());
  }
};

TEST(ControlRetry, VerifyAfterWriteRecoversFromPartialPrograms) {
  CtrlFixture fx;
  sim::ProgrammableNic nic("e1000e", fx.paths, fx.endian, fx.engine);
  FaultInjector injector(
      single_fault(FaultClass::ctrl_partial_program, 0.5, 21));
  nic.set_fault_injector(&injector);

  const p4::ConstEnv assignment = {{"ctx.use_rss", 1}};
  RetryPolicy policy;
  policy.max_attempts = 64;
  const ProgramReport report = program_with_verify(nic, assignment, policy);
  EXPECT_GE(report.attempts, 1u);
  EXPECT_LE(report.attempts, 64u);
  EXPECT_TRUE(nic.registers().verify(assignment));
  EXPECT_EQ(report.verified_path_id, nic.active_path_id());
  // Retries back off exponentially: attempts > 1 implies accumulated wait.
  if (report.attempts > 1) {
    EXPECT_GT(report.backoff_ns, 0.0);
  }
}

TEST(ControlRetry, ExhaustedPolicyThrowsDeviceError) {
  CtrlFixture fx;
  sim::ProgrammableNic nic("e1000e", fx.paths, fx.endian, fx.engine);
  // Rate 1.0: every program() applies a strict prefix; a single-entry
  // assignment therefore never lands and readback always mismatches.
  FaultInjector injector(single_fault(FaultClass::ctrl_partial_program, 1.0, 1));
  nic.set_fault_injector(&injector);

  RetryPolicy policy;
  policy.max_attempts = 6;
  try {
    (void)program_with_verify(nic, {{"ctx.use_rss", 1}}, policy);
    FAIL() << "expected Error(device)";
  } catch (const Error& err) {
    EXPECT_EQ(err.kind(), ErrorKind::device);
    EXPECT_NE(std::string(err.what()).find("6 attempts"), std::string::npos);
  }
  EXPECT_EQ(injector.stats().count(FaultClass::ctrl_partial_program), 6u);
}

TEST(ControlRetry, DroppedRegisterWritesAreObservableViaReadback) {
  CtrlFixture fx;
  sim::ProgrammableNic nic("e1000e", fx.paths, fx.endian, fx.engine);
  FaultInjector injector(single_fault(FaultClass::ctrl_write_drop, 1.0, 2));
  nic.set_fault_injector(&injector);

  nic.write_register("ctx.use_rss", 1);  // silently dropped
  const std::vector<std::string> bad =
      nic.registers().mismatches({{"ctx.use_rss", 1}});
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "ctx.use_rss (expected 1, read 0)");
  EXPECT_FALSE(nic.registers().verify({{"ctx.use_rss", 1}}));
}

TEST(ControlRetry, FullyDroppedWritesExhaustBackoffAndPreservePriorLayout) {
  CtrlFixture fx;
  sim::ProgrammableNic nic("e1000e", fx.paths, fx.endian, fx.engine);

  // Establish a known-good layout over a healthy channel first.
  const p4::ConstEnv prior = {{"ctx.use_rss", 1}};
  (void)program_with_verify(nic, prior);
  const std::string prior_path = nic.active_path_id();

  // Now every MMIO write in the reprogramming burst is silently lost: the
  // bounded backoff must exhaust and surface a typed device error.
  telemetry::Sink sink;
  FaultInjector injector(single_fault(FaultClass::ctrl_write_drop, 1.0, 11));
  nic.set_fault_injector(&injector);
  RetryPolicy policy;
  policy.max_attempts = 5;
  const p4::ConstEnv target = {{"ctx.use_rss", 0}};
  try {
    (void)program_with_verify(nic, target, policy, {}, &sink);
    FAIL() << "expected Error(device)";
  } catch (const Error& err) {
    EXPECT_EQ(err.kind(), ErrorKind::device);
    EXPECT_NE(std::string(err.what()).find("5 attempts"), std::string::npos)
        << err.what();
  }
  // One dropped-write draw per attempt (single-entry assignment), exactly
  // max_attempts times: the backoff really was bounded.
  EXPECT_EQ(injector.stats().count(FaultClass::ctrl_write_drop), 5u);

  // The prior layout survived untouched — the failed programming never tore
  // the live contract.
  EXPECT_TRUE(nic.registers().verify(prior));
  EXPECT_EQ(nic.active_path_id(), prior_path);

  // And the attempt totals landed in the telemetry registry: 5 attempts,
  // 4 of them retries after failed readback.
  const std::string scrape = telemetry::to_prometheus(sink.registry());
  EXPECT_NE(scrape.find("\nopendesc_ctrl_program_attempts_total 5"),
            std::string::npos)
      << scrape;
  EXPECT_NE(scrape.find("\nopendesc_ctrl_program_retries_total 4"),
            std::string::npos)
      << scrape;
  EXPECT_GE(sink.flight().count(telemetry::FlightCause::ctrl_retry_exhausted),
            1u);
}

TEST(ControlChannel, AmbiguousSelectionNamesConflictingPaths) {
  CtrlFixture fx;
  // Duplicate path0 under a new id: any registers satisfying path0 now
  // satisfy both — the partially-programmed/misprogrammed context case.
  std::vector<core::CompletionPath> paths = fx.paths;
  core::CompletionPath dup = paths[0];
  dup.id = "path0_dup";
  paths.push_back(std::move(dup));

  sim::ProgrammableNic nic("e1000e", paths, fx.endian, fx.engine);
  nic.write_register("ctx.use_rss", 1);
  try {
    (void)nic.active_layout();
    FAIL() << "expected ambiguity error";
  } catch (const Error& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("path0"), std::string::npos) << what;
    EXPECT_NE(what.find("path0_dup"), std::string::npos) << what;
    EXPECT_NE(what.find("ambiguous"), std::string::npos) << what;
  }
}

TEST(FaultConfigTest, CompositeSetsEveryClass) {
  const FaultConfig config = FaultConfig::composite(0.01, 99);
  EXPECT_EQ(config.seed, 99u);
  for (std::size_t i = 0; i < sim::kFaultClassCount; ++i) {
    EXPECT_DOUBLE_EQ(config.probability[i], 0.01);
  }
  EXPECT_EQ(std::string(sim::to_string(FaultClass::record_bitflip)),
            "record_bitflip");
}

}  // namespace
}  // namespace opendesc::rt
