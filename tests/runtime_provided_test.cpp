// Provided<T>, provenance counting, and the unified rt::EngineConfig
// builder — the redesigned facade API.
//
// The invariants under test:
//  * Provided<T> behaves like optional with provenance riding along, and
//    value() on an unavailable read throws Error(semantic) naming the miss
//    reason;
//  * every facade fetch counts exactly one path, so per semantic
//    nic_path + softnic_shim + unavailable == reads issued — and under a
//    1% composite fault storm the engine-merged counters still reconcile
//    exactly with packets delivered;
//  * the EngineConfig fluent builder produces the same configuration as
//    field assignment and threads a telemetry sink through the stack.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "nic/model.hpp"
#include "runtime/guard.hpp"
#include "telemetry/sink.hpp"

namespace {

using namespace opendesc;
using softnic::SemanticId;

// --- Provided<T> ----------------------------------------------------------

TEST(Provided, NicPathCarriesValueAndNoMissReason) {
  const auto p = rt::Provided<std::uint64_t>::nic(42);
  EXPECT_TRUE(p.has_value());
  EXPECT_TRUE(static_cast<bool>(p));
  EXPECT_TRUE(p.from_hardware());
  EXPECT_EQ(p.value(), 42u);
  EXPECT_EQ(p.value_or(7), 42u);
  EXPECT_EQ(p.provenance(), rt::Provenance::nic_path);
  EXPECT_EQ(p.miss_reason(), rt::MissReason::none);
  EXPECT_EQ(p.to_optional(), std::optional<std::uint64_t>(42));
}

TEST(Provided, SoftnicPathRecordsWhyTheNicMissed) {
  const auto p = rt::Provided<std::uint64_t>::softnic(
      9, rt::MissReason::not_in_layout);
  EXPECT_TRUE(p.has_value());
  EXPECT_FALSE(p.from_hardware());
  EXPECT_EQ(p.value(), 9u);
  EXPECT_EQ(p.provenance(), rt::Provenance::softnic_shim);
  EXPECT_EQ(p.miss_reason(), rt::MissReason::not_in_layout);
}

TEST(Provided, MissingThrowsWithReasonInMessage) {
  const auto p = rt::Provided<std::uint64_t>::missing(
      rt::MissReason::no_software_impl);
  EXPECT_FALSE(p.has_value());
  EXPECT_EQ(p.value_or(5), 5u);
  EXPECT_EQ(p.to_optional(), std::nullopt);
  EXPECT_EQ(p.provenance(), rt::Provenance::unavailable);
  try {
    (void)p.value();
    FAIL() << "value() on unavailable must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::semantic);
    EXPECT_NE(std::string(e.what()).find("no_software_impl"),
              std::string::npos);
  }
}

TEST(Provided, ToStringCoversEveryEnumerator) {
  EXPECT_EQ(rt::to_string(rt::Provenance::nic_path), "nic_path");
  EXPECT_EQ(rt::to_string(rt::Provenance::softnic_shim), "softnic_shim");
  EXPECT_EQ(rt::to_string(rt::Provenance::unavailable), "unavailable");
  EXPECT_EQ(rt::to_string(rt::MissReason::record_invalid), "record_invalid");
  EXPECT_EQ(rt::to_string(rt::MissReason::completion_lost), "completion_lost");
  EXPECT_EQ(rt::to_string(rt::MissReason::frame_unparseable),
            "frame_unparseable");
}

// --- SemanticPathCounters -------------------------------------------------

TEST(SemanticPathCounters, CountsMergeAndDelta) {
  rt::SemanticPathCounters a;
  a.count(SemanticId::rss_hash, rt::Provenance::nic_path);
  a.count(SemanticId::rss_hash, rt::Provenance::nic_path);
  a.count(SemanticId::vlan_tci, rt::Provenance::softnic_shim);

  rt::SemanticPathCounters b;
  b.count(SemanticId::rss_hash, rt::Provenance::unavailable);
  b += a;
  EXPECT_EQ(b.for_semantic(SemanticId::rss_hash).nic_path, 2u);
  EXPECT_EQ(b.for_semantic(SemanticId::rss_hash).unavailable, 1u);
  EXPECT_EQ(b.for_semantic(SemanticId::vlan_tci).softnic_shim, 1u);
  EXPECT_EQ(b.total().total(), 4u);

  const rt::SemanticPathCounters delta = b.since(a);
  EXPECT_EQ(delta.for_semantic(SemanticId::rss_hash).nic_path, 0u);
  EXPECT_EQ(delta.for_semantic(SemanticId::rss_hash).unavailable, 1u);
  EXPECT_EQ(delta.for_semantic(SemanticId::vlan_tci).total(), 0u);
}

TEST(SemanticPathCounters, SnapshotSkipsUntouchedSemantics) {
  rt::SemanticPathCounters counters;
  counters.count(SemanticId::pkt_len, rt::Provenance::nic_path);
  const auto snap = counters.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, softnic::raw(SemanticId::pkt_len));
  EXPECT_EQ(snap[0].second.nic_path, 1u);
}

// --- facade provenance ----------------------------------------------------

constexpr const char* kIntent = R"P4(
header prov_intent_t {
    @semantic("rss")     bit<32> hash;
    @semantic("vlan")    bit<16> tci;
    @semantic("pkt_len") bit<16> len;
}
)P4";

struct Compiled {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs{registry};
  softnic::ComputeEngine engine{registry};
  core::Compiler compiler{registry, costs};
  core::CompileResult result;

  explicit Compiled(const char* nic = "ice") {
    result = compiler.compile(nic::NicCatalog::by_name(nic).p4_source(),
                              kIntent, {});
  }
};

TEST(FacadeProvenance, EveryFetchCountsExactlyOnePath) {
  Compiled c;
  rt::MetadataFacade facade(c.result, c.engine);

  net::WorkloadConfig wconfig;
  wconfig.seed = 5;
  wconfig.vlan_probability = 0.5;
  net::WorkloadGenerator gen(wconfig);
  sim::NicSimulator nic(c.result.layout, c.engine, {});

  constexpr std::size_t kPackets = 64;
  std::vector<sim::RxEvent> events(kPackets);
  for (std::size_t i = 0; i < kPackets; ++i) {
    net::Packet pkt = gen.next();
    ASSERT_TRUE(nic.rx(pkt));
  }
  const std::size_t n = nic.poll(events);
  std::uint64_t reads = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const rt::PacketContext pkt(events[i]);
    for (const SemanticId id :
         {SemanticId::rss_hash, SemanticId::vlan_tci, SemanticId::pkt_len}) {
      const auto provided = facade.fetch(pkt, id);
      EXPECT_TRUE(provided.has_value());
      ++reads;
    }
  }
  nic.advance(n);
  ASSERT_GT(n, 0u);
  EXPECT_EQ(facade.path_counters().total().total(), reads);
  // Each semantic was read exactly n times, on exactly one path per read.
  for (const SemanticId id :
       {SemanticId::rss_hash, SemanticId::vlan_tci, SemanticId::pkt_len}) {
    EXPECT_EQ(facade.path_counters().for_semantic(id).total(), n);
  }
}

TEST(FacadeProvenance, FetchSoftwareSkipsTheAccessor) {
  Compiled c;
  rt::MetadataFacade facade(c.result, c.engine);

  net::WorkloadGenerator gen({});
  const net::Packet pkt = gen.next();
  const rt::PacketContext ctx({}, pkt.bytes());  // no descriptor record

  const auto provided = facade.fetch_software(ctx, SemanticId::pkt_len,
                                              rt::MissReason::record_invalid);
  ASSERT_TRUE(provided.has_value());
  EXPECT_EQ(provided.provenance(), rt::Provenance::softnic_shim);
  EXPECT_EQ(provided.miss_reason(), rt::MissReason::record_invalid);
  EXPECT_EQ(provided.value(), pkt.bytes().size());
  EXPECT_EQ(
      facade.path_counters().for_semantic(SemanticId::pkt_len).softnic_shim,
      1u);
}

// The one-release compatibility wrappers (get/try_get/read_checked) are
// gone; fetch()/read_provided() express the same reads with provenance.
TEST(FacadeProvenance, FetchCoversTheRemovedWrapperContracts) {
  Compiled c;
  rt::MetadataFacade facade(c.result, c.engine);
  net::WorkloadGenerator gen({});
  const net::Packet pkt = gen.next();
  const rt::PacketContext ctx({}, pkt.bytes());

  // What try_get collapsed to an optional and get threw on, fetch reports
  // explicitly.  The record is empty, so NIC-path semantics fall back to
  // software.
  EXPECT_EQ(facade.fetch(ctx, SemanticId::pkt_len).to_optional(),
            std::optional<std::uint64_t>(pkt.bytes().size()));
  EXPECT_EQ(facade.fetch(ctx, SemanticId::pkt_len).value(),
            pkt.bytes().size());
}

// --- EngineConfig builder -------------------------------------------------

TEST(EngineConfigBuilder, FluentChainsMatchFieldAssignment) {
  telemetry::Sink sink({.queues = 2});
  const rt::EngineConfig built = rt::EngineConfig{}
                                     .with_queues(2)
                                     .with_batch(16)
                                     .with_spsc_capacity(512)
                                     .with_rss_table_size(64)
                                     .with_guard(true)
                                     .with_fault_rate(0.01, 99)
                                     .with_quarantine_capacity(8)
                                     .with_telemetry(&sink);

  rt::EngineConfig assigned;
  assigned.queues = 2;
  assigned.batch = 16;
  assigned.spsc_capacity = 512;
  assigned.rss_table_size = 64;
  assigned.guard = true;
  assigned.fault_rate = 0.01;
  assigned.fault_seed = 99;
  assigned.quarantine_capacity = 8;
  assigned.telemetry = &sink;

  EXPECT_EQ(built.queues, assigned.queues);
  EXPECT_EQ(built.batch, assigned.batch);
  EXPECT_EQ(built.spsc_capacity, assigned.spsc_capacity);
  EXPECT_EQ(built.rss_table_size, assigned.rss_table_size);
  EXPECT_EQ(built.guard, assigned.guard);
  EXPECT_EQ(built.fault_rate, assigned.fault_rate);
  EXPECT_EQ(built.fault_seed, assigned.fault_seed);
  EXPECT_EQ(built.quarantine_capacity, assigned.quarantine_capacity);
  EXPECT_EQ(built.telemetry, assigned.telemetry);
}

TEST(EngineConfigBuilder, LoopConstructedFromConfigInheritsTelemetry) {
  Compiled c;
  telemetry::Sink sink({.queues = 1});
  const rt::EngineConfig config =
      rt::EngineConfig{}.with_guard(true).with_telemetry(&sink);

  const core::CompiledLayout wire = c.result.layout.with_guard();
  rt::OpenDescStrategy strategy(c.result, c.engine);
  rt::ValidatingRxLoop loop(wire, c.engine, config, 0);

  sim::NicSimulator nic(wire, c.engine, {});
  net::WorkloadGenerator gen({});
  const std::vector<SemanticId> wanted = {SemanticId::pkt_len};
  rt::RxLoopConfig rx;
  rx.packet_count = 100;
  const rt::RxLoopStats stats = loop.run(nic, gen, strategy, wanted, rx);
  EXPECT_EQ(stats.packets, 100u);

  // The loop traced into the sink's queue-0 ring (run_started at minimum)
  // and observed batch latencies into shard 0.
  EXPECT_GT(sink.ring(0).recorded(), 0u);
  EXPECT_EQ(sink.ring(0).count(telemetry::TraceEventType::run_started), 1u);
  EXPECT_GT(sink.batch_latency().snapshot().count, 0u);
}

// --- provenance under faults ----------------------------------------------

// The acceptance invariant: under a 1% composite fault storm across 4
// queues, the engine-merged path counters reconcile exactly — per wanted
// semantic, nic_path + softnic_shim + unavailable == packets delivered.
TEST(FaultProvenance, PathCountsReconcileUnderCompositeFaults) {
  Compiled c;
  telemetry::Sink sink({.queues = 4});
  const rt::EngineConfig config = rt::EngineConfig{}
                                      .with_queues(4)
                                      .with_guard(true)
                                      .with_fault_rate(0.01, 7)
                                      .with_telemetry(&sink);
  rt::MultiQueueEngine engine(c.result, c.engine, config);

  net::WorkloadConfig wconfig;
  wconfig.seed = 7;
  wconfig.vlan_probability = 0.5;
  net::WorkloadGenerator gen(wconfig);
  constexpr std::size_t kPackets = 8000;
  const rt::EngineReport report = engine.run(gen, kPackets);

  ASSERT_GT(report.total.packets, 0u);
  // Faults actually fired: some packets took the software path.
  EXPECT_GT(report.total.softnic_recovered, 0u);

  const auto snap = report.semantic_paths.snapshot();
  ASSERT_EQ(snap.size(), 3u);  // rss, vlan, pkt_len
  std::uint64_t nic_reads_total = 0;
  for (const auto& [raw, counts] : snap) {
    EXPECT_EQ(counts.total(), report.total.packets)
        << "semantic raw id " << raw;
    nic_reads_total += counts.nic_path;
  }
  EXPECT_GT(nic_reads_total, 0u);

  // The same invariant via the published registry counters.
  std::uint64_t nic = 0, softnic_reads = 0, unavailable = 0;
  for (const auto& family : sink.registry().families()) {
    if (family.name != "opendesc_semantic_reads_total") {
      continue;
    }
    for (const auto& series : family.series) {
      for (const auto& [k, v] : series.labels) {
        if (k != "path") {
          continue;
        }
        if (v == "nic_path") {
          nic += series.counter->value();
        } else if (v == "softnic_shim") {
          softnic_reads += series.counter->value();
        } else if (v == "unavailable") {
          unavailable += series.counter->value();
        }
      }
    }
  }
  EXPECT_EQ(nic + softnic_reads + unavailable, 3 * report.total.packets);
  EXPECT_GT(softnic_reads, 0u);
}

// Identical runs with and without a sink deliver identical datapath results
// — telemetry observes, never perturbs.
TEST(FaultProvenance, SinkDoesNotPerturbTheDatapath) {
  Compiled c;
  const auto run = [&](telemetry::Sink* sink) {
    const rt::EngineConfig config = rt::EngineConfig{}
                                        .with_queues(2)
                                        .with_guard(true)
                                        .with_fault_rate(0.01, 3)
                                        .with_telemetry(sink);
    rt::MultiQueueEngine engine(c.result, c.engine, config);
    net::WorkloadConfig wconfig;
    wconfig.seed = 3;
    wconfig.vlan_probability = 0.5;
    net::WorkloadGenerator gen(wconfig);
    return engine.run(gen, 4000);
  };

  telemetry::Sink sink({.queues = 2});
  const rt::EngineReport with = run(&sink);
  const rt::EngineReport without = run(nullptr);
  EXPECT_EQ(with.total.packets, without.total.packets);
  EXPECT_EQ(with.total.value_checksum, without.total.value_checksum);
  EXPECT_EQ(with.total.quarantined, without.total.quarantined);
  EXPECT_EQ(with.total.softnic_recovered, without.total.softnic_recovered);
  for (const auto& [raw, counts] : with.semantic_paths.snapshot()) {
    EXPECT_EQ(counts.total(),
              without.semantic_paths.for_semantic(
                  static_cast<SemanticId>(raw)).total());
  }
}

}  // namespace
