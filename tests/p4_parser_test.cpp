// P4 subset parser tests: declarations, statements, expressions, and the
// print-parse fixpoint property.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "p4/parser.hpp"
#include "p4/pretty.hpp"

namespace opendesc::p4 {
namespace {

TEST(Parser, HeaderWithAnnotatedFields) {
  const Program program = parse_program(R"(
      header intent_t {
          @semantic("rss")  bit<32> rss_val;
          @semantic("vlan") bit<16> vlan_tag;
          bool flag;
      }
  )");
  const StructLikeDecl* header = program.find_header("intent_t");
  ASSERT_NE(header, nullptr);
  ASSERT_EQ(header->fields().size(), 3u);
  EXPECT_EQ(header->fields()[0].name, "rss_val");
  EXPECT_EQ(header->fields()[0].type.width, 32u);
  const Annotation* sem = find_annotation(header->fields()[0].annotations, "semantic");
  ASSERT_NE(sem, nullptr);
  EXPECT_EQ(sem->string_arg(), "rss");
  EXPECT_EQ(header->fields()[2].type.kind, TypeRef::Kind::boolean);
  EXPECT_EQ(header->find_field("vlan_tag")->type.width, 16u);
  EXPECT_EQ(header->find_field("absent"), nullptr);
}

TEST(Parser, TypedefAndConst) {
  const Program program = parse_program(R"(
      typedef bit<48> mac_t;
      const bit<16> ETH_IPV4 = 0x800;
      const bit<8> TWO = 1 + 1;
  )");
  const TypedefDecl* td = program.find_typedef("mac_t");
  ASSERT_NE(td, nullptr);
  EXPECT_EQ(td->aliased().width, 48u);
  ASSERT_NE(program.find_const("ETH_IPV4"), nullptr);
  ASSERT_NE(program.find_const("TWO"), nullptr);
}

TEST(Parser, ControlWithNestedIfElse) {
  const Program program = parse_program(R"(
      struct ctx_t { bit<2> mode; }
      header m_t { bit<8> a; bit<8> b; }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              if (ctx.mode == 0) {
                  o.emit(m.a);
              } else {
                  if (ctx.mode == 1) {
                      o.emit(m.b);
                  } else {
                      o.emit(m);
                  }
              }
          }
      }
  )");
  const ControlDecl* control = program.find_control("C");
  ASSERT_NE(control, nullptr);
  ASSERT_EQ(control->params().size(), 3u);
  EXPECT_EQ(control->params()[0].type.name, "cmpt_out");
  EXPECT_EQ(control->params()[1].direction, ParamDir::in);
  ASSERT_EQ(control->apply().statements().size(), 1u);
  EXPECT_EQ(control->apply().statements()[0]->kind(), StmtKind::if_stmt);
}

TEST(Parser, ControlWithTypeParamsMatchesPaperFig4) {
  // The deparser template of Fig. 4.
  const Program program = parse_program(R"(
      control CmptDeparser<C2H_CTX_T, DESC_T, META_T>(
          cmpt_out cmpt_out_ch,
          in DESC_T desc_hdr,
          in META_T pipe_meta) {
          apply { }
      }
  )");
  const ControlDecl* control = program.find_control("CmptDeparser");
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->type_params().size(), 3u);
  EXPECT_EQ(control->type_params()[0], "C2H_CTX_T");
}

TEST(Parser, ParserDeclWithSelect) {
  const Program program = parse_program(R"(
      header eth_t { bit<48> dst; bit<48> src; bit<16> type; }
      parser P(desc_in pkt, out eth_t eth) {
          state start {
              pkt.extract(eth);
              transition select(eth.type) {
                  0x800: parse_ipv4;
                  0x86dd: parse_ipv6;
                  default: accept;
              };
          }
          state parse_ipv4 { transition accept; }
          state parse_ipv6 { transition reject; }
      }
  )");
  const ParserDecl* parser = program.find_parser("P");
  ASSERT_NE(parser, nullptr);
  ASSERT_EQ(parser->states().size(), 3u);
  const ParserState* start = parser->find_state("start");
  ASSERT_NE(start, nullptr);
  EXPECT_TRUE(start->has_select());
  ASSERT_EQ(start->cases.size(), 3u);
  EXPECT_EQ(start->cases[0].next_state, "parse_ipv4");
  EXPECT_EQ(start->cases[2].key, nullptr);  // default
  EXPECT_EQ(parser->find_state("parse_ipv4")->direct_next, "accept");
}

TEST(Parser, ExpressionPrecedence) {
  // 1 + 2 * 3 == 7 must parse as 1 + (2 * 3) == 7 → eq(add(1, mul(2,3)), 7).
  const ExprPtr e = parse_expression("1 + 2 * 3 == 7");
  ASSERT_EQ(e->kind(), ExprKind::binary);
  const auto& eq = static_cast<const BinaryExpr&>(*e);
  EXPECT_EQ(eq.op(), BinaryOp::eq);
  const auto& add = static_cast<const BinaryExpr&>(eq.lhs());
  EXPECT_EQ(add.op(), BinaryOp::add);
  const auto& mul = static_cast<const BinaryExpr&>(add.rhs());
  EXPECT_EQ(mul.op(), BinaryOp::mul);
}

TEST(Parser, LogicalOperatorsLowerThanComparison) {
  const ExprPtr e = parse_expression("a == 1 && b != 2 || c");
  const auto& or_expr = static_cast<const BinaryExpr&>(*e);
  EXPECT_EQ(or_expr.op(), BinaryOp::logical_or);
  const auto& and_expr = static_cast<const BinaryExpr&>(or_expr.lhs());
  EXPECT_EQ(and_expr.op(), BinaryOp::logical_and);
}

TEST(Parser, MemberChainsAndCalls) {
  const ExprPtr e = parse_expression("a.b.c");
  EXPECT_EQ(dotted_path(*e), "a.b.c");
  const ExprPtr call = parse_expression("o.emit(m.x)");
  ASSERT_EQ(call->kind(), ExprKind::call);
  const auto& c = static_cast<const CallExpr&>(*call);
  EXPECT_EQ(dotted_path(c.callee()), "o.emit");
  ASSERT_EQ(c.args().size(), 1u);
  EXPECT_EQ(dotted_path(*c.args()[0]), "m.x");
}

TEST(Parser, UnaryOperators) {
  const ExprPtr e = parse_expression("!(a == 1)");
  ASSERT_EQ(e->kind(), ExprKind::unary);
  EXPECT_EQ(static_cast<const UnaryExpr&>(*e).op(), UnaryOp::logical_not);
}

TEST(Parser, SyntaxErrorsCarryLocations) {
  try {
    (void)parse_program("header x { bit<32> }");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::parse);
    EXPECT_NE(std::string(e.what()).find("1:"), std::string::npos);
  }
  EXPECT_THROW((void)parse_program("control C() { }"), Error);    // no apply
  EXPECT_THROW((void)parse_program("header {}"), Error);          // no name
  EXPECT_THROW((void)parse_program("bogus x;"), Error);           // unknown decl
  EXPECT_THROW((void)parse_expression("1 +"), Error);             // dangling op
}

TEST(Parser, BitWidthBoundsEnforced) {
  EXPECT_THROW((void)parse_program("header h { bit<0> x; }"), Error);
  EXPECT_THROW((void)parse_program("header h { bit<65> x; }"), Error);
}

TEST(Parser, PrintParseFixpoint) {
  // to_source ∘ parse must be a fixpoint: parsing the printed form yields
  // the same printed form again.
  const char* source = R"(
      struct ctx_t { bit<1> use_rss; }
      header meta_t {
          @semantic("rss") bit<32> rss_hash;
          @semantic("ip_checksum") bit<16> csum;
      }
      const bit<16> MAGIC = 4096;
      control C(cmpt_out o, in ctx_t ctx, in meta_t m) {
          apply {
              if (ctx.use_rss == 1) {
                  o.emit(m.rss_hash);
              } else {
                  o.emit(m.csum);
              }
          }
      }
      parser P(desc_in d, out meta_t m) {
          state start {
              d.extract(m);
              transition select(m.csum) {
                  0: accept;
                  default: reject;
              };
          }
      }
  )";
  const std::string once = to_source(parse_program(source));
  const std::string twice = to_source(parse_program(once));
  EXPECT_EQ(once, twice);
  EXPECT_FALSE(once.empty());
}

TEST(Parser, StatementVarietiesInsideApply) {
  const Program program = parse_program(R"(
      struct s_t { bit<8> v; }
      control C(cmpt_out o, in s_t s) {
          bit<8> local_before = 3;
          apply {
              bit<16> tmp = 1 + 2;
              tmp = tmp + 1;
              o.emit(s.v);
          }
      }
  )");
  const ControlDecl* control = program.find_control("C");
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->locals().size(), 1u);
  const auto& stmts = control->apply().statements();
  ASSERT_EQ(stmts.size(), 3u);
  EXPECT_EQ(stmts[0]->kind(), StmtKind::var_decl);
  EXPECT_EQ(stmts[1]->kind(), StmtKind::assign);
  EXPECT_EQ(stmts[2]->kind(), StmtKind::method_call);
}

}  // namespace
}  // namespace opendesc::p4
