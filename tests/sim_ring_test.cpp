// Ring and buffer-pool invariants, including randomized producer/consumer
// schedules.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/ring.hpp"

namespace opendesc::sim {
namespace {

TEST(ByteRing, BasicProduceConsume) {
  ByteRing ring(4, 8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.entry_size(), 8u);

  auto slot = ring.produce_slot();
  ASSERT_EQ(slot.size(), 8u);
  slot[0] = 0xAB;
  ring.push();
  EXPECT_EQ(ring.size(), 1u);

  auto front = ring.front();
  ASSERT_EQ(front.size(), 8u);
  EXPECT_EQ(front[0], 0xAB);
  ring.pop();
  EXPECT_TRUE(ring.empty());
}

TEST(ByteRing, FullRingRefusesProduction) {
  ByteRing ring(2, 4);
  for (int i = 0; i < 2; ++i) {
    ASSERT_FALSE(ring.produce_slot().empty());
    ring.push();
  }
  EXPECT_TRUE(ring.full());
  EXPECT_TRUE(ring.produce_slot().empty());
  ring.push();  // no-op on full ring
  EXPECT_EQ(ring.size(), 2u);
}

TEST(ByteRing, EmptyRingRefusesConsumption) {
  ByteRing ring(2, 4);
  EXPECT_TRUE(ring.front().empty());
  ring.pop();  // no-op
  EXPECT_EQ(ring.tail(), 0u);
}

TEST(ByteRing, WrapAroundPreservesFifoOrder) {
  ByteRing ring(4, 1);
  std::uint8_t next_value = 0;
  std::uint8_t expect_value = 0;
  // Drive 100 operations through a 4-entry ring.
  for (int round = 0; round < 25; ++round) {
    for (int i = 0; i < 3; ++i) {
      auto slot = ring.produce_slot();
      ASSERT_FALSE(slot.empty());
      slot[0] = next_value++;
      ring.push();
    }
    for (int i = 0; i < 3; ++i) {
      auto front = ring.front();
      ASSERT_FALSE(front.empty());
      EXPECT_EQ(front[0], expect_value++);
      ring.pop();
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(ByteRing, PeekAtArbitraryPendingIndex) {
  ByteRing ring(8, 1);
  for (int i = 0; i < 5; ++i) {
    auto slot = ring.produce_slot();
    slot[0] = static_cast<std::uint8_t>(10 + i);
    ring.push();
  }
  ring.pop();  // tail = 1
  for (std::uint64_t i = ring.tail(); i < ring.head(); ++i) {
    EXPECT_EQ(ring.peek(i)[0], 10 + i);
  }
  EXPECT_TRUE(ring.peek(0).empty());            // before tail
  EXPECT_TRUE(ring.peek(ring.head()).empty());  // at head (not yet produced)
}

TEST(ByteRing, RejectsBadGeometry) {
  EXPECT_THROW(ByteRing(3, 8), Error);   // not a power of two
  EXPECT_THROW(ByteRing(0, 8), Error);
  EXPECT_THROW(ByteRing(4, 0), Error);
}

TEST(ByteRing, RandomScheduleInvariant) {
  // Property: under any interleaving, size == pushes - pops, and data read
  // equals data written, FIFO.
  Rng rng(77);
  ByteRing ring(16, 2);
  std::uint16_t write_seq = 0, read_seq = 0;
  for (int op = 0; op < 10000; ++op) {
    if (rng.chance(0.55) && !ring.full()) {
      auto slot = ring.produce_slot();
      slot[0] = static_cast<std::uint8_t>(write_seq);
      slot[1] = static_cast<std::uint8_t>(write_seq >> 8);
      ring.push();
      ++write_seq;
    } else if (!ring.empty()) {
      auto front = ring.front();
      const std::uint16_t got =
          static_cast<std::uint16_t>(front[0] | (front[1] << 8));
      ASSERT_EQ(got, read_seq);
      ring.pop();
      ++read_seq;
    }
    ASSERT_EQ(ring.size(), static_cast<std::size_t>(write_seq - read_seq));
  }
}

TEST(BufferPool, AllocateReleaseCycle) {
  BufferPool pool(4, 128);
  EXPECT_EQ(pool.free_count(), 4u);
  std::uint32_t ids[4];
  for (auto& id : ids) {
    ASSERT_TRUE(pool.allocate(id));
    EXPECT_EQ(pool.buffer(id).size(), 128u);
  }
  EXPECT_EQ(pool.free_count(), 0u);
  std::uint32_t overflow;
  EXPECT_FALSE(pool.allocate(overflow));
  pool.release(ids[2]);
  EXPECT_EQ(pool.free_count(), 1u);
  std::uint32_t again;
  ASSERT_TRUE(pool.allocate(again));
  EXPECT_EQ(again, ids[2]);
}

TEST(BufferPool, DoubleReleaseAndBadIdsRejected) {
  BufferPool pool(2, 64);
  std::uint32_t id;
  ASSERT_TRUE(pool.allocate(id));
  pool.release(id);
  EXPECT_THROW(pool.release(id), Error);    // double free
  EXPECT_THROW(pool.release(99), Error);    // bad id
  EXPECT_THROW((void)pool.buffer(99), Error);
  EXPECT_THROW(BufferPool(0, 64), Error);
  EXPECT_THROW(BufferPool(4, 0), Error);
}

TEST(BufferPool, BuffersAreDisjoint) {
  BufferPool pool(3, 16);
  std::uint32_t a, b;
  ASSERT_TRUE(pool.allocate(a));
  ASSERT_TRUE(pool.allocate(b));
  pool.buffer(a)[0] = 0x11;
  pool.buffer(b)[0] = 0x22;
  EXPECT_EQ(pool.buffer(a)[0], 0x11);
  EXPECT_EQ(pool.buffer(b)[0], 0x22);
}

}  // namespace
}  // namespace opendesc::sim
