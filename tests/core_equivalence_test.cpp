// Feature-equivalence tests (§5): interface equivalence over semantic
// multisets, structural equivalence modulo alpha-renaming, and the
// demonstration of the paper's negative result (two different RSS-flavoured
// algorithms are NOT structurally equivalent — hence the annotations).
#include <gtest/gtest.h>

#include "core/equivalence.hpp"
#include "p4/parser.hpp"
#include "p4/typecheck.hpp"

namespace opendesc::core {
namespace {

Intent intent_of(const char* source, softnic::SemanticRegistry& registry) {
  return parse_intent(source, registry);
}

TEST(InterfaceEquivalence, OrderAndNamesIrrelevantSemanticsDecide) {
  softnic::SemanticRegistry registry;
  const Intent a = intent_of(R"(header a_t {
      @semantic("rss")  bit<32> the_hash;
      @semantic("vlan") bit<16> tag;
  })", registry);
  const Intent b = intent_of(R"(header b_t {
      @semantic("vlan") bit<16> completely_different_name;
      @semantic("rss")  bit<32> x;
  })", registry);
  const Intent c = intent_of(R"(header c_t {
      @semantic("rss") bit<32> h;
  })", registry);
  EXPECT_TRUE(interface_equivalent(a, b));
  EXPECT_TRUE(interface_equivalent(b, a));
  EXPECT_FALSE(interface_equivalent(a, c));
}

struct TwoControls {
  p4::Program program;
  const p4::ControlDecl* first = nullptr;
  const p4::ControlDecl* second = nullptr;
};

TwoControls parse_two(const char* source, const char* name_a,
                      const char* name_b) {
  TwoControls out{p4::parse_program(source), nullptr, nullptr};
  (void)p4::check_program(out.program);
  out.first = out.program.find_control(name_a);
  out.second = out.program.find_control(name_b);
  return out;
}

TEST(StructuralEquivalence, AlphaRenamedVendorCopyMatches) {
  // Vendor B shipped vendor A's deparser with renamed parameters and a
  // renamed local — structurally the same feature.
  const TwoControls two = parse_two(R"(
      struct ctx_t { bit<1> use_rss; }
      header m_t { @semantic("rss") bit<32> h; @semantic("ip_checksum") bit<16> c; }
      control VendorA(cmpt_out out_ch, in ctx_t conf, in m_t meta) {
          apply {
              bit<8> scratch = 1;
              if (conf.use_rss == 1) {
                  out_ch.emit(meta.h);
              } else {
                  out_ch.emit(meta.c);
              }
          }
      }
      control VendorB(cmpt_out tx, in ctx_t settings, in m_t fields) {
          apply {
              bit<8> tmp = 1;
              if (settings.use_rss == 1) {
                  tx.emit(fields.h);
              } else {
                  tx.emit(fields.c);
              }
          }
      }
  )", "VendorA", "VendorB");
  const StructuralResult result =
      structurally_equivalent(*two.first, *two.second);
  EXPECT_TRUE(result) << result.divergence;
}

TEST(StructuralEquivalence, DifferentAlgorithmsDiverge) {
  // The paper's RSS observation: vendors' hashing schemes "differ slightly"
  // — here one emits the hash, the other emits a truncated/transformed
  // variant.  Structural comparison correctly refuses to call them equal,
  // which is precisely why OpenDesc uses @semantic annotations instead.
  const TwoControls two = parse_two(R"(
      struct ctx_t { bit<1> u; }
      header m_t { @semantic("rss") bit<32> h; @semantic("ip_id") bit<16> i; }
      control HashA(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { o.emit(m.h); }
      }
      control HashB(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { o.emit(m.i); }
      }
  )", "HashA", "HashB");
  const StructuralResult result =
      structurally_equivalent(*two.first, *two.second);
  EXPECT_FALSE(result);
  EXPECT_NE(result.divergence.find("member names differ"), std::string::npos);
}

TEST(StructuralEquivalence, DivergenceKindsReported) {
  const TwoControls literals = parse_two(R"(
      struct ctx_t { bit<2> m; }
      header m_t { @semantic("rss") bit<32> h; }
      control A(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { if (ctx.m == 1) { o.emit(m.h); } }
      }
      control B(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { if (ctx.m == 2) { o.emit(m.h); } }
      }
  )", "A", "B");
  const auto r1 = structurally_equivalent(*literals.first, *literals.second);
  EXPECT_FALSE(r1);
  EXPECT_NE(r1.divergence.find("literals differ"), std::string::npos);

  const TwoControls shape = parse_two(R"(
      struct ctx_t { bit<1> u; }
      header m_t { @semantic("rss") bit<32> h; @semantic("ip_id") bit<16> i; }
      control A(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { o.emit(m.h); }
      }
      control B(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { o.emit(m.h); o.emit(m.i); }
      }
  )", "A", "B");
  const auto r2 = structurally_equivalent(*shape.first, *shape.second);
  EXPECT_FALSE(r2);
  EXPECT_NE(r2.divergence.find("block lengths differ"), std::string::npos);

  const TwoControls params = parse_two(R"(
      struct ctx_t { bit<1> u; }
      header m_t { @semantic("rss") bit<32> h; }
      control A(cmpt_out o, in ctx_t ctx, in m_t m) { apply { } }
      control B(cmpt_out o, in m_t m) { apply { } }
  )", "A", "B");
  const auto r3 = structurally_equivalent(*params.first, *params.second);
  EXPECT_FALSE(r3);
  EXPECT_NE(r3.divergence.find("parameter counts"), std::string::npos);
}

TEST(StructuralEquivalence, SelfEquivalenceOnCatalogScale) {
  // Reflexivity over a real, branching deparser.
  const TwoControls two = parse_two(R"(
      struct ctx_t { bit<1> a; bit<1> b; }
      header m_t {
          @semantic("rss") bit<32> h;
          @semantic("vlan") bit<16> v;
          @semantic("pkt_len") bit<16> l;
      }
      control A(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              o.emit(m.l);
              if (ctx.a == 1) {
                  o.emit(m.h);
                  if (ctx.b == 1) { o.emit(m.v); }
              } else {
                  o.emit(m.v);
              }
          }
      }
      control B(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              o.emit(m.l);
              if (ctx.a == 1) {
                  o.emit(m.h);
                  if (ctx.b == 1) { o.emit(m.v); }
              } else {
                  o.emit(m.v);
              }
          }
      }
  )", "A", "B");
  EXPECT_TRUE(structurally_equivalent(*two.first, *two.second));
  EXPECT_TRUE(structurally_equivalent(*two.first, *two.first));
}

}  // namespace
}  // namespace opendesc::core
