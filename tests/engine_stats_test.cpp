// StatsRegistry: exact, epoch-consistent shard counters.  The concurrency
// tests here double as the TSan workload for the seqlock (engine_stats_tsan
// twin binary recompiles the whole library with -fsanitize=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "engine/stats.hpp"

namespace opendesc::engine {
namespace {

rt::RxLoopStats make_stats(std::uint64_t base) {
  rt::RxLoopStats stats;
  stats.packets = base + 1;
  stats.drops = base + 2;
  stats.value_checksum = 0x9E3779B97F4A7C15ULL * (base + 3);
  stats.host_ns = static_cast<double>(base) + 0.25;
  stats.completion_bytes = base + 4;
  stats.frame_bytes = base + 5;
  stats.drops_ring_full = base + 6;
  stats.drops_pool_exhausted = base + 7;
  stats.drops_oversize = base + 8;
  stats.hw_consumed = base + 9;
  stats.quarantined = base + 10;
  stats.softnic_recovered = base + 11;
  stats.lost_completions = base + 12;
  stats.rx_rejected = base + 13;
  stats.unrecoverable_values = base + 14;
  return stats;
}

void expect_equal(const rt::RxLoopStats& a, const rt::RxLoopStats& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.value_checksum, b.value_checksum);
  EXPECT_DOUBLE_EQ(a.host_ns, b.host_ns);
  EXPECT_EQ(a.completion_bytes, b.completion_bytes);
  EXPECT_EQ(a.frame_bytes, b.frame_bytes);
  EXPECT_EQ(a.drops_ring_full, b.drops_ring_full);
  EXPECT_EQ(a.drops_pool_exhausted, b.drops_pool_exhausted);
  EXPECT_EQ(a.drops_oversize, b.drops_oversize);
  EXPECT_EQ(a.hw_consumed, b.hw_consumed);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.softnic_recovered, b.softnic_recovered);
  EXPECT_EQ(a.lost_completions, b.lost_completions);
  EXPECT_EQ(a.rx_rejected, b.rx_rejected);
  EXPECT_EQ(a.unrecoverable_values, b.unrecoverable_values);
}

TEST(StatsCodec, EncodeDecodeRoundTripsEveryField) {
  const rt::RxLoopStats stats = make_stats(1000);
  expect_equal(decode_stats(encode_stats(stats)), stats);
}

TEST(StatsCodec, HostNsSurvivesBitCast) {
  rt::RxLoopStats stats;
  stats.host_ns = 123456789.987654321;  // not representable as an integer
  expect_equal(decode_stats(encode_stats(stats)), stats);
}

TEST(StatsRegistryTest, PublishThenSnapshotIsExact) {
  StatsRegistry registry(3);
  EXPECT_EQ(registry.shards(), 3u);
  for (std::size_t shard = 0; shard < 3; ++shard) {
    EXPECT_EQ(registry.epoch(shard), 0u);
    const rt::RxLoopStats stats = make_stats(100 * shard);
    registry.publish(shard, stats);
    EXPECT_EQ(registry.epoch(shard), 2u);  // one publish = +2, stable (even)
    expect_equal(registry.snapshot(shard), stats);
  }
  // Republishing overwrites; snapshots always see the latest totals.
  const rt::RxLoopStats updated = make_stats(7777);
  registry.publish(1, updated);
  EXPECT_EQ(registry.epoch(1), 4u);
  expect_equal(registry.snapshot(1), updated);
}

TEST(StatsRegistryTest, AggregateSumsAllShards) {
  StatsRegistry registry(4);
  rt::RxLoopStats expected;
  for (std::size_t shard = 0; shard < 4; ++shard) {
    const rt::RxLoopStats stats = make_stats(10 * shard);
    registry.publish(shard, stats);
    expected += stats;
  }
  expect_equal(registry.aggregate(), expected);
}

TEST(StatsRegistryTest, ConcurrentSnapshotsAreNeverTorn) {
  // The writer maintains cross-field invariants in everything it publishes;
  // a torn (mixed-epoch) snapshot would break them.  The reader hammers
  // snapshot() while the writer republishes — every retrieved snapshot must
  // be one the writer actually published.
  StatsRegistry registry(1);
  constexpr std::uint64_t kPublishes = 20000;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= kPublishes; ++i) {
      rt::RxLoopStats stats;
      stats.packets = 3 * i;
      stats.hw_consumed = 2 * i;          // invariant: hw + recovered ==
      stats.softnic_recovered = i;        //            packets
      stats.value_checksum = 3 * i * 31;  // invariant: checksum == 31*packets
      stats.host_ns = static_cast<double>(3 * i);
      registry.publish(0, stats);
    }
    done.store(true, std::memory_order_release);
  });

  std::uint64_t observed = 0;
  std::uint64_t last_packets = 0;
  while (!done.load(std::memory_order_acquire)) {
    const rt::RxLoopStats snap = registry.snapshot(0);
    ASSERT_EQ(snap.hw_consumed + snap.softnic_recovered, snap.packets);
    ASSERT_EQ(snap.value_checksum, snap.packets * 31);
    ASSERT_DOUBLE_EQ(snap.host_ns, static_cast<double>(snap.packets));
    // Monotone: a later snapshot never time-travels behind an earlier one.
    ASSERT_GE(snap.packets, last_packets);
    last_packets = snap.packets;
    ++observed;
  }
  writer.join();
  EXPECT_GT(observed, 0u);
  expect_equal(registry.snapshot(0),
               registry.snapshot(0));  // quiescent: stable
  EXPECT_EQ(registry.snapshot(0).packets, 3 * kPublishes);
  EXPECT_EQ(registry.epoch(0), 2 * kPublishes);
}

TEST(StatsRegistryTest, ConcurrentShardsPublishIndependently) {
  // One writer per shard plus an aggregating reader: slots may not interfere
  // (false sharing is a perf bug; cross-slot corruption would be a
  // correctness bug this test catches under TSan).
  constexpr std::size_t kShards = 4;
  constexpr std::uint64_t kPublishes = 5000;
  StatsRegistry registry(kShards);
  std::atomic<std::size_t> running{kShards};

  std::vector<std::thread> writers;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    writers.emplace_back([&, shard] {
      for (std::uint64_t i = 1; i <= kPublishes; ++i) {
        rt::RxLoopStats stats;
        stats.packets = i;
        stats.hw_consumed = i;
        stats.value_checksum = (shard + 1) * i;
        registry.publish(shard, stats);
      }
      running.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  while (running.load(std::memory_order_acquire) > 0) {
    const rt::RxLoopStats total = registry.aggregate();
    ASSERT_LE(total.packets, kShards * kPublishes);
    ASSERT_EQ(total.hw_consumed, total.packets);
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(registry.aggregate().packets, kShards * kPublishes);
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    EXPECT_EQ(registry.snapshot(shard).packets, kPublishes);
    EXPECT_EQ(registry.snapshot(shard).value_checksum,
              (shard + 1) * kPublishes);
  }
}

// --- RxLoopStats aggregation semantics (satellite 1) ------------------------

TEST(RxLoopStatsMerge, RatesWeightByPacketCountsNotByQueue) {
  // Queue A: 9000 packets at 10 ns each.  Queue B: 1000 packets at 100 ns.
  // The naive mean of per-queue averages would claim 55 ns/packet; the
  // packet-weighted truth is (90000 + 100000) / 10000 = 19 ns.
  rt::RxLoopStats a;
  a.packets = 9000;
  a.host_ns = 9000 * 10.0;
  a.value_checksum = 0xAAAA;
  rt::RxLoopStats b;
  b.packets = 1000;
  b.host_ns = 1000 * 100.0;
  b.value_checksum = 0x5555;

  rt::RxLoopStats merged = a;
  merged += b;
  EXPECT_EQ(merged.packets, 10000u);
  EXPECT_DOUBLE_EQ(merged.ns_per_packet(), 19.0);
  EXPECT_NE(merged.ns_per_packet(), (a.ns_per_packet() + b.ns_per_packet()) / 2);
  EXPECT_EQ(merged.value_checksum, 0xAAAAu ^ 0x5555u);

  // delivery_ratio divides total delivered by total offered: two queues at
  // 100% merge to 100%, and a shortfall on one queue dilutes by its share.
  EXPECT_DOUBLE_EQ(merged.delivery_ratio(10000), 1.0);
  rt::RxLoopStats lossy = b;
  lossy.packets = 500;  // queue B only delivered half
  rt::RxLoopStats partial = a;
  partial += lossy;
  EXPECT_DOUBLE_EQ(partial.delivery_ratio(10000), 9500.0 / 10000.0);
}

TEST(RxLoopStatsMerge, AllCountersAdd) {
  const rt::RxLoopStats a = make_stats(100);
  const rt::RxLoopStats b = make_stats(2000);
  const rt::RxLoopStats sum = a + b;
  EXPECT_EQ(sum.packets, a.packets + b.packets);
  EXPECT_EQ(sum.drops, a.drops + b.drops);
  EXPECT_EQ(sum.value_checksum, a.value_checksum ^ b.value_checksum);
  EXPECT_DOUBLE_EQ(sum.host_ns, a.host_ns + b.host_ns);
  EXPECT_EQ(sum.completion_bytes, a.completion_bytes + b.completion_bytes);
  EXPECT_EQ(sum.frame_bytes, a.frame_bytes + b.frame_bytes);
  EXPECT_EQ(sum.drops_ring_full, a.drops_ring_full + b.drops_ring_full);
  EXPECT_EQ(sum.drops_pool_exhausted,
            a.drops_pool_exhausted + b.drops_pool_exhausted);
  EXPECT_EQ(sum.drops_oversize, a.drops_oversize + b.drops_oversize);
  EXPECT_EQ(sum.hw_consumed, a.hw_consumed + b.hw_consumed);
  EXPECT_EQ(sum.quarantined, a.quarantined + b.quarantined);
  EXPECT_EQ(sum.softnic_recovered, a.softnic_recovered + b.softnic_recovered);
  EXPECT_EQ(sum.lost_completions, a.lost_completions + b.lost_completions);
  EXPECT_EQ(sum.rx_rejected, a.rx_rejected + b.rx_rejected);
  EXPECT_EQ(sum.unrecoverable_values,
            a.unrecoverable_values + b.unrecoverable_values);
}

}  // namespace
}  // namespace opendesc::engine
