// CFG extraction tests (§4 step 1): emit vertices, labelled branch edges,
// and the Fig. 6 running example's graph shape.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/cfg.hpp"
#include "p4/parser.hpp"

namespace opendesc::core {
namespace {

struct Built {
  p4::Program program;
  p4::TypeInfo types;
  softnic::SemanticRegistry registry;
  Cfg cfg;
};

Built build(std::string_view source, const std::string& control_name) {
  Built b{p4::parse_program(source), {}, {}, {}};
  b.types = p4::check_program(b.program);
  const p4::ControlDecl* control = b.program.find_control(control_name);
  if (control == nullptr) {
    throw std::logic_error("control not found");
  }
  b.cfg = build_cfg(b.program, b.types, *control, b.registry);
  return b;
}

constexpr const char* kFig6 = R"(
    struct ctx_t { bit<1> use_rss; }
    header meta_t {
        @semantic("rss")         bit<32> rss;
        @semantic("ip_id")       bit<16> ip_id;
        @semantic("ip_checksum") bit<16> csum;
    }
    control E1000e(cmpt_out o, in ctx_t ctx, in meta_t m) {
        apply {
            if (ctx.use_rss == 1) {
                o.emit(m.rss);
            } else {
                o.emit(m.ip_id);
                o.emit(m.csum);
            }
        }
    }
)";

TEST(Cfg, Fig6GraphShape) {
  const Built b = build(kFig6, "E1000e");
  // 3 emit vertices (rss | ip_id, csum), 1 branch.
  EXPECT_EQ(b.cfg.emit_count(), 3u);
  EXPECT_EQ(b.cfg.branch_count(), 1u);

  // The branch node has exactly one true-labelled and one false-labelled
  // outgoing edge.
  const CfgNode* branch = nullptr;
  for (const CfgNode& node : b.cfg.nodes()) {
    if (node.kind == CfgNodeKind::branch) {
      branch = &node;
    }
  }
  ASSERT_NE(branch, nullptr);
  ASSERT_NE(branch->predicate, nullptr);
  int true_edges = 0, false_edges = 0;
  for (const CfgEdge* e : b.cfg.successors(branch->id)) {
    if (e->polarity == true) ++true_edges;
    if (e->polarity == false) ++false_edges;
  }
  EXPECT_EQ(true_edges, 1);
  EXPECT_EQ(false_edges, 1);
}

TEST(Cfg, EmitVertexProperties) {
  const Built b = build(kFig6, "E1000e");
  // Find the rss emit: 32 bits, semantic rss.
  bool found_rss = false, found_csum = false;
  for (const CfgNode& node : b.cfg.nodes()) {
    if (node.kind != CfgNodeKind::emit || node.pieces.empty()) {
      continue;
    }
    const EmitPiece& piece = node.pieces[0];
    if (piece.field_name == "rss") {
      found_rss = true;
      EXPECT_EQ(node.size_bits(), 32u);
      EXPECT_EQ(piece.semantic, softnic::SemanticId::rss_hash);
    }
    if (piece.field_name == "csum") {
      found_csum = true;
      EXPECT_EQ(piece.semantic, softnic::SemanticId::ip_checksum);
      EXPECT_EQ(piece.bit_width, 16u);
    }
  }
  EXPECT_TRUE(found_rss);
  EXPECT_TRUE(found_csum);
}

TEST(Cfg, WholeHeaderEmitBecomesOneVertexWithAllPieces) {
  const Built b = build(R"(
      struct ctx_t { bit<1> u; }
      header m_t {
          @semantic("pkt_len") bit<16> len;
          @fixed(1) bit<8> status;
          bit<8> pad;
      }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { o.emit(m); }
      }
  )", "C");
  EXPECT_EQ(b.cfg.emit_count(), 1u);
  const CfgNode* emit = nullptr;
  for (const CfgNode& node : b.cfg.nodes()) {
    if (node.kind == CfgNodeKind::emit && !node.pieces.empty()) {
      emit = &node;
    }
  }
  ASSERT_NE(emit, nullptr);
  ASSERT_EQ(emit->pieces.size(), 3u);
  EXPECT_EQ(emit->size_bits(), 32u);
  EXPECT_EQ(emit->pieces[1].fixed_value, 1u);
  EXPECT_EQ(emit->pieces[2].semantic, std::nullopt);
}

TEST(Cfg, IfWithoutElseGetsFallthroughEdge) {
  const Built b = build(R"(
      struct ctx_t { bit<1> extra; }
      header m_t { @semantic("pkt_len") bit<16> len; @semantic("rss") bit<32> h; }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              o.emit(m.len);
              if (ctx.extra == 1) {
                  o.emit(m.h);
              }
          }
      }
  )", "C");
  EXPECT_EQ(b.cfg.emit_count(), 2u);
  EXPECT_EQ(b.cfg.branch_count(), 1u);
  // Both branch outcomes must reach the exit.
  const auto succ = b.cfg.successors(b.cfg.exit_id());
  EXPECT_TRUE(succ.empty());
}

TEST(Cfg, NonEmitCallsIgnored) {
  const Built b = build(R"(
      struct ctx_t { bit<1> u; }
      header m_t { @semantic("pkt_len") bit<16> len; }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              log.debug(m.len);
              o.emit(m.len);
          }
      }
  )", "C");
  EXPECT_EQ(b.cfg.emit_count(), 1u);
}

TEST(Cfg, EmitErrorsDiagnosed) {
  // Unknown parameter.
  EXPECT_THROW((void)build(R"(
      struct ctx_t { bit<1> u; }
      header m_t { bit<8> x; }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { o.emit(ghost.x); }
      }
  )", "C"), Error);
  // Unknown field.
  EXPECT_THROW((void)build(R"(
      struct ctx_t { bit<1> u; }
      header m_t { bit<8> x; }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { o.emit(m.nothere); }
      }
  )", "C"), Error);
  // Unknown @semantic name.
  EXPECT_THROW((void)build(R"(
      struct ctx_t { bit<1> u; }
      header m_t { @semantic("martian") bit<8> x; }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply { o.emit(m.x); }
      }
  )", "C"), Error);
  // No cmpt_out parameter at all.
  EXPECT_THROW((void)build(R"(
      struct ctx_t { bit<1> u; }
      control C(in ctx_t ctx) { apply { } }
  )", "C"), Error);
}

TEST(Cfg, DotRenderingMentionsNodes) {
  const Built b = build(kFig6, "E1000e");
  const std::string dot = b.cfg.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("emit rss"), std::string::npos);
  EXPECT_NE(dot.find("ctx.use_rss == 1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"true\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"false\""), std::string::npos);
}

TEST(Cfg, DeeplyNestedConditionals) {
  const Built b = build(R"(
      struct ctx_t { bit<4> level; }
      header m_t {
          @semantic("rss") bit<32> a;
          @semantic("vlan") bit<16> b;
          @semantic("ip_id") bit<16> c;
          @semantic("pkt_len") bit<16> d;
      }
      control C(cmpt_out o, in ctx_t ctx, in m_t m) {
          apply {
              if (ctx.level >= 1) {
                  o.emit(m.a);
                  if (ctx.level >= 2) {
                      o.emit(m.b);
                      if (ctx.level >= 3) {
                          o.emit(m.c);
                      }
                  }
              } else {
                  o.emit(m.d);
              }
          }
      }
  )", "C");
  EXPECT_EQ(b.cfg.branch_count(), 3u);
  EXPECT_EQ(b.cfg.emit_count(), 4u);
}

}  // namespace
}  // namespace opendesc::core
