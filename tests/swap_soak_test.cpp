// Swap-soak suite: live layout evolution under sustained fire.  Back-to-back
// epoch hot-swaps run under 4-queue traffic at 1% composite faults and must
// keep 100% goodput with exact per-epoch packet accounting; poisoned control
// channels (dropped register writes, corrupted guard probes) must roll back
// cleanly — engine still on the old epoch, still delivering every packet.
// The ASan and TSan twins (swap_soak_san_test / swap_soak_tsan_test)
// recompile the whole library with instrumentation, so the drain barrier and
// the refcounted generation handoff are also the race detector's workload.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "runtime/epoch.hpp"
#include "sim/faults.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/sink.hpp"

namespace opendesc::rt {
namespace {

struct SoakFixture {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs{registry};
  core::Compiler compiler{registry, costs};
  softnic::ComputeEngine compute{registry};
  core::CompileResult result;
  /// The swap target: the same intent recompiled under a DMA-austere alpha.
  std::shared_ptr<const core::CompileResult> alt;
  /// A swap target on ice's flex path (ctx.flex_profile=1): its register
  /// assignment differs from a fresh register file, so a control channel
  /// that drops every write can never fake a successful readback.
  std::shared_ptr<const core::CompileResult> flex;

  SoakFixture()
      : result(compile(1.0)),
        alt(std::make_shared<const core::CompileResult>(compile(16.0))),
        flex(std::make_shared<const core::CompileResult>(
            compile(1.0,
                    R"(header flex_t {
                        @semantic("timestamp") bit<64> t;
                        @semantic("rss")       bit<32> h;
                    })"))) {}

  [[nodiscard]] core::CompileResult compile(
      double alpha, const char* intent = R"(header soak_t {
                                @semantic("rss")     bit<32> h;
                                @semantic("vlan")    bit<16> v;
                                @semantic("pkt_len") bit<16> l;
                            })") {
    core::CompileOptions options;
    options.dma_weight_per_byte = alpha;
    return compiler.compile(nic::NicCatalog::by_name("ice").p4_source(),
                            intent, options);
  }

  [[nodiscard]] std::vector<net::Packet> trace(std::size_t n) const {
    net::WorkloadConfig config;
    config.seed = 42;
    config.vlan_probability = 0.4;
    config.udp_fraction = 0.5;
    config.ipv6_fraction = 0.25;
    config.min_frame = 96;
    net::WorkloadGenerator gen(config);
    return gen.batch(n);
  }
};

/// First sample value of `series` (e.g. `opendesc_layout_epoch` or
/// `opendesc_layout_swaps_total{outcome="rolled_back"}`) in a Prometheus
/// exposition, or -1 when the series is absent.
double metric_value(const std::string& text, const std::string& series) {
  // Line-anchored so a bare gauge name can't match its own HELP comment.
  const std::string needle = "\n" + series + " ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) {
    return -1.0;
  }
  return std::stod(text.substr(at + needle.size()));
}

TEST(SwapSoakTest, BackToBackSwapsUnderFaultsKeepFullGoodput) {
  SoakFixture fx;
  const std::vector<net::Packet> packets = fx.trace(12000);

  telemetry::SinkConfig sink_config;
  sink_config.queues = 4;
  telemetry::Sink sink(sink_config);

  rt::EngineConfig config;
  config.queues = 4;
  config.guard = true;
  config.fault_rate = 0.01;
  config.fault_seed = 7;
  config.swap_every = 1200;
  config.telemetry = &sink;
  MultiQueueEngine engine(fx.result, fx.compute, config);
  engine.set_swap_cycle(
      {fx.alt, std::make_shared<const core::CompileResult>(fx.result)});

  const EngineReport report = engine.run(packets);
  const LayoutEpochManager& epochs = engine.epochs();

  // >= 8 back-to-back live swaps, every one committed.
  const std::uint64_t committed = epochs.swaps(SwapOutcome::committed);
  EXPECT_GE(committed, 8u);
  EXPECT_EQ(epochs.swaps(SwapOutcome::rolled_back), 0u);
  EXPECT_EQ(epochs.current_epoch(), committed + 1);

  // Zero-loss cutover: 100% goodput across every swap, all of it accounted
  // to the hardware or SoftNIC recovery path.
  EXPECT_EQ(report.total.packets, report.offered_total);
  EXPECT_DOUBLE_EQ(report.total.delivery_ratio(report.offered_total), 1.0);
  EXPECT_EQ(report.total.hw_consumed + report.total.softnic_recovered,
            report.total.packets);
  EXPECT_GT(report.total.quarantined, 0u);  // the faults really fired

  // Per-epoch packet accounting is exact: the provenance deltas partition
  // the run — no packet double-counted, none unattributed.
  std::uint64_t epoch_packets = 0;
  std::uint64_t epoch_quarantined = 0;
  std::uint64_t epoch_softnic = 0;
  std::uint64_t checksum = 0;
  for (const EpochAccounting& acct : epochs.accounting()) {
    epoch_packets += acct.stats.packets;
    epoch_quarantined += acct.stats.quarantined;
    epoch_softnic += acct.stats.softnic_recovered;
    checksum ^= acct.stats.value_checksum;
  }
  EXPECT_EQ(epoch_packets, report.total.packets);
  EXPECT_EQ(epoch_quarantined, report.total.quarantined);
  EXPECT_EQ(epoch_softnic, report.total.softnic_recovered);
  EXPECT_EQ(checksum, report.total.value_checksum);

  // Reclamation: every superseded epoch was released by all four queues and
  // retired; only the final generation is still live.
  for (const EpochAccounting& acct : epochs.accounting()) {
    if (acct.epoch != epochs.current_epoch()) {
      EXPECT_TRUE(acct.retired) << "epoch " << acct.epoch << " leaked";
      EXPECT_EQ(acct.released_queues, 4u);
    }
  }
  EXPECT_EQ(epochs.live_generations(), 1u);

  // The metric families agree with the manager.
  const std::string scrape = telemetry::to_prometheus(sink.registry());
  EXPECT_EQ(metric_value(scrape, "opendesc_layout_epoch"),
            static_cast<double>(epochs.current_epoch()));
  EXPECT_EQ(metric_value(
                scrape, "opendesc_layout_swaps_total{outcome=\"committed\"}"),
            static_cast<double>(committed));
}

TEST(SwapSoakTest, DroppedControlWritesRollBackAndEngineStaysServing) {
  SoakFixture fx;
  const std::vector<net::Packet> packets = fx.trace(6000);

  telemetry::SinkConfig sink_config;
  sink_config.queues = 4;
  telemetry::Sink sink(sink_config);

  rt::EngineConfig config;
  config.queues = 4;
  config.guard = true;
  config.fault_rate = 0.01;
  config.fault_seed = 7;
  config.telemetry = &sink;
  MultiQueueEngine engine(fx.result, fx.compute, config);

  // A swap over a control channel that loses every register write must
  // exhaust its bounded backoff and roll back...
  SwapRequest poisoned;
  poisoned.result = fx.flex;
  poisoned.ctrl_faults = sim::FaultConfig{};
  poisoned.ctrl_faults->seed = 99;
  poisoned.ctrl_faults->rate(sim::FaultClass::ctrl_write_drop) = 1.0;
  poisoned.at_offered = 1500;
  engine.request_swap(poisoned);

  // ...and a later swap over a healthy channel must still commit: a failed
  // swap degrades gracefully, it does not wedge the control plane.
  SwapRequest healthy;
  healthy.result = fx.alt;
  healthy.at_offered = 3500;
  engine.request_swap(healthy);

  const EngineReport report = engine.run(packets);
  const LayoutEpochManager& epochs = engine.epochs();

  const std::vector<SwapRecord> history = epochs.history();
  ASSERT_EQ(history.size(), 2u);
  const SwapRecord& rollback = history[0];
  EXPECT_EQ(rollback.outcome, SwapOutcome::rolled_back);
  EXPECT_EQ(rollback.from_epoch, 1u);
  EXPECT_GT(rollback.attempts, 1u);  // bounded backoff actually retried
  EXPECT_FALSE(rollback.detail.empty());
  EXPECT_EQ(history[1].outcome, SwapOutcome::committed);

  // The failed swap left the engine on epoch 1 until the healthy one landed.
  EXPECT_EQ(epochs.swaps(SwapOutcome::rolled_back), 1u);
  EXPECT_EQ(epochs.swaps(SwapOutcome::committed), 1u);
  EXPECT_EQ(epochs.current_epoch(), 2u);

  // Zero loss throughout, including across the failed attempt.
  EXPECT_EQ(report.total.packets, report.offered_total);
  EXPECT_DOUBLE_EQ(report.total.delivery_ratio(report.offered_total), 1.0);
  std::uint64_t epoch_packets = 0;
  for (const EpochAccounting& acct : epochs.accounting()) {
    epoch_packets += acct.stats.packets;
  }
  EXPECT_EQ(epoch_packets, report.total.packets);

  // The rollback is observable: flight incident + outcome-labelled counter.
  EXPECT_GE(sink.flight().count(telemetry::FlightCause::layout_swap_rolled_back),
            1u);
  const std::string scrape = telemetry::to_prometheus(sink.registry());
  EXPECT_GE(metric_value(
                scrape, "opendesc_layout_swaps_total{outcome=\"rolled_back\"}"),
            1.0);
  EXPECT_EQ(metric_value(scrape, "opendesc_layout_epoch"), 2.0);
}

TEST(SwapSoakTest, GuardProbeMismatchRollsBack) {
  SoakFixture fx;
  const std::vector<net::Packet> packets = fx.trace(3000);

  rt::EngineConfig config;
  config.queues = 2;
  config.guard = true;
  MultiQueueEngine engine(fx.result, fx.compute, config);

  // Register writes land, but the guard-probe completion comes back
  // corrupted: the sealed-record verification must refuse the generation.
  SwapRequest poisoned;
  poisoned.result = fx.alt;
  poisoned.ctrl_faults = sim::FaultConfig{};
  poisoned.ctrl_faults->seed = 5;
  poisoned.ctrl_faults->rate(sim::FaultClass::record_bitflip) = 1.0;
  poisoned.at_offered = 1000;
  engine.request_swap(poisoned);

  const EngineReport report = engine.run(packets);
  const LayoutEpochManager& epochs = engine.epochs();

  EXPECT_EQ(epochs.swaps(SwapOutcome::rolled_back), 1u);
  EXPECT_EQ(epochs.swaps(SwapOutcome::committed), 0u);
  EXPECT_EQ(epochs.current_epoch(), 1u);
  ASSERT_EQ(epochs.history().size(), 1u);
  EXPECT_NE(epochs.history()[0].detail.find("guard probe"), std::string::npos)
      << epochs.history()[0].detail;

  // Clean traffic on the old epoch: nothing lost, nothing degraded.
  EXPECT_EQ(report.total.packets, report.offered_total);
  EXPECT_EQ(report.total.quarantined, 0u);
}

TEST(SwapSoakTest, SwapBeforeFirstPacketAppliesToWholeRun) {
  SoakFixture fx;
  const std::vector<net::Packet> packets = fx.trace(1000);

  rt::EngineConfig config;
  config.queues = 2;
  MultiQueueEngine engine(fx.result, fx.compute, config);

  SwapRequest request;
  request.result = fx.alt;
  request.at_offered = 0;  // apply before the first packet is steered
  engine.request_swap(request);

  const EngineReport report = engine.run(packets);
  EXPECT_EQ(engine.epochs().current_epoch(), 2u);
  EXPECT_EQ(report.total.packets, packets.size());

  // Everything ran under epoch 2; epoch 1 processed nothing.
  const auto first = engine.epochs().accounting_for(1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->stats.packets, 0u);
  const auto second = engine.epochs().accounting_for(2);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->stats.packets, packets.size());
}

}  // namespace
}  // namespace opendesc::rt
