// Unit and property tests for the bit-slice and byte-order utilities that
// every descriptor read/write goes through.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace opendesc {
namespace {

TEST(Bytes, ScalarLoadStoreRoundTrip) {
  std::uint8_t buf[8] = {};
  store_le16(buf, 0x1234);
  EXPECT_EQ(load_le16(buf), 0x1234);
  EXPECT_EQ(buf[0], 0x34);  // little-endian byte order on the wire

  store_be16(buf, 0x1234);
  EXPECT_EQ(load_be16(buf), 0x1234);
  EXPECT_EQ(buf[0], 0x12);

  store_le32(buf, 0xdeadbeef);
  EXPECT_EQ(load_le32(buf), 0xdeadbeef);
  store_be32(buf, 0xdeadbeef);
  EXPECT_EQ(load_be32(buf), 0xdeadbeef);

  store_le64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(load_le64(buf), 0x0123456789abcdefULL);
  store_be64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(load_be64(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(buf[0], 0x01);
}

TEST(Bytes, LowMask) {
  EXPECT_EQ(low_mask(0), 0u);
  EXPECT_EQ(low_mask(1), 1u);
  EXPECT_EQ(low_mask(8), 0xFFu);
  EXPECT_EQ(low_mask(63), 0x7FFFFFFFFFFFFFFFull);
  EXPECT_EQ(low_mask(64), ~std::uint64_t{0});
}

TEST(Bytes, ByteAlignedLittleEndianSlice) {
  std::vector<std::uint8_t> buf(8, 0);
  write_bits(buf, 2, 0, 16, Endian::little, 0xBEEF);
  EXPECT_EQ(read_bits(buf, 2, 0, 16, Endian::little), 0xBEEF);
  EXPECT_EQ(buf[2], 0xEF);
  EXPECT_EQ(buf[3], 0xBE);
  // Neighbours untouched.
  EXPECT_EQ(buf[1], 0);
  EXPECT_EQ(buf[4], 0);
}

TEST(Bytes, ByteAlignedBigEndianSlice) {
  std::vector<std::uint8_t> buf(8, 0);
  write_bits(buf, 2, 0, 16, Endian::big, 0xBEEF);
  EXPECT_EQ(read_bits(buf, 2, 0, 16, Endian::big), 0xBEEF);
  EXPECT_EQ(buf[2], 0xBE);
  EXPECT_EQ(buf[3], 0xEF);
}

TEST(Bytes, SubByteSlicesPreserveNeighbours) {
  std::vector<std::uint8_t> buf(2, 0xFF);
  write_bits(buf, 0, 3, 2, Endian::little, 0b00);
  // Bits 3..4 cleared, everything else still set.
  EXPECT_EQ(buf[0], 0b11100111);
  EXPECT_EQ(buf[1], 0xFF);
  EXPECT_EQ(read_bits(buf, 0, 3, 2, Endian::little), 0u);
  EXPECT_EQ(read_bits(buf, 0, 0, 3, Endian::little), 0b111u);
}

TEST(Bytes, CrossByteUnalignedSlice) {
  std::vector<std::uint8_t> buf(4, 0);
  // 12-bit field starting at bit 6 of byte 0.
  write_bits(buf, 0, 6, 12, Endian::little, 0xABC);
  EXPECT_EQ(read_bits(buf, 0, 6, 12, Endian::little), 0xABCu);
  write_bits(buf, 0, 6, 12, Endian::big, 0xABC);
  EXPECT_EQ(read_bits(buf, 0, 6, 12, Endian::big), 0xABCu);
}

TEST(Bytes, RejectsOutOfRangeGeometry) {
  std::vector<std::uint8_t> buf(4, 0);
  EXPECT_THROW((void)read_bits(buf, 0, 8, 4, Endian::little), std::invalid_argument);
  EXPECT_THROW((void)read_bits(buf, 0, 0, 0, Endian::little), std::invalid_argument);
  EXPECT_THROW((void)read_bits(buf, 0, 0, 65, Endian::little), std::invalid_argument);
  EXPECT_THROW((void)read_bits(buf, 0, 4, 64, Endian::little), std::invalid_argument);
  EXPECT_THROW((void)read_bits(buf, 3, 0, 16, Endian::little), std::out_of_range);
  EXPECT_THROW((void)read_bits(buf, 4, 0, 8, Endian::little), std::out_of_range);
}

TEST(Bytes, WriteMasksValueToWidth) {
  std::vector<std::uint8_t> buf(2, 0);
  write_bits(buf, 0, 0, 4, Endian::little, 0xFF);  // only low 4 bits stored
  EXPECT_EQ(read_bits(buf, 0, 0, 4, Endian::little), 0xFu);
  EXPECT_EQ(buf[0], 0x0F);
}

// Property: random geometry round-trips in both endiannesses and leaves all
// other bits untouched.
class BitSliceProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitSliceProperty, RandomRoundTripPreservesOtherBits) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const Endian endian = rng.chance(0.5) ? Endian::little : Endian::big;
    std::vector<std::uint8_t> buf(16);
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.next());
    }
    const std::size_t bit_offset = rng.bounded(8);
    const std::size_t max_width = 64 - bit_offset;
    const std::size_t bit_width = 1 + rng.bounded(max_width);
    const std::size_t span = bits_to_bytes(bit_offset + bit_width);
    const std::size_t byte_offset = rng.bounded(buf.size() - span + 1);
    const std::uint64_t value = rng.next() & low_mask(bit_width);

    std::vector<std::uint8_t> before = buf;
    write_bits(buf, byte_offset, bit_offset, bit_width, endian, value);
    EXPECT_EQ(read_bits(buf, byte_offset, bit_offset, bit_width, endian), value);

    // Restore the field to its previous value: buffer must be identical.
    const std::uint64_t old_value =
        read_bits(before, byte_offset, bit_offset, bit_width, endian);
    write_bits(buf, byte_offset, bit_offset, bit_width, endian, old_value);
    EXPECT_EQ(buf, before);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitSliceProperty, ::testing::Range(0, 8));

TEST(Bytes, HexDumpFormat) {
  const std::vector<std::uint8_t> buf = {0x00, 0x0a, 0xff};
  EXPECT_EQ(hex_dump(buf), "00 0a ff");
  EXPECT_EQ(hex_dump({}), "");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
    const std::uint64_t v = rng.range(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace opendesc
