// Portability walk-through: ONE application intent compiled against EVERY
// NIC in the catalog — the paper's Fig. 1 flow.  Prints, per NIC, the chosen
// completion layout, which requested semantics are hardware-provided vs
// software fallbacks, the context programming that steers the NIC onto the
// chosen path, and the Eq. 1 score of every candidate path.
//
// Run:  ./multi_nic_portability [--verbose]
#include <cstring>
#include <iostream>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "nic/model.hpp"

namespace {

// The paper's running application: "an application that wants to receive
// the checksum of a packet, the decapsulated vlan TCI, the RSS hash and the
// result of a specific feature, for instance the key of a key-value-store
// request" (§2, Fig. 1).
constexpr const char* kFig1Intent = R"P4(
header app_intent_t {
    @semantic("ip_checksum") bit<16> csum;
    @semantic("vlan")        bit<16> vlan_tci;
    @semantic("rss")         bit<32> rss_hash;
    @semantic("kv_key_hash") bit<32> kv_key;
}
)P4";

}  // namespace

int main(int argc, char** argv) {
  using namespace opendesc;
  const bool verbose = argc > 1 && std::strcmp(argv[1], "--verbose") == 0;

  std::cout << "One intent, every NIC (paper Fig. 1):\n" << kFig1Intent << "\n";
  std::printf("%-10s %-24s %6s %6s  %-30s %-22s\n", "nic", "class", "paths",
              "cmpt", "hardware-provided", "software-fallback");

  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    try {
      const core::CompileResult result =
          compiler.compile(model.p4_source(), kFig1Intent, {});

      std::string hw, sw;
      for (const core::IntentField& field : result.intent.fields) {
        const bool provided = result.chosen_path().provides(field.semantic);
        std::string& bucket = provided ? hw : sw;
        if (!bucket.empty()) bucket += ",";
        bucket += registry.name(field.semantic);
      }
      if (hw.empty()) hw = "(none)";
      if (sw.empty()) sw = "(none)";

      std::printf("%-10s %-24s %6zu %5zuB  %-30s %-22s\n", model.name().c_str(),
                  to_string(model.nic_class()).c_str(), result.paths.size(),
                  result.layout.total_bytes(), hw.c_str(), sw.c_str());

      if (verbose) {
        std::cout << "\n" << result.report << "\n";
      }
    } catch (const Error& e) {
      std::printf("%-10s %-24s  unsatisfiable: %s\n", model.name().c_str(),
                  to_string(model.nic_class()).c_str(), e.what());
    }
  }

  std::cout << "\nThe application code is identical in every row; only the\n"
               "generated accessors and fallback shims differ — the\n"
               "\"semantic alignment\" the paper argues for in §3.\n";
  return 0;
}
