// Generates the eBPF/XDP-ready accessor headers for every NIC in the
// catalog against a metadata-hungry intent and writes them to a directory —
// what a build system integrating OpenDesc would run at configure time.
//
// Run:  ./xdp_codegen [output-dir]     (default: ./generated)
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "nic/model.hpp"

namespace {

constexpr const char* kIntent = R"P4(
// An XDP load balancer's needs: steering hash, length, VLAN, flow id.
header xdp_lb_intent_t {
    @semantic("rss")     bit<32> hash;
    @semantic("pkt_len") bit<16> len;
    @semantic("vlan")    bit<16> vlan;
    @semantic("flow_id") bit<32> flow;
}
)P4";

}  // namespace

int main(int argc, char** argv) {
  using namespace opendesc;
  namespace fs = std::filesystem;

  const fs::path out_dir = argc > 1 ? argv[1] : "generated";
  fs::create_directories(out_dir);

  std::cout << "Writing generated accessors to " << out_dir << "/\n\n";
  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    try {
      const core::CompileResult result =
          compiler.compile(model.p4_source(), kIntent, {});

      const fs::path xdp_path = out_dir / (model.name() + "_xdp.h");
      const fs::path user_path = out_dir / (model.name() + "_user.h");
      const fs::path batch_path = out_dir / (model.name() + "_batch.h");
      const fs::path burst_path = out_dir / (model.name() + "_rx_burst.h");
      const fs::path manifest_path = out_dir / (model.name() + ".manifest");
      std::ofstream(xdp_path) << result.xdp_header;
      std::ofstream(user_path) << result.c_header;
      core::CodegenOptions cg;
      cg.prefix = "odx_" + model.name();
      std::ofstream(batch_path)
          << core::generate_c_batch_header(result.layout, registry, cg);
      std::vector<softnic::SemanticId> wanted;
      for (const auto& field : result.intent.fields) {
        wanted.push_back(field.semantic);
      }
      std::ofstream(burst_path) << core::generate_rx_burst_header(
          result.layout, wanted, registry, cg);
      std::ofstream(manifest_path) << result.manifest;

      std::cout << model.name() << ": " << result.layout.total_bytes()
                << "B completion, " << result.shims.size()
                << " software shim(s) -> " << xdp_path.filename().string()
                << ", " << user_path.filename().string() << ", "
                << batch_path.filename().string() << ", "
                << burst_path.filename().string() << ", "
                << manifest_path.filename().string() << "\n";
    } catch (const Error& e) {
      std::cout << model.name() << ": skipped (" << e.what() << ")\n";
    }
  }

  std::cout << "\nEach *_xdp.h accessor takes (data, data_end) and refuses\n"
               "out-of-bounds reads, mirroring the eBPF verifier contract\n"
               "(§4: \"access to the descriptor can be bounded and therefore\n"
               "read safely from an eBPF program\").\n";
  return 0;
}
