// Fig. 1 scenario: a key-value store wants the NIC to extract the request
// key (FlexNIC-style offload).  On a programmable NIC (qdma) the kv_key_hash
// semantic comes straight from the completion record; on fixed-function NICs
// the compiler falls back to a SoftNIC shim that parses the payload on the
// host.  This example runs the same application against both and reports
// where each semantic was served and at what cost.
//
// Run:  ./kvstore_offload [packet-count]
#include <array>
#include <iostream>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "nic/model.hpp"
#include "runtime/rxloop.hpp"

namespace {

constexpr const char* kKvIntent = R"P4(
// A KV server's per-packet needs: steer by hash, validate checksum, and —
// the application-specific part — the hash of the request key, so requests
// can be dispatched to the right shard without touching the payload.
header kv_intent_t {
    @semantic("rss")         bit<32> steer_hash;
    @semantic("l4_csum_ok")  bit<1>  csum_ok;
    @semantic("kv_key_hash") bit<32> key_hash;
    @semantic("pkt_len")     bit<16> len;
}
)P4";

}  // namespace

int main(int argc, char** argv) {
  using namespace opendesc;
  using softnic::SemanticId;

  const std::size_t packet_count =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 20000;

  const std::array<SemanticId, 4> wanted = {
      SemanticId::rss_hash, SemanticId::l4_csum_ok, SemanticId::kv_key_hash,
      SemanticId::pkt_len};

  std::cout << "KV-store offload (Fig. 1 scenario), " << packet_count
            << " requests per NIC\n\n";
  std::printf("%-10s %-6s %-10s %-28s %10s %12s\n", "nic", "cmpt", "kv-key",
              "software fallbacks", "ns/pkt", "fallbacks");

  for (const char* nic_name : {"dumbnic", "e1000e", "mlx5", "qdma"}) {
    try {
      const nic::NicModel& nic_model = nic::NicCatalog::by_name(nic_name);
      softnic::SemanticRegistry registry;
      softnic::CostTable costs(registry);
      core::Compiler compiler(registry, costs);
      const core::CompileResult result =
          compiler.compile(nic_model.p4_source(), kKvIntent, {});

      softnic::ComputeEngine engine(registry);
      sim::NicSimulator nic(result.layout, engine, {});
      rt::OpenDescStrategy strategy(result, engine);

      net::WorkloadConfig config;
      config.seed = 11;
      config.kv_requests = true;
      config.min_frame = 80;
      config.max_frame = 256;
      net::WorkloadGenerator gen(config);

      rt::RxLoopConfig loop;
      loop.packet_count = packet_count;
      const rt::RxLoopStats stats =
          rt::run_rx_loop(nic, gen, strategy, wanted, loop);

      std::string shims;
      for (const core::SoftNicShim& shim : result.shims) {
        if (!shims.empty()) shims += ",";
        shims += shim.semantic_name;
      }
      if (shims.empty()) shims = "(none)";

      std::printf("%-10s %4zuB %-10s %-28s %10.1f %12llu\n", nic_name,
                  result.layout.total_bytes(),
                  result.layout.find(SemanticId::kv_key_hash) ? "hardware"
                                                              : "software",
                  shims.c_str(), stats.ns_per_packet(),
                  static_cast<unsigned long long>(
                      strategy.facade().path_counters().total().softnic_shim));
    } catch (const Error& e) {
      std::printf("%-10s compilation failed: %s\n", nic_name, e.what());
    }
  }

  std::cout << "\nReading: the programmable NIC (qdma) serves the key hash "
               "from the completion record;\nfixed NICs pay the SoftNIC "
               "payload-parse on the host, visible in ns/pkt and the "
               "fallback counter.\n";
  return 0;
}
