// Quickstart: the OpenDesc pipeline in one file.
//
//   1. An application declares its intent as a P4 header with @semantic
//      annotations (Fig. 5 of the paper).
//   2. The compiler matches it against a NIC's P4 interface description,
//      enumerates the NIC's completion paths, and solves Eq. 1.
//   3. It emits a report, a C accessor header, an XDP-style header, and the
//      SoftNIC fallback list.
//
// Run:  ./quickstart [nic-name]     (default: e1000e)
#include <cstdio>
#include <iostream>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "nic/model.hpp"

namespace {

constexpr const char* kIntent = R"P4(
// "I want the RSS hash and the IP checksum for every received packet."
header my_intent_t {
    @semantic("rss")         bit<32> rss_val;
    @semantic("ip_checksum") bit<16> csum;
}
)P4";

}  // namespace

int main(int argc, char** argv) {
  using namespace opendesc;

  const std::string nic_name = argc > 1 ? argv[1] : "e1000e";
  try {
    const nic::NicModel& nic = nic::NicCatalog::by_name(nic_name);
    std::cout << "NIC:   " << nic.name() << " (" << to_string(nic.nic_class())
              << ") — " << nic.description() << "\n\n";

    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);

    const core::CompileResult result =
        compiler.compile(nic.p4_source(), kIntent, {});

    std::cout << result.report << "\n";
    std::cout << "=== Generated user-level accessor header ===\n"
              << result.c_header << "\n";
    std::cout << "=== Generated XDP accessor header ===\n"
              << result.xdp_header << "\n";
    std::cout << "=== Control-flow graph (Graphviz) ===\n" << result.cfg_dot;
    return 0;
  } catch (const Error& e) {
    std::cerr << "opendesc: " << e.what() << "\n";
    return 1;
  }
}
