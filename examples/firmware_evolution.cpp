// The title story, runnable: "from static NIC descriptors to EVOLVABLE
// metadata interfaces" — now without ever stopping the datapath.
//
// A NIC vendor ships three firmware generations of the same device.  The
// application's intent never changes; each new generation is recompiled from
// the same intent and HOT-SWAPPED into the running engine: the control plane
// programs and verifies the new layout off to the side, every queue drains
// to a barrier, and the epoch flips — no packet lost, no application change.
// A sabotaged swap (a control channel that drops every register write) is
// thrown in between the good ones to show the other half of the contract:
// verification exhausts its bounded backoff, the swap rolls back, and the
// engine keeps serving on the old firmware as if nothing happened.
//
// Run:  ./firmware_evolution [packets]
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "net/workload.hpp"
#include "runtime/epoch.hpp"
#include "sim/faults.hpp"

namespace {

// Generation 1: a dumb device — length only.
constexpr const char* kGen1 = R"P4(
struct fw_ctx_t { bit<1> unused; }
header fw_meta_t {
    @semantic("pkt_len") bit<16> len;
    @fixed(1) bit<8> dd;
    bit<8> rsvd;
}
@nic("acmenic")
control AcmeDeparser(cmpt_out o, in fw_ctx_t ctx, in fw_meta_t m) {
    apply { o.emit(m); }
}
)P4";

// Generation 2: checksum verification added.
constexpr const char* kGen2 = R"P4(
struct fw_ctx_t { bit<1> unused; }
header fw_meta_t {
    @semantic("pkt_len")    bit<16> len;
    @semantic("l4_csum_ok") bit<1>  ok;
    bit<7> flags_rsvd;
    @fixed(1) bit<8> dd;
}
@nic("acmenic")
control AcmeDeparser(cmpt_out o, in fw_ctx_t ctx, in fw_meta_t m) {
    apply { o.emit(m); }
}
)P4";

// Generation 3: an RSS engine with a selectable rich format.
constexpr const char* kGen3 = R"P4(
struct fw_ctx_t { bit<1> rss_en; }
header fw_meta_t {
    @semantic("pkt_len")    bit<16> len;
    @semantic("l4_csum_ok") bit<1>  ok;
    bit<7> flags_rsvd;
    @fixed(1) bit<8> dd;
    @semantic("rss")        bit<32> hash;
}
@nic("acmenic")
control AcmeDeparser(cmpt_out o, in fw_ctx_t ctx, in fw_meta_t m) {
    apply {
        o.emit(m.len);
        o.emit(m.ok);
        o.emit(m.flags_rsvd);
        o.emit(m.dd);
        if (ctx.rss_en == 1) {
            o.emit(m.hash);
        }
    }
}
)P4";

// The application — fixed for all generations.
constexpr const char* kIntent = R"P4(
header app_t {
    @semantic("pkt_len")    bit<16> len;
    @semantic("l4_csum_ok") bit<1>  ok;
    @semantic("rss")        bit<32> hash;
}
)P4";

const char* outcome_name(opendesc::rt::SwapOutcome outcome) {
  return outcome == opendesc::rt::SwapOutcome::committed ? "committed"
                                                         : "rolled back";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opendesc;

  const std::size_t packet_count =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 30000;

  std::cout << "One application intent, three firmware generations, "
               "zero downtime:\n"
            << kIntent << "\n";

  try {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    softnic::ComputeEngine compute(registry);

    // The running engine boots on generation 1; generations 2 and 3 are
    // compiled from the SAME intent and queued as live swaps.
    const core::CompileResult gen1 = compiler.compile(kGen1, kIntent, {});
    const auto gen2 = std::make_shared<const core::CompileResult>(
        compiler.compile(kGen2, kIntent, {}));
    const auto gen3 = std::make_shared<const core::CompileResult>(
        compiler.compile(kGen3, kIntent, {}));

    net::WorkloadConfig workload;
    workload.seed = 77;  // the same trace with or without swaps
    workload.bad_l4_csum_fraction = 0.1;
    net::WorkloadGenerator gen(workload);
    const std::vector<net::Packet> trace = gen.batch(packet_count);

    rt::EngineConfig config;
    config.queues = 4;
    config.guard = true;
    rt::MultiQueueEngine engine(gen1, compute, config);

    // Upgrade to gen2 a third of the way in.
    rt::SwapRequest to_gen2;
    to_gen2.result = gen2;
    to_gen2.at_offered = packet_count / 3;
    engine.request_swap(to_gen2);

    // A sabotaged gen3 upgrade: the control channel silently drops every
    // register write.  Verify-after-write must catch it and roll back.
    rt::SwapRequest sabotaged;
    sabotaged.result = gen3;
    sabotaged.ctrl_faults = sim::FaultConfig{};
    sabotaged.ctrl_faults->seed = 13;
    sabotaged.ctrl_faults->rate(sim::FaultClass::ctrl_write_drop) = 1.0;
    sabotaged.at_offered = packet_count / 2;
    engine.request_swap(sabotaged);

    // ...and the honest gen3 upgrade lands two thirds of the way in.
    rt::SwapRequest to_gen3;
    to_gen3.result = gen3;
    to_gen3.at_offered = 2 * packet_count / 3;
    engine.request_swap(to_gen3);

    const rt::EngineReport report = engine.run(trace);
    const rt::LayoutEpochManager& epochs = engine.epochs();

    std::printf("swap history:\n");
    for (const rt::SwapRecord& swap : epochs.history()) {
      std::printf("  epoch %llu -> %llu  %-11s attempts %zu%s%s\n",
                  static_cast<unsigned long long>(swap.from_epoch),
                  static_cast<unsigned long long>(swap.to_epoch),
                  outcome_name(swap.outcome), swap.attempts,
                  swap.detail.empty() ? "" : "  — ", swap.detail.c_str());
    }

    std::printf("\nper-epoch accounting:\n");
    std::printf("  %-6s %-10s %6s %10s %12s %18s\n", "epoch", "path", "cmpt",
                "packets", "shim reads", "value checksum");
    for (const rt::EpochAccounting& acct : epochs.accounting()) {
      std::uint64_t shim_reads = 0;  // semantics served in software
      for (const auto& [raw, counts] : acct.semantic_paths.snapshot()) {
        shim_reads += counts.softnic_shim;
      }
      std::printf("  %-6llu %-10s %5zuB %10llu %12llu %18llx\n",
                  static_cast<unsigned long long>(acct.epoch),
                  acct.path_id.c_str(), acct.record_bytes,
                  static_cast<unsigned long long>(acct.stats.packets),
                  static_cast<unsigned long long>(shim_reads),
                  static_cast<unsigned long long>(acct.stats.value_checksum));
    }

    // The proof: a static gen3 engine over the identical trace observes the
    // identical semantic values — the swapped run lost and changed nothing.
    rt::MultiQueueEngine golden(*gen3, compute, config);
    const rt::EngineReport golden_report = golden.run(trace);

    std::printf("\ngoodput: %llu / %llu packets (%.1f%%) across %llu live "
                "swaps, %llu rolled back\n",
                static_cast<unsigned long long>(report.total.packets),
                static_cast<unsigned long long>(report.offered_total),
                100.0 * report.total.delivery_ratio(report.offered_total),
                static_cast<unsigned long long>(
                    epochs.swaps(rt::SwapOutcome::committed)),
                static_cast<unsigned long long>(
                    epochs.swaps(rt::SwapOutcome::rolled_back)));
    std::printf("value checksum: swapped run %llx, static gen3 run %llx — %s\n",
                static_cast<unsigned long long>(report.total.value_checksum),
                static_cast<unsigned long long>(
                    golden_report.total.value_checksum),
                report.total.value_checksum ==
                        golden_report.total.value_checksum
                    ? "identical"
                    : "MISMATCH");

    std::cout << "\nEach committed epoch moved work from the software column "
                 "into the completion\nrecord while packets kept flowing; the "
                 "sabotaged upgrade was refused by\nverify-after-write and "
                 "rolled back without dropping a packet.  The interface\n"
                 "evolved live — the application never stopped, never "
                 "changed, and never\nobserved a different value.\n";
  } catch (const Error& e) {
    std::cerr << "firmware_evolution failed: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
