// The title story, runnable: "from static NIC descriptors to EVOLVABLE
// metadata interfaces".
//
// A NIC vendor ships three firmware generations of the same device.  The
// application's intent never changes; at each generation it simply
// recompiles the same intent against the new interface description.  Watch
// the hardware/software split, the completion size, and the per-packet cost
// evolve while the application code — and the values it observes — stay
// identical.
//
// Run:  ./firmware_evolution [packets]
#include <iostream>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "net/workload.hpp"
#include "runtime/rxloop.hpp"
#include "sim/nicsim.hpp"

namespace {

// Generation 1: a dumb device — length only.
constexpr const char* kGen1 = R"P4(
struct fw_ctx_t { bit<1> unused; }
header fw_meta_t {
    @semantic("pkt_len") bit<16> len;
    @fixed(1) bit<8> dd;
    bit<8> rsvd;
}
@nic("acmenic")
control AcmeDeparser(cmpt_out o, in fw_ctx_t ctx, in fw_meta_t m) {
    apply { o.emit(m); }
}
)P4";

// Generation 2: checksum verification added.
constexpr const char* kGen2 = R"P4(
struct fw_ctx_t { bit<1> unused; }
header fw_meta_t {
    @semantic("pkt_len")    bit<16> len;
    @semantic("l4_csum_ok") bit<1>  ok;
    bit<7> flags_rsvd;
    @fixed(1) bit<8> dd;
}
@nic("acmenic")
control AcmeDeparser(cmpt_out o, in fw_ctx_t ctx, in fw_meta_t m) {
    apply { o.emit(m); }
}
)P4";

// Generation 3: an RSS engine with a selectable rich format.
constexpr const char* kGen3 = R"P4(
struct fw_ctx_t { bit<1> rss_en; }
header fw_meta_t {
    @semantic("pkt_len")    bit<16> len;
    @semantic("l4_csum_ok") bit<1>  ok;
    bit<7> flags_rsvd;
    @fixed(1) bit<8> dd;
    @semantic("rss")        bit<32> hash;
}
@nic("acmenic")
control AcmeDeparser(cmpt_out o, in fw_ctx_t ctx, in fw_meta_t m) {
    apply {
        o.emit(m.len);
        o.emit(m.ok);
        o.emit(m.flags_rsvd);
        o.emit(m.dd);
        if (ctx.rss_en == 1) {
            o.emit(m.hash);
        }
    }
}
)P4";

// The application — fixed for all generations.
constexpr const char* kIntent = R"P4(
header app_t {
    @semantic("pkt_len")    bit<16> len;
    @semantic("l4_csum_ok") bit<1>  ok;
    @semantic("rss")        bit<32> hash;
}
)P4";

}  // namespace

int main(int argc, char** argv) {
  using namespace opendesc;
  using softnic::SemanticId;

  const std::size_t packet_count =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 20000;
  const std::vector<SemanticId> wanted = {
      SemanticId::pkt_len, SemanticId::l4_csum_ok, SemanticId::rss_hash};

  std::cout << "One application intent, three firmware generations:\n"
            << kIntent << "\n";
  std::printf("%-6s %6s %-28s %10s %12s %18s\n", "fw", "cmpt",
              "software fallbacks", "ns/pkt", "fallbacks", "value checksum");

  const struct {
    const char* name;
    const char* source;
  } generations[] = {{"gen1", kGen1}, {"gen2", kGen2}, {"gen3", kGen3}};

  for (const auto& gen : generations) {
    try {
      softnic::SemanticRegistry registry;
      softnic::CostTable costs(registry);
      core::Compiler compiler(registry, costs);
      const core::CompileResult result =
          compiler.compile(gen.source, kIntent, {});
      softnic::ComputeEngine engine(registry);
      sim::NicSimulator nic(result.layout, engine, {});
      rt::OpenDescStrategy strategy(result, engine);

      net::WorkloadConfig config;
      config.seed = 77;  // the same trace for every generation
      config.bad_l4_csum_fraction = 0.1;
      net::WorkloadGenerator workload(config);

      rt::RxLoopConfig loop;
      loop.packet_count = packet_count;
      const rt::RxLoopStats stats =
          rt::run_rx_loop(nic, workload, strategy, wanted, loop);

      std::string shims;
      for (const auto& shim : result.shims) {
        if (!shims.empty()) shims += ",";
        shims += shim.semantic_name;
      }
      if (shims.empty()) shims = "(none)";
      std::printf("%-6s %5zuB %-28s %10.1f %12llu %18llx\n", gen.name,
                  result.layout.total_bytes(), shims.c_str(),
                  stats.ns_per_packet(),
                  static_cast<unsigned long long>(
                      strategy.facade().path_counters().total().softnic_shim),
                  static_cast<unsigned long long>(stats.value_checksum));
    } catch (const Error& e) {
      std::printf("%-6s failed: %s\n", gen.name, e.what());
    }
  }

  std::cout << "\nThe value checksum is identical in every row: the "
               "application observes the same\nmetadata regardless of where "
               "it was computed.  Each firmware generation moves work\nfrom "
               "the software column into the completion record — no driver "
               "or application\nchanges, only a recompile of the same "
               "intent.  That is the evolvability argument.\n";
  return 0;
}
