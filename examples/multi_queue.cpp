// Multi-queue intents (§3): "applications might use multiple OpenDesc
// instances with different intents to obtain different queues tailored for
// different kinds of traffic."
//
// A monitoring application splits traffic over two queues of the same
// programmable NIC:
//   * a FAST queue for bulk data — minimal 8B completions (length only),
//     maximizing packet rate;
//   * a TELEMETRY queue for sampled traffic — 32B completions with
//     timestamps and checksum status for measurement.
// Each queue gets its own compiled contract; the DMA accounting shows the
// footprint the split saves versus running everything on the rich layout.
//
// Run:  ./multi_queue [packets]
#include <iostream>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "runtime/facade.hpp"
#include "sim/nicsim.hpp"

namespace {

constexpr const char* kFastIntent = R"P4(
header fast_q_t {
    @semantic("pkt_len") bit<16> len;
}
)P4";

constexpr const char* kTelemetryIntent = R"P4(
header telemetry_q_t {
    @semantic("pkt_len")     bit<16> len;
    @semantic("timestamp")   bit<64> ts;
    @semantic("l4_csum_ok")  bit<1>  ok;
    @semantic("kv_key_hash") bit<32> key;
}
)P4";

}  // namespace

int main(int argc, char** argv) {
  using namespace opendesc;
  using softnic::SemanticId;

  const std::size_t packet_count =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 50000;

  try {
    const nic::NicModel& model = nic::NicCatalog::by_name("qdma");
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);

    // One compiler, two intents, two per-queue contracts.
    core::CompileOptions fast_opts, telem_opts;
    // The telemetry queue must carry the hardware timestamp: make the
    // software clock substitute unattractive.
    const auto fast = compiler.compile(model.p4_source(), kFastIntent, fast_opts);
    telem_opts.dma_weight_per_byte = 0.1;  // telemetry tolerates footprint
    const auto telemetry =
        compiler.compile(model.p4_source(), kTelemetryIntent, telem_opts);

    std::cout << "fast queue:      " << fast.layout.total_bytes()
              << "B completions, ctx {";
    for (const auto& [k, v] : fast.context_assignment) {
      std::cout << k << "=" << v << " ";
    }
    std::cout << "}\ntelemetry queue: " << telemetry.layout.total_bytes()
              << "B completions, ctx {";
    for (const auto& [k, v] : telemetry.context_assignment) {
      std::cout << k << "=" << v << " ";
    }
    std::cout << "}\n\n";

    softnic::ComputeEngine engine(registry);
    sim::SimConfig fast_cfg, telem_cfg;
    fast_cfg.queue_id = 0;
    telem_cfg.queue_id = 1;
    sim::NicSimulator fast_q(fast.layout, engine, {}, fast_cfg);
    sim::NicSimulator telem_q(telemetry.layout, engine, {}, telem_cfg);
    rt::MetadataFacade fast_facade(fast, engine);
    rt::MetadataFacade telem_facade(telemetry, engine);

    // Classifier: 1-in-16 sampling to the telemetry queue (flow-stable via
    // the workload's flow index would be the realistic policy; sampling
    // keeps the example small).
    net::WorkloadConfig config;
    config.seed = 9;
    config.kv_requests = true;
    config.min_frame = 80;
    net::WorkloadGenerator gen(config);

    std::uint64_t fast_pkts = 0, telem_pkts = 0, bad_csum = 0;
    std::vector<sim::RxEvent> events(64);
    for (std::size_t i = 0; i < packet_count; ++i) {
      const net::Packet pkt = gen.next();
      const bool sample = (i % 16) == 0;
      sim::NicSimulator& queue = sample ? telem_q : fast_q;
      if (!queue.rx(pkt)) {
        continue;  // ring full: drop (counted by the sim)
      }
      const std::size_t n = queue.poll(events);
      for (std::size_t e = 0; e < n; ++e) {
        const rt::PacketContext ctx(events[e]);
        if (sample) {
          ++telem_pkts;
          if (telem_facade.get(ctx, SemanticId::l4_csum_ok) == 0) {
            ++bad_csum;
          }
        } else {
          ++fast_pkts;
          (void)fast_facade.get(ctx, SemanticId::pkt_len);
        }
      }
      queue.advance(n);
    }

    const auto& fd = fast_q.dma();
    const auto& td = telem_q.dma();
    std::printf("%-12s %10s %14s %16s\n", "queue", "packets", "cmpt bytes",
                "bytes/packet");
    std::printf("%-12s %10llu %14llu %16.1f\n", "fast",
                static_cast<unsigned long long>(fast_pkts),
                static_cast<unsigned long long>(fd.completion_bytes),
                static_cast<double>(fd.completion_bytes) / fast_pkts);
    std::printf("%-12s %10llu %14llu %16.1f\n", "telemetry",
                static_cast<unsigned long long>(telem_pkts),
                static_cast<unsigned long long>(td.completion_bytes),
                static_cast<double>(td.completion_bytes) / telem_pkts);

    const std::uint64_t split_bytes = fd.completion_bytes + td.completion_bytes;
    const std::uint64_t mono_bytes =
        (fast_pkts + telem_pkts) * telemetry.layout.total_bytes();
    std::printf("\ncompletion DMA: %llu bytes split vs %llu monolithic "
                "(%.0f%% saved); %llu bad checksums sampled\n",
                static_cast<unsigned long long>(split_bytes),
                static_cast<unsigned long long>(mono_bytes),
                (1.0 - static_cast<double>(split_bytes) /
                           static_cast<double>(mono_bytes)) *
                    100.0,
                static_cast<unsigned long long>(bad_csum));
    return 0;
  } catch (const Error& e) {
    std::cerr << "opendesc: " << e.what() << "\n";
    return 1;
  }
}
