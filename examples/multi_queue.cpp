// Multi-queue receive scaling (§3): "applications might use multiple
// OpenDesc instances with different intents to obtain different queues
// tailored for different kinds of traffic" — and once there are queues,
// there is RSS to spread flows across them.
//
// This example drives the engine subsystem end to end: one compiled
// contract, four hardware queues, mixed TCP/UDP traffic steered by the
// Toeplitz classifier, one hardened worker per queue.  It verifies the
// property applications rely on — flow affinity: every packet of a 5-tuple
// lands on the same queue, and the engine's per-queue delivery matches the
// host-side prediction computed from the steering table alone.
//
// The run is instrumented end to end: a telemetry::Sink attached through
// the EngineConfig builder collects per-queue counters, batch-latency
// histograms and trace events, and the example finishes by printing the
// per-path semantic read split from the registry — the runtime image of
// the paper's Eq. 1 trade-off.
//
// Run:  ./multi_queue [packets]
#include <cassert>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/sink.hpp"

namespace {

constexpr std::size_t kQueues = 4;

constexpr const char* kIntent = R"P4(
header mq_intent_t {
    @semantic("rss")        bit<32> hash;
    @semantic("pkt_len")    bit<16> len;
    @semantic("l4_csum_ok") bit<1>  ok;
}
)P4";

}  // namespace

int main(int argc, char** argv) {
  using namespace opendesc;

  const std::size_t packet_count =
      argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 50000;

  try {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    softnic::ComputeEngine compute(registry);
    const auto result = compiler.compile(
        nic::NicCatalog::by_name("qdma").p4_source(), kIntent, {});

    // One sink observes the whole run: the builder threads it through the
    // engine to every worker loop (trace ring + latency shard per queue).
    telemetry::Sink sink({.queues = kQueues});
    const rt::EngineConfig config =
        rt::EngineConfig{}.with_queues(kQueues).with_telemetry(&sink);
    rt::MultiQueueEngine engine(result, compute, config);

    // Mixed TCP/UDP trace, some VLAN-tagged, enough flows to load 4 queues.
    net::WorkloadConfig wconfig;
    wconfig.seed = 9;
    wconfig.flow_count = 96;
    wconfig.udp_fraction = 0.5;
    wconfig.vlan_probability = 0.3;
    net::WorkloadGenerator gen(wconfig);

    // Host-side prediction: the steering table is plain data, so the
    // application can compute where any flow will land before a single
    // packet moves — and every packet of a flow must land there.
    std::vector<net::Packet> trace;
    trace.reserve(packet_count);
    std::map<std::size_t, std::uint16_t> flow_queue;
    std::vector<std::uint64_t> predicted(kQueues, 0);
    std::uint64_t tcp = 0, udp = 0;
    for (std::size_t i = 0; i < packet_count; ++i) {
      net::Packet pkt = gen.next();
      const std::uint16_t queue = engine.steering().queue_for(pkt.bytes());
      const auto [it, inserted] =
          flow_queue.emplace(gen.last_flow_index(), queue);
      if (it->second != queue) {
        std::cerr << "flow affinity violated: flow " << gen.last_flow_index()
                  << " split between queues " << it->second << " and " << queue
                  << "\n";
        return 1;
      }
      ++predicted[queue];
      (gen.flows()[gen.last_flow_index()].is_udp ? udp : tcp)++;
      trace.push_back(std::move(pkt));
    }

    const rt::EngineReport report = engine.run(trace);

    std::printf("steered %zu packets (%llu tcp, %llu udp) from %zu flows "
                "across %zu queues\n\n",
                packet_count, static_cast<unsigned long long>(tcp),
                static_cast<unsigned long long>(udp), flow_queue.size(),
                kQueues);
    std::printf("%-6s %7s %10s %10s %12s %14s\n", "queue", "flows",
                "predicted", "delivered", "cmpt bytes", "host ns/pkt");
    for (std::size_t q = 0; q < kQueues; ++q) {
      std::uint64_t flows_on_q = 0;
      for (const auto& [flow, queue] : flow_queue) {
        flows_on_q += queue == q ? 1 : 0;
      }
      const rt::RxLoopStats& shard = report.per_queue[q];
      std::printf("%-6zu %7llu %10llu %10llu %12llu %13.1f\n", q,
                  static_cast<unsigned long long>(flows_on_q),
                  static_cast<unsigned long long>(predicted[q]),
                  static_cast<unsigned long long>(shard.packets),
                  static_cast<unsigned long long>(shard.completion_bytes),
                  shard.ns_per_packet());
      if (report.offered[q] != predicted[q] ||
          shard.packets != predicted[q]) {
        std::cerr << "queue " << q << " delivery diverged from prediction\n";
        return 1;
      }
    }

    std::printf("\naggregate: %llu/%zu delivered (goodput %.1f%%), "
                "%.0f packets/sec on the critical path "
                "(slowest queue), checksum %#llx\n",
                static_cast<unsigned long long>(report.total.packets),
                packet_count,
                100.0 * report.total.delivery_ratio(report.offered_total),
                report.packets_per_second(),
                static_cast<unsigned long long>(report.total.value_checksum));
    std::printf("flow affinity held for all %zu flows: same 5-tuple, same "
                "queue, every time.\n",
                flow_queue.size());

    // What the sink saw: per semantic, which path served each read.  On a
    // fault-free run every read rides the NIC path; the series still sum
    // to the packets delivered — the engine publishes them per queue and
    // the provenance counters reconcile exactly.
    std::printf("\nper-path semantic reads (from the telemetry registry):\n");
    for (const auto& [semantic, paths] : report.semantic_paths.snapshot()) {
      std::printf("  %-12s nic_path %8llu  softnic_shim %6llu  "
                  "unavailable %4llu\n",
                  registry.name(static_cast<softnic::SemanticId>(semantic))
                      .c_str(),
                  static_cast<unsigned long long>(paths.nic_path),
                  static_cast<unsigned long long>(paths.softnic_shim),
                  static_cast<unsigned long long>(paths.unavailable));
      if (paths.total() != report.total.packets) {
        std::cerr << "semantic path counts diverge from delivered packets\n";
        return 1;
      }
    }
    const std::size_t batches =
        sink.batch_latency().snapshot().count;
    std::printf("batch latency histogram holds %zu batches; trace rings "
                "recorded %llu events\n",
                batches,
                static_cast<unsigned long long>([&] {
                  std::uint64_t total = 0;
                  for (const auto& ring : sink.rings()) {
                    total += ring.recorded();
                  }
                  return total;
                }()));
    return 0;
  } catch (const Error& e) {
    std::cerr << "opendesc: " << e.what() << "\n";
    return 1;
  }
}
