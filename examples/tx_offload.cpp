// TX-side walk-through: the host declares a *transmit* intent (checksum
// insertion, VLAN tagging, TCP segmentation), OpenDesc selects a descriptor
// format the NIC's DescParser accepts, and the simulated NIC executes the
// offloads.  Where a format cannot express a request, the shim list tells
// the host what to do in software before posting — here we actually do it,
// so the wire output is identical either way.
//
// Run:  ./tx_offload
#include <iostream>
#include <map>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "net/checksum.hpp"
#include "net/offload.hpp"
#include "nic/model.hpp"
#include "sim/nicsim.hpp"

namespace {

constexpr const char* kTxIntent = R"P4(
// "Post frames by address+length; insert the L4 checksum; segment big TCP
// frames at my MSS; tag with my VLAN."
header tx_intent_t {
    @semantic("tx_buf_addr")    bit<64> addr;
    @semantic("tx_buf_len")     bit<16> len;
    @semantic("tx_csum_en")     bit<1>  csum;
    @semantic("tx_tso_en")      bit<1>  tso;
    @semantic("tx_tso_mss")     bit<16> mss;
    @semantic("tx_vlan_insert") bit<16> vlan;
}
)P4";

}  // namespace

int main() {
  using namespace opendesc;
  using softnic::SemanticId;

  std::cout << "TX intent:\n" << kTxIntent << "\n";
  std::printf("%-8s %-8s %-40s %12s\n", "nic", "desc", "software pre-work",
              "wire frames");

  // A large TCP frame with a broken checksum: the contract must deliver
  // valid segmented frames regardless of which side does the work.
  const net::Packet pkt = net::PacketBuilder()
                              .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                                   net::make_mac(2, 0, 0, 0, 0, 2))
                              .ipv4(net::ipv4_from_string("10.0.0.1"),
                                    net::ipv4_from_string("10.0.0.2"))
                              .tcp(40000, 443)
                              .payload_text(std::string(2800, 'z'))
                              .corrupt_l4_checksum()
                              .build();
  constexpr std::uint16_t kMss = 1000;

  for (const char* nic_name : {"e1000", "ixgbe", "qdma"}) {
    try {
      const nic::NicModel& model = nic::NicCatalog::by_name(nic_name);
      softnic::SemanticRegistry registry;
      softnic::CostTable costs(registry);
      core::Compiler compiler(registry, costs);
      const core::CompileResult tx =
          compiler.compile_tx(model.p4_source(), kTxIntent, {});

      softnic::ComputeEngine engine(registry);
      // RX side unused here; reuse the TX layout as a placeholder.
      sim::NicSimulator nic(tx.layout, engine, {});
      nic.configure_tx(tx.layout);

      // Software pre-work for every shimmed offload, using the same
      // reference implementations the NIC would.
      const auto shimmed = [&](SemanticId id) {
        for (const auto& s : tx.shims) {
          if (s.semantic == id) return true;
        }
        return false;
      };

      std::vector<std::vector<std::uint8_t>> host_frames;
      std::vector<std::uint8_t> frame(pkt.data);
      if (shimmed(SemanticId::tx_vlan_insert)) {
        frame = net::insert_vlan(frame, 42);
      }
      if (shimmed(SemanticId::tx_tso_en)) {
        host_frames = net::tso_segment(frame, kMss);
      } else {
        host_frames.push_back(std::move(frame));
      }
      const bool sw_csum = shimmed(SemanticId::tx_csum_en);

      // Post each host-side frame with the hardware-side requests set.
      for (auto& f : host_frames) {
        if (sw_csum) {
          net::patch_l4_checksum(f);
        }
        std::vector<std::uint64_t> values(tx.layout.slices().size(), 0);
        for (std::size_t i = 0; i < tx.layout.slices().size(); ++i) {
          const auto& slice = tx.layout.slices()[i];
          if (!slice.semantic) continue;
          switch (*slice.semantic) {
            case SemanticId::tx_buf_len: values[i] = f.size(); break;
            case SemanticId::tx_eop: values[i] = 1; break;
            case SemanticId::tx_csum_en: values[i] = 1; break;
            case SemanticId::tx_tso_en: values[i] = 1; break;
            case SemanticId::tx_tso_mss: values[i] = kMss; break;
            case SemanticId::tx_vlan_insert: values[i] = 42; break;
            default: break;
          }
        }
        std::vector<std::uint8_t> desc(tx.layout.total_bytes());
        tx.layout.serialize(desc, values);
        nic.tx_post(desc, f);
      }

      // Validate every wire frame: tagged, MSS-bounded, valid checksums.
      std::size_t valid = 0;
      for (const auto& wire : nic.transmitted()) {
        const net::PacketView view = net::PacketView::parse(wire);
        const bool tagged = view.has_vlan() && view.vlan().vid() == 42;
        const bool sized = view.payload().size() <= kMss;
        const bool csum_ok =
            net::l4_checksum_ipv4(view.ipv4().src, view.ipv4().dst,
                                  net::kIpProtoTcp, view.l4_bytes()) == 0;
        valid += tagged && sized && csum_ok;
      }

      std::string shims;
      for (const auto& s : tx.shims) {
        if (!shims.empty()) shims += ",";
        shims += s.semantic_name;
      }
      if (shims.empty()) shims = "(none — all in hardware)";
      std::printf("%-8s %5zuB  %-40s %4zu (%zu valid)\n", nic_name,
                  tx.layout.total_bytes(), shims.c_str(),
                  nic.transmitted().size(), valid);
    } catch (const Error& e) {
      std::printf("%-8s failed: %s\n", nic_name, e.what());
    }
  }

  std::cout << "\nEvery row transmits identical, correct wire traffic; the\n"
               "descriptor format and the hardware/software split differ —\n"
               "that is the negotiated part of the contract.\n";
  return 0;
}
