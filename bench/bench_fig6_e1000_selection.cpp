// Fig. 6 / §4 running example: e1000e completion-path selection.
//
// Regenerates the paper's walk-through: the e1000e deparser has two
// completion paths (RSS hash | ip_id + checksum).  For every subset of
// {rss, ip_checksum, vlan, timestamp} we print which path Eq. 1 selects,
// what falls back to software, and the score — including the headline case
// Req = {rss, csum} where the csum branch wins because software RSS is
// cheaper than software checksum.  Also times the full compile pipeline.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "nic/model.hpp"

namespace {

using namespace opendesc;

struct Feature {
  const char* semantic;
  const char* field;
};

constexpr Feature kFeatures[] = {
    {"rss", "bit<32> f_rss"},
    {"ip_checksum", "bit<16> f_csum"},
    {"vlan", "bit<16> f_vlan"},
    {"timestamp", "bit<64> f_ts"},
};

std::string intent_for_mask(unsigned mask) {
  std::string intent = "header intent_t {\n";
  for (unsigned i = 0; i < 4; ++i) {
    if (mask & (1u << i)) {
      intent += std::string("    @semantic(\"") + kFeatures[i].semantic +
                "\") " + kFeatures[i].field + std::to_string(i) + ";\n";
    }
  }
  intent += "}\n";
  return intent;
}

std::string mask_name(unsigned mask) {
  std::string name;
  for (unsigned i = 0; i < 4; ++i) {
    if (mask & (1u << i)) {
      if (!name.empty()) name += "+";
      name += kFeatures[i].semantic;
    }
  }
  return name.empty() ? "(empty)" : name;
}

void print_selection_table() {
  const nic::NicModel& nic = nic::NicCatalog::by_name("e1000e");
  std::printf("=== Fig. 6: e1000e path selection per intent ===\n");
  std::printf("%-34s %-10s %-10s %-34s %10s\n", "intent (Req)", "chosen",
              "cmpt", "software fallbacks", "Eq.1 cost");
  for (unsigned mask = 1; mask < 16; ++mask) {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    const auto result =
        compiler.compile(nic.p4_source(), intent_for_mask(mask), {});
    const auto& chosen = result.chosen_path();
    const bool is_rss_branch = chosen.provides(softnic::SemanticId::rss_hash);

    std::string fallbacks;
    for (const auto& shim : result.shims) {
      if (!fallbacks.empty()) fallbacks += ",";
      fallbacks += shim.semantic_name;
    }
    if (fallbacks.empty()) fallbacks = "(none)";
    std::printf("%-34s %-10s %4zuB      %-34s %10.1f\n",
                mask_name(mask).c_str(), is_rss_branch ? "rss-path" : "csum-path",
                result.layout.total_bytes(), fallbacks.c_str(),
                result.chosen_score().total());
  }
  std::printf(
      "\nHeadline row: rss+ip_checksum selects the csum-path — recomputing "
      "RSS in software\n(w=20ns over the 12-byte tuple) is cheaper than "
      "recomputing the checksum (w=25ns),\nmatching the paper's §4 "
      "discussion of Fig. 6.\n\n");
}

void BM_CompileE1000e(benchmark::State& state) {
  const nic::NicModel& nic = nic::NicCatalog::by_name("e1000e");
  const std::string intent = intent_for_mask(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    benchmark::DoNotOptimize(compiler.compile(nic.p4_source(), intent, {}));
  }
  state.SetLabel(mask_name(static_cast<unsigned>(state.range(0))));
}
BENCHMARK(BM_CompileE1000e)->Arg(1)->Arg(3)->Arg(15);

}  // namespace

int main(int argc, char** argv) {
  print_selection_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
