// Fig. F (§2): metadata coverage.  "The BPF accessors only cover 3 of the
// 12 metadata information available in NVIDIA Mellanox ConnectX
// descriptors."
//
// We model today's hand-written XDP accessor set (rx hash, rx timestamp,
// vlan tag — the three kfuncs in the kernel at the time of writing) and
// compare against OpenDesc-generated accessors, which cover every field the
// chosen completion path provides — for any intent, on any catalog NIC.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "nic/model.hpp"

namespace {

using namespace opendesc;
using softnic::SemanticId;

// The three hand-maintained XDP metadata kfuncs (bpf_xdp_metadata_rx_hash,
// _rx_timestamp, _rx_vlan_tag).
constexpr SemanticId kXdpKfuncs[] = {
    SemanticId::rss_hash, SemanticId::timestamp, SemanticId::vlan_tci};

bool xdp_covers(SemanticId id) {
  for (const SemanticId k : kXdpKfuncs) {
    if (k == id) {
      return true;
    }
  }
  return false;
}

// Same intent without the NIC-state-only semantic, for fixed NICs that
// cannot provide lro_seg_count at all (it has no software fallback, so the
// full intent is rejected as unsatisfiable there — itself a §4 behaviour).
constexpr const char* kPortableIntent = R"(header i_t {
    @semantic("pkt_len")       bit<16> f0;
    @semantic("rss")           bit<32> f1;
    @semantic("rss_type")      bit<8>  f2;
    @semantic("vlan")          bit<16> f3;
    @semantic("vlan_stripped") bit<1>  f4;
    @semantic("ip_csum_ok")    bit<1>  f5;
    @semantic("l4_csum_ok")    bit<1>  f6;
    @semantic("l4_checksum")   bit<16> f7;
    @semantic("timestamp")     bit<64> f8;
    @semantic("flow_id")       bit<32> f9;
    @semantic("packet_type")   bit<16> f10;
})";

// Intent that asks for every semantic the mlx5 full CQE can carry.
constexpr const char* kFullIntent = R"(header i_t {
    @semantic("pkt_len")       bit<16> f0;
    @semantic("rss")           bit<32> f1;
    @semantic("rss_type")      bit<8>  f2;
    @semantic("vlan")          bit<16> f3;
    @semantic("vlan_stripped") bit<1>  f4;
    @semantic("ip_csum_ok")    bit<1>  f5;
    @semantic("l4_csum_ok")    bit<1>  f6;
    @semantic("l4_checksum")   bit<16> f7;
    @semantic("timestamp")     bit<64> f8;
    @semantic("flow_id")       bit<32> f9;
    @semantic("packet_type")   bit<16> f10;
    @semantic("lro_seg_count") bit<8>  f11;
})";

void print_table() {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("mlx5").p4_source(), kFullIntent, {});

  std::printf("=== Fig. F: per-field accessibility, mlx5 full CQE ===\n");
  std::printf("%-16s %14s %18s\n", "semantic", "XDP kfuncs", "OpenDesc");
  std::size_t xdp_count = 0, odx_count = 0, total = 0;
  for (const core::IntentField& field : result.intent.fields) {
    const bool provided = result.chosen_path().provides(field.semantic);
    const bool xdp = xdp_covers(field.semantic) && provided;
    const bool odx = provided;
    ++total;
    xdp_count += xdp;
    odx_count += odx;
    std::printf("%-16s %14s %18s\n", registry.name(field.semantic).c_str(),
                xdp ? "accessor" : "-",
                odx ? "generated accessor" : "softnic shim");
  }
  std::printf("%-16s %11zu/12 %15zu/12\n", "coverage", xdp_count, odx_count);

  std::printf("\nAcross the catalog (same 12-field intent):\n");
  std::printf("%-9s %10s %12s %14s\n", "nic", "provided", "xdp-covered",
              "odx-covered");
  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    softnic::SemanticRegistry reg2;
    softnic::CostTable costs2(reg2);
    core::Compiler compiler2(reg2, costs2);
    core::CompileResult r;
    try {
      r = compiler2.compile(model.p4_source(), kFullIntent, {});
    } catch (const Error&) {
      // lro_seg_count unsatisfiable on this NIC: drop it and recompile.
      r = compiler2.compile(model.p4_source(), kPortableIntent, {});
    }
    std::size_t provided = 0, xdp = 0;
    for (const core::IntentField& field : r.intent.fields) {
      if (r.chosen_path().provides(field.semantic)) {
        ++provided;
        if (xdp_covers(field.semantic)) {
          ++xdp;
        }
      }
    }
    std::printf("%-9s %8zu/12 %10zu/12 %12zu/12\n", model.name().c_str(),
                provided, xdp, provided);
  }
  std::printf(
      "\nShape check: static kernel accessors cap coverage at 3 fields "
      "regardless of what the\nNIC exposes; generated accessors track the "
      "chosen path exactly (the paper's core claim).\n\n");
}

// Cost of an accessor read vs a fallback compute, the price of a coverage
// gap.
void BM_AccessorRead(benchmark::State& state) {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("mlx5").p4_source(), kFullIntent, {});
  std::vector<std::uint8_t> record(result.layout.total_bytes(), 0x5A);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink ^= result.layout.read(record, SemanticId::flow_id);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AccessorRead);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
