// Ablation: symbolic feasibility pruning (§4 step 1's "symbolic
// evaluation").  Without it, the enumerator visits every *syntactic*
// root-to-leaf walk — on the QDMA deparser that is 8 walks instead of the 4
// real formats, and on monotone threshold chains the blowup is exponential:
// d cascading `>=` guards have 2^d walks but only d+1 feasible paths.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "core/compiler.hpp"
#include "nic/model.hpp"
#include "p4/parser.hpp"

namespace {

using namespace opendesc;

// d cascading thresholds over one log2(d+1)-bit context variable.
std::string threshold_nic(std::size_t depth) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < depth + 1) {
    ++bits;
  }
  std::string source = "struct ctx_t { bit<" + std::to_string(bits) +
                       "> level; }\nheader m_t {\n";
  for (std::size_t i = 0; i < depth; ++i) {
    source += "  bit<32> f" + std::to_string(i) + ";\n";
  }
  source += "  @semantic(\"pkt_len\") bit<16> len;\n}\n";
  source += "control ThresholdDeparser(cmpt_out o, in ctx_t ctx, in m_t m) {\n"
            "    apply {\n        o.emit(m.len);\n";
  for (std::size_t i = 0; i < depth; ++i) {
    source += "        if (ctx.level >= " + std::to_string(i + 1) +
              ") { o.emit(m.f" + std::to_string(i) + "); }\n";
  }
  source += "    }\n}\n";
  return source;
}

std::pair<std::size_t, double> enumerate_with(const std::string& nic_source,
                                              bool prune) {
  const p4::Program program = p4::parse_program(nic_source);
  const p4::TypeInfo types = p4::check_program(program);
  const p4::ControlDecl& deparser = core::select_deparser(program, "");
  softnic::SemanticRegistry registry;
  const core::Cfg cfg = core::build_cfg(program, types, deparser, registry);
  core::PathEnumOptions options;
  options.consts = types.constants();
  options.variable_bounds = core::context_bounds(program, types, deparser);
  options.prune_infeasible = prune;
  const auto start = std::chrono::steady_clock::now();
  const auto paths = core::enumerate_paths(cfg, options);
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return {paths.size(), us};
}

void print_table() {
  std::printf("=== Ablation: feasibility pruning in path enumeration ===\n");
  std::printf("%-22s %12s %12s %12s %12s\n", "deparser", "pruned", "us",
              "unpruned", "us");
  const nic::NicModel& qdma = nic::NicCatalog::by_name("qdma");
  {
    const auto [with_n, with_us] = enumerate_with(qdma.p4_source(), true);
    const auto [without_n, without_us] = enumerate_with(qdma.p4_source(), false);
    std::printf("%-22s %12zu %12.0f %12zu %12.0f\n", "qdma (real)", with_n,
                with_us, without_n, without_us);
  }
  for (const std::size_t depth : {4u, 8u, 12u, 16u}) {
    const std::string source = threshold_nic(depth);
    const auto [with_n, with_us] = enumerate_with(source, true);
    const auto [without_n, without_us] = enumerate_with(source, false);
    std::printf("threshold d=%-10zu %12zu %12.0f %12zu %12.0f\n", depth,
                with_n, with_us, without_n, without_us);
  }
  std::printf(
      "\nShape check: pruning keeps the path set at the d+1 real formats; "
      "without it the\nenumerator walks all 2^d syntactic combinations — the "
      "symbolic evaluation of §4 is\nwhat makes \"enumerate a small finite "
      "set\" true in the first place.\n\n");
}

void BM_Enumerate(benchmark::State& state, bool prune) {
  const std::string source = threshold_nic(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_with(source, prune));
  }
}
BENCHMARK_CAPTURE(BM_Enumerate, pruned, true)->Arg(8)->Arg(12);
BENCHMARK_CAPTURE(BM_Enumerate, unpruned, false)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
