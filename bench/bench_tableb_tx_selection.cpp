// Table B (extension of §3's TX channel): descriptor-format selection for a
// TX offload intent across the catalog's described TX sides, and the cost
// asymmetry between hardware offload execution and software pre-work.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/error.hpp"
#include "core/compiler.hpp"
#include "net/offload.hpp"
#include "nic/model.hpp"
#include "sim/nicsim.hpp"

namespace {

using namespace opendesc;
using softnic::SemanticId;

constexpr const char* kTxIntent = R"P4(
header tx_intent_t {
    @semantic("tx_buf_addr")    bit<64> addr;
    @semantic("tx_buf_len")     bit<16> len;
    @semantic("tx_csum_en")     bit<1>  csum;
    @semantic("tx_tso_en")      bit<1>  tso;
    @semantic("tx_tso_mss")     bit<16> mss;
}
)P4";

void print_table() {
  std::printf("=== Table B: TX descriptor-format selection "
              "(intent: addr+len+csum+TSO) ===\n");
  std::printf("%-8s %8s %8s %-28s %12s\n", "nic", "formats", "chosen",
              "software pre-work", "Eq.1 cost");
  for (const char* nic_name : {"e1000", "ixgbe", "qdma"}) {
    const nic::NicModel& model = nic::NicCatalog::by_name(nic_name);
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    try {
      const auto tx = compiler.compile_tx(model.p4_source(), kTxIntent, {});
      std::string shims;
      for (const auto& s : tx.shims) {
        if (!shims.empty()) shims += ",";
        shims += s.semantic_name;
      }
      if (shims.empty()) shims = "(none)";
      std::printf("%-8s %8zu %6zuB %-28s %12.1f\n", nic_name, tx.paths.size(),
                  tx.layout.total_bytes(), shims.c_str(),
                  tx.chosen_score().total());
    } catch (const Error& e) {
      std::printf("%-8s unsatisfiable: %s\n", nic_name, e.what());
    }
  }
  std::printf(
      "\nShape check: richer descriptor formats absorb more of the TX "
      "intent; the legacy e1000\nmust segment in software (w(tso)=600ns), "
      "ixgbe needs its context descriptor, and the\nprogrammable QDMA "
      "selects its 32B offload-capable H2C format.\n\n");
}

/// Hardware TSO execution vs software segmentation, per 2800B frame.
void BM_TxPath(benchmark::State& state, bool hardware_tso) {
  const nic::NicModel& model = nic::NicCatalog::by_name("qdma");
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto tx = compiler.compile_tx(model.p4_source(), kTxIntent, {});
  softnic::ComputeEngine engine(registry);
  sim::NicSimulator nic(tx.layout, engine, {});
  nic.configure_tx(tx.layout);

  const net::Packet pkt = net::PacketBuilder()
                              .eth(net::make_mac(2, 0, 0, 0, 0, 1),
                                   net::make_mac(2, 0, 0, 0, 0, 2))
                              .ipv4(net::ipv4_from_string("10.0.0.1"),
                                    net::ipv4_from_string("10.0.0.2"))
                              .tcp(40000, 443)
                              .payload_text(std::string(2800, 'z'))
                              .build();

  std::vector<std::uint64_t> values(tx.layout.slices().size(), 0);
  for (std::size_t i = 0; i < tx.layout.slices().size(); ++i) {
    const auto& slice = tx.layout.slices()[i];
    if (!slice.semantic) continue;
    switch (*slice.semantic) {
      case SemanticId::tx_buf_len: values[i] = pkt.size(); break;
      case SemanticId::tx_eop: values[i] = 1; break;
      case SemanticId::tx_csum_en: values[i] = hardware_tso ? 1 : 0; break;
      case SemanticId::tx_tso_en: values[i] = hardware_tso ? 1 : 0; break;
      case SemanticId::tx_tso_mss: values[i] = 1000; break;
      default: break;
    }
  }
  std::vector<std::uint8_t> desc(tx.layout.total_bytes());
  tx.layout.serialize(desc, values);

  for (auto _ : state) {
    if (hardware_tso) {
      // One post; the NIC segments.  (The sim's segmentation cost stands in
      // for the NIC pipeline, so this measures descriptor-path overhead.)
      nic.tx_post(desc, pkt.bytes());
    } else {
      // Host segments + checksums, then posts each segment.
      auto segments = net::tso_segment(pkt.bytes(), 1000);
      for (auto& s : segments) {
        net::patch_l4_checksum(s);
        nic.tx_post(desc, s);
      }
    }
    if (nic.transmitted().size() > 4096) {
      nic.clear_transmitted();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_TxPath, hardware_offload, true);
BENCHMARK_CAPTURE(BM_TxPath, software_prework, false);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
