// Fig. D (§2 claim, ENSO 6× raw payload): DMA completion footprint vs
// achievable packet rate under a PCIe-style link model.
//
// ENSO's streaming interface showed that removing per-packet descriptor
// traffic frees substantial link capacity for small packets.  Here the
// same trade-off appears as the QDMA completion size knob: for every
// completion format (8/16/32/64 B) we compute the link-bound packet rate at
// several frame sizes, plus the descriptor-bandwidth share.  The simulator
// provides measured byte counts; the link model converts them to rates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/compiler.hpp"
#include "nic/model.hpp"
#include "net/workload.hpp"
#include "sim/nicsim.hpp"

namespace {

using namespace opendesc;

// Intents sized to force each QDMA completion format.
const char* intent_for_size(std::size_t bytes) {
  switch (bytes) {
    case 8:
      return R"(header i_t { @semantic("pkt_len") bit<16> l; })";
    case 16:
      return R"(header i_t {
          @semantic("pkt_len") bit<16> l;
          @semantic("rss") bit<32> h; })";
    case 32:
      return R"(header i_t {
          @semantic("pkt_len") bit<16> l;
          @semantic("kv_key_hash") bit<32> k; })";
    default:
      return R"(header i_t {
          @semantic("pkt_len") bit<16> l;
          @semantic("mark") bit<32> m; })";
  }
}

void print_table() {
  const sim::DmaLinkModel link;
  std::printf("=== Fig. D: completion footprint vs link-bound packet rate "
              "(QDMA, PCIe x8 Gen3 model) ===\n");
  std::printf("%-6s | %-34s | %-34s\n", "", "64B frames", "1500B frames");
  std::printf("%-6s | %12s %10s %9s | %12s %10s %9s\n", "cmpt", "Mpps",
              "cmpt-share", "vs 64B", "Mpps", "cmpt-share", "vs 64B");

  double base_rate_64 = 0, base_rate_1500 = 0;
  for (const std::size_t cmpt : {64u, 32u, 16u, 8u}) {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    const auto result = compiler.compile(
        nic::NicCatalog::by_name("qdma").p4_source(), intent_for_size(cmpt), {});
    // Sanity: the compiler selected the expected format.
    if (result.layout.total_bytes() != cmpt) {
      std::printf("unexpected layout %zuB for target %zuB\n",
                  result.layout.total_bytes(), cmpt);
    }

    const auto row = [&](std::size_t frame, double& base_rate) {
      // Verify against the simulator's actual byte accounting.
      softnic::ComputeEngine engine(registry);
      sim::NicSimulator nic(result.layout, engine, {});
      net::WorkloadConfig config;
      config.min_frame = frame;
      config.max_frame = frame;
      net::WorkloadGenerator gen(config);
      for (int i = 0; i < 256; ++i) {
        nic.rx(gen.next());
      }
      const auto& dma = nic.dma();
      const double per_packet_cmpt =
          static_cast<double>(dma.completion_bytes) / dma.completions;
      const double rate =
          link.packets_per_second(frame, static_cast<std::uint64_t>(per_packet_cmpt)) /
          1e6;
      const double share = static_cast<double>(dma.completion_bytes) /
                           static_cast<double>(dma.total_to_host()) * 100.0;
      if (base_rate == 0) {
        base_rate = rate;
      }
      return std::tuple{rate, share, rate / base_rate};
    };
    const auto [rate64, share64, gain64] = row(64, base_rate_64);
    const auto [rate1500, share1500, gain1500] = row(1500, base_rate_1500);
    std::printf("%4zuB | %10.2f %9.1f%% %8.2fx | %10.2f %9.1f%% %8.2fx\n",
                cmpt, rate64, share64, gain64, rate1500, share1500, gain1500);
  }
  std::printf(
      "\nShape check: shrinking completions matters enormously for small "
      "frames (ENSO's\nregime — descriptor bytes rival payload bytes) and "
      "barely at MTU-size frames.\nEq. 1's footprint term is what lets the "
      "compiler act on this automatically.\n\n");
}

void BM_SerializeCompletion(benchmark::State& state) {
  const std::size_t cmpt = static_cast<std::size_t>(state.range(0));
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result = compiler.compile(
      nic::NicCatalog::by_name("qdma").p4_source(), intent_for_size(cmpt), {});
  std::vector<std::uint64_t> values(result.layout.slices().size(), 0xA5A5A5A5);
  std::vector<std::uint8_t> record(result.layout.total_bytes());
  for (auto _ : state) {
    result.layout.serialize(record, values);
    benchmark::DoNotOptimize(record.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cmpt));
}
BENCHMARK(BM_SerializeCompletion)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
