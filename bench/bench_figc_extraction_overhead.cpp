// Fig. C (§2 claim, X-Change +70% throughput / −28% latency): cost of the
// kernel-style extract-everything model vs the intent-tailored generated
// datapath, as a function of how much metadata the application actually
// needs.
//
// The mlx5 full CQE carries 12 metadata fields.  An sk_buff-style stack
// extracts all of them (plus software defaults) on every packet; OpenDesc
// reads exactly the requested subset.  The series to reproduce: skbuff cost
// is flat and high; OpenDesc grows with the request size and stays below.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/compiler.hpp"
#include "nic/model.hpp"
#include "runtime/rxloop.hpp"

namespace {

using namespace opendesc;
using softnic::SemanticId;

// The 12 semantics of the mlx5 full CQE, in request order.
struct FieldSpec {
  SemanticId id;
  const char* semantic;
  const char* type;
};
constexpr FieldSpec kFields[] = {
    {SemanticId::pkt_len, "pkt_len", "bit<16>"},
    {SemanticId::rss_hash, "rss", "bit<32>"},
    {SemanticId::vlan_tci, "vlan", "bit<16>"},
    {SemanticId::l4_csum_ok, "l4_csum_ok", "bit<1>"},
    {SemanticId::flow_id, "flow_id", "bit<32>"},
    {SemanticId::packet_type, "packet_type", "bit<16>"},
    {SemanticId::timestamp, "timestamp", "bit<64>"},
    {SemanticId::ip_csum_ok, "ip_csum_ok", "bit<1>"},
    {SemanticId::l4_checksum, "l4_checksum", "bit<16>"},
    {SemanticId::rss_type, "rss_type", "bit<8>"},
    {SemanticId::vlan_stripped, "vlan_stripped", "bit<1>"},
    {SemanticId::lro_seg_count, "lro_seg_count", "bit<8>"},
};

std::string intent_with_fields(std::size_t k) {
  std::string intent = "header i_t {\n";
  for (std::size_t i = 0; i < k; ++i) {
    intent += std::string("  @semantic(\"") + kFields[i].semantic + "\") " +
              kFields[i].type + " f" + std::to_string(i) + ";\n";
  }
  intent += "}\n";
  return intent;
}

struct Measurement {
  double skbuff_ns;
  double opendesc_ns;
};

Measurement measure(std::size_t k, std::size_t packets) {
  // Hold the NIC format constant — the full 64B CQE (force it with the
  // 12-field intent; lro_seg_count has no software fallback) — and vary
  // only how much of it the host consumes, isolating the transform
  // overhead X-Change measured.
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result =
      compiler.compile(nic::NicCatalog::by_name("mlx5").p4_source(),
                       intent_with_fields(12), {});
  softnic::ComputeEngine engine(registry);

  std::vector<SemanticId> wanted;
  for (std::size_t i = 0; i < k; ++i) {
    wanted.push_back(kFields[i].id);
  }

  net::WorkloadConfig config;
  config.seed = 13;
  config.vlan_probability = 0.3;
  config.min_frame = 256;
  config.max_frame = 256;
  rt::RxLoopConfig loop;
  loop.packet_count = packets;

  Measurement m{};
  {
    sim::NicSimulator nic(result.layout, engine, {});
    net::WorkloadGenerator gen(config);
    rt::SkbuffStrategy strategy(result.layout, engine);
    m.skbuff_ns = rt::run_rx_loop(nic, gen, strategy, wanted, loop).ns_per_packet();
  }
  {
    sim::NicSimulator nic(result.layout, engine, {});
    net::WorkloadGenerator gen(config);
    rt::OpenDescStrategy strategy(result.layout, {}, engine);
    m.opendesc_ns =
        rt::run_rx_loop(nic, gen, strategy, wanted, loop).ns_per_packet();
  }
  return m;
}

void print_table() {
  std::printf("=== Fig. C: extraction overhead vs requested field count "
              "(mlx5 full CQE) ===\n");
  std::printf("%-8s %14s %14s %12s %12s\n", "fields", "skbuff ns/pkt",
              "opendesc ns/pkt", "speedup", "tput gain");
  for (std::size_t k = 1; k <= 12; ++k) {
    const Measurement m = measure(k, 30000);
    std::printf("%6zu %13.1f %14.1f %11.2fx %+11.0f%%\n", k, m.skbuff_ns,
                m.opendesc_ns, m.skbuff_ns / m.opendesc_ns,
                (m.skbuff_ns / m.opendesc_ns - 1.0) * 100.0);
  }
  std::printf(
      "\nShape check: the always-extract-everything stack pays a flat, high "
      "cost; the generated\ndatapath pays only for what the intent names.  "
      "X-Change reported +70%% throughput from\neliminating the same "
      "transform overhead; the gain here is largest for small intents and\n"
      "narrows as the application asks for everything.\n\n");
}

void BM_Extraction(benchmark::State& state, const std::string& kind) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto result =
      compiler.compile(nic::NicCatalog::by_name("mlx5").p4_source(),
                       intent_with_fields(k), {});
  softnic::ComputeEngine engine(registry);
  sim::NicSimulator nic(result.layout, engine, {});
  net::WorkloadConfig config;
  config.min_frame = 256;
  config.max_frame = 256;
  net::WorkloadGenerator gen(config);
  std::vector<SemanticId> wanted;
  for (std::size_t i = 0; i < k; ++i) {
    wanted.push_back(kFields[i].id);
  }
  std::unique_ptr<rt::RxStrategy> strategy;
  if (kind == "skbuff") {
    strategy = std::make_unique<rt::SkbuffStrategy>(result.layout, engine);
  } else {
    strategy = std::make_unique<rt::OpenDescStrategy>(result, engine);
  }
  std::vector<sim::RxEvent> events(64);
  for (int i = 0; i < 64; ++i) {
    nic.rx(gen.next());
  }
  const std::size_t n = nic.poll(events);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      const rt::PacketContext pkt(events[i]);
      sink ^= strategy->consume(pkt, wanted);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_Extraction, skbuff, "skbuff")->Arg(1)->Arg(6)->Arg(12);
BENCHMARK_CAPTURE(BM_Extraction, opendesc, "opendesc")->Arg(1)->Arg(6)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
