// Causal-tracing tax and export sanity.
//
// Head-based 1-in-N span sampling rides the descriptor through dispatch,
// device and worker (tx_post → steer → handoff → ring → nic_parse →
// completion_write → validate → consume).  This bench answers two
// questions about it:
//
//   - what the tracing costs: paired single-queue runs, --trace-sample off
//     vs 1-in-256 (the documented default) and 1-in-64 (the debug point),
//     sink attached in every run so the delta is the tracing alone (the
//     sample-mask test per packet, plus clock reads and span-ring
//     publishes on the sampled path).  One queue isolates the per-packet
//     datapath tax: with many worker threads on few cores the CPU-clock
//     metric absorbs context-switch cache pollution and the comparison
//     drowns in scheduler noise.  Each rep runs the arms back to back in
//     alternating order and the overhead is the *median of the paired
//     differences* — on a loaded box the arms share each rep's load, so
//     drift cancels where independent min-of-reps minima do not.  The bar
//     is < 3% at the default rate, same as the profiler's tax bar; the
//     1-in-64 figure is reported unbarred (sampling rate is the overhead
//     lever: cost per sampled packet is roughly constant, so halving the
//     rate halves the tax);
//   - whether the spans actually reconstruct a packet's lifecycle: at
//     least one sampled trace must carry the six core pipeline stages in
//     causal start-time order, and the grouped export is dumped in
//     Perfetto form (BENCH_tracing_spans.json) for drag-and-drop triage.
//
// Results go to BENCH_tracing.json (bars convention: value/bar/cmp/pass).
// OPENDESC_BENCH_SMOKE=1 shrinks the trace and the repetition count.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "nic/model.hpp"
#include "telemetry/sink.hpp"
#include "telemetry/spans.hpp"

namespace {

using namespace opendesc;

constexpr const char* kIntent = R"P4(
header tracing_intent_t {
    @semantic("rss")        bit<32> hash;
    @semantic("l4_csum_ok") bit<1>  ok;
    @semantic("pkt_len")    bit<16> len;
}
)P4";

struct Setup {
  softnic::SemanticRegistry registry;
  std::unique_ptr<softnic::CostTable> costs;
  std::unique_ptr<softnic::ComputeEngine> compute;
  core::CompileResult result;
  std::vector<net::Packet> trace;

  explicit Setup(std::size_t packets) {
    costs = std::make_unique<softnic::CostTable>(registry);
    compute = std::make_unique<softnic::ComputeEngine>(registry);
    core::Compiler compiler(registry, *costs);
    result = compiler.compile(nic::NicCatalog::by_name("mlx5").p4_source(),
                              kIntent, {});
    net::WorkloadConfig config;
    config.seed = 3;
    config.flow_count = 256;  // same trace recipe as bench_hotpath
    config.udp_fraction = 0.5;
    config.vlan_probability = 0.2;
    net::WorkloadGenerator gen(config);
    trace = gen.batch(packets);
  }
};

engine::EngineReport run_queues(Setup& setup, std::size_t queues,
                                telemetry::Sink* sink,
                                std::size_t trace_sample) {
  const engine::EngineConfig config = rt::EngineConfig{}
                                          .with_queues(queues)
                                          .with_telemetry(sink)
                                          .with_profiler(false)
                                          .with_trace_sample(trace_sample);
  engine::MultiQueueEngine eng(setup.result, *setup.compute, config);
  return eng.run(setup.trace);
}

/// All retained spans across every ring of the sink, grouped into traces.
std::vector<telemetry::TraceView> collect_traces(telemetry::Sink& sink) {
  std::vector<telemetry::SpanRecord> all;
  for (const telemetry::SpanRing& ring : sink.span_rings()) {
    const std::vector<telemetry::SpanRecord> part = ring.snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  return telemetry::group_traces(std::move(all));
}

/// True when the trace carries every core pipeline stage exactly as a
/// causally ordered chain: each later stage starts no earlier than the one
/// before it.
bool complete_and_ordered(const telemetry::TraceView& trace) {
  static constexpr telemetry::SpanStage kCore[] = {
      telemetry::SpanStage::tx_post,          telemetry::SpanStage::steer,
      telemetry::SpanStage::handoff,          telemetry::SpanStage::ring,
      telemetry::SpanStage::nic_parse,
      telemetry::SpanStage::completion_write, telemetry::SpanStage::validate,
      telemetry::SpanStage::consume,
  };
  double last_start = 0.0;
  for (const telemetry::SpanStage stage : kCore) {
    const auto it = std::find_if(
        trace.spans.begin(), trace.spans.end(),
        [stage](const telemetry::SpanRecord& s) { return s.stage == stage; });
    if (it == trace.spans.end()) {
      return false;
    }
    if (it->start_ns + 1e-9 < last_start) {
      return false;
    }
    last_start = it->start_ns;
  }
  return true;
}

bool print_table() {
  const char* smoke_env = std::getenv("OPENDESC_BENCH_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] != '\0';
  const std::size_t packets = smoke ? 4000 : 40000;
  const std::size_t reps = smoke ? 3 : 15;
  const std::size_t kDefaultSample = 256;  // documented default rate
  const std::size_t kDebugSample = 64;     // debug-session rate, unbarred
  Setup setup(packets);

  std::printf("=== Causal tracing: %zu packets, head sampling on "
              "mlx5 ===\n",
              packets);

  // Tracing tax: per rep the three arms (off / 1-in-256 / 1-in-64) run back
  // to back in alternating order; the overhead estimate is the median of
  // the paired per-rep differences, which is robust against load drift on
  // a shared box (independent minima are not — each arm's minimum lands in
  // a different quiet moment).
  telemetry::Sink sink_off({.queues = 1});
  telemetry::Sink sink_default({.queues = 1});
  telemetry::Sink sink_debug({.queues = 1});
  (void)run_queues(setup, 1, &sink_off, 0);  // warm-up, discarded
  (void)run_queues(setup, 1, &sink_default, kDefaultSample);
  std::vector<double> offs, default_diffs, debug_diffs;
  for (std::size_t r = 0; r < reps; ++r) {
    double off, on_default, on_debug;
    if (r % 2 == 0) {
      off = run_queues(setup, 1, &sink_off, 0).total.ns_per_packet();
      on_default = run_queues(setup, 1, &sink_default, kDefaultSample)
                       .total.ns_per_packet();
      on_debug =
          run_queues(setup, 1, &sink_debug, kDebugSample).total.ns_per_packet();
    } else {
      on_debug =
          run_queues(setup, 1, &sink_debug, kDebugSample).total.ns_per_packet();
      on_default = run_queues(setup, 1, &sink_default, kDefaultSample)
                       .total.ns_per_packet();
      off = run_queues(setup, 1, &sink_off, 0).total.ns_per_packet();
    }
    offs.push_back(off);
    default_diffs.push_back(on_default - off);
    debug_diffs.push_back(on_debug - off);
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double ns_off = median(offs);
  const double default_diff = median(default_diffs);
  const double debug_diff = median(debug_diffs);
  const double overhead_percent =
      ns_off > 0.0 ? 100.0 * default_diff / ns_off : 0.0;
  const double debug_overhead_percent =
      ns_off > 0.0 ? 100.0 * debug_diff / ns_off : 0.0;
  const bool overhead_pass = overhead_percent <= 3.0;
  std::printf("\ntracing tax, single queue (median off %.1f ns/pkt):\n", ns_off);
  std::printf("  1-in-%zu (default): %+.2f ns/pkt (%.2f%% overhead; "
              "bar < 3%%)\n",
              kDefaultSample, default_diff, overhead_percent);
  std::printf("  1-in-%zu (debug):   %+.2f ns/pkt (%.2f%% overhead; "
              "informational)\n",
              kDebugSample, debug_diff, debug_overhead_percent);

  // Export sanity off a fresh instrumented run (the min-of-reps sink has
  // wrapped many runs together; a clean one keeps the artifact readable).
  telemetry::Sink sink_export({.queues = 8});
  (void)run_queues(setup, 8, &sink_export, kDebugSample);
  const std::vector<telemetry::TraceView> traces = collect_traces(sink_export);
  std::size_t complete = 0;
  std::map<std::size_t, std::size_t> span_histogram;
  for (const telemetry::TraceView& trace : traces) {
    ++span_histogram[trace.spans.size()];
    if (complete_and_ordered(trace)) {
      ++complete;
    }
  }
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;
  for (const telemetry::SpanRing& ring : sink_export.span_rings()) {
    spans_recorded += ring.recorded();
    spans_dropped += ring.dropped();
  }
  const bool causal_pass = complete > 0;
  std::printf("\nspan export: %llu spans recorded (%llu wrapped), %zu traces, "
              "%zu with the full 8-stage causal chain\n",
              static_cast<unsigned long long>(spans_recorded),
              static_cast<unsigned long long>(spans_dropped), traces.size(),
              complete);
  for (const auto& [spans, count] : span_histogram) {
    std::printf("  %zu-span traces: %zu\n", spans, count);
  }

  {
    std::ofstream artifact("BENCH_tracing_spans.json");
    artifact << telemetry::render_spans_perfetto(traces, "bench", 8) << "\n";
  }
  std::printf("wrote BENCH_tracing_spans.json (Perfetto trace-event form)\n");

  std::ofstream json("BENCH_tracing.json");
  json << "{\"bench\":\"tracing\",\"smoke\":" << (smoke ? "true" : "false")
       << ",\"nic\":\"mlx5\",\"packets\":" << packets << ",\"reps\":" << reps
       << ",\"tax_queues\":1,\"export_queues\":8,\"trace_sample_default\":" << kDefaultSample
       << ",\"trace_sample_debug\":" << kDebugSample
       << ",\"ns_per_packet_off\":" << ns_off
       << ",\"tax_ns_per_packet_default\":" << default_diff
       << ",\"tax_ns_per_packet_debug\":" << debug_diff
       << ",\"overhead_percent\":" << overhead_percent
       << ",\"debug_overhead_percent\":" << debug_overhead_percent
       << ",\"overhead_bar_percent\":3"
       << ",\"spans_recorded\":" << spans_recorded
       << ",\"spans_dropped\":" << spans_dropped
       << ",\"traces\":" << traces.size()
       << ",\"complete_traces\":" << complete << ",\"bars\":["
       << "{\"name\":\"tracing_overhead_percent\",\"value\":"
       << overhead_percent << ",\"bar\":3,\"cmp\":\"<=\",\"pass\":"
       << (overhead_pass ? "true" : "false") << "},"
       << "{\"name\":\"causal_trace_complete\",\"value\":" << complete
       << ",\"bar\":1,\"cmp\":\">=\",\"pass\":"
       << (causal_pass ? "true" : "false") << "}],\"all_pass\":"
       << ((overhead_pass && causal_pass) ? "true" : "false") << "}\n";
  std::printf("wrote BENCH_tracing.json\n");

  std::printf("\nShape check: the default 1-in-%zu rate must stay within 3%% "
              "of the untraced\nrun, and at least one sampled packet must "
              "reconstruct end to end — all eight\npipeline stages present "
              "with non-decreasing start times.\n\n",
              kDefaultSample);

  // The causal bar is deterministic and always asserted; the overhead bar
  // is only asserted on full runs — a 4000-packet smoke measurement of a
  // ~1 ns/pkt effect is noise and would flake CI.
  return causal_pass && (smoke || overhead_pass);
}

void BM_TracingOverhead(benchmark::State& state) {
  const auto trace_sample = static_cast<std::size_t>(state.range(0));
  static Setup setup(20000);
  telemetry::Sink sink({.queues = 8});
  std::uint64_t packets = 0;
  for (auto _ : state) {
    const engine::EngineReport report =
        run_queues(setup, 8, &sink, trace_sample);
    packets = report.total.packets;
    benchmark::DoNotOptimize(report.total.value_checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_TracingOverhead)->Arg(0)->Arg(256)->Arg(64)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool ok = print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return ok ? 0 : 1;
}
