// Scrape storm: hundreds of concurrent keep-alive observability clients
// against a running engine, measuring what the async event-loop server
// costs the datapath.
//
// Two phases over the same trace and engine configuration:
//
//   - baseline: repeated engine runs with the embedded server idle.
//   - storm:    the same runs while kThreads scraper threads hold
//     kClientsPerThread persistent HTTP/1.1 connections each (so
//     threads × per-thread total concurrent keep-alive connections),
//     rotating every connection through the full route table —
//     /metrics, /metrics.json, /healthz, /readyz, /timeseries, /alerts,
//     /layout, /flows — and timing every request.
//
// Bars, asserted in BENCH_scrape_storm.json and the exit code:
//   - concurrent_connections: the server really held >= the target
//     concurrent connections mid-storm (sampled from its gauge);
//   - scrape_p99_ms: per-request p99 latency under storm stays under the
//     bar — the event loop serves hundreds of sockets without queueing
//     collapse;
//   - datapath_overhead: the engine's host-side critical path (per-worker
//     thread-CPU time, scheduler-noise resistant) degrades < 3% vs the
//     idle-server baseline — observability load does not tax the datapath;
//   - zero_reconnects: no client ever had to reopen its socket — the
//     server honored keep-alive for the whole storm.
//
// OPENDESC_BENCH_SMOKE=1 shrinks the fleet and the trace; the latency and
// overhead bars are scale-free, the connection bar scales with the fleet.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "http/client.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "telemetry/server.hpp"

namespace {

using namespace opendesc;
using Clock = std::chrono::steady_clock;

constexpr const char* kIntent = R"(header storm_t {
  @semantic("rss")     bit<32> h;
  @semantic("vlan")    bit<16> v;
  @semantic("pkt_len") bit<16> l;
})";

constexpr const char* kEndpoints[] = {
    "/metrics",      "/metrics.json", "/healthz",
    "/readyz",       "/timeseries",   "/alerts",
    "/layout",       "/flows?format=tsv",
};
constexpr std::size_t kEndpointCount =
    sizeof(kEndpoints) / sizeof(kEndpoints[0]);

struct StormStats {
  std::vector<double> latencies_ms;
  std::uint64_t requests = 0;
  std::uint64_t transport_errors = 0;
  std::uint64_t reconnects = 0;
};

/// One scraper thread: holds `clients` persistent connections and rotates
/// each through the endpoint table until `stop` flips.  A storm is
/// hundreds of *held* connections polled continuously, not a
/// CPU-saturating spin — real scrapers (Prometheus, dashboards) poll at
/// second-scale intervals, so even the millisecond-scale `pause` between
/// rotations is far hotter than production.  Unpaced, the scraper threads
/// would simply benchmark CPU contention on small boxes.
void scrape_loop(std::uint16_t port, std::size_t clients,
                 std::chrono::milliseconds pause,
                 const std::atomic<bool>& stop, StormStats& out) {
  std::vector<std::unique_ptr<http::HttpClient>> fleet;
  fleet.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    fleet.push_back(std::make_unique<http::HttpClient>("127.0.0.1", port));
  }
  std::size_t round = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      const char* target = kEndpoints[(i + round) % kEndpointCount];
      const auto t0 = Clock::now();
      try {
        (void)fleet[i]->get(target);
        out.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
        ++out.requests;
      } catch (const std::exception&) {
        ++out.transport_errors;
      }
    }
    ++round;
    std::this_thread::sleep_for(pause);
  }
  for (const auto& client : fleet) {
    out.reconnects += client->reconnects();
  }
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const std::size_t at = std::min(
      values.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(values.size())));
  return values[at];
}

/// Best-of-repeats: the least-contended run of each arm.  The comparison
/// is thread-CPU time, so min-vs-min isolates the storm's intrinsic cost
/// (cache pollution, snapshot reads) from scheduler noise — which on a
/// small CI box otherwise dominates a millisecond-scale critical path.
double best(const std::vector<double>& values) {
  return *std::min_element(values.begin(), values.end());
}

}  // namespace

int main() {
  const char* smoke_env = std::getenv("OPENDESC_BENCH_SMOKE");
  const bool smoke =
      smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0';

  const std::size_t packets = smoke ? 24000 : 60000;
  const std::size_t repeats = smoke ? 5 : 7;
  const std::size_t threads = smoke ? 4 : 8;
  const std::size_t clients_per_thread = smoke ? 16 : 32;
  const std::size_t total_clients = threads * clients_per_thread;
  // Full mode: the issue's >= 200 concurrent keep-alive clients.  Smoke
  // shrinks the fleet, so the bar follows it (allowing a few stragglers
  // still inside their connect()).
  const double conn_bar = smoke ? 48.0 : 200.0;
  // The overhead bar is about *held connections* + steady polling, not
  // aggregate request rate, so the bigger full-mode fleet polls at a
  // proportionally slower per-client cadence — keeping total request
  // pressure comparable instead of scaling it 4x with the fleet.
  const auto rotation_pause =
      std::chrono::milliseconds(smoke ? 20 : 150);
  constexpr double kP99BarMs = 250.0;
  constexpr double kOverheadBar = 0.03;

  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  softnic::ComputeEngine compute(registry);
  const core::CompileResult result =
      compiler.compile(nic::NicCatalog::by_name("ice").p4_source(), kIntent, {});

  rt::EngineConfig config = rt::EngineConfig{}
                                .with_queues(4)
                                .with_guard(true)
                                .with_server("127.0.0.1:0");
  rt::MultiQueueEngine engine(result, compute, config);
  if (engine.server() == nullptr) {
    std::fprintf(stderr, "bench_scrape_storm: embedded server did not start\n");
    return 1;
  }
  const std::uint16_t port = engine.server()->port();

  net::WorkloadConfig workload;
  workload.seed = 17;
  workload.vlan_probability = 0.3;
  net::WorkloadGenerator gen(workload);
  const std::vector<net::Packet> trace = gen.batch(packets);

  // Phase 1: idle-server baseline.  Warm up once, then median the host-side
  // critical path (thread-CPU time per worker, so preemption by other
  // processes does not pollute the comparison).
  (void)engine.run(trace);
  std::vector<double> baseline_ns;
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < repeats; ++i) {
    const engine::EngineReport report = engine.run(trace);
    baseline_ns.push_back(report.critical_path_ns());
    delivered = report.total.packets;
  }

  // Phase 2: the storm.  Spin up the fleet, wait for it to be fully
  // connected (every client connects lazily on its first request), then
  // re-run the same trace under scrape fire.
  std::atomic<bool> stop{false};
  std::vector<StormStats> stats(threads);
  std::vector<std::thread> scrapers;
  scrapers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    scrapers.emplace_back([&, t] {
      scrape_loop(port, clients_per_thread, rotation_pause, stop, stats[t]);
    });
  }

  // Let every connection establish, sampling the server's live gauge.
  std::size_t peak_connections = 0;
  for (int i = 0; i < 200 && peak_connections < total_clients; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    peak_connections =
        std::max(peak_connections, engine.server()->connections());
  }

  std::vector<double> storm_ns;
  for (std::size_t i = 0; i < repeats; ++i) {
    const engine::EngineReport report = engine.run(trace);
    storm_ns.push_back(report.critical_path_ns());
    peak_connections =
        std::max(peak_connections, engine.server()->connections());
  }
  peak_connections =
      std::max(peak_connections, engine.server()->connections());
  stop.store(true);
  for (std::thread& scraper : scrapers) {
    scraper.join();
  }

  StormStats total;
  for (const StormStats& s : stats) {
    total.requests += s.requests;
    total.transport_errors += s.transport_errors;
    total.reconnects += s.reconnects;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              s.latencies_ms.begin(), s.latencies_ms.end());
  }

  const double baseline = best(baseline_ns);
  const double storm = best(storm_ns);
  const double overhead =
      baseline > 0.0 ? std::max(0.0, (storm - baseline) / baseline) : 0.0;
  const double p50_ms = percentile(total.latencies_ms, 0.50);
  const double p99_ms = percentile(total.latencies_ms, 0.99);

  const bool conn_pass =
      static_cast<double>(peak_connections) >= conn_bar;
  const bool p99_pass = p99_ms < kP99BarMs && total.transport_errors == 0;
  const bool overhead_pass = overhead < kOverheadBar;
  const bool keepalive_pass = total.reconnects == 0;
  const bool all_pass = conn_pass && p99_pass && overhead_pass && keepalive_pass;

  std::printf("=== Scrape storm: %zu keep-alive clients (%zu threads x %zu) "
              "vs a %zu-packet 4-queue run, %zu repeats, %s ===\n",
              total_clients, threads, clients_per_thread, packets, repeats,
              smoke ? "smoke" : "full");
  std::printf("  storm scrapes:          %llu requests, %llu transport "
              "errors, p50 %.2f ms, p99 %.2f ms\n",
              static_cast<unsigned long long>(total.requests),
              static_cast<unsigned long long>(total.transport_errors), p50_ms,
              p99_ms);
  std::printf("  peak connections:       %zu (gauge-sampled)\n",
              peak_connections);
  std::printf("  datapath critical path: %.2f ms idle -> %.2f ms under "
              "storm (%+.2f%%), %llu/%zu delivered\n",
              baseline / 1e6, storm / 1e6, overhead * 100.0,
              static_cast<unsigned long long>(delivered), packets);
  std::printf("  bar concurrent_connections  %10zu >= %10.0f  [%s]\n",
              peak_connections, conn_bar, conn_pass ? "pass" : "FAIL");
  std::printf("  bar scrape_p99_ms           %10.2f <  %10.2f  [%s]\n",
              p99_ms, kP99BarMs, p99_pass ? "pass" : "FAIL");
  std::printf("  bar datapath_overhead       %9.2f%% <  %9.0f%%  [%s]\n",
              overhead * 100.0, kOverheadBar * 100.0,
              overhead_pass ? "pass" : "FAIL");
  std::printf("  bar zero_reconnects         %10llu == %10d  [%s]\n",
              static_cast<unsigned long long>(total.reconnects), 0,
              keepalive_pass ? "pass" : "FAIL");

  std::ofstream json("BENCH_scrape_storm.json");
  json << "{\"bench\":\"scrape_storm\",\"smoke\":" << (smoke ? "true" : "false")
       << ",\"packets\":" << packets << ",\"repeats\":" << repeats
       << ",\"threads\":" << threads
       << ",\"clients\":" << total_clients
       << ",\"requests\":" << total.requests
       << ",\"transport_errors\":" << total.transport_errors
       << ",\"reconnects\":" << total.reconnects
       << ",\"peak_connections\":" << peak_connections
       << ",\"scrape_p50_ms\":" << p50_ms
       << ",\"scrape_p99_ms\":" << p99_ms
       << ",\"baseline_critical_path_ns\":" << baseline
       << ",\"storm_critical_path_ns\":" << storm
       << ",\"datapath_overhead\":" << overhead
       << ",\"bars\":[{\"name\":\"concurrent_connections\",\"value\":"
       << peak_connections << ",\"bar\":" << conn_bar
       << ",\"cmp\":\">=\",\"pass\":" << (conn_pass ? "true" : "false")
       << "},{\"name\":\"scrape_p99_ms\",\"value\":" << p99_ms
       << ",\"bar\":" << kP99BarMs << ",\"cmp\":\"<\",\"pass\":"
       << (p99_pass ? "true" : "false")
       << "},{\"name\":\"datapath_overhead\",\"value\":" << overhead
       << ",\"bar\":" << kOverheadBar << ",\"cmp\":\"<\",\"pass\":"
       << (overhead_pass ? "true" : "false")
       << "},{\"name\":\"zero_reconnects\",\"value\":" << total.reconnects
       << ",\"bar\":0,\"cmp\":\"==\",\"pass\":"
       << (keepalive_pass ? "true" : "false") << "}],\"all_pass\":"
       << (all_pass ? "true" : "false") << "}\n";
  std::printf("wrote BENCH_scrape_storm.json (%s)\n",
              all_pass ? "all bars pass" : "BAR FAILURES");
  return all_pass ? 0 : 1;
}
