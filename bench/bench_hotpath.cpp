// Hot-path breakdown: where the ns/pkt actually goes.
//
// The continuous profiler (telemetry::Profiler) accounts every datapath
// nanosecond into a fixed stage enumeration — steer, flow_classify, ring,
// validate, consume, handoff, swap_barrier, wait — with batch-amortized
// sampling.  This bench runs the engine at 1 and 8 queues over one fixed
// trace and prints the per-stage ns/pkt bars the profiler reports, so a
// regression in any stage shows up as a bar that grew between revisions.
//
// Two bars are checked against the repo's standing targets:
//   - total work ns/pkt must line up with BENCH_engine_scaling.json's
//     per-packet host cost (same trace recipe, ~140 ns/pkt on the
//     reference machine);
//   - the profiler's own tax — interleaved min-of-reps, profiler on vs
//     with_profiler(false), sink attached in both — must stay < 3%.
//
// Results go to BENCH_hotpath.json.  OPENDESC_BENCH_SMOKE=1 shrinks the
// trace and the repetition count; the bars are scale-free.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "nic/model.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/sink.hpp"

namespace {

using namespace opendesc;

constexpr const char* kIntent = R"P4(
header hotpath_intent_t {
    @semantic("rss")        bit<32> hash;
    @semantic("l4_csum_ok") bit<1>  ok;
    @semantic("pkt_len")    bit<16> len;
}
)P4";

struct Setup {
  softnic::SemanticRegistry registry;
  std::unique_ptr<softnic::CostTable> costs;
  std::unique_ptr<softnic::ComputeEngine> compute;
  core::CompileResult result;
  std::vector<net::Packet> trace;

  explicit Setup(std::size_t packets) {
    costs = std::make_unique<softnic::CostTable>(registry);
    compute = std::make_unique<softnic::ComputeEngine>(registry);
    core::Compiler compiler(registry, *costs);
    result = compiler.compile(nic::NicCatalog::by_name("mlx5").p4_source(),
                              kIntent, {});
    net::WorkloadConfig config;
    config.seed = 3;
    config.flow_count = 256;  // same trace recipe as bench_engine_scaling
    config.udp_fraction = 0.5;
    config.vlan_probability = 0.2;
    net::WorkloadGenerator gen(config);
    trace = gen.batch(packets);
  }
};

engine::EngineReport run_queues(Setup& setup, std::size_t queues,
                                telemetry::Sink* sink, bool profile) {
  const engine::EngineConfig config = rt::EngineConfig{}
                                          .with_queues(queues)
                                          .with_telemetry(sink)
                                          .with_profiler(profile);
  engine::MultiQueueEngine eng(setup.result, *setup.compute, config);
  return eng.run(setup.trace);
}

/// `label ########----- 12.3` — a bar scaled against `full` (the largest
/// stage), so relative weight is readable at a glance.
void print_bar(const char* label, double value, double full) {
  constexpr int kWidth = 36;
  const int filled =
      full > 0.0
          ? std::clamp(static_cast<int>(value / full * kWidth + 0.5), 0,
                       kWidth)
          : 0;
  std::string bar(static_cast<std::size_t>(filled), '#');
  bar.append(static_cast<std::size_t>(kWidth - filled), '.');
  std::printf("  %-14s %s %8.1f\n", label, bar.c_str(), value);
}

/// One queue-count section: run with the profiler on, print the stage bars,
/// and append this row's JSON.
void breakdown_section(Setup& setup, std::size_t queues,
                       std::ostringstream& rows, bool first) {
  telemetry::Sink sink({.queues = queues});
  const engine::EngineReport report =
      run_queues(setup, queues, &sink, /*profile=*/true);
  const telemetry::ProfileCapture& profile = report.profile;
  const telemetry::ProfileData total = profile.aggregate();

  std::printf("\n%zu queue(s): %.1f host ns/pkt, %.1f profiled work ns/pkt "
              "(%llu of %llu batches sampled, stride %llu)\n",
              queues, report.total.ns_per_packet(), total.work_ns_per_packet(),
              static_cast<unsigned long long>(total.sampled_batches),
              static_cast<unsigned long long>(total.batches),
              static_cast<unsigned long long>(total.stride));

  double widest = 0.0;
  for (std::size_t s = 0; s < telemetry::kProfileStageCount; ++s) {
    widest = std::max(widest, profile.stage_ns_per_packet(
                                  static_cast<telemetry::ProfileStage>(s)));
  }
  for (std::size_t s = 0; s < telemetry::kProfileStageCount; ++s) {
    const auto stage = static_cast<telemetry::ProfileStage>(s);
    print_bar(std::string(telemetry::to_string(stage)).c_str(),
              profile.stage_ns_per_packet(stage), widest);
  }
  print_bar("work total", total.work_ns_per_packet(),
            std::max(widest, total.work_ns_per_packet()));

  if (!first) {
    rows << ",";
  }
  rows << "{\"queues\":" << queues
       << ",\"ns_per_packet\":" << report.total.ns_per_packet()
       << ",\"work_ns_per_packet\":" << total.work_ns_per_packet()
       << ",\"batches\":" << total.batches
       << ",\"sampled_batches\":" << total.sampled_batches
       << ",\"sampled_packets\":" << total.sampled_packets
       << ",\"stride\":" << total.stride << ",\"stages\":{";
  for (std::size_t s = 0; s < telemetry::kProfileStageCount; ++s) {
    const auto stage = static_cast<telemetry::ProfileStage>(s);
    rows << (s == 0 ? "" : ",") << "\"" << telemetry::to_string(stage)
         << "\":" << profile.stage_ns_per_packet(stage);
  }
  rows << "}}";
}

void print_table() {
  const char* smoke_env = std::getenv("OPENDESC_BENCH_SMOKE");
  const bool smoke = smoke_env != nullptr && smoke_env[0] != '\0';
  const std::size_t packets = smoke ? 4000 : 40000;
  const std::size_t reps = smoke ? 3 : 10;
  Setup setup(packets);

  std::printf("=== Hot-path breakdown: %zu packets, intent {rss, l4_csum_ok, "
              "pkt_len} on mlx5 ===\n", packets);

  std::ostringstream rows;
  breakdown_section(setup, 1, rows, /*first=*/true);
  breakdown_section(setup, 8, rows, /*first=*/false);

  // Profiler tax at 8 queues: interleaved min-of-reps with the sink attached
  // in both configurations, so the delta is the profiler alone (clock reads,
  // the per-batch begin/end bookkeeping, seqlock publishes).
  telemetry::Sink sink_off({.queues = 8});
  telemetry::Sink sink_on({.queues = 8});
  (void)run_queues(setup, 8, &sink_off, false);  // warm-up, discarded
  (void)run_queues(setup, 8, &sink_on, true);
  double ns_off = 0.0;
  double ns_on = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const double off =
        run_queues(setup, 8, &sink_off, false).total.ns_per_packet();
    const double on =
        run_queues(setup, 8, &sink_on, true).total.ns_per_packet();
    ns_off = r == 0 ? off : std::min(ns_off, off);
    ns_on = r == 0 ? on : std::min(ns_on, on);
  }
  const double overhead_percent =
      ns_off > 0.0 ? 100.0 * (ns_on - ns_off) / ns_off : 0.0;
  std::printf("\nprofiler tax at 8 queues: %.1f ns/pkt profiler off, %.1f "
              "with (%.2f%% overhead; bar < 3%%)\n",
              ns_off, ns_on, overhead_percent);

  std::ofstream json("BENCH_hotpath.json");
  json << "{\"bench\":\"hotpath\",\"nic\":\"mlx5\",\"packets\":" << packets
       << ",\"rows\":[" << rows.str()
       << "],\"profiler\":{\"reps\":" << reps
       << ",\"ns_per_packet_off\":" << ns_off
       << ",\"ns_per_packet_on\":" << ns_on
       << ",\"overhead_percent\":" << overhead_percent
       << ",\"overhead_bar_percent\":3}}\n";
  std::printf("wrote BENCH_hotpath.json\n");

  std::printf("\nShape check: the work bars must sum to roughly the host "
              "ns/pkt the scaling\nbench reports for this trace — the "
              "profiler redistributes the cost across\nstages, it does not "
              "invent or lose it — and the profiler-on run must stay\nwithin "
              "3%% of the profiler-off run.\n\n");
}

void BM_HotpathBreakdown(benchmark::State& state) {
  const auto queues = static_cast<std::size_t>(state.range(0));
  static Setup setup(20000);
  telemetry::Sink sink({.queues = queues});
  double work_ns = 0.0;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    const engine::EngineReport report =
        run_queues(setup, queues, &sink, /*profile=*/true);
    work_ns = report.profile.aggregate().work_ns_per_packet();
    packets = report.total.packets;
    benchmark::DoNotOptimize(report.total.value_checksum);
  }
  state.counters["work_ns_per_packet"] = work_ns;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_HotpathBreakdown)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
