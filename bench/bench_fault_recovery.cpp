// Fault-recovery overhead: what hardening the host datapath costs, and how
// goodput degrades as the device misbehaves.
//
// Three questions the table answers:
//  * validation tax — ns/packet of the ValidatingRxLoop vs the plain loop at
//    fault rate 0 (the price of length/fixed-field/guard-tag checks);
//  * graceful degradation — goodput (fraction of offered packets whose
//    wanted semantics were delivered, hardware or SoftNIC path) at composite
//    fault rates {0, 1e-4, 1e-2}: the hardened loop holds 100% while
//    recovery work grows;
//  * recovery mix — how many packets each rate pushes onto the quarantine /
//    lost-completion / software-recovery paths.
//
// Every row, including the per-semantic provenance split (nic_path /
// softnic_shim / unavailable counts), is written to
// BENCH_fault_recovery.json in the working directory.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/compiler.hpp"
#include "nic/model.hpp"
#include "runtime/guard.hpp"

namespace {

using namespace opendesc;
using softnic::SemanticId;

constexpr const char* kIntent = R"P4(
header hard_intent_t {
    @semantic("rss")     bit<32> hash;
    @semantic("vlan")    bit<16> tci;
    @semantic("pkt_len") bit<16> len;
}
)P4";

const std::vector<SemanticId> kWanted = {
    SemanticId::rss_hash, SemanticId::vlan_tci, SemanticId::pkt_len};

struct Setup {
  softnic::SemanticRegistry registry;
  std::unique_ptr<softnic::CostTable> costs;
  std::unique_ptr<softnic::ComputeEngine> engine;
  core::CompileResult result;
  core::CompiledLayout wire_layout;

  Setup() {
    costs = std::make_unique<softnic::CostTable>(registry);
    engine = std::make_unique<softnic::ComputeEngine>(registry);
    core::Compiler compiler(registry, *costs);
    result = compiler.compile(nic::NicCatalog::by_name("ice").p4_source(),
                              kIntent, {});
    wire_layout = result.layout.with_guard();
  }
};

net::WorkloadGenerator make_workload() {
  net::WorkloadConfig config;
  config.seed = 17;
  config.vlan_probability = 0.5;
  return net::WorkloadGenerator(config);
}

struct HardenedRun {
  rt::RxLoopStats stats;
  /// Facade counts (hw-consumed packets) merged with the loop's recovery
  /// counts: per semantic, nic + softnic + unavailable == delivered packets.
  rt::SemanticPathCounters paths;
};

HardenedRun run_hardened(const Setup& setup, double fault_rate,
                         std::size_t packets) {
  sim::NicSimulator nic(setup.wire_layout, *setup.engine, {});
  std::unique_ptr<sim::FaultInjector> injector;
  if (fault_rate > 0.0) {
    injector = std::make_unique<sim::FaultInjector>(
        sim::FaultConfig::composite(fault_rate, 2026));
    nic.set_fault_injector(injector.get());
  }
  net::WorkloadGenerator gen = make_workload();
  rt::OpenDescStrategy strategy(setup.result, *setup.engine);
  rt::ValidatingRxLoop loop(setup.wire_layout, *setup.engine);
  rt::RxLoopConfig config;
  config.packet_count = packets;
  HardenedRun run;
  run.stats = loop.run(nic, gen, strategy, kWanted, config);
  run.paths += strategy.facade().path_counters();
  run.paths += loop.recovery_path_counters();
  return run;
}

rt::RxLoopStats run_plain(const Setup& setup, std::size_t packets) {
  sim::NicSimulator nic(setup.result.layout, *setup.engine, {});
  net::WorkloadGenerator gen = make_workload();
  rt::OpenDescStrategy strategy(setup.result, *setup.engine);
  rt::RxLoopConfig config;
  config.packet_count = packets;
  return rt::run_rx_loop(nic, gen, strategy, kWanted, config);
}

void print_table() {
  const Setup setup;
  constexpr std::size_t kPackets = 50000;

  std::printf("=== Fault recovery: hardened datapath cost and goodput "
              "(ice, intent {rss, vlan, pkt_len}) ===\n");
  const rt::RxLoopStats plain = run_plain(setup, kPackets);
  std::printf("plain loop, no validation:            %8.1f ns/pkt   "
              "goodput 100.0%%\n", plain.ns_per_packet());

  std::ostringstream rows;
  bool first_row = true;
  for (const double rate : {0.0, 1e-4, 1e-2}) {
    const HardenedRun run = run_hardened(setup, rate, kPackets);
    const rt::RxLoopStats& stats = run.stats;
    std::printf(
        "hardened loop, fault rate %-7g       %8.1f ns/pkt   goodput %5.1f%%"
        "   (hw %zu, quarantined %zu, lost %zu, sw-recovered %zu)\n",
        rate, stats.ns_per_packet(),
        100.0 * stats.delivery_ratio(kPackets),
        static_cast<std::size_t>(stats.hw_consumed),
        static_cast<std::size_t>(stats.quarantined),
        static_cast<std::size_t>(stats.lost_completions),
        static_cast<std::size_t>(stats.softnic_recovered));
    rows << (first_row ? "" : ",") << "{\"fault_rate\":" << rate
         << ",\"ns_per_packet\":" << stats.ns_per_packet()
         << ",\"goodput\":" << stats.delivery_ratio(kPackets)
         << ",\"hw_consumed\":" << stats.hw_consumed
         << ",\"quarantined\":" << stats.quarantined
         << ",\"lost_completions\":" << stats.lost_completions
         << ",\"softnic_recovered\":" << stats.softnic_recovered
         << ",\"semantic_paths\":[";
    bool first_semantic = true;
    for (const auto& [semantic, paths] : run.paths.snapshot()) {
      rows << (first_semantic ? "" : ",") << "{\"semantic\":\""
           << setup.registry.name(static_cast<SemanticId>(semantic))
           << "\",\"nic_path\":" << paths.nic_path
           << ",\"softnic_shim\":" << paths.softnic_shim
           << ",\"unavailable\":" << paths.unavailable << "}";
      first_semantic = false;
    }
    rows << "]}";
    first_row = false;
  }

  std::ofstream json("BENCH_fault_recovery.json");
  json << "{\"bench\":\"fault_recovery\",\"nic\":\"ice\",\"packets\":"
       << kPackets
       << ",\"ns_per_packet_plain\":" << plain.ns_per_packet()
       << ",\"rows\":[" << rows.str() << "]}\n";
  std::printf("wrote BENCH_fault_recovery.json\n");

  std::printf(
      "\nShape check: goodput stays at 100%% at every fault rate — faulted "
      "packets shift\nfrom the accessor path to SoftNIC recovery, so "
      "ns/packet grows with the rate\nwhile delivery never drops.\n\n");
}

void BM_FaultRecovery(benchmark::State& state, double fault_rate) {
  static Setup setup;
  constexpr std::size_t kPackets = 20000;
  for (auto _ : state) {
    const rt::RxLoopStats stats = run_hardened(setup, fault_rate, kPackets).stats;
    benchmark::DoNotOptimize(stats.value_checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPackets));
}
BENCHMARK_CAPTURE(BM_FaultRecovery, rate_0, 0.0)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FaultRecovery, rate_1e4, 1e-4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FaultRecovery, rate_1e2, 1e-2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
