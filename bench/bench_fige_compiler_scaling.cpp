// Fig. E (§4): compiler scalability.  The paper notes that because
// production NICs expose only a handful of completion paths, "optimization
// degenerates into enumerating a small finite set".  This bench checks the
// degenerate case stays cheap AND characterizes the cliff: synthetic
// deparsers with d independent branch levels have 2^d completion paths.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "core/compiler.hpp"
#include "p4/parser.hpp"

namespace {

using namespace opendesc;

// d independent boolean context bits, each guarding one emitted field.
std::string synthetic_nic(std::size_t depth) {
  std::string ctx = "struct ctx_t {\n";
  std::string header = "header m_t {\n  @semantic(\"pkt_len\") bit<16> base;\n";
  std::string body = "    apply {\n        o.emit(m.base);\n";
  // A few real semantics, then plain fields (semantics must not repeat to
  // keep Prov sets distinct where it matters).
  const char* sems[] = {"rss", "vlan", "ip_id", "flow_id", "packet_type",
                        "timestamp"};
  for (std::size_t i = 0; i < depth; ++i) {
    ctx += "  bit<1> b" + std::to_string(i) + ";\n";
    if (i < 6) {
      header += std::string("  @semantic(\"") + sems[i] + "\") bit<" +
                (std::string(sems[i]) == "timestamp" ? "64" : "32") + "> f" +
                std::to_string(i) + ";\n";
    } else {
      header += "  bit<32> f" + std::to_string(i) + ";\n";
    }
    body += "        if (ctx.b" + std::to_string(i) + " == 1) { o.emit(m.f" +
            std::to_string(i) + "); }\n";
  }
  // Width mismatch: semantic widths — rss 32, vlan 16, ip_id 16, flow_id 32,
  // packet_type 16, timestamp 64.  Use correct widths.
  header = "header m_t {\n  @semantic(\"pkt_len\") bit<16> base;\n";
  const char* widths[] = {"32", "16", "16", "32", "16", "64"};
  for (std::size_t i = 0; i < depth; ++i) {
    if (i < 6) {
      header += std::string("  @semantic(\"") + sems[i] + "\") bit<" +
                widths[i] + "> f" + std::to_string(i) + ";\n";
    } else {
      header += "  bit<32> f" + std::to_string(i) + ";\n";
    }
  }
  ctx += "}\n";
  header += "}\n";
  body += "    }\n";
  return ctx + header +
         "control SynthDeparser(cmpt_out o, in ctx_t ctx, in m_t m) {\n" + body +
         "}\n";
}

constexpr const char* kIntent = R"(header i_t {
    @semantic("rss") bit<32> h;
    @semantic("vlan") bit<16> v;
})";

void print_table() {
  std::printf("=== Fig. E: compile cost vs deparser branch depth ===\n");
  std::printf("%-7s %10s %12s %14s\n", "depth", "paths", "compile(us)",
              "us per path");
  for (std::size_t depth = 1; depth <= 12; ++depth) {
    const std::string nic_source = synthetic_nic(depth);
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);

    const auto start = std::chrono::steady_clock::now();
    const auto result = compiler.compile(nic_source, kIntent, {});
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double us =
        std::chrono::duration<double, std::micro>(elapsed).count();
    std::printf("%5zu %10zu %12.0f %14.2f\n", depth, result.paths.size(), us,
                us / static_cast<double>(result.paths.size()));
  }
  std::printf(
      "\nShape check: path count doubles per branch level (2^d), but "
      "per-path cost stays\nroughly constant — the real-NIC regime (d <= 2-3) "
      "compiles in well under a millisecond,\nmatching the paper's "
      "\"enumerate a small finite set\" argument.\n\n");
}

void BM_FullCompile(benchmark::State& state) {
  const std::string nic_source =
      synthetic_nic(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    benchmark::DoNotOptimize(compiler.compile(nic_source, kIntent, {}));
  }
  state.SetLabel("depth=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_FullCompile)->Arg(1)->Arg(4)->Arg(8)->Arg(10);

void BM_ParseOnly(benchmark::State& state) {
  const std::string nic_source =
      synthetic_nic(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(p4::parse_program(nic_source));
  }
}
BENCHMARK(BM_ParseOnly)->Arg(4)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
