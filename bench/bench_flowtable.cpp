// Flow-table scale: >= 1M concurrent flows under Zipf traffic with churn,
// one owner thread per shard, bounded memory.
//
// The table is the production-shaped consumer of the paper's metadata
// contract — per-flow state keyed on the NIC-provided RSS hash — so the
// bench measures what that consumer costs at internet scale:
//
//   - warm fill: every rank of each shard's Zipf population inserted once
//     (this is what pins "concurrent flows": the resident population, read
//     back from table occupancy, must be >= 1M);
//   - steady state: Zipf(0.99) draws with 0.1% churn per draw, measured as
//     lookups/sec across all owner threads (wall clock, threads running
//     concurrently — the lock-free claim is that they never serialize);
//   - footprint: memory_bytes / active flows (bar: < 128 bytes/flow — the
//     32-byte slot + 1-byte clock ref over the steady-state load factor);
//   - eviction rate: clock-LRU recycles + idle expiries per million
//     lookups, the cost of boundedness under churn.
//
// Bars are asserted in-process and written (explicitly, pass/fail) to
// BENCH_flowtable.json.  OPENDESC_BENCH_SMOKE=1 shrinks the population for
// CI smoke runs — bars that depend on absolute scale (the 1M floor) are
// rescaled to the smoke population, the relative bars stay put.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

#include "flow/flowtable.hpp"
#include "flow/zipf.hpp"

namespace {

using namespace opendesc;

bool smoke_mode() {
  const char* env = std::getenv("OPENDESC_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

struct ScaleRun {
  std::size_t threads = 0;
  std::size_t flows_per_thread = 0;
  std::uint64_t fill_active = 0;       ///< resident flows after warm fill
  double fill_mlookups_per_s = 0.0;
  double steady_mlookups_per_s = 0.0;
  flow::FlowStats stats;               ///< table totals after steady state
  double bytes_per_flow = 0.0;
  double evictions_per_mlookup = 0.0;
  double hit_rate = 0.0;
};

ScaleRun run_scale(std::size_t threads, std::size_t flows_per_thread,
                   std::size_t steady_draws_per_thread) {
  ScaleRun run;
  run.threads = threads;
  run.flows_per_thread = flows_per_thread;

  // Capacity 2x the offered population: the bench measures steady-state
  // behaviour, not thrash — evictions come from probe-window collisions
  // and churn, not from a undersized table.
  flow::FlowTable table({.shards = threads,
                         .slots_per_shard = 2 * flows_per_thread,
                         .probe_window = 16,
                         .idle_timeout_ns = 0});

  const auto run_phase = [&](bool fill) {
    std::vector<std::thread> owners;
    owners.reserve(threads);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t shard = 0; shard < threads; ++shard) {
      owners.emplace_back([&, shard] {
        flow::ZipfFlowStream stream({.seed = 1000 + shard,
                                     .flow_count = flows_per_thread,
                                     .skew = 0.99,
                                     .churn = fill ? 0.0 : 0.001});
        std::uint64_t now = 0;
        if (fill) {
          // One record per rank: the whole population goes resident.
          for (const std::uint64_t key : stream.keys()) {
            now += 20;
            table.record(shard, key, 60, now);
          }
          return;
        }
        now = 1'000'000'000;
        for (std::size_t i = 0; i < steady_draws_per_thread; ++i) {
          now += 20;
          table.record(shard, stream.next(), 60 + (i & 0x3ff), now);
        }
      });
    }
    for (std::thread& t : owners) {
      t.join();
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  const double fill_s = run_phase(/*fill=*/true);
  run.fill_active = table.stats().active;
  run.fill_mlookups_per_s =
      static_cast<double>(threads * flows_per_thread) / fill_s / 1e6;

  const flow::FlowStats before = table.stats();
  const double steady_s = run_phase(/*fill=*/false);
  run.stats = table.stats();
  const double steady_lookups =
      static_cast<double>(run.stats.lookups - before.lookups);
  run.steady_mlookups_per_s = steady_lookups / steady_s / 1e6;
  run.bytes_per_flow = run.stats.bytes_per_flow();
  run.evictions_per_mlookup =
      steady_lookups > 0.0
          ? static_cast<double>(run.stats.evicted_lru + run.stats.expired_idle -
                                before.evicted_lru - before.expired_idle) /
                steady_lookups * 1e6
          : 0.0;
  run.hit_rate = run.stats.hit_rate();
  return run;
}

struct Bar {
  const char* name;
  double value;
  double bar;
  bool higher_is_better;
  [[nodiscard]] bool pass() const {
    return higher_is_better ? value >= bar : value <= bar;
  }
};

void print_and_write(const ScaleRun& run, bool smoke) {
  const double flow_floor =
      static_cast<double>(run.threads * run.flows_per_thread) * 0.95;
  const Bar bars[] = {
      // >= 1M resident flows at full scale; in smoke mode the same 95% of
      // the (shrunken) offered population.
      {"concurrent_flows", static_cast<double>(run.fill_active), flow_floor,
       true},
      {"bytes_per_flow", run.bytes_per_flow, 128.0, false},
      {"steady_mlookups_per_s", run.steady_mlookups_per_s, 1.0, true},
      // Churn is 0.1%/draw; boundedness must not cost an order more than
      // the turnover it absorbs.
      {"evictions_per_mlookup", run.evictions_per_mlookup, 20000.0, false},
  };

  std::printf("=== Flow table scale: %zu shards x %zu flows (%s) ===\n",
              run.threads, run.flows_per_thread, smoke ? "smoke" : "full");
  std::printf("  warm fill: %llu resident flows, %.1f Mlookups/s\n",
              static_cast<unsigned long long>(run.fill_active),
              run.fill_mlookups_per_s);
  std::printf("  steady state (Zipf 0.99, 0.1%% churn): %.1f Mlookups/s, "
              "hit rate %.1f%%\n",
              run.steady_mlookups_per_s, 100.0 * run.hit_rate);
  std::printf("  footprint: %.1f MiB fixed, %.1f bytes/flow at %.0f%% load\n",
              static_cast<double>(run.stats.memory_bytes) / (1024.0 * 1024.0),
              run.bytes_per_flow, 100.0 * run.stats.load_factor());
  std::printf("  boundedness: %llu LRU evictions, %llu idle expiries "
              "(%.0f per Mlookup)\n",
              static_cast<unsigned long long>(run.stats.evicted_lru),
              static_cast<unsigned long long>(run.stats.expired_idle),
              run.evictions_per_mlookup);
  bool all_pass = true;
  for (const Bar& bar : bars) {
    all_pass = all_pass && bar.pass();
    std::printf("  bar %-24s %14.1f %s %10.1f  [%s]\n", bar.name, bar.value,
                bar.higher_is_better ? ">=" : "<=", bar.bar,
                bar.pass() ? "pass" : "FAIL");
  }

  std::ofstream json("BENCH_flowtable.json");
  json << "{\"bench\":\"flowtable\",\"smoke\":" << (smoke ? "true" : "false")
       << ",\"shards\":" << run.threads
       << ",\"flows_per_shard\":" << run.flows_per_thread
       << ",\"concurrent_flows\":" << run.fill_active
       << ",\"fill_mlookups_per_s\":" << run.fill_mlookups_per_s
       << ",\"steady_mlookups_per_s\":" << run.steady_mlookups_per_s
       << ",\"hit_rate\":" << run.hit_rate
       << ",\"memory_bytes\":" << run.stats.memory_bytes
       << ",\"bytes_per_flow\":" << run.bytes_per_flow
       << ",\"load_factor\":" << run.stats.load_factor()
       << ",\"evicted_lru\":" << run.stats.evicted_lru
       << ",\"expired_idle\":" << run.stats.expired_idle
       << ",\"evictions_per_mlookup\":" << run.evictions_per_mlookup
       << ",\"bars\":[";
  for (std::size_t i = 0; i < std::size(bars); ++i) {
    json << (i == 0 ? "" : ",") << "{\"name\":\"" << bars[i].name
         << "\",\"value\":" << bars[i].value << ",\"bar\":" << bars[i].bar
         << ",\"cmp\":\"" << (bars[i].higher_is_better ? ">=" : "<=")
         << "\",\"pass\":" << (bars[i].pass() ? "true" : "false") << "}";
  }
  json << "],\"all_pass\":" << (all_pass ? "true" : "false") << "}\n";
  std::printf("wrote BENCH_flowtable.json (%s)\n",
              all_pass ? "all bars pass" : "BAR FAILURES");
  if (!all_pass) {
    std::exit(1);
  }
}

/// Single-shard record() cost through the google-benchmark harness, for
/// -benchmark_filter users; the scale table above is the primary output.
void BM_FlowTableRecord(benchmark::State& state) {
  flow::FlowTable table({.shards = 1, .slots_per_shard = 1 << 16});
  flow::ZipfFlowStream stream(
      {.seed = 3, .flow_count = 1 << 15, .skew = 0.99, .churn = 0.001});
  std::uint64_t now = 0;
  for (auto _ : state) {
    now += 20;
    table.record(0, stream.next(), 60, now);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["active"] = static_cast<double>(table.stats().active);
}
BENCHMARK(BM_FlowTableRecord);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = smoke_mode();
  // Full scale: 8 shards x 131072 flows = 1,048,576 concurrent flows.
  const std::size_t threads = 8;
  const std::size_t flows_per_thread = smoke ? (1 << 13) : (1 << 17);
  const std::size_t steady_draws = smoke ? (1 << 16) : (1 << 21);
  print_and_write(run_scale(threads, flows_per_thread, steady_draws), smoke);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
