// Fig. B (§2 claim, TinyNF ~1.7×): host datapath throughput of the
// generated minimal accessors vs the DPDK-style mbuf indirection, the
// kernel-style full extraction, and the netmap-style all-software baseline.
//
// The paper's motivation cites TinyNF's 1.7× gain from replacing the DPDK
// metadata machinery with a minimal driver; the shape to reproduce is
// OpenDesc ≳ raw-with-offloads > mbuf > skbuff on a metadata-light intent.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/compiler.hpp"
#include "nic/model.hpp"
#include "runtime/rxloop.hpp"

namespace {

using namespace opendesc;
using softnic::SemanticId;

constexpr const char* kIntent = R"P4(
header nf_intent_t {
    @semantic("rss")        bit<32> hash;
    @semantic("l4_csum_ok") bit<1>  ok;
    @semantic("pkt_len")    bit<16> len;
}
)P4";

const std::vector<SemanticId> kWanted = {
    SemanticId::rss_hash, SemanticId::l4_csum_ok, SemanticId::pkt_len};

struct Setup {
  softnic::SemanticRegistry registry;
  std::unique_ptr<softnic::CostTable> costs;
  std::unique_ptr<softnic::ComputeEngine> engine;
  core::CompileResult result;

  explicit Setup(const std::string& nic_name) {
    costs = std::make_unique<softnic::CostTable>(registry);
    engine = std::make_unique<softnic::ComputeEngine>(registry);
    core::Compiler compiler(registry, *costs);
    result = compiler.compile(nic::NicCatalog::by_name(nic_name).p4_source(),
                              kIntent, {});
  }
};

std::unique_ptr<rt::RxStrategy> make_strategy(const std::string& kind,
                                              const Setup& setup) {
  if (kind == "skbuff") {
    return std::make_unique<rt::SkbuffStrategy>(setup.result.layout,
                                                *setup.engine);
  }
  if (kind == "mbuf") {
    return std::make_unique<rt::MbufStrategy>(setup.result.layout, *setup.engine);
  }
  if (kind == "raw") {
    return std::make_unique<rt::RawStrategy>(*setup.engine);
  }
  return std::make_unique<rt::OpenDescStrategy>(setup.result, *setup.engine);
}

double measure_ns_per_packet(const std::string& kind, const Setup& setup,
                             std::size_t frame_size, std::size_t packets) {
  sim::NicSimulator nic(setup.result.layout, *setup.engine, {});
  net::WorkloadConfig config;
  config.seed = 3;
  config.min_frame = frame_size;
  config.max_frame = frame_size;
  net::WorkloadGenerator gen(config);
  const auto strategy = make_strategy(kind, setup);
  rt::RxLoopConfig loop;
  loop.packet_count = packets;
  return rt::run_rx_loop(nic, gen, *strategy, kWanted, loop).ns_per_packet();
}

void print_table() {
  const Setup setup("mlx5");
  std::printf("=== Fig. B: host datapath cost, intent {rss, l4_csum_ok, "
              "pkt_len} on mlx5 ===\n");
  std::printf("%-8s %12s %12s %12s %12s %14s\n", "frame", "skbuff", "mbuf",
              "raw-sw", "opendesc", "mbuf/opendesc");
  for (const std::size_t frame : {64u, 128u, 256u, 512u, 1024u, 1500u}) {
    const double skbuff = measure_ns_per_packet("skbuff", setup, frame, 30000);
    const double mbuf = measure_ns_per_packet("mbuf", setup, frame, 30000);
    const double raw = measure_ns_per_packet("raw", setup, frame, 30000);
    const double opendesc =
        measure_ns_per_packet("opendesc", setup, frame, 30000);
    std::printf("%5zuB %10.1fns %10.1fns %10.1fns %10.1fns %13.2fx\n", frame,
                skbuff, mbuf, raw, opendesc, mbuf / opendesc);
  }
  std::printf(
      "\nShape check: the generated intent-tailored datapath beats the "
      "eager mbuf transform\n(TinyNF reported 1.7x from the same "
      "simplification) and the raw baseline pays the\nfull software "
      "checksum, growing with frame size.\n\n");
}

void BM_Strategy(benchmark::State& state, const std::string& kind) {
  static Setup setup("mlx5");
  sim::NicSimulator nic(setup.result.layout, *setup.engine, {});
  net::WorkloadConfig config;
  config.min_frame = 256;
  config.max_frame = 256;
  net::WorkloadGenerator gen(config);
  const auto strategy = make_strategy(kind, setup);

  // Pre-fill a batch and time only consumption.
  std::vector<sim::RxEvent> events(64);
  for (int i = 0; i < 64; ++i) {
    nic.rx(gen.next());
  }
  const std::size_t n = nic.poll(events);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      const rt::PacketContext pkt(events[i]);
      sink ^= strategy->consume(pkt, kWanted);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_CAPTURE(BM_Strategy, skbuff, "skbuff");
BENCHMARK_CAPTURE(BM_Strategy, mbuf, "mbuf");
BENCHMARK_CAPTURE(BM_Strategy, raw, "raw");
BENCHMARK_CAPTURE(BM_Strategy, opendesc, "opendesc");

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
