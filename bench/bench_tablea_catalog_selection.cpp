// Table A (§2/§3 claim): layout selection across NIC generations for the
// paper's Fig. 1 application intent (checksum, VLAN TCI, RSS hash, KV key).
//
// Reproduces the qualitative rows of the paper's narrative: the e1000 has a
// single small layout (checksum only), newer Intel parts trade RSS against
// checksum, mlx5 offers many CQE formats, and the fully-programmable QDMA
// simply picks the smallest completion that carries everything — including
// the custom accelerator result.  Compile latency per NIC is also measured.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/compiler.hpp"
#include "nic/model.hpp"

namespace {

using namespace opendesc;

constexpr const char* kFig1Intent = R"P4(
header app_intent_t {
    @semantic("ip_checksum") bit<16> csum;
    @semantic("vlan")        bit<16> vlan_tci;
    @semantic("rss")         bit<32> rss_hash;
    @semantic("kv_key_hash") bit<32> kv_key;
}
)P4";

void print_table() {
  std::printf("=== Table A: Fig. 1 intent across the NIC catalog ===\n");
  std::printf("%-9s %-23s %6s %6s %9s %9s %10s  %s\n", "nic", "class", "paths",
              "cmpt", "sw-cost", "dma-cost", "Eq.1", "context programming");
  for (const nic::NicModel& model : nic::NicCatalog::all()) {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    const auto result = compiler.compile(model.p4_source(), kFig1Intent, {});
    const auto& score = result.chosen_score();

    std::string ctx;
    for (const auto& [path, value] : result.context_assignment) {
      if (!ctx.empty()) ctx += " ";
      ctx += path + "=" + std::to_string(value);
    }
    if (ctx.empty()) ctx = "(fixed function)";

    std::printf("%-9s %-23s %6zu %5zuB %9.1f %9.1f %10.1f  %s\n",
                model.name().c_str(), to_string(model.nic_class()).c_str(),
                result.paths.size(), result.layout.total_bytes(),
                score.softnic_cost, score.dma_cost, score.total(), ctx.c_str());
  }
  std::printf(
      "\nShape check (paper §2): path counts grow with programmability "
      "(1 → 2 → 3 → many),\nand only the programmable NIC serves the "
      "custom kv_key_hash from hardware.\n\n");

  // Full ranking for one interesting device.
  softnic::SemanticRegistry registry;
  softnic::CostTable costs(registry);
  core::Compiler compiler(registry, costs);
  const auto mlx5 = compiler.compile(
      nic::NicCatalog::by_name("mlx5").p4_source(), kFig1Intent, {});
  std::printf("mlx5 candidate ranking (best first):\n");
  for (const auto& s : mlx5.ranking) {
    std::printf("  %-40s total=%.1f\n",
                mlx5.paths[s.path_index].describe(registry).c_str(), s.total());
  }
  std::printf("\n");
}

void BM_CompileCatalogModel(benchmark::State& state) {
  const auto& models = nic::NicCatalog::all();
  const nic::NicModel& model = models[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    benchmark::DoNotOptimize(compiler.compile(model.p4_source(), kFig1Intent, {}));
  }
  state.SetLabel(model.name());
}
BENCHMARK(BM_CompileCatalogModel)->DenseRange(0, 6);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
