// Engine scaling: packets/sec of the multi-queue datapath at 1/2/4/8
// queues over one fixed trace.
//
// Throughput here is the repo's host-side metric: each worker's host_ns is
// its shard's per-thread CPU cost of the hardened consume path, and the
// engine's rate is total packets over the slowest shard — the capacity of
// an N-core host with one core per queue.  That makes the scaling curve a
// property of the datapath (steering balance + per-shard cost), not of how
// many cores the machine running the simulation has; wall-clock throughput
// is printed alongside, unmodelled.  The acceptance bar is >= 2.5x at 4
// queues vs 1.
//
// The run also measures the telemetry tax — per-packet host cost with a
// Sink attached vs without (bar: < 3%) — and writes every number to
// BENCH_engine_scaling.json in the working directory for machine
// consumption (pps per queue count, per-queue breakdown, overhead).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "http/server.hpp"
#include "nic/model.hpp"
#include "telemetry/sink.hpp"

namespace {

using namespace opendesc;

constexpr const char* kIntent = R"P4(
header scale_intent_t {
    @semantic("rss")        bit<32> hash;
    @semantic("l4_csum_ok") bit<1>  ok;
    @semantic("pkt_len")    bit<16> len;
}
)P4";

struct Setup {
  softnic::SemanticRegistry registry;
  std::unique_ptr<softnic::CostTable> costs;
  std::unique_ptr<softnic::ComputeEngine> compute;
  core::CompileResult result;
  std::vector<net::Packet> trace;

  explicit Setup(std::size_t packets) {
    costs = std::make_unique<softnic::CostTable>(registry);
    compute = std::make_unique<softnic::ComputeEngine>(registry);
    core::Compiler compiler(registry, *costs);
    result = compiler.compile(nic::NicCatalog::by_name("mlx5").p4_source(),
                              kIntent, {});
    net::WorkloadConfig config;
    config.seed = 3;
    config.flow_count = 256;  // enough 5-tuples to balance 8 queues
    config.udp_fraction = 0.5;
    config.vlan_probability = 0.2;
    net::WorkloadGenerator gen(config);
    trace = gen.batch(packets);  // materialized once: identical input per run
  }
};

engine::EngineReport run_queues(Setup& setup, std::size_t queues,
                                telemetry::Sink* sink = nullptr) {
  const engine::EngineConfig config =
      rt::EngineConfig{}.with_queues(queues).with_telemetry(sink);
  engine::MultiQueueEngine eng(setup.result, *setup.compute, config);
  return eng.run(setup.trace);
}

/// Per-packet host CPU cost (sum of every shard's host_ns) with and without
/// a sink.  Runs are interleaved (plain, sink, plain, sink, ...) so CPU
/// frequency ramps and cache warmth hit both configurations equally, and
/// the min over repetitions estimates each datapath's intrinsic cost.
struct OverheadSample {
  double plain_ns = 0.0;
  double sink_ns = 0.0;
};

OverheadSample measure_overhead(Setup& setup, std::size_t queues,
                                std::size_t reps, telemetry::Sink& sink) {
  OverheadSample best;
  run_queues(setup, queues);  // warm-up, discarded
  for (std::size_t r = 0; r < reps; ++r) {
    const double plain = run_queues(setup, queues).total.ns_per_packet();
    const double with = run_queues(setup, queues, &sink).total.ns_per_packet();
    best.plain_ns = r == 0 ? plain : std::min(best.plain_ns, plain);
    best.sink_ns = r == 0 ? with : std::min(best.sink_ns, with);
  }
  return best;
}

/// Live-scrape bar: an ObservabilityServer serves /metrics while the
/// 4-queue engine runs, a scraper thread hammers it, and two numbers come
/// out — the p50/p99 scrape latency under load, and the per-packet host
/// overhead of being observed (sink + live scraping vs the bare engine;
/// host_ns is thread-CPU time, so wall-clock contention with the scraper
/// on a small machine does not pollute the comparison).
void scrape_latency_section(Setup& setup, double ns_plain) {
  constexpr std::size_t kRuns = 6;
  telemetry::Sink sink({.queues = 4});
  const engine::EngineConfig config = rt::EngineConfig{}
                                          .with_queues(4)
                                          .with_telemetry(&sink)
                                          .with_server("127.0.0.1:0");
  engine::MultiQueueEngine eng(setup.result, *setup.compute, config);
  const std::uint16_t port = eng.server()->port();

  std::atomic<bool> running{true};
  double scraped_ns = 0.0;
  std::thread driver([&] {
    for (std::size_t r = 0; r < kRuns; ++r) {
      const double ns = eng.run(setup.trace).total.ns_per_packet();
      scraped_ns = r == 0 ? ns : std::min(scraped_ns, ns);
    }
    running.store(false, std::memory_order_release);
  });

  std::vector<double> latencies_us;
  std::uint64_t failed = 0;
  const auto scrape_once = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    try {
      const http::Response got = http::http_get("127.0.0.1", port, "/metrics");
      const auto t1 = std::chrono::steady_clock::now();
      if (got.status == 200 && !got.body.empty()) {
        latencies_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      } else {
        ++failed;
      }
    } catch (const Error&) {
      ++failed;
    }
  };
  while (running.load(std::memory_order_acquire)) {
    scrape_once();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  driver.join();
  scrape_once();  // at least one guaranteed sample, post-load

  std::sort(latencies_us.begin(), latencies_us.end());
  const auto quantile = [&](double q) {
    if (latencies_us.empty()) {
      return 0.0;
    }
    const std::size_t index = std::min(
        latencies_us.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies_us.size())));
    return latencies_us[index];
  };
  const double p50 = quantile(0.50);
  const double p99 = quantile(0.99);
  const double overhead_percent =
      ns_plain > 0.0 ? 100.0 * (scraped_ns - ns_plain) / ns_plain : 0.0;

  std::printf("\nlive scrape at 4 queues: %zu scrapes (%llu failed), /metrics "
              "p50 %.0f us, p99 %.0f us;\nobserved-engine overhead %.2f%% "
              "ns/pkt vs bare (bar < 3%%)\n",
              latencies_us.size(), static_cast<unsigned long long>(failed),
              p50, p99, overhead_percent);

  std::ofstream json("BENCH_scrape_latency.json");
  json << "{\"bench\":\"scrape_latency\",\"queues\":4,\"runs\":" << kRuns
       << ",\"scrapes\":" << latencies_us.size() << ",\"failed\":" << failed
       << ",\"p50_us\":" << p50 << ",\"p99_us\":" << p99
       << ",\"ns_per_packet_plain\":" << ns_plain
       << ",\"ns_per_packet_observed\":" << scraped_ns
       << ",\"overhead_percent\":" << overhead_percent << "}\n";
  std::printf("wrote BENCH_scrape_latency.json\n");
}

/// Health-plane tax: per-packet host cost of the full monitor (background
/// sampler on a fast tick + two live SLO rules) vs the same sink-attached
/// engine with the monitor off.  host_ns is per-thread CPU time of the
/// datapath workers, so what this measures is the cost the sampler imposes
/// *on the datapath* — seqlock publication traffic, shared-line contention —
/// not the sampler thread's own cycles.  Interleaved min-of-reps, same
/// methodology as measure_overhead().  Bar: < 3%.
void health_overhead_section(Setup& setup) {
  constexpr std::size_t kReps = 10;
  const char* const kRules =
      "drop_share: rate(opendesc_rx_quarantined_total[1s]) / "
      "rate(opendesc_rx_packets_total[1s]) > 0.5\n"
      "goodput_floor: rate(opendesc_rx_packets_total[1s]) < 1\n";
  telemetry::Sink sink_off({.queues = 4});
  telemetry::Sink sink_on({.queues = 4});
  engine::MultiQueueEngine off(
      setup.result, *setup.compute,
      rt::EngineConfig{}.with_queues(4).with_telemetry(&sink_off));
  engine::MultiQueueEngine on(setup.result, *setup.compute,
                              rt::EngineConfig{}
                                  .with_queues(4)
                                  .with_telemetry(&sink_on)
                                  .with_monitor(true)
                                  .with_sample_interval(5)
                                  .with_health_rules(kRules));
  (void)off.run(setup.trace);  // warm-up, discarded
  (void)on.run(setup.trace);
  double ns_off = 0.0;
  double ns_on = 0.0;
  for (std::size_t r = 0; r < kReps; ++r) {
    const double a = off.run(setup.trace).total.ns_per_packet();
    const double b = on.run(setup.trace).total.ns_per_packet();
    ns_off = r == 0 ? a : std::min(ns_off, a);
    ns_on = r == 0 ? b : std::min(ns_on, b);
  }
  const double overhead_percent =
      ns_off > 0.0 ? 100.0 * (ns_on - ns_off) / ns_off : 0.0;
  std::printf("\nhealth-plane tax at 4 queues: %.1f ns/pkt sampler off, %.1f "
              "with 5ms sampler + %zu rules (%.2f%% overhead; bar < 3%%), "
              "%llu sampler ticks, %llu rule evaluations\n",
              ns_off, ns_on,
              on.health() != nullptr ? on.health()->rules() : std::size_t{0},
              overhead_percent,
              static_cast<unsigned long long>(on.monitor_ticks()),
              static_cast<unsigned long long>(
                  on.health() != nullptr ? on.health()->evaluations() : 0));

  std::ofstream json("BENCH_health_overhead.json");
  json << "{\"bench\":\"health_overhead\",\"queues\":4,\"reps\":" << kReps
       << ",\"sample_interval_ms\":5,\"rules\":"
       << (on.health() != nullptr ? on.health()->rules() : 0)
       << ",\"sampler_ticks\":" << on.monitor_ticks()
       << ",\"rule_evaluations\":"
       << (on.health() != nullptr ? on.health()->evaluations() : 0)
       << ",\"ns_per_packet_monitor_off\":" << ns_off
       << ",\"ns_per_packet_monitor_on\":" << ns_on
       << ",\"overhead_percent\":" << overhead_percent
       << ",\"overhead_bar_percent\":3}\n";
  std::printf("wrote BENCH_health_overhead.json\n");
}

void print_table() {
  constexpr std::size_t kPackets = 40000;
  Setup setup(kPackets);
  std::printf("=== Engine scaling: %zu packets, intent {rss, l4_csum_ok, "
              "pkt_len} on mlx5 ===\n", kPackets);
  std::printf("%-7s %14s %14s %10s %14s\n", "queues", "pps(critical)",
              "ns/pkt(max q)", "speedup", "pps(wall)");
  double base_pps = 0.0;
  double speedup_at_4 = 0.0;
  std::ostringstream rows;
  for (const std::size_t queues : {1u, 2u, 4u, 8u}) {
    const engine::EngineReport report = run_queues(setup, queues);
    const double pps = report.packets_per_second();
    if (queues == 1) {
      base_pps = pps;
    }
    const double speedup = base_pps > 0.0 ? pps / base_pps : 0.0;
    if (queues == 4) {
      speedup_at_4 = speedup;
    }
    std::printf("%-7zu %12.0f/s %12.1fns %9.2fx %12.0f/s\n", queues, pps,
                report.critical_path_ns() /
                    static_cast<double>(report.total.packets) *
                    static_cast<double>(queues),
                speedup, report.wall_packets_per_second());
    if (queues != 1) {
      rows << ",";
    }
    rows << "{\"queues\":" << queues << ",\"pps_critical\":" << pps
         << ",\"pps_wall\":" << report.wall_packets_per_second()
         << ",\"speedup\":" << speedup << ",\"per_queue\":[";
    for (std::size_t q = 0; q < queues; ++q) {
      const rt::RxLoopStats& shard = report.per_queue[q];
      rows << (q == 0 ? "" : ",") << "{\"queue\":" << q
           << ",\"offered\":" << report.offered[q]
           << ",\"delivered\":" << shard.packets
           << ",\"hw_consumed\":" << shard.hw_consumed
           << ",\"softnic_recovered\":" << shard.softnic_recovered
           << ",\"host_ns\":" << shard.host_ns << "}";
    }
    rows << "]}";
  }

  // Telemetry tax at 4 queues: per-packet host cost with a sink attached
  // (trace rings + latency shards hot) vs the null-sink path.
  constexpr std::size_t kOverheadReps = 15;
  telemetry::Sink sink({.queues = 4});
  const OverheadSample tax = measure_overhead(setup, 4, kOverheadReps, sink);
  const double ns_plain = tax.plain_ns;
  const double ns_sink = tax.sink_ns;
  const double overhead_percent =
      ns_plain > 0.0 ? 100.0 * (ns_sink - ns_plain) / ns_plain : 0.0;
  std::printf("\ntelemetry tax at 4 queues: %.1f ns/pkt without sink, %.1f "
              "with (%.2f%% overhead; bar < 3%%)\n",
              ns_plain, ns_sink, overhead_percent);

  std::ofstream json("BENCH_engine_scaling.json");
  json << "{\"bench\":\"engine_scaling\",\"nic\":\"mlx5\",\"packets\":"
       << kPackets << ",\"rows\":[" << rows.str()
       << "],\"telemetry\":{\"ns_per_packet_plain\":" << ns_plain
       << ",\"ns_per_packet_sink\":" << ns_sink
       << ",\"overhead_percent\":" << overhead_percent << "}}\n";
  std::printf("wrote BENCH_engine_scaling.json\n");

  scrape_latency_section(setup, ns_plain);
  health_overhead_section(setup);

  std::printf("\nShape check: critical-path throughput scales with queue "
              "count (target >= 2.5x at\n4 queues; achieved %.2fx) because "
              "RSS spreads the flows and each shard's hardened\nloop runs "
              "unchanged on its slice.  Wall-clock pps is bounded by this "
              "machine's\ncores and is not the modelled metric.\n\n",
              speedup_at_4);
}

void BM_EngineScaling(benchmark::State& state) {
  const auto queues = static_cast<std::size_t>(state.range(0));
  static Setup setup(20000);
  double pps = 0.0;
  double wall_pps = 0.0;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    const engine::EngineReport report = run_queues(setup, queues);
    pps = report.packets_per_second();
    wall_pps = report.wall_packets_per_second();
    packets = report.total.packets;
    benchmark::DoNotOptimize(report.total.value_checksum);
  }
  state.counters["pps_critical"] = pps;
  state.counters["pps_wall"] = wall_pps;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_EngineScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
