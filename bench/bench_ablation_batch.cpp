// Ablation G (§5, "SIMD and architecture-dependent optimization"): batched
// accessor reads.
//
// DPDK drivers hand-write SSE/NEON variants that process 4 descriptors at a
// time.  The paper proposes generating such accessors instead.  This
// ablation compares (a) scalar per-record reads, (b) software 4-wide
// batched reads with hoisted geometry (what generated batch accessors
// compile to), and (c) the full facade path — quantifying what a SIMD
// backend could win and that the layout machinery adds no per-record
// overhead beyond the loads.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/compiler.hpp"
#include "nic/model.hpp"
#include "runtime/accessor.hpp"

namespace {

using namespace opendesc;
using softnic::SemanticId;

constexpr const char* kIntent = R"(header i_t {
    @semantic("rss")     bit<32> h;
    @semantic("pkt_len") bit<16> l;
})";

struct Fixture {
  core::CompileResult result;
  std::vector<std::uint8_t> records;  ///< contiguous array of records
  std::size_t record_size = 0;
  std::size_t count = 0;

  Fixture() {
    softnic::SemanticRegistry registry;
    softnic::CostTable costs(registry);
    core::Compiler compiler(registry, costs);
    result = compiler.compile(nic::NicCatalog::by_name("qdma").p4_source(),
                              kIntent, {});
    record_size = result.layout.total_bytes();
    count = 4096;
    records.resize(record_size * count);
    std::vector<std::uint64_t> values(result.layout.slices().size());
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t v = 0; v < values.size(); ++v) {
        values[v] = i * 1315423911u + v;
      }
      result.layout.serialize(
          std::span<std::uint8_t>(records).subspan(i * record_size, record_size),
          values);
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// (a) Scalar: one accessor call per record.
void BM_ScalarReads(benchmark::State& state) {
  Fixture& f = fixture();
  softnic::SemanticRegistry registry;
  const rt::OffsetAccessor accessor(f.result.layout, registry);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < f.count; ++i) {
      const std::uint8_t* rec = f.records.data() + i * f.record_size;
      sink ^= accessor.read(rec, SemanticId::rss_hash);
      sink ^= accessor.read(rec, SemanticId::pkt_len);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.count));
}
BENCHMARK(BM_ScalarReads);

/// (b) Batched 4-wide: geometry resolved once, then 4 records per step with
/// direct unchecked loads — the scalar equivalent of an SSE gather, and the
/// shape a generated SIMD accessor would take.
void BM_BatchedReads(benchmark::State& state) {
  Fixture& f = fixture();
  const core::FieldSlice* rss = f.result.layout.find(SemanticId::rss_hash);
  const core::FieldSlice* len = f.result.layout.find(SemanticId::pkt_len);
  const Endian endian = f.result.layout.endian();
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i + 4 <= f.count; i += 4) {
      const std::uint8_t* r0 = f.records.data() + (i + 0) * f.record_size;
      const std::uint8_t* r1 = f.records.data() + (i + 1) * f.record_size;
      const std::uint8_t* r2 = f.records.data() + (i + 2) * f.record_size;
      const std::uint8_t* r3 = f.records.data() + (i + 3) * f.record_size;
      sink ^= read_bits_unchecked(r0, rss->byte_offset(), rss->bit_offset(),
                                  rss->bit_width, endian);
      sink ^= read_bits_unchecked(r1, rss->byte_offset(), rss->bit_offset(),
                                  rss->bit_width, endian);
      sink ^= read_bits_unchecked(r2, rss->byte_offset(), rss->bit_offset(),
                                  rss->bit_width, endian);
      sink ^= read_bits_unchecked(r3, rss->byte_offset(), rss->bit_offset(),
                                  rss->bit_width, endian);
      sink ^= read_bits_unchecked(r0, len->byte_offset(), len->bit_offset(),
                                  len->bit_width, endian);
      sink ^= read_bits_unchecked(r1, len->byte_offset(), len->bit_offset(),
                                  len->bit_width, endian);
      sink ^= read_bits_unchecked(r2, len->byte_offset(), len->bit_offset(),
                                  len->bit_width, endian);
      sink ^= read_bits_unchecked(r3, len->byte_offset(), len->bit_offset(),
                                  len->bit_width, endian);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.count));
}
BENCHMARK(BM_BatchedReads);

/// (c) Checked reads (XDP-style bounds check per access).
void BM_CheckedReads(benchmark::State& state) {
  Fixture& f = fixture();
  softnic::SemanticRegistry registry;
  const rt::OffsetAccessor accessor(f.result.layout, registry);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < f.count; ++i) {
      const std::span<const std::uint8_t> rec(
          f.records.data() + i * f.record_size, f.record_size);
      sink ^= accessor.read_provided(rec, SemanticId::rss_hash).value();
      sink ^= accessor.read_provided(rec, SemanticId::pkt_len).value();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.count));
}
BENCHMARK(BM_CheckedReads);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation G: scalar vs 4-wide batched vs bounds-checked "
              "accessor reads (qdma 16B) ===\n");
  std::printf("items_per_second below = records consumed per second "
              "(2 fields each).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
