// Planned-downtime comparison: evolving the completion-record contract on a
// running engine (epoch hot-swap) vs the static-descriptor playbook (stop
// the datapath, recompile, rebuild the engine, restart).
//
// Both arms process the same trace and end on the same target layout; the
// difference is what happens in the middle:
//
//   - hot-swap arm: one engine, one run() — a SwapRequest lands at the
//     halfway mark and the dispatch thread cuts over under fire.  Packets
//     keep flowing; the arm's "downtime" is the swap's in-band overhead,
//     measured as (swap-run wall - no-swap baseline wall), median of
//     repeats, clamped at 0.
//   - restart arm: run the first half, tear the engine down, recompile the
//     target intent from source, build a new engine, run the second half.
//     The gap between the halves — teardown + recompile + rebuild — is the
//     planned downtime during which the datapath delivers nothing.
//
// Bars: the hot-swap commits with zero loss (100% goodput, exact packet
// count), and the restart gap costs at least `kRatioBar` times the
// hot-swap overhead.  Results land in BENCH_swap_downtime.json.
// OPENDESC_BENCH_SMOKE=1 shrinks the trace; the bars are scale-free.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <vector>

#include "core/compiler.hpp"
#include "engine/engine.hpp"
#include "net/workload.hpp"
#include "nic/model.hpp"
#include "runtime/epoch.hpp"

namespace {

using namespace opendesc;
using Clock = std::chrono::steady_clock;

constexpr const char* kBaseIntent = R"(header base_t {
  @semantic("rss")     bit<32> h;
  @semantic("vlan")    bit<16> v;
  @semantic("pkt_len") bit<16> l;
})";

constexpr const char* kTargetIntent = R"(header evolved_t {
  @semantic("timestamp") bit<64> t;
  @semantic("rss")       bit<32> h;
  @semantic("pkt_len")   bit<16> l;
})";

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Fixture {
  softnic::SemanticRegistry registry;
  softnic::CostTable costs{registry};
  core::Compiler compiler{registry, costs};
  softnic::ComputeEngine compute{registry};
  std::string nic = nic::NicCatalog::by_name("ice").p4_source();
  core::CompileResult base = compiler.compile(nic, kBaseIntent, {});
  std::shared_ptr<const core::CompileResult> target =
      std::make_shared<const core::CompileResult>(
          compiler.compile(nic, kTargetIntent, {}));

  [[nodiscard]] rt::EngineConfig engine_config() const {
    rt::EngineConfig config;
    config.queues = 4;
    config.guard = true;
    return config;
  }

  [[nodiscard]] std::vector<net::Packet> trace(std::size_t n) const {
    net::WorkloadConfig config;
    config.seed = 42;
    config.vlan_probability = 0.4;
    config.udp_fraction = 0.5;
    net::WorkloadGenerator gen(config);
    return gen.batch(n);
  }
};

struct ArmResult {
  double wall_s = 0.0;
  double downtime_s = 0.0;  ///< service gap (restart) / in-band overhead (hot)
  std::uint64_t delivered = 0;
  std::uint64_t committed_swaps = 0;
  double goodput = 0.0;
};

/// One engine, one run, a swap landing mid-trace.  Wall time covers the
/// whole run; the committed-swap count and goodput come from the report.
ArmResult run_hot(const Fixture& fx, const std::vector<net::Packet>& trace,
                  bool with_swap) {
  ArmResult arm;
  rt::MultiQueueEngine engine(fx.base, fx.compute, fx.engine_config());
  if (with_swap) {
    rt::SwapRequest request;
    request.result = fx.target;
    request.at_offered = trace.size() / 2;
    engine.request_swap(request);
  }
  const auto t0 = Clock::now();
  const engine::EngineReport report = engine.run(trace);
  arm.wall_s = seconds_since(t0);
  arm.delivered = report.total.packets;
  arm.goodput = report.total.delivery_ratio(report.offered_total);
  arm.committed_swaps = engine.epochs().swaps(rt::SwapOutcome::committed);
  return arm;
}

/// The static-descriptor playbook: drain and destroy the engine, recompile
/// the target from source, build a fresh engine, resume.  The downtime is
/// everything between the halves.
ArmResult run_restart(Fixture& fx, const std::vector<net::Packet>& trace) {
  ArmResult arm;
  const std::size_t half = trace.size() / 2;
  const std::vector<net::Packet> first(trace.begin(), trace.begin() + half);
  const std::vector<net::Packet> second(trace.begin() + half, trace.end());

  const auto t0 = Clock::now();
  engine::EngineReport before;
  {
    rt::MultiQueueEngine engine(fx.base, fx.compute, fx.engine_config());
    before = engine.run(first);
  }  // teardown is part of the gap
  const auto gap_start = Clock::now();
  const core::CompileResult recompiled =
      fx.compiler.compile(fx.nic, kTargetIntent, {});
  rt::MultiQueueEngine engine(recompiled, fx.compute, fx.engine_config());
  arm.downtime_s = seconds_since(gap_start);
  const engine::EngineReport after = engine.run(second);
  arm.wall_s = seconds_since(t0);
  arm.delivered = before.total.packets + after.total.packets;
  arm.goodput = (before.total.delivery_ratio(before.offered_total) +
                 after.total.delivery_ratio(after.offered_total)) /
                2.0;
  return arm;
}

}  // namespace

int main() {
  const char* smoke_env = std::getenv("OPENDESC_BENCH_SMOKE");
  const bool smoke =
      smoke_env != nullptr && smoke_env[0] != '\0' && smoke_env[0] != '0';
  const std::size_t packets = smoke ? 8000 : 48000;
  const std::size_t repeats = smoke ? 3 : 7;
  constexpr double kRatioBar = 1.5;

  Fixture fx;
  const std::vector<net::Packet> trace = fx.trace(packets);

  // Warm-up both arms once (thread pools, allocator, code paths), then
  // repeat and take medians — the quantities are milliseconds-scale and
  // scheduler-noisy.
  (void)run_hot(fx, trace, /*with_swap=*/false);
  std::vector<double> baseline_walls, hot_walls, restart_gaps, restart_walls;
  ArmResult hot_last, restart_last;
  for (std::size_t i = 0; i < repeats; ++i) {
    baseline_walls.push_back(run_hot(fx, trace, /*with_swap=*/false).wall_s);
    hot_last = run_hot(fx, trace, /*with_swap=*/true);
    hot_walls.push_back(hot_last.wall_s);
    restart_last = run_restart(fx, trace);
    restart_gaps.push_back(restart_last.downtime_s);
    restart_walls.push_back(restart_last.wall_s);
  }
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double baseline_wall = median(baseline_walls);
  const double hot_wall = median(hot_walls);
  const double hot_overhead = std::max(0.0, hot_wall - baseline_wall);
  const double restart_gap = median(restart_gaps);
  const double restart_wall = median(restart_walls);
  // Timer floor so a sub-resolution hot overhead yields a finite ratio.
  const double ratio = restart_gap / std::max(hot_overhead, 1e-5);

  const bool hot_zero_loss = hot_last.committed_swaps == 1 &&
                             hot_last.delivered == packets &&
                             hot_last.goodput == 1.0;
  const bool ratio_pass = ratio >= kRatioBar;

  std::printf("=== Planned downtime: hot-swap vs stop-recompile-restart "
              "(%zu packets, %zu repeats, %s) ===\n",
              packets, repeats, smoke ? "smoke" : "full");
  std::printf("  baseline (no swap):     %8.2f ms wall\n",
              baseline_wall * 1e3);
  std::printf("  hot-swap:               %8.2f ms wall, %.3f ms in-band "
              "overhead, %llu/%zu delivered, goodput %.1f%%\n",
              hot_wall * 1e3, hot_overhead * 1e3,
              static_cast<unsigned long long>(hot_last.delivered), packets,
              100.0 * hot_last.goodput);
  std::printf("  stop-recompile-restart: %8.2f ms wall, %.3f ms service "
              "gap (teardown + recompile + rebuild)\n",
              restart_wall * 1e3, restart_gap * 1e3);
  std::printf("  bar hot_swap_zero_loss      %s\n",
              hot_zero_loss ? "[pass]" : "[FAIL]");
  std::printf("  bar downtime_ratio          %10.1f >= %10.1f  [%s]\n", ratio,
              kRatioBar, ratio_pass ? "pass" : "FAIL");

  std::ofstream json("BENCH_swap_downtime.json");
  json << "{\"bench\":\"swap_downtime\",\"smoke\":" << (smoke ? "true" : "false")
       << ",\"packets\":" << packets << ",\"repeats\":" << repeats
       << ",\"baseline_wall_s\":" << baseline_wall
       << ",\"hot_wall_s\":" << hot_wall
       << ",\"hot_overhead_s\":" << hot_overhead
       << ",\"hot_delivered\":" << hot_last.delivered
       << ",\"hot_goodput\":" << hot_last.goodput
       << ",\"hot_committed_swaps\":" << hot_last.committed_swaps
       << ",\"restart_wall_s\":" << restart_wall
       << ",\"restart_gap_s\":" << restart_gap
       << ",\"downtime_ratio\":" << ratio
       << ",\"bars\":[{\"name\":\"hot_swap_zero_loss\",\"pass\":"
       << (hot_zero_loss ? "true" : "false")
       << "},{\"name\":\"downtime_ratio\",\"value\":" << ratio
       << ",\"bar\":" << kRatioBar << ",\"cmp\":\">=\",\"pass\":"
       << (ratio_pass ? "true" : "false") << "}],\"all_pass\":"
       << (hot_zero_loss && ratio_pass ? "true" : "false") << "}\n";
  std::printf("wrote BENCH_swap_downtime.json (%s)\n",
              hot_zero_loss && ratio_pass ? "all bars pass" : "BAR FAILURES");
  return hot_zero_loss && ratio_pass ? 0 : 1;
}
