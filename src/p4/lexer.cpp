#include "p4/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "common/error.hpp"

namespace opendesc::p4 {

namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> kTable = {
      {"header", TokenKind::kw_header},
      {"struct", TokenKind::kw_struct},
      {"typedef", TokenKind::kw_typedef},
      {"const", TokenKind::kw_const},
      {"parser", TokenKind::kw_parser},
      {"control", TokenKind::kw_control},
      {"state", TokenKind::kw_state},
      {"transition", TokenKind::kw_transition},
      {"select", TokenKind::kw_select},
      {"apply", TokenKind::kw_apply},
      {"if", TokenKind::kw_if},
      {"else", TokenKind::kw_else},
      {"true", TokenKind::kw_true},
      {"false", TokenKind::kw_false},
      {"default", TokenKind::kw_default},
      {"in", TokenKind::kw_in},
      {"out", TokenKind::kw_out},
      {"inout", TokenKind::kw_inout},
      {"bit", TokenKind::kw_bit},
      {"bool", TokenKind::kw_bool},
      {"return", TokenKind::kw_return},
      {"register", TokenKind::kw_register},
      {"extern", TokenKind::kw_extern},
  };
  return kTable;
}

class Cursor {
 public:
  explicit Cursor(std::string_view source) : src_(source) {}

  [[nodiscard]] bool eof() const noexcept { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++loc_.line;
      loc_.column = 1;
    } else {
      ++loc_.column;
    }
    return c;
  }
  bool match(char expected) noexcept {
    if (eof() || peek() != expected) {
      return false;
    }
    advance();
    return true;
  }
  [[nodiscard]] SourceLocation location() const noexcept { return loc_; }
  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const noexcept {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  SourceLocation loc_;
};

[[noreturn]] void fail(const SourceLocation& loc, const std::string& message) {
  throw Error(ErrorKind::lex, to_string(loc) + ": " + message);
}

bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses digits in the given base from `cur`; at least one digit required.
std::uint64_t scan_digits(Cursor& cur, unsigned base, const SourceLocation& at) {
  std::uint64_t value = 0;
  bool any = false;
  for (;;) {
    const char c = cur.peek();
    unsigned digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<unsigned>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<unsigned>(c - 'A' + 10);
    } else if (c == '_') {  // P4 allows underscores in literals
      cur.advance();
      continue;
    } else {
      break;
    }
    if (digit >= base) {
      break;
    }
    cur.advance();
    value = value * base + digit;
    any = true;
  }
  if (!any) {
    fail(at, "expected at least one digit");
  }
  return value;
}

/// Scans an unsigned number with optional 0x/0b/0o prefix.
std::uint64_t scan_number(Cursor& cur, const SourceLocation& at) {
  if (cur.peek() == '0' && (cur.peek(1) == 'x' || cur.peek(1) == 'X')) {
    cur.advance();
    cur.advance();
    return scan_digits(cur, 16, at);
  }
  if (cur.peek() == '0' && (cur.peek(1) == 'b' || cur.peek(1) == 'B')) {
    cur.advance();
    cur.advance();
    return scan_digits(cur, 2, at);
  }
  if (cur.peek() == '0' && (cur.peek(1) == 'o' || cur.peek(1) == 'O')) {
    cur.advance();
    cur.advance();
    return scan_digits(cur, 8, at);
  }
  return scan_digits(cur, 10, at);
}

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  const auto push = [&](TokenKind kind, const SourceLocation& at,
                        std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.location = at;
    tokens.push_back(std::move(t));
  };

  while (!cur.eof()) {
    const SourceLocation at = cur.location();
    const char c = cur.peek();

    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }

    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.eof() && cur.peek() != '\n') {
        cur.advance();
      }
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      bool closed = false;
      while (!cur.eof()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
          cur.advance();
          cur.advance();
          closed = true;
          break;
        }
        cur.advance();
      }
      if (!closed) {
        fail(at, "unterminated block comment");
      }
      continue;
    }

    // Identifiers / keywords / lone underscore.
    if (is_ident_start(c)) {
      const std::size_t start = cur.offset();
      while (!cur.eof() && is_ident_char(cur.peek())) {
        cur.advance();
      }
      const std::string_view word = cur.slice(start);
      if (word == "_") {
        push(TokenKind::underscore, at);
        continue;
      }
      if (const auto it = keyword_table().find(word); it != keyword_table().end()) {
        push(it->second, at, std::string(word));
        continue;
      }
      push(TokenKind::identifier, at, std::string(word));
      continue;
    }

    // Numbers, including P4 width literals `8w0xFF`.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::uint64_t first = scan_number(cur, at);
      Token t;
      t.kind = TokenKind::int_literal;
      t.location = at;
      if (cur.peek() == 'w') {
        cur.advance();
        if (first == 0 || first > 64) {
          fail(at, "width literal prefix must be in [1, 64]");
        }
        t.int_width = static_cast<std::size_t>(first);
        t.int_value = scan_number(cur, cur.location());
        if (*t.int_width < 64 &&
            t.int_value >= (std::uint64_t{1} << *t.int_width)) {
          fail(at, "literal value does not fit in declared width");
        }
      } else if (cur.peek() == 's') {
        fail(at, "signed width literals are not supported by the OpenDesc subset");
      } else {
        t.int_value = first;
      }
      tokens.push_back(std::move(t));
      continue;
    }

    // String literals (annotation arguments).
    if (c == '"') {
      cur.advance();
      std::string text;
      for (;;) {
        if (cur.eof()) {
          fail(at, "unterminated string literal");
        }
        const char ch = cur.advance();
        if (ch == '"') {
          break;
        }
        if (ch == '\\') {
          if (cur.eof()) {
            fail(at, "unterminated escape sequence");
          }
          const char esc = cur.advance();
          switch (esc) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case '"': text.push_back('"'); break;
            case '\\': text.push_back('\\'); break;
            default: fail(at, std::string("unknown escape '\\") + esc + "'");
          }
          continue;
        }
        text.push_back(ch);
      }
      push(TokenKind::string_literal, at, std::move(text));
      continue;
    }

    // Operators and punctuation.
    cur.advance();
    switch (c) {
      case '{': push(TokenKind::l_brace, at); break;
      case '}': push(TokenKind::r_brace, at); break;
      case '(': push(TokenKind::l_paren, at); break;
      case ')': push(TokenKind::r_paren, at); break;
      case '[': push(TokenKind::l_bracket, at); break;
      case ']': push(TokenKind::r_bracket, at); break;
      case ';': push(TokenKind::semicolon, at); break;
      case ':': push(TokenKind::colon, at); break;
      case ',': push(TokenKind::comma, at); break;
      case '.': push(TokenKind::dot, at); break;
      case '@': push(TokenKind::at, at); break;
      case '+': push(TokenKind::plus, at); break;
      case '-': push(TokenKind::minus, at); break;
      case '*': push(TokenKind::star, at); break;
      case '/': push(TokenKind::slash, at); break;
      case '%': push(TokenKind::percent, at); break;
      case '^': push(TokenKind::caret, at); break;
      case '~': push(TokenKind::tilde, at); break;
      case '&':
        push(cur.match('&') ? TokenKind::and_and : TokenKind::amp, at);
        break;
      case '|':
        push(cur.match('|') ? TokenKind::or_or : TokenKind::pipe, at);
        break;
      case '=':
        push(cur.match('=') ? TokenKind::eq : TokenKind::assign, at);
        break;
      case '!':
        push(cur.match('=') ? TokenKind::ne : TokenKind::bang, at);
        break;
      case '<':
        if (cur.match('=')) {
          push(TokenKind::le, at);
        } else if (cur.match('<')) {
          push(TokenKind::shl, at);
        } else {
          push(TokenKind::l_angle, at);
        }
        break;
      case '>':
        if (cur.match('=')) {
          push(TokenKind::ge, at);
        } else if (cur.match('>')) {
          push(TokenKind::shr, at);
        } else {
          push(TokenKind::r_angle, at);
        }
        break;
      default:
        fail(at, std::string("unexpected character '") + c + "'");
    }
  }

  Token eof_token;
  eof_token.kind = TokenKind::end_of_file;
  eof_token.location = cur.location();
  tokens.push_back(std::move(eof_token));
  return tokens;
}

}  // namespace opendesc::p4
