#include "p4/eval.hpp"

#include "common/error.hpp"

namespace opendesc::p4 {

namespace {

std::uint64_t apply_binary(BinaryOp op, std::uint64_t a, std::uint64_t b,
                           const SourceLocation& at) {
  switch (op) {
    case BinaryOp::add: return a + b;
    case BinaryOp::sub: return a - b;
    case BinaryOp::mul: return a * b;
    case BinaryOp::div:
      if (b == 0) {
        throw Error(ErrorKind::type, to_string(at) + ": division by zero");
      }
      return a / b;
    case BinaryOp::mod:
      if (b == 0) {
        throw Error(ErrorKind::type, to_string(at) + ": modulo by zero");
      }
      return a % b;
    case BinaryOp::bit_and: return a & b;
    case BinaryOp::bit_or: return a | b;
    case BinaryOp::bit_xor: return a ^ b;
    case BinaryOp::shl: return b >= 64 ? 0 : a << b;
    case BinaryOp::shr: return b >= 64 ? 0 : a >> b;
    case BinaryOp::eq: return a == b ? 1 : 0;
    case BinaryOp::ne: return a != b ? 1 : 0;
    case BinaryOp::lt: return a < b ? 1 : 0;
    case BinaryOp::le: return a <= b ? 1 : 0;
    case BinaryOp::gt: return a > b ? 1 : 0;
    case BinaryOp::ge: return a >= b ? 1 : 0;
    case BinaryOp::logical_and: return (a != 0 && b != 0) ? 1 : 0;
    case BinaryOp::logical_or: return (a != 0 || b != 0) ? 1 : 0;
  }
  throw Error(ErrorKind::internal, "unhandled binary operator");
}

}  // namespace

std::optional<std::uint64_t> try_evaluate(const Expr& expr, const ConstEnv& env) {
  switch (expr.kind()) {
    case ExprKind::int_literal:
      return static_cast<const IntLiteral&>(expr).value();
    case ExprKind::bool_literal:
      return static_cast<const BoolLiteral&>(expr).value() ? 1 : 0;
    case ExprKind::string_literal:
      return std::nullopt;
    case ExprKind::identifier:
    case ExprKind::member: {
      const std::string path = dotted_path(expr);
      if (const auto it = env.find(path); it != env.end()) {
        return it->second;
      }
      return std::nullopt;
    }
    case ExprKind::unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      const auto operand = try_evaluate(unary.operand(), env);
      if (!operand) {
        return std::nullopt;
      }
      switch (unary.op()) {
        case UnaryOp::logical_not: return *operand == 0 ? 1 : 0;
        case UnaryOp::bit_not: return ~*operand;
        case UnaryOp::negate: return static_cast<std::uint64_t>(0) - *operand;
      }
      return std::nullopt;
    }
    case ExprKind::binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      const auto lhs = try_evaluate(binary.lhs(), env);
      const auto rhs = try_evaluate(binary.rhs(), env);
      // Short-circuit forms that are decidable from one side.
      if (binary.op() == BinaryOp::logical_and) {
        if ((lhs && *lhs == 0) || (rhs && *rhs == 0)) return 0;
      }
      if (binary.op() == BinaryOp::logical_or) {
        if ((lhs && *lhs != 0) || (rhs && *rhs != 0)) return 1;
      }
      if (!lhs || !rhs) {
        return std::nullopt;
      }
      return apply_binary(binary.op(), *lhs, *rhs, binary.location());
    }
    case ExprKind::call:
      return std::nullopt;
  }
  return std::nullopt;
}

std::uint64_t evaluate(const Expr& expr, const ConstEnv& env) {
  const auto value = try_evaluate(expr, env);
  if (!value) {
    throw Error(ErrorKind::type, to_string(expr.location()) +
                                     ": expression is not a compile-time constant");
  }
  return *value;
}

// ---------------------------------------------------------------------------
// ConstraintSet
// ---------------------------------------------------------------------------

bool ConstraintSet::add_atom(const std::string& path, Cmp op, std::uint64_t value,
                             bool from_predicate) {
  VarDomain& d = domains_[path];
  d.constrained = d.constrained || from_predicate;
  switch (op) {
    case Cmp::eq:
      if (d.fixed && *d.fixed != value) return feasible_ = false;
      if (value < d.lo || value > d.hi) return feasible_ = false;
      if (d.forbidden.contains(value)) return feasible_ = false;
      d.fixed = value;
      break;
    case Cmp::ne:
      if (d.fixed && *d.fixed == value) return feasible_ = false;
      d.forbidden.insert(value);
      if (d.lo == d.hi && d.lo == value) return feasible_ = false;
      break;
    case Cmp::lt:
      if (value == 0) return feasible_ = false;
      d.hi = std::min(d.hi, value - 1);
      break;
    case Cmp::le:
      d.hi = std::min(d.hi, value);
      break;
    case Cmp::gt:
      if (value == ~std::uint64_t{0}) return feasible_ = false;
      d.lo = std::max(d.lo, value + 1);
      break;
    case Cmp::ge:
      d.lo = std::max(d.lo, value);
      break;
  }
  if (d.lo > d.hi) return feasible_ = false;
  if (d.fixed && (*d.fixed < d.lo || *d.fixed > d.hi)) return feasible_ = false;
  // A fully forbidden singleton interval is infeasible.
  if (d.lo == d.hi && d.forbidden.contains(d.lo)) return feasible_ = false;
  return true;
}

bool ConstraintSet::assume_comparison(const BinaryExpr& cmp, bool taken) {
  static const auto negate = [](Cmp op) {
    switch (op) {
      case Cmp::eq: return Cmp::ne;
      case Cmp::ne: return Cmp::eq;
      case Cmp::lt: return Cmp::ge;
      case Cmp::le: return Cmp::gt;
      case Cmp::gt: return Cmp::le;
      case Cmp::ge: return Cmp::lt;
    }
    return Cmp::eq;
  };
  static const auto mirror = [](Cmp op) {  // a OP b  ==  b MIRROR(OP) a
    switch (op) {
      case Cmp::lt: return Cmp::gt;
      case Cmp::le: return Cmp::ge;
      case Cmp::gt: return Cmp::lt;
      case Cmp::ge: return Cmp::le;
      default: return op;
    }
  };

  Cmp op;
  switch (cmp.op()) {
    case BinaryOp::eq: op = Cmp::eq; break;
    case BinaryOp::ne: op = Cmp::ne; break;
    case BinaryOp::lt: op = Cmp::lt; break;
    case BinaryOp::le: op = Cmp::le; break;
    case BinaryOp::gt: op = Cmp::gt; break;
    case BinaryOp::ge: op = Cmp::ge; break;
    default: return true;  // not a comparison: unconstrained
  }

  const std::string lhs_path = dotted_path(cmp.lhs());
  const std::string rhs_path = dotted_path(cmp.rhs());
  const auto lhs_const = try_evaluate(cmp.lhs(), consts_);
  const auto rhs_const = try_evaluate(cmp.rhs(), consts_);

  if (!taken) {
    op = negate(op);
  }
  if (!lhs_path.empty() && !lhs_const && rhs_const) {
    return add_atom(lhs_path, op, *rhs_const);
  }
  if (!rhs_path.empty() && !rhs_const && lhs_const) {
    return add_atom(rhs_path, mirror(op), *lhs_const);
  }
  if (lhs_const && rhs_const) {
    // Fully constant comparison: decide it now.
    const std::uint64_t truth =
        apply_binary(cmp.op(), *lhs_const, *rhs_const, cmp.location());
    const bool holds = truth != 0;
    if (holds != taken) {
      return feasible_ = false;
    }
    return true;
  }
  return true;  // variable-vs-variable: treated as unconstrained
}

bool ConstraintSet::assume(const Expr& cond, bool taken) {
  if (!feasible_) {
    return false;
  }
  switch (cond.kind()) {
    case ExprKind::bool_literal: {
      const bool value = static_cast<const BoolLiteral&>(cond).value();
      if (value != taken) {
        return feasible_ = false;
      }
      return true;
    }
    case ExprKind::identifier:
    case ExprKind::member: {
      const std::string path = dotted_path(cond);
      if (path.empty()) {
        return true;
      }
      if (const auto it = consts_.find(path); it != consts_.end()) {
        // Known constant used as a boolean.
        if ((it->second != 0) != taken) {
          return feasible_ = false;
        }
        return true;
      }
      // Boolean flag variable: pin to taken (0/1 domain, like bit<1>).
      return add_atom(path, Cmp::eq, taken ? 1 : 0);
    }
    case ExprKind::unary: {
      const auto& unary = static_cast<const UnaryExpr&>(cond);
      if (unary.op() == UnaryOp::logical_not) {
        return assume(unary.operand(), !taken);
      }
      return true;
    }
    case ExprKind::binary: {
      const auto& binary = static_cast<const BinaryExpr&>(cond);
      if (binary.op() == BinaryOp::logical_and) {
        if (taken) {
          return assume(binary.lhs(), true) && assume(binary.rhs(), true);
        }
        // ¬(a ∧ b) is a disjunction: only decidable when one side is
        // already pinned true, in which case the other must be false.
        if (const auto lhs = try_evaluate(binary.lhs(), consts_);
            lhs && *lhs != 0) {
          return assume(binary.rhs(), false);
        }
        if (const auto rhs = try_evaluate(binary.rhs(), consts_);
            rhs && *rhs != 0) {
          return assume(binary.lhs(), false);
        }
        return true;  // unconstrained
      }
      if (binary.op() == BinaryOp::logical_or) {
        if (!taken) {
          return assume(binary.lhs(), false) && assume(binary.rhs(), false);
        }
        if (const auto lhs = try_evaluate(binary.lhs(), consts_);
            lhs && *lhs == 0) {
          return assume(binary.rhs(), true);
        }
        if (const auto rhs = try_evaluate(binary.rhs(), consts_);
            rhs && *rhs == 0) {
          return assume(binary.lhs(), true);
        }
        return true;
      }
      return assume_comparison(binary, taken);
    }
    default:
      return true;  // calls, literals of other kinds: unconstrained
  }
}

std::optional<std::uint64_t> ConstraintSet::value_of(const std::string& path) const {
  const auto it = domains_.find(path);
  if (it == domains_.end()) {
    return std::nullopt;
  }
  const VarDomain& d = it->second;
  if (d.fixed) {
    return d.fixed;
  }
  // Trim interval endpoints excluded by != constraints; if that collapses
  // the domain to one point, the value is determined.
  std::uint64_t lo = d.lo, hi = d.hi;
  while (lo < hi && d.forbidden.contains(lo)) {
    ++lo;
  }
  while (hi > lo && d.forbidden.contains(hi)) {
    --hi;
  }
  if (lo == hi && !d.forbidden.contains(lo)) {
    return lo;
  }
  return std::nullopt;
}

ConstEnv ConstraintSet::sample_assignment() const {
  ConstEnv assignment;
  for (const auto& [path, domain] : domains_) {
    if (!domain.constrained) {
      continue;
    }
    std::uint64_t v = domain.fixed.value_or(domain.lo);
    while (domain.forbidden.contains(v) && v < domain.hi) {
      ++v;
    }
    assignment[path] = v;
  }
  return assignment;
}

bool ConstraintSet::satisfied_by(const ConstEnv& env) const {
  if (!feasible_) {
    return false;
  }
  for (const auto& [path, domain] : domains_) {
    if (!domain.constrained) {
      continue;
    }
    const auto it = env.find(path);
    const std::uint64_t value = it == env.end() ? 0 : it->second;
    if (domain.fixed && *domain.fixed != value) {
      return false;
    }
    if (value < domain.lo || value > domain.hi ||
        domain.forbidden.contains(value)) {
      return false;
    }
  }
  return true;
}

std::set<std::string> ConstraintSet::variables() const {
  std::set<std::string> names;
  for (const auto& [path, domain] : domains_) {
    if (domain.constrained) {
      names.insert(path);
    }
  }
  return names;
}

}  // namespace opendesc::p4
