// Token stream produced by the P4 lexer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "p4/source.hpp"

namespace opendesc::p4 {

enum class TokenKind : std::uint8_t {
  // literals / identifiers
  identifier,
  int_literal,     ///< value (+ optional explicit bit width, e.g. 8w0xFF)
  string_literal,
  // keywords
  kw_header, kw_struct, kw_typedef, kw_const, kw_parser, kw_control,
  kw_state, kw_transition, kw_select, kw_apply, kw_if, kw_else,
  kw_true, kw_false, kw_default, kw_in, kw_out, kw_inout, kw_bit,
  kw_bool, kw_return, kw_register, kw_extern,
  // punctuation
  l_brace, r_brace, l_paren, r_paren, l_angle, r_angle, l_bracket, r_bracket,
  semicolon, colon, comma, dot, at,
  // operators
  assign,        // =
  eq, ne, le, ge,              // == != <= >=  (< > reuse l_angle/r_angle)
  plus, minus, star, slash, percent,
  amp, pipe, caret, tilde, bang,
  and_and, or_or, shl, shr,
  underscore,    // '_' keyset wildcard
  end_of_file,
};

[[nodiscard]] std::string to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::end_of_file;
  std::string text;                       ///< identifier / string spelling
  std::uint64_t int_value = 0;            ///< for int_literal
  std::optional<std::size_t> int_width;   ///< explicit width (8w...) if any
  SourceLocation location;

  [[nodiscard]] bool is(TokenKind k) const noexcept { return kind == k; }
};

}  // namespace opendesc::p4
