#include "p4/parser.hpp"

#include "common/error.hpp"
#include "p4/lexer.hpp"

namespace opendesc::p4 {

namespace {

/// Binding powers for the expression grammar (higher binds tighter).
int binary_precedence(TokenKind kind) {
  switch (kind) {
    case TokenKind::or_or: return 1;
    case TokenKind::and_and: return 2;
    case TokenKind::pipe: return 3;
    case TokenKind::caret: return 4;
    case TokenKind::amp: return 5;
    case TokenKind::eq:
    case TokenKind::ne: return 6;
    case TokenKind::l_angle:
    case TokenKind::r_angle:
    case TokenKind::le:
    case TokenKind::ge: return 7;
    case TokenKind::shl:
    case TokenKind::shr: return 8;
    case TokenKind::plus:
    case TokenKind::minus: return 9;
    case TokenKind::star:
    case TokenKind::slash:
    case TokenKind::percent: return 10;
    default: return 0;
  }
}

BinaryOp to_binary_op(TokenKind kind) {
  switch (kind) {
    case TokenKind::or_or: return BinaryOp::logical_or;
    case TokenKind::and_and: return BinaryOp::logical_and;
    case TokenKind::pipe: return BinaryOp::bit_or;
    case TokenKind::caret: return BinaryOp::bit_xor;
    case TokenKind::amp: return BinaryOp::bit_and;
    case TokenKind::eq: return BinaryOp::eq;
    case TokenKind::ne: return BinaryOp::ne;
    case TokenKind::l_angle: return BinaryOp::lt;
    case TokenKind::r_angle: return BinaryOp::gt;
    case TokenKind::le: return BinaryOp::le;
    case TokenKind::ge: return BinaryOp::ge;
    case TokenKind::shl: return BinaryOp::shl;
    case TokenKind::shr: return BinaryOp::shr;
    case TokenKind::plus: return BinaryOp::add;
    case TokenKind::minus: return BinaryOp::sub;
    case TokenKind::star: return BinaryOp::mul;
    case TokenKind::slash: return BinaryOp::div;
    case TokenKind::percent: return BinaryOp::mod;
    default: break;
  }
  throw Error(ErrorKind::internal, "not a binary operator token");
}

/// Re-spells a token as parseable source text (for opaque extern bodies).
std::string spell(const Token& t) {
  switch (t.kind) {
    case TokenKind::int_literal: {
      std::string out;
      if (t.int_width) {
        out = std::to_string(*t.int_width) + "w";
      }
      return out + std::to_string(t.int_value);
    }
    case TokenKind::string_literal:
      return "\"" + t.text + "\"";
    default:
      break;
  }
  if (!t.text.empty()) {
    return t.text;  // identifiers and keywords carry their spelling
  }
  // Punctuation: to_string() wraps in quotes ("';'") — strip them.
  std::string quoted = to_string(t.kind);
  if (quoted.size() >= 2 && quoted.front() == '\'' && quoted.back() == '\'') {
    return quoted.substr(1, quoted.size() - 2);
  }
  return quoted;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse_program() {
    Program program;
    while (!check(TokenKind::end_of_file)) {
      program.add(parse_declaration());
    }
    return program;
  }

  ExprPtr parse_single_expression() {
    ExprPtr e = parse_expr();
    expect(TokenKind::end_of_file, "after expression");
    return e;
  }

 private:
  // -- token helpers --------------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool check(TokenKind kind) const { return peek().kind == kind; }
  const Token& advance() {
    const Token& t = peek();
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
    return t;
  }
  bool match(TokenKind kind) {
    if (!check(kind)) {
      return false;
    }
    advance();
    return true;
  }
  const Token& expect(TokenKind kind, const std::string& context) {
    if (!check(kind)) {
      fail("expected " + to_string(kind) + " " + context + ", found " +
           to_string(peek().kind));
    }
    return advance();
  }
  [[noreturn]] void fail(const std::string& message) const {
    throw Error(ErrorKind::parse, to_string(peek().location) + ": " + message);
  }

  /// Consumes a closing '>' even when the lexer fused two of them into a
  /// '>>' token (as in `register<bit<32>>`): the fused token is split in
  /// place, leaving one '>' for the outer closer.
  void expect_closing_angle(const std::string& context) {
    if (check(TokenKind::shr)) {
      tokens_[pos_].kind = TokenKind::r_angle;
      return;  // consumed one '>', one remains
    }
    expect(TokenKind::r_angle, context);
  }

  // -- annotations ----------------------------------------------------------

  std::vector<Annotation> parse_annotations() {
    std::vector<Annotation> annotations;
    while (match(TokenKind::at)) {
      Annotation a;
      a.location = peek().location;
      a.name = expect(TokenKind::identifier, "as annotation name").text;
      if (match(TokenKind::l_paren)) {
        if (!check(TokenKind::r_paren)) {
          do {
            a.args.push_back(parse_expr());
          } while (match(TokenKind::comma));
        }
        expect(TokenKind::r_paren, "to close annotation arguments");
      }
      annotations.push_back(std::move(a));
    }
    return annotations;
  }

  // -- types ----------------------------------------------------------------

  [[nodiscard]] bool looks_like_type() const {
    return check(TokenKind::kw_bit) || check(TokenKind::kw_bool) ||
           check(TokenKind::identifier);
  }

  TypeRef parse_type() {
    const SourceLocation at = peek().location;
    if (match(TokenKind::kw_bit)) {
      expect(TokenKind::l_angle, "after 'bit'");
      const Token& width = expect(TokenKind::int_literal, "as bit width");
      if (width.int_value == 0 || width.int_value > 64) {
        fail("bit width must be in [1, 64] for descriptor fields");
      }
      expect_closing_angle("to close bit width");
      return TypeRef::bits(static_cast<std::size_t>(width.int_value), at);
    }
    if (match(TokenKind::kw_bool)) {
      return TypeRef::boolean(at);
    }
    const Token& name = expect(TokenKind::identifier, "as type name");
    return TypeRef::named(name.text, at);
  }

  // -- expressions ----------------------------------------------------------

  ExprPtr parse_expr(int min_precedence = 1) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      const TokenKind op_kind = peek().kind;
      const int prec = binary_precedence(op_kind);
      if (prec < min_precedence) {
        return lhs;
      }
      const SourceLocation at = peek().location;
      advance();
      ExprPtr rhs = parse_expr(prec + 1);  // left-associative
      lhs = std::make_unique<BinaryExpr>(to_binary_op(op_kind), std::move(lhs),
                                         std::move(rhs), at);
    }
  }

  ExprPtr parse_unary() {
    const SourceLocation at = peek().location;
    if (match(TokenKind::bang)) {
      return std::make_unique<UnaryExpr>(UnaryOp::logical_not, parse_unary(), at);
    }
    if (match(TokenKind::tilde)) {
      return std::make_unique<UnaryExpr>(UnaryOp::bit_not, parse_unary(), at);
    }
    if (match(TokenKind::minus)) {
      return std::make_unique<UnaryExpr>(UnaryOp::negate, parse_unary(), at);
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_primary();
    for (;;) {
      if (match(TokenKind::dot)) {
        const SourceLocation at = peek().location;
        const Token& member = expect(TokenKind::identifier, "after '.'");
        expr = std::make_unique<MemberExpr>(std::move(expr), member.text, at);
        continue;
      }
      if (check(TokenKind::l_paren)) {
        const SourceLocation at = advance().location;
        std::vector<ExprPtr> args;
        if (!check(TokenKind::r_paren)) {
          do {
            args.push_back(parse_expr());
          } while (match(TokenKind::comma));
        }
        expect(TokenKind::r_paren, "to close call arguments");
        expr = std::make_unique<CallExpr>(std::move(expr), std::move(args), at);
        continue;
      }
      return expr;
    }
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::int_literal: {
        advance();
        return std::make_unique<IntLiteral>(t.int_value, t.int_width, t.location);
      }
      case TokenKind::kw_true:
        advance();
        return std::make_unique<BoolLiteral>(true, t.location);
      case TokenKind::kw_false:
        advance();
        return std::make_unique<BoolLiteral>(false, t.location);
      case TokenKind::string_literal:
        advance();
        return std::make_unique<StringLiteral>(t.text, t.location);
      case TokenKind::identifier:
        advance();
        return std::make_unique<Identifier>(t.text, t.location);
      case TokenKind::l_paren: {
        advance();
        ExprPtr inner = parse_expr();
        expect(TokenKind::r_paren, "to close parenthesized expression");
        return inner;
      }
      default:
        fail("expected expression, found " + to_string(t.kind));
    }
  }

  // -- statements -----------------------------------------------------------

  StmtPtr parse_statement() {
    const SourceLocation at = peek().location;

    if (check(TokenKind::l_brace)) {
      return parse_block();
    }

    if (match(TokenKind::kw_if)) {
      expect(TokenKind::l_paren, "after 'if'");
      ExprPtr condition = parse_expr();
      expect(TokenKind::r_paren, "to close if condition");
      StmtPtr then_branch = parse_statement();
      StmtPtr else_branch;
      if (match(TokenKind::kw_else)) {
        else_branch = parse_statement();
      }
      return std::make_unique<IfStmt>(std::move(condition), std::move(then_branch),
                                      std::move(else_branch), at);
    }

    // Local variable declaration: `bit<32> tmp;` / `bool x = ...;` /
    // `TypeName v = ...;`.  Distinguished from expression statements by a
    // type-looking token followed by an identifier.
    if ((check(TokenKind::kw_bit) || check(TokenKind::kw_bool)) ||
        (check(TokenKind::identifier) && peek(1).kind == TokenKind::identifier)) {
      TypeRef type = parse_type();
      const Token& name = expect(TokenKind::identifier, "as variable name");
      ExprPtr init;
      if (match(TokenKind::assign)) {
        init = parse_expr();
      }
      expect(TokenKind::semicolon, "after variable declaration");
      return std::make_unique<VarDeclStmt>(std::move(type), name.text,
                                           std::move(init), at);
    }

    // Expression statement: method call or assignment.
    ExprPtr expr = parse_postfix();
    if (match(TokenKind::assign)) {
      ExprPtr rhs = parse_expr();
      expect(TokenKind::semicolon, "after assignment");
      return std::make_unique<AssignStmt>(std::move(expr), std::move(rhs), at);
    }
    expect(TokenKind::semicolon, "after statement");
    if (expr->kind() != ExprKind::call) {
      fail("expected a method call or assignment statement");
    }
    auto* raw_call = static_cast<CallExpr*>(expr.release());
    return std::make_unique<MethodCallStmt>(std::unique_ptr<CallExpr>(raw_call), at);
  }

  std::unique_ptr<BlockStmt> parse_block() {
    const SourceLocation at = peek().location;
    expect(TokenKind::l_brace, "to open block");
    std::vector<StmtPtr> statements;
    while (!check(TokenKind::r_brace) && !check(TokenKind::end_of_file)) {
      statements.push_back(parse_statement());
    }
    expect(TokenKind::r_brace, "to close block");
    return std::make_unique<BlockStmt>(std::move(statements), at);
  }

  // -- declarations ---------------------------------------------------------

  DeclPtr parse_declaration() {
    std::vector<Annotation> annotations = parse_annotations();
    const SourceLocation at = peek().location;

    if (match(TokenKind::kw_header)) {
      return parse_struct_like(DeclKind::header, std::move(annotations), at);
    }
    if (match(TokenKind::kw_struct)) {
      return parse_struct_like(DeclKind::struct_, std::move(annotations), at);
    }
    if (match(TokenKind::kw_typedef)) {
      TypeRef aliased = parse_type();
      const Token& name = expect(TokenKind::identifier, "as typedef name");
      expect(TokenKind::semicolon, "after typedef");
      return std::make_unique<TypedefDecl>(std::move(aliased), name.text, at);
    }
    if (match(TokenKind::kw_const)) {
      TypeRef type = parse_type();
      const Token& name = expect(TokenKind::identifier, "as constant name");
      expect(TokenKind::assign, "after constant name");
      ExprPtr value = parse_expr();
      expect(TokenKind::semicolon, "after constant");
      return std::make_unique<ConstDecl>(std::move(type), name.text,
                                         std::move(value), at);
    }
    if (match(TokenKind::kw_register)) {
      // register<TYPE>(SIZE) name;  — descriptive stateful storage (§5).
      expect(TokenKind::l_angle, "after 'register'");
      TypeRef value_type = parse_type();
      expect_closing_angle("to close register value type");
      expect(TokenKind::l_paren, "for register size");
      ExprPtr size_expr = parse_expr();
      expect(TokenKind::r_paren, "to close register size");
      const Token& name = expect(TokenKind::identifier, "as register name");
      expect(TokenKind::semicolon, "after register declaration");
      // Size must be a literal or constant-foldable later; store the value
      // when it is a plain literal, otherwise reject (keeps grammar simple).
      if (size_expr->kind() != ExprKind::int_literal) {
        fail("register size must be an integer literal");
      }
      const std::uint64_t size =
          static_cast<const IntLiteral&>(*size_expr).value();
      return std::make_unique<RegisterDecl>(std::move(value_type), size,
                                            name.text, std::move(annotations), at);
    }
    if (match(TokenKind::kw_extern)) {
      const Token& name = expect(TokenKind::identifier, "as extern name");
      std::string body;
      if (match(TokenKind::l_brace)) {
        // Opaque body: balance braces without interpreting (the paper:
        // "there is no need for the interface to be able to peek in the
        // feature itself").  Tokens are re-spelled so the body survives a
        // print-parse round trip.
        int depth = 1;
        while (depth > 0) {
          const Token& t = peek();
          if (t.kind == TokenKind::end_of_file) {
            fail("unterminated extern body");
          }
          if (t.kind == TokenKind::l_brace) ++depth;
          if (t.kind == TokenKind::r_brace) --depth;
          if (depth > 0) {
            if (!body.empty()) body += ' ';
            body += spell(t);
          }
          advance();
        }
      } else {
        expect(TokenKind::semicolon, "after extern declaration");
      }
      return std::make_unique<ExternDecl>(name.text, std::move(body),
                                          std::move(annotations), at);
    }
    if (match(TokenKind::kw_parser)) {
      return parse_parser(std::move(annotations), at);
    }
    if (match(TokenKind::kw_control)) {
      return parse_control(std::move(annotations), at);
    }
    fail("expected a declaration (header/struct/typedef/const/parser/control)");
  }

  DeclPtr parse_struct_like(DeclKind kind, std::vector<Annotation> annotations,
                            SourceLocation at) {
    const Token& name = expect(TokenKind::identifier, "as declaration name");
    expect(TokenKind::l_brace, "to open field list");
    std::vector<FieldDecl> fields;
    while (!check(TokenKind::r_brace) && !check(TokenKind::end_of_file)) {
      FieldDecl field;
      field.location = peek().location;
      field.annotations = parse_annotations();
      field.type = parse_type();
      field.name = expect(TokenKind::identifier, "as field name").text;
      expect(TokenKind::semicolon, "after field");
      fields.push_back(std::move(field));
    }
    expect(TokenKind::r_brace, "to close field list");
    return std::make_unique<StructLikeDecl>(kind, name.text, std::move(fields),
                                            std::move(annotations), at);
  }

  std::vector<std::string> parse_type_params() {
    std::vector<std::string> params;
    if (match(TokenKind::l_angle)) {
      do {
        params.push_back(expect(TokenKind::identifier, "as type parameter").text);
      } while (match(TokenKind::comma));
      expect(TokenKind::r_angle, "to close type parameters");
    }
    return params;
  }

  std::vector<Param> parse_params() {
    std::vector<Param> params;
    expect(TokenKind::l_paren, "to open parameter list");
    if (!check(TokenKind::r_paren)) {
      do {
        Param p;
        p.location = peek().location;
        if (match(TokenKind::kw_in)) {
          p.direction = ParamDir::in;
        } else if (match(TokenKind::kw_out)) {
          p.direction = ParamDir::out;
        } else if (match(TokenKind::kw_inout)) {
          p.direction = ParamDir::inout;
        }
        p.type = parse_type();
        p.name = expect(TokenKind::identifier, "as parameter name").text;
        params.push_back(std::move(p));
      } while (match(TokenKind::comma));
    }
    expect(TokenKind::r_paren, "to close parameter list");
    return params;
  }

  DeclPtr parse_parser(std::vector<Annotation> annotations, SourceLocation at) {
    const Token& name = expect(TokenKind::identifier, "as parser name");
    std::vector<std::string> type_params = parse_type_params();
    std::vector<Param> params = parse_params();
    expect(TokenKind::l_brace, "to open parser body");

    std::vector<ParserState> states;
    while (!check(TokenKind::r_brace) && !check(TokenKind::end_of_file)) {
      expect(TokenKind::kw_state, "in parser body");
      ParserState state;
      state.location = peek().location;
      state.name = expect(TokenKind::identifier, "as state name").text;
      expect(TokenKind::l_brace, "to open state body");
      while (!check(TokenKind::r_brace) && !check(TokenKind::kw_transition) &&
             !check(TokenKind::end_of_file)) {
        state.statements.push_back(parse_statement());
      }
      if (match(TokenKind::kw_transition)) {
        parse_transition(state);
      }
      expect(TokenKind::r_brace, "to close state body");
      states.push_back(std::move(state));
    }
    expect(TokenKind::r_brace, "to close parser body");
    return std::make_unique<ParserDecl>(name.text, std::move(type_params),
                                        std::move(params), std::move(states),
                                        std::move(annotations), at);
  }

  void parse_transition(ParserState& state) {
    if (match(TokenKind::kw_select)) {
      expect(TokenKind::l_paren, "after 'select'");
      do {
        state.select_keys.push_back(parse_expr());
      } while (match(TokenKind::comma));
      expect(TokenKind::r_paren, "to close select keys");
      expect(TokenKind::l_brace, "to open select cases");
      while (!check(TokenKind::r_brace) && !check(TokenKind::end_of_file)) {
        SelectCase c;
        c.location = peek().location;
        if (match(TokenKind::kw_default) || match(TokenKind::underscore)) {
          c.key = nullptr;
        } else {
          c.key = parse_expr();
        }
        expect(TokenKind::colon, "after select keyset");
        c.next_state = expect(TokenKind::identifier, "as next state").text;
        expect(TokenKind::semicolon, "after select case");
        state.cases.push_back(std::move(c));
      }
      expect(TokenKind::r_brace, "to close select cases");
      expect(TokenKind::semicolon, "after select transition");
      return;
    }
    state.direct_next = expect(TokenKind::identifier, "as transition target").text;
    expect(TokenKind::semicolon, "after transition");
  }

  DeclPtr parse_control(std::vector<Annotation> annotations, SourceLocation at) {
    const Token& name = expect(TokenKind::identifier, "as control name");
    std::vector<std::string> type_params = parse_type_params();
    std::vector<Param> params = parse_params();
    expect(TokenKind::l_brace, "to open control body");

    std::vector<StmtPtr> locals;
    while (!check(TokenKind::kw_apply)) {
      if (check(TokenKind::r_brace) || check(TokenKind::end_of_file)) {
        fail("control body must contain an apply block");
      }
      locals.push_back(parse_statement());
    }
    expect(TokenKind::kw_apply, "in control body");
    std::unique_ptr<BlockStmt> apply = parse_block();
    expect(TokenKind::r_brace, "to close control body");
    return std::make_unique<ControlDecl>(name.text, std::move(type_params),
                                         std::move(params), std::move(locals),
                                         std::move(apply), std::move(annotations), at);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view source) {
  Parser parser(tokenize(source));
  return parser.parse_program();
}

ExprPtr parse_expression(std::string_view source) {
  Parser parser(tokenize(source));
  return parser.parse_single_expression();
}

}  // namespace opendesc::p4
