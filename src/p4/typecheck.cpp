#include "p4/typecheck.hpp"

#include <set>

#include "common/error.hpp"

namespace opendesc::p4 {

namespace {

[[noreturn]] void fail(const SourceLocation& at, const std::string& message) {
  throw Error(ErrorKind::type, to_string(at) + ": " + message);
}

/// Widths of type parameters are unknown at declaration time; parser and
/// control templates may reference them.  We track them as "opaque" names.
class Checker {
 public:
  explicit Checker(const Program& program) : program_(program) {}

  TypeInfo run() {
    check_unique_decl_names();
    // Two passes: first collect typedef/const/struct widths (they may be
    // referenced before use in our single-file model NIC descriptions),
    // then validate parsers/controls.
    collect_types_and_consts();
    for (const auto& decl : program_.decls()) {
      switch (decl->kind()) {
        case DeclKind::header:
        case DeclKind::struct_:
          check_struct_like(static_cast<const StructLikeDecl&>(*decl));
          break;
        case DeclKind::parser:
          check_parser(static_cast<const ParserDecl&>(*decl));
          break;
        case DeclKind::control:
          check_control(static_cast<const ControlDecl&>(*decl));
          break;
        default:
          break;
      }
    }
    return std::move(info_);
  }

 private:
  void check_unique_decl_names() {
    std::set<std::string> seen;
    for (const auto& decl : program_.decls()) {
      if (!seen.insert(decl->name()).second) {
        fail(decl->location(), "duplicate declaration '" + decl->name() + "'");
      }
    }
  }

  /// Resolves the width of a type reference; `type_params` are names that
  /// are opaque in the current scope (width unknown but legal).
  std::size_t resolve_width(const TypeRef& type,
                            const std::set<std::string>& type_params,
                            bool allow_opaque) {
    switch (type.kind) {
      case TypeRef::Kind::bits:
        return type.width;
      case TypeRef::Kind::boolean:
        return 1;
      case TypeRef::Kind::named: {
        if (type_params.contains(type.name)) {
          if (!allow_opaque) {
            fail(type.location,
                 "type parameter '" + type.name + "' not allowed here");
          }
          return 0;
        }
        const auto it = info_.has_named(type.name) ? std::optional<std::size_t>(info_.width_of(type)) : std::nullopt;
        if (!it) {
          fail(type.location, "unknown type '" + type.name + "'");
        }
        return *it;
      }
    }
    fail(type.location, "unresolvable type");
  }

  void collect_types_and_consts() {
    // Iterate until fixpoint so typedefs can reference later declarations
    // (our NIC models are single files where order is natural, but the
    // grammar does not force it).
    bool progress = true;
    std::size_t resolved = 0;
    const std::size_t total = program_.decls().size();
    std::set<std::string> done;
    while (progress && resolved < total) {
      progress = false;
      for (const auto& decl : program_.decls()) {
        if (done.contains(decl->name())) {
          continue;
        }
        switch (decl->kind()) {
          case DeclKind::typedef_: {
            const auto& td = static_cast<const TypedefDecl&>(*decl);
            if (td.aliased().kind == TypeRef::Kind::named &&
                !info_.has_named(td.aliased().name)) {
              continue;  // dependency not yet resolved
            }
            info_.set_named_width(td.name(), resolve_width(td.aliased(), {}, false));
            break;
          }
          case DeclKind::header:
          case DeclKind::struct_: {
            const auto& s = static_cast<const StructLikeDecl&>(*decl);
            std::size_t width = 0;
            bool ready = true;
            for (const FieldDecl& f : s.fields()) {
              if (f.type.kind == TypeRef::Kind::named &&
                  !info_.has_named(f.type.name)) {
                ready = false;
                break;
              }
              width += resolve_width(f.type, {}, false);
            }
            if (!ready) {
              continue;
            }
            info_.set_named_width(s.name(), width);
            break;
          }
          case DeclKind::const_: {
            const auto& c = static_cast<const ConstDecl&>(*decl);
            info_.set_constant(c.name(), evaluate(c.value(), info_.constants()));
            break;
          }
          case DeclKind::register_: {
            const auto& r = static_cast<const RegisterDecl&>(*decl);
            if (r.value_type().kind == TypeRef::Kind::named &&
                !info_.has_named(r.value_type().name)) {
              continue;  // dependency not yet resolved
            }
            (void)resolve_width(r.value_type(), {}, false);
            if (r.size() == 0) {
              fail(r.location(), "register size must be positive");
            }
            break;
          }
          case DeclKind::extern_:
            break;  // opaque by design
          case DeclKind::parser:
          case DeclKind::control:
            break;  // handled in the second pass
        }
        done.insert(decl->name());
        ++resolved;
        progress = true;
      }
    }
    // Anything left unresolved has a circular or dangling type reference.
    for (const auto& decl : program_.decls()) {
      if (done.contains(decl->name()) || decl->kind() == DeclKind::parser ||
          decl->kind() == DeclKind::control) {
        continue;
      }
      fail(decl->location(),
           "circular or dangling type reference involving '" + decl->name() + "'");
    }
  }

  void check_struct_like(const StructLikeDecl& decl) {
    std::set<std::string> field_names;
    for (const FieldDecl& field : decl.fields()) {
      if (!field_names.insert(field.name).second) {
        fail(field.location, "duplicate field '" + field.name + "' in '" +
                                 decl.name() + "'");
      }
      check_field_annotations(field);
    }
  }

  void check_field_annotations(const FieldDecl& field) {
    for (const Annotation& a : field.annotations) {
      if (a.name == "semantic") {
        // Must carry exactly one string; string_arg() throws otherwise.
        (void)a.string_arg();
      } else if (a.name == "cost") {
        (void)a.int_arg();
      }
      // Unknown annotations are allowed (forward compatibility), matching
      // P4-16 which lets targets define their own.
    }
  }

  void check_parser(const ParserDecl& decl) {
    const std::set<std::string> type_params(decl.type_params().begin(),
                                            decl.type_params().end());
    check_params(decl.params(), type_params);

    std::set<std::string> state_names;
    for (const ParserState& state : decl.states()) {
      if (!state_names.insert(state.name).second) {
        fail(state.location, "duplicate state '" + state.name + "'");
      }
    }
    if (!state_names.contains("start")) {
      fail(decl.location(), "parser '" + decl.name() + "' has no start state");
    }
    for (const ParserState& state : decl.states()) {
      const auto target_ok = [&](const std::string& target) {
        return target == kAcceptState || target == kRejectState ||
               state_names.contains(target);
      };
      if (!state.direct_next.empty() && !target_ok(state.direct_next)) {
        fail(state.location, "transition to unknown state '" +
                                 state.direct_next + "'");
      }
      for (const SelectCase& c : state.cases) {
        if (!target_ok(c.next_state)) {
          fail(c.location, "select case targets unknown state '" +
                               c.next_state + "'");
        }
      }
      if (state.has_select() && state.cases.empty()) {
        fail(state.location, "select with no cases");
      }
    }
  }

  void check_control(const ControlDecl& decl) {
    const std::set<std::string> type_params(decl.type_params().begin(),
                                            decl.type_params().end());
    check_params(decl.params(), type_params);
    check_stmt(decl.apply());
    for (const StmtPtr& local : decl.locals()) {
      check_stmt(*local);
    }
  }

  void check_params(const std::vector<Param>& params,
                    const std::set<std::string>& type_params) {
    std::set<std::string> names;
    for (const Param& p : params) {
      if (!names.insert(p.name).second) {
        fail(p.location, "duplicate parameter '" + p.name + "'");
      }
      if (p.type.kind == TypeRef::Kind::named &&
          !type_params.contains(p.type.name) &&
          !info_.has_named(p.type.name) &&
          !is_builtin_channel_type(p.type.name)) {
        fail(p.type.location, "unknown parameter type '" + p.type.name + "'");
      }
    }
  }

  /// Channel endpoint types from the OpenDesc architecture (Fig. 2-4):
  /// descriptor byte stream in, completion byte stream out, packet channels.
  static bool is_builtin_channel_type(const std::string& name) {
    return name == "desc_in" || name == "cmpt_out" || name == "packet_in" ||
           name == "packet_out";
  }

  void check_stmt(const Stmt& stmt) {
    switch (stmt.kind()) {
      case StmtKind::block:
        for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements()) {
          check_stmt(*s);
        }
        break;
      case StmtKind::if_stmt: {
        const auto& if_stmt = static_cast<const IfStmt&>(stmt);
        check_stmt(if_stmt.then_branch());
        if (if_stmt.else_branch() != nullptr) {
          check_stmt(*if_stmt.else_branch());
        }
        break;
      }
      case StmtKind::method_call:
      case StmtKind::assign:
      case StmtKind::var_decl:
        break;  // expression-level checking happens in the core compiler,
                // which knows the emit/extract channel semantics
    }
  }

  const Program& program_;
  TypeInfo info_;
};

}  // namespace

std::size_t TypeInfo::width_of(const TypeRef& type) const {
  switch (type.kind) {
    case TypeRef::Kind::bits:
      return type.width;
    case TypeRef::Kind::boolean:
      return 1;
    case TypeRef::Kind::named: {
      const auto it = named_widths_.find(type.name);
      if (it == named_widths_.end()) {
        throw Error(ErrorKind::type, "unknown type '" + type.name + "'");
      }
      return it->second;
    }
  }
  throw Error(ErrorKind::internal, "unresolvable TypeRef");
}

std::size_t TypeInfo::width_of(const StructLikeDecl& decl) const {
  const auto it = named_widths_.find(decl.name());
  if (it == named_widths_.end()) {
    throw Error(ErrorKind::type, "declaration '" + decl.name() + "' was not checked");
  }
  return it->second;
}

std::size_t TypeInfo::field_width(const FieldDecl& field) const {
  return width_of(field.type);
}

TypeInfo check_program(const Program& program) {
  Checker checker(program);
  return checker.run();
}

}  // namespace opendesc::p4
