#include "p4/token.hpp"

namespace opendesc::p4 {

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::identifier: return "identifier";
    case TokenKind::int_literal: return "integer literal";
    case TokenKind::string_literal: return "string literal";
    case TokenKind::kw_header: return "'header'";
    case TokenKind::kw_struct: return "'struct'";
    case TokenKind::kw_typedef: return "'typedef'";
    case TokenKind::kw_const: return "'const'";
    case TokenKind::kw_parser: return "'parser'";
    case TokenKind::kw_control: return "'control'";
    case TokenKind::kw_state: return "'state'";
    case TokenKind::kw_transition: return "'transition'";
    case TokenKind::kw_select: return "'select'";
    case TokenKind::kw_apply: return "'apply'";
    case TokenKind::kw_if: return "'if'";
    case TokenKind::kw_else: return "'else'";
    case TokenKind::kw_true: return "'true'";
    case TokenKind::kw_false: return "'false'";
    case TokenKind::kw_default: return "'default'";
    case TokenKind::kw_in: return "'in'";
    case TokenKind::kw_out: return "'out'";
    case TokenKind::kw_inout: return "'inout'";
    case TokenKind::kw_bit: return "'bit'";
    case TokenKind::kw_bool: return "'bool'";
    case TokenKind::kw_return: return "'return'";
    case TokenKind::kw_register: return "'register'";
    case TokenKind::kw_extern: return "'extern'";
    case TokenKind::l_brace: return "'{'";
    case TokenKind::r_brace: return "'}'";
    case TokenKind::l_paren: return "'('";
    case TokenKind::r_paren: return "')'";
    case TokenKind::l_angle: return "'<'";
    case TokenKind::r_angle: return "'>'";
    case TokenKind::l_bracket: return "'['";
    case TokenKind::r_bracket: return "']'";
    case TokenKind::semicolon: return "';'";
    case TokenKind::colon: return "':'";
    case TokenKind::comma: return "','";
    case TokenKind::dot: return "'.'";
    case TokenKind::at: return "'@'";
    case TokenKind::assign: return "'='";
    case TokenKind::eq: return "'=='";
    case TokenKind::ne: return "'!='";
    case TokenKind::le: return "'<='";
    case TokenKind::ge: return "'>='";
    case TokenKind::plus: return "'+'";
    case TokenKind::minus: return "'-'";
    case TokenKind::star: return "'*'";
    case TokenKind::slash: return "'/'";
    case TokenKind::percent: return "'%'";
    case TokenKind::amp: return "'&'";
    case TokenKind::pipe: return "'|'";
    case TokenKind::caret: return "'^'";
    case TokenKind::tilde: return "'~'";
    case TokenKind::bang: return "'!'";
    case TokenKind::and_and: return "'&&'";
    case TokenKind::or_or: return "'||'";
    case TokenKind::shl: return "'<<'";
    case TokenKind::shr: return "'>>'";
    case TokenKind::underscore: return "'_'";
    case TokenKind::end_of_file: return "end of file";
  }
  return "unknown token";
}

}  // namespace opendesc::p4
