// Recursive-descent parser for the OpenDesc P4-16 subset.
#pragma once

#include <string_view>

#include "p4/ast.hpp"

namespace opendesc::p4 {

/// Parses a complete P4 source buffer into a Program.
/// Throws Error(lex) / Error(parse) with line:column diagnostics.
[[nodiscard]] Program parse_program(std::string_view source);

/// Parses a single expression (used by tests and the intent parser).
[[nodiscard]] ExprPtr parse_expression(std::string_view source);

}  // namespace opendesc::p4
