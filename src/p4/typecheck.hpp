// Type and annotation checking for the OpenDesc P4 subset.
//
// Produces a TypeInfo side table the core compiler consumes: resolved field
// widths, header total widths, and constant values.  Reports structural
// problems (duplicate names, unknown types, dangling parser transitions,
// malformed annotations) as Error(type) with source positions.
#pragma once

#include <map>
#include <string>

#include "p4/ast.hpp"
#include "p4/eval.hpp"

namespace opendesc::p4 {

/// Resolved type/constant information for one checked Program.
class TypeInfo {
 public:
  /// Width in bits of a type reference; resolves typedef chains and
  /// header/struct names (total width).  Throws Error(type) when unknown.
  [[nodiscard]] std::size_t width_of(const TypeRef& type) const;

  /// Total bit width of a header/struct declaration.
  [[nodiscard]] std::size_t width_of(const StructLikeDecl& decl) const;

  /// Width of a single field after typedef resolution.
  [[nodiscard]] std::size_t field_width(const FieldDecl& field) const;

  /// Values of `const` declarations, keyed by name.
  [[nodiscard]] const ConstEnv& constants() const noexcept { return constants_; }

  /// Mutators used by the checker while building the table.
  void set_named_width(const std::string& name, std::size_t bits) {
    named_widths_[name] = bits;
  }
  void set_constant(const std::string& name, std::uint64_t value) {
    constants_[name] = value;
  }
  [[nodiscard]] bool has_named(const std::string& name) const {
    return named_widths_.contains(name);
  }

 private:
  std::map<std::string, std::size_t> named_widths_;  ///< typedef/header/struct → bits
  ConstEnv constants_;
};

/// Checks `program` and returns its TypeInfo.  Throws Error(type) on the
/// first violation.
[[nodiscard]] TypeInfo check_program(const Program& program);

}  // namespace opendesc::p4
