// AST pretty-printer.
//
// Regenerates P4-subset source from an AST.  Used for golden tests
// (parse ∘ print ∘ parse is a fixpoint) and for human-readable compiler
// reports that quote the relevant deparser fragments.
#pragma once

#include <string>

#include "p4/ast.hpp"

namespace opendesc::p4 {

[[nodiscard]] std::string to_source(const Program& program);
[[nodiscard]] std::string to_source(const Decl& decl);
[[nodiscard]] std::string to_source(const Stmt& stmt, int indent = 0);
[[nodiscard]] std::string to_source(const Expr& expr);

}  // namespace opendesc::p4
