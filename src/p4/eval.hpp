// Constant expression evaluation and symbolic predicate reasoning.
//
// The OpenDesc compiler needs two flavours of evaluation:
//  * full constant folding (const declarations, annotation arguments,
//    select keysets);
//  * *satisfiability* of conjunctions of branch predicates over free context
//    variables (e.g. `ctx.use_rss`, `ctx.desc_size == 16`) — used by
//    core::PathEnumerator to prune infeasible completion paths, i.e. the
//    "symbolic evaluation" of §4 step 1.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "p4/ast.hpp"

namespace opendesc::p4 {

/// Environment mapping dotted paths ("ctx.use_rss") and identifiers to
/// concrete values.
using ConstEnv = std::map<std::string, std::uint64_t>;

/// Fully evaluates `expr` under `env`.  Returns nullopt when the expression
/// references unknown variables; throws Error(type) on division by zero.
[[nodiscard]] std::optional<std::uint64_t> try_evaluate(const Expr& expr,
                                                        const ConstEnv& env);

/// Evaluates or throws Error(type) when the expression is not constant.
[[nodiscard]] std::uint64_t evaluate(const Expr& expr, const ConstEnv& env);

/// Value domain of one symbolic variable: an interval plus a set of excluded
/// points, optionally pinned to a single value.
struct VarDomain {
  std::uint64_t lo = 0;
  std::uint64_t hi = ~std::uint64_t{0};
  std::optional<std::uint64_t> fixed;
  std::set<std::uint64_t> forbidden;
  bool constrained = false;  ///< touched by a branch predicate (not just a width bound)
};

/// A conjunction of constraints over named context variables.
///
/// assume() refines the set with "predicate `cond` evaluated to `taken`".
/// The analysis is sound for the completion-deparser predicates the paper's
/// NICs use (boolean flags and comparisons against constants); anything it
/// cannot interpret is treated as unconstrained (conservatively satisfiable).
class ConstraintSet {
 public:
  ConstraintSet() = default;

  /// Constants visible to the predicates (from `const` declarations).
  explicit ConstraintSet(ConstEnv consts) : consts_(std::move(consts)) {}

  /// Refines with `cond == taken`.  Returns false — and leaves the set in an
  /// unspecified but safe state — when the conjunction became infeasible.
  [[nodiscard]] bool assume(const Expr& cond, bool taken);

  /// Declares that `path` can hold at most `max` (e.g. 2^width - 1 for a
  /// bit<width> context field).  Returns false when this contradicts
  /// existing constraints.
  [[nodiscard]] bool bound(const std::string& path, std::uint64_t max) {
    return add_atom(path, Cmp::le, max, /*from_predicate=*/false);
  }

  /// True when no contradiction has been recorded.
  [[nodiscard]] bool feasible() const noexcept { return feasible_; }

  /// The pinned value of a variable, if the constraints fix one.
  [[nodiscard]] std::optional<std::uint64_t> value_of(const std::string& path) const;

  /// A satisfying assignment over the variables that branch predicates
  /// actually constrained: pinned values where fixed, otherwise the lowest
  /// allowed value.  Useful to build a concrete context that steers the NIC
  /// into a chosen completion path.
  [[nodiscard]] ConstEnv sample_assignment() const;

  /// Variables constrained by branch predicates.
  [[nodiscard]] std::set<std::string> variables() const;

  /// True when the assignment `env` (missing variables read as 0) satisfies
  /// every predicate-derived constraint.  Used by the simulator's control
  /// channel: the NIC walks the deparser path whose constraints the
  /// programmed context registers satisfy.
  [[nodiscard]] bool satisfied_by(const ConstEnv& env) const;

 private:
  enum class Cmp { eq, ne, lt, le, gt, ge };

  bool add_atom(const std::string& path, Cmp op, std::uint64_t value,
                bool from_predicate = true);
  bool assume_comparison(const BinaryExpr& cmp, bool taken);

  ConstEnv consts_;
  std::map<std::string, VarDomain> domains_;
  bool feasible_ = true;
};

}  // namespace opendesc::p4
