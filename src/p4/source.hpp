// Source locations for P4 diagnostics.
#pragma once

#include <cstdint>
#include <string>

namespace opendesc::p4 {

/// 1-based line/column position in a P4 source buffer.
struct SourceLocation {
  std::uint32_t line = 1;
  std::uint32_t column = 1;

  friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

[[nodiscard]] inline std::string to_string(const SourceLocation& loc) {
  return std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace opendesc::p4
