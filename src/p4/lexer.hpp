// Lexer for the OpenDesc P4-16 subset.
//
// Supports identifiers, keywords, punctuation, `//` and `/* */` comments,
// string literals, and P4 integer literals including explicit-width forms
// (`8w0xFF`, `4w0b1010`, `16w42`).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "p4/token.hpp"

namespace opendesc::p4 {

/// Tokenizes `source` in one pass.  Throws Error(lex) with a line:column
/// position on invalid input.  The returned stream always ends with an
/// end_of_file token.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace opendesc::p4
