#include "p4/ast.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace opendesc::p4 {

std::string to_string(UnaryOp op) {
  switch (op) {
    case UnaryOp::logical_not: return "!";
    case UnaryOp::bit_not: return "~";
    case UnaryOp::negate: return "-";
  }
  return "?";
}

std::string to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::add: return "+";
    case BinaryOp::sub: return "-";
    case BinaryOp::mul: return "*";
    case BinaryOp::div: return "/";
    case BinaryOp::mod: return "%";
    case BinaryOp::bit_and: return "&";
    case BinaryOp::bit_or: return "|";
    case BinaryOp::bit_xor: return "^";
    case BinaryOp::shl: return "<<";
    case BinaryOp::shr: return ">>";
    case BinaryOp::eq: return "==";
    case BinaryOp::ne: return "!=";
    case BinaryOp::lt: return "<";
    case BinaryOp::le: return "<=";
    case BinaryOp::gt: return ">";
    case BinaryOp::ge: return ">=";
    case BinaryOp::logical_and: return "&&";
    case BinaryOp::logical_or: return "||";
  }
  return "?";
}

std::string dotted_path(const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::identifier:
      return static_cast<const Identifier&>(expr).name();
    case ExprKind::member: {
      const auto& member = static_cast<const MemberExpr&>(expr);
      const std::string base = dotted_path(member.base());
      if (base.empty()) {
        return {};
      }
      return base + "." + member.member();
    }
    default:
      return {};
  }
}

std::string TypeRef::to_string() const {
  switch (kind) {
    case Kind::bits: return "bit<" + std::to_string(width) + ">";
    case Kind::boolean: return "bool";
    case Kind::named: return name;
  }
  return "?";
}

const std::string& Annotation::string_arg() const {
  if (args.size() != 1 || args[0]->kind() != ExprKind::string_literal) {
    throw Error(ErrorKind::type, to_string(location) + ": annotation @" + name +
                                     " expects exactly one string argument");
  }
  return static_cast<const StringLiteral&>(*args[0]).value();
}

std::uint64_t Annotation::int_arg() const {
  if (args.size() != 1 || args[0]->kind() != ExprKind::int_literal) {
    throw Error(ErrorKind::type, to_string(location) + ": annotation @" + name +
                                     " expects exactly one integer argument");
  }
  return static_cast<const IntLiteral&>(*args[0]).value();
}

const Annotation* find_annotation(const std::vector<Annotation>& annotations,
                                  std::string_view name) {
  const auto it = std::find_if(annotations.begin(), annotations.end(),
                               [&](const Annotation& a) { return a.name == name; });
  return it == annotations.end() ? nullptr : &*it;
}

const FieldDecl* StructLikeDecl::find_field(std::string_view field_name) const {
  const auto it = std::find_if(fields_.begin(), fields_.end(),
                               [&](const FieldDecl& f) { return f.name == field_name; });
  return it == fields_.end() ? nullptr : &*it;
}

const ParserState* ParserDecl::find_state(std::string_view state_name) const {
  const auto it = std::find_if(states_.begin(), states_.end(),
                               [&](const ParserState& s) { return s.name == state_name; });
  return it == states_.end() ? nullptr : &*it;
}

const Decl* Program::find(std::string_view name) const {
  const auto it = std::find_if(decls_.begin(), decls_.end(),
                               [&](const DeclPtr& d) { return d->name() == name; });
  return it == decls_.end() ? nullptr : it->get();
}

namespace {

template <typename T>
const T* find_as(const Program& program, std::string_view name, DeclKind kind) {
  const Decl* d = program.find(name);
  if (d == nullptr || d->kind() != kind) {
    return nullptr;
  }
  return static_cast<const T*>(d);
}

}  // namespace

const StructLikeDecl* Program::find_header(std::string_view name) const {
  return find_as<StructLikeDecl>(*this, name, DeclKind::header);
}

const StructLikeDecl* Program::find_struct(std::string_view name) const {
  return find_as<StructLikeDecl>(*this, name, DeclKind::struct_);
}

const ParserDecl* Program::find_parser(std::string_view name) const {
  return find_as<ParserDecl>(*this, name, DeclKind::parser);
}

const ControlDecl* Program::find_control(std::string_view name) const {
  return find_as<ControlDecl>(*this, name, DeclKind::control);
}

const TypedefDecl* Program::find_typedef(std::string_view name) const {
  return find_as<TypedefDecl>(*this, name, DeclKind::typedef_);
}

const ConstDecl* Program::find_const(std::string_view name) const {
  return find_as<ConstDecl>(*this, name, DeclKind::const_);
}

const RegisterDecl* Program::find_register(std::string_view name) const {
  return find_as<RegisterDecl>(*this, name, DeclKind::register_);
}

const ExternDecl* Program::find_extern(std::string_view name) const {
  return find_as<ExternDecl>(*this, name, DeclKind::extern_);
}

std::vector<const RegisterDecl*> Program::registers() const {
  std::vector<const RegisterDecl*> out;
  for (const auto& d : decls_) {
    if (d->kind() == DeclKind::register_) {
      out.push_back(static_cast<const RegisterDecl*>(d.get()));
    }
  }
  return out;
}

std::vector<const ExternDecl*> Program::externs() const {
  std::vector<const ExternDecl*> out;
  for (const auto& d : decls_) {
    if (d->kind() == DeclKind::extern_) {
      out.push_back(static_cast<const ExternDecl*>(d.get()));
    }
  }
  return out;
}

std::vector<const ControlDecl*> Program::controls() const {
  std::vector<const ControlDecl*> out;
  for (const auto& d : decls_) {
    if (d->kind() == DeclKind::control) {
      out.push_back(static_cast<const ControlDecl*>(d.get()));
    }
  }
  return out;
}

std::vector<const ParserDecl*> Program::parsers() const {
  std::vector<const ParserDecl*> out;
  for (const auto& d : decls_) {
    if (d->kind() == DeclKind::parser) {
      out.push_back(static_cast<const ParserDecl*>(d.get()));
    }
  }
  return out;
}

}  // namespace opendesc::p4
