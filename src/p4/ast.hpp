// Abstract syntax tree for the OpenDesc P4-16 subset.
//
// The tree intentionally covers only what the OpenDesc compiler consumes:
// header/struct/typedef/const declarations, parser declarations (descriptor
// parsers), and control declarations (completion deparsers) whose apply
// blocks contain if/else, assignments, local declarations, and emit-style
// method calls.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "p4/source.hpp"

namespace opendesc::p4 {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  int_literal,
  bool_literal,
  string_literal,
  identifier,
  member,
  unary,
  binary,
  call,
};

enum class UnaryOp : std::uint8_t { logical_not, bit_not, negate };
enum class BinaryOp : std::uint8_t {
  add, sub, mul, div, mod,
  bit_and, bit_or, bit_xor, shl, shr,
  eq, ne, lt, le, gt, ge,
  logical_and, logical_or,
};

[[nodiscard]] std::string to_string(UnaryOp op);
[[nodiscard]] std::string to_string(BinaryOp op);

class Expr {
 public:
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  [[nodiscard]] ExprKind kind() const noexcept { return kind_; }
  [[nodiscard]] const SourceLocation& location() const noexcept { return location_; }

 protected:
  Expr(ExprKind kind, SourceLocation location) : kind_(kind), location_(location) {}

 private:
  ExprKind kind_;
  SourceLocation location_;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLiteral final : public Expr {
 public:
  IntLiteral(std::uint64_t value, std::optional<std::size_t> width,
             SourceLocation loc)
      : Expr(ExprKind::int_literal, loc), value_(value), width_(width) {}

  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] std::optional<std::size_t> width() const noexcept { return width_; }

 private:
  std::uint64_t value_;
  std::optional<std::size_t> width_;
};

class BoolLiteral final : public Expr {
 public:
  BoolLiteral(bool value, SourceLocation loc)
      : Expr(ExprKind::bool_literal, loc), value_(value) {}

  [[nodiscard]] bool value() const noexcept { return value_; }

 private:
  bool value_;
};

class StringLiteral final : public Expr {
 public:
  StringLiteral(std::string value, SourceLocation loc)
      : Expr(ExprKind::string_literal, loc), value_(std::move(value)) {}

  [[nodiscard]] const std::string& value() const noexcept { return value_; }

 private:
  std::string value_;
};

class Identifier final : public Expr {
 public:
  Identifier(std::string name, SourceLocation loc)
      : Expr(ExprKind::identifier, loc), name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

/// `base.member` — e.g. `ctx.use_rss` or `desc_hdr.rss_val`.
class MemberExpr final : public Expr {
 public:
  MemberExpr(ExprPtr base, std::string member, SourceLocation loc)
      : Expr(ExprKind::member, loc), base_(std::move(base)),
        member_(std::move(member)) {}

  [[nodiscard]] const Expr& base() const noexcept { return *base_; }
  [[nodiscard]] const std::string& member() const noexcept { return member_; }

 private:
  ExprPtr base_;
  std::string member_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand, SourceLocation loc)
      : Expr(ExprKind::unary, loc), op_(op), operand_(std::move(operand)) {}

  [[nodiscard]] UnaryOp op() const noexcept { return op_; }
  [[nodiscard]] const Expr& operand() const noexcept { return *operand_; }

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLocation loc)
      : Expr(ExprKind::binary, loc), op_(op), lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  [[nodiscard]] BinaryOp op() const noexcept { return op_; }
  [[nodiscard]] const Expr& lhs() const noexcept { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const noexcept { return *rhs_; }

 private:
  BinaryOp op_;
  ExprPtr lhs_, rhs_;
};

/// `callee(args...)` where callee is an identifier or member chain,
/// e.g. `cmpt_out.emit(desc_hdr.rss_val)` or `pkt.extract(hdr)`.
class CallExpr final : public Expr {
 public:
  CallExpr(ExprPtr callee, std::vector<ExprPtr> args, SourceLocation loc)
      : Expr(ExprKind::call, loc), callee_(std::move(callee)),
        args_(std::move(args)) {}

  [[nodiscard]] const Expr& callee() const noexcept { return *callee_; }
  [[nodiscard]] const std::vector<ExprPtr>& args() const noexcept { return args_; }

 private:
  ExprPtr callee_;
  std::vector<ExprPtr> args_;
};

/// Renders a member chain ("ctx.use_rss") or identifier as a dotted path;
/// empty string when the expression is not a pure identifier/member chain.
[[nodiscard]] std::string dotted_path(const Expr& expr);

// ---------------------------------------------------------------------------
// Types and annotations
// ---------------------------------------------------------------------------

/// Reference to a type as spelled in the source.
struct TypeRef {
  enum class Kind : std::uint8_t { bits, boolean, named };

  Kind kind = Kind::bits;
  std::size_t width = 0;  ///< for Kind::bits
  std::string name;       ///< for Kind::named
  SourceLocation location;

  [[nodiscard]] static TypeRef bits(std::size_t w, SourceLocation loc = {}) {
    return TypeRef{Kind::bits, w, {}, loc};
  }
  [[nodiscard]] static TypeRef boolean(SourceLocation loc = {}) {
    return TypeRef{Kind::boolean, 1, {}, loc};
  }
  [[nodiscard]] static TypeRef named(std::string n, SourceLocation loc = {}) {
    return TypeRef{Kind::named, 0, std::move(n), loc};
  }

  [[nodiscard]] std::string to_string() const;
};

/// `@name` or `@name("string")` or `@name(expr, ...)`.
struct Annotation {
  std::string name;
  std::vector<ExprPtr> args;
  SourceLocation location;

  /// The single string argument; throws Error(type) when the annotation
  /// does not carry exactly one string literal.
  [[nodiscard]] const std::string& string_arg() const;

  /// The single integer argument (constant literal).
  [[nodiscard]] std::uint64_t int_arg() const;
};

/// Finds an annotation by name; nullptr when absent.
[[nodiscard]] const Annotation* find_annotation(
    const std::vector<Annotation>& annotations, std::string_view name);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t { block, if_stmt, method_call, assign, var_decl };

class Stmt {
 public:
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  [[nodiscard]] StmtKind kind() const noexcept { return kind_; }
  [[nodiscard]] const SourceLocation& location() const noexcept { return location_; }

 protected:
  Stmt(StmtKind kind, SourceLocation location) : kind_(kind), location_(location) {}

 private:
  StmtKind kind_;
  SourceLocation location_;
};

using StmtPtr = std::unique_ptr<Stmt>;

class BlockStmt final : public Stmt {
 public:
  BlockStmt(std::vector<StmtPtr> statements, SourceLocation loc)
      : Stmt(StmtKind::block, loc), statements_(std::move(statements)) {}

  [[nodiscard]] const std::vector<StmtPtr>& statements() const noexcept {
    return statements_;
  }

 private:
  std::vector<StmtPtr> statements_;
};

class IfStmt final : public Stmt {
 public:
  IfStmt(ExprPtr condition, StmtPtr then_branch, StmtPtr else_branch,
         SourceLocation loc)
      : Stmt(StmtKind::if_stmt, loc), condition_(std::move(condition)),
        then_branch_(std::move(then_branch)), else_branch_(std::move(else_branch)) {}

  [[nodiscard]] const Expr& condition() const noexcept { return *condition_; }
  [[nodiscard]] const Stmt& then_branch() const noexcept { return *then_branch_; }
  [[nodiscard]] const Stmt* else_branch() const noexcept { return else_branch_.get(); }

 private:
  ExprPtr condition_;
  StmtPtr then_branch_;
  StmtPtr else_branch_;  ///< may be null
};

class MethodCallStmt final : public Stmt {
 public:
  MethodCallStmt(std::unique_ptr<CallExpr> call, SourceLocation loc)
      : Stmt(StmtKind::method_call, loc), call_(std::move(call)) {}

  [[nodiscard]] const CallExpr& call() const noexcept { return *call_; }

 private:
  std::unique_ptr<CallExpr> call_;
};

class AssignStmt final : public Stmt {
 public:
  AssignStmt(ExprPtr lhs, ExprPtr rhs, SourceLocation loc)
      : Stmt(StmtKind::assign, loc), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  [[nodiscard]] const Expr& lhs() const noexcept { return *lhs_; }
  [[nodiscard]] const Expr& rhs() const noexcept { return *rhs_; }

 private:
  ExprPtr lhs_, rhs_;
};

class VarDeclStmt final : public Stmt {
 public:
  VarDeclStmt(TypeRef type, std::string name, ExprPtr init, SourceLocation loc)
      : Stmt(StmtKind::var_decl, loc), type_(std::move(type)),
        name_(std::move(name)), init_(std::move(init)) {}

  [[nodiscard]] const TypeRef& type() const noexcept { return type_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Expr* init() const noexcept { return init_.get(); }

 private:
  TypeRef type_;
  std::string name_;
  ExprPtr init_;  ///< may be null
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

enum class DeclKind : std::uint8_t {
  header, struct_, typedef_, const_, parser, control, register_, extern_,
};

struct FieldDecl {
  std::vector<Annotation> annotations;
  TypeRef type;
  std::string name;
  SourceLocation location;
};

class Decl {
 public:
  virtual ~Decl() = default;
  Decl(const Decl&) = delete;
  Decl& operator=(const Decl&) = delete;

  [[nodiscard]] DeclKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const SourceLocation& location() const noexcept { return location_; }
  [[nodiscard]] const std::vector<Annotation>& annotations() const noexcept {
    return annotations_;
  }

 protected:
  Decl(DeclKind kind, std::string name, std::vector<Annotation> annotations,
       SourceLocation location)
      : kind_(kind), name_(std::move(name)),
        annotations_(std::move(annotations)), location_(location) {}

 private:
  DeclKind kind_;
  std::string name_;
  std::vector<Annotation> annotations_;
  SourceLocation location_;
};

using DeclPtr = std::unique_ptr<Decl>;

/// `header Name { ... }` or `struct Name { ... }` (kind distinguishes).
class StructLikeDecl final : public Decl {
 public:
  StructLikeDecl(DeclKind kind, std::string name, std::vector<FieldDecl> fields,
                 std::vector<Annotation> annotations, SourceLocation loc)
      : Decl(kind, std::move(name), std::move(annotations), loc),
        fields_(std::move(fields)) {}

  [[nodiscard]] const std::vector<FieldDecl>& fields() const noexcept {
    return fields_;
  }
  [[nodiscard]] const FieldDecl* find_field(std::string_view field_name) const;

 private:
  std::vector<FieldDecl> fields_;
};

class TypedefDecl final : public Decl {
 public:
  TypedefDecl(TypeRef aliased, std::string name, SourceLocation loc)
      : Decl(DeclKind::typedef_, std::move(name), {}, loc),
        aliased_(std::move(aliased)) {}

  [[nodiscard]] const TypeRef& aliased() const noexcept { return aliased_; }

 private:
  TypeRef aliased_;
};

class ConstDecl final : public Decl {
 public:
  ConstDecl(TypeRef type, std::string name, ExprPtr value, SourceLocation loc)
      : Decl(DeclKind::const_, std::move(name), {}, loc),
        type_(std::move(type)), value_(std::move(value)) {}

  [[nodiscard]] const TypeRef& type() const noexcept { return type_; }
  [[nodiscard]] const Expr& value() const noexcept { return *value_; }

 private:
  TypeRef type_;
  ExprPtr value_;
};

enum class ParamDir : std::uint8_t { none, in, out, inout };

struct Param {
  ParamDir direction = ParamDir::none;
  TypeRef type;
  std::string name;
  SourceLocation location;
};

/// One case of a `select` expression.
struct SelectCase {
  ExprPtr key;             ///< null = default / `_`
  std::string next_state;
  SourceLocation location;
};

/// A parser state: statements, then either a direct transition or a select.
struct ParserState {
  std::string name;
  std::vector<StmtPtr> statements;
  std::string direct_next;          ///< non-empty for `transition next;`
  std::vector<ExprPtr> select_keys; ///< non-empty for select transitions
  std::vector<SelectCase> cases;
  SourceLocation location;

  [[nodiscard]] bool has_select() const noexcept { return !select_keys.empty(); }
};

/// Terminal state names defined by the P4 core library.
inline constexpr std::string_view kAcceptState = "accept";
inline constexpr std::string_view kRejectState = "reject";

class ParserDecl final : public Decl {
 public:
  ParserDecl(std::string name, std::vector<std::string> type_params,
             std::vector<Param> params, std::vector<ParserState> states,
             std::vector<Annotation> annotations, SourceLocation loc)
      : Decl(DeclKind::parser, std::move(name), std::move(annotations), loc),
        type_params_(std::move(type_params)), params_(std::move(params)),
        states_(std::move(states)) {}

  [[nodiscard]] const std::vector<std::string>& type_params() const noexcept {
    return type_params_;
  }
  [[nodiscard]] const std::vector<Param>& params() const noexcept { return params_; }
  [[nodiscard]] const std::vector<ParserState>& states() const noexcept {
    return states_;
  }
  [[nodiscard]] const ParserState* find_state(std::string_view state_name) const;

 private:
  std::vector<std::string> type_params_;
  std::vector<Param> params_;
  std::vector<ParserState> states_;
};

class ControlDecl final : public Decl {
 public:
  ControlDecl(std::string name, std::vector<std::string> type_params,
              std::vector<Param> params, std::vector<StmtPtr> locals,
              std::unique_ptr<BlockStmt> apply,
              std::vector<Annotation> annotations, SourceLocation loc)
      : Decl(DeclKind::control, std::move(name), std::move(annotations), loc),
        type_params_(std::move(type_params)), params_(std::move(params)),
        locals_(std::move(locals)), apply_(std::move(apply)) {}

  [[nodiscard]] const std::vector<std::string>& type_params() const noexcept {
    return type_params_;
  }
  [[nodiscard]] const std::vector<Param>& params() const noexcept { return params_; }
  [[nodiscard]] const std::vector<StmtPtr>& locals() const noexcept { return locals_; }
  [[nodiscard]] const BlockStmt& apply() const noexcept { return *apply_; }

 private:
  std::vector<std::string> type_params_;
  std::vector<Param> params_;
  std::vector<StmtPtr> locals_;
  std::unique_ptr<BlockStmt> apply_;
};

/// `register<bit<W>>(SIZE) name;` — stateful storage, *descriptive only*
/// (§5: "these constructs are used only as a descriptive mechanism and are
/// not mapped to hardware resources").  The compiler records them so a NIC
/// can declare stateful offload context; they never affect layout selection.
class RegisterDecl final : public Decl {
 public:
  RegisterDecl(TypeRef value_type, std::uint64_t size, std::string name,
               std::vector<Annotation> annotations, SourceLocation loc)
      : Decl(DeclKind::register_, std::move(name), std::move(annotations), loc),
        value_type_(std::move(value_type)), size_(size) {}

  [[nodiscard]] const TypeRef& value_type() const noexcept { return value_type_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

 private:
  TypeRef value_type_;
  std::uint64_t size_;
};

/// `extern Name;` or `extern Name { ...opaque body... }` — an externally
/// implemented feature referenced by name (§5: "P4 enables access to more
/// complex offloads through extern").  Bodies are recorded verbatim but not
/// interpreted.
class ExternDecl final : public Decl {
 public:
  ExternDecl(std::string name, std::string opaque_body,
             std::vector<Annotation> annotations, SourceLocation loc)
      : Decl(DeclKind::extern_, std::move(name), std::move(annotations), loc),
        opaque_body_(std::move(opaque_body)) {}

  [[nodiscard]] const std::string& opaque_body() const noexcept {
    return opaque_body_;
  }

 private:
  std::string opaque_body_;
};

// ---------------------------------------------------------------------------
// Program
// ---------------------------------------------------------------------------

class Program {
 public:
  Program() = default;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  void add(DeclPtr decl) { decls_.push_back(std::move(decl)); }

  [[nodiscard]] const std::vector<DeclPtr>& decls() const noexcept { return decls_; }

  /// Finders return nullptr when absent; by-name lookup over all decls.
  [[nodiscard]] const Decl* find(std::string_view name) const;
  [[nodiscard]] const StructLikeDecl* find_header(std::string_view name) const;
  [[nodiscard]] const StructLikeDecl* find_struct(std::string_view name) const;
  [[nodiscard]] const ParserDecl* find_parser(std::string_view name) const;
  [[nodiscard]] const ControlDecl* find_control(std::string_view name) const;
  [[nodiscard]] const TypedefDecl* find_typedef(std::string_view name) const;
  [[nodiscard]] const ConstDecl* find_const(std::string_view name) const;
  [[nodiscard]] const RegisterDecl* find_register(std::string_view name) const;
  [[nodiscard]] const ExternDecl* find_extern(std::string_view name) const;

  /// All stateful/extern declarations (for interface reports).
  [[nodiscard]] std::vector<const RegisterDecl*> registers() const;
  [[nodiscard]] std::vector<const ExternDecl*> externs() const;

  /// All controls / parsers (for "enumerate every deparser" workflows).
  [[nodiscard]] std::vector<const ControlDecl*> controls() const;
  [[nodiscard]] std::vector<const ParserDecl*> parsers() const;

 private:
  std::vector<DeclPtr> decls_;
};

}  // namespace opendesc::p4
