#include "p4/pretty.hpp"

#include <sstream>

#include "common/error.hpp"

namespace opendesc::p4 {

namespace {

std::string pad(int indent) {
  return std::string(static_cast<std::size_t>(indent) * 4, ' ');
}

/// Parenthesization: we print conservative parentheses around nested binary
/// expressions so the output re-parses to the identical tree regardless of
/// precedence subtleties.
void print_expr(std::ostringstream& out, const Expr& expr) {
  switch (expr.kind()) {
    case ExprKind::int_literal: {
      const auto& lit = static_cast<const IntLiteral&>(expr);
      if (lit.width()) {
        out << *lit.width() << 'w';
      }
      out << lit.value();
      break;
    }
    case ExprKind::bool_literal:
      out << (static_cast<const BoolLiteral&>(expr).value() ? "true" : "false");
      break;
    case ExprKind::string_literal:
      out << '"' << static_cast<const StringLiteral&>(expr).value() << '"';
      break;
    case ExprKind::identifier:
      out << static_cast<const Identifier&>(expr).name();
      break;
    case ExprKind::member: {
      const auto& member = static_cast<const MemberExpr&>(expr);
      print_expr(out, member.base());
      out << '.' << member.member();
      break;
    }
    case ExprKind::unary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      out << to_string(unary.op());
      const bool needs_parens = unary.operand().kind() == ExprKind::binary;
      if (needs_parens) out << '(';
      print_expr(out, unary.operand());
      if (needs_parens) out << ')';
      break;
    }
    case ExprKind::binary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      const auto print_side = [&](const Expr& side) {
        const bool needs_parens = side.kind() == ExprKind::binary;
        if (needs_parens) out << '(';
        print_expr(out, side);
        if (needs_parens) out << ')';
      };
      print_side(binary.lhs());
      out << ' ' << to_string(binary.op()) << ' ';
      print_side(binary.rhs());
      break;
    }
    case ExprKind::call: {
      const auto& call = static_cast<const CallExpr&>(expr);
      print_expr(out, call.callee());
      out << '(';
      for (std::size_t i = 0; i < call.args().size(); ++i) {
        if (i != 0) out << ", ";
        print_expr(out, *call.args()[i]);
      }
      out << ')';
      break;
    }
  }
}

void print_annotations(std::ostringstream& out,
                       const std::vector<Annotation>& annotations, int indent) {
  for (const Annotation& a : annotations) {
    out << pad(indent) << '@' << a.name;
    if (!a.args.empty()) {
      out << '(';
      for (std::size_t i = 0; i < a.args.size(); ++i) {
        if (i != 0) out << ", ";
        print_expr(out, *a.args[i]);
      }
      out << ')';
    }
    out << '\n';
  }
}

void print_stmt(std::ostringstream& out, const Stmt& stmt, int indent) {
  switch (stmt.kind()) {
    case StmtKind::block: {
      out << pad(indent) << "{\n";
      for (const StmtPtr& s : static_cast<const BlockStmt&>(stmt).statements()) {
        print_stmt(out, *s, indent + 1);
      }
      out << pad(indent) << "}\n";
      break;
    }
    case StmtKind::if_stmt: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      out << pad(indent) << "if (";
      print_expr(out, if_stmt.condition());
      out << ")\n";
      print_stmt(out, if_stmt.then_branch(), indent);
      if (if_stmt.else_branch() != nullptr) {
        out << pad(indent) << "else\n";
        print_stmt(out, *if_stmt.else_branch(), indent);
      }
      break;
    }
    case StmtKind::method_call: {
      out << pad(indent);
      print_expr(out, static_cast<const MethodCallStmt&>(stmt).call());
      out << ";\n";
      break;
    }
    case StmtKind::assign: {
      const auto& assign = static_cast<const AssignStmt&>(stmt);
      out << pad(indent);
      print_expr(out, assign.lhs());
      out << " = ";
      print_expr(out, assign.rhs());
      out << ";\n";
      break;
    }
    case StmtKind::var_decl: {
      const auto& var = static_cast<const VarDeclStmt&>(stmt);
      out << pad(indent) << var.type().to_string() << ' ' << var.name();
      if (var.init() != nullptr) {
        out << " = ";
        print_expr(out, *var.init());
      }
      out << ";\n";
      break;
    }
  }
}

void print_params(std::ostringstream& out, const std::vector<Param>& params) {
  out << '(';
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i != 0) out << ", ";
    const Param& p = params[i];
    switch (p.direction) {
      case ParamDir::in: out << "in "; break;
      case ParamDir::out: out << "out "; break;
      case ParamDir::inout: out << "inout "; break;
      case ParamDir::none: break;
    }
    out << p.type.to_string() << ' ' << p.name;
  }
  out << ')';
}

void print_type_params(std::ostringstream& out,
                       const std::vector<std::string>& type_params) {
  if (type_params.empty()) {
    return;
  }
  out << '<';
  for (std::size_t i = 0; i < type_params.size(); ++i) {
    if (i != 0) out << ", ";
    out << type_params[i];
  }
  out << '>';
}

void print_decl(std::ostringstream& out, const Decl& decl) {
  print_annotations(out, decl.annotations(), 0);
  switch (decl.kind()) {
    case DeclKind::header:
    case DeclKind::struct_: {
      const auto& s = static_cast<const StructLikeDecl&>(decl);
      out << (decl.kind() == DeclKind::header ? "header " : "struct ")
          << s.name() << " {\n";
      for (const FieldDecl& f : s.fields()) {
        print_annotations(out, f.annotations, 1);
        out << pad(1) << f.type.to_string() << ' ' << f.name << ";\n";
      }
      out << "}\n";
      break;
    }
    case DeclKind::typedef_: {
      const auto& td = static_cast<const TypedefDecl&>(decl);
      out << "typedef " << td.aliased().to_string() << ' ' << td.name() << ";\n";
      break;
    }
    case DeclKind::const_: {
      const auto& c = static_cast<const ConstDecl&>(decl);
      out << "const " << c.type().to_string() << ' ' << c.name() << " = ";
      print_expr(out, c.value());
      out << ";\n";
      break;
    }
    case DeclKind::register_: {
      const auto& r = static_cast<const RegisterDecl&>(decl);
      out << "register<" << r.value_type().to_string() << ">(" << r.size()
          << ") " << r.name() << ";\n";
      break;
    }
    case DeclKind::extern_: {
      const auto& e = static_cast<const ExternDecl&>(decl);
      out << "extern " << e.name();
      if (e.opaque_body().empty()) {
        out << ";\n";
      } else {
        out << " { " << e.opaque_body() << " }\n";
      }
      break;
    }
    case DeclKind::parser: {
      const auto& p = static_cast<const ParserDecl&>(decl);
      out << "parser " << p.name();
      print_type_params(out, p.type_params());
      print_params(out, p.params());
      out << " {\n";
      for (const ParserState& state : p.states()) {
        out << pad(1) << "state " << state.name << " {\n";
        for (const StmtPtr& s : state.statements) {
          print_stmt(out, *s, 2);
        }
        if (state.has_select()) {
          out << pad(2) << "transition select(";
          for (std::size_t i = 0; i < state.select_keys.size(); ++i) {
            if (i != 0) out << ", ";
            print_expr(out, *state.select_keys[i]);
          }
          out << ") {\n";
          for (const SelectCase& c : state.cases) {
            out << pad(3);
            if (c.key == nullptr) {
              out << "default";
            } else {
              print_expr(out, *c.key);
            }
            out << ": " << c.next_state << ";\n";
          }
          out << pad(2) << "};\n";
        } else if (!state.direct_next.empty()) {
          out << pad(2) << "transition " << state.direct_next << ";\n";
        }
        out << pad(1) << "}\n";
      }
      out << "}\n";
      break;
    }
    case DeclKind::control: {
      const auto& c = static_cast<const ControlDecl&>(decl);
      out << "control " << c.name();
      print_type_params(out, c.type_params());
      print_params(out, c.params());
      out << " {\n";
      for (const StmtPtr& local : c.locals()) {
        print_stmt(out, *local, 1);
      }
      out << pad(1) << "apply\n";
      print_stmt(out, c.apply(), 1);
      out << "}\n";
      break;
    }
  }
}

}  // namespace

std::string to_source(const Program& program) {
  std::ostringstream out;
  for (std::size_t i = 0; i < program.decls().size(); ++i) {
    if (i != 0) out << '\n';
    print_decl(out, *program.decls()[i]);
  }
  return out.str();
}

std::string to_source(const Decl& decl) {
  std::ostringstream out;
  print_decl(out, decl);
  return out.str();
}

std::string to_source(const Stmt& stmt, int indent) {
  std::ostringstream out;
  print_stmt(out, stmt, indent);
  return out.str();
}

std::string to_source(const Expr& expr) {
  std::ostringstream out;
  print_expr(out, expr);
  return out.str();
}

}  // namespace opendesc::p4
