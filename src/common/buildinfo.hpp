// Build provenance baked in at configure time: which commit, compiler,
// build type and sanitizer produced this binary.  The observability
// server's /buildinfo route and `opendesc --version` surface it, so an
// operator correlating a flight capture with a deploy can tell exactly
// what was running without reaching for the package manager.
#pragma once

#include <string>

namespace opendesc {

struct BuildInfo {
  const char* version;     ///< project version (CMake PROJECT_VERSION)
  const char* git_sha;     ///< HEAD commit at configure time ("unknown" outside git)
  const char* git_dirty;   ///< "true" when the work tree had local edits
  const char* compiler;    ///< compiler id + version
  const char* build_type;  ///< CMAKE_BUILD_TYPE
  const char* sanitizer;   ///< OPENDESC_SANITIZE (OFF, address, thread)
  const char* cxx_standard;
};

/// The constants configure_file stamped into buildinfo.cpp.
[[nodiscard]] const BuildInfo& build_info() noexcept;

/// The same record as a JSON object (the /buildinfo response body).
[[nodiscard]] std::string build_info_json();

}  // namespace opendesc
