// Byte-order and bit-slice utilities shared across OpenDesc.
//
// Completion records and descriptors are raw byte streams; every module that
// touches them (the simulator's serializer, the generated accessors, the
// runtime facade) goes through these helpers so that bit-level layout
// semantics are defined in exactly one place.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace opendesc {

/// Endianness of a multi-byte field inside a descriptor/completion record.
/// Intel-style descriptors are little-endian; mlx5 CQE fields are big-endian.
enum class Endian : std::uint8_t {
  little,
  big,
};

/// Returns "little" / "big".
[[nodiscard]] std::string to_string(Endian e);

// ---------------------------------------------------------------------------
// Whole-byte loads/stores (bounds are the caller's responsibility; all
// accessors used in the fast path take pre-validated spans).
// ---------------------------------------------------------------------------

[[nodiscard]] std::uint16_t load_le16(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint32_t load_le32(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint64_t load_le64(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint16_t load_be16(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint32_t load_be32(const std::uint8_t* p) noexcept;
[[nodiscard]] std::uint64_t load_be64(const std::uint8_t* p) noexcept;

void store_le16(std::uint8_t* p, std::uint16_t v) noexcept;
void store_le32(std::uint8_t* p, std::uint32_t v) noexcept;
void store_le64(std::uint8_t* p, std::uint64_t v) noexcept;
void store_be16(std::uint8_t* p, std::uint16_t v) noexcept;
void store_be32(std::uint8_t* p, std::uint32_t v) noexcept;
void store_be64(std::uint8_t* p, std::uint64_t v) noexcept;

// ---------------------------------------------------------------------------
// Arbitrary bit slices.
//
// A field is addressed by (byte_offset, bit_offset, bit_width) where
// bit_offset counts from the LSB of the byte at byte_offset when the field is
// little-endian, and from the MSB when big-endian (matching how the
// respective datasheets draw their layouts). bit_width <= 64.
// ---------------------------------------------------------------------------

/// Reads `bit_width` bits starting at `byte_offset`/`bit_offset` from `buf`.
/// Throws std::out_of_range if the slice does not fit in `buf`.
[[nodiscard]] std::uint64_t read_bits(std::span<const std::uint8_t> buf,
                                      std::size_t byte_offset,
                                      std::size_t bit_offset,
                                      std::size_t bit_width,
                                      Endian endian);

/// Writes the low `bit_width` bits of `value` at the given position.
/// Other bits in the touched bytes are preserved.
/// Throws std::out_of_range if the slice does not fit in `buf`.
void write_bits(std::span<std::uint8_t> buf,
                std::size_t byte_offset,
                std::size_t bit_offset,
                std::size_t bit_width,
                Endian endian,
                std::uint64_t value);

/// Unchecked variants used on the hot path after a one-time layout
/// verification pass (see core::LayoutVerifier).
[[nodiscard]] std::uint64_t read_bits_unchecked(const std::uint8_t* buf,
                                                std::size_t byte_offset,
                                                std::size_t bit_offset,
                                                std::size_t bit_width,
                                                Endian endian) noexcept;

void write_bits_unchecked(std::uint8_t* buf,
                          std::size_t byte_offset,
                          std::size_t bit_offset,
                          std::size_t bit_width,
                          Endian endian,
                          std::uint64_t value) noexcept;

/// Mask with the low `width` bits set; width == 64 yields all-ones.
[[nodiscard]] constexpr std::uint64_t low_mask(std::size_t width) noexcept {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Hex dump ("0a 1b ..." with 16 bytes per line) used in diagnostics/tests.
[[nodiscard]] std::string hex_dump(std::span<const std::uint8_t> buf);

/// Number of bytes needed to hold `bits` bits.
[[nodiscard]] constexpr std::size_t bits_to_bytes(std::size_t bits) noexcept {
  return (bits + 7) / 8;
}

}  // namespace opendesc
