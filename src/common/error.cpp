#include "common/error.hpp"

namespace opendesc {

std::string to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::lex: return "lex";
    case ErrorKind::parse: return "parse";
    case ErrorKind::type: return "type";
    case ErrorKind::semantic: return "semantic";
    case ErrorKind::layout: return "layout";
    case ErrorKind::unsatisfiable: return "unsatisfiable";
    case ErrorKind::verification: return "verification";
    case ErrorKind::simulation: return "simulation";
    case ErrorKind::device: return "device";
    case ErrorKind::io: return "io";
    case ErrorKind::internal: return "internal";
  }
  return "unknown";
}

}  // namespace opendesc
