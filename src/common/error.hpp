// Error taxonomy shared by all OpenDesc modules.
//
// Per C++ Core Guidelines E.2/E.14 we throw exceptions derived from a single
// project root so callers can catch at the right granularity.  Each error
// carries a machine-readable kind used by tests and by the CLI front-ends.
#pragma once

#include <stdexcept>
#include <string>

namespace opendesc {

/// Broad classification of OpenDesc failures.
enum class ErrorKind {
  lex,            ///< P4 lexer failure (bad character, unterminated literal...)
  parse,          ///< P4 syntax error
  type,           ///< P4 type/annotation checking error
  semantic,       ///< unknown @semantic name, width mismatch with registry...
  layout,         ///< generated layout inconsistent (overlap, out of bounds)
  unsatisfiable,  ///< Eq. 1 has no finite-cost path for the intent
  verification,   ///< generated accessor failed the bounds verifier
  simulation,     ///< ring/DMA invariant violated at run time
  device,         ///< device unresponsive/misbehaving after bounded recovery
  io,             ///< file or OS failure
  internal,       ///< invariant broken inside the compiler itself
};

/// Returns the kind as a stable lowercase identifier (used in diagnostics).
[[nodiscard]] std::string to_string(ErrorKind kind);

/// Root of the OpenDesc exception hierarchy.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(to_string(kind) + " error: " + message), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

}  // namespace opendesc
