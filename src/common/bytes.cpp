#include "common/bytes.hpp"

#include <stdexcept>

namespace opendesc {

std::string to_string(Endian e) {
  return e == Endian::little ? "little" : "big";
}

std::uint16_t load_le16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t{p[1]} << 8));
}

std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  return std::uint64_t{load_le32(p)} | (std::uint64_t{load_le32(p + 4)} << 32);
}

std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  return (std::uint64_t{load_be32(p)} << 32) | std::uint64_t{load_be32(p + 4)};
}

void store_le16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  store_le16(p, static_cast<std::uint16_t>(v));
  store_le16(p + 2, static_cast<std::uint16_t>(v >> 16));
}

void store_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_le32(p, static_cast<std::uint32_t>(v));
  store_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  store_be16(p, static_cast<std::uint16_t>(v >> 16));
  store_be16(p + 2, static_cast<std::uint16_t>(v));
}

void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

namespace {

// Validates slice geometry shared by the checked read/write paths.
// A slice must start within the first byte (bit_offset < 8) and the loaded
// window (bit_offset + bit_width bits) must fit in a 64-bit accumulator;
// 64-bit fields therefore have to be byte-aligned.
void check_slice(std::size_t buf_size, std::size_t byte_offset,
                 std::size_t bit_offset, std::size_t bit_width) {
  if (bit_offset >= 8) {
    throw std::invalid_argument("bit_offset must be < 8 (normalize into byte_offset)");
  }
  if (bit_width == 0 || bit_width > 64) {
    throw std::invalid_argument("bit_width must be in [1, 64]");
  }
  if (bit_offset + bit_width > 64) {
    throw std::invalid_argument("bit slice window exceeds 64 bits; 64-bit fields must be byte-aligned");
  }
  const std::size_t span_bytes = bits_to_bytes(bit_offset + bit_width);
  if (byte_offset > buf_size || span_bytes > buf_size - byte_offset) {
    throw std::out_of_range("bit slice out of buffer bounds");
  }
}

}  // namespace

std::uint64_t read_bits_unchecked(const std::uint8_t* buf,
                                  std::size_t byte_offset,
                                  std::size_t bit_offset,
                                  std::size_t bit_width,
                                  Endian endian) noexcept {
  const std::size_t span_bytes = bits_to_bytes(bit_offset + bit_width);
  std::uint64_t acc = 0;
  if (endian == Endian::little) {
    for (std::size_t i = 0; i < span_bytes; ++i) {
      acc |= std::uint64_t{buf[byte_offset + i]} << (8 * i);
    }
    return (acc >> bit_offset) & low_mask(bit_width);
  }
  for (std::size_t i = 0; i < span_bytes; ++i) {
    acc = (acc << 8) | buf[byte_offset + i];
  }
  const std::size_t total_bits = 8 * span_bytes;
  return (acc >> (total_bits - bit_offset - bit_width)) & low_mask(bit_width);
}

void write_bits_unchecked(std::uint8_t* buf,
                          std::size_t byte_offset,
                          std::size_t bit_offset,
                          std::size_t bit_width,
                          Endian endian,
                          std::uint64_t value) noexcept {
  const std::size_t span_bytes = bits_to_bytes(bit_offset + bit_width);
  const std::uint64_t mask = low_mask(bit_width);
  value &= mask;
  std::uint64_t acc = 0;
  if (endian == Endian::little) {
    for (std::size_t i = 0; i < span_bytes; ++i) {
      acc |= std::uint64_t{buf[byte_offset + i]} << (8 * i);
    }
    acc = (acc & ~(mask << bit_offset)) | (value << bit_offset);
    for (std::size_t i = 0; i < span_bytes; ++i) {
      buf[byte_offset + i] = static_cast<std::uint8_t>(acc >> (8 * i));
    }
    return;
  }
  for (std::size_t i = 0; i < span_bytes; ++i) {
    acc = (acc << 8) | buf[byte_offset + i];
  }
  const std::size_t shift = 8 * span_bytes - bit_offset - bit_width;
  acc = (acc & ~(mask << shift)) | (value << shift);
  for (std::size_t i = 0; i < span_bytes; ++i) {
    buf[byte_offset + i] =
        static_cast<std::uint8_t>(acc >> (8 * (span_bytes - 1 - i)));
  }
}

std::uint64_t read_bits(std::span<const std::uint8_t> buf,
                        std::size_t byte_offset,
                        std::size_t bit_offset,
                        std::size_t bit_width,
                        Endian endian) {
  check_slice(buf.size(), byte_offset, bit_offset, bit_width);
  return read_bits_unchecked(buf.data(), byte_offset, bit_offset, bit_width, endian);
}

void write_bits(std::span<std::uint8_t> buf,
                std::size_t byte_offset,
                std::size_t bit_offset,
                std::size_t bit_width,
                Endian endian,
                std::uint64_t value) {
  check_slice(buf.size(), byte_offset, bit_offset, bit_width);
  write_bits_unchecked(buf.data(), byte_offset, bit_offset, bit_width, endian, value);
}

std::string hex_dump(std::span<const std::uint8_t> buf) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(buf.size() * 3 + buf.size() / 16 + 1);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (i != 0) {
      out.push_back(i % 16 == 0 ? '\n' : ' ');
    }
    out.push_back(kHex[buf[i] >> 4]);
    out.push_back(kHex[buf[i] & 0xF]);
  }
  return out;
}

}  // namespace opendesc
