// Deterministic, seedable PRNG used by workload generators and property
// tests.  We avoid std::mt19937's size and keep splitmix64 + xoshiro256**,
// whose output is reproducible across platforms and standard library
// versions (std::uniform_int_distribution is not portable across stdlibs).
#pragma once

#include <array>
#include <cstdint>

namespace opendesc {

/// splitmix64: used to seed the main generator and as a cheap stateless hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  /// Uniform 64-bit value.
  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) via Lemire's multiply-shift reduction.
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) {
      return 0;
    }
    // 128-bit multiply keeps the reduction unbiased enough for workloads.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform value in [lo, hi] inclusive.
  constexpr std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + bounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  constexpr bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace opendesc
