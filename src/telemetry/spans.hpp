// Causal packet tracing: sampled descriptor-lifecycle spans.
//
// Counters say *how much*, the trace ring says *what happened*; spans say
// *which packet, through which path*.  The dispatch thread decides — head
// based, 1-in-N — at TX post whether a packet is traced, mints a 64-bit
// trace id (splitmix64 over queue and producer sequence, so a fixed
// workload seed yields the same ids run after run), and the id rides the
// packet through the simulator and the hardened loop.  Every stage a
// sampled descriptor crosses records one span into the recording thread's
// SpanRing: tx_post → steer → handoff on the dispatch lane, then ring →
// nic_parse → completion_write → validate → consume on the owning worker
// lane, with child `softnic` spans per recovered semantic and terminal
// `quarantine` spans when validation rejects the record.
//
// Threading follows the TraceRing/ProfileShard discipline: one writer per
// ring (the owning datapath thread — the per-queue NicSimulator records
// into its worker's ring because rx() runs on that worker), snapshot() is
// wait-free for the writer and never returns a torn span.  Epoch and queue
// are writer-owned ring state so a layout cutover re-stamps every later
// span without widening the record call.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace opendesc::telemetry {

/// Lifecycle stages a sampled descriptor can record.  The first eight are
/// the linear pipeline (superset of the profiler's datapath stages);
/// `softnic` and `quarantine` are child/terminal kinds that attach to the
/// preceding pipeline span.
enum class SpanStage : std::uint8_t {
  tx_post,           ///< dispatch: descriptor enters the pipeline (instant)
  steer,             ///< dispatch: RSS classify + queue selection
  handoff,           ///< dispatch: SPSC push toward the owning worker
  ring,              ///< worker: rx feed of the frame into the device
  nic_parse,         ///< device: header parse + semantic compute + serialize
  completion_write,  ///< device: DMA of the record + completion-ring push
  validate,          ///< worker: schema/bounds validation of the record
  consume,           ///< worker: accessor reads of the wanted semantics
  softnic,           ///< child: one semantic recovered in software (detail: id)
  quarantine,        ///< terminal: record dead-lettered (detail: verdict)
};

inline constexpr std::size_t kSpanStageCount = 10;

[[nodiscard]] std::string_view to_string(SpanStage stage) noexcept;

/// Child/terminal kinds parent on the preceding pipeline span instead of
/// extending the linear chain.
[[nodiscard]] constexpr bool is_child_stage(SpanStage stage) noexcept {
  return stage == SpanStage::softnic || stage == SpanStage::quarantine;
}

/// One reconstructed span (reader-side view of a ring slot).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  double start_ns = 0.0;     ///< profile_now_ns() wall clock
  double duration_ns = 0.0;
  SpanStage stage{};
  std::uint8_t detail = 0;   ///< stage-specific: semantic id, verdict, ...
  std::uint16_t queue = 0;   ///< recording lane (== queues for dispatch)
  std::uint32_t epoch = 0;   ///< layout epoch the span executed under
  std::uint64_t sequence = 0;  ///< ring-local logical time
};

/// Sampling cadence guard, mirroring the profiler stride clamp: 0 stays 0
/// (tracing off); anything else is rounded up to a power of two so the
/// hot-path decision is one mask test, and clamped to [1, 2^20].
[[nodiscard]] inline std::uint64_t clamp_trace_sample(std::uint64_t n) noexcept {
  if (n == 0) {
    return 0;
  }
  const std::uint64_t pow2 = std::bit_ceil(n);
  return pow2 > (1ULL << 20) ? (1ULL << 20) : pow2;
}

/// Deterministic trace-id mint: splitmix64 over (seed, queue, producer
/// sequence).  Never returns 0 — a zero trace id means "unsampled"
/// everywhere a packet or event carries one.
[[nodiscard]] constexpr std::uint64_t mint_trace_id(
    std::uint64_t seed, std::uint64_t queue, std::uint64_t sequence) noexcept {
  std::uint64_t state = seed ^ (queue * 0x9E3779B97F4A7C15ULL) ^
                        (sequence * 0xBF58476D1CE4E5B9ULL);
  const std::uint64_t id = splitmix64(state);
  return id == 0 ? 1 : id;
}

/// 16-hex-digit lowercase rendering of a trace id (the form exemplars and
/// every JSON export use).
[[nodiscard]] std::string trace_id_hex(std::uint64_t id);

/// Single-writer bounded span ring (the TraceRing protocol widened to a
/// four-word slot).  When it wraps, the oldest spans are overwritten and
/// counted as dropped; per-stage totals survive overwrites.
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity = 2048)
      : buffer_(std::bit_ceil(capacity == 0 ? std::size_t{1} : capacity)),
        mask_(buffer_.size() - 1) {}

  SpanRing(SpanRing&& other) noexcept
      : buffer_(std::move(other.buffer_)),
        mask_(other.mask_),
        queue_(other.queue_),
        epoch_(other.epoch_) {
    recorded_.store(other.recorded_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    writing_.store(other.writing_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    base_.store(other.base_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    last_trace_.store(other.last_trace_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    for (std::size_t s = 0; s < kSpanStageCount; ++s) {
      by_stage_[s].store(other.by_stage_[s].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    }
  }
  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// Lane index stamped on every span (writer-thread state; set once at
  /// wiring time, before the writer starts).
  void set_queue(std::uint16_t queue) noexcept { queue_ = queue; }
  [[nodiscard]] std::uint16_t queue() const noexcept { return queue_; }

  /// Layout epoch stamped on every later span.  Writer-thread only — the
  /// worker calls this at cutover, the same thread that records.
  void set_epoch(std::uint32_t epoch) noexcept { epoch_ = epoch; }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

  /// Appends one span; overwrites (and drop-counts) the oldest when full.
  /// Single writer only; same publication protocol as TraceRing::record.
  void record(SpanStage stage, std::uint64_t trace_id, double start_ns,
              double duration_ns, std::uint8_t detail = 0) noexcept {
    const std::size_t s = static_cast<std::size_t>(stage);
    by_stage_[s].store(by_stage_[s].load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    last_trace_.store(trace_id, std::memory_order_relaxed);
    const std::uint64_t index = recorded_.load(std::memory_order_relaxed);
    writing_.store(index + 1, std::memory_order_relaxed);
    Slot& slot = buffer_[static_cast<std::size_t>(index) & mask_];
    slot.trace.store(trace_id, std::memory_order_release);
    slot.start.store(std::bit_cast<std::uint64_t>(start_ns),
                     std::memory_order_release);
    slot.duration.store(std::bit_cast<std::uint64_t>(duration_ns),
                        std::memory_order_release);
    slot.meta.store(pack_meta(stage, detail, queue_, epoch_),
                    std::memory_order_release);
    recorded_.store(index + 1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.size(); }
  /// Spans currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t since = recorded();
    return static_cast<std::size_t>(
        since < buffer_.size() ? since : buffer_.size());
  }
  /// Total record() calls since construction or the last clear().
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_acquire) -
           base_.load(std::memory_order_acquire);
  }
  /// Spans overwritten by ring wrap (recorded - retained).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded() - size();
  }
  /// Per-stage totals, counted even for spans later overwritten.
  [[nodiscard]] std::uint64_t count(SpanStage stage) const noexcept {
    return by_stage_[static_cast<std::size_t>(stage)].load(
        std::memory_order_relaxed);
  }
  /// The most recently recorded trace id (0 before any span) — what alert
  /// flight captures stamp when they fire without a specific packet.
  [[nodiscard]] std::uint64_t last_trace_id() const noexcept {
    return last_trace_.load(std::memory_order_relaxed);
  }

  /// Retained spans, oldest first.  Safe against a concurrently recording
  /// writer: spans the writer overwrote mid-copy are discarded, never
  /// returned torn.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Retained spans with ring sequence >= `since`, oldest first (the
  /// incremental window /spans?follow streams).
  [[nodiscard]] std::vector<SpanRecord> since(std::uint64_t sequence) const;

  /// Forgets retained spans and per-stage totals by advancing the epoch
  /// base (storage is not zeroed).  Writer-quiesced operation.
  void clear() noexcept {
    base_.store(recorded_.load(std::memory_order_relaxed),
                std::memory_order_release);
    for (std::size_t s = 0; s < kSpanStageCount; ++s) {
      by_stage_[s].store(0, std::memory_order_relaxed);
    }
  }

 private:
  /// One span packed into four atomic words; the slot's ring index doubles
  /// as the span sequence, so it is not stored.
  struct Slot {
    std::atomic<std::uint64_t> trace{0};
    std::atomic<std::uint64_t> start{0};     ///< bit_cast double
    std::atomic<std::uint64_t> duration{0};  ///< bit_cast double
    std::atomic<std::uint64_t> meta{0};      ///< stage|detail|queue|epoch
  };

  [[nodiscard]] static std::uint64_t pack_meta(SpanStage stage,
                                               std::uint8_t detail,
                                               std::uint16_t queue,
                                               std::uint32_t epoch) noexcept {
    return static_cast<std::uint64_t>(static_cast<std::uint8_t>(stage)) |
           (static_cast<std::uint64_t>(detail) << 8) |
           (static_cast<std::uint64_t>(queue) << 16) |
           (static_cast<std::uint64_t>(epoch) << 32);
  }

  std::vector<Slot> buffer_;
  std::size_t mask_;
  std::uint16_t queue_ = 0;
  std::uint32_t epoch_ = 0;
  std::atomic<std::uint64_t> recorded_{0};  ///< completed-write cursor
  std::atomic<std::uint64_t> writing_{0};   ///< started-write cursor
  std::atomic<std::uint64_t> base_{0};      ///< clear() epoch watermark
  std::atomic<std::uint64_t> last_trace_{0};
  std::array<std::atomic<std::uint64_t>, kSpanStageCount> by_stage_{};
};

/// One reconstructed trace: every retained span that shares a trace id,
/// ordered by start time (ties broken by stage order, which follows the
/// pipeline).
struct TraceView {
  std::uint64_t trace_id = 0;
  std::vector<SpanRecord> spans;
};

/// Groups a mixed span dump into traces ordered by first-span start time.
/// `max_traces` keeps only the newest N when nonzero.
[[nodiscard]] std::vector<TraceView> group_traces(std::vector<SpanRecord> spans,
                                                  std::size_t max_traces = 0);

// --- Renderers --------------------------------------------------------------
// `dispatch_queue` is the lane index that means "dispatch" (the sink's
// worker-queue count); every format labels it instead of numbering it.

/// Native JSON: traces with per-span stage/lane/epoch/detail/timing.
[[nodiscard]] std::string render_spans_json(const std::vector<TraceView>& traces,
                                            std::string_view tenant,
                                            std::size_t dispatch_queue);
/// OTLP/JSON ExportTraceServiceRequest — an OpenTelemetry collector's
/// `/v1/traces` endpoint ingests the body unmodified.
[[nodiscard]] std::string render_spans_otlp(const std::vector<TraceView>& traces,
                                            std::string_view tenant,
                                            std::size_t dispatch_queue);
/// Chrome/Perfetto trace-event JSON for drag-and-drop into a trace UI.
[[nodiscard]] std::string render_spans_perfetto(
    const std::vector<TraceView>& traces, std::string_view tenant,
    std::size_t dispatch_queue);

}  // namespace opendesc::telemetry
