#include "telemetry/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace opendesc::telemetry {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

bool valid_label_name(std::string_view name) {
  if (name.empty() || name.front() == ':') {
    return false;
  }
  return valid_metric_name(name);
}

}  // namespace

HistogramData& HistogramData::operator+=(const HistogramData& other) noexcept {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  return *this;
}

HistogramData& HistogramData::operator-=(const HistogramData& other) noexcept {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] -= other.buckets[i];
  }
  count -= other.count;
  sum -= other.sum;
  return *this;
}

std::uint64_t HistogramData::quantile_upper_bound(double q) const noexcept {
  if (count == 0) {
    return 0;
  }
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target) {
      return histogram_upper_bound(i);
    }
  }
  return histogram_upper_bound(kHistogramBuckets - 1);
}

void Histogram::Shard::observe(std::uint64_t value) noexcept {
  ++local_.buckets[histogram_bucket(value)];
  ++local_.count;
  local_.sum += value;

  // Seqlock publish (one writer per shard): odd epoch marks the payload as
  // in flux, even epoch seals it.
  const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
  epoch_.store(e + 1, std::memory_order_release);
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    words_[i].store(local_.buckets[i], std::memory_order_relaxed);
  }
  words_[kHistogramBuckets].store(local_.count, std::memory_order_relaxed);
  words_[kHistogramBuckets + 1].store(local_.sum, std::memory_order_relaxed);
  epoch_.store(e + 2, std::memory_order_release);
}

HistogramData Histogram::Shard::snapshot() const noexcept {
  HistogramData out;
  for (;;) {
    const std::uint64_t e1 = epoch_.load(std::memory_order_acquire);
    if (e1 & 1) {
      continue;  // writer mid-publish
    }
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      out.buckets[i] = words_[i].load(std::memory_order_relaxed);
    }
    out.count = words_[kHistogramBuckets].load(std::memory_order_relaxed);
    out.sum = words_[kHistogramBuckets + 1].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (epoch_.load(std::memory_order_acquire) == e1) {
      return out;
    }
  }
}

Histogram::Histogram(std::size_t shards)
    : exemplars_(std::make_unique<ExemplarSlot[]>(kHistogramBuckets)) {
  shards_.reserve(std::max<std::size_t>(1, shards));
  for (std::size_t i = 0; i < std::max<std::size_t>(1, shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void Histogram::record_exemplar(std::uint64_t value,
                                std::uint64_t trace_id) noexcept {
  ExemplarSlot& slot = exemplars_[histogram_bucket(value)];
  std::uint64_t e = slot.epoch.load(std::memory_order_relaxed);
  if ((e & 1) != 0 ||
      !slot.epoch.compare_exchange_strong(e, e + 1, std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
    return;  // another writer mid-store; drop this sample
  }
  slot.id.store(trace_id, std::memory_order_relaxed);
  slot.bits.store(std::bit_cast<std::uint64_t>(static_cast<double>(value)),
                  std::memory_order_relaxed);
  slot.epoch.store(e + 2, std::memory_order_release);
}

std::optional<Histogram::Exemplar> Histogram::exemplar(
    std::size_t bucket) const noexcept {
  if (bucket >= kHistogramBuckets) {
    return std::nullopt;
  }
  const ExemplarSlot& slot = exemplars_[bucket];
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t e1 = slot.epoch.load(std::memory_order_acquire);
    if (e1 == 0) {
      return std::nullopt;  // never written
    }
    if ((e1 & 1) != 0) {
      continue;  // writer mid-store
    }
    Exemplar out;
    out.trace_id = slot.id.load(std::memory_order_relaxed);
    out.value = std::bit_cast<double>(slot.bits.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.epoch.load(std::memory_order_acquire) == e1) {
      return out;
    }
  }
  return std::nullopt;
}

HistogramData Histogram::snapshot() const {
  HistogramData total;
  for (const auto& shard : shards_) {
    total += shard->snapshot();
  }
  return total;
}

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::counter:
      return "counter";
    case MetricKind::gauge:
      return "gauge";
    case MetricKind::histogram:
      return "histogram";
  }
  return "?";
}

Labels normalize_labels(Labels labels) {
  std::sort(labels.begin(), labels.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (!valid_label_name(labels[i].first)) {
      throw Error(ErrorKind::semantic,
                  "telemetry: invalid label name '" + labels[i].first + "'");
    }
    if (i > 0 && labels[i].first == labels[i - 1].first) {
      throw Error(ErrorKind::semantic,
                  "telemetry: duplicate label '" + labels[i].first + "'");
    }
  }
  return labels;
}

std::string canonical_labels(const Labels& labels) {
  // Values are escaped per the exposition format (backslash, double-quote,
  // newline).  This is load-bearing for correctness, not just rendering:
  // the canonical form is the Registry's series key, and without escaping
  // an adversarial value like `a",x="b` would collide distinct label sets
  // into one series (reachable through tenant and SLO rule names).
  std::string key;
  for (const auto& [k, v] : labels) {
    if (!key.empty()) {
      key += ',';
    }
    key += k;
    key += "=\"";
    for (const char c : v) {
      switch (c) {
        case '\\':
          key += "\\\\";
          break;
        case '"':
          key += "\\\"";
          break;
        case '\n':
          key += "\\n";
          break;
        default:
          key += c;
      }
    }
    key += '"';
  }
  return key;
}

Registry::FamilySlot& Registry::family_slot(std::string_view name,
                                            std::string_view help,
                                            MetricKind kind) {
  if (!valid_metric_name(name)) {
    throw Error(ErrorKind::semantic,
                "telemetry: invalid metric name '" + std::string(name) + "'");
  }
  const auto it = families_.find(name);
  if (it == families_.end()) {
    FamilySlot slot;
    slot.help = std::string(help);
    slot.kind = kind;
    return families_.emplace(std::string(name), std::move(slot)).first->second;
  }
  if (it->second.kind != kind) {
    throw Error(ErrorKind::semantic,
                "telemetry: metric '" + std::string(name) + "' is a " +
                    std::string(to_string(it->second.kind)) +
                    ", re-registered as " + std::string(to_string(kind)));
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  labels = normalize_labels(std::move(labels));
  FamilySlot& family = family_slot(name, help, MetricKind::counter);
  const std::string key = canonical_labels(labels);
  const auto it = family.series.find(key);
  if (it != family.series.end()) {
    return counters_[it->second];
  }
  counters_.emplace_back();
  family.series.emplace(key, counters_.size() - 1);
  family.series_labels.emplace(key, std::move(labels));
  return counters_.back();
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  labels = normalize_labels(std::move(labels));
  FamilySlot& family = family_slot(name, help, MetricKind::gauge);
  const std::string key = canonical_labels(labels);
  const auto it = family.series.find(key);
  if (it != family.series.end()) {
    return gauges_[it->second];
  }
  gauges_.emplace_back();
  family.series.emplace(key, gauges_.size() - 1);
  family.series_labels.emplace(key, std::move(labels));
  return gauges_.back();
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               Labels labels, std::size_t shards) {
  std::lock_guard<std::mutex> lock(mutex_);
  labels = normalize_labels(std::move(labels));
  FamilySlot& family = family_slot(name, help, MetricKind::histogram);
  const std::string key = canonical_labels(labels);
  const auto it = family.series.find(key);
  if (it != family.series.end()) {
    return *histograms_[it->second];
  }
  histograms_.push_back(std::make_unique<Histogram>(shards));
  family.series.emplace(key, histograms_.size() - 1);
  family.series_labels.emplace(key, std::move(labels));
  return *histograms_.back();
}

std::vector<Registry::Family> Registry::families() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Family> out;
  out.reserve(families_.size());
  for (const auto& [name, slot] : families_) {
    Family family;
    family.name = name;
    family.help = slot.help;
    family.kind = slot.kind;
    // std::map iteration over the canonical label string sorts series
    // deterministically.
    for (const auto& [key, index] : slot.series) {
      Series series;
      series.labels = slot.series_labels.at(key);
      switch (slot.kind) {
        case MetricKind::counter:
          series.counter = &counters_[index];
          break;
        case MetricKind::gauge:
          series.gauge = &gauges_[index];
          break;
        case MetricKind::histogram:
          series.histogram = histograms_[index].get();
          break;
      }
      family.series.push_back(std::move(series));
    }
    out.push_back(std::move(family));
  }
  return out;
}

}  // namespace opendesc::telemetry
