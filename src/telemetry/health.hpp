// Declarative SLO rule engine over the windowed time-series layer.
//
// Operators declare health intent as rules over the opendesc_* catalog:
//
//   drop_ratio: rate(opendesc_rx_quarantined_total[10s])
//               / rate(opendesc_rx_packets_total[10s]) > 0.001 for 3
//
// and the engine evaluates every rule once per sampler tick against
// TimeSeriesStore windows, tracking Prometheus-style state transitions:
// inactive → pending (condition true, not yet `for` consecutive ticks) →
// firing → resolved (condition cleared after firing).  The moment a rule
// fires, the engine captures a FlightRecorder incident — the same
// trace-context window and offending-record hex dumps the fault paths
// produce — so every firing alert carries a forensic capture id.
//
// Grammar (line-oriented; '#' starts a comment):
//
//   rule      := name ':' expr cmp number [ 'for' int [ 'ticks' ] ]
//   expr      := term (('+'|'-') term)*        (usual precedence: * / bind
//   term      := factor (('*'|'/') factor)*     tighter than + -)
//   factor    := number | '(' expr ')' | fn
//   fn        := 'rate'  '(' selector '[' window ']' ')'   counters
//              | 'value' '(' selector ')'                  last raw value
//              | 'min'|'mean'|'max' '(' selector '[' window ']' ')'  gauges
//              | 'p50'|'p99'|'p999' '(' selector '[' window ']' ')'  histos
//   selector  := metric_name [ '{' key '=' '"' value '"' (',' ...)* '}' ]
//   window    := INT ('ms'|'s'|'m')             e.g. 500ms, 1s, 10s, 1m
//   cmp       := '>' | '>=' | '<' | '<='
//
// Selectors sum across every series of the family that matches the label
// filter (so rate(opendesc_rx_packets_total[1s]) is whole-engine goodput).
// A selector over a family the store has not sampled evaluates to 0, and
// division by zero yields 0 — so a ratio rule quietly resolves when
// traffic stops instead of latching NaN.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/timeseries.hpp"

namespace opendesc::telemetry {

class Sink;

/// Aggregation a selector term applies to its window.
enum class HealthFn : std::uint8_t {
  rate,   ///< counters: windowed per-second rate
  value,  ///< any kind: newest raw value (summed across series)
  min,    ///< gauges: window minimum
  mean,   ///< gauges: window mean
  max,    ///< gauges: window maximum
  p50,    ///< histograms: window-delta quantile upper bound
  p99,
  p999,
};

/// Comparison between the rule expression and its threshold.
enum class HealthCmp : std::uint8_t { gt, ge, lt, le };

[[nodiscard]] std::string_view to_string(HealthFn fn) noexcept;
[[nodiscard]] std::string_view to_string(HealthCmp cmp) noexcept;

/// Expression tree node.  kind selects which members are meaningful.
struct HealthExpr {
  enum class Kind : std::uint8_t { constant, selector, binary };

  Kind kind = Kind::constant;
  double constant = 0.0;

  // selector
  HealthFn fn = HealthFn::rate;
  std::string metric;
  Labels filter;
  double window_seconds = 0.0;  ///< 0 for value()

  // binary
  char op = '+';
  std::unique_ptr<HealthExpr> lhs;
  std::unique_ptr<HealthExpr> rhs;

  [[nodiscard]] double evaluate(const TimeSeriesStore& store) const;
  /// Round-trippable text form (used by /alerts so operators see what is
  /// actually being evaluated).
  [[nodiscard]] std::string to_text() const;
};

struct HealthRule {
  std::string name;
  HealthExpr expr;
  HealthCmp cmp = HealthCmp::gt;
  double threshold = 0.0;
  std::uint32_t for_ticks = 1;  ///< consecutive true ticks before firing
};

/// Parses a rules document.  Throws Error(semantic) with the offending
/// line number on any syntax error, duplicate rule name, or unknown
/// function.  An empty/comment-only document parses to no rules.
[[nodiscard]] std::vector<HealthRule> parse_health_rules(
    std::string_view text);

/// Stock SLO rule for live layout evolution: fires (with flight capture)
/// when the software-recovery rate stays non-zero after a swap — the
/// signature of a cutover that degraded packets onto the SoftNIC path
/// instead of the NIC path.  `opendesc simulate --swap-every` installs it
/// automatically when no rules file is given.
inline constexpr std::string_view kSwapFallbackRule =
    "swap_softnic_fallback: "
    "rate(opendesc_rx_softnic_recovered_total[2s]) > 0.5 for 3 ticks\n";

/// Prometheus-style alert lifecycle.
enum class AlertState : std::uint8_t { inactive, pending, firing, resolved };

[[nodiscard]] std::string_view to_string(AlertState state) noexcept;

/// One rule's live status, as surfaced on /alerts.
struct AlertStatus {
  std::string rule;
  std::string expr;            ///< normalized expression text
  HealthCmp cmp = HealthCmp::gt;
  double threshold = 0.0;
  std::uint32_t for_ticks = 1;
  AlertState state = AlertState::inactive;
  double value = 0.0;          ///< last evaluated expression value
  std::uint32_t consecutive = 0;  ///< ticks the condition has held
  std::uint64_t fired_total = 0;  ///< pending→firing transitions so far
  std::uint64_t since_tick = 0;   ///< evaluation tick of last state change
  std::uint64_t capture_id = 0;   ///< FlightRecorder id of the last firing
};

/// Evaluates a rule set each sampler tick.  evaluate() runs on the sampler
/// thread; snapshot()/to_json() may run concurrently from HTTP workers —
/// a plain mutex serializes them, far from the datapath.
class HealthEngine {
 public:
  /// `sink` provides the FlightRecorder + trace rings for alert-triggered
  /// capture and the Registry for the opendesc_alerts_* instruments; it
  /// must outlive the engine.  Pass nullptr to disable capture/publish
  /// (pure evaluation, as in unit tests).
  HealthEngine(std::vector<HealthRule> rules, const TimeSeriesStore& store,
               Sink* sink);

  HealthEngine(const HealthEngine&) = delete;
  HealthEngine& operator=(const HealthEngine&) = delete;

  /// One evaluation pass over every rule; call after each store sample.
  void evaluate();

  [[nodiscard]] std::size_t rules() const noexcept { return states_.size(); }
  [[nodiscard]] std::uint64_t evaluations() const;
  /// Rules currently in the firing state.
  [[nodiscard]] std::size_t firing() const;
  [[nodiscard]] std::vector<AlertStatus> snapshot() const;

  /// The /alerts payload (and --alerts-out file format).
  [[nodiscard]] std::string to_json() const;

 private:
  struct RuleState {
    HealthRule rule;
    std::string expr_text;
    AlertStatus status;
    Gauge* firing_gauge = nullptr;
    Counter* fired_counter = nullptr;
  };

  void fire(RuleState& state);

  const TimeSeriesStore& store_;
  Sink* sink_;
  mutable std::mutex mutex_;
  std::uint64_t evaluations_ = 0;
  std::vector<RuleState> states_;
};

}  // namespace opendesc::telemetry
