// Continuous hot-path profiler: per-stage cycle accounting with bounded,
// self-tuning overhead.
//
// The stage-latency histograms (telemetry::Stage) measure *batch wall time*;
// they cannot attribute cycles per packet, separate work from idle spin, or
// split cost by layout epoch.  The profiler closes that gap: every datapath
// thread owns one single-writer ProfileShard and accounts nanoseconds into a
// fixed stage enumeration (ProfileStage) extended with explicit wait/idle
// accounting, so ns/pkt is computed over *work* cycles only.
//
// Cost model:
//   - Sampling is batch-amortized: spans are timed on every Kth batch only,
//     with K auto-tuned per shard against the calibrated cost of a clock
//     read pair so measured overhead stays under Profiler::Config::
//     overhead_target (3% by default).  Unsampled batches cost two counter
//     adds and one seqlock publish — the same order as the per-batch stats
//     publish the engine already does.
//   - Snapshots use the StatsRegistry seqlock idiom: the writer bumps an
//     epoch word odd, stores the payload words, bumps it even; readers retry
//     until they observe a stable even epoch.  Every word is an atomic, so
//     the protocol is TSan-clean by construction.
//   - Work spans ride the per-thread CPU clock the host-cost convention
//     already uses; wait spans (blocking pops, doorbell-delay idle polls)
//     use the TSC-backed wall clock profile_now_ns(), because blocked time
//     never shows on a CPU clock.
//
// Attribution: each shard tracks the layout epoch it is serving and flushes
// its delta into a per-epoch table at every cutover (cold path, mutex'd),
// so /profile can split cost by epoch across a hot-swap; the owning
// engine's tenant label rides along for multi-tenant planes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace opendesc::telemetry {

class Registry;

/// Cycle-accounting stages.  Extends the five span stages with the flow
/// classifier (carved out of steer), the swap drain barrier, and explicit
/// wait/idle-spin time so work cost is separable from waiting.
enum class ProfileStage : std::uint8_t {
  steer,          ///< dispatch: RSS classify a chunk (minus flow_classify)
  flow_classify,  ///< dispatch: flow-key derivation inside the classify loop
  ring,           ///< worker: rx feed + completion poll + ring advance
  validate,       ///< worker: schema/bounds validation of polled records
  consume,        ///< worker: accessor reads / SoftNIC recovery per record
  handoff,        ///< dispatch: SPSC push of a classified chunk
  swap_barrier,   ///< both: layout hot-swap (verify, drain, cut over)
  wait,           ///< both: blocking pops, idle polls, source refill
};

inline constexpr std::size_t kProfileStageCount = 8;

[[nodiscard]] std::string_view to_string(ProfileStage stage) noexcept;

/// True for stages owned by the dispatch/steering thread (wait and
/// swap_barrier occur on both sides).
[[nodiscard]] constexpr bool is_dispatch_stage(ProfileStage stage) noexcept {
  return stage == ProfileStage::steer || stage == ProfileStage::flow_classify ||
         stage == ProfileStage::handoff;
}

/// TSC-backed wall-clock nanoseconds (calibrated once against
/// steady_clock); falls back to steady_clock where no TSC is available.
[[nodiscard]] double profile_now_ns() noexcept;

/// Calibrated cost of one profile_now_ns() begin/end pair — what one
/// recorded span costs the hot path.  Feeds the stride auto-tuner.
[[nodiscard]] double profile_clock_pair_cost_ns() noexcept;

/// One coherent shard snapshot (or an aggregate / delta of them).
///
/// stage_ns are *sampled* sums: they cover sampled_batches of the batches
/// total, so per-packet figures divide by sampled_packets, not packets.
struct ProfileData {
  std::array<double, kProfileStageCount> stage_ns{};
  /// Independently accumulated sum of every recorded span (work + wait).
  /// On a coherent snapshot work_ns() + wait_ns() == loop_ns up to float
  /// rounding; a torn snapshot breaks the identity — tests exploit this.
  double loop_ns = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t sampled_batches = 0;
  std::uint64_t packets = 0;
  std::uint64_t sampled_packets = 0;
  std::uint64_t stride = 1;  ///< current K (not additive; max under +=)

  [[nodiscard]] double wait_ns() const noexcept {
    return stage_ns[static_cast<std::size_t>(ProfileStage::wait)];
  }
  [[nodiscard]] double work_ns() const noexcept { return loop_ns - wait_ns(); }
  /// Sampled ns of `stage` per sampled packet; 0 when nothing was sampled.
  [[nodiscard]] double ns_per_packet(ProfileStage stage) const noexcept {
    return sampled_packets == 0
               ? 0.0
               : stage_ns[static_cast<std::size_t>(stage)] /
                     static_cast<double>(sampled_packets);
  }
  [[nodiscard]] double work_ns_per_packet() const noexcept {
    return sampled_packets == 0
               ? 0.0
               : work_ns() / static_cast<double>(sampled_packets);
  }
  [[nodiscard]] bool empty() const noexcept {
    return batches == 0 && packets == 0 && loop_ns == 0.0;
  }

  ProfileData& operator+=(const ProfileData& other) noexcept;
  /// Delta against an earlier snapshot of the same shard (saturating).
  ProfileData& operator-=(const ProfileData& base) noexcept;
};

/// Seqlock payload: 8 stage words + loop_ns + 4 counters + stride.
inline constexpr std::size_t kProfileWords = kProfileStageCount + 6;

[[nodiscard]] std::array<std::uint64_t, kProfileWords> encode_profile(
    const ProfileData& data) noexcept;
[[nodiscard]] ProfileData decode_profile(
    const std::array<std::uint64_t, kProfileWords>& words) noexcept;

class Profiler;

/// One thread's accounting lane.  The writer API (batch_begin / record /
/// batch_end / batch_skip / set_epoch / flush) must be driven by exactly
/// one thread; snapshot() is safe from any thread at any time.
class ProfileShard {
 public:
  ProfileShard() = default;
  ProfileShard(const ProfileShard&) = delete;
  ProfileShard& operator=(const ProfileShard&) = delete;

  /// Opens a batch; true when this batch is sampled (time its spans and
  /// finish with batch_end; otherwise finish with batch_skip).  `force`
  /// samples unconditionally — for cold paths like the device drain.
  [[nodiscard]] bool batch_begin(bool force = false) noexcept;

  /// Accounts one timed span.  Also feeds loop_ns, so the work/wait
  /// partition identity holds by construction.
  void record(ProfileStage stage, double ns) noexcept {
    pending_.stage_ns[static_cast<std::size_t>(stage)] += ns;
    pending_.loop_ns += ns;
    ++records_in_batch_;
  }

  /// Closes a sampled batch: counts it, tunes the stride, publishes.
  void batch_end(std::uint64_t packets) noexcept;
  /// Closes an unsampled batch: counts it and publishes (no spans).
  void batch_skip(std::uint64_t packets) noexcept;

  /// Layout cutover: flushes the delta accumulated since the last boundary
  /// into the owner's per-epoch table, then starts accounting against
  /// `epoch`.  Cold path (takes the owner's epoch mutex).
  void set_epoch(std::uint64_t epoch) noexcept;

  /// Publishes pending totals and flushes the current epoch's delta; call
  /// when the writer quiesces (end of a run segment).
  void flush() noexcept;

  /// Coherent reader-side snapshot (retries across concurrent publishes).
  [[nodiscard]] ProfileData snapshot() const noexcept;

 private:
  friend class Profiler;

  void publish() noexcept;
  void flush_epoch() noexcept;

  // -- writer-owned state (no concurrent access) --
  Profiler* owner_ = nullptr;
  ProfileData pending_;     ///< running totals since construction
  ProfileData epoch_base_;  ///< pending_ at the last epoch boundary
  std::uint64_t current_epoch_ = 0;
  std::uint64_t stride_ = 1;        ///< sample every stride_-th batch
  std::uint64_t since_sample_ = 0;
  std::uint32_t records_in_batch_ = 0;
  double batch_loop_base_ = 0.0;    ///< loop_ns at batch_begin (tuner window)
  bool sampling_ = false;

  // -- shared seqlock slot --
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};
    std::array<std::atomic<std::uint64_t>, kProfileWords> words{};
  };
  Slot slot_;
};

/// A coherent multi-shard capture: worker shards [0..queues), then the
/// dispatch shard, plus the committed per-epoch deltas.  Also the unit the
/// renderers consume, and the delta type /profile windows are made of.
struct ProfileCapture {
  std::vector<ProfileData> shards;  ///< [0..queues) workers, [queues] dispatch
  std::size_t queues = 0;           ///< worker shard count
  std::vector<std::pair<std::uint64_t, ProfileData>> epochs;
  std::string tenant;
  double window_seconds = 0.0;  ///< 0 = cumulative since start

  [[nodiscard]] ProfileData aggregate() const noexcept;
  [[nodiscard]] const ProfileData* dispatch() const noexcept {
    return queues < shards.size() ? &shards[queues] : nullptr;
  }
  /// Aggregate ns/pkt for one stage over the shards that own it (dispatch
  /// stages divide by dispatched packets, worker stages by consumed ones).
  /// Returns 0 when the owning side sampled nothing.
  [[nodiscard]] double stage_ns_per_packet(ProfileStage stage) const noexcept;
  /// This capture as a delta against `base` (earlier capture, same layout).
  [[nodiscard]] ProfileCapture since(const ProfileCapture& base) const;
};

struct ProfilerConfig {
  std::size_t shards = 1;
  /// Fixed sampling stride; 0 = auto-tune per shard.
  std::uint64_t stride = 0;
  /// Auto-tune target: measured profiling cost as a fraction of work.
  double overhead_target = 0.03;
};

/// The shard set plus the cold-path epoch/tenant attribution tables.
class Profiler {
 public:
  using Config = ProfilerConfig;

  explicit Profiler(Config config = {});
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  [[nodiscard]] ProfileShard& shard(std::size_t index) noexcept {
    return shards_[index];
  }
  [[nodiscard]] const ProfileShard& shard(std::size_t index) const noexcept {
    return shards_[index];
  }

  /// Overrides the sampling stride for every shard (0 = back to auto).
  /// Shards pick it up at their next batch_begin.
  void set_stride(std::uint64_t stride) noexcept {
    stride_override_.store(stride, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t stride_override() const noexcept {
    return stride_override_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double overhead_target() const noexcept {
    return overhead_target_;
  }

  /// Tenant label stamped on captures (set before the writers start).
  void set_tenant(std::string tenant);
  [[nodiscard]] std::string tenant() const;

  [[nodiscard]] ProfileData snapshot(std::size_t index) const noexcept {
    return shards_[index].snapshot();
  }
  [[nodiscard]] ProfileData aggregate() const noexcept;
  /// Committed per-epoch deltas (ascending epoch).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, ProfileData>> epochs()
      const;

  /// Everything /profile serves, coherently: shard snapshots + epoch table.
  /// The last shard is reported as the dispatch lane.
  [[nodiscard]] ProfileCapture capture() const;

  /// Stores the opendesc_profile_* families into `registry` (idempotent —
  /// totals are stored, not added — like the trace counters).
  void publish(Registry& registry) const;

 private:
  friend class ProfileShard;
  void contribute_epoch(std::uint64_t epoch, const ProfileData& delta);

  std::vector<ProfileShard> shards_;
  std::atomic<std::uint64_t> stride_override_{0};
  double overhead_target_ = 0.03;
  mutable std::mutex epoch_mutex_;
  std::map<std::uint64_t, ProfileData> epochs_;
  mutable std::mutex tenant_mutex_;
  std::string tenant_ = "default";
};

// --- Renderers --------------------------------------------------------------
// Shards with zero batches are omitted from collapsed/speedscope output and
// rendered `-` in the tsv pane, mirroring the empty-histogram convention.

/// Structured JSON: per-shard totals + stages, aggregate, epochs, tenant.
[[nodiscard]] std::string render_profile_json(const ProfileCapture& capture);
/// flamegraph.pl-compatible collapsed stacks: `opendesc;<lane>;work;<stage>
/// <ns>` one per line, integer ns values.
[[nodiscard]] std::string render_profile_collapsed(
    const ProfileCapture& capture);
/// speedscope.app JSON (evented profiles, one per lane, nanosecond unit).
[[nodiscard]] std::string render_profile_speedscope(
    const ProfileCapture& capture);
/// Flat ns/pkt matrix (stages x lanes) for the `opendesc top` pane.
[[nodiscard]] std::string render_profile_tsv(const ProfileCapture& capture);

}  // namespace opendesc::telemetry
