// Fault flight recorder: bounded postmortem capture of datapath incidents.
//
// Counters tell the operator *that* faults happened and the trace ring
// *when*; the flight recorder keeps the evidence.  On the three
// unrecoverable-surprise paths — a quarantined record, a lost completion,
// control-programming retry exhaustion — the faulting thread snapshots
// everything a postmortem needs into one bounded buffer:
//
//   * the offending record bytes verbatim (and the frame head when the
//     record never arrived),
//   * the active CompiledLayout identity (nic/path) the record was
//     validated against,
//   * the last-N events of the thread's own trace ring — the ordered
//     context leading up to the incident,
//   * per-cause counters that survive eviction.
//
// The buffer keeps the newest `capacity` incidents; older ones are evicted
// (and stay counted), so a fault storm can never grow memory.  Incidents
// are rare by construction — every capture sits on a fault path, never the
// per-packet hot path — so a plain mutex is the right tool: concurrent
// writers (engine workers on different queues) and concurrent readers (the
// HTTP /flight endpoint, --flight-out) serialize here without touching the
// datapath's lock-free machinery.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/trace.hpp"

namespace opendesc::telemetry {

/// Why an incident was captured.
enum class FlightCause : std::uint8_t {
  record_quarantined,     ///< validation failed; detail = RecordVerdict
  completion_lost,        ///< rx() accepted, completion never arrived
  ctrl_retry_exhausted,   ///< programming failed verification; detail = attempts
  alert_fired,            ///< an SLO health rule transitioned to firing
  layout_swap_rolled_back,///< live layout swap failed; detail = attempts
};

inline constexpr std::size_t kFlightCauseCount = 5;

[[nodiscard]] std::string_view to_string(FlightCause cause) noexcept;

/// One captured incident.
struct FlightIncident {
  FlightCause cause = FlightCause::record_quarantined;
  std::uint16_t queue = 0;     ///< originating queue (0 for control plane)
  std::uint8_t detail = 0;     ///< cause-specific (verdict, attempts)
  std::uint64_t sequence = 0;  ///< loop-delivery index at capture
  std::uint64_t trace_id = 0;  ///< causal trace of the offending packet, or
                               ///< the nearest sampled one (0 = none known)
  std::string layout_id;       ///< active CompiledLayout ("nic/path")
  std::vector<std::uint8_t> record;      ///< offending record bytes, verbatim
  std::vector<std::uint8_t> frame_head;  ///< first frame bytes (when known)
  std::vector<TraceEvent> recent;        ///< ring tail at capture, oldest first
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 32,
                          std::size_t context_events = 16)
      : capacity_(capacity == 0 ? 1 : capacity),
        context_events_(context_events) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Captures one incident (newest kept, oldest evicted).  Fault-path only.
  /// Returns the incident's capture id: the 1-based running total at
  /// capture, stable across eviction — what a firing alert links to.
  std::uint64_t record(FlightIncident incident);

  /// Trace-ring context window captured per incident.
  [[nodiscard]] std::size_t context_events() const noexcept {
    return context_events_;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Incidents currently retained, oldest first.
  [[nodiscard]] std::vector<FlightIncident> snapshot() const;
  /// Incidents ever captured (including evicted ones).
  [[nodiscard]] std::uint64_t total() const noexcept;
  [[nodiscard]] std::uint64_t count(FlightCause cause) const noexcept;

  void clear();

  /// The whole recorder as a JSON document (the /flight payload and the
  /// --flight-out file format): counts per cause plus every retained
  /// incident with hex-encoded bytes.
  [[nodiscard]] std::string to_json() const;

 private:
  std::size_t capacity_;
  std::size_t context_events_;
  mutable std::mutex mutex_;
  std::deque<FlightIncident> incidents_;
  std::uint64_t total_ = 0;
  std::array<std::uint64_t, kFlightCauseCount> by_cause_{};
};

/// Lower-case hex of a byte span ("deadbeef"), the JSON encoding of record
/// and frame bytes.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace opendesc::telemetry
