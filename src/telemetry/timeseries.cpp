#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace opendesc::telemetry {

double parse_window_seconds(std::string_view spec) {
  std::size_t i = 0;
  while (i < spec.size() &&
         (std::isdigit(static_cast<unsigned char>(spec[i])) != 0 ||
          spec[i] == '.')) {
    ++i;
  }
  if (i == 0) {
    throw Error(ErrorKind::semantic,
                "window '" + std::string(spec) + "' has no duration digits");
  }
  double value = 0.0;
  try {
    value = std::stod(std::string(spec.substr(0, i)));
  } catch (const std::exception&) {
    throw Error(ErrorKind::semantic,
                "window '" + std::string(spec) + "' is not a number");
  }
  const std::string_view unit = spec.substr(i);
  double scale = 0.0;
  if (unit == "s") {
    scale = 1.0;
  } else if (unit == "ms") {
    scale = 1e-3;
  } else if (unit == "m") {
    scale = 60.0;
  } else {
    throw Error(ErrorKind::semantic, "window '" + std::string(spec) +
                                         "' has unknown unit '" +
                                         std::string(unit) +
                                         "' (expected ms, s or m)");
  }
  const double seconds = value * scale;
  if (!(seconds > 0.0)) {
    throw Error(ErrorKind::semantic,
                "window '" + std::string(spec) + "' must be positive");
  }
  return seconds;
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesConfig config) : config_(config) {
  if (!(config_.tick_seconds > 0.0)) {
    throw Error(ErrorKind::semantic, "time-series tick must be positive");
  }
  if (config_.capacity == 0) {
    throw Error(ErrorKind::semantic, "time-series capacity must be non-zero");
  }
}

void TimeSeriesStore::sample(const Registry& registry) {
  // Instrument reads go through their lock-free snapshot paths; the only
  // locks here are the registry's registration mutex (inside families())
  // and this store's own mutex.  Neither is ever taken by a datapath worker.
  const std::vector<Registry::Family> families = registry.families();
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t tick = ticks_++;
  for (const Registry::Family& family : families) {
    FamilySlot& slot = families_[family.name];
    slot.kind = family.kind;
    for (const Registry::Series& series : family.series) {
      SeriesRing& ring = slot.series[canonical_labels(series.labels)];
      if (ring.tick.empty()) {
        ring.labels = series.labels;
      }
      switch (family.kind) {
        case MetricKind::counter:
          ring.values.push_back(
              static_cast<double>(series.counter->value()));
          break;
        case MetricKind::gauge:
          ring.values.push_back(series.gauge->value());
          break;
        case MetricKind::histogram:
          ring.hists.push_back(series.histogram->snapshot());
          break;
      }
      ring.tick.push_back(tick);
      while (ring.tick.size() > config_.capacity) {
        ring.tick.pop_front();
        if (!ring.values.empty()) ring.values.pop_front();
        if (!ring.hists.empty()) ring.hists.pop_front();
      }
    }
  }
}

std::uint64_t TimeSeriesStore::ticks() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ticks_;
}

std::vector<std::string> TimeSeriesStore::metric_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& [name, slot] : families_) {
    if (!slot.series.empty()) names.push_back(name);
  }
  return names;
}

SeriesWindow TimeSeriesStore::series_window(
    const SeriesRing& ring, MetricKind kind, std::size_t window_ticks) const {
  SeriesWindow out;
  out.labels = ring.labels;
  const std::size_t size = ring.tick.size();
  if (size == 0) return out;
  const std::size_t span = std::min(window_ticks, size);
  const std::size_t first = size - span;
  out.samples = span;
  out.seconds = static_cast<double>(span > 0 ? span - 1 : 0) *
                config_.tick_seconds;
  if (kind == MetricKind::histogram) {
    HistogramData delta = ring.hists[size - 1];
    if (span >= 2) delta -= ring.hists[first];
    out.delta = delta;
    out.last = static_cast<double>(ring.hists[size - 1].count);
    return out;
  }
  out.last = ring.values[size - 1];
  if (kind == MetricKind::counter) {
    if (span >= 2 && out.seconds > 0.0) {
      const double diff = ring.values[size - 1] - ring.values[first];
      out.rate = diff > 0.0 ? diff / out.seconds : 0.0;
    }
    return out;
  }
  // Gauge: extrema and mean over the window.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (std::size_t i = first; i < size; ++i) {
    lo = std::min(lo, ring.values[i]);
    hi = std::max(hi, ring.values[i]);
    sum += ring.values[i];
  }
  out.min = lo;
  out.max = hi;
  out.mean = sum / static_cast<double>(span);
  return out;
}

namespace {

/// True when every (key, value) of `filter` appears in `labels`.
bool labels_match(const Labels& labels, const Labels& filter) {
  for (const auto& [key, value] : filter) {
    bool found = false;
    for (const auto& [lk, lv] : labels) {
      if (lk == key && lv == value) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// Folds one series' window into the family total.  Counter rates and
/// histogram deltas sum; gauge extrema take the min/max of summed per-tick
/// values, which for aligned ticks equals summing the per-series stats only
/// for mean — so extrema are folded conservatively (sum of minima is a
/// lower bound of the summed series' minimum over the same ticks).
void fold(WindowAggregate& total, const SeriesWindow& w, bool first) {
  total.samples = first ? w.samples : std::min(total.samples, w.samples);
  total.seconds = first ? w.seconds : std::min(total.seconds, w.seconds);
  total.last += w.last;
  total.rate += w.rate;
  total.min = first ? w.min : total.min + w.min;
  total.mean = first ? w.mean : total.mean + w.mean;
  total.max = first ? w.max : total.max + w.max;
  total.delta += w.delta;
}

}  // namespace

std::optional<WindowAggregate> TimeSeriesStore::aggregate(
    std::string_view metric, const Labels& filter,
    double window_seconds) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto family = families_.find(metric);
  if (family == families_.end()) return std::nullopt;
  // A window of W seconds measures W/tick intervals, which takes
  // W/tick + 1 samples (both endpoints) — so even a one-tick window has a
  // rate/delta instead of degenerating to a single point.
  const std::size_t window_ticks =
      1 + std::max<std::size_t>(
              1, static_cast<std::size_t>(
                     std::llround(window_seconds / config_.tick_seconds)));
  WindowAggregate total;
  total.kind = family->second.kind;
  bool any = false;
  for (const auto& [key, ring] : family->second.series) {
    if (!labels_match(ring.labels, filter)) continue;
    const SeriesWindow w =
        series_window(ring, family->second.kind, window_ticks);
    fold(total, w, !any);
    any = true;
  }
  if (!any) return std::nullopt;
  return total;
}

std::optional<FamilyWindow> TimeSeriesStore::family_window(
    std::string_view metric, double window_seconds) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto family = families_.find(metric);
  if (family == families_.end()) return std::nullopt;
  // Same endpoint arithmetic as aggregate(): W/tick intervals, +1 samples.
  const std::size_t window_ticks =
      1 + std::max<std::size_t>(
              1, static_cast<std::size_t>(
                     std::llround(window_seconds / config_.tick_seconds)));
  FamilyWindow out;
  out.name = std::string(metric);
  out.kind = family->second.kind;
  out.total.kind = family->second.kind;
  for (const auto& [key, ring] : family->second.series) {
    SeriesWindow w = series_window(ring, family->second.kind, window_ticks);
    fold(out.total, w, out.series.empty());
    out.series.push_back(std::move(w));
  }
  if (out.series.empty()) return std::nullopt;
  return out;
}

Sampler::Sampler(std::function<void()> tick, std::chrono::milliseconds interval)
    : tick_(std::move(tick)),
      interval_(interval.count() > 0 ? interval
                                     : std::chrono::milliseconds(1)) {}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stopping_ = false;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void Sampler::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) {
      return;
    }
    lock.unlock();
    tick_();
    ticks_.fetch_add(1, std::memory_order_release);
    lock.lock();
  }
}

}  // namespace opendesc::telemetry
