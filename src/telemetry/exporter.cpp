#include "telemetry/exporter.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace opendesc::telemetry {

namespace {

/// Shortest round-trip decimal for a gauge value; integers print without a
/// trailing ".0" so counters-published-as-gauges stay readable.
std::string format_double(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v >= -9.2e18 && v <= 9.2e18) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// '{k1="v1",k2="v2"}' with escaping; `extra` (e.g. le) is appended last.
std::string label_block(const Labels& labels, const std::string& extra = {}) {
  std::string out;
  for (const auto& [k, v] : labels) {
    out += out.empty() ? "{" : ",";
    out += k;
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (!extra.empty()) {
    out += out.empty() ? "{" : ",";
    out += extra;
  }
  if (!out.empty()) {
    out += '}';
  }
  return out;
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string escape_help(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string escape_json(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prometheus_family(const Registry::Family& family) {
  std::ostringstream out;
  {
    if (!family.help.empty()) {
      out << "# HELP " << family.name << ' ' << escape_help(family.help)
          << '\n';
    }
    out << "# TYPE " << family.name << ' ' << to_string(family.kind) << '\n';
    for (const Registry::Series& series : family.series) {
      switch (family.kind) {
        case MetricKind::counter:
          out << family.name << label_block(series.labels) << ' '
              << series.counter->value() << '\n';
          break;
        case MetricKind::gauge:
          out << family.name << label_block(series.labels) << ' '
              << format_double(series.gauge->value()) << '\n';
          break;
        case MetricKind::histogram: {
          const HistogramData data = series.histogram->snapshot();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
            cumulative += data.buckets[i];
            // Only surface a bound when the bucket adds information: always
            // the first and last bounded buckets, plus any non-empty one.
            if (data.buckets[i] == 0 && i != 0 && i != kHistogramBuckets - 2) {
              continue;
            }
            if (i == kHistogramBuckets - 1) {
              break;  // the unbounded bucket is the +Inf line below
            }
            out << family.name << "_bucket"
                << label_block(series.labels,
                               "le=\"" +
                                   std::to_string(histogram_upper_bound(i)) +
                                   "\"")
                << ' ' << cumulative;
            // OpenMetrics exemplar: the trace id of a sampled observation
            // that landed in this bucket, linking /metrics to /spans.
            if (const auto ex = series.histogram->exemplar(i);
                ex && ex->trace_id != 0) {
              char hex[17];
              std::snprintf(hex, sizeof hex, "%016llx",
                            static_cast<unsigned long long>(ex->trace_id));
              out << " # {trace_id=\"" << hex << "\"} "
                  << format_double(ex->value);
            }
            out << '\n';
          }
          out << family.name << "_bucket"
              << label_block(series.labels, "le=\"+Inf\"") << ' ' << data.count
              << '\n';
          out << family.name << "_sum" << label_block(series.labels) << ' '
              << data.sum << '\n';
          out << family.name << "_count" << label_block(series.labels) << ' '
              << data.count << '\n';
          break;
        }
      }
    }
  }
  return out.str();
}

std::string to_prometheus(const Registry& registry) {
  std::string out;
  for (const Registry::Family& family : registry.families()) {
    out += prometheus_family(family);
  }
  return out;
}

std::string json_family(const Registry::Family& family) {
  std::ostringstream out;
  {
    out << "{\"name\":\"" << escape_json(family.name) << "\",\"kind\":\""
        << to_string(family.kind) << "\",\"help\":\""
        << escape_json(family.help) << "\",\"series\":[";
    bool first_series = true;
    for (const Registry::Series& series : family.series) {
      if (!first_series) {
        out << ',';
      }
      first_series = false;
      out << "{\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : series.labels) {
        if (!first_label) {
          out << ',';
        }
        first_label = false;
        out << '"' << escape_json(k) << "\":\"" << escape_json(v) << '"';
      }
      out << '}';
      switch (family.kind) {
        case MetricKind::counter:
          out << ",\"value\":" << series.counter->value();
          break;
        case MetricKind::gauge:
          out << ",\"value\":" << format_double(series.gauge->value());
          break;
        case MetricKind::histogram: {
          const HistogramData data = series.histogram->snapshot();
          out << ",\"count\":" << data.count << ",\"sum\":" << data.sum
              << ",\"buckets\":[";
          bool first_bucket = true;
          for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
            if (data.buckets[i] == 0) {
              continue;
            }
            if (!first_bucket) {
              out << ',';
            }
            first_bucket = false;
            out << "{\"le\":";
            if (i == kHistogramBuckets - 1) {
              out << "\"+Inf\"";
            } else {
              out << histogram_upper_bound(i);
            }
            out << ",\"count\":" << data.buckets[i] << '}';
          }
          out << ']';
          break;
        }
      }
      out << '}';
    }
    out << "]}";
  }
  return out.str();
}

std::string to_json(const Registry& registry) {
  std::string out = "{\"metrics\":[";
  bool first_family = true;
  for (const Registry::Family& family : registry.families()) {
    if (!first_family) {
      out += ',';
    }
    first_family = false;
    out += json_family(family);
  }
  out += "]}";
  return out;
}

void write_metrics_file(const Registry& registry, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    throw Error(ErrorKind::io, "cannot open metrics file '" + path + "'");
  }
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  file << (json ? to_json(registry) : to_prometheus(registry));
  if (!file) {
    throw Error(ErrorKind::io, "failed writing metrics file '" + path + "'");
  }
}

}  // namespace opendesc::telemetry
