#include "telemetry/server.hpp"

#include <sstream>

#include "common/error.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/health.hpp"
#include "telemetry/timeseries.hpp"

namespace opendesc::telemetry {

std::string trace_ring_json(const TraceRing& ring, std::string_view name) {
  const std::vector<TraceEvent> events = ring.snapshot();
  std::ostringstream out;
  out << "{\"ring\":\"" << escape_json(name)
      << "\",\"recorded\":" << ring.recorded()
      << ",\"dropped\":" << ring.dropped() << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out << (i == 0 ? "" : ",") << "{\"seq\":" << event.sequence
        << ",\"type\":\"" << to_string(event.type) << "\",\"detail\":"
        << static_cast<unsigned>(event.detail) << ",\"queue\":" << event.queue
        << ",\"arg\":" << event.arg << '}';
  }
  out << "]}";
  return out.str();
}

ObservabilityServer::ObservabilityServer(Sink& sink, http::ServerConfig config)
    : sink_(&sink),
      server_(std::move(config),
              [this](const http::Request& request) { return handle(request); }) {}

http::Response ObservabilityServer::handle(const http::Request& request) {
  http::Response response;
  if (request.path == "/metrics") {
    sink_->publish_trace_counters();
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = to_prometheus(sink_->registry());
  } else if (request.path == "/metrics.json") {
    sink_->publish_trace_counters();
    response.content_type = "application/json";
    response.body = to_json(sink_->registry());
  } else if (request.path == "/healthz") {
    response.body = "ok\n";
  } else if (request.path == "/readyz") {
    const bool ready = !ready_ || ready_();
    response.status = ready ? 200 : 503;
    response.body = ready ? "ready\n" : "not ready\n";
  } else if (request.path == "/traces") {
    response = traces(request);
  } else if (request.path == "/flight") {
    response.content_type = "application/json";
    response.body = sink_->flight().to_json();
  } else if (request.path == "/alerts") {
    const auto fmt = request.query.find("format");
    if (fmt != request.query.end() && fmt->second == "tsv") {
      // Flat rendering for `opendesc top` and shell tooling: one rule per
      // line — name, state, value, threshold, consecutive, fired, capture.
      std::ostringstream out;
      if (health_ != nullptr) {
        for (const AlertStatus& a : health_->snapshot()) {
          out << a.rule << '\t' << to_string(a.state) << '\t' << a.value
              << '\t' << to_string(a.cmp) << '\t' << a.threshold << '\t'
              << a.consecutive << '\t' << a.fired_total << '\t'
              << a.capture_id << '\n';
        }
      }
      response.body = out.str();
    } else {
      response.content_type = "application/json";
      response.body = health_ != nullptr
                          ? health_->to_json()
                          : std::string(
                                "{\"enabled\":false,\"evaluations\":0,"
                                "\"firing\":0,\"rules\":[]}");
    }
  } else if (request.path == "/timeseries") {
    response = timeseries(request);
  } else if (request.path == "/layout") {
    const auto fmt = request.query.find("format");
    const bool tsv = fmt != request.query.end() && fmt->second == "tsv";
    if (layout_ == nullptr) {
      response.content_type = "application/json";
      response.body =
          "{\"enabled\":false,\"epoch\":0,\"swaps\":{\"committed\":0,"
          "\"rolled_back\":0},\"history\":[],\"epochs\":[]}";
    } else if (tsv) {
      response.content_type = "text/plain; charset=utf-8";
      response.body = layout_(true);
    } else {
      response.content_type = "application/json";
      response.body = layout_(false);
    }
  } else if (request.path == "/flows") {
    const auto fmt = request.query.find("format");
    const bool tsv = fmt != request.query.end() && fmt->second == "tsv";
    if (flows_ == nullptr) {
      response.content_type = "application/json";
      response.body = "{\"enabled\":false,\"tenants\":[]}";
    } else if (tsv) {
      response.content_type = "text/plain; charset=utf-8";
      response.body = flows_(true);
    } else {
      response.content_type = "application/json";
      response.body = flows_(false);
    }
  } else {
    // Structured 404: machine-readable, and it teaches the caller the
    // route table instead of a bare "not found".
    response.status = 404;
    response.content_type = "application/json";
    response.body = "{\"error\":\"not found\",\"path\":\"" +
                    escape_json(request.path) +
                    "\",\"routes\":[\"/metrics\",\"/metrics.json\","
                    "\"/healthz\",\"/readyz\",\"/traces\",\"/flight\","
                    "\"/alerts\",\"/timeseries\",\"/layout\",\"/flows\"]}";
  }
  return response;
}

http::Response ObservabilityServer::timeseries(const http::Request& request) {
  http::Response response;
  response.content_type = "application/json";
  if (store_ == nullptr) {
    response.status = 404;
    response.body =
        "{\"error\":\"time-series monitor is not enabled\","
        "\"hint\":\"run the engine with health rules, a server, or "
        "with_monitor(true)\"}";
    return response;
  }

  const auto format_it = request.query.find("format");
  const bool tsv = format_it != request.query.end() &&
                   format_it->second == "tsv";

  const auto metric_it = request.query.find("metric");
  if (metric_it == request.query.end()) {
    // Catalog: what has been sampled, and on what tick.
    const std::vector<std::string> names = store_->metric_names();
    std::ostringstream out;
    if (tsv) {
      response.content_type = "text/plain; charset=utf-8";
      for (const std::string& name : names) out << name << '\n';
    } else {
      out << "{\"tick_seconds\":" << store_->config().tick_seconds
          << ",\"ticks\":" << store_->ticks() << ",\"metrics\":[";
      for (std::size_t i = 0; i < names.size(); ++i) {
        out << (i == 0 ? "" : ",") << '"' << escape_json(names[i]) << '"';
      }
      out << "]}";
    }
    response.body = out.str();
    return response;
  }

  double window_seconds = 10.0;
  const auto window_it = request.query.find("window");
  if (window_it != request.query.end()) {
    try {
      window_seconds = parse_window_seconds(window_it->second);
    } catch (const Error& e) {
      response.status = 400;
      response.body = "{\"error\":\"" + escape_json(e.what()) + "\"}";
      return response;
    }
  }

  const std::optional<FamilyWindow> family =
      store_->family_window(metric_it->second, window_seconds);
  if (!family) {
    response.status = 404;
    response.body = "{\"error\":\"no such sampled metric\",\"metric\":\"" +
                    escape_json(metric_it->second) + "\"}";
    return response;
  }

  const auto labels_json = [](const Labels& labels) {
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      out += (i == 0 ? "\"" : ",\"");
      out += escape_json(labels[i].first);
      out += "\":\"";
      out += escape_json(labels[i].second);
      out += '"';
    }
    out += '}';
    return out;
  };
  const auto series_fields = [&](std::ostream& out, const SeriesWindow& s) {
    out << "\"samples\":" << s.samples << ",\"seconds\":" << s.seconds
        << ",\"last\":" << s.last;
    switch (family->kind) {
      case MetricKind::counter:
        out << ",\"rate\":" << s.rate;
        break;
      case MetricKind::gauge:
        out << ",\"min\":" << s.min << ",\"mean\":" << s.mean
            << ",\"max\":" << s.max;
        break;
      case MetricKind::histogram:
        out << ",\"count\":" << s.delta.count << ",\"sum\":" << s.delta.sum
            << ",\"mean\":" << s.delta.mean()
            << ",\"p50\":" << s.delta.quantile_upper_bound(0.50)
            << ",\"p99\":" << s.delta.quantile_upper_bound(0.99)
            << ",\"p999\":" << s.delta.quantile_upper_bound(0.999);
        break;
    }
  };

  std::ostringstream out;
  if (tsv) {
    // One line per series: canonical labels, then the kind's key numbers —
    // trivially parseable by `opendesc top` and awk alike.
    response.content_type = "text/plain; charset=utf-8";
    for (const SeriesWindow& s : family->series) {
      out << canonical_labels(s.labels);
      switch (family->kind) {
        case MetricKind::counter:
          out << '\t' << s.rate << '\t' << s.last;
          break;
        case MetricKind::gauge:
          out << '\t' << s.min << '\t' << s.mean << '\t' << s.max << '\t'
              << s.last;
          break;
        case MetricKind::histogram:
          out << '\t' << s.delta.count << '\t' << s.delta.mean() << '\t'
              << s.delta.quantile_upper_bound(0.50) << '\t'
              << s.delta.quantile_upper_bound(0.99) << '\t'
              << s.delta.quantile_upper_bound(0.999);
          break;
      }
      out << '\n';
    }
  } else {
    out << "{\"metric\":\"" << escape_json(family->name) << "\",\"kind\":\""
        << to_string(family->kind)
        << "\",\"window_seconds\":" << window_seconds
        << ",\"tick_seconds\":" << store_->config().tick_seconds
        << ",\"ticks\":" << store_->ticks() << ",\"series\":[";
    for (std::size_t i = 0; i < family->series.size(); ++i) {
      const SeriesWindow& s = family->series[i];
      out << (i == 0 ? "" : ",") << "{\"labels\":" << labels_json(s.labels)
          << ',';
      series_fields(out, s);
      out << '}';
    }
    out << "],\"total\":{";
    SeriesWindow total;
    total.samples = family->total.samples;
    total.seconds = family->total.seconds;
    total.last = family->total.last;
    total.rate = family->total.rate;
    total.min = family->total.min;
    total.mean = family->total.mean;
    total.max = family->total.max;
    total.delta = family->total.delta;
    series_fields(out, total);
    out << "}}";
  }
  response.body = out.str();
  return response;
}

http::Response ObservabilityServer::traces(const http::Request& request) {
  http::Response response;
  response.content_type = "application/json";

  const auto ring_name = [this](std::size_t index) -> std::string {
    if (index < sink_->queues()) {
      return "queue" + std::to_string(index);
    }
    return index == sink_->queues() ? "dispatch" : "ctrl";
  };

  const auto it = request.query.find("queue");
  if (it == request.query.end()) {
    std::ostringstream out;
    out << "{\"rings\":[";
    const std::vector<TraceRing>& rings = sink_->rings();
    for (std::size_t i = 0; i < rings.size(); ++i) {
      out << (i == 0 ? "" : ",") << trace_ring_json(rings[i], ring_name(i));
    }
    out << "]}";
    response.body = out.str();
    return response;
  }

  const std::string& which = it->second;
  if (which == "dispatch") {
    response.body = trace_ring_json(sink_->dispatch_ring(), "dispatch");
    return response;
  }
  if (which == "ctrl") {
    response.body = trace_ring_json(sink_->ctrl_ring(), "ctrl");
    return response;
  }
  std::size_t queue = 0;
  try {
    queue = static_cast<std::size_t>(std::stoul(which));
  } catch (const std::exception&) {
    response.status = 400;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "bad queue parameter: '" + which + "'\n";
    return response;
  }
  if (queue >= sink_->queues()) {
    response.status = 404;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "no such queue: " + which + " (have " +
                    std::to_string(sink_->queues()) + ")\n";
    return response;
  }
  response.body = trace_ring_json(sink_->ring(queue), ring_name(queue));
  return response;
}

}  // namespace opendesc::telemetry
