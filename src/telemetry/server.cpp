#include "telemetry/server.hpp"

#include <sstream>

#include "telemetry/exporter.hpp"

namespace opendesc::telemetry {

std::string trace_ring_json(const TraceRing& ring, std::string_view name) {
  const std::vector<TraceEvent> events = ring.snapshot();
  std::ostringstream out;
  out << "{\"ring\":\"" << escape_json(name)
      << "\",\"recorded\":" << ring.recorded()
      << ",\"dropped\":" << ring.dropped() << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out << (i == 0 ? "" : ",") << "{\"seq\":" << event.sequence
        << ",\"type\":\"" << to_string(event.type) << "\",\"detail\":"
        << static_cast<unsigned>(event.detail) << ",\"queue\":" << event.queue
        << ",\"arg\":" << event.arg << '}';
  }
  out << "]}";
  return out.str();
}

ObservabilityServer::ObservabilityServer(Sink& sink, http::ServerConfig config)
    : sink_(&sink),
      server_(std::move(config),
              [this](const http::Request& request) { return handle(request); }) {}

http::Response ObservabilityServer::handle(const http::Request& request) {
  http::Response response;
  if (request.path == "/metrics") {
    sink_->publish_trace_counters();
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = to_prometheus(sink_->registry());
  } else if (request.path == "/metrics.json") {
    sink_->publish_trace_counters();
    response.content_type = "application/json";
    response.body = to_json(sink_->registry());
  } else if (request.path == "/healthz") {
    response.body = "ok\n";
  } else if (request.path == "/readyz") {
    const bool ready = !ready_ || ready_();
    response.status = ready ? 200 : 503;
    response.body = ready ? "ready\n" : "not ready\n";
  } else if (request.path == "/traces") {
    response = traces(request);
  } else if (request.path == "/flight") {
    response.content_type = "application/json";
    response.body = sink_->flight().to_json();
  } else {
    response.status = 404;
    response.body = "not found\n";
  }
  return response;
}

http::Response ObservabilityServer::traces(const http::Request& request) {
  http::Response response;
  response.content_type = "application/json";

  const auto ring_name = [this](std::size_t index) -> std::string {
    if (index < sink_->queues()) {
      return "queue" + std::to_string(index);
    }
    return index == sink_->queues() ? "dispatch" : "ctrl";
  };

  const auto it = request.query.find("queue");
  if (it == request.query.end()) {
    std::ostringstream out;
    out << "{\"rings\":[";
    const std::vector<TraceRing>& rings = sink_->rings();
    for (std::size_t i = 0; i < rings.size(); ++i) {
      out << (i == 0 ? "" : ",") << trace_ring_json(rings[i], ring_name(i));
    }
    out << "]}";
    response.body = out.str();
    return response;
  }

  const std::string& which = it->second;
  if (which == "dispatch") {
    response.body = trace_ring_json(sink_->dispatch_ring(), "dispatch");
    return response;
  }
  if (which == "ctrl") {
    response.body = trace_ring_json(sink_->ctrl_ring(), "ctrl");
    return response;
  }
  std::size_t queue = 0;
  try {
    queue = static_cast<std::size_t>(std::stoul(which));
  } catch (const std::exception&) {
    response.status = 400;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "bad queue parameter: '" + which + "'\n";
    return response;
  }
  if (queue >= sink_->queues()) {
    response.status = 404;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "no such queue: " + which + " (have " +
                    std::to_string(sink_->queues()) + ")\n";
    return response;
  }
  response.body = trace_ring_json(sink_->ring(queue), ring_name(queue));
  return response;
}

}  // namespace opendesc::telemetry
