#include "telemetry/server.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "common/buildinfo.hpp"
#include "common/error.hpp"
#include "telemetry/exporter.hpp"
#include "telemetry/health.hpp"
#include "telemetry/spans.hpp"
#include "telemetry/timeseries.hpp"

namespace opendesc::telemetry {

std::string trace_ring_json(const TraceRing& ring, std::string_view name) {
  const std::vector<TraceEvent> events = ring.snapshot();
  std::ostringstream out;
  out << "{\"ring\":\"" << escape_json(name)
      << "\",\"recorded\":" << ring.recorded()
      << ",\"dropped\":" << ring.dropped() << ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out << (i == 0 ? "" : ",") << "{\"seq\":" << event.sequence
        << ",\"type\":\"" << to_string(event.type) << "\",\"detail\":"
        << static_cast<unsigned>(event.detail) << ",\"queue\":" << event.queue
        << ",\"arg\":" << event.arg << '}';
  }
  out << "]}";
  return out.str();
}

namespace {

/// The route label on opendesc_http_requests_total.  Known paths keep
/// their literal form; anything else collapses to "other" so a scanner
/// probing random paths cannot mint unbounded label values.
std::string normalize_route(const std::string& path) {
  static const char* const kKnown[] = {
      "/metrics",    "/metrics.json", "/healthz", "/readyz", "/traces",
      "/flight",     "/alerts",       "/events",  "/timeseries", "/layout",
      "/flows",      "/profile",      "/spans",   "/buildinfo",
  };
  for (const char* known : kKnown) {
    if (path == known) {
      return known;
    }
  }
  return "other";
}

}  // namespace

ObservabilityServer::ObservabilityServer(Sink& sink, http::ServerConfig config)
    : sink_(&sink), server_(std::move(config), build_router()) {
  install_http_metrics();
}

void ObservabilityServer::install_http_metrics() {
  // Pre-register the families so a scrape sees them (at zero) before the
  // first request lands; the {route,code} counter series appear lazily as
  // combinations are actually served.
  Registry& registry = sink_->registry();
  registry.counter("opendesc_http_requests_total",
                   "HTTP requests served by the observability server",
                   {{"route", "/metrics"}, {"code", "200"}});
  http_connections_ = &registry.gauge(
      "opendesc_http_connections",
      "Currently open observability-server connections");
  http_latency_ = &registry.histogram(
      "opendesc_http_request_duration_ns",
      "Route-handler wall time per observability request (ns)");
  server_.set_metrics_hook(
      [this](const http::Request& request, int status, double duration_ns) {
        sink_->registry()
            .counter("opendesc_http_requests_total",
                     "HTTP requests served by the observability server",
                     {{"route", normalize_route(request.path)},
                      {"code", std::to_string(status)}})
            .add();
        http_connections_->set(static_cast<double>(server_.connections()));
        const std::lock_guard<std::mutex> lock(http_metrics_mutex_);
        http_latency_->shard(0).observe(
            duration_ns <= 0.0 ? 0 : static_cast<std::uint64_t>(duration_ns));
      });
}

http::Router ObservabilityServer::build_router() {
  // Handlers capture `this` and read the provider members at request time,
  // so set_*() installed between construction and start() all take effect.
  http::Router router;
  router.get("/metrics", [this](const http::Request&) {
    return metrics(/*json=*/false);
  });
  router.get("/metrics.json", [this](const http::Request&) {
    return metrics(/*json=*/true);
  });
  router.get("/healthz", [](const http::Request&) {
    http::Response response;
    response.body = "ok\n";
    return response;
  });
  router.get("/readyz", [this](const http::Request&) {
    const bool ready = !ready_ || ready_();
    http::Response response;
    response.status = ready ? 200 : 503;
    response.body = ready ? "ready\n" : "not ready\n";
    return response;
  });
  router.get("/traces",
             [this](const http::Request& request) { return traces(request); });
  router.get("/flight", [this](const http::Request&) {
    http::Response response;
    response.content_type = "application/json";
    response.body = sink_->flight().to_json();
    return response;
  });
  router.get("/alerts",
             [this](const http::Request& request) { return alerts(request); });
  router.get("/events",
             [this](const http::Request& request) { return events(request); });
  router.get("/timeseries", [this](const http::Request& request) {
    return timeseries(request);
  });
  router.get("/layout", [this](const http::Request& request) {
    return layout_status(request);
  });
  router.post("/layout", [this](const http::Request& request) {
    return post_layout(request);
  });
  router.get("/flows",
             [this](const http::Request& request) { return flows(request); });
  router.get("/profile", [this](const http::Request& request) {
    return profile(request);
  });
  router.get("/spans",
             [this](const http::Request& request) { return spans(request); });
  router.get("/buildinfo", [](const http::Request&) {
    http::Response response;
    response.content_type = "application/json";
    response.body = build_info_json();
    return response;
  });
  return router;
}

namespace {

std::string render_profile(const std::string& format,
                           const ProfileCapture& capture) {
  if (format == "collapsed") {
    return render_profile_collapsed(capture);
  }
  if (format == "speedscope") {
    return render_profile_speedscope(capture);
  }
  if (format == "tsv") {
    return render_profile_tsv(capture);
  }
  return render_profile_json(capture);
}

}  // namespace

http::Response ObservabilityServer::profile(const http::Request& request) {
  http::Response response;
  std::string format = "json";
  const auto fmt = request.query.find("format");
  if (fmt != request.query.end()) {
    format = fmt->second;
  }
  if (format != "json" && format != "collapsed" && format != "speedscope" &&
      format != "tsv") {
    throw http::HttpError(
        400, "unknown format (expected json, collapsed, speedscope or tsv)");
  }
  response.content_type = format == "json" || format == "speedscope"
                              ? "application/json"
                              : "text/plain; charset=utf-8";
  // ?seconds=0 (the default) answers the cumulative profile immediately;
  // ?seconds=N captures an N-second window: baseline now, stream the delta
  // when the window elapses.  The producer runs on the event loop, so it
  // emits nothing (= "poll me again") until the deadline instead of
  // blocking a worker.
  const std::uint64_t seconds =
      std::min<std::uint64_t>(request.query_u64("seconds").value_or(0), 300);
  if (seconds == 0) {
    response.body = render_profile(format, sink_->profiler().capture());
    return response;
  }
  struct WindowState {
    ProfileCapture base;
    std::chrono::steady_clock::time_point deadline;
    double window_seconds = 0.0;
  };
  auto state = std::make_shared<WindowState>();
  state->base = sink_->profiler().capture();
  state->deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(static_cast<long>(seconds));
  state->window_seconds = static_cast<double>(seconds);
  Sink* const sink = sink_;
  response.live = true;
  response.stream = [sink, state, format](http::ResponseWriter& writer) {
    if (std::chrono::steady_clock::now() < state->deadline) {
      return;  // window still open: emit nothing, get polled again
    }
    ProfileCapture delta = sink->profiler().capture().since(state->base);
    delta.window_seconds = state->window_seconds;
    writer.write(render_profile(format, delta));
    writer.end();
  };
  return response;
}

http::Response ObservabilityServer::metrics(bool json) {
  sink_->publish_trace_counters();
  http::Response response;
  response.content_type = json ? "application/json"
                               : "text/plain; version=0.0.4; charset=utf-8";
  // Stream family by family: families() copies the family index (the
  // instrument pointers stay valid for the registry's lifetime), and the
  // event loop pulls one family per producer call, so a scrape of a huge
  // registry is bounded by the loop's high-water mark, not the body size.
  auto families = std::make_shared<std::vector<Registry::Family>>(
      sink_->registry().families());
  auto index = std::make_shared<std::size_t>(0);
  if (json) {
    response.stream = [families, index](http::ResponseWriter& writer) {
      std::size_t& i = *index;
      if (i == 0) {
        writer.write("{\"metrics\":[");
      }
      if (i < families->size()) {
        std::string piece = i == 0 ? "" : ",";
        piece += json_family((*families)[i]);
        writer.write(piece);
        if (++i < families->size()) {
          return;
        }
      }
      writer.write("]}");
      writer.end();
    };
  } else {
    response.stream = [families, index](http::ResponseWriter& writer) {
      if (*index >= families->size()) {
        writer.end();
        return;
      }
      writer.write(prometheus_family((*families)[(*index)++]));
    };
  }
  return response;
}

http::Response ObservabilityServer::alerts(const http::Request& request) {
  http::Response response;
  const auto fmt = request.query.find("format");
  if (fmt != request.query.end() && fmt->second == "tsv") {
    // Flat rendering for `opendesc top` and shell tooling: one rule per
    // line — name, state, value, threshold, consecutive, fired, capture.
    std::ostringstream out;
    if (health_ != nullptr) {
      for (const AlertStatus& a : health_->snapshot()) {
        out << a.rule << '\t' << to_string(a.state) << '\t' << a.value << '\t'
            << to_string(a.cmp) << '\t' << a.threshold << '\t'
            << a.consecutive << '\t' << a.fired_total << '\t' << a.capture_id
            << '\n';
      }
    }
    response.body = out.str();
  } else {
    response.content_type = "application/json";
    response.body = health_ != nullptr
                        ? health_->to_json()
                        : std::string(
                              "{\"enabled\":false,\"evaluations\":0,"
                              "\"firing\":0,\"rules\":[]}");
  }
  return response;
}

http::Response ObservabilityServer::events(const http::Request& request) {
  http::Response response;
  response.content_type = "text/event-stream";
  response.headers["Cache-Control"] = "no-cache";
  if (health_ == nullptr) {
    // Finite stream: say why there is nothing to watch, then close.
    response.stream = [](http::ResponseWriter& writer) {
      writer.write("event: hello\ndata: {\"enabled\":false}\n\n");
      writer.end();
    };
    return response;
  }

  // Live stream: a hello event, then one "alert" event per firing/resolved
  // transition observed between loop ticks.  Rules already firing when the
  // client connects are reported immediately (their baseline is inactive).
  const std::uint64_t max_alerts = request.query_u64("max").value_or(0);
  struct StreamState {
    bool hello = false;
    std::map<std::string, AlertState> baseline;
    std::uint64_t sent = 0;
  };
  auto state = std::make_shared<StreamState>();
  const HealthEngine* health = health_;
  response.live = true;
  response.stream = [health, state, max_alerts](http::ResponseWriter& writer) {
    if (!state->hello) {
      state->hello = true;
      writer.write("event: hello\ndata: {\"stream\":\"alerts\"}\n\n");
    }
    for (const AlertStatus& a : health->snapshot()) {
      const auto it = state->baseline.find(a.rule);
      const AlertState previous =
          it == state->baseline.end() ? AlertState::inactive : it->second;
      state->baseline[a.rule] = a.state;
      const bool fired =
          a.state == AlertState::firing && previous != AlertState::firing;
      const bool resolved =
          a.state == AlertState::resolved && previous == AlertState::firing;
      if (!fired && !resolved) {
        continue;
      }
      std::ostringstream data;
      data << "event: alert\ndata: {\"rule\":\"" << escape_json(a.rule)
           << "\",\"state\":\"" << to_string(a.state)
           << "\",\"value\":" << a.value << ",\"threshold\":" << a.threshold
           << ",\"fired_total\":" << a.fired_total
           << ",\"capture\":" << a.capture_id << "}\n\n";
      writer.write(data.str());
      ++state->sent;
      if (max_alerts != 0 && state->sent >= max_alerts) {
        writer.end();
        return;
      }
    }
  };
  return response;
}

http::Response ObservabilityServer::timeseries(const http::Request& request) {
  http::Response response;
  response.content_type = "application/json";
  if (store_ == nullptr) {
    response.status = 404;
    response.body =
        "{\"error\":\"time-series monitor is not enabled\","
        "\"hint\":\"run the engine with health rules, a server, or "
        "with_monitor(true)\"}";
    return response;
  }
  if (request.query_flag("follow")) {
    return timeseries_follow(request);
  }

  const auto format_it = request.query.find("format");
  const bool tsv = format_it != request.query.end() &&
                   format_it->second == "tsv";

  const auto metric_it = request.query.find("metric");
  if (metric_it == request.query.end()) {
    // Catalog: what has been sampled, and on what tick.
    const std::vector<std::string> names = store_->metric_names();
    std::ostringstream out;
    if (tsv) {
      response.content_type = "text/plain; charset=utf-8";
      for (const std::string& name : names) out << name << '\n';
    } else {
      out << "{\"tick_seconds\":" << store_->config().tick_seconds
          << ",\"ticks\":" << store_->ticks() << ",\"metrics\":[";
      for (std::size_t i = 0; i < names.size(); ++i) {
        out << (i == 0 ? "" : ",") << '"' << escape_json(names[i]) << '"';
      }
      out << "]}";
    }
    response.body = out.str();
    return response;
  }

  double window_seconds = 10.0;
  const auto window_it = request.query.find("window");
  if (window_it != request.query.end()) {
    try {
      window_seconds = parse_window_seconds(window_it->second);
    } catch (const Error& e) {
      response.status = 400;
      response.body = "{\"error\":\"" + escape_json(e.what()) + "\"}";
      return response;
    }
  }

  const std::optional<FamilyWindow> family =
      store_->family_window(metric_it->second, window_seconds);
  if (!family) {
    response.status = 404;
    response.body = "{\"error\":\"no such sampled metric\",\"metric\":\"" +
                    escape_json(metric_it->second) + "\"}";
    return response;
  }

  if (tsv) {
    // One line per series: canonical labels, then the kind's key numbers —
    // trivially parseable by `opendesc top` and awk alike.
    response.content_type = "text/plain; charset=utf-8";
    std::ostringstream out;
    for (const SeriesWindow& s : family->series) {
      out << canonical_labels(s.labels);
      switch (family->kind) {
        case MetricKind::counter:
          out << '\t' << s.rate << '\t' << s.last;
          break;
        case MetricKind::gauge:
          out << '\t' << s.min << '\t' << s.mean << '\t' << s.max << '\t'
              << s.last;
          break;
        case MetricKind::histogram:
          out << '\t' << s.delta.count << '\t' << s.delta.mean() << '\t'
              << s.delta.quantile_upper_bound(0.50) << '\t'
              << s.delta.quantile_upper_bound(0.99) << '\t'
              << s.delta.quantile_upper_bound(0.999);
          break;
      }
      out << '\n';
    }
    response.body = out.str();
    return response;
  }
  response.body = family_window_json(*family, window_seconds);
  return response;
}

http::Response ObservabilityServer::timeseries_follow(
    const http::Request& request) {
  const std::string* metric = request.query_get("metric");
  if (metric == nullptr) {
    throw http::HttpError(400, "follow requires a metric parameter");
  }
  double window_seconds = 10.0;
  const std::string* window = request.query_get("window");
  if (window != nullptr) {
    try {
      window_seconds = parse_window_seconds(*window);
    } catch (const Error& e) {
      throw http::HttpError(400, e.what());
    }
  }
  const std::uint64_t max_ticks = request.query_u64("count").value_or(0);

  http::Response response;
  response.content_type = "text/event-stream";
  response.headers["Cache-Control"] = "no-cache";
  response.live = true;
  struct StreamState {
    bool hello = false;
    std::uint64_t last_tick = 0;
    std::uint64_t sent = 0;
  };
  auto state = std::make_shared<StreamState>();
  const TimeSeriesStore* store = store_;
  const std::string name = *metric;
  const ObservabilityServer* self = this;
  response.stream = [self, store, state, name, window_seconds,
                     max_ticks](http::ResponseWriter& writer) {
    if (!state->hello) {
      state->hello = true;
      writer.write("event: hello\ndata: {\"stream\":\"timeseries\","
                   "\"metric\":\"" + escape_json(name) + "\"}\n\n");
      state->last_tick = store->ticks();
      // Fall through: emit the current window right away so a follower
      // does not wait a full tick for its first datapoint.
    } else {
      const std::uint64_t tick = store->ticks();
      if (tick == state->last_tick) {
        return;  // nothing new; the loop re-polls on its tick
      }
      state->last_tick = tick;
    }
    const std::optional<FamilyWindow> family =
        store->family_window(name, window_seconds);
    if (!family) {
      return;  // not sampled yet; keep waiting
    }
    writer.write("event: tick\ndata: " +
                 self->family_window_json(*family, window_seconds) + "\n\n");
    ++state->sent;
    if (max_ticks != 0 && state->sent >= max_ticks) {
      writer.end();
    }
  };
  return response;
}

std::string ObservabilityServer::family_window_json(
    const FamilyWindow& family, double window_seconds) const {
  const auto labels_json = [](const Labels& labels) {
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      out += (i == 0 ? "\"" : ",\"");
      out += escape_json(labels[i].first);
      out += "\":\"";
      out += escape_json(labels[i].second);
      out += '"';
    }
    out += '}';
    return out;
  };
  const auto series_fields = [&](std::ostream& out, const SeriesWindow& s) {
    out << "\"samples\":" << s.samples << ",\"seconds\":" << s.seconds
        << ",\"last\":" << s.last;
    switch (family.kind) {
      case MetricKind::counter:
        out << ",\"rate\":" << s.rate;
        break;
      case MetricKind::gauge:
        out << ",\"min\":" << s.min << ",\"mean\":" << s.mean
            << ",\"max\":" << s.max;
        break;
      case MetricKind::histogram:
        out << ",\"count\":" << s.delta.count << ",\"sum\":" << s.delta.sum
            << ",\"mean\":" << s.delta.mean()
            << ",\"p50\":" << s.delta.quantile_upper_bound(0.50)
            << ",\"p99\":" << s.delta.quantile_upper_bound(0.99)
            << ",\"p999\":" << s.delta.quantile_upper_bound(0.999);
        break;
    }
  };

  std::ostringstream out;
  out << "{\"metric\":\"" << escape_json(family.name) << "\",\"kind\":\""
      << to_string(family.kind) << "\",\"window_seconds\":" << window_seconds
      << ",\"tick_seconds\":" << store_->config().tick_seconds
      << ",\"ticks\":" << store_->ticks() << ",\"series\":[";
  for (std::size_t i = 0; i < family.series.size(); ++i) {
    const SeriesWindow& s = family.series[i];
    out << (i == 0 ? "" : ",") << "{\"labels\":" << labels_json(s.labels)
        << ',';
    series_fields(out, s);
    out << '}';
  }
  out << "],\"total\":{";
  SeriesWindow total;
  total.samples = family.total.samples;
  total.seconds = family.total.seconds;
  total.last = family.total.last;
  total.rate = family.total.rate;
  total.min = family.total.min;
  total.mean = family.total.mean;
  total.max = family.total.max;
  total.delta = family.total.delta;
  series_fields(out, total);
  out << "}}";
  return out.str();
}

http::Response ObservabilityServer::layout_status(
    const http::Request& request) {
  http::Response response;
  const auto fmt = request.query.find("format");
  const bool tsv = fmt != request.query.end() && fmt->second == "tsv";
  if (layout_ == nullptr) {
    response.content_type = "application/json";
    response.body =
        "{\"enabled\":false,\"epoch\":0,\"swaps\":{\"committed\":0,"
        "\"rolled_back\":0},\"history\":[],\"epochs\":[]}";
  } else if (tsv) {
    response.content_type = "text/plain; charset=utf-8";
    response.body = layout_(true);
  } else {
    response.content_type = "application/json";
    response.body = layout_(false);
  }
  return response;
}

http::Response ObservabilityServer::post_layout(const http::Request& request) {
  http::Response response;
  response.content_type = "application/json";
  if (swap_ == nullptr) {
    response.status = 403;
    response.body =
        "{\"error\":\"layout swaps are not enabled\","
        "\"hint\":\"run the engine with a swap token and a swap cycle\"}";
    return response;
  }
  if (request.header("authorization") != "Bearer " + swap_token_) {
    response.status = 401;
    response.headers["WWW-Authenticate"] = "Bearer";
    response.body = "{\"error\":\"unauthorized\"}";
    return response;
  }
  return swap_(request);
}

http::Response ObservabilityServer::flows(const http::Request& request) {
  http::Response response;
  const auto fmt = request.query.find("format");
  const bool tsv = fmt != request.query.end() && fmt->second == "tsv";
  if (tsv) {
    if (flows_ == nullptr) {
      response.content_type = "application/json";
      response.body = "{\"enabled\":false,\"tenants\":[]}";
    } else {
      response.content_type = "text/plain; charset=utf-8";
      response.body = flows_(true);
    }
    return response;
  }
  if (flows_json_ != nullptr) {
    return flows_json_(request);
  }
  response.content_type = "application/json";
  response.body =
      flows_ == nullptr ? "{\"enabled\":false,\"tenants\":[]}" : flows_(false);
  return response;
}

http::Response ObservabilityServer::traces(const http::Request& request) {
  http::Response response;
  response.content_type = "application/json";

  const auto ring_name = [this](std::size_t index) -> std::string {
    if (index < sink_->queues()) {
      return "queue" + std::to_string(index);
    }
    return index == sink_->queues() ? "dispatch" : "ctrl";
  };

  const auto it = request.query.find("queue");
  if (it == request.query.end()) {
    std::ostringstream out;
    out << "{\"rings\":[";
    const std::vector<TraceRing>& rings = sink_->rings();
    for (std::size_t i = 0; i < rings.size(); ++i) {
      out << (i == 0 ? "" : ",") << trace_ring_json(rings[i], ring_name(i));
    }
    out << "]}";
    response.body = out.str();
    return response;
  }

  const std::string& which = it->second;
  if (which == "dispatch") {
    response.body = trace_ring_json(sink_->dispatch_ring(), "dispatch");
    return response;
  }
  if (which == "ctrl") {
    response.body = trace_ring_json(sink_->ctrl_ring(), "ctrl");
    return response;
  }
  std::size_t queue = 0;
  try {
    queue = static_cast<std::size_t>(std::stoul(which));
  } catch (const std::exception&) {
    response.status = 400;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "bad queue parameter: '" + which + "'\n";
    return response;
  }
  if (queue >= sink_->queues()) {
    response.status = 404;
    response.content_type = "text/plain; charset=utf-8";
    response.body = "no such queue: " + which + " (have " +
                    std::to_string(sink_->queues()) + ")\n";
    return response;
  }
  response.body = trace_ring_json(sink_->ring(queue), ring_name(queue));
  return response;
}

http::Response ObservabilityServer::spans(const http::Request& request) {
  std::string format = "json";
  const auto fmt = request.query.find("format");
  if (fmt != request.query.end()) {
    format = fmt->second;
  }
  if (format != "json" && format != "otlp" && format != "perfetto") {
    throw http::HttpError(400,
                          "unknown format (expected json, otlp or perfetto)");
  }
  if (request.query_flag("follow")) {
    if (format != "json") {
      throw http::HttpError(400, "follow only streams the json format");
    }
    return spans_follow(request);
  }
  const std::uint64_t limit = request.query_u64("limit").value_or(0);
  std::vector<SpanRecord> all;
  for (const SpanRing& ring : sink_->span_rings()) {
    std::vector<SpanRecord> part = ring.snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  const std::vector<TraceView> traces =
      group_traces(std::move(all), static_cast<std::size_t>(limit));
  http::Response response;
  response.content_type = "application/json";
  if (format == "otlp") {
    response.body = render_spans_otlp(traces, tenant_, sink_->queues());
  } else if (format == "perfetto") {
    response.body = render_spans_perfetto(traces, tenant_, sink_->queues());
  } else {
    response.body = render_spans_json(traces, tenant_, sink_->queues());
  }
  return response;
}

http::Response ObservabilityServer::spans_follow(const http::Request& request) {
  const std::uint64_t max_events = request.query_u64("count").value_or(0);

  http::Response response;
  response.content_type = "text/event-stream";
  response.headers["Cache-Control"] = "no-cache";
  response.live = true;
  // One watermark per ring: start at 0 so the first poll replays what the
  // rings retain (a follower sees recent history immediately, like
  // /timeseries?follow), then advance past every span already sent.
  struct StreamState {
    bool hello = false;
    std::vector<std::uint64_t> watermarks;
    std::uint64_t sent = 0;
  };
  auto state = std::make_shared<StreamState>();
  Sink* const sink = sink_;
  const std::string tenant = tenant_;
  response.stream = [sink, state, tenant,
                     max_events](http::ResponseWriter& writer) {
    const std::vector<SpanRing>& rings = sink->span_rings();
    if (!state->hello) {
      state->hello = true;
      state->watermarks.assign(rings.size(), 0);
      writer.write("event: hello\ndata: {\"stream\":\"spans\"}\n\n");
    }
    std::vector<SpanRecord> fresh;
    for (std::size_t i = 0; i < rings.size(); ++i) {
      std::vector<SpanRecord> part = rings[i].since(state->watermarks[i]);
      for (const SpanRecord& span : part) {
        if (span.sequence + 1 > state->watermarks[i]) {
          state->watermarks[i] = span.sequence + 1;
        }
      }
      fresh.insert(fresh.end(), part.begin(), part.end());
    }
    if (fresh.empty()) {
      return;  // nothing new; the loop re-polls on its tick
    }
    writer.write("event: spans\ndata: " +
                 render_spans_json(group_traces(std::move(fresh), 0), tenant,
                                   sink->queues()) +
                 "\n\n");
    ++state->sent;
    if (max_events != 0 && state->sent >= max_events) {
      writer.end();
    }
  };
  return response;
}

}  // namespace opendesc::telemetry
