// telemetry::Sink — the one handle a datapath component needs.
//
// A Sink bundles the instrument Registry with the per-thread trace rings so
// wiring telemetry into a loop or engine is a single pointer: each worker
// queue gets its own TraceRing and its own batch-latency histogram shard
// (both single-writer), the dispatch thread and the control plane get
// dedicated rings, and exposition walks the shared Registry.  A null
// Sink* anywhere in the stack means "telemetry off" and costs one branch.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "telemetry/flight.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/spans.hpp"
#include "telemetry/trace.hpp"

namespace opendesc::telemetry {

/// Datapath pipeline stages instrumented with per-batch latency spans.
/// steer and handoff are dispatch-thread work; ring, validate and consume
/// happen on the worker driving the queue.
enum class Stage : std::uint8_t {
  steer,     ///< dispatch: classify a burst to destination queues
  ring,      ///< worker: feed rx, poll completions, advance the sim ring
  validate,  ///< worker: schema/bounds validation of polled records
  consume,   ///< worker: accessor reads or SoftNIC shim per record
  handoff,   ///< dispatch: SPSC push of a classified burst to its worker
};

inline constexpr std::size_t kStageCount = 5;

[[nodiscard]] std::string_view to_string(Stage stage) noexcept;

/// The profiler stage a histogram span stage accounts into.
[[nodiscard]] constexpr ProfileStage to_profile_stage(Stage stage) noexcept {
  switch (stage) {
    case Stage::steer:
      return ProfileStage::steer;
    case Stage::ring:
      return ProfileStage::ring;
    case Stage::validate:
      return ProfileStage::validate;
    case Stage::consume:
      return ProfileStage::consume;
    case Stage::handoff:
      return ProfileStage::handoff;
  }
  return ProfileStage::wait;
}

struct SinkConfig {
  std::size_t queues = 1;          ///< worker rings / histogram shards
  std::size_t trace_capacity = 4096;  ///< per-ring retained events
  std::size_t flight_capacity = 32;   ///< retained flight incidents
  std::size_t flight_context = 16;    ///< trace events captured per incident
  std::size_t span_capacity = 2048;   ///< per-ring retained lifecycle spans
};

class Sink {
 public:
  explicit Sink(SinkConfig config = {});
  Sink(const Sink&) = delete;
  Sink& operator=(const Sink&) = delete;

  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const Registry& registry() const noexcept { return registry_; }

  [[nodiscard]] std::size_t queues() const noexcept { return queues_; }

  /// Worker queue q's ring; record() only from the thread driving queue q.
  [[nodiscard]] TraceRing& ring(std::size_t queue) { return rings_.at(queue); }
  /// The steering/dispatch thread's ring.
  [[nodiscard]] TraceRing& dispatch_ring() noexcept {
    return rings_[queues_];
  }
  /// The control-plane (programming / verification) ring.
  [[nodiscard]] TraceRing& ctrl_ring() noexcept { return rings_[queues_ + 1]; }

  /// All rings (workers, then dispatch, then ctrl), for draining after the
  /// writers have quiesced.
  [[nodiscard]] const std::vector<TraceRing>& rings() const noexcept {
    return rings_;
  }

  /// Worker queue q's span ring (causal packet tracing); record() only from
  /// the thread driving queue q.
  [[nodiscard]] SpanRing& span_ring(std::size_t queue) {
    return span_rings_.at(queue);
  }
  /// The dispatch thread's span ring (tx_post / steer / handoff spans).
  [[nodiscard]] SpanRing& dispatch_span_ring() noexcept {
    return span_rings_[queues_];
  }
  /// All span rings (workers, then dispatch), for exposition snapshots.
  [[nodiscard]] const std::vector<SpanRing>& span_rings() const noexcept {
    return span_rings_;
  }
  /// The most recently minted trace id (dispatch ring), for stamping flight
  /// incidents and alert captures with "the sampled packet nearest in time".
  [[nodiscard]] std::uint64_t last_trace_id() const noexcept {
    // Dispatch mints ids at tx_post, so its ring carries the freshest one;
    // fall back to any worker ring (single-producer runs bypass dispatch).
    if (const std::uint64_t id = span_rings_[queues_].last_trace_id(); id != 0) {
      return id;
    }
    for (const SpanRing& ring : span_rings_) {
      if (const std::uint64_t id = ring.last_trace_id(); id != 0) {
        return id;
      }
    }
    return 0;
  }

  /// Per-batch host latency histogram; shard q is written only by queue q's
  /// worker.
  [[nodiscard]] Histogram::Shard& batch_latency_shard(std::size_t queue) {
    return batch_latency_->shard(queue);
  }
  [[nodiscard]] const Histogram& batch_latency() const noexcept {
    return *batch_latency_;
  }
  /// Mutable handle for exemplar attachment (record_exemplar is lock-free
  /// and safe from any thread).
  [[nodiscard]] Histogram& batch_latency_hist() noexcept {
    return *batch_latency_;
  }

  /// Per-stage per-batch latency shard.  Shards [0..queues) belong to the
  /// worker threads; shard `queues` belongs to the dispatch thread (which
  /// owns the steer and handoff stages).
  [[nodiscard]] Histogram::Shard& stage_shard(Stage stage, std::size_t shard) {
    return stage_latency_[static_cast<std::size_t>(stage)]->shard(shard);
  }
  [[nodiscard]] std::size_t dispatch_shard() const noexcept { return queues_; }
  [[nodiscard]] const Histogram& stage_latency(Stage stage) const noexcept {
    return *stage_latency_[static_cast<std::size_t>(stage)];
  }
  /// Mutable handle for exemplar attachment.
  [[nodiscard]] Histogram& stage_latency_hist(Stage stage) noexcept {
    return *stage_latency_[static_cast<std::size_t>(stage)];
  }

  /// The cycle-accounting profiler: shards [0..queues) belong to the worker
  /// threads, shard `queues` to the dispatch thread (same layout as the
  /// stage histograms).  Always constructed; writers opt out by simply not
  /// driving their shard.
  [[nodiscard]] Profiler& profiler() noexcept { return profiler_; }
  [[nodiscard]] const Profiler& profiler() const noexcept { return profiler_; }
  [[nodiscard]] ProfileShard& profile_shard(std::size_t shard) noexcept {
    return profiler_.shard(shard);
  }

  /// Bounded postmortem buffer; fault paths record(), /flight reads.
  [[nodiscard]] FlightRecorder& flight() noexcept { return flight_; }
  [[nodiscard]] const FlightRecorder& flight() const noexcept {
    return flight_;
  }

  /// Rolls every ring's per-type totals and drop counts into the registry
  /// (opendesc_trace_events_total{event=...}, opendesc_trace_dropped_total).
  /// Idempotent — totals are stored, not added — so call it whenever the
  /// writers are quiesced, e.g. right before exposition.
  void publish_trace_counters();

 private:
  std::size_t queues_;
  Registry registry_;
  std::vector<TraceRing> rings_;  ///< [0..queues) workers, +0 dispatch, +1 ctrl
  std::vector<SpanRing> span_rings_;  ///< [0..queues) workers, +0 dispatch
  Histogram* batch_latency_;      ///< owned by registry_
  std::array<Histogram*, kStageCount> stage_latency_{};  ///< owned by registry_
  FlightRecorder flight_;
  Profiler profiler_;  ///< queues_ worker shards + 1 dispatch shard
};

}  // namespace opendesc::telemetry
