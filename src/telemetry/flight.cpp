#include "telemetry/flight.hpp"

#include <sstream>

#include "telemetry/exporter.hpp"
#include "telemetry/spans.hpp"

namespace opendesc::telemetry {

std::string_view to_string(FlightCause cause) noexcept {
  switch (cause) {
    case FlightCause::record_quarantined:
      return "record_quarantined";
    case FlightCause::completion_lost:
      return "completion_lost";
    case FlightCause::ctrl_retry_exhausted:
      return "ctrl_retry_exhausted";
    case FlightCause::alert_fired:
      return "alert_fired";
    case FlightCause::layout_swap_rolled_back:
      return "layout_swap_rolled_back";
  }
  return "?";
}

std::string to_hex(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xF];
  }
  return out;
}

std::uint64_t FlightRecorder::record(FlightIncident incident) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  ++by_cause_[static_cast<std::size_t>(incident.cause)];
  incidents_.push_back(std::move(incident));
  while (incidents_.size() > capacity_) {
    incidents_.pop_front();
  }
  return total_;
}

std::vector<FlightIncident> FlightRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {incidents_.begin(), incidents_.end()};
}

std::uint64_t FlightRecorder::total() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t FlightRecorder::count(FlightCause cause) const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_cause_[static_cast<std::size_t>(cause)];
}

void FlightRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  incidents_.clear();
  total_ = 0;
  by_cause_.fill(0);
}

std::string FlightRecorder::to_json() const {
  // Snapshot under the lock, render outside it.
  std::vector<FlightIncident> incidents;
  std::uint64_t total = 0;
  std::array<std::uint64_t, kFlightCauseCount> by_cause{};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    incidents.assign(incidents_.begin(), incidents_.end());
    total = total_;
    by_cause = by_cause_;
  }

  std::ostringstream out;
  out << "{\"total\":" << total << ",\"retained\":" << incidents.size()
      << ",\"capacity\":" << capacity_ << ",\"counts\":{";
  for (std::size_t c = 0; c < kFlightCauseCount; ++c) {
    out << (c == 0 ? "" : ",") << '"'
        << to_string(static_cast<FlightCause>(c)) << "\":" << by_cause[c];
  }
  out << "},\"incidents\":[";
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    const FlightIncident& incident = incidents[i];
    out << (i == 0 ? "" : ",") << "{\"cause\":\""
        << to_string(incident.cause) << "\",\"queue\":" << incident.queue
        << ",\"detail\":" << static_cast<unsigned>(incident.detail)
        << ",\"sequence\":" << incident.sequence << ",\"trace_id\":\""
        << trace_id_hex(incident.trace_id) << "\",\"layout\":\""
        << escape_json(incident.layout_id) << "\",\"record\":\""
        << to_hex(incident.record) << "\",\"frame_head\":\""
        << to_hex(incident.frame_head) << "\",\"recent\":[";
    for (std::size_t e = 0; e < incident.recent.size(); ++e) {
      const TraceEvent& event = incident.recent[e];
      out << (e == 0 ? "" : ",") << "{\"seq\":" << event.sequence
          << ",\"type\":\"" << to_string(event.type) << "\",\"detail\":"
          << static_cast<unsigned>(event.detail)
          << ",\"queue\":" << event.queue << ",\"arg\":" << event.arg << '}';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace opendesc::telemetry
