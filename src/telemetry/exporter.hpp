// Exposition: renders a telemetry::Registry as a Prometheus text scrape or
// as JSON.
//
// Prometheus text format (version 0.0.4):
//   # HELP <name> <escaped help>
//   # TYPE <name> counter|gauge|histogram
//   <name>{k1="v1",k2="v2"} <value>
// Label values escape backslash, double-quote and newline; HELP text
// escapes backslash and newline.  Labels are sorted by key; histogram
// series expose cumulative <name>_bucket{...,le="..."} lines (the `le`
// label last), then <name>_sum and <name>_count.
//
// JSON mirrors the same structure ({"metrics": [{name, kind, help,
// series: [{labels, ...}]}]}) with only non-empty buckets listed, so a
// scrape of a large histogram stays compact.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace opendesc::telemetry {

/// Full Prometheus text exposition of the registry.
[[nodiscard]] std::string to_prometheus(const Registry& registry);

/// JSON exposition of the registry.
[[nodiscard]] std::string to_json(const Registry& registry);

/// One family's Prometheus text block (HELP/TYPE + series lines).  The
/// streaming /metrics endpoint renders family-by-family through this so a
/// large registry never materializes as one string.
[[nodiscard]] std::string prometheus_family(const Registry::Family& family);

/// One family's JSON object ({"name":...,"kind":...,"series":[...]}),
/// without surrounding punctuation — the streaming /metrics.json endpoint
/// joins these with commas inside {"metrics":[...]}.
[[nodiscard]] std::string json_family(const Registry::Family& family);

/// Writes the exposition chosen by the file extension: ".json" gets JSON,
/// anything else the Prometheus text format.  Throws Error(io) on failure.
void write_metrics_file(const Registry& registry, const std::string& path);

/// Escapes a Prometheus label value (backslash, double-quote, newline).
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Escapes HELP text (backslash, newline).
[[nodiscard]] std::string escape_help(std::string_view value);

/// Escapes a JSON string body (without the surrounding quotes).
[[nodiscard]] std::string escape_json(std::string_view value);

}  // namespace opendesc::telemetry
