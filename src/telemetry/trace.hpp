// Per-thread bounded trace ring.
//
// Counters say *how much*; the trace ring says *what happened, in order*:
// each datapath thread owns one ring and appends fixed-size typed events —
// record validated, quarantine, SoftNIC fallback per semantic, lost
// completion, queue handoff, control-channel retry.  The ring is bounded:
// when it wraps, the oldest events are overwritten and counted as dropped,
// so a fault storm can never grow memory, and the drop count tells the
// operator exactly how much history was lost.  Per-type totals are kept
// even for overwritten events.
//
// Threading: one writer per ring (the owning datapath thread); snapshot()
// may run concurrently from any thread — the live observability plane
// scrapes /traces while the workers run.  Every slot is a pair of atomic
// words the writer publishes with a release store of the write cursor;
// the reader copies its window and then discards whatever the writer
// overwrote during the copy, so a snapshot never blocks the writer and
// never returns a torn event.  clear() is the one writer-quiesced
// operation: it advances the epoch base below which events are invisible
// (a wrapped buffer never leaks pre-clear events into a later snapshot).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string_view>
#include <vector>

namespace opendesc::telemetry {

/// Every event class a datapath thread can record.
enum class TraceEventType : std::uint8_t {
  record_validated,    ///< records passed validation (arg: count in batch)
  record_quarantined,  ///< malformed record dead-lettered (detail: verdict)
  softnic_fallback,    ///< one semantic served in software (arg: semantic id)
  completion_lost,     ///< accepted by rx(), completion never arrived
  rx_rejected,         ///< device refused the packet (backpressure)
  queue_handoff,       ///< steering pushed a packet to a worker (queue: dest)
  ctrl_retry,          ///< control programming failed readback, backing off
  ctrl_programmed,     ///< control programming verified (detail: attempts)
  run_started,         ///< a loop/engine run began (arg: queue count)
  run_finished,        ///< a loop/engine run ended (arg: packets, truncated)
  layout_cutover,      ///< worker cut over to a new layout epoch (arg: epoch)
};

inline constexpr std::size_t kTraceEventTypeCount = 11;

[[nodiscard]] std::string_view to_string(TraceEventType type) noexcept;

/// One 16-byte trace record.
struct TraceEvent {
  TraceEventType type{};
  std::uint8_t detail = 0;     ///< type-specific (verdict, attempt, ...)
  std::uint16_t queue = 0;     ///< originating / destination queue
  std::uint32_t arg = 0;       ///< type-specific (raw semantic id, count, ...)
  std::uint64_t sequence = 0;  ///< producer-local logical time
};

class TraceRing {
 public:
  /// Capacity is rounded up to a power of two so the hot-path slot index is
  /// a mask, not a division.
  explicit TraceRing(std::size_t capacity = 4096)
      : buffer_(std::bit_ceil(capacity == 0 ? std::size_t{1} : capacity)),
        mask_(buffer_.size() - 1) {}

  TraceRing(TraceRing&& other) noexcept
      : buffer_(std::move(other.buffer_)), mask_(other.mask_) {
    recorded_.store(other.recorded_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    writing_.store(other.writing_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    base_.store(other.base_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    for (std::size_t t = 0; t < kTraceEventTypeCount; ++t) {
      by_type_[t].store(other.by_type_[t].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
  }
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Appends one event; overwrites (and drop-counts) the oldest when full.
  /// Single writer only.  Protocol: advance the write-start cursor, then
  /// release-store the slot words, then release-store the completion
  /// cursor.  The release stores carry the start-cursor advance with them:
  /// a concurrent snapshot that observed any word of this write (acquire
  /// loads) is guaranteed to observe the advance too, and discards the
  /// slot — while a quiesced ring snapshots its full window.
  void record(const TraceEvent& event) noexcept {
    const std::size_t t = static_cast<std::size_t>(event.type);
    by_type_[t].store(by_type_[t].load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
    const std::uint64_t index = recorded_.load(std::memory_order_relaxed);
    writing_.store(index + 1, std::memory_order_relaxed);
    Slot& slot = buffer_[static_cast<std::size_t>(index) & mask_];
    slot.head.store(pack_head(event), std::memory_order_release);
    slot.sequence.store(event.sequence, std::memory_order_release);
    recorded_.store(index + 1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.size(); }
  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t since = recorded();
    return static_cast<std::size_t>(
        since < buffer_.size() ? since : buffer_.size());
  }
  /// Total record() calls since construction or the last clear().
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_acquire) -
           base_.load(std::memory_order_acquire);
  }
  /// Events overwritten by ring wrap (recorded - retained).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded() - size();
  }
  /// Per-type totals, counted even for events later overwritten.
  [[nodiscard]] std::uint64_t count(TraceEventType type) const noexcept {
    return by_type_[static_cast<std::size_t>(type)].load(
        std::memory_order_relaxed);
  }

  /// Retained events, oldest first.  Safe against a concurrently recording
  /// writer: events the writer overwrote mid-copy are discarded, never
  /// returned torn.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// The newest `n` retained events (or fewer), oldest first — the context
  /// window a flight-recorder incident captures.
  [[nodiscard]] std::vector<TraceEvent> tail(std::size_t n) const;

  /// Forgets all retained events and per-type totals.  The retained window
  /// is invalidated by advancing the epoch base, not by zeroing storage, so
  /// a partial refill can never resurface pre-clear events through
  /// snapshot().  Writer-quiesced operation (like draining).
  void clear() noexcept {
    base_.store(recorded_.load(std::memory_order_relaxed),
                std::memory_order_release);
    for (std::size_t t = 0; t < kTraceEventTypeCount; ++t) {
      by_type_[t].store(0, std::memory_order_relaxed);
    }
  }

 private:
  /// Slot storage: one event packed into two atomic words, so concurrent
  /// snapshot reads are race-free by construction (TSan-clean) without a
  /// lock anywhere near the writer.
  struct Slot {
    std::atomic<std::uint64_t> head{0};  ///< type|detail|queue|arg
    std::atomic<std::uint64_t> sequence{0};
  };

  [[nodiscard]] static std::uint64_t pack_head(const TraceEvent& e) noexcept {
    return static_cast<std::uint64_t>(static_cast<std::uint8_t>(e.type)) |
           (static_cast<std::uint64_t>(e.detail) << 8) |
           (static_cast<std::uint64_t>(e.queue) << 16) |
           (static_cast<std::uint64_t>(e.arg) << 32);
  }
  [[nodiscard]] static TraceEvent unpack(std::uint64_t head,
                                         std::uint64_t sequence) noexcept {
    TraceEvent e;
    e.type = static_cast<TraceEventType>(head & 0xFF);
    e.detail = static_cast<std::uint8_t>((head >> 8) & 0xFF);
    e.queue = static_cast<std::uint16_t>((head >> 16) & 0xFFFF);
    e.arg = static_cast<std::uint32_t>(head >> 32);
    e.sequence = sequence;
    return e;
  }

  std::vector<Slot> buffer_;
  std::size_t mask_;
  std::atomic<std::uint64_t> recorded_{0};  ///< completed-write cursor
  std::atomic<std::uint64_t> writing_{0};   ///< started-write cursor
  std::atomic<std::uint64_t> base_{0};      ///< clear() epoch watermark
  std::array<std::atomic<std::uint64_t>, kTraceEventTypeCount> by_type_{};
};

}  // namespace opendesc::telemetry
