// Per-thread bounded trace ring.
//
// Counters say *how much*; the trace ring says *what happened, in order*:
// each datapath thread owns one ring and appends fixed-size typed events —
// record validated, quarantine, SoftNIC fallback per semantic, lost
// completion, queue handoff, control-channel retry.  The ring is bounded:
// when it wraps, the oldest events are overwritten and counted as dropped,
// so a fault storm can never grow memory, and the drop count tells the
// operator exactly how much history was lost.  Per-type totals are kept
// even for overwritten events.
//
// Threading: one writer per ring (the owning datapath thread); readers must
// wait for the writer to quiesce (workers joined) before draining — the
// same discipline as DeadLetterBuffer inspection.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string_view>
#include <vector>

namespace opendesc::telemetry {

/// Every event class a datapath thread can record.
enum class TraceEventType : std::uint8_t {
  record_validated,    ///< records passed validation (arg: count in batch)
  record_quarantined,  ///< malformed record dead-lettered (detail: verdict)
  softnic_fallback,    ///< one semantic served in software (arg: semantic id)
  completion_lost,     ///< accepted by rx(), completion never arrived
  rx_rejected,         ///< device refused the packet (backpressure)
  queue_handoff,       ///< steering pushed a packet to a worker (queue: dest)
  ctrl_retry,          ///< control programming failed readback, backing off
  ctrl_programmed,     ///< control programming verified (detail: attempts)
  run_started,         ///< a loop/engine run began (arg: queue count)
  run_finished,        ///< a loop/engine run ended (arg: packets, truncated)
};

inline constexpr std::size_t kTraceEventTypeCount = 10;

[[nodiscard]] std::string_view to_string(TraceEventType type) noexcept;

/// One 16-byte trace record.
struct TraceEvent {
  TraceEventType type{};
  std::uint8_t detail = 0;     ///< type-specific (verdict, attempt, ...)
  std::uint16_t queue = 0;     ///< originating / destination queue
  std::uint32_t arg = 0;       ///< type-specific (raw semantic id, count, ...)
  std::uint64_t sequence = 0;  ///< producer-local logical time
};

class TraceRing {
 public:
  /// Capacity is rounded up to a power of two so the hot-path slot index is
  /// a mask, not a division.
  explicit TraceRing(std::size_t capacity = 4096)
      : buffer_(std::bit_ceil(capacity == 0 ? std::size_t{1} : capacity)),
        mask_(buffer_.size() - 1) {}

  /// Appends one event; overwrites (and drop-counts) the oldest when full.
  void record(const TraceEvent& event) noexcept {
    ++by_type_[static_cast<std::size_t>(event.type)];
    buffer_[static_cast<std::size_t>(recorded_) & mask_] = event;
    ++recorded_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.size(); }
  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(
        recorded_ < buffer_.size() ? recorded_ : buffer_.size());
  }
  /// Total record() calls.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events overwritten by ring wrap (recorded - retained).
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return recorded_ - size();
  }
  /// Per-type totals, counted even for events later overwritten.
  [[nodiscard]] std::uint64_t count(TraceEventType type) const noexcept {
    return by_type_[static_cast<std::size_t>(type)];
  }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  void clear() noexcept {
    recorded_ = 0;
    by_type_.fill(0);
  }

 private:
  std::vector<TraceEvent> buffer_;
  std::size_t mask_;
  std::uint64_t recorded_ = 0;
  std::array<std::uint64_t, kTraceEventTypeCount> by_type_{};
};

}  // namespace opendesc::telemetry
